#include "raccd/core/raccd_engine.hpp"

#include "raccd/common/assert.hpp"

namespace raccd {

RaccdEngine::RaccdEngine(std::uint32_t cores, const RaccdEngineConfig& cfg) : cfg_(cfg) {
  for (std::uint32_t c = 0; c < cores; ++c) {
    ncrts_.push_back(std::make_unique<Ncrt>(cfg_.ncrt_entries));
  }
}

RegisterOutcome RaccdEngine::register_region(CoreId c, VAddr va, std::uint64_t size,
                                             Tlb& tlb, const PageTable& pt) {
  RegisterOutcome out;
  out.cycles = cfg_.instr_overhead_cycles;
  if (size == 0) return out;
  Ncrt& table = ncrt(c);

  const VAddr end_va = va + size;
  // Iterative translation with contiguous-frame collapsing (paper Fig. 5):
  // walk the virtual pages in order; extend the open physical range while
  // frames stay contiguous, close and insert it when they do not.
  PAddr open_start = 0;
  PAddr open_end = 0;  // 0 means "no open range"
  for (VAddr page_va = align_down(va, kPageBytes); page_va < end_va;
       page_va += kPageBytes) {
    const auto res = tlb.access(page_of(page_va), pt);
    ++out.pages_translated;
    out.cycles += cfg_.per_page_lookup_cycles;
    if (!res.hit) {
      ++out.tlb_misses;
      out.cycles += cfg_.tlb_walk_cycles;
    }
    const PAddr frame_base = res.pframe << kPageShift;
    const PAddr chunk_start = frame_base + (page_va < va ? page_offset(va) : 0);
    const PAddr chunk_end =
        frame_base + (page_va + kPageBytes > end_va ? page_offset(end_va - 1) + 1
                                                    : kPageBytes);
    if (open_end != 0 && chunk_start == open_end) {
      open_end = chunk_end;  // physically contiguous: collapse
    } else {
      if (open_end != 0) {
        out.cycles += cfg_.per_insert_cycles;
        if (table.insert(open_start, open_end)) {
          ++out.ranges_inserted;
        } else {
          out.overflowed = true;
        }
      }
      open_start = chunk_start;
      open_end = chunk_end;
    }
  }
  if (open_end != 0) {
    out.cycles += cfg_.per_insert_cycles;
    if (table.insert(open_start, open_end)) {
      ++out.ranges_inserted;
    } else {
      out.overflowed = true;
    }
  }
  return out;
}

Cycle RaccdEngine::invalidate(CoreId c) {
  ncrt(c).clear();
  return cfg_.instr_overhead_cycles;
}

NcrtStats RaccdEngine::total_stats() const noexcept {
  NcrtStats total;
  for (const auto& n : ncrts_) {
    const NcrtStats& s = n->stats();
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.inserts += s.inserts;
    total.overflows += s.overflows;
    total.clears += s.clears;
  }
  return total;
}

}  // namespace raccd
