#include "raccd/cache/llc_bank.hpp"

#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"

namespace raccd {

LlcBank::LlcBank(const LlcGeometry& geo)
    : sets_(geo.sets()),
      ways_(geo.ways),
      bank_bits_(geo.bank_bits),
      legacy_(legacy_structures()),
      repl_(geo.repl, geo.sets(), geo.ways) {
  RACCD_ASSERT(is_pow2(sets_), "LLC bank set count must be a power of two");
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
  tags_.assign(static_cast<std::size_t>(sets_) * ways_, kNoTag);
}

LlcLine* LlcBank::find(LineAddr line) noexcept {
  const std::uint32_t set = set_of(line);
  if (!legacy_) {
    const LineAddr* tags = tags_.data() + static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line) return &at(set, w);
    }
    return nullptr;
  }
  for (std::uint32_t w = 0; w < ways_; ++w) {
    LlcLine& l = at(set, w);
    if (l.valid && l.line == line) return &l;
  }
  return nullptr;
}

void LlcBank::touch(const LlcLine& l) noexcept {
  const auto idx = static_cast<std::size_t>(&l - lines_.data());
  repl_.touch(static_cast<std::uint32_t>(idx / ways_),
              static_cast<std::uint32_t>(idx % ways_));
}

LlcLine LlcBank::peek_victim(LineAddr line) noexcept {
  const std::uint32_t set = set_of(line);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!at(set, w).valid) return LlcLine{};  // free way available
  }
  return at(set, repl_.victim(set));
}

LlcLine& LlcBank::fill(LineAddr line, bool nc, bool dirty, std::uint64_t version) {
  RACCD_DEBUG_ASSERT(find(line) == nullptr, "LLC fill of resident line");
  const std::uint32_t set = set_of(line);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    LlcLine& l = at(set, w);
    if (!l.valid) {
      l = LlcLine{line, true, dirty, nc, version};
      set_tag(set, w, line);
      ++valid_count_;
      repl_.touch(set, w);
      return l;
    }
  }
  RACCD_ASSERT(false, "LLC fill with no free way (victim not evicted by caller)");
  return at(set, 0);
}

LlcLine LlcBank::invalidate(LineAddr line) noexcept {
  LlcLine* l = find(line);
  if (l == nullptr) return LlcLine{};
  const LlcLine old = *l;
  *l = LlcLine{};
  const auto idx = static_cast<std::size_t>(l - lines_.data());
  tags_[idx] = kNoTag;
  --valid_count_;
  return old;
}

}  // namespace raccd
