// Application-level tests: every benchmark runs at tiny size under every
// coherence mode and must verify functionally — the strongest end-to-end
// statement that the protocol (including NC variants and recovery) never
// corrupts data.
#include <gtest/gtest.h>

#include <cctype>

#include "raccd/apps/registry.hpp"
#include "raccd/coherence/checker.hpp"

namespace raccd {
namespace {

struct Case {
  std::string ref;  ///< registry reference, params allowed
  CohMode mode;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = info.param.ref + "_" + to_string(info.param.mode);
  for (char& c : n) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0)) c = '_';
  }
  return n;
}

class AppModeTest : public ::testing::TestWithParam<Case> {};

TEST_P(AppModeTest, RunsAndVerifies) {
  const Case& c = GetParam();
  SimConfig cfg = SimConfig::scaled(c.mode);
  cfg.enable_checker = true;
  Machine m(cfg);
  AppConfig acfg{SizeClass::kTiny, 0xBEEF};
  std::string name;
  ASSERT_EQ(parse_workload_ref(c.ref, name, acfg.params), "");
  std::string error;
  auto app = WorkloadRegistry::instance().create(name, acfg, &error);
  ASSERT_NE(app, nullptr) << error;
  app->run(m);
  EXPECT_EQ(app->verify(m), "");
  const auto violations = CoherenceChecker::scan(m.fabric());
  for (const auto& v : violations) ADD_FAILURE() << v;
  const SimStats s = m.collect();
  EXPECT_GT(s.tasks, 0u);
  EXPECT_GT(s.cycles, 0u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  auto refs = paper_app_names();
  refs.push_back("cholesky");
  for (const auto& ref : refs) {
    for (const CohMode mode : kAllModes) {
      cases.push_back(Case{ref, mode});
    }
  }
  // The SDK families run under every backend, including WbNC, with the
  // registry's parameterized references.
  for (const CohMode mode : kAllBackends) {
    cases.push_back(Case{"synthetic:shape=forkjoin,width=4,depth=2", mode});
    cases.push_back(Case{"synthetic:shape=pipeline,width=4,depth=3", mode});
    cases.push_back(Case{"synthetic:shape=randomdag,width=6,depth=3,reuse=0.5", mode});
    cases.push_back(Case{"tracereplay", mode});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllModes, AppModeTest, ::testing::ValuesIn(all_cases()),
                         case_name);

TEST(Apps, ProblemStringsMentionSizes) {
  for (const auto& name : paper_app_names()) {
    auto app = make_app(name, AppConfig{SizeClass::kSmall, 1});
    EXPECT_EQ(app->name(), name);
    EXPECT_FALSE(app->problem().empty());
  }
}

TEST(Apps, JpegHasNoAnnotationsButOthersDo) {
  // JPEG is the paper's worst case: its tasks declare no dependences, so
  // RaCCD identifies 0% non-coherent blocks; annotated apps identify >0%.
  SimConfig cfg = SimConfig::scaled(CohMode::kRaCCD);
  Machine jm(cfg);
  auto jpeg = make_app("jpeg", AppConfig{SizeClass::kTiny, 2});
  jpeg->run(jm);
  EXPECT_EQ(jpeg->verify(jm), "");
  const SimStats js = jm.collect();
  EXPECT_EQ(js.ncrt.inserts, 0u);
  EXPECT_EQ(js.blocks_noncoherent, 0u);

  Machine gm(SimConfig::scaled(CohMode::kRaCCD));
  auto gauss = make_app("gauss", AppConfig{SizeClass::kTiny, 2});
  gauss->run(gm);
  EXPECT_EQ(gauss->verify(gm), "");
  const SimStats gs = gm.collect();
  EXPECT_GT(gs.ncrt.inserts, 0u);
  EXPECT_GT(gs.noncoherent_block_fraction, 0.5);
}

TEST(Apps, CholeskyTdgMatchesPaperFig1Shape) {
  // For a GxG tiled Cholesky the task counts are:
  // potrf: G, trsm: G(G-1)/2, syrk: G(G-1)/2, gemm: G(G-1)(G-2)/6.
  SimConfig cfg = SimConfig::scaled(CohMode::kRaCCD);
  Machine m(cfg);
  auto app = make_app("cholesky", AppConfig{SizeClass::kTiny, 3});  // G=4
  app->run(m);
  EXPECT_EQ(app->verify(m), "");
  constexpr std::uint64_t g = 4;
  const std::uint64_t expected =
      g + g * (g - 1) / 2 + g * (g - 1) / 2 + g * (g - 1) * (g - 2) / 6;
  const SimStats s = m.collect();
  EXPECT_EQ(s.tasks, expected);
  EXPECT_GT(s.edges, 0u);
  // The TDG must be exportable (paper Fig. 1 right-hand side).
  const std::string dot = m.runtime().tdg().to_dot();
  EXPECT_NE(dot.find("potrf"), std::string::npos);
  EXPECT_NE(dot.find("gemm"), std::string::npos);
}

TEST(Apps, DeterministicStatsForSameSeed) {
  const auto run = [](SizeClass size, std::uint64_t seed) {
    Machine m(SimConfig::scaled(CohMode::kRaCCD));
    auto app = make_app("histo", AppConfig{size, seed});
    app->run(m);
    return m.collect();
  };
  const SimStats a = run(SizeClass::kTiny, 7), b = run(SizeClass::kTiny, 7);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.fabric.l1_accesses, b.fabric.l1_accesses);
  EXPECT_EQ(a.noc.total_flit_hops(), b.noc.total_flit_hops());
  const SimStats c = run(SizeClass::kSmall, 7);
  EXPECT_NE(a.fabric.l1_accesses, c.fabric.l1_accesses);  // different problem
}

}  // namespace
}  // namespace raccd
