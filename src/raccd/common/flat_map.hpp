// Flat replacements for the simulator's hot-path hash maps.
//
// The per-access replay path consults two maps on essentially every record:
// the memory version map (LineAddr -> version, written on every memory
// writeback) and the per-core TLB index (PageNum -> slot). Profiles show the
// std::unordered_map nodes behind them — pointer-chasing buckets, one heap
// node per entry — dominating host time per simulated event. Both key spaces
// are small and dense enough for flat structures:
//
//  * PagedLineMap — a chunked direct array over physical line numbers. The
//    physical space is bounded (phys_mb), so a vector of lazily-allocated
//    fixed-size chunks gives O(1) loads/stores with zero hashing and zero
//    per-entry allocation; untouched regions cost one null pointer per chunk.
//  * OpenPageMap — an open-addressed linear-probing table with backward-shift
//    deletion for the TLB's vpage -> slot index. Capacity is fixed at 4x the
//    TLB entry count (load factor <= 0.25), so probes are contiguous and
//    short.
//
// Every structure keeps the legacy std::unordered_map behavior reachable via
// RACCD_LEGACY_STRUCTURES=1 (read once, overridable in-process for A/B
// benchmarking); bench/throughput measures the two builds against each other
// and the golden tests assert they produce bit-identical SimStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "raccd/common/types.hpp"

namespace raccd {

namespace detail {
/// -1 = no in-process override (fall through to the environment); 0/1 = the
/// set_legacy_structures value. The environment is never written here, so a
/// concurrent first-use can't clobber an override (the lost-update race the
/// old read-env-then-store sequence had under the parallel sweep executor).
inline std::atomic<int> legacy_structures_override{-1};

/// RACCD_LEGACY_STRUCTURES, read exactly once (thread-safe magic static) and
/// immutable for the life of the process.
[[nodiscard]] inline bool legacy_structures_env() noexcept {
  static const bool v = [] {
    const char* e = std::getenv("RACCD_LEGACY_STRUCTURES");
    return e != nullptr && e[0] == '1';
  }();
  return v;
}
}  // namespace detail

/// True when the legacy (pre-flat) hash-map structures should be used.
/// Safe to call from concurrent Machine constructions (-jN sweeps): the env
/// is folded into an immutable value on first use and the override is a
/// single atomic. Structures capture the value at construction.
[[nodiscard]] inline bool legacy_structures() noexcept {
  const int v = detail::legacy_structures_override.load(std::memory_order_acquire);
  return v >= 0 ? v == 1 : detail::legacy_structures_env();
}

/// In-process A/B override (bench/throughput --compare-legacy, unit tests).
/// Toggling mid-sweep is only meaningful under --jobs=1: with concurrent
/// workers there is no useful ordering between a toggle and the Machines
/// being constructed on other threads (each captures whichever value it
/// observes — race-free, but not the A/B the caller intended).
inline void set_legacy_structures(bool on) noexcept {
  detail::legacy_structures_override.store(on ? 1 : 0, std::memory_order_release);
}

/// Chunked direct array over LineAddr keys with an implicit default of 0.
/// get() on an untouched line returns 0 without allocating; set() allocates
/// the 32 KB chunk covering the line on first touch.
class PagedLineMap {
 public:
  static constexpr unsigned kChunkShift = 12;  ///< 4096 lines = 32 KB per chunk
  static constexpr std::uint64_t kChunkLines = 1ull << kChunkShift;

  /// Pre-size the chunk directory for `lines` physical lines (pointers only;
  /// no chunk memory is committed until touched).
  void reserve_lines(std::uint64_t lines) {
    chunks_.reserve(static_cast<std::size_t>((lines >> kChunkShift) + 1));
  }

  [[nodiscard]] std::uint64_t get(LineAddr line) const noexcept {
    const std::size_t c = static_cast<std::size_t>(line >> kChunkShift);
    if (c >= chunks_.size() || chunks_[c] == nullptr) return 0;
    return chunks_[c][line & (kChunkLines - 1)];
  }

  void set(LineAddr line, std::uint64_t v) {
    const std::size_t c = static_cast<std::size_t>(line >> kChunkShift);
    if (c >= chunks_.size()) chunks_.resize(c + 1);
    if (chunks_[c] == nullptr) {
      chunks_[c] = std::make_unique<std::uint64_t[]>(kChunkLines);  // zeroed
    }
    chunks_[c][line & (kChunkLines - 1)] = v;
  }

  /// Chunks with committed storage (capacity/diagnostics).
  [[nodiscard]] std::size_t allocated_chunks() const noexcept {
    std::size_t n = 0;
    for (const auto& c : chunks_) n += (c != nullptr);
    return n;
  }

 private:
  std::vector<std::unique_ptr<std::uint64_t[]>> chunks_;
};

/// Open-addressed PageNum -> uint32 map: linear probing, power-of-two
/// capacity, backward-shift deletion (no tombstones, so probe runs never
/// degrade). Sized once for a bounded entry count (the TLB capacity).
/// Occupancy is encoded in the key itself (kEmpty sentinel — page numbers
/// are addresses >> 12 and can never reach 2^64-1), so a probe touches one
/// contiguous array only.
class OpenPageMap {
 public:
  static constexpr PageNum kEmpty = ~PageNum{0};

  explicit OpenPageMap(std::uint32_t max_entries) {
    std::uint32_t cap = 16;
    // <= 25% load factor keeps probe runs at a handful of contiguous slots.
    while (cap < max_entries * 4) cap <<= 1;
    slots_.assign(cap, Slot{kEmpty, 0});
    mask_ = cap - 1;
  }

  [[nodiscard]] std::uint32_t* find(PageNum key) noexcept {
    for (std::uint32_t i = home(key);; i = (i + 1) & mask_) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == kEmpty) return nullptr;
    }
  }

  /// Insert a key known to be absent (the TLB checks with find() first).
  void insert(PageNum key, std::uint32_t value) noexcept {
    std::uint32_t i = home(key);
    while (slots_[i].key != kEmpty) i = (i + 1) & mask_;
    slots_[i] = Slot{key, value};
    ++size_;
  }

  bool erase(PageNum key) noexcept {
    std::uint32_t i = home(key);
    for (;; i = (i + 1) & mask_) {
      if (slots_[i].key == kEmpty) return false;
      if (slots_[i].key == key) break;
    }
    slots_[i].key = kEmpty;
    --size_;
    // Backward shift: close the hole by moving any later entry whose probe
    // path crosses it, so lookups never need tombstones.
    std::uint32_t hole = i, j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (slots_[j].key == kEmpty) break;
      const std::uint32_t h = home(slots_[j].key);
      if (((j - h) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        slots_[j].key = kEmpty;
        hole = j;
      }
    }
    return true;
  }

  void clear() noexcept {
    slots_.assign(slots_.size(), Slot{kEmpty, 0});
    size_ = 0;
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct Slot {
    PageNum key = kEmpty;
    std::uint32_t value = 0;
  };

  [[nodiscard]] std::uint32_t home(PageNum key) const noexcept {
    // Fibonacci multiplicative hash; high bits feed the mask.
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
    return static_cast<std::uint32_t>(h >> 32) & mask_;
  }

  std::vector<Slot> slots_;
  std::uint32_t mask_ = 0;
  std::uint32_t size_ = 0;
};

}  // namespace raccd
