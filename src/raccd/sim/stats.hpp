// End-of-run statistics: everything the paper's figures plot, in one struct.
#pragma once

#include <cstdint>
#include <string>

#include "raccd/coherence/fabric_stats.hpp"
#include "raccd/core/adr_config.hpp"
#include "raccd/core/ncrt.hpp"
#include "raccd/core/pt_classifier.hpp"
#include "raccd/modes/coh_mode.hpp"
#include "raccd/noc/mesh.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

/// Sampled-simulation bookkeeping (SamplingConfig): how much of the run was
/// measured, the extrapolation factor applied to the fabric/NoC counters,
/// and per-metric 95% confidence half-widths from the window-to-window
/// variation of the measured rates. All zero (scale 1) for detailed runs.
struct SamplingStats {
  std::uint64_t active = 0;   ///< 1 when the run used sampled simulation
  std::uint64_t windows = 0;  ///< measured windows with at least one access
  std::uint64_t measured_tasks = 0;
  std::uint64_t warmup_tasks = 0;
  std::uint64_t ffwd_tasks = 0;
  std::uint64_t measured_accesses = 0;
  std::uint64_t ffwd_accesses = 0;
  double scale = 1.0;  ///< total accesses / measured accesses

  // 95% CI half-widths on the extrapolated totals (absolute, same units as
  // the metric they annotate; the *_ci95 flat keys pair with the base keys
  // so raccd-report can widen its tolerance bands CI-aware).
  double cycles_ci95 = 0.0;
  double dir_accesses_ci95 = 0.0;
  double llc_hits_ci95 = 0.0;
  double noc_flits_ci95 = 0.0;
  double noc_flit_hops_ci95 = 0.0;
  double dram_row_hits_ci95 = 0.0;
  double dram_row_hit_rate_ci95 = 0.0;
  double dir_occupancy_ci95 = 0.0;
};

/// Summary of one latency distribution (cycles): produced by
/// metrics::Histogram, reported by the `distribution` metric kind.
struct DistSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Open-loop service-run bookkeeping: per-request latency distributions
/// grouped by TaskNode::request. All zero for batch runs (`requests == 0`
/// gates the cache/JSON blocks, like SamplingStats::active).
struct ServiceStats {
  std::uint64_t requests = 0;  ///< completed requests observed
  DistSummary queueing{};      ///< release -> first task start
  DistSummary service{};       ///< first task start -> last task end
  DistSummary e2e{};           ///< release -> last task end
};

struct SimStats {
  // Identity
  CohMode mode = CohMode::kFullCoh;
  std::uint32_t dir_ratio = 1;
  bool adr_enabled = false;

  // Time (paper Fig. 6, 9)
  Cycle cycles = 0;
  Cycle busy_cycles = 0;  ///< sum of per-core task execution time
  double core_utilization = 0.0;

  // Subsystem stats
  FabricStats fabric{};
  NocStats noc{};
  NcrtStats ncrt{};
  TlbStats tlb{};
  PtClassifierStats pt{};
  AdrStats adr{};

  // Runtime activity
  std::uint64_t tasks = 0;
  std::uint64_t edges = 0;
  std::uint64_t accesses_replayed = 0;
  Cycle create_cycles = 0;
  Cycle schedule_cycles = 0;
  Cycle wakeup_cycles = 0;
  Cycle register_cycles = 0;    ///< raccd_register total
  Cycle invalidate_cycles = 0;  ///< raccd_invalidate total (incl. cache walks)
  std::uint64_t flushed_nc_lines = 0;
  std::uint64_t flushed_nc_wbs = 0;

  // Block classification (paper Fig. 2)
  std::uint64_t blocks_touched = 0;
  std::uint64_t blocks_noncoherent = 0;
  double noncoherent_block_fraction = 0.0;

  // Directory occupancy (paper Fig. 8) and ADR power state
  double avg_dir_occupancy = 0.0;    ///< vs configured capacity
  double avg_dir_active_frac = 0.0;  ///< powered fraction (ADR)

  // Energy (paper Fig. 7d, 10); directory dynamic energy is the headline.
  double dir_dyn_energy_pj = 0.0;
  double llc_dyn_energy_pj = 0.0;
  double noc_dyn_energy_pj = 0.0;
  double mem_dyn_energy_pj = 0.0;
  double l1_dyn_energy_pj = 0.0;
  double dir_leak_energy_pj = 0.0;

  // Sampled simulation (zeroed for detailed runs)
  SamplingStats sampling{};

  // Open-loop service runs (zeroed for batch runs)
  ServiceStats service{};

  // Derived (paper Fig. 7a/7b/7c)
  [[nodiscard]] std::uint64_t dir_accesses() const noexcept { return fabric.dir_accesses; }
  [[nodiscard]] double llc_hit_ratio() const noexcept { return fabric.llc_hit_ratio(); }
  [[nodiscard]] std::uint64_t noc_traffic() const noexcept { return noc.total_flit_hops(); }

  [[nodiscard]] std::string summary() const;
};

}  // namespace raccd
