// Ready-task scheduling policies (paper §III-B: the scheduler hands ready
// tasks to requesting threads).
//
//  * kFifo — central breadth-first queue (Nanos++ default; used by all the
//    paper reproductions). Maximizes parallelism discovery but freely
//    migrates data between cores, which is exactly the temporally-private
//    pattern PT misclassifies (paper §II-D).
//  * kLifo — central depth-first queue (ablation).
//  * kWorkSteal — per-core deques: tasks woken by a core are pushed to that
//    core's deque; owners pop LIFO (locality), thieves steal the oldest
//    entry round-robin. Keeps successor tasks near their producer's cache,
//    reducing migration (ablation: this narrows the PT/RaCCD gap).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "raccd/common/assert.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

enum class SchedPolicy : std::uint8_t { kFifo, kLifo, kWorkSteal };

[[nodiscard]] constexpr const char* to_string(SchedPolicy p) noexcept {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kLifo: return "lifo";
    case SchedPolicy::kWorkSteal: return "worksteal";
  }
  return "?";
}

struct SchedulerStats {
  std::uint64_t pushes = 0;
  std::uint64_t local_pops = 0;  ///< owner-deque hits (kWorkSteal only)
  std::uint64_t steals = 0;      ///< successful steals (kWorkSteal only)
};

class Scheduler {
 public:
  Scheduler(SchedPolicy policy, std::uint32_t cores) : policy_(policy), locals_(cores) {}

  /// Enqueue a ready task. `producer` is the core whose wake-up made it
  /// ready (the main thread uses core 0 at creation time).
  void push(TaskId t, CoreId producer) {
    ++stats_.pushes;
    if (policy_ == SchedPolicy::kWorkSteal) {
      RACCD_DEBUG_ASSERT(producer < locals_.size(), "producer core out of range");
      locals_[producer].push_back(t);
    } else {
      central_.push_back(t);
    }
  }

  /// Dequeue a ready task for `consumer`; false when none is available.
  bool pop(CoreId consumer, TaskId& out) {
    switch (policy_) {
      case SchedPolicy::kFifo:
        if (central_.empty()) return false;
        out = central_.front();
        central_.pop_front();
        return true;
      case SchedPolicy::kLifo:
        if (central_.empty()) return false;
        out = central_.back();
        central_.pop_back();
        return true;
      case SchedPolicy::kWorkSteal: {
        RACCD_DEBUG_ASSERT(consumer < locals_.size(), "consumer core out of range");
        auto& own = locals_[consumer];
        if (!own.empty()) {
          out = own.back();  // depth-first on own deque: hot data
          own.pop_back();
          ++stats_.local_pops;
          return true;
        }
        const auto n = static_cast<std::uint32_t>(locals_.size());
        for (std::uint32_t i = 1; i < n; ++i) {
          auto& victim = locals_[(consumer + i) % n];
          if (!victim.empty()) {
            out = victim.front();  // steal the oldest (coldest) entry
            victim.pop_front();
            ++stats_.steals;
            return true;
          }
        }
        return false;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = central_.size();
    for (const auto& d : locals_) n += d.size();
    return n;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] SchedPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }

 private:
  SchedPolicy policy_;
  std::deque<TaskId> central_;
  std::vector<std::deque<TaskId>> locals_;
  SchedulerStats stats_;
};

}  // namespace raccd
