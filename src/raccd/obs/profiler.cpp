#include "raccd/obs/profiler.hpp"

#include "raccd/common/format.hpp"

namespace raccd::obs {

double SweepProfile::utilization() const {
  if (wall_s <= 0.0 || jobs == 0) return 0.0;
  double busy = 0.0;
  for (const WorkerProfile& w : workers) busy += w.busy_s;
  return busy / (wall_s * static_cast<double>(jobs));
}

std::string SweepProfile::summary() const {
  // Counts (run/cached/failed) are the progress reporter's prefix; this is
  // the wall-time breakdown that follows it.
  std::string out = strprintf("%.1fs wall", wall_s);
  if (executed > 0 || failed > 0) {
    out += strprintf(" (setup %.1fs, sim %.1fs", setup_s, sim_s);
    if (jobs > 1) {
      out += strprintf(", %u workers %.0f%% busy, %llu steals", jobs,
                       utilization() * 100.0,
                       static_cast<unsigned long long>(steals));
    }
    out += ")";
  }
  return out;
}

std::string SweepProfile::json_fields() const {
  // Sorted keys to match append_bench_json's canonical entry layout.
  return strprintf(
      "\"cached\": %llu, \"deduped\": %llu, \"executed\": %llu, "
      "\"export_s\": %.3f, \"failed\": %llu, \"jobs\": %u, "
      "\"preload_s\": %.3f, \"setup_s\": %.3f, \"sim_s\": %.3f, "
      "\"steals\": %llu, \"utilization\": %.3f, \"wall_s\": %.3f",
      static_cast<unsigned long long>(cached),
      static_cast<unsigned long long>(deduped),
      static_cast<unsigned long long>(executed), export_s,
      static_cast<unsigned long long>(failed), jobs, preload_s, setup_s, sim_s,
      static_cast<unsigned long long>(steals), utilization(), wall_s);
}

SweepProfile& last_sweep_profile() {
  static SweepProfile profile;
  return profile;
}

}  // namespace raccd::obs
