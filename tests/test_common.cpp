#include <gtest/gtest.h>

#include "raccd/common/bits.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/math.hpp"
#include "raccd/common/rng.hpp"
#include "raccd/common/types.hpp"

namespace raccd {
namespace {

TEST(Types, LineAndPageArithmetic) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(addr_of_line(3), 192u);
  EXPECT_EQ(page_of(4095), 0u);
  EXPECT_EQ(page_of(4096), 1u);
  EXPECT_EQ(page_offset(4097), 1u);
  EXPECT_EQ(line_offset(130), 2u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_down(127, 64), 64u);
}

TEST(Types, AddrRange) {
  const AddrRange r{100, 200};
  EXPECT_EQ(r.size(), 100u);
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(199));
  EXPECT_FALSE(r.contains(200));
  EXPECT_TRUE(r.overlaps(AddrRange{199, 300}));
  EXPECT_FALSE(r.overlaps(AddrRange{200, 300}));
  EXPECT_FALSE(r.overlaps(AddrRange{0, 100}));
  EXPECT_TRUE(AddrRange{}.empty());
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(65536));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_EQ(ceil_pow2(0), 1u);
  EXPECT_EQ(ceil_pow2(5), 8u);
  EXPECT_EQ(ceil_pow2(8), 8u);
  EXPECT_EQ(popcount64(0xF0F0), 8u);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 10; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const float f = rng.next_float(-2.0f, 3.0f);
    EXPECT_GE(f, -2.0f);
    EXPECT_LT(f, 3.0f);
  }
}

TEST(Rng, RoughUniformity) {
  Rng rng(99);
  int buckets[8] = {};
  for (int i = 0; i < 80000; ++i) ++buckets[rng.next_below(8)];
  for (const int b : buckets) {
    EXPECT_GT(b, 9000);
    EXPECT_LT(b, 11000);
  }
}

TEST(Math, MeanGeomeanRatio) {
  const double xs[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(ratio(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percent(1.0, 4.0), 25.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Format, Strings) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KB");
  EXPECT_EQ(format_bytes(32ull * 1024 * 1024), "32 MB");
  EXPECT_EQ(format_count(1), "1");
  EXPECT_EQ(format_count(1234), "1,234");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace raccd
