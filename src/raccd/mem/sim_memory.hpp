// Simulated application memory: a virtual arena with functional backing store.
//
// Applications allocate named arrays from this arena. Each allocation returns
// a simulated virtual address; the bytes live in host chunks so that task
// kernels compute *real* results (every app functionally verifies its output)
// while the same virtual addresses drive the timing model. Virtual pages are
// mapped eagerly to physical frames via the configured allocation policy.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "raccd/common/assert.hpp"
#include "raccd/common/types.hpp"
#include "raccd/mem/page_table.hpp"
#include "raccd/mem/phys_memory.hpp"

namespace raccd {

class SimMemory {
 public:
  /// Arena base: leave page 0 unused so address 0 is never valid.
  static constexpr VAddr kArenaBase = kPageBytes;

  SimMemory(std::uint64_t phys_frames, AllocPolicy policy,
            std::uint64_t seed = 0x9acc5eedULL, std::uint32_t sockets = 1);

  /// Allocate `bytes` with the given alignment (>= 8, power of two). Returns
  /// the simulated virtual address. The backing bytes are zero-initialized.
  [[nodiscard]] VAddr alloc(std::uint64_t bytes, std::uint64_t align = kLineBytes,
                            std::string label = {});

  /// Typed convenience allocation of `count` elements of T, line-aligned by
  /// default so dependence ranges do not false-share lines.
  template <typename T>
  [[nodiscard]] VAddr alloc_array(std::uint64_t count, std::string label = {}) {
    return alloc(count * sizeof(T), kLineBytes, std::move(label));
  }

  // -- Functional access (host side; no timing) ------------------------------
  template <typename T>
  [[nodiscard]] T read(VAddr va) const {
    T out;
    copy_out(va, &out, sizeof(T));
    return out;
  }
  template <typename T>
  void write(VAddr va, const T& value) {
    copy_in(va, &value, sizeof(T));
  }
  void copy_out(VAddr va, void* dst, std::uint64_t n) const;
  void copy_in(VAddr va, const void* src, std::uint64_t n);

  // -- Address-space queries --------------------------------------------------
  /// First-touch allocation defers physical placement: alloc() skips the
  /// eager page mapping and the machine maps each page on its first timed
  /// access via map_on_touch().
  [[nodiscard]] bool lazy_mapping() const noexcept {
    return phys_.policy() == AllocPolicy::kFirstTouch;
  }
  /// Map `vpage` to a frame on `socket` if it is not mapped yet (first
  /// touch wins; later touches from other sockets are no-ops).
  void map_on_touch(PageNum vpage, std::uint32_t socket) {
    if (!page_table_.mapped(vpage)) page_table_.map(vpage, phys_.alloc_frame_on(socket));
  }
  [[nodiscard]] const PageTable& page_table() const noexcept { return page_table_; }
  [[nodiscard]] PAddr translate(VAddr va) const { return page_table_.translate(va); }
  [[nodiscard]] std::uint64_t bytes_allocated() const noexcept { return next_ - kArenaBase; }
  [[nodiscard]] std::uint64_t pages_mapped() const noexcept { return page_table_.mapped_pages(); }
  [[nodiscard]] std::uint64_t phys_frames_used() const noexcept {
    return phys_.frames_allocated();
  }

  struct Allocation {
    std::string label;
    VAddr base;
    std::uint64_t bytes;
  };
  [[nodiscard]] const std::vector<Allocation>& allocations() const noexcept {
    return allocations_;
  }

 private:
  static constexpr std::uint64_t kChunkShift = 20;  // 1 MB host chunks
  static constexpr std::uint64_t kChunkBytes = 1ULL << kChunkShift;

  [[nodiscard]] std::uint64_t chunk_index(VAddr va) const noexcept {
    return (va - kArenaBase) >> kChunkShift;
  }
  [[nodiscard]] std::uint64_t chunk_offset(VAddr va) const noexcept {
    return (va - kArenaBase) & (kChunkBytes - 1);
  }
  void ensure_backing(VAddr up_to);

  PhysMemory phys_;
  PageTable page_table_;
  VAddr next_ = kArenaBase;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::vector<Allocation> allocations_;
};

}  // namespace raccd
