// Paper Fig. 9: performance with Adaptive Directory Reduction — RaCCD+ADR
// versus FullCoh/PT/RaCCD at 1:1, normalized to FullCoh 1:1 per benchmark.
//
// Paper reference points: RaCCD tracks FullCoh within <2% on average (the
// exception is Kmeans, whose end-of-task flushes hurt L1 reuse), and adding
// ADR does not hurt because reconfigurations are rare.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  // The 3 static systems plus RaCCD+ADR: a product grid over modes x adr
  // would waste FullCoh/PT+ADR runs, so two grids are appended instead.
  Grid base = Grid()
                  .paper_apps()
                  .set_params(opts.params)
                  .size(opts.size)
                  .paper_machine(opts.paper_machine);
  std::vector<RunSpec> specs = Grid(base).modes(kAllModes).specs();
  const std::vector<RunSpec> adr_specs =
      Grid(base).mode(CohMode::kRaCCD).adr(true).specs();
  specs.insert(specs.end(), adr_specs.begin(), adr_specs.end());
  const ResultSet rs = bench::run_logged(std::move(specs), opts);
  const auto variant = [&rs](const std::string& app, int v) -> const SimStats& {
    const CohMode mode = v == 0   ? CohMode::kFullCoh
                         : v == 1 ? CohMode::kPT
                                  : CohMode::kRaCCD;
    return rs.at(app, mode, 1, /*adr=*/v == 3);
  };

  std::printf("Fig. 9 — Normalized performance with ADR (FullCoh 1:1 = 1.0)\n");
  TextTable table({"app", "FullCoh", "PT", "RaCCD", "RaCCD+ADR", "reconfigs"});
  std::vector<double> sums(4, 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double base = metric_value(variant(apps[a], 0), "cycles");
    std::vector<std::string> row{apps[a]};
    for (int v = 0; v < 4; ++v) {
      const double norm = metric_value(variant(apps[a], v), "cycles") / base;
      sums[v] += norm;
      row.push_back(strprintf("%.3f", norm));
    }
    const auto& adr = variant(apps[a], 3).adr;
    row.push_back(strprintf("%llu", static_cast<unsigned long long>(adr.grows + adr.shrinks)));
    table.add_row(std::move(row));
  }
  table.add_separator();
  table.add_row({"AVG", strprintf("%.3f", sums[0] / apps.size()),
                 strprintf("%.3f", sums[1] / apps.size()),
                 strprintf("%.3f", sums[2] / apps.size()),
                 strprintf("%.3f", sums[3] / apps.size()), ""});
  table.print();
  table.write_csv("results/fig09_adr_performance.csv");
  std::printf("\npaper: RaCCD within <2%% of FullCoh on average (Kmeans outlier, "
              "+14.6%%); ADR adds no visible cost\n");
  return 0;
}
