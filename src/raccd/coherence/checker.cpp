#include "raccd/coherence/checker.hpp"

#include <unordered_map>

#include "raccd/coherence/fabric.hpp"
#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"

namespace raccd {

void CoherenceChecker::on_store(LineAddr line, std::uint64_t version) {
  ++stores_seen_;
  if (!legacy_) {
    golden_flat_.set(line, version);
  } else {
    golden_[line] = version;
  }
}

void CoherenceChecker::on_load(LineAddr line, std::uint64_t observed) {
  ++loads_checked_;
  std::uint64_t expected;
  if (!legacy_) {
    expected = golden_flat_.get(line);
  } else {
    const auto it = golden_.find(line);
    expected = it == golden_.end() ? 0 : it->second;
  }
  if (observed != expected) fail(line, expected, observed);
}

void CoherenceChecker::fail(LineAddr line, std::uint64_t expected, std::uint64_t observed) {
  ++violations_;
  if (strict_) {
    std::fprintf(stderr,
                 "coherence violation: line %llu expected version %llu observed %llu\n",
                 static_cast<unsigned long long>(line),
                 static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(observed));
    RACCD_ASSERT(false, "stale data observed by load");
  }
}

std::vector<std::string> CoherenceChecker::scan(const Fabric& fabric) {
  std::vector<std::string> out;
  const auto& cfg = fabric.config();

  struct Holder {
    CoreId core;
    Mesi state;
    bool nc;
    bool dirty;
  };
  std::unordered_map<LineAddr, std::vector<Holder>> holders;
  for (CoreId c = 0; c < cfg.cores; ++c) {
    fabric.l1(c).for_each_valid([&](const L1Line& l) {
      holders[l.line].push_back(Holder{c, l.coh, l.nc, l.dirty});
    });
  }

  // SWMR + state compatibility across L1 copies.
  for (const auto& [line, hs] : holders) {
    unsigned excl_holders = 0;
    unsigned coh_holders = 0;
    for (const Holder& h : hs) {
      if (h.nc) continue;
      ++coh_holders;
      if (h.state == Mesi::kExclusive || h.state == Mesi::kModified) ++excl_holders;
      if (h.dirty && h.state != Mesi::kModified) {
        out.push_back(strprintf("line %llu: dirty coherent copy in %s state at core %u",
                                static_cast<unsigned long long>(line), to_string(h.state),
                                h.core));
      }
    }
    if (excl_holders > 0 && coh_holders > 1) {
      out.push_back(strprintf("line %llu: E/M copy coexists with %u coherent copies",
                              static_cast<unsigned long long>(line), coh_holders));
    }
    if (excl_holders > 1) {
      out.push_back(strprintf("line %llu: %u exclusive holders",
                              static_cast<unsigned long long>(line), excl_holders));
    }
  }

  for (BankId b = 0; b < cfg.cores; ++b) {
    const auto& dbank = fabric.dir(b);
    const auto& lbank = fabric.llc(b);

    // Directory -> LLC inclusivity; directory never tracks NC LLC lines.
    dbank.for_each_valid([&](const DirEntry& e) {
      const LlcLine* ll = lbank.find(e.line);
      if (ll == nullptr) {
        out.push_back(strprintf("dir bank %u: entry for line %llu without LLC line", b,
                                static_cast<unsigned long long>(e.line)));
      } else if (ll->nc) {
        out.push_back(strprintf("dir bank %u: entry tracks NC LLC line %llu", b,
                                static_cast<unsigned long long>(e.line)));
      }
      // Every actual coherent holder must appear in the sharer vector (the
      // converse is allowed: silent clean evictions leave stale sharers).
      if (const auto it = holders.find(e.line); it != holders.end()) {
        for (const Holder& h : it->second) {
          if (h.nc) {
            out.push_back(strprintf("line %llu: NC L1 copy while directory-tracked",
                                    static_cast<unsigned long long>(e.line)));
            continue;
          }
          if ((e.sharers & (1ULL << h.core)) == 0) {
            out.push_back(
                strprintf("line %llu: core %u holds coherent copy but is not a sharer",
                          static_cast<unsigned long long>(e.line), h.core));
          }
          if ((h.state == Mesi::kExclusive || h.state == Mesi::kModified) &&
              e.excl != h.core) {
            out.push_back(strprintf("line %llu: E/M holder %u is not the directory excl",
                                    static_cast<unsigned long long>(e.line), h.core));
          }
        }
      }
    });

    // Untracked coherent LLC lines are legal in the sparse-directory design
    // (no private-cache copies); NC LLC lines must never be tracked, which
    // the directory-side scan above already enforces.
  }

  // Coherent L1 copies must be directory-tracked (recalls enforce this).
  for (const auto& [line, hs] : holders) {
    bool any_coh = false;
    for (const Holder& h : hs) any_coh |= !h.nc;
    if (!any_coh) continue;
    const BankId b = fabric.home_of(line);
    if (fabric.dir(b).find(line) == nullptr) {
      out.push_back(strprintf("line %llu: coherent L1 copy without directory entry",
                              static_cast<unsigned long long>(line)));
    }
  }
  return out;
}

}  // namespace raccd
