// Dependence registry tests: RAW/WAR/WAW derivation over byte ranges with
// splitting, the OmpSs region-dependence semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "raccd/runtime/dep_registry.hpp"

namespace raccd {
namespace {

std::vector<TaskId> preds_of(DepRegistry& reg, TaskId t,
                             std::initializer_list<DepSpec> deps) {
  std::vector<TaskId> out;
  for (const DepSpec& d : deps) reg.register_dep(t, d, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST(DepRegistry, RawDependence) {
  DepRegistry reg;
  EXPECT_TRUE(preds_of(reg, 0, {DepSpec{0, 100, DepKind::kOut}}).empty());
  const auto preds = preds_of(reg, 1, {DepSpec{0, 100, DepKind::kIn}});
  EXPECT_EQ(preds, std::vector<TaskId>{0});
}

TEST(DepRegistry, NoFalseDependenceOnDisjointRanges) {
  DepRegistry reg;
  preds_of(reg, 0, {DepSpec{0, 100, DepKind::kOut}});
  const auto preds = preds_of(reg, 1, {DepSpec{100, 100, DepKind::kIn}});
  EXPECT_TRUE(preds.empty());
}

TEST(DepRegistry, PartialOverlapSplitsSegments) {
  DepRegistry reg;
  preds_of(reg, 0, {DepSpec{0, 100, DepKind::kOut}});
  preds_of(reg, 1, {DepSpec{100, 100, DepKind::kOut}});
  const auto preds = preds_of(reg, 2, {DepSpec{50, 100, DepKind::kIn}});
  EXPECT_EQ(preds, (std::vector<TaskId>{0, 1}));
}

TEST(DepRegistry, WarDependence) {
  DepRegistry reg;
  preds_of(reg, 0, {DepSpec{0, 64, DepKind::kOut}});
  preds_of(reg, 1, {DepSpec{0, 64, DepKind::kIn}});
  preds_of(reg, 2, {DepSpec{0, 64, DepKind::kIn}});
  const auto preds = preds_of(reg, 3, {DepSpec{0, 64, DepKind::kOut}});
  // WAW on 0 plus WAR on both readers.
  EXPECT_EQ(preds, (std::vector<TaskId>{0, 1, 2}));
}

TEST(DepRegistry, WawChain) {
  DepRegistry reg;
  preds_of(reg, 0, {DepSpec{0, 64, DepKind::kOut}});
  EXPECT_EQ(preds_of(reg, 1, {DepSpec{0, 64, DepKind::kOut}}), std::vector<TaskId>{0});
  EXPECT_EQ(preds_of(reg, 2, {DepSpec{0, 64, DepKind::kOut}}), std::vector<TaskId>{1});
  EXPECT_EQ(reg.last_writer_at(0), 2u);
}

TEST(DepRegistry, InoutActsAsReadAndWrite) {
  DepRegistry reg;
  preds_of(reg, 0, {DepSpec{0, 64, DepKind::kOut}});
  const auto p1 = preds_of(reg, 1, {DepSpec{0, 64, DepKind::kInout}});
  EXPECT_EQ(p1, std::vector<TaskId>{0});
  // Reader after inout depends on the inout task.
  const auto p2 = preds_of(reg, 2, {DepSpec{0, 64, DepKind::kIn}});
  EXPECT_EQ(p2, std::vector<TaskId>{1});
}

TEST(DepRegistry, ReadersDoNotDependOnEachOther) {
  DepRegistry reg;
  preds_of(reg, 0, {DepSpec{0, 64, DepKind::kOut}});
  EXPECT_EQ(preds_of(reg, 1, {DepSpec{0, 64, DepKind::kIn}}), std::vector<TaskId>{0});
  EXPECT_EQ(preds_of(reg, 2, {DepSpec{0, 64, DepKind::kIn}}), std::vector<TaskId>{0});
}

TEST(DepRegistry, GaussSeidelWavefrontShape) {
  // Row blocks with inout-own + in-halo deps must produce the wavefront:
  // block b of iteration k depends on b-1 (same iter) and b+1 (prev iter).
  DepRegistry reg;
  constexpr std::uint64_t kRow = 64;  // bytes per halo row
  constexpr std::uint64_t kBlockRows = 4;
  const auto block_range = [&](std::uint32_t b) {
    return DepSpec{b * kBlockRows * kRow, kBlockRows * kRow, DepKind::kInout};
  };
  const auto halo_above = [&](std::uint32_t b) {
    return DepSpec{b * kBlockRows * kRow - kRow, kRow, DepKind::kIn};
  };
  const auto halo_below = [&](std::uint32_t b) {
    return DepSpec{(b + 1) * kBlockRows * kRow, kRow, DepKind::kIn};
  };
  // Iteration 0: blocks 0..2 (task ids 0..2).
  preds_of(reg, 0, {block_range(0), halo_below(0)});
  const auto p1 = preds_of(reg, 1, {block_range(1), halo_above(1), halo_below(1)});
  EXPECT_EQ(p1, std::vector<TaskId>{0});  // reads row written by block 0
  const auto p2 = preds_of(reg, 2, {block_range(2), halo_above(2)});
  EXPECT_EQ(p2, std::vector<TaskId>{1});
  // Iteration 1 block 0 (task 3): depends on its own block (task 0 wrote it,
  // task 1 read its last row... precisely: WAW with 0, WAR with 1) and RAW
  // on block 1's first row (task 1).
  const auto p3 = preds_of(reg, 3, {block_range(0), halo_below(0)});
  EXPECT_EQ(p3, (std::vector<TaskId>{0, 1}));
}

TEST(DepRegistry, ManySmallRangesStress) {
  DepRegistry reg;
  std::vector<TaskId> preds;
  for (TaskId t = 0; t < 200; ++t) {
    preds.clear();
    reg.register_dep(t, DepSpec{(t % 50) * 16ull, 16, DepKind::kInout}, preds);
    // The registry may report a predecessor through both the RAW and WAR
    // paths; callers dedupe (see Runtime::create_task).
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    if (t >= 50) {
      ASSERT_EQ(preds.size(), 1u);
      EXPECT_EQ(preds[0], t - 50);
    }
  }
  EXPECT_LE(reg.segment_count(), 50u);
}

}  // namespace
}  // namespace raccd
