// Fabric outcome/statistics types, split from fabric.hpp so stats-only
// consumers (SimStats, report, harness, benches) don't pull in the full
// cache/directory/NoC model and rebuild whenever the fabric changes.
#pragma once

#include <cstdint>

#include "raccd/common/types.hpp"

namespace raccd {

/// Result of one access, as seen by the issuing core.
struct AccessOutcome {
  Cycle latency = 0;
  bool l1_hit = false;
  bool llc_hit = false;  ///< meaningful only when !l1_hit
};

struct FabricStats {
  // L1 (aggregated over cores)
  std::uint64_t l1_accesses = 0, l1_hits = 0, l1_misses = 0;
  std::uint64_t l1_evictions = 0, l1_wb_coh = 0, l1_wb_nc = 0;
  std::uint64_t l1_invals_sharer = 0;  ///< invalidations from GetX/upgrades
  std::uint64_t l1_invals_recall = 0;  ///< invalidations from directory/LLC recalls
  std::uint64_t l1_flush_nc_lines = 0, l1_flush_nc_wbs = 0;    ///< raccd_invalidate
  std::uint64_t l1_flush_page_lines = 0, l1_flush_page_wbs = 0;  ///< PT recovery

  // LLC: hit-rate denominators count only demand lookups from L1 misses.
  std::uint64_t llc_lookups = 0, llc_hits = 0, llc_misses = 0;
  std::uint64_t llc_nc_lookups = 0, llc_nc_hits = 0;
  std::uint64_t llc_fills = 0, llc_evictions = 0, llc_inval_by_dir = 0, llc_wb_mem = 0;
  std::uint64_t llc_touches = 0;  ///< every array access (energy basis)

  // Directory. dir_accesses counts every read/update of the structure and is
  // the paper's Fig. 7a metric and the dynamic-energy basis.
  std::uint64_t dir_accesses = 0;
  std::uint64_t dir_lookups = 0, dir_hits = 0, dir_misses = 0;
  std::uint64_t dir_allocs = 0, dir_evictions = 0, dir_recall_msgs = 0;
  std::uint64_t dir_wb_updates = 0;
  std::uint64_t dir_nc_to_coh = 0;  ///< NC LLC line re-tracked on coherent access
  std::uint64_t dir_coh_to_nc = 0;  ///< entry dropped on NC access (paper III-E)

  // Transactions
  std::uint64_t coh_reads = 0, coh_writes = 0, upgrades = 0;
  std::uint64_t nc_reads = 0, nc_writes = 0;
  std::uint64_t owner_probes = 0;

  // Socket locality (always zero on single-socket topologies): transactions
  // whose requesting core and home bank sit on different sockets.
  std::uint64_t dir_reqs_cross_socket = 0;  ///< coherent misses + upgrades
  std::uint64_t nc_reqs_cross_socket = 0;   ///< directory-bypassing NC requests

  // Memory
  std::uint64_t mem_reads = 0, mem_writes = 0;
  /// Writeback delivery: NoC leg to the controller plus write-queue wait
  /// (the latency mem_writeback used to drop on the floor).
  std::uint64_t mem_wb_wait_cycles = 0;

  // DRAM (dram/dram.hpp; all zero under the default kSimple flat-latency
  // model). Row-buffer outcome of every serviced request, and the cycles
  // read requests spent waiting before service (queues, write drains, bank
  // conflicts, issue ordering).
  std::uint64_t dram_row_hits = 0, dram_row_misses = 0, dram_row_conflicts = 0;
  std::uint64_t dram_queue_wait_cycles = 0;

  // Dynamic energy (pJ)
  double e_dir_pj = 0.0, e_llc_pj = 0.0, e_l1_pj = 0.0, e_noc_pj = 0.0, e_mem_pj = 0.0;
  /// DRAM per-op split of e_mem_pj under the kDdr model (replaces the flat
  /// mem_access_pj): activate / column-read / column-write / precharge.
  double e_mem_act_pj = 0.0, e_mem_rd_pj = 0.0, e_mem_wr_pj = 0.0, e_mem_pre_pj = 0.0;

  void add(const FabricStats& o) noexcept;
  [[nodiscard]] double llc_hit_ratio() const noexcept {
    return llc_lookups == 0 ? 0.0
                            : static_cast<double>(llc_hits) / static_cast<double>(llc_lookups);
  }
  [[nodiscard]] double dram_row_hit_ratio() const noexcept {
    const std::uint64_t total = dram_row_hits + dram_row_misses + dram_row_conflicts;
    return total == 0 ? 0.0 : static_cast<double>(dram_row_hits) / static_cast<double>(total);
  }
};

}  // namespace raccd
