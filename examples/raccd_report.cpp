// raccd-report: the metrics/diff CLI.
//
//   raccd-report metrics [--markdown]
//       Print the self-describing metric schema (every name the emitters,
//       series sampler and diff tolerances are driven by).
//
//   raccd-report show FILE [substring]
//       List a BENCH_grid.json log (optionally filtered by spec-key
//       substring) as a markdown table of the headline metrics.
//
//   raccd-report profile FILE [BASELINE]
//       Show the host-side sweep profile (the `__profile__` entry bench
//       binaries merge into BENCH_grid.json): wall-time breakdown, worker
//       utilization, steal count. With BASELINE, print side-by-side deltas.
//       Informational only — profile entries never gate (diff skips them).
//
//   raccd-report diff BASELINE CANDIDATE [options]
//       Join two BENCH_grid.json logs on RunSpec::key(), compare every
//       metric under per-kind tolerances and exit nonzero on regression —
//       the primitive the CI perf gate runs on. `__`-prefixed entries
//       (host profiles) are skipped.
//         --tol-cycles=PCT    cycle-total tolerance in percent (default 2)
//         --tol-energy=PCT    energy tolerance in percent (default 2)
//         --tol-counters=PCT  counter tolerance in percent (default 0: exact)
//         --tol-ratio=ABS     absolute band for ratios (default 0.02)
//         --markdown          markdown report (for CI artifacts / PR comments)
//         --out=FILE          also write the report to FILE
//
// Exit codes: 0 ok, 1 regression detected, 2 usage/load error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "raccd/metrics/diff.hpp"
#include "raccd/metrics/metric_schema.hpp"

using namespace raccd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: raccd-report metrics [--markdown]\n"
               "       raccd-report show FILE [substring]\n"
               "       raccd-report profile FILE [BASELINE]\n"
               "       raccd-report diff BASELINE CANDIDATE [--tol-cycles=PCT]\n"
               "                    [--tol-energy=PCT] [--tol-counters=PCT]\n"
               "                    [--tol-ratio=ABS] [--markdown] [--out=FILE]\n");
  return 2;
}

int cmd_metrics(int argc, char** argv) {
  bool markdown = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--markdown") == 0) markdown = true;
    else return usage();
  }
  std::fputs(MetricSchema::instance().describe(markdown).c_str(), stdout);
  return 0;
}

int cmd_show(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string filter = argc > 3 ? argv[3] : "";
  BenchLog log;
  if (const std::string err = load_bench_json(argv[2], log); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  std::printf("| spec | metric | value |\n|---|---|---|\n");
  for (const auto& [key, metrics] : log) {
    if (!filter.empty() && key.find(filter) == std::string::npos) continue;
    for (const auto& [metric, value] : metrics) {
      std::printf("| `%s` | %s | %g |\n", key.c_str(), metric.c_str(), value);
    }
  }
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 3 || argc > 4) return usage();
  BenchLog cand;
  if (const std::string err = load_bench_json(argv[2], cand); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  const auto pit = cand.find("__profile__");
  if (pit == cand.end()) {
    std::fprintf(stderr, "%s: no __profile__ entry (the log predates sweep "
                         "profiling, or the emitter left it off)\n",
                 argv[2]);
    return 2;
  }
  BenchLog base;
  const MetricMap* base_profile = nullptr;
  if (argc == 4) {
    if (const std::string err = load_bench_json(argv[3], base); !err.empty()) {
      std::fprintf(stderr, "baseline: %s\n", err.c_str());
      return 2;
    }
    if (const auto bit = base.find("__profile__"); bit != base.end()) {
      base_profile = &bit->second;
    } else {
      std::fprintf(stderr, "baseline %s: no __profile__ entry\n", argv[3]);
    }
  }
  if (base_profile != nullptr) {
    std::printf("%-14s %12s %12s %10s\n", "field", "profile", "baseline", "delta");
    for (const auto& [field, value] : pit->second) {
      const auto bit = base_profile->find(field);
      if (bit == base_profile->end()) {
        std::printf("%-14s %12g %12s %10s\n", field.c_str(), value, "-", "-");
      } else {
        std::printf("%-14s %12g %12g %+10g\n", field.c_str(), value,
                    bit->second, value - bit->second);
      }
    }
  } else {
    std::printf("%-14s %12s\n", "field", "value");
    for (const auto& [field, value] : pit->second) {
      std::printf("%-14s %12g\n", field.c_str(), value);
    }
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 4) return usage();
  DiffTolerances tol;
  bool markdown = false;
  std::string out_path;
  for (int i = 4; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--tol-cycles=", 13) == 0) tol.cycles_pct = std::atof(a + 13);
    else if (std::strncmp(a, "--tol-energy=", 13) == 0) tol.energy_pct = std::atof(a + 13);
    else if (std::strncmp(a, "--tol-counters=", 15) == 0) tol.counter_pct = std::atof(a + 15);
    else if (std::strncmp(a, "--tol-ratio=", 12) == 0) tol.ratio_abs = std::atof(a + 12);
    else if (std::strcmp(a, "--markdown") == 0) markdown = true;
    else if (std::strncmp(a, "--out=", 6) == 0) out_path = a + 6;
    else return usage();
  }
  BenchLog base, cand;
  if (const std::string err = load_bench_json(argv[2], base); !err.empty()) {
    std::fprintf(stderr, "baseline: %s\n", err.c_str());
    return 2;
  }
  if (const std::string err = load_bench_json(argv[3], cand); !err.empty()) {
    std::fprintf(stderr, "candidate: %s\n", err.c_str());
    return 2;
  }
  const BenchDiff d = diff_bench_logs(base, cand, tol);
  const std::string report = d.report(markdown);
  std::fputs(report.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report;
    if (!out) std::fprintf(stderr, "warning: could not write %s\n", out_path.c_str());
  }
  return d.regressions() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "metrics") == 0) return cmd_metrics(argc, argv);
  if (std::strcmp(argv[1], "show") == 0) return cmd_show(argc, argv);
  if (std::strcmp(argv[1], "profile") == 0 ||
      std::strcmp(argv[1], "--profile") == 0) {
    return cmd_profile(argc, argv);
  }
  if (std::strcmp(argv[1], "diff") == 0) return cmd_diff(argc, argv);
  return usage();
}
