// The simulated machine: cores + TLBs + coherence fabric + runtime system,
// advanced by a deterministic discrete-event loop, with all coherence-mode
// policy delegated to a pluggable CoherenceBackend (src/raccd/modes/).
//
// Execution model (paper §II-C, Fig. 3): application code runs on the main
// thread creating tasks (spawn), paying creation/dependence-analysis costs;
// taskwait() is the global synchronisation point where all cores execute the
// created tasks. Each scheduled task body runs functionally once, recording
// its access trace, which is replayed access-by-access through the timing
// model: the loop always advances the core with the lowest local clock, so
// coherence transactions interleave in a deterministic global order.
//
// Mode policy lives entirely behind the backend seam: the backend's
// on_task_start/on_task_end hooks bracket every task (paper Fig. 3 for
// RaCCD's register/invalidate), and per-access non-coherence classification
// goes through a ClassifierView resolved once per task — the replay loop
// never branches on CohMode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "raccd/coherence/checker.hpp"
#include "raccd/coherence/fabric.hpp"
#include "raccd/core/adr.hpp"
#include "raccd/mem/sim_memory.hpp"
#include "raccd/metrics/series.hpp"
#include "raccd/modes/coherence_backend.hpp"
#include "raccd/runtime/runtime.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

namespace obs {
class TraceSink;
}

class Machine {
 public:
  explicit Machine(const SimConfig& cfg);

  // -- Application-facing API ---------------------------------------------------
  [[nodiscard]] SimMemory& mem() noexcept { return mem_; }
  /// Create a task (main thread pays creation + dependence analysis).
  TaskId spawn(TaskDesc desc);
  /// Global synchronisation point: execute all pending tasks to completion.
  void taskwait();
  /// Finalize and collect statistics (call once, after the last taskwait).
  [[nodiscard]] SimStats collect();

  // -- Introspection --------------------------------------------------------------
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] Runtime& runtime() noexcept { return rt_; }
  [[nodiscard]] CoherenceBackend& backend() noexcept { return *backend_; }
  [[nodiscard]] AdrController& adr() noexcept { return adr_; }
  [[nodiscard]] Cycle now() const noexcept { return main_clock_; }
  [[nodiscard]] CoherenceChecker* checker() noexcept {
    return cfg_.enable_checker ? &checker_ : nullptr;
  }

  /// Observer invoked as each task finishes, with the task's node (deps,
  /// name) and its recorded access trace — the hook trace capture
  /// (`apps/trace_capture.hpp`) uses to serialize whole workloads.
  using TraceSink = std::function<void(const TaskNode&, const AccessTrace&)>;
  void set_trace_sink(TraceSink sink) { trace_sink_ = std::move(sink); }

  /// Attach a simulated-time event trace (obs/trace_sink.hpp); nullptr
  /// detaches. Wires the fabric (DRAM/NoC/coherence events) and the mode
  /// backend (register/flip events) to the same sink and names the tracks.
  /// Recording is pure observation: attaching a sink never changes stats.
  void set_obs_trace(obs::TraceSink* sink);

  /// Phase-resolved metric series (cfg.series.interval > 0); nullptr when
  /// sampling is disabled. Final sample lands when collect() runs.
  [[nodiscard]] const Series* series() const noexcept {
    return sampler_ ? &sampler_->series() : nullptr;
  }

  /// Progress hook for sampled runs: invoked on every ffwd/detailed phase
  /// switch with the new phase and the number of sampling periods started.
  /// Never fires when sampling is disabled.
  using PhaseHook = std::function<void(SimPhase, std::uint64_t)>;
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  /// Progress hook for open-loop service runs: invoked each time the event
  /// loop releases a batch of gated tasks, with the total released so far.
  /// Never fires for batch workloads (no release-gated tasks).
  using ReleaseHook = std::function<void(std::uint64_t)>;
  void set_release_hook(ReleaseHook hook) { release_hook_ = std::move(hook); }

 private:
  struct CoreState {
    Cycle clock = 0;
    bool sleeping = false;
    TaskId current = kNoTask;
    std::size_t cursor = 0;
    AccessTrace trace;
    Cycle busy_cycles = 0;
    /// Backend classification hook, resolved once per task (devirtualized).
    ClassifierView classify{};
    /// Sampled simulation: phase assigned to the current task and its
    /// period group (window) for per-window measured-rate attribution.
    SimPhase phase = SimPhase::kMeasured;
    std::uint64_t window_id = 0;
    /// Fast-forward tier: far tasks (no detailed block within
    /// ffwd_near_tasks_ starts) skip per-access tag warming entirely.
    bool ffwd_far = false;
    /// Fast-forward batch classification: each page resolved through the
    /// ClassifierView once per task (sorted by vpage, binary-searched).
    std::vector<std::pair<PageNum, bool>> class_memo;
  };

  /// Per-request latency record: TaskNode::request groups a request's task
  /// chain; release comes from the chain head's gated release instant,
  /// start/end are the min task start / max task end across the chain.
  struct RequestLat {
    Cycle release = 0;
    Cycle start = 0;
    Cycle end = 0;
    bool started = false;
  };

  /// One sampling period's measured-window deltas: every counter here is
  /// accumulated as a before/after difference around the measured tasks'
  /// fabric accesses, so concurrent tasks from neighboring windows never
  /// contaminate each other's rates.
  struct WindowBucket {
    std::uint64_t accesses = 0;      ///< replayed accesses (incl. repeats)
    std::uint64_t stall_cycles = 0;  ///< translation + classification + memory
    std::uint64_t dir_accesses = 0, llc_hits = 0;
    std::uint64_t noc_flits = 0, noc_flit_hops = 0;
    std::uint64_t dram_row_hits = 0, dram_row_misses = 0, dram_row_conflicts = 0;
    double occ_sum = 0.0;  ///< instantaneous dir occupancy at task ends
    std::uint64_t occ_samples = 0;
  };

  /// Pop the awake core with the lowest (clock, id) from the run heap
  /// (kNoCore when every core sleeps). O(log cores) per step instead of the
  /// old O(cores) scan — the heap is what keeps the DES loop cheap at the
  /// 64-core counts multi-socket topologies reach.
  [[nodiscard]] CoreId pop_min_clock_core();
  /// Advance core c by one step (fetch a task, replay one record, or finish).
  void step(CoreId c);
  void start_task(CoreId c, TaskId t);
  void replay_record(CoreId c);
  void finish_task(CoreId c);
  void wake_sleepers(Cycle at);
  /// Sampled simulation (cfg_.sampling): phase of the k-th started task.
  [[nodiscard]] SimPhase phase_for(std::uint64_t k) const noexcept;
  /// For a kFfwd task: true when the next detailed block starts within
  /// ffwd_near_tasks_ task starts — near tasks replay every access through
  /// the fabric (full tag/TLB/row-buffer warming) so measured windows open
  /// on representative state; far tasks only advance classification and the
  /// clock, making long fast-forward stretches nearly free.
  [[nodiscard]] bool ffwd_is_near(std::uint64_t k) const noexcept;
  /// Flip the fabric to `p` iff it differs (and fire the phase hook).
  void sync_phase(SimPhase p);
  /// Fast-forward a whole task in one DES step: replay every remaining
  /// record functionally (state + stats, no timing), then advance the core
  /// clock by the compute gaps plus the running mean measured stall per
  /// access, and finish the task.
  void replay_task_ffwd(CoreId c);
  /// Scale the measured buckets up to run totals, fill SimStats::sampling
  /// (incl. per-metric 95% CIs from window-to-window rate variation).
  void apply_sampling(SimStats& s) const;
  /// Live stats snapshot for the series sampler: counters as-of-now,
  /// occupancy fields *instantaneous* (valid entries vs capacity right now)
  /// rather than the time-averaged integrals collect() reports.
  void snapshot_stats(Cycle at, SimStats& s) const;

  SimConfig cfg_;
  /// RACCD_LEGACY_STRUCTURES: keep the one-heap-round-trip-per-step event
  /// loop (A/B baseline for bench/throughput). The default loop keeps
  /// stepping the minimum core without touching the heap while it provably
  /// remains the minimum — identical step order by the same (clock, id)
  /// tie-break, at a fraction of the host cost.
  bool legacy_;
  CoherenceChecker checker_;
  Fabric fabric_;
  AdrController adr_;
  SimMemory mem_;
  Runtime rt_;
  std::vector<Tlb> tlbs_;
  std::vector<CoreState> cores_;
  Cycle main_clock_ = 0;

  /// Min-heap over (local clock, core id) of awake cores. Invariant: every
  /// awake core has exactly one live entry at its current clock (entries go
  /// stale only if a core slept after its entry was consumed — the pop
  /// validates before returning). Lexicographic order reproduces the legacy
  /// linear scan's tie-break exactly (lowest clock, then lowest core id).
  using ClockEntry = std::pair<Cycle, CoreId>;
  std::priority_queue<ClockEntry, std::vector<ClockEntry>, std::greater<ClockEntry>>
      run_heap_;

  // accumulated runtime-cost stats
  Cycle create_cycles_ = 0;
  Cycle schedule_cycles_ = 0;
  Cycle wakeup_cycles_ = 0;
  Cycle register_cycles_ = 0;
  Cycle invalidate_cycles_ = 0;
  std::uint64_t flushed_nc_lines_ = 0;
  std::uint64_t flushed_nc_wbs_ = 0;
  std::uint64_t accesses_replayed_ = 0;
  bool collected_ = false;

  // -- sampled simulation (cfg_.sampling; all idle when sampling_on_ is false)
  bool sampling_on_ = false;
  /// Functional-warming horizon: ffwd tasks this close (in task starts) to
  /// the next detailed block replay with full tag warming ("near" tier);
  /// the rest are "far" and skip per-access work. Two tasks per core: the
  /// warmup prefix rebuilds the small L1s, so the near tier only has to
  /// re-image the larger shared state (LLC, directory, DRAM row buffers)
  /// from each core's most recent tasks.
  std::uint64_t ffwd_near_tasks_ = 0;
  /// Timed cooldown appended to each detailed block (~one task per core,
  /// counted as warmup): keeps the measured window's tail contended by real
  /// traffic instead of fast-forwarded neighbors that occupy no resources.
  std::uint64_t cooldown_tasks_ = 0;
  std::uint64_t task_seq_ = 0;  ///< global task-start counter (phase schedule)
  std::uint64_t measured_tasks_ = 0, warmup_tasks_ = 0, ffwd_tasks_ = 0;
  std::uint64_t measured_accesses_ = 0, ffwd_accesses_ = 0;
  /// Dilation estimator: stall cycles per access observed across *detailed*
  /// replay (measured + warmup), the rate fast-forwarded tasks advance at.
  std::uint64_t detailed_stall_cycles_ = 0, detailed_stall_accesses_ = 0;
  /// Miss-cost split: fast-forward knows each access's true L1 hit/miss from
  /// the warm tags, so only the *penalty per miss* is estimated — the
  /// hit/miss mix (the dominant variance source) is exact per task.
  std::uint64_t detailed_miss_extra_ = 0, detailed_misses_ = 0;
  /// End-of-task teardown estimator: mode teardown (RaCCD NC-line flush,
  /// WbNC writeback flush) costs cycles proportional to the task's cached
  /// footprint — far-tier tasks leave no L1 footprint, so their teardown
  /// would be silently free and fine-grained task graphs would lose a
  /// per-task overhead that detailed runs pay. Charged per access at the
  /// measured-phase rate.
  std::uint64_t detailed_end_cycles_ = 0, detailed_end_accesses_ = 0;
  std::vector<WindowBucket> windows_;  ///< indexed by period group
  PhaseHook phase_hook_;

  // -- open-loop service runs (empty for batch workloads)
  std::vector<RequestLat> requests_;  ///< indexed by TaskNode::request
  ReleaseHook release_hook_;

  TraceSink trace_sink_;
  std::unique_ptr<StatSampler> sampler_;  ///< non-null iff series enabled

  // -- simulated-time event tracing (null = off; pure observation)
  obs::TraceSink* obs_ = nullptr;
  /// Interned ids for the fixed event names (valid iff obs_ != nullptr).
  struct ObsIds {
    std::uint16_t taskwait = 0, idle_gap = 0, release = 0, flush = 0,
                  queueing = 0, service = 0, respond = 0, noc_flits = 0,
                  lines = 0, wbs = 0, released = 0, until = 0, task = 0;
  } obs_ids_{};
  /// Emit the per-request lifecycle spans (collect() tail, post-hoc).
  void emit_request_spans();

  /// Constructed last (it references fabric/mem/tlbs), destroyed first.
  std::unique_ptr<CoherenceBackend> backend_;
};

}  // namespace raccd
