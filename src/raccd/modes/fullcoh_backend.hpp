// Full hardware coherence (the paper's baseline): every request is coherent,
// so the backend has no per-task hooks, no per-access classification (null
// ClassifierView — the miss path skips the call), and no private state.
#pragma once

#include "raccd/modes/coherence_backend.hpp"

namespace raccd {

class FullCohBackend final : public CoherenceBackend {
 public:
  explicit FullCohBackend(const BackendContext& ctx) : CoherenceBackend(ctx) {}

  [[nodiscard]] CohMode mode() const noexcept override { return CohMode::kFullCoh; }
};

}  // namespace raccd
