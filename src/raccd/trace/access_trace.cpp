// AccessTrace is header-only; this translation unit anchors the library.
#include "raccd/trace/access_trace.hpp"
