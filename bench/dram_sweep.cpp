// DRAM sweep: where does RaCCD's directory/memory trade collide with the
// memory system?
//
// RaCCD buys its directory savings with extra memory-side traffic — NC
// writebacks bypass the directory and land on DRAM (paper §III-C.3). Under
// the flat-latency memory model that trade is free; this sweep runs >= 2
// workloads under FullCoh/PT/RaCCD/WbNC against the detailed channel/bank/
// row-buffer model (dram/dram.hpp) across page policies and channel counts,
// and reports row-buffer locality, read queue waits and writeback queue
// pressure per system.
//
// Results merge into results/BENCH_grid.json and results/dram_sweep.csv.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::parse(argc, argv);
  // The third workload overflows the LLC (per-lane footprint > LLC share),
  // so dirty capacity evictions stream writebacks at DRAM and the write
  // queue actually fills — the regime where the coherence systems' memory
  // traffic differs most.
  const std::vector<std::string> workloads{"jacobi", "synthetic",
                                           "synthetic:footprint_kb=1024"};
  const std::vector<std::string> drams{"ddr-open", "ddr-closed", "ddr-open-ch4",
                                       "ddr-closed-ch4"};

  const std::vector<RunSpec> specs = Grid()
                                         .workloads(workloads)
                                         .set_params(opts.params)
                                         .size(opts.size)
                                         .modes(kAllBackends)
                                         .topology(opts.topo)
                                         .drams(drams)
                                         .paper_machine(opts.paper_machine)
                                         .specs();
  std::fprintf(stderr,
               "dram sweep: %zu simulations (%zu workloads x %zu systems x "
               "%zu DRAM configs), size=%s — cached results reused\n",
               specs.size(), workloads.size(), kAllBackends.size(), drams.size(),
               to_string(opts.size));
  const ResultSet rs = bench::run_logged(specs, opts);

  // Grid nesting (grid.hpp): workloads > modes > drams (innermost).
  const auto at = [&](std::size_t w, std::size_t m, std::size_t d) -> const SimStats& {
    return rs[(w * kAllBackends.size() + m) * drams.size() + d];
  };

  std::printf("DRAM sweep — row-buffer locality and queueing by coherence system\n");
  TextTable table({"workload", "dram", "system", "cycles", "mem reads", "mem writes",
                   "row hit %", "rd queue wait", "wb wait", "mem energy nJ"});
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    if (w != 0) table.add_separator();
    for (std::size_t d = 0; d < drams.size(); ++d) {
      for (std::size_t m = 0; m < kAllBackends.size(); ++m) {
        const SimStats& s = at(w, m, d);
        table.add_row({workloads[w], drams[d], to_string(s.mode),
                       format_count(s.cycles), format_count(s.fabric.mem_reads),
                       format_count(s.fabric.mem_writes),
                       strprintf("%.1f", 100.0 * metric_value(s, "dram.row_hit_rate")),
                       format_count(s.fabric.dram_queue_wait_cycles),
                       format_count(s.fabric.mem_wb_wait_cycles),
                       strprintf("%.1f", s.mem_dyn_energy_pj / 1e3)});
      }
    }
  }
  table.print();
  if (table.write_csv("results/dram_sweep.csv")) {
    std::printf("(csv written to results/dram_sweep.csv)\n");
  }

  // The claims under test. (1) Page policy is load-bearing: the open-page
  // row-buffer hit rate beats closed-page (which cannot row-hit at all) on
  // every workload x system. (2) The coherence system changes what DRAM
  // sees: FullCoh and RaCCD differ measurably in row-buffer locality or
  // queueing on the same workload and DRAM config.
  bool policy_split = true;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t m = 0; m < kAllBackends.size(); ++m) {
      const SimStats& open = at(w, m, 0);
      const SimStats& closed = at(w, m, 1);
      policy_split = policy_split && open.fabric.dram_row_hits > 0 &&
                     closed.fabric.dram_row_hits == 0;
    }
  }
  std::printf("\nopen vs closed page: %s\n",
              policy_split ? "open-page row hits present on every system, "
                             "closed-page none (as constructed)"
                           : "UNEXPECTED: open/closed row-hit split violated!");

  bool mode_split = false;
  // Derive axis positions from the driving list (not enum values), so a
  // reordered kAllBackends cannot silently mislabel the gate's rows.
  const auto mode_idx = [](CohMode m) {
    return static_cast<std::size_t>(
        std::find(kAllBackends.begin(), kAllBackends.end(), m) - kAllBackends.begin());
  };
  const std::size_t full = mode_idx(CohMode::kFullCoh);
  const std::size_t raccd = mode_idx(CohMode::kRaCCD);
  std::printf("FullCoh vs RaCCD at the memory system (open page):\n");
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const SimStats& f = at(w, full, 0);
    const SimStats& r = at(w, raccd, 0);
    const double fh = f.fabric.dram_row_hit_ratio();
    const double rh = r.fabric.dram_row_hit_ratio();
    const bool differs = fh != rh || f.fabric.dram_queue_wait_cycles !=
                                         r.fabric.dram_queue_wait_cycles;
    mode_split = mode_split || differs;
    std::printf("  %-10s row hit %5.1f%% -> %5.1f%%, rd queue wait %8llu -> %8llu, "
                "wb wait %8llu -> %8llu (%s)\n",
                workloads[w].c_str(), 100.0 * fh, 100.0 * rh,
                static_cast<unsigned long long>(f.fabric.dram_queue_wait_cycles),
                static_cast<unsigned long long>(r.fabric.dram_queue_wait_cycles),
                static_cast<unsigned long long>(f.fabric.mem_wb_wait_cycles),
                static_cast<unsigned long long>(r.fabric.mem_wb_wait_cycles),
                differs ? "differs" : "identical");
  }
  std::printf("%s\n", mode_split && policy_split
                          ? "RESULT: coherence system and page policy both shape "
                            "the memory system."
                          : "RESULT: DRAM metrics failed to separate the systems!");
  return mode_split && policy_split ? 0 : 1;
}
