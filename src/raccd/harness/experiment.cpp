#include "raccd/harness/experiment.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/harness/sweep_cache.hpp"

namespace raccd {

std::string RunSpec::key() const {
  return strprintf("%s-%s-%s-d%u%s%s-s%llu-nl%u-ne%u-%s-%s-v%u", app.c_str(),
                   to_string(size), to_string(mode), dir_ratio, adr ? "-adr" : "",
                   paper_machine ? "-paperm" : "", static_cast<unsigned long long>(seed),
                   static_cast<unsigned>(ncrt_latency), ncrt_entries,
                   alloc == AllocPolicy::kContiguous ? "cont" : "frag",
                   to_string(sched), kStatsFormatVersion);
}

SimConfig config_for(const RunSpec& spec) {
  SimConfig cfg =
      spec.paper_machine ? SimConfig::paper(spec.mode) : SimConfig::scaled(spec.mode);
  cfg.set_dir_ratio(spec.dir_ratio);
  cfg.adr.enabled = spec.adr;
  cfg.timing.ncrt_lookup_cycles = spec.ncrt_latency;
  cfg.raccd.ncrt_entries = spec.ncrt_entries;
  cfg.alloc_policy = spec.alloc;
  cfg.sched = spec.sched;
  cfg.seed = spec.seed;
  return cfg;
}

SimStats run_one(const RunSpec& spec) {
  Machine machine(config_for(spec));
  auto app = make_app(spec.app, AppConfig{spec.size, spec.seed});
  app->run(machine);
  const std::string err = app->verify(machine);
  if (!err.empty()) {
    std::fprintf(stderr, "verification failed for %s: %s\n", spec.key().c_str(),
                 err.c_str());
    RACCD_ASSERT(false, "application verification failed");
  }
  return machine.collect();
}

std::vector<SimStats> run_all(const std::vector<RunSpec>& specs, const RunOptions& opts) {
  std::vector<SimStats> results(specs.size());
  std::vector<std::uint8_t> pending(specs.size(), 1);

  if (opts.use_cache) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (auto cached = cache_load(opts.cache_dir, specs[i].key())) {
        results[i] = *cached;
        pending[i] = 0;
      }
    }
  }

  // Identical specs (same cache key) are simulated once and copied, so
  // callers may pass spec lists with repeats without paying for them.
  std::vector<std::size_t> todo;
  std::unordered_map<std::string, std::size_t> first_with_key;
  std::vector<std::pair<std::size_t, std::size_t>> dup;  // (dst, src) indices
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (pending[i] == 0) continue;
    const auto [it, inserted] = first_with_key.try_emplace(specs[i].key(), i);
    if (inserted) todo.push_back(i);
    else dup.emplace_back(i, it->second);
  }
  if (!todo.empty()) {
    unsigned threads = opts.threads != 0 ? opts.threads : std::thread::hardware_concurrency();
    threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(todo.size())));
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t slot = next.fetch_add(1);
        if (slot >= todo.size()) return;
        const std::size_t i = todo[slot];
        results[i] = run_one(specs[i]);
        if (opts.use_cache) cache_store(opts.cache_dir, specs[i].key(), results[i]);
        const std::size_t d = done.fetch_add(1) + 1;
        if (opts.verbose) {
          std::fprintf(stderr, "[%zu/%zu] %s\n", d, todo.size(), specs[i].key().c_str());
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  for (const auto& [dst, src] : dup) results[dst] = results[src];
  return results;
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  const auto apply_size = [&o](const char* v) {
    if (std::strcmp(v, "tiny") == 0) o.size = SizeClass::kTiny;
    if (std::strcmp(v, "small") == 0) o.size = SizeClass::kSmall;
    if (std::strcmp(v, "paper") == 0) o.size = SizeClass::kPaper;
  };
  if (const char* env = std::getenv("RACCD_SIZE")) apply_size(env);
  if (std::getenv("RACCD_PAPER") != nullptr) o.paper_machine = true;
  if (std::getenv("RACCD_NO_CACHE") != nullptr) o.run.use_cache = false;
  if (const char* env = std::getenv("RACCD_THREADS")) {
    o.run.threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--size=", 7) == 0) apply_size(a + 7);
    else if (std::strcmp(a, "--paper") == 0) o.paper_machine = true;
    else if (std::strcmp(a, "--no-cache") == 0) o.run.use_cache = false;
    else if (std::strcmp(a, "--verbose") == 0) o.run.verbose = true;
    else if (std::strncmp(a, "--threads=", 10) == 0) {
      o.run.threads = static_cast<unsigned>(std::strtoul(a + 10, nullptr, 10));
    }
  }
  return o;
}

}  // namespace raccd
