#include "raccd/metrics/histogram.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace raccd {

std::uint32_t Histogram::index_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const std::uint32_t oct = std::bit_width(v) - 1;  // msb position
  // Position within the octave [2^oct, 2^(oct+1)), scaled to kSub slots
  // (shift-only for wide octaves so the scaling never overflows).
  const std::uint64_t off = v - (1ULL << oct);
  const std::uint32_t sub =
      oct >= 5 ? static_cast<std::uint32_t>(off >> (oct - 5))
               : static_cast<std::uint32_t>((off * kSub) >> oct);
  return 1 + oct * kSub + sub;
}

void Histogram::bounds_of(std::uint32_t i, double& lo, double& hi) noexcept {
  const std::uint32_t oct = (i - 1) / kSub;
  const std::uint32_t sub = (i - 1) % kSub;
  const double base = std::ldexp(1.0, static_cast<int>(oct));
  lo = base * (1.0 + static_cast<double>(sub) / kSub);
  hi = base * (1.0 + static_cast<double>(sub + 1) / kSub);
}

void Histogram::add(std::uint64_t v) noexcept {
  ++counts_[index_of(v)];
  ++count_;
  sum_ += v;
  if (v > max_) max_ = v;
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.999999);
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    if (cum + counts_[i] >= rank) {
      if (i == 0) return 0.0;
      double lo = 0.0, hi = 0.0;
      bounds_of(i, lo, hi);
      const double within = static_cast<double>(rank - cum) /
                            static_cast<double>(counts_[i]);
      const double v = lo + (hi - lo) * within;
      // Never report past the exact observed maximum.
      return v < static_cast<double>(max_) ? v : static_cast<double>(max_);
    }
    cum += counts_[i];
  }
  return static_cast<double>(max_);
}

DistSummary Histogram::summary() const noexcept {
  DistSummary d;
  d.count = count_;
  d.mean = mean();
  d.p50 = percentile(0.50);
  d.p95 = percentile(0.95);
  d.p99 = percentile(0.99);
  d.max = count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : static_cast<double>(max_);
  return d;
}

}  // namespace raccd
