// Aligned ASCII tables + CSV export for the bench binaries: each bench prints
// the same rows/series the corresponding paper table or figure reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace raccd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal separator before the next row.
  void add_separator() { separators_.push_back(rows_.size()); }

  void print(std::FILE* out = stdout) const;
  /// Write as CSV; returns false on IO failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;
};

}  // namespace raccd
