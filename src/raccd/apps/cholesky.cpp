// Cholesky: the paper's running example (Fig. 1) — blocked right-looking
// Cholesky factorization with potrf/trsm/syrk/gemm tasks.
//
// The matrix uses the paper's tiled layout A[G][G][T][T]: each T x T tile is
// contiguous, so every dependence annotation is a single byte range. Kernels
// load their tiles into local buffers, compute, and store results —
// dependence-declared data is exactly the data the tasks touch.
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

struct CholParams {
  std::uint32_t tiles;      ///< G: tile grid dimension
  std::uint32_t tile_dim;   ///< T: tile edge
};

[[nodiscard]] CholParams params_for(const AppConfig& cfg) {
  CholParams p{8, 32};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {4, 16}; break;
    case SizeClass::kSmall: p = {8, 32}; break;
    case SizeClass::kMedium: p = {12, 48}; break;
    case SizeClass::kPaper: p = {16, 64}; break;
    case SizeClass::kLarge: p = {24, 96}; break;
  }
  p.tiles = cfg.params.get_u32("tiles", p.tiles);
  p.tile_dim = cfg.params.get_u32("tile_dim", p.tile_dim);
  return p;
}

class CholeskyApp final : public App {
 public:
  explicit CholeskyApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "cholesky"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("matrix %ux%u in %ux%u tiles of %ux%u (paper Fig. 1)",
                     p_.tiles * p_.tile_dim, p_.tiles * p_.tile_dim, p_.tiles, p_.tiles,
                     p_.tile_dim, p_.tile_dim);
  }

  [[nodiscard]] VAddr tile(std::uint32_t i, std::uint32_t j) const noexcept {
    const std::uint64_t words = static_cast<std::uint64_t>(p_.tile_dim) * p_.tile_dim;
    return a_ + ((static_cast<VAddr>(i) * p_.tiles + j) * words) * sizeof(double);
  }
  [[nodiscard]] std::uint64_t tile_bytes() const noexcept {
    return static_cast<std::uint64_t>(p_.tile_dim) * p_.tile_dim * sizeof(double);
  }

  void run(Machine& m) override {
    const std::uint32_t g = p_.tiles, td = p_.tile_dim;
    const std::uint32_t n = g * td;
    a_ = m.mem().alloc_array<double>(static_cast<std::uint64_t>(n) * n, "cholesky.a");
    init_spd(m.mem());

    const std::uint64_t tb = tile_bytes();
    for (std::uint32_t k = 0; k < g; ++k) {
      {
        TaskDesc t;
        t.name = strprintf("potrf(%u)", k);
        t.deps = {DepSpec{tile(k, k), tb, DepKind::kInout}};
        const VAddr akk = tile(k, k);
        t.body = [akk, td](TaskContext& ctx) { potrf_kernel(ctx, akk, td); };
        m.spawn(std::move(t));
      }
      for (std::uint32_t i = k + 1; i < g; ++i) {
        TaskDesc t;
        t.name = strprintf("trsm(%u,%u)", i, k);
        t.deps = {DepSpec{tile(k, k), tb, DepKind::kIn},
                  DepSpec{tile(i, k), tb, DepKind::kInout}};
        const VAddr akk = tile(k, k), aik = tile(i, k);
        t.body = [akk, aik, td](TaskContext& ctx) { trsm_kernel(ctx, akk, aik, td); };
        m.spawn(std::move(t));
      }
      for (std::uint32_t i = k + 1; i < g; ++i) {
        for (std::uint32_t j = k + 1; j <= i; ++j) {
          if (i == j) {
            TaskDesc t;
            t.name = strprintf("syrk(%u,%u)", i, k);
            t.deps = {DepSpec{tile(i, k), tb, DepKind::kIn},
                      DepSpec{tile(i, i), tb, DepKind::kInout}};
            const VAddr aik = tile(i, k), aii = tile(i, i);
            t.body = [aik, aii, td](TaskContext& ctx) { syrk_kernel(ctx, aik, aii, td); };
            m.spawn(std::move(t));
          } else {
            TaskDesc t;
            t.name = strprintf("gemm(%u,%u,%u)", i, j, k);
            t.deps = {DepSpec{tile(i, k), tb, DepKind::kIn},
                      DepSpec{tile(j, k), tb, DepKind::kIn},
                      DepSpec{tile(i, j), tb, DepKind::kInout}};
            const VAddr aik = tile(i, k), ajk = tile(j, k), aij = tile(i, j);
            t.body = [aik, ajk, aij, td](TaskContext& ctx) {
              gemm_kernel(ctx, aik, ajk, aij, td);
            };
            m.spawn(std::move(t));
          }
        }
      }
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    // Reconstruct L * L^T from the lower-triangular tiles and compare to the
    // original matrix.
    const std::uint32_t g = p_.tiles, td = p_.tile_dim;
    const std::uint32_t n = g * td;
    std::vector<double> l(static_cast<std::size_t>(n) * n, 0.0);
    std::vector<double> t(static_cast<std::size_t>(td) * td);
    for (std::uint32_t ti = 0; ti < g; ++ti) {
      for (std::uint32_t tj = 0; tj <= ti; ++tj) {
        m.mem().copy_out(tile(ti, tj), t.data(), tile_bytes());
        for (std::uint32_t i = 0; i < td; ++i) {
          for (std::uint32_t j = 0; j < td; ++j) {
            const std::uint32_t gi = ti * td + i, gj = tj * td + j;
            if (gj <= gi) l[static_cast<std::size_t>(gi) * n + gj] = t[i * td + j];
          }
        }
      }
    }
    double max_rel = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j <= i; ++j) {
        double acc = 0.0;
        for (std::uint32_t k = 0; k <= j; ++k) {
          acc += l[static_cast<std::size_t>(i) * n + k] *
                 l[static_cast<std::size_t>(j) * n + k];
        }
        const double want = original_[static_cast<std::size_t>(i) * n + j];
        const double rel = std::abs(acc - want) / (std::abs(want) + 1.0);
        max_rel = std::max(max_rel, rel);
      }
    }
    if (max_rel > 1e-9) {
      return strprintf("cholesky reconstruction error %.3e", max_rel);
    }
    return {};
  }

 private:
  // -- Tile kernels: load -> compute locally -> store --------------------------
  static void load_tile(TaskContext& ctx, VAddr t, std::uint32_t td, double* buf) {
    for (std::uint32_t w = 0; w < td * td; ++w) {
      buf[w] = ctx.load<double>(t + static_cast<VAddr>(w) * sizeof(double));
    }
  }
  static void store_tile(TaskContext& ctx, VAddr t, std::uint32_t td, const double* buf) {
    for (std::uint32_t w = 0; w < td * td; ++w) {
      ctx.store<double>(t + static_cast<VAddr>(w) * sizeof(double), buf[w]);
    }
  }

  static void potrf_kernel(TaskContext& ctx, VAddr akk, std::uint32_t td) {
    std::vector<double> a(static_cast<std::size_t>(td) * td);
    load_tile(ctx, akk, td, a.data());
    ctx.compute(static_cast<std::uint64_t>(td) * td * td / 6);
    for (std::uint32_t j = 0; j < td; ++j) {
      double d = a[static_cast<std::size_t>(j) * td + j];
      for (std::uint32_t k = 0; k < j; ++k) {
        d -= a[static_cast<std::size_t>(j) * td + k] * a[static_cast<std::size_t>(j) * td + k];
      }
      d = std::sqrt(d);
      a[static_cast<std::size_t>(j) * td + j] = d;
      for (std::uint32_t i = j + 1; i < td; ++i) {
        double v = a[static_cast<std::size_t>(i) * td + j];
        for (std::uint32_t k = 0; k < j; ++k) {
          v -= a[static_cast<std::size_t>(i) * td + k] * a[static_cast<std::size_t>(j) * td + k];
        }
        a[static_cast<std::size_t>(i) * td + j] = v / d;
      }
    }
    // Zero the strict upper triangle of the factored tile.
    for (std::uint32_t i = 0; i < td; ++i) {
      for (std::uint32_t j = i + 1; j < td; ++j) a[static_cast<std::size_t>(i) * td + j] = 0.0;
    }
    store_tile(ctx, akk, td, a.data());
  }

  /// A[i][k] = A[i][k] * L(k,k)^-T  (right solve with the lower factor).
  static void trsm_kernel(TaskContext& ctx, VAddr akk, VAddr aik, std::uint32_t td) {
    std::vector<double> l(static_cast<std::size_t>(td) * td);
    std::vector<double> a(static_cast<std::size_t>(td) * td);
    load_tile(ctx, akk, td, l.data());
    load_tile(ctx, aik, td, a.data());
    ctx.compute(static_cast<std::uint64_t>(td) * td * td / 2);
    for (std::uint32_t row = 0; row < td; ++row) {
      for (std::uint32_t j = 0; j < td; ++j) {
        double v = a[static_cast<std::size_t>(row) * td + j];
        for (std::uint32_t k = 0; k < j; ++k) {
          v -= a[static_cast<std::size_t>(row) * td + k] * l[static_cast<std::size_t>(j) * td + k];
        }
        a[static_cast<std::size_t>(row) * td + j] = v / l[static_cast<std::size_t>(j) * td + j];
      }
    }
    store_tile(ctx, aik, td, a.data());
  }

  /// A[i][i] -= A[i][k] * A[i][k]^T (lower triangle).
  static void syrk_kernel(TaskContext& ctx, VAddr aik, VAddr aii, std::uint32_t td) {
    std::vector<double> a(static_cast<std::size_t>(td) * td);
    std::vector<double> c(static_cast<std::size_t>(td) * td);
    load_tile(ctx, aik, td, a.data());
    load_tile(ctx, aii, td, c.data());
    ctx.compute(static_cast<std::uint64_t>(td) * td * td / 2);
    for (std::uint32_t i = 0; i < td; ++i) {
      for (std::uint32_t j = 0; j <= i; ++j) {
        double acc = 0.0;
        for (std::uint32_t k = 0; k < td; ++k) {
          acc += a[static_cast<std::size_t>(i) * td + k] * a[static_cast<std::size_t>(j) * td + k];
        }
        c[static_cast<std::size_t>(i) * td + j] -= acc;
      }
    }
    store_tile(ctx, aii, td, c.data());
  }

  /// A[i][j] -= A[i][k] * A[j][k]^T.
  static void gemm_kernel(TaskContext& ctx, VAddr aik, VAddr ajk, VAddr aij,
                          std::uint32_t td) {
    std::vector<double> a(static_cast<std::size_t>(td) * td);
    std::vector<double> b(static_cast<std::size_t>(td) * td);
    std::vector<double> c(static_cast<std::size_t>(td) * td);
    load_tile(ctx, aik, td, a.data());
    load_tile(ctx, ajk, td, b.data());
    load_tile(ctx, aij, td, c.data());
    ctx.compute(static_cast<std::uint64_t>(td) * td * td);
    for (std::uint32_t i = 0; i < td; ++i) {
      for (std::uint32_t j = 0; j < td; ++j) {
        double acc = 0.0;
        for (std::uint32_t k = 0; k < td; ++k) {
          acc += a[static_cast<std::size_t>(i) * td + k] * b[static_cast<std::size_t>(j) * td + k];
        }
        c[static_cast<std::size_t>(i) * td + j] -= acc;
      }
    }
    store_tile(ctx, aij, td, c.data());
  }

  /// SPD matrix in tiled layout: A = M M^T + n I with pseudo-random M.
  void init_spd(SimMemory& mem) {
    const std::uint32_t g = p_.tiles, td = p_.tile_dim;
    const std::uint32_t n = g * td;
    Rng rng(seed_);
    std::vector<double> mrand(static_cast<std::size_t>(n) * n);
    for (auto& v : mrand) v = rng.next_double();
    original_.assign(static_cast<std::size_t>(n) * n, 0.0);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j <= i; ++j) {
        double acc = i == j ? static_cast<double>(n) : 0.0;
        for (std::uint32_t k = 0; k < n; ++k) {
          acc += mrand[static_cast<std::size_t>(i) * n + k] *
                 mrand[static_cast<std::size_t>(j) * n + k];
        }
        original_[static_cast<std::size_t>(i) * n + j] = acc;
        original_[static_cast<std::size_t>(j) * n + i] = acc;
      }
    }
    // Scatter into the tiled layout.
    std::vector<double> t(static_cast<std::size_t>(td) * td);
    for (std::uint32_t ti = 0; ti < g; ++ti) {
      for (std::uint32_t tj = 0; tj < g; ++tj) {
        for (std::uint32_t i = 0; i < td; ++i) {
          for (std::uint32_t j = 0; j < td; ++j) {
            t[static_cast<std::size_t>(i) * td + j] =
                original_[static_cast<std::size_t>(ti * td + i) * n + tj * td + j];
          }
        }
        mem.copy_in(tile(ti, tj), t.data(), tile_bytes());
      }
    }
  }

  CholParams p_;
  std::uint64_t seed_;
  VAddr a_ = 0;
  std::vector<double> original_;
};

const WorkloadRegistrar kRegistrar{{
    "cholesky",
    "tiled Cholesky factorization, the paper's Fig. 1 running example",
    "paper",
    ParamSchema()
        .add_int("tiles", 8, "tile grid dimension G (G x G tiles)", 2, 64)
        .add_int("tile_dim", 32, "tile edge T (T x T doubles per tile)", 4, 256),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<CholeskyApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
