// RFC 1321 appendix A.5 test vectors for the MD5 core.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "raccd/apps/md5_core.hpp"

namespace raccd::apps {
namespace {

std::string hash_of(const std::string& msg) {
  return md5_hex(md5_hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size())));
}

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(hash_of(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hash_of("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(hash_of("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hash_of("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hash_of("abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(hash_of("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      hash_of("12345678901234567890123456789012345678901234567890123456789012345678901234567890"),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, MultiBlockMessages) {
  // Cross the 64-byte block boundary in every interesting way.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u, 1000u}) {
    std::string msg(len, 'x');
    for (std::size_t i = 0; i < len; ++i) msg[i] = static_cast<char>('a' + i % 26);
    // Reference via one-shot vs streaming transform+finalize must agree.
    Md5State st;
    std::size_t off = 0;
    std::uint32_t block[16];
    while (len - off >= 64) {
      std::memcpy(block, msg.data() + off, 64);
      md5_transform(st, block);
      off += 64;
    }
    const auto streamed = md5_finalize(
        st, len,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(msg.data()) + off, len - off));
    const auto oneshot = md5_hash(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), len));
    EXPECT_EQ(streamed, oneshot) << "len=" << len;
  }
}

TEST(Md5, HexFormatting) {
  std::array<std::uint8_t, 16> digest{};
  digest[0] = 0x01;
  digest[15] = 0xff;
  const std::string hex = md5_hex(digest);
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex.substr(0, 2), "01");
  EXPECT_EQ(hex.substr(30, 2), "ff");
}

}  // namespace
}  // namespace raccd::apps
