#include <gtest/gtest.h>

#include "raccd/cache/l1_cache.hpp"
#include "raccd/cache/llc_bank.hpp"
#include "raccd/cache/replacement.hpp"

namespace raccd {
namespace {

TEST(Replacement, TreePlruTwoWay) {
  ReplacementState r(ReplPolicy::kTreePlru, 4, 2);
  r.touch(0, 0);
  EXPECT_EQ(r.victim(0), 1u);
  r.touch(0, 1);
  EXPECT_EQ(r.victim(0), 0u);
}

TEST(Replacement, TreePlruEightWayPointsAwayFromRecent) {
  ReplacementState r(ReplPolicy::kTreePlru, 1, 8);
  for (std::uint32_t w = 0; w < 8; ++w) r.touch(0, w);
  // After touching 0..7 in order, the victim must not be the most recent.
  EXPECT_NE(r.victim(0), 7u);
}

TEST(Replacement, TreePlruCoversAllWaysUnderRoundRobinTouches) {
  ReplacementState r(ReplPolicy::kTreePlru, 1, 4);
  // Repeatedly touch the current victim: every way must eventually be chosen.
  bool seen[4] = {};
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = r.victim(0);
    seen[v] = true;
    r.touch(0, v);
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Replacement, LruExactOrder) {
  ReplacementState r(ReplPolicy::kLru, 1, 4);
  r.touch(0, 2);
  r.touch(0, 0);
  r.touch(0, 3);
  r.touch(0, 1);
  EXPECT_EQ(r.victim(0), 2u);
  r.touch(0, 2);
  EXPECT_EQ(r.victim(0), 0u);
}

TEST(Replacement, FifoIgnoresReTouches) {
  ReplacementState r(ReplPolicy::kFifo, 1, 3);
  r.touch(0, 0);
  r.touch(0, 1);
  r.touch(0, 2);
  r.touch(0, 0);  // re-touch must not refresh FIFO age
  EXPECT_EQ(r.victim(0), 0u);
}

TEST(L1Cache, GeometryAndBasicFill) {
  L1Cache l1(L1Geometry{});  // 32 KB, 2-way -> 256 sets
  EXPECT_EQ(l1.sets(), 256u);
  EXPECT_EQ(l1.line_capacity(), 512u);
  EXPECT_EQ(l1.find(42), nullptr);
  const L1Line evicted = l1.fill(42, false, Mesi::kExclusive, false, 7);
  EXPECT_FALSE(evicted.valid);
  L1Line* hit = l1.find(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->coh, Mesi::kExclusive);
  EXPECT_EQ(hit->version, 7u);
  EXPECT_EQ(l1.valid_lines(), 1u);
}

TEST(L1Cache, ConflictEviction) {
  L1Cache l1(L1Geometry{});
  // Three lines mapping to set 0 in a 2-way cache: the first fill's victim
  // is returned on the third.
  const LineAddr a = 0, b = 256, c = 512;
  l1.fill(a, false, Mesi::kShared, false, 0);
  l1.fill(b, false, Mesi::kModified, true, 3);
  l1.touch(*l1.find(b));  // make a the PLRU victim
  const L1Line victim = l1.fill(c, false, Mesi::kShared, false, 0);
  EXPECT_TRUE(victim.valid);
  EXPECT_EQ(victim.line, a);
  EXPECT_EQ(l1.valid_lines(), 2u);
}

TEST(L1Cache, InvalidateReturnsOldContents) {
  L1Cache l1(L1Geometry{});
  l1.fill(9, true, Mesi::kInvalid, true, 5);
  const L1Line old = l1.invalidate(9);
  EXPECT_TRUE(old.valid);
  EXPECT_TRUE(old.nc);
  EXPECT_TRUE(old.dirty);
  EXPECT_EQ(old.version, 5u);
  EXPECT_EQ(l1.find(9), nullptr);
  EXPECT_FALSE(l1.invalidate(9).valid);
}

TEST(L1Cache, WalkVisitsAllValid) {
  L1Cache l1(L1Geometry{});
  for (LineAddr l = 0; l < 100; ++l) l1.fill(l, l % 2 == 0, Mesi::kShared, false, 0);
  unsigned total = 0, nc = 0;
  l1.for_each_valid([&](L1Line& line) {
    ++total;
    nc += line.nc ? 1 : 0;
  });
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(nc, 50u);
}

TEST(LlcBank, SetIndexSkipsBankBits) {
  LlcGeometry geo;
  geo.lines_per_bank = 2048;
  geo.ways = 8;
  geo.bank_bits = 4;
  LlcBank bank(geo);
  EXPECT_EQ(bank.sets(), 256u);
  // Lines 16 apart (same bank for 16 banks) land in consecutive sets.
  EXPECT_EQ(bank.set_of(0), 0u);
  EXPECT_EQ(bank.set_of(16), 1u);
  EXPECT_EQ(bank.set_of(16 * 256), 0u);  // wraps after 256 sets
}

TEST(LlcBank, FillEvictProtocol) {
  LlcGeometry geo;
  geo.lines_per_bank = 64;  // 8 sets x 8 ways
  geo.ways = 8;
  geo.bank_bits = 0;
  LlcBank bank(geo);
  // Fill one full set (lines congruent mod 8).
  for (int w = 0; w < 8; ++w) {
    EXPECT_FALSE(bank.peek_victim(w * 8).valid);
    bank.fill(w * 8, false, false, 0);
  }
  const LlcLine victim = bank.peek_victim(64);
  EXPECT_TRUE(victim.valid);
  // Caller must evict the victim before filling.
  bank.invalidate(victim.line);
  bank.fill(64, true, true, 11);
  LlcLine* found = bank.find(64);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->nc);
  EXPECT_TRUE(found->dirty);
  EXPECT_EQ(bank.valid_lines(), 8u);
}

}  // namespace
}  // namespace raccd
