#include "raccd/harness/experiment.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "raccd/apps/registry.hpp"
#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/harness/sweep_cache.hpp"

namespace raccd {
namespace {

/// A `file` workload param names external content the spec identity must
/// reflect: hash the bytes so re-recording a trace to the same path cannot
/// reuse a stale cache entry. Unreadable files hash to a fixed marker.
/// Memoized per path for the life of the process — key() sits on the
/// executor's hot path and sweeps call it several times per spec.
[[nodiscard]] std::string file_param_fingerprint(const std::string& params) {
  WorkloadParams p;
  if (!WorkloadParams::parse(params, p).empty()) return {};
  const std::string* path = p.raw("file");
  if (path == nullptr || path->empty()) return {};

  static std::mutex memo_mutex;
  static std::unordered_map<std::string, std::string> memo;
  {
    const std::lock_guard<std::mutex> lock(memo_mutex);
    if (const auto it = memo.find(*path); it != memo.end()) return it->second;
  }
  std::string fp = "-fh0";
  if (std::FILE* f = std::fopen(path->c_str(), "rb"); f != nullptr) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    unsigned char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      for (std::size_t i = 0; i < n; ++i) h = (h ^ buf[i]) * 0x100000001b3ULL;
    }
    std::fclose(f);
    fp = strprintf("-fh%016llx", static_cast<unsigned long long>(h));
  }
  const std::lock_guard<std::mutex> lock(memo_mutex);
  memo.emplace(*path, fp);
  return fp;
}

}  // namespace

std::string RunSpec::workload_ref() const {
  return params.empty() ? app : app + ":" + params;
}

std::string RunSpec::set_workload_ref(std::string_view ref) {
  WorkloadParams p;
  const std::string err = parse_workload_ref(ref, app, p);
  if (err.empty()) params = p.canonical();
  return err;
}

std::string RunSpec::key() const {
  std::string k =
      strprintf("%s-%s-%s-d%u%s%s-s%llu-nl%u-ne%u-%s-%s-v%u", app.c_str(),
                to_string(size), to_string(mode), dir_ratio, adr ? "-adr" : "",
                paper_machine ? "-paperm" : "", static_cast<unsigned long long>(seed),
                static_cast<unsigned>(ncrt_latency), ncrt_entries, to_string(alloc),
                to_string(sched), kStatsFormatVersion);
  // Only non-default extensions append, so legacy cache keys stay valid.
  if (adr_theta_inc != 0.80 || adr_theta_dec != 0.20) {
    k += strprintf("-ti%g-td%g", adr_theta_inc, adr_theta_dec);
  }
  if (topo != "flat") k += strprintf("-t%s", topo.c_str());
  if (dram != "simple") k += strprintf("-dram=%s", dram.c_str());
  if (!params.empty()) {
    k += strprintf("-p{%s}", params.c_str());
    k += file_param_fingerprint(params);
  }
  return k;
}

SimConfig config_for(const RunSpec& spec) {
  SimConfig cfg =
      spec.paper_machine ? SimConfig::paper(spec.mode) : SimConfig::scaled(spec.mode);
  if (const std::string err = cfg.apply_topology(spec.topo); !err.empty()) {
    std::fprintf(stderr, "topology '%s': %s\n", spec.topo.c_str(), err.c_str());
    RACCD_ASSERT(false, "malformed topology token");
  }
  if (const std::string err = cfg.apply_dram(spec.dram); !err.empty()) {
    std::fprintf(stderr, "dram '%s': %s\n", spec.dram.c_str(), err.c_str());
    RACCD_ASSERT(false, "malformed DRAM token");
  }
  cfg.set_dir_ratio(spec.dir_ratio);
  cfg.adr.enabled = spec.adr;
  cfg.adr.theta_inc = spec.adr_theta_inc;
  cfg.adr.theta_dec = spec.adr_theta_dec;
  cfg.timing.ncrt_lookup_cycles = spec.ncrt_latency;
  cfg.raccd.ncrt_entries = spec.ncrt_entries;
  cfg.alloc_policy = spec.alloc;
  cfg.sched = spec.sched;
  cfg.seed = spec.seed;
  cfg.series.interval = spec.series_interval;
  cfg.series.metrics = spec.series_metrics;
  return cfg;
}

SimStats run_one(const RunSpec& spec, Series* series_out) {
  Machine machine(config_for(spec));
  AppConfig acfg;
  acfg.size = spec.size;
  acfg.seed = spec.seed;
  std::string err = WorkloadParams::parse(spec.params, acfg.params);
  std::unique_ptr<App> app;
  if (err.empty()) {
    app = WorkloadRegistry::instance().create(spec.app, acfg, &err);
  }
  if (app == nullptr) {
    std::fprintf(stderr, "cannot run %s: %s\n", spec.key().c_str(), err.c_str());
    RACCD_ASSERT(false, "unknown workload or invalid parameters");
  }
  app->run(machine);
  err = app->verify(machine);
  if (!err.empty()) {
    std::fprintf(stderr, "verification failed for %s: %s\n", spec.key().c_str(),
                 err.c_str());
    RACCD_ASSERT(false, "application verification failed");
  }
  SimStats stats = machine.collect();
  if (series_out != nullptr && machine.series() != nullptr) {
    *series_out = *machine.series();
  }
  return stats;
}

std::vector<SimStats> run_all(const std::vector<RunSpec>& specs, const RunOptions& opts,
                              std::vector<Series>* series_out) {
  std::vector<SimStats> results(specs.size());
  std::vector<std::uint8_t> pending(specs.size(), 1);
  if (series_out != nullptr) {
    series_out->assign(specs.size(), Series{});
  }
  const auto samples = [&](std::size_t i) {
    return series_out != nullptr && specs[i].series_interval > 0;
  };

  if (opts.use_cache) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      // A cached SimStats cannot satisfy a sampling spec: the series only
      // exists if the simulation actually runs.
      if (samples(i)) continue;
      if (auto cached = cache_load(opts.cache_dir, specs[i].key())) {
        results[i] = *cached;
        pending[i] = 0;
      }
    }
  }

  // Identical specs (same cache key) are simulated once and copied, so
  // callers may pass spec lists with repeats without paying for them.
  // Sampling variants dedup separately: series params are deliberately not
  // part of the cache key (they don't change the stats).
  const auto dedup_key = [&](std::size_t i) {
    std::string k = specs[i].key();
    if (samples(i)) {
      k += strprintf("+series%llu:%s",
                     static_cast<unsigned long long>(specs[i].series_interval),
                     specs[i].series_metrics.c_str());
    }
    return k;
  };
  std::vector<std::size_t> todo;
  std::unordered_map<std::string, std::size_t> first_with_key;
  std::vector<std::pair<std::size_t, std::size_t>> dup;  // (dst, src) indices
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (pending[i] == 0) continue;
    const auto [it, inserted] = first_with_key.try_emplace(dedup_key(i), i);
    if (inserted) todo.push_back(i);
    else dup.emplace_back(i, it->second);
  }
  // Shard the deduped to-run list by position: deterministic for a given
  // spec list, and every shard of the same sweep agrees on the partition.
  if (opts.shard_count > 1) {
    RACCD_ASSERT(opts.shard_index < opts.shard_count, "shard index out of range");
    std::vector<std::size_t> mine;
    for (std::size_t slot = 0; slot < todo.size(); ++slot) {
      if (slot % opts.shard_count == opts.shard_index) mine.push_back(todo[slot]);
    }
    if (opts.verbose) {
      std::fprintf(stderr, "shard %u/%u: %zu of %zu uncached runs\n", opts.shard_index,
                   opts.shard_count, mine.size(), todo.size());
    }
    todo = std::move(mine);
  }
  if (!todo.empty()) {
    unsigned threads = opts.threads != 0 ? opts.threads : std::thread::hardware_concurrency();
    threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(todo.size())));
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    const auto t0 = std::chrono::steady_clock::now();
    auto worker = [&] {
      for (;;) {
        const std::size_t slot = next.fetch_add(1);
        if (slot >= todo.size()) return;
        const std::size_t i = todo[slot];
        results[i] = run_one(specs[i], samples(i) ? &(*series_out)[i] : nullptr);
        if (opts.use_cache && !cache_store(opts.cache_dir, specs[i].key(), results[i]) &&
            opts.verbose) {
          std::fprintf(stderr, "warning: could not store cache entry '%s' under %s\n",
                       specs[i].key().c_str(), opts.cache_dir.c_str());
        }
        const std::size_t d = done.fetch_add(1) + 1;
        if (opts.verbose) {
          // Progress with throughput and a remaining-time estimate from the
          // completed-run average (coarse but steady for homogeneous grids).
          const double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          const double rate = secs > 0.0 ? static_cast<double>(d) / secs : 0.0;
          const double eta = rate > 0.0 ? static_cast<double>(todo.size() - d) / rate : 0.0;
          std::fprintf(stderr, "[%zu/%zu] %s (%.2f runs/s, ETA %d:%02d)\n", d,
                       todo.size(), specs[i].key().c_str(), rate,
                       static_cast<int>(eta) / 60, static_cast<int>(eta) % 60);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  for (const auto& [dst, src] : dup) {
    results[dst] = results[src];
    if (series_out != nullptr && samples(dst)) (*series_out)[dst] = (*series_out)[src];
  }
  return results;
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  const auto apply_size = [&o](const char* v) {
    if (std::strcmp(v, "tiny") == 0) o.size = SizeClass::kTiny;
    if (std::strcmp(v, "small") == 0) o.size = SizeClass::kSmall;
    if (std::strcmp(v, "paper") == 0) o.size = SizeClass::kPaper;
  };
  if (const char* env = std::getenv("RACCD_SIZE")) apply_size(env);
  if (std::getenv("RACCD_PAPER") != nullptr) o.paper_machine = true;
  if (std::getenv("RACCD_NO_CACHE") != nullptr) o.run.use_cache = false;
  if (const char* env = std::getenv("RACCD_THREADS")) {
    o.run.threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  const auto apply_shard = [&o](const char* text) {
    char* end = nullptr;
    const unsigned long idx = std::strtoul(text, &end, 10);
    unsigned long cnt = 0;
    if (end != nullptr && *end == '/') cnt = std::strtoul(end + 1, nullptr, 10);
    if (cnt == 0 || idx >= cnt) {
      std::fprintf(stderr, "--shard %s: expected i/N with i < N\n", text);
      std::exit(2);
    }
    o.run.shard_index = static_cast<unsigned>(idx);
    o.run.shard_count = static_cast<unsigned>(cnt);
  };
  if (const char* env = std::getenv("RACCD_SHARD")) apply_shard(env);
  const auto apply_set = [&o](const char* text) {
    WorkloadParams p;
    const std::string err = WorkloadParams::parse(text, p);
    if (!err.empty()) {
      // Running a whole sweep with silently-dropped overrides would be far
      // worse than refusing to start.
      std::fprintf(stderr, "--set %s: %s\n", text, err.c_str());
      std::exit(2);
    }
    for (const auto& e : p.entries()) o.params.set(e.key, e.value);
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--size=", 7) == 0) apply_size(a + 7);
    else if (std::strncmp(a, "--topology=", 11) == 0) o.topo = a + 11;
    else if (std::strncmp(a, "--dram=", 7) == 0) o.dram = a + 7;
    else if (std::strcmp(a, "--paper") == 0) o.paper_machine = true;
    else if (std::strcmp(a, "--no-cache") == 0) o.run.use_cache = false;
    else if (std::strcmp(a, "--verbose") == 0) o.run.verbose = true;
    else if (std::strncmp(a, "--threads=", 10) == 0) {
      o.run.threads = static_cast<unsigned>(std::strtoul(a + 10, nullptr, 10));
    } else if (std::strncmp(a, "--shard=", 8) == 0) {
      apply_shard(a + 8);
    } else if (std::strncmp(a, "--set=", 6) == 0) {
      apply_set(a + 6);
    } else if (std::strcmp(a, "--set") == 0 && i + 1 < argc) {
      apply_set(argv[++i]);
    }
  }
  return o;
}

}  // namespace raccd
