// Sampled-simulation accuracy/speedup benchmark: for each workload x
// coherence mode, run the medium problem fully detailed and again with the
// sampled simulator (functional fast-forward + detailed windows,
// sim/machine.cpp), then report wall-clock speedup and the error of every
// mode-separating metric against its reported 95% confidence interval.
//
// This is the CI `sampling-smoke` gate: it exits non-zero when the sampled
// run is less than --min-speedup times faster than detailed, or when a gated
// metric lands outside both its 95% CI and the --max-err relative band
// (rate/level metrics use an absolute band instead — a relative error on a
// near-zero row-hit rate is noise, not signal). Results merge into the
// cumulative results/BENCH_sampling.json keyed by RunSpec::key() (same
// line-per-entry format as BENCH_throughput.json).
//
// Window sizing: the detailed block (warmup + window + the implicit
// cooldown) must span enough *cycles* to ride out the DRAM queue/writeback
// transient that follows every fast-forward stretch — finer-grained tasks
// need proportionally more of them. The per-app defaults below hold every
// gated metric within ~3% at >= 5x; halving the window on the same workload
// roughly triples the cycle error (see README "Sampled simulation").
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "raccd/common/format.hpp"
#include "raccd/harness/experiment.hpp"

namespace raccd {
namespace {

constexpr const char* kSamplingJsonPath = "results/BENCH_sampling.json";

struct Timed {
  SimStats stats;
  double wall_s = 0.0;
};

[[nodiscard]] Timed measure(const RunSpec& spec) {
  Timed t;
  const auto t0 = std::chrono::steady_clock::now();
  t.stats = run_one(spec);
  t.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return t;
}

/// One gated metric: extrapolated value vs detailed truth, judged against
/// max(reported 95% CI, tolerance). Counter metrics take a relative
/// tolerance; rates/levels (already in [0,1]) an absolute one.
struct MetricCheck {
  const char* name;
  double detailed;
  double sampled;
  double ci95;
  double tol;  ///< absolute tolerance floor (pre-scaled for counters)

  [[nodiscard]] double err() const { return sampled - detailed; }
  [[nodiscard]] double rel_err() const {
    return detailed != 0.0 ? err() / detailed : 0.0;
  }
  [[nodiscard]] bool within_ci() const { return std::fabs(err()) <= ci95; }
  [[nodiscard]] bool pass() const {
    return std::fabs(err()) <= std::max(ci95, tol);
  }
};

[[nodiscard]] bool write_file_atomic(const std::string& path, const std::string& text) {
  if (const auto dir = std::filesystem::path(path).parent_path(); !dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  const std::string tmp = strprintf(
      "%s.tmp.%llu", path.c_str(),
      static_cast<unsigned long long>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

/// Merge measurements into the cumulative log (same one-entry-per-line JSON
/// object format as BENCH_throughput.json; other keys are preserved).
[[nodiscard]] bool merge_json(const std::vector<std::pair<std::string, std::string>>& add) {
  std::map<std::string, std::string> entries;
  if (std::ifstream in(kSamplingJsonPath); in) {
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t kq0 = line.find('"');
      if (kq0 == std::string::npos) continue;
      const std::size_t kq1 = line.find('"', kq0 + 1);
      const std::size_t brace0 = line.find('{', kq1);
      const std::size_t brace1 = line.rfind('}');
      if (kq1 == std::string::npos || brace0 == std::string::npos ||
          brace1 == std::string::npos || brace1 <= brace0) {
        continue;
      }
      entries[line.substr(kq0 + 1, kq1 - kq0 - 1)] =
          line.substr(brace0, brace1 - brace0 + 1);
    }
  }
  for (const auto& [key, payload] : add) entries[key] = payload;
  std::string text = "{\n";
  std::size_t n = 0;
  for (const auto& [key, payload] : entries) {
    text += strprintf("  \"%s\": %s%s\n", key.c_str(), payload.c_str(),
                      ++n < entries.size() ? "," : "");
  }
  text += "}\n";
  return write_file_atomic(kSamplingJsonPath, text);
}

int run(int argc, char** argv) {
  BenchOptions opts = BenchOptions::parse(argc, argv);
  double min_speedup = 3.0;
  double max_err = 0.05;
  bool size_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    } else if (std::strncmp(argv[i], "--max-err=", 10) == 0) {
      max_err = std::strtod(argv[i] + 10, nullptr);
    } else if (std::strncmp(argv[i], "--size=", 7) == 0) {
      size_given = true;
    }
  }
  // Default to medium — the size class sampling exists for.
  if (!size_given) opts.size = SizeClass::kMedium;

  // Per-app sampling defaults: the detailed block scales with task grain
  // (jacobi medium runs 4-row tasks, ~10x shorter than synthetic's) so both
  // blocks span a comparable stretch of simulated time. --sample= overrides
  // both for tuning experiments.
  struct Config {
    const char* workload;
    const char* sampling;
  };
  const std::vector<Config> grid = {
      {"jacobi", "2048/96/48"},
      {"synthetic", "2560/64/32"},
  };
  const std::vector<CohMode> modes = {CohMode::kFullCoh, CohMode::kRaCCD};

  std::vector<std::pair<std::string, std::string>> json;
  bool gate_failed = false;
  for (const Config& c : grid) {
    for (const CohMode mode : modes) {
      RunSpec spec;
      if (const std::string err = spec.set_workload_ref(c.workload); !err.empty()) {
        std::fprintf(stderr, "workload %s: %s\n", c.workload, err.c_str());
        return 2;
      }
      if (!opts.params.entries().empty()) {
        WorkloadParams p;
        (void)WorkloadParams::parse(spec.params, p);
        for (const auto& e : opts.params.entries()) p.set(e.key, e.value);
        spec.params = p.canonical();
      }
      spec.size = opts.size;
      spec.mode = mode;
      spec.topo = opts.topo;
      spec.dram = opts.dram.empty() || opts.dram == "simple" ? "ddr" : opts.dram;
      spec.paper_machine = opts.paper_machine;

      const Timed detailed = measure(spec);
      spec.sampling = opts.sampling.empty() ? c.sampling : opts.sampling;
      const Timed sampled = measure(spec);
      const double speedup =
          sampled.wall_s > 0.0 ? detailed.wall_s / sampled.wall_s : 0.0;

      const SimStats& d = detailed.stats;
      const SimStats& s = sampled.stats;
      const SamplingStats& sp = s.sampling;
      const auto cnt = [&](double det) { return max_err * det; };
      const std::vector<MetricCheck> checks = {
          {"cycles", static_cast<double>(d.cycles), static_cast<double>(s.cycles),
           sp.cycles_ci95, cnt(static_cast<double>(d.cycles))},
          {"dir_accesses", static_cast<double>(d.fabric.dir_accesses),
           static_cast<double>(s.fabric.dir_accesses), sp.dir_accesses_ci95,
           cnt(static_cast<double>(d.fabric.dir_accesses))},
          {"llc_hits", static_cast<double>(d.fabric.llc_hits),
           static_cast<double>(s.fabric.llc_hits), sp.llc_hits_ci95,
           cnt(static_cast<double>(d.fabric.llc_hits))},
          {"noc_flits", static_cast<double>(d.noc.total_flits()),
           static_cast<double>(s.noc.total_flits()), sp.noc_flits_ci95,
           cnt(static_cast<double>(d.noc.total_flits()))},
          {"noc_flit_hops", static_cast<double>(d.noc.total_flit_hops()),
           static_cast<double>(s.noc.total_flit_hops()), sp.noc_flit_hops_ci95,
           cnt(static_cast<double>(d.noc.total_flit_hops()))},
          // Rates/levels: absolute band (2 points of rate), not relative.
          {"dram_row_hit_rate", d.fabric.dram_row_hit_ratio(),
           s.fabric.dram_row_hit_ratio(), sp.dram_row_hit_rate_ci95, 0.02},
          {"dir_occupancy", d.avg_dir_occupancy, s.avg_dir_occupancy,
           sp.dir_occupancy_ci95, 0.02},
      };

      const bool speed_ok = speedup >= min_speedup;
      bool metrics_ok = true;
      std::printf("%s --mode=%s --sample=%s: %.2fs detailed, %.2fs sampled "
                  "(%.2fx, %llu windows)\n",
                  c.workload, to_string(mode), spec.sampling.c_str(),
                  detailed.wall_s, sampled.wall_s, speedup,
                  static_cast<unsigned long long>(sp.windows));
      std::string metrics_json;
      for (const MetricCheck& m : checks) {
        metrics_ok = metrics_ok && m.pass();
        std::printf("  %-18s det=%14.6g smp=%14.6g err=%+6.2f%% ci95=%12.4g %s\n",
                    m.name, m.detailed, m.sampled, 100.0 * m.rel_err(), m.ci95,
                    m.pass() ? (m.within_ci() ? "ok (in CI)" : "ok") : "FAIL");
        metrics_json += strprintf(
            ", \"%s\": {\"detailed\": %.6g, \"sampled\": %.6g, \"ci95\": %.6g}",
            m.name, m.detailed, m.sampled, m.ci95);
      }
      if (!speed_ok) {
        std::printf("  FAIL: speedup %.2fx < required %.2fx\n", speedup, min_speedup);
      }
      gate_failed = gate_failed || !speed_ok || !metrics_ok;

      std::string payload = strprintf(
          "{\"speedup\": %.3f, \"detailed_wall_s\": %.3f, \"sampled_wall_s\": %.3f, "
          "\"windows\": %llu, \"scale\": %.3f%s}",
          speedup, detailed.wall_s, sampled.wall_s,
          static_cast<unsigned long long>(sp.windows), sp.scale,
          metrics_json.c_str());
      json.emplace_back(spec.key(), std::move(payload));
      std::fflush(stdout);
    }
  }

  if (!merge_json(json)) {
    std::fprintf(stderr, "warning: could not update %s\n", kSamplingJsonPath);
  } else {
    std::printf("(merged %zu entries into %s)\n", json.size(), kSamplingJsonPath);
  }
  if (gate_failed) {
    std::fprintf(stderr, "sampling_accuracy: FAIL (speedup or accuracy gate)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace raccd

int main(int argc, char** argv) { return raccd::run(argc, argv); }
