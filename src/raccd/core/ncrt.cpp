#include "raccd/core/ncrt.hpp"

#include <algorithm>

#include "raccd/common/assert.hpp"

namespace raccd {

Ncrt::Ncrt(std::uint32_t capacity)
    : capacity_(capacity), legacy_(legacy_structures()) {
  RACCD_ASSERT(capacity_ > 0, "NCRT needs at least one entry");
  entries_.reserve(capacity_);
}

bool Ncrt::insert(PAddr start, PAddr end) {
  RACCD_ASSERT(start < end, "empty NCRT region");
  if (full()) {
    ++stats_.overflows;
    return false;
  }
  // Keep the table sorted by start address (<= 32 entries, so the shifting
  // insert is trivial); the modelled hardware compares all entries in
  // parallel and is order-blind.
  const auto it =
      std::upper_bound(entries_.begin(), entries_.end(), start,
                       [](PAddr s, const AddrRange& r) { return s < r.begin; });
  entries_.insert(it, AddrRange{start, end});
  memo_ = AddrRange{0, 0};
  ++stats_.inserts;
  return true;
}

bool Ncrt::lookup(PAddr pa) noexcept {
  ++stats_.lookups;
  if (!legacy_ && memo_.contains(pa)) {
    if (memo_hit_) ++stats_.hits;
    return memo_hit_;
  }
  if (legacy_) {
    // Pre-flat behavior: unconditional scan of every entry, no memo.
    for (const AddrRange& r : entries_) {
      if (r.contains(pa)) {
        ++stats_.hits;
        return true;
      }
    }
    return false;
  }
  // Sorted early-exit scan. While scanning, derive the bracketing interval
  // over which the answer is constant and memoize it: the containing region
  // on a hit; on a miss, the gap from the highest end at or below `pa` to
  // the first start above it (the table is frozen between register and
  // invalidate, so the memo stays valid until the next insert/clear).
  PAddr gap_lo = 0;
  PAddr gap_hi = ~PAddr{0};
  for (const AddrRange& r : entries_) {
    if (r.begin > pa) {
      gap_hi = r.begin;  // sorted: first start above pa
      break;
    }
    if (pa < r.end) {
      memo_ = r;
      memo_hit_ = true;
      ++stats_.hits;
      return true;
    }
    gap_lo = std::max(gap_lo, r.end);
  }
  memo_ = AddrRange{gap_lo, gap_hi};
  memo_hit_ = false;
  return false;
}

void Ncrt::clear() noexcept {
  entries_.clear();
  memo_ = AddrRange{0, 0};
  ++stats_.clears;
}

}  // namespace raccd
