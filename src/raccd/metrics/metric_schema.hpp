// Self-describing metric schema over SimStats.
//
// Every quantity the simulator can report — raw counters, derived ratios,
// cycle totals and energies — is a MetricDesc: a canonical dotted name
// ("fabric.dir_accesses", "noc.flit_hops.cross_socket", "energy.dir_dyn_pj"),
// the flat key the machine-readable emitters use ("dir_accesses",
// "noc_cross_socket_flit_hops", "dir_dyn_energy_pj" — the spelling
// results/BENCH_grid.json has always used), a unit, a kind (which fixes the
// emitter formatting), a doc string, and an accessor over SimStats.
//
// Emitters (emit.hpp), the per-bench tables, the time-series sampler
// (series.hpp) and the raccd-report diff tool (diff.hpp) all select metrics
// from this one registry by name, so adding a counter to SimStats means
// adding exactly one descriptor here — every output format picks it up, and
// the schema-completeness test (tests/test_metrics.cpp) fails until you do.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "raccd/sim/stats.hpp"

namespace raccd {

/// What a metric measures; fixes formatting and the perf-gate tolerance class.
enum class MetricKind : std::uint8_t {
  kCounter,       ///< event count (integer, exact under determinism)
  kCycles,        ///< simulated-cycle total (integer)
  kRatio,         ///< dimensionless [0,1]-ish fraction (printed %.6f)
  kEnergy,        ///< picojoules (printed %.3f)
  kDistribution,  ///< summary stat of a latency distribution (printed %.1f)
};

[[nodiscard]] constexpr const char* to_string(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kCycles: return "cycles";
    case MetricKind::kRatio: return "ratio";
    case MetricKind::kEnergy: return "energy";
    case MetricKind::kDistribution: return "distribution";
  }
  return "?";
}

/// A metric sample: integer-valued kinds keep full 64-bit precision.
struct MetricValue {
  double d = 0.0;
  std::uint64_t u = 0;
  bool is_int = false;

  [[nodiscard]] static MetricValue of(std::uint64_t v) noexcept {
    return MetricValue{static_cast<double>(v), v, true};
  }
  [[nodiscard]] static MetricValue of(double v) noexcept { return MetricValue{v, 0, false}; }
  [[nodiscard]] double as_double() const noexcept { return is_int ? static_cast<double>(u) : d; }
};

struct MetricDesc {
  const char* name;  ///< canonical dotted name ("fabric.dir_accesses")
  const char* key;   ///< flat emitter key ("dir_accesses"); the BENCH/CSV spelling
  const char* unit;  ///< "", "cycles", "pJ", "flit-hops", ...
  MetricKind kind;
  const char* doc;  ///< one line; shown by `raccd-report metrics`
  MetricValue (*get)(const SimStats&);

  [[nodiscard]] MetricValue value(const SimStats& s) const { return get(s); }
  /// Kind-determined text form (counters/cycles as integers, ratios %.6f,
  /// energies %.3f) — the formatting every emitter has always used.
  [[nodiscard]] std::string format(const SimStats& s) const;
};

class MetricSchema {
 public:
  /// The process-wide registry (built once, immutable).
  [[nodiscard]] static const MetricSchema& instance();

  [[nodiscard]] std::span<const MetricDesc> all() const noexcept { return metrics_; }
  /// Lookup by dotted name or flat key; nullptr when unknown.
  [[nodiscard]] const MetricDesc* find(std::string_view name_or_key) const;
  /// Lookup that aborts with the requested name and the full name list.
  [[nodiscard]] const MetricDesc& get(std::string_view name_or_key) const;
  /// Resolve a by-name selection in order; aborts on any unknown name.
  [[nodiscard]] std::vector<const MetricDesc*> select(
      std::span<const std::string> names) const;
  [[nodiscard]] std::vector<const MetricDesc*> select(
      std::initializer_list<const char*> names) const;
  /// Split a comma-separated name list ("cycles,dir.avg_occupancy") and
  /// resolve it; returns "" or an error naming the unknown metric.
  [[nodiscard]] std::string parse_selection(std::string_view csv,
                                            std::vector<const MetricDesc*>& out) const;

  /// Human/markdown table of every metric (name, kind, unit, doc).
  [[nodiscard]] std::string describe(bool markdown = false) const;

 private:
  MetricSchema();
  std::vector<MetricDesc> metrics_;
  std::unordered_map<std::string_view, const MetricDesc*> index_;
};

/// The BENCH_grid.json payload selection, in its historical field order —
/// emitted byte-compatibly by bench_metrics_json() (emit.hpp).
[[nodiscard]] std::span<const char* const> bench_metric_keys() noexcept;

/// The ResultSet CSV/JSON headline selection (a superset ordering of the
/// historical CSV columns).
[[nodiscard]] std::span<const char* const> csv_metric_keys() noexcept;

/// Default time-series subset (directory occupancy and its drivers).
[[nodiscard]] std::span<const char* const> default_series_metrics() noexcept;

/// Metric value by name — the one-line entry point tables and reports use
/// to select what they print ("dir.avg_occupancy") instead of reaching into
/// SimStats fields. Aborts (with the full name list) on unknown names.
[[nodiscard]] inline double metric_value(const SimStats& s, std::string_view name) {
  return MetricSchema::instance().get(name).value(s).as_double();
}

}  // namespace raccd
