#include <gtest/gtest.h>

#include "raccd/runtime/tdg.hpp"

namespace raccd {
namespace {

TaskDesc named(const char* name) {
  TaskDesc d;
  d.name = name;
  d.body = [](TaskContext&) {};
  return d;
}

TEST(Tdg, AddTasksAndEdges) {
  Tdg g;
  const TaskId a = g.add_task(named("a"));
  const TaskId b = g.add_task(named("b"));
  const TaskId c = g.add_task(named("c"));
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.add_edge(a, c);  // duplicate ignored
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.task(c).unresolved_preds, 2u);
  EXPECT_EQ(g.task(a).successors.size(), 1u);
}

TEST(Tdg, FinishResolvesSuccessors) {
  Tdg g;
  const TaskId a = g.add_task(named("a"));
  const TaskId b = g.add_task(named("b"));
  const TaskId c = g.add_task(named("c"));
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.task(a).state = TaskState::kRunning;
  g.task(b).state = TaskState::kRunning;
  std::vector<TaskId> ready;
  EXPECT_EQ(g.finish(a, ready), 1u);
  EXPECT_TRUE(ready.empty());  // c still blocked on b
  EXPECT_EQ(g.finish(b, ready), 1u);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], c);
  EXPECT_EQ(g.task(c).state, TaskState::kReady);
  EXPECT_FALSE(g.all_finished());
  g.task(c).state = TaskState::kRunning;
  ready.clear();
  g.finish(c, ready);
  EXPECT_TRUE(g.all_finished());
}

TEST(Tdg, EdgeFromFinishedTaskDoesNotBlock) {
  Tdg g;
  const TaskId a = g.add_task(named("a"));
  g.task(a).state = TaskState::kRunning;
  std::vector<TaskId> ready;
  g.finish(a, ready);
  const TaskId b = g.add_task(named("b"));
  g.add_edge(a, b);  // predecessor already finished
  EXPECT_EQ(g.task(b).unresolved_preds, 0u);
}

TEST(Tdg, DotExportContainsNodesAndEdges) {
  Tdg g;
  const TaskId a = g.add_task(named("potrf"));
  const TaskId b = g.add_task(named("trsm"));
  g.add_edge(a, b);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("potrf"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

}  // namespace
}  // namespace raccd
