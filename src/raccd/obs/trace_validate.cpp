#include "raccd/obs/trace_validate.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "raccd/common/format.hpp"

namespace raccd::obs {
namespace {

// -- A minimal JSON DOM, just enough for trace files ---------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::shared_ptr<JsonArray> arr;
  std::shared_ptr<JsonObject> obj;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool parse(JsonValue& out, std::string* error) {
    if (!value(out)) {
      *error = strprintf("JSON parse error at offset %zu: %s", pos_, err_.c_str());
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      *error = strprintf("trailing garbage at offset %zu", pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool fail(const char* what) {
    if (err_.empty()) err_ = what;
    return false;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] bool string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Validation only ever compares ASCII names; fold the rest.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  [[nodiscard]] bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      out.obj = std::make_shared<JsonObject>();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        if (!string(key)) return false;
        if (!consume(':')) return fail("expected ':'");
        JsonValue v;
        if (!value(v)) return false;
        (*out.obj)[std::move(key)] = std::move(v);
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      out.arr = std::make_shared<JsonArray>();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue v;
        if (!value(v)) return false;
        out.arr->push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.b = true;
      return literal("true") || fail("bad literal");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.b = false;
      return literal("false") || fail("bad literal");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null") || fail("bad literal");
    }
    // number
    const std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("unexpected character");
    out.kind = JsonValue::Kind::kNumber;
    out.num = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

[[nodiscard]] bool number_field(const JsonValue& ev, const char* key, double& out) {
  const JsonValue* v = ev.get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  out = v->num;
  return true;
}

}  // namespace

TraceValidation validate_trace_json(std::string_view json) {
  TraceValidation r;
  JsonValue root;
  std::string perr;
  JsonParser parser(json);
  if (!parser.parse(root, &perr)) {
    r.errors.push_back(perr);
    return r;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    r.errors.push_back("top level is not an object");
    return r;
  }
  const JsonValue* events = root.get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    r.errors.push_back("missing traceEvents array");
    return r;
  }
  if (const JsonValue* meta = root.get("raccd"); meta != nullptr) {
    double d = 0.0;
    if (number_field(*meta, "dropped_total", d)) {
      r.dropped = static_cast<std::uint64_t>(d);
    }
  }

  struct TrackState {
    std::vector<std::string> open;  ///< B names awaiting E
    double last_ts = -1.0;          ///< last B/E timestamp seen
  };
  std::map<std::pair<double, double>, TrackState> tracks;
  const auto err = [&](std::size_t i, const std::string& what) {
    if (r.errors.size() < 20) {
      r.errors.push_back(strprintf("event %zu: %s", i, what.c_str()));
    }
  };

  for (std::size_t i = 0; i < events->arr->size(); ++i) {
    const JsonValue& ev = (*events->arr)[i];
    if (ev.kind != JsonValue::Kind::kObject) {
      err(i, "not an object");
      continue;
    }
    const JsonValue* name = ev.get("name");
    const JsonValue* ph = ev.get("ph");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      err(i, "missing name");
      continue;
    }
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->str.size() != 1) {
      err(i, "missing/bad ph");
      continue;
    }
    const char phase = ph->str[0];
    if (phase == 'M') {
      ++r.metadata;
      continue;
    }
    if (phase != 'B' && phase != 'E' && phase != 'X' && phase != 'i' && phase != 'C') {
      err(i, strprintf("unknown phase '%c'", phase));
      continue;
    }
    ++r.events;
    double ts = 0.0, pid = 0.0, tid = 0.0;
    if (!number_field(ev, "ts", ts)) {
      err(i, "missing ts");
      continue;
    }
    if (!number_field(ev, "pid", pid) || !number_field(ev, "tid", tid)) {
      err(i, "missing pid/tid");
      continue;
    }
    TrackState& track = tracks[{pid, tid}];
    if (phase == 'X') {
      double dur = 0.0;
      if (!number_field(ev, "dur", dur)) {
        err(i, "X event missing dur");
        continue;
      }
      if (dur < 0.0) err(i, "negative dur");
      ++r.spans;
      continue;
    }
    if (phase == 'B' || phase == 'E') {
      // Per-track timestamps are simulated core/request clocks: monotone by
      // construction. File order within one track is emission order.
      if (ts < track.last_ts) {
        err(i, strprintf("B/E timestamp moved backwards on track (%g,%g): %g < %g",
                         pid, tid, ts, track.last_ts));
      }
      track.last_ts = ts;
      if (phase == 'B') {
        track.open.push_back(name->str);
      } else {
        if (track.open.empty()) {
          err(i, strprintf("E '%s' with no open B on track (%g,%g)",
                           name->str.c_str(), pid, tid));
        } else {
          if (track.open.back() != name->str) {
            err(i, strprintf("E '%s' closes B '%s'", name->str.c_str(),
                             track.open.back().c_str()));
          }
          track.open.pop_back();
          ++r.spans;
        }
      }
    }
  }
  r.tracks = tracks.size();
  if (r.dropped == 0) {
    for (const auto& [key, track] : tracks) {
      if (!track.open.empty() && r.errors.size() < 20) {
        r.errors.push_back(strprintf(
            "track (%g,%g): %zu span(s) never closed ('%s') and no drops declared",
            key.first, key.second, track.open.size(), track.open.back().c_str()));
      }
    }
  }
  r.ok = r.errors.empty();
  return r;
}

TraceValidation validate_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    TraceValidation r;
    r.errors.push_back(strprintf("cannot open '%s'", path.c_str()));
    return r;
  }
  std::string body;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, n);
  std::fclose(f);
  return validate_trace_json(body);
}

}  // namespace raccd::obs
