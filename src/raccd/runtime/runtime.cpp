#include "raccd/runtime/runtime.hpp"

#include <algorithm>

#include "raccd/common/assert.hpp"

namespace raccd {

TaskId Runtime::create_task(TaskDesc desc) {
  scratch_preds_.clear();
  const TaskId id = tdg_.add_task(std::move(desc));
  TaskNode& n = tdg_.task(id);
  for (const DepSpec& d : n.deps) {
    deps_.register_dep(id, d, scratch_preds_);
    ++stats_.deps_registered;
  }
  std::sort(scratch_preds_.begin(), scratch_preds_.end());
  scratch_preds_.erase(std::unique(scratch_preds_.begin(), scratch_preds_.end()),
                       scratch_preds_.end());
  for (const TaskId p : scratch_preds_) {
    tdg_.add_edge(p, id);
  }
  stats_.edges = tdg_.edge_count();
  ++stats_.tasks_created;
  if (n.unresolved_preds == 0) {
    n.state = TaskState::kReady;
    // Release-gated tasks always park at creation: spawning happens between
    // taskwait phases, before the executing phase's release base is known.
    if (n.release > 0) {
      pending_releases_.emplace(n.release, id);
    } else {
      sched_.push(id, /*producer=*/0);
    }
  }
  return id;
}

bool Runtime::pop_ready(CoreId core, TaskId& out) { return sched_.pop(core, out); }

void Runtime::start_task(TaskId t) {
  TaskNode& n = tdg_.task(t);
  RACCD_ASSERT(n.state == TaskState::kReady, "starting a non-ready task");
  n.state = TaskState::kRunning;
}

bool Runtime::finish_task(TaskId t, CoreId core, std::uint32_t& resolved) {
  scratch_ready_.clear();
  resolved = tdg_.finish(t, scratch_ready_);
  stats_.wakeups += resolved;
  bool any_schedulable = false;
  for (const TaskId r : scratch_ready_) {
    // A dep-resolved task whose release instant is still ahead parks in the
    // release heap; the Machine drains it when its clock gets there.
    if (gated(tdg_.task(r))) {
      pending_releases_.emplace(tdg_.task(r).release, r);
    } else {
      sched_.push(r, core);
      any_schedulable = true;
    }
  }
  return any_schedulable;
}

std::uint32_t Runtime::release_up_to(Cycle now) {
  released_up_to_ = std::max(released_up_to_, now);
  std::uint32_t released = 0;
  while (!pending_releases_.empty() &&
         release_base_ + pending_releases_.top().first <= now) {
    const TaskId id = pending_releases_.top().second;
    pending_releases_.pop();
    TaskNode& n = tdg_.task(id);
    RACCD_ASSERT(n.state == TaskState::kReady, "released task is not dep-ready");
    sched_.push(id, /*producer=*/0);
    ++released;
  }
  released_count_ += released;
  return released;
}

bool Runtime::next_release(Cycle& out) const {
  if (pending_releases_.empty()) return false;
  out = release_base_ + pending_releases_.top().first;
  return true;
}

}  // namespace raccd
