// Arrival processes for open-loop service workloads: seeded, deterministic
// generators producing a schedule of request release times (cycles, relative
// to the taskwait phase that serves them — see TaskDesc::release).
//
// Three processes: Poisson (exponential inter-arrival gaps), bursty (on/off
// square-wave-modulated Poisson that preserves the mean rate), and a fixed
// trace replayed from a raccd-sched schedule file. Generation is a pure
// function of the config — the schedule never depends on core counts,
// executor workers, or host state, so release order is reproducible
// everywhere a run is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raccd/common/types.hpp"

namespace raccd {

enum class ArrivalKind : std::uint8_t { kPoisson, kBurst, kTrace };

[[nodiscard]] constexpr const char* to_string(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBurst: return "burst";
    case ArrivalKind::kTrace: return "trace";
  }
  return "?";
}

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  std::uint64_t count = 0;         ///< requests to generate (ignored by kTrace)
  double mean_gap_cycles = 1000.0; ///< mean inter-arrival gap (Poisson/burst)
  /// Burst modulation: arrivals land only in the leading `duty` fraction of
  /// each period, at a rate scaled by 1/duty so the mean rate is preserved.
  double burst_duty = 0.25;
  std::uint64_t burst_period_cycles = 0;  ///< 0 = 16x the mean gap
  std::string trace_path;  ///< kTrace: raccd-sched file to replay
  std::uint64_t seed = 1;
};

/// Generate the release schedule: non-decreasing cycles, strictly positive
/// (release 0 means "not gated"), one per request. Returns an empty vector
/// and sets `*error` on failure (bad config, unreadable trace).
[[nodiscard]] std::vector<Cycle> generate_arrivals(const ArrivalConfig& cfg,
                                                   std::string* error = nullptr);

// -- raccd-sched schedule files ----------------------------------------------
// Text format: "raccd-sched v1" header, the release count, then one release
// cycle per line. Round-trips exactly (tested), so captured schedules replay
// bit-identically through ArrivalKind::kTrace.

[[nodiscard]] std::string format_schedule(const std::vector<Cycle>& schedule);
[[nodiscard]] bool parse_schedule(const std::string& text, std::vector<Cycle>& out,
                                  std::string* error = nullptr);
[[nodiscard]] bool write_schedule_file(const std::string& path,
                                       const std::vector<Cycle>& schedule,
                                       std::string* error = nullptr);
[[nodiscard]] bool read_schedule_file(const std::string& path,
                                      std::vector<Cycle>& out,
                                      std::string* error = nullptr);

}  // namespace raccd
