// Harness determinism regression: the simulation is a deterministic function
// of the RunSpec, so running the same specs host-parallel with the result
// cache disabled, enabled-cold, and enabled-warm must produce byte-identical
// SimStats (via the canonical stats_to_text serialization). This pins down
// both simulator determinism and cache-round-trip fidelity.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "raccd/harness/experiment.hpp"
#include "raccd/harness/sweep_cache.hpp"

namespace raccd {
namespace {

std::vector<RunSpec> sample_specs() {
  std::vector<RunSpec> specs;
  for (const CohMode mode : kAllBackends) {
    for (const char* app : {"histo", "md5"}) {
      RunSpec s;
      s.app = app;
      s.size = SizeClass::kTiny;
      s.mode = mode;
      specs.push_back(s);
    }
  }
  RunSpec adr;
  adr.app = "histo";
  adr.size = SizeClass::kTiny;
  adr.mode = CohMode::kRaCCD;
  adr.adr = true;
  specs.push_back(adr);
  return specs;
}

std::vector<std::string> serialize(const std::vector<SimStats>& results) {
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const SimStats& s : results) out.push_back(stats_to_text(s));
  return out;
}

TEST(Determinism, RunAllByteIdenticalWithAndWithoutCache) {
  const std::string dir = "test_cache_determinism";
  std::filesystem::remove_all(dir);
  const std::vector<RunSpec> specs = sample_specs();

  RunOptions uncached;
  uncached.use_cache = false;
  uncached.jobs = 3;
  const auto baseline = serialize(run_all(specs, uncached));

  RunOptions cached;
  cached.use_cache = true;
  cached.cache_dir = dir;
  cached.jobs = 2;
  const auto cold = serialize(run_all(specs, cached));   // simulate + store
  const auto warm = serialize(run_all(specs, cached));   // pure cache load

  ASSERT_EQ(baseline.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(baseline[i], cold[i]) << specs[i].key();
    EXPECT_EQ(baseline[i], warm[i]) << specs[i].key();
    EXPECT_FALSE(baseline[i].empty());
  }
  std::filesystem::remove_all(dir);
}

TEST(Determinism, DuplicateSpecsSimulatedOnceAndIdentical) {
  // run_all dedupes identical specs (same key). Results must align with the
  // request order, and the cache must hold one file per unique key.
  const std::string dir = "test_cache_dedupe";
  std::filesystem::remove_all(dir);
  RunSpec a;
  a.app = "histo";
  a.size = SizeClass::kTiny;
  a.mode = CohMode::kWbNC;
  RunSpec b = a;
  b.mode = CohMode::kRaCCD;
  const std::vector<RunSpec> specs{a, b, a, a};
  RunOptions opts;
  opts.cache_dir = dir;
  opts.jobs = 2;
  const auto results = run_all(specs, opts);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(stats_to_text(results[0]), stats_to_text(results[2]));
  EXPECT_EQ(stats_to_text(results[0]), stats_to_text(results[3]));
  EXPECT_NE(stats_to_text(results[0]), stats_to_text(results[1]));
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    files += e.is_regular_file();
  }
  EXPECT_EQ(files, 2u);  // one cached result per unique key
  std::filesystem::remove_all(dir);
}

TEST(Determinism, RepeatedUncachedRunsIdentical) {
  RunSpec spec;
  spec.app = "jacobi";
  spec.size = SizeClass::kTiny;
  spec.mode = CohMode::kWbNC;
  const std::string a = stats_to_text(run_one(spec));
  const std::string b = stats_to_text(run_one(spec));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace raccd
