// Trace-replay workload: re-execute a recorded task program (regions, task
// dependence annotations and access streams — see runtime/trace_file.hpp)
// through any coherence mode. Record a trace from any workload with
// `simulate <app> --record-trace=FILE`, then replay it with
// `simulate tracereplay --set file=FILE --mode=<any>`: the replay spawns
// one task per recorded task, re-issues every load/store (sized, repeated
// and compute-annotated as recorded) and functionally verifies the final
// memory image against a host-side mirror.
//
// Every write stores a value derived only from (task, access, repetition),
// never from a read, so the final image is well-defined for any race-free
// trace regardless of which mode or schedule replays it. With no `file`
// parameter a built-in two-stage streaming pipeline is replayed, which keeps
// the workload self-contained for tests and CI smoke runs.
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/runtime/trace_file.hpp"

namespace raccd::apps {
namespace {

[[nodiscard]] constexpr std::uint64_t fnv64(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t w : {a, b, c}) {
    h = (h ^ w) * 0x100000001b3ULL;
  }
  return h;
}

/// The built-in demo program: a blocked copy-transform pipeline
/// (in -> mid -> out over 4 chunks) with compute gaps and repeats.
[[nodiscard]] TraceFile builtin_trace() {
  TraceFile tf;
  constexpr std::uint64_t kRegionBytes = 4096;
  constexpr std::uint32_t kChunks = 4;
  constexpr std::uint64_t kChunk = kRegionBytes / kChunks;
  tf.regions = {{"demo.in", kRegionBytes}, {"demo.mid", kRegionBytes},
                {"demo.out", kRegionBytes}};
  // Stage 0: initialize `in` chunk-by-chunk (out deps, pure writes).
  for (std::uint32_t c = 0; c < kChunks; ++c) {
    TraceTask t;
    t.name = strprintf("init(c%u)", c);
    t.deps.push_back({0, c * kChunk, kChunk, DepKind::kOut});
    for (std::uint64_t off = 0; off < kChunk; off += 8) {
      t.accesses.push_back({0, c * kChunk + off, 8, 1, true, off == 0 ? 10u : 0u});
    }
    tf.tasks.push_back(std::move(t));
  }
  // Stage 1: in -> mid (read each word twice: run-length repeat).
  for (std::uint32_t c = 0; c < kChunks; ++c) {
    TraceTask t;
    t.name = strprintf("stage1(c%u)", c);
    t.deps.push_back({0, c * kChunk, kChunk, DepKind::kIn});
    t.deps.push_back({1, c * kChunk, kChunk, DepKind::kOut});
    for (std::uint64_t off = 0; off < kChunk; off += 8) {
      t.accesses.push_back({0, c * kChunk + off, 8, 2, false, 0});
      t.accesses.push_back({1, c * kChunk + off, 8, 1, true, 4});
    }
    t.trailing_compute = 20;
    tf.tasks.push_back(std::move(t));
  }
  // Stage 2: mid -> out, coarser accesses.
  for (std::uint32_t c = 0; c < kChunks; ++c) {
    TraceTask t;
    t.name = strprintf("stage2(c%u)", c);
    t.deps.push_back({1, c * kChunk, kChunk, DepKind::kIn});
    t.deps.push_back({2, c * kChunk, kChunk, DepKind::kInout});
    for (std::uint64_t off = 0; off < kChunk; off += 16) {
      t.accesses.push_back({1, c * kChunk + off, 8, 1, false, 0});
      t.accesses.push_back({2, c * kChunk + off, 4, 1, true, 2});
    }
    tf.tasks.push_back(std::move(t));
  }
  return tf;
}

class TraceReplayApp final : public App {
 public:
  explicit TraceReplayApp(const AppConfig& cfg)
      : file_(cfg.params.get_string("file", "")) {
    if (file_.empty()) {
      trace_ = builtin_trace();
    } else {
      load_error_ = TraceFile::load(file_, trace_);  // reported by verify()
    }
  }

  [[nodiscard]] std::string_view name() const override { return "tracereplay"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("replay of '%s' (%zu regions, %zu tasks)",
                     file_.empty() ? "<builtin pipeline>" : file_.c_str(),
                     trace_.regions.size(), trace_.tasks.size());
  }

  void run(Machine& m) override {
    if (!load_error_.empty()) return;  // reported by verify()
    bases_.clear();
    for (const TraceRegion& r : trace_.regions) {
      bases_.push_back(m.mem().alloc(r.bytes, kLineBytes, r.name));
    }
    for (std::size_t ti = 0; ti < trace_.tasks.size(); ++ti) {
      const TraceTask& tt = trace_.tasks[ti];
      TaskDesc t;
      t.name = tt.name;
      for (const TraceDep& d : tt.deps) {
        t.deps.push_back({bases_[d.region] + d.offset, d.size, d.kind});
      }
      t.body = [this, ti](TaskContext& ctx) {
        const TraceTask& task = trace_.tasks[ti];
        for (std::size_t ai = 0; ai < task.accesses.size(); ++ai) {
          const TraceAccess& a = task.accesses[ai];
          if (a.compute_gap > 0) ctx.compute(a.compute_gap);
          const VAddr va = bases_[a.region] + a.offset;
          for (std::uint32_t rep = 0; rep < a.repeat; ++rep) {
            if (a.is_write) {
              const std::uint64_t v = fnv64(ti, ai, rep);
              switch (a.size) {
                case 1: ctx.store<std::uint8_t>(va, static_cast<std::uint8_t>(v)); break;
                case 2: ctx.store<std::uint16_t>(va, static_cast<std::uint16_t>(v)); break;
                case 4: ctx.store<std::uint32_t>(va, static_cast<std::uint32_t>(v)); break;
                default: ctx.store<std::uint64_t>(va, v); break;
              }
            } else {
              switch (a.size) {
                case 1: (void)ctx.load<std::uint8_t>(va); break;
                case 2: (void)ctx.load<std::uint16_t>(va); break;
                case 4: (void)ctx.load<std::uint32_t>(va); break;
                default: (void)ctx.load<std::uint64_t>(va); break;
              }
            }
          }
        }
        if (task.trailing_compute > 0) ctx.compute(task.trailing_compute);
      };
      m.spawn(std::move(t));
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    if (!load_error_.empty()) return load_error_;
    // Host mirror: apply every write in task-creation order (race-free
    // traces are ordered identically by the dependence annotations).
    std::vector<std::vector<std::uint8_t>> ref;
    ref.reserve(trace_.regions.size());
    for (const TraceRegion& r : trace_.regions) ref.emplace_back(r.bytes, 0);
    for (std::size_t ti = 0; ti < trace_.tasks.size(); ++ti) {
      const TraceTask& task = trace_.tasks[ti];
      for (std::size_t ai = 0; ai < task.accesses.size(); ++ai) {
        const TraceAccess& a = task.accesses[ai];
        if (!a.is_write) continue;
        for (std::uint32_t rep = 0; rep < a.repeat; ++rep) {
          const std::uint64_t v = fnv64(ti, ai, rep);
          for (std::uint32_t byte = 0; byte < a.size; ++byte) {
            ref[a.region][a.offset + byte] =
                static_cast<std::uint8_t>(v >> (8 * byte));
          }
        }
      }
    }
    std::vector<std::uint8_t> got;
    for (std::size_t r = 0; r < trace_.regions.size(); ++r) {
      got.resize(trace_.regions[r].bytes);
      m.mem().copy_out(bases_[r], got.data(), got.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] != ref[r][i]) {
          return strprintf("tracereplay mismatch: region %zu (%s) byte %zu "
                           "got %02x want %02x",
                           r, trace_.regions[r].name.c_str(), i, got[i], ref[r][i]);
        }
      }
    }
    return {};
  }

 private:
  std::string file_;
  std::string load_error_;
  TraceFile trace_;
  std::vector<VAddr> bases_;
};

const WorkloadRegistrar kRegistrar{{
    "tracereplay",
    "re-execute a recorded access trace (simulate --record-trace) in any mode",
    "trace",
    ParamSchema().add_string(
        "file", "", "trace file path (raccd-trace v1); empty = built-in pipeline"),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<TraceReplayApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
