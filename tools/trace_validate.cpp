// trace_validate: structural validation of recorded Chrome Trace Event JSON
// (well-formedness + span invariants). Exit 0 when every file passes, 1
// otherwise — the trace-smoke CI job gates on it.
//
//   trace_validate out.json [more.json ...]
#include <cstdio>
#include <cstring>

#include "raccd/obs/trace_validate.hpp"

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: trace_validate TRACE.json [...]\n");
    return argc < 2 ? 2 : 0;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const raccd::obs::TraceValidation v = raccd::obs::validate_trace_file(argv[i]);
    if (v.ok) {
      std::printf(
          "%s: OK (%llu events, %llu spans, %llu tracks, %llu metadata, "
          "%llu dropped)\n",
          argv[i], static_cast<unsigned long long>(v.events),
          static_cast<unsigned long long>(v.spans),
          static_cast<unsigned long long>(v.tracks),
          static_cast<unsigned long long>(v.metadata),
          static_cast<unsigned long long>(v.dropped));
    } else {
      all_ok = false;
      std::printf("%s: FAIL\n", argv[i]);
      for (const std::string& e : v.errors) {
        std::printf("  %s\n", e.c_str());
      }
    }
  }
  return all_ok ? 0 : 1;
}
