// Per-core TLB model: fully associative, true LRU (paper Table I: 256-entry
// fully-associative DTLB, 1 cycle).
//
// Timing convention: lookups that hit are folded into the L1 access (VIPT
// style) and cost no extra cycles; misses pay the page-walk latency from
// SimConfig. The RaCCD `raccd_register` translation loop (paper Fig. 5) and
// the PT baseline's classification both run through this structure.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "raccd/common/flat_map.hpp"
#include "raccd/common/types.hpp"
#include "raccd/mem/page_table.hpp"

namespace raccd {

struct TlbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t shootdowns = 0;  ///< entries invalidated by remote request
  std::uint64_t evictions = 0;   ///< capacity-driven LRU evictions
};

class Tlb {
 public:
  explicit Tlb(std::uint32_t capacity);

  struct Result {
    bool hit = false;
    PageNum pframe = 0;
  };

  /// Look up vpage; on miss, walk `pt` and install the translation (evicting
  /// the LRU entry if full). Result.hit reports whether the walk was needed.
  Result access(PageNum vpage, const PageTable& pt);

  /// Invalidate one entry (TLB shootdown). Returns true if it was present.
  bool invalidate(PageNum vpage);

  void flush();

  [[nodiscard]] bool contains(PageNum vpage) const noexcept {
    return const_cast<Tlb*>(this)->index_find(vpage) != nullptr;
  }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return legacy_ ? static_cast<std::uint32_t>(index_.size()) : flat_.size();
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const TlbStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    PageNum vpage = 0;
    PageNum pframe = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  void unlink(std::uint32_t slot) noexcept;
  void push_front(std::uint32_t slot) noexcept;

  // vpage -> slot index, behind the legacy toggle: the open-addressed flat
  // table is the per-access default; RACCD_LEGACY_STRUCTURES=1 keeps the
  // original unordered_map (bench/throughput A/B-tests the two).
  [[nodiscard]] std::uint32_t* index_find(PageNum vpage) noexcept {
    return legacy_ ? legacy_find(vpage) : flat_.find(vpage);
  }
  [[nodiscard]] std::uint32_t* legacy_find(PageNum vpage) noexcept;
  void index_insert(PageNum vpage, std::uint32_t slot);
  void index_erase(PageNum vpage) noexcept;

  std::uint32_t capacity_;
  bool legacy_;
  std::vector<Entry> entries_;          // slot storage
  std::vector<std::uint32_t> free_;     // free slots
  std::unordered_map<PageNum, std::uint32_t> index_;  // legacy path only
  OpenPageMap flat_;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  // Single-entry filter for the common same-page-as-last-access case; keeps
  // host cost of the per-access timing lookup negligible.
  PageNum last_vpage_ = ~PageNum{0};
  PageNum last_pframe_ = 0;
  TlbStats stats_;
};

}  // namespace raccd
