#include "raccd/energy/area_model.hpp"

#include <array>
#include <cmath>

namespace raccd {
namespace {

// Paper Table III anchors: (directory KB, area mm^2), descending size.
// 1:1 .. 1:256 configurations of the 524288-entry baseline.
constexpr std::array<std::pair<double, double>, 7> kAnchors{{
    {4224.0, 106.08},
    {2112.0, 53.92},
    {1056.0, 34.08},
    {528.0, 21.28},
    {264.0, 14.88},
    {66.0, 6.18},
    {16.5, 2.64},
}};

}  // namespace

double AreaModel::directory_kb(std::uint64_t entries) noexcept {
  return static_cast<double>(entries) * kEntryBits / 8.0 / 1024.0;
}

double AreaModel::directory_mm2_from_kb(double kb) noexcept {
  if (kb <= 0.0) return 0.0;
  // Clamp-extrapolate with the end-segment slopes; interpolate in log-log
  // space between anchors.
  const auto interp = [](double x, double x0, double y0, double x1, double y1) {
    const double t = (std::log(x) - std::log(x0)) / (std::log(x1) - std::log(x0));
    return std::exp(std::log(y0) + t * (std::log(y1) - std::log(y0)));
  };
  if (kb >= kAnchors.front().first) {
    const auto& [x1, y1] = kAnchors[0];
    const auto& [x0, y0] = kAnchors[1];
    return interp(kb, x0, y0, x1, y1);
  }
  if (kb <= kAnchors.back().first) {
    const auto& [x1, y1] = kAnchors[kAnchors.size() - 2];
    const auto& [x0, y0] = kAnchors.back();
    return interp(kb, x0, y0, x1, y1);
  }
  for (std::size_t i = 0; i + 1 < kAnchors.size(); ++i) {
    const auto& [hi_kb, hi_mm2] = kAnchors[i];
    const auto& [lo_kb, lo_mm2] = kAnchors[i + 1];
    if (kb <= hi_kb && kb >= lo_kb) {
      return interp(kb, lo_kb, lo_mm2, hi_kb, hi_mm2);
    }
  }
  return 0.0;
}

DirStorage AreaModel::directory_storage(std::uint64_t entries) noexcept {
  const double kb = directory_kb(entries);
  return DirStorage{kb, directory_mm2_from_kb(kb)};
}

}  // namespace raccd
