// Exec subsystem tests: the work-stealing pool (stealing, exception
// propagation, shutdown with queued work), the mutex-guarded progress
// reporter, and the SweepExecutor's contracts — byte-identical -j1 vs -j4
// output, same-key cache races, failure containment, and the race-free
// legacy-structures flag. This binary also runs under the ThreadSanitizer
// CI job, so every test here doubles as a TSan workload.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "raccd/common/flat_map.hpp"
#include "raccd/exec/progress.hpp"
#include "raccd/exec/sweep_executor.hpp"
#include "raccd/exec/work_steal_pool.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/harness/sweep_cache.hpp"

namespace raccd {
namespace {

// -- WorkStealPool ------------------------------------------------------------

TEST(WorkStealPool, RunsEverythingSingleWorker) {
  WorkStealPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.steal_count(), 0u);  // nobody to steal from
}

// Termination of this test *requires* stealing: workers 0 and 1 are wedged
// on a gate that only opens once all the short tasks — pinned to worker 0's
// deque — have run, which only workers 2/3 can do, by stealing them.
TEST(WorkStealPool, IdleWorkersStealFromLoadedDeque) {
  constexpr int kShort = 32;
  WorkStealPool pool(4);
  std::mutex m;
  std::condition_variable cv;
  int shorts_done = 0;
  const auto gate = [&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return shorts_done == kShort; });
  };
  pool.submit(gate, /*worker_hint=*/0);
  pool.submit(gate, /*worker_hint=*/1);
  // Give the blockers a moment to occupy their workers so the short tasks
  // below genuinely sit behind them in deque 0 (not strictly required for
  // correctness — any interleaving terminates — but it makes the steal
  // assertion robust).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < kShort; ++i) {
    pool.submit(
        [&] {
          const std::lock_guard<std::mutex> lock(m);
          if (++shorts_done == kShort) cv.notify_all();
        },
        /*worker_hint=*/0);
  }
  pool.wait();
  EXPECT_EQ(shorts_done, kShort);
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(WorkStealPool, ExceptionPropagatesToWait) {
  WorkStealPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("boom from worker"); });
  for (int i = 0; i < 8; ++i) pool.submit([&] { ++survivors; });
  try {
    pool.wait();
    FAIL() << "wait() should rethrow the worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom from worker");
  }
  // One task throwing does not poison the pool: the rest ran, and the pool
  // remains usable for new work.
  EXPECT_EQ(survivors.load(), 8);
  pool.submit([&] { ++survivors; });
  pool.wait();  // must not rethrow again
  EXPECT_EQ(survivors.load(), 9);
}

TEST(WorkStealPool, ShutdownWithQueuedWorkDoesNotHang) {
  std::atomic<int> executed{0};
  std::atomic<int> started{0};
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  {
    WorkStealPool pool(2);
    const auto blocker = [&] {
      ++started;
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return open; });
      ++executed;
    };
    pool.submit(blocker, 0);
    pool.submit(blocker, 1);
    // Wait until both blockers are genuinely in flight — queued-but-unstarted
    // tasks are fair game for the destructor's cancel(), in-flight ones are
    // guaranteed to drain.
    while (started.load() < 2) std::this_thread::yield();
    for (int i = 0; i < 64; ++i) pool.submit([&] { ++executed; });
    {
      const std::lock_guard<std::mutex> lock(m);
      open = true;
    }
    cv.notify_all();
    // Destructor: cancels whatever is still queued, drains the in-flight
    // blockers, joins. Must terminate (the test would hang otherwise).
  }
  EXPECT_GE(executed.load(), 2);  // both in-flight blockers always complete
}

TEST(WorkStealPool, CancelDropsQueuedKeepsRunning) {
  WorkStealPool pool(1);
  std::atomic<int> executed{0};
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return open; });
    ++executed;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it start
  for (int i = 0; i < 50; ++i) pool.submit([&] { ++executed; });
  pool.cancel();  // drops the 50 queued tasks; the in-flight one drains
  {
    const std::lock_guard<std::mutex> lock(m);
    open = true;
  }
  cv.notify_all();
  pool.wait();
  EXPECT_EQ(executed.load(), 1);
}

// -- ProgressReporter ---------------------------------------------------------

struct CapturedStream {
  std::FILE* f = nullptr;
  CapturedStream() { f = std::tmpfile(); }
  ~CapturedStream() {
    if (f != nullptr) std::fclose(f);
  }
  [[nodiscard]] std::string text() const {
    std::fflush(f);
    std::rewind(f);
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    return out;
  }
};

TEST(ProgressReporter, PlainLinesWhenNotATty) {
  CapturedStream cap;
  ProgressReporter p(2, 4, /*enabled=*/true, cap.f, /*force_tty=*/0);
  p.run_started(0, "spec-a");
  p.run_finished(0, "spec-a");
  p.run_started(1, "spec-b");
  p.run_finished(1, "spec-b");
  p.finish();
  const std::string out = cap.text();
  EXPECT_NE(out.find("[1/2] spec-a"), std::string::npos);
  EXPECT_NE(out.find("[2/2] spec-b"), std::string::npos);
  EXPECT_NE(out.find("runs/s"), std::string::npos);
  EXPECT_NE(out.find("sweep: 2 run, 0 cached, 0 failed"), std::string::npos);
  EXPECT_EQ(out.find('\r'), std::string::npos) << "CI logs must stay append-only";
}

TEST(ProgressReporter, SummaryCountsCachedAndFailedSeparately) {
  CapturedStream cap;
  ProgressReporter p(3, 2, /*enabled=*/true, cap.f, /*force_tty=*/0,
                     /*cached=*/5);
  p.run_started(0, "spec-a");
  p.run_finished(0, "spec-a");
  p.run_started(1, "spec-b");
  p.run_failed(1, "spec-b", "boom");
  p.set_summary_extra("sim 1.0s");
  p.finish();
  const std::string out = cap.text();
  // Cached preload hits are reported but never counted as finished runs (the
  // rate/ETA estimate would otherwise start wildly optimistic).
  EXPECT_NE(out.find("sweep: 1 run, 5 cached, 1 failed | sim 1.0s"),
            std::string::npos);
  EXPECT_EQ(p.done(), 2u);
}

TEST(ProgressReporter, RepaintsInPlaceOnTty) {
  CapturedStream cap;
  ProgressReporter p(2, 2, /*enabled=*/true, cap.f, /*force_tty=*/1);
  p.run_started(0, "averyveryveryverylongspeckey-tiny-raccd");
  p.run_finished(0, "averyveryveryverylongspeckey-tiny-raccd");
  p.finish();
  const std::string out = cap.text();
  EXPECT_NE(out.find('\r'), std::string::npos);
  EXPECT_NE(out.find("w0:"), std::string::npos);  // per-worker state strip
  EXPECT_NE(out.find("w1:"), std::string::npos);
  // finish() leaves the cursor on a fresh line.
  EXPECT_EQ(out.back(), '\n');
}

TEST(ProgressReporter, FailuresPrintEvenWhenDisabled) {
  CapturedStream cap;
  ProgressReporter p(1, 2, /*enabled=*/false, cap.f, /*force_tty=*/0);
  p.run_started(0, "spec-a");
  p.run_failed(0, "spec-a", "verification failed: checksum");
  p.finish();
  const std::string out = cap.text();
  EXPECT_NE(out.find("FAILED spec-a"), std::string::npos);
  EXPECT_NE(out.find("checksum"), std::string::npos);
}

TEST(ProgressReporter, ConcurrentReportersNeverTear) {
  CapturedStream cap;
  ProgressReporter p(64, 4, /*enabled=*/true, cap.f, /*force_tty=*/0);
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 16; ++i) {
        char key[32];
        std::snprintf(key, sizeof key, "w%u-run%d", w, i);
        p.run_started(w, key);
        p.run_finished(w, key);
      }
    });
  }
  for (auto& t : threads) t.join();
  p.finish();
  EXPECT_EQ(p.done(), 64u);
  // Every line is complete: starts with '[' (or is the final summary line),
  // ends where the next starts.
  const std::string out = cap.text();
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    if (out.compare(pos, 6, "sweep:") == 0) {
      pos = eol + 1;
      continue;
    }
    EXPECT_EQ(out[pos], '[') << "torn line: " << out.substr(pos, eol - pos);
    pos = eol + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 64u);
}

// -- SweepExecutor: determinism -----------------------------------------------

/// ~12 tiny specs spanning three workloads and all four coherence systems.
[[nodiscard]] std::vector<RunSpec> tiny_grid_specs() {
  return Grid()
      .workloads({"histo", "jacobi", "synthetic"})
      .size(SizeClass::kTiny)
      .modes(kAllBackends)
      .specs();
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(SweepExecutor, J1AndJ4ProduceByteIdenticalOutputs) {
  const std::string dir = "test_exec_determinism";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::vector<RunSpec> specs = tiny_grid_specs();
  ASSERT_EQ(specs.size(), 12u);

  const auto emit = [&](unsigned jobs, const std::string& tag) {
    RunOptions opts;
    opts.jobs = jobs;
    opts.use_cache = false;  // fully uncached: every spec actually simulates
    ResultSet rs = ResultSet::run(specs, opts);
    EXPECT_TRUE(rs.write_csv(dir + "/" + tag + ".csv"));
    EXPECT_TRUE(rs.write_json(dir + "/" + tag + ".json"));
    EXPECT_TRUE(rs.append_bench_json(dir + "/" + tag + "_grid.json"));
  };
  emit(1, "j1");
  emit(4, "j4");

  // The determinism guarantee: commit-by-spec-index makes every emitted
  // artifact byte-identical regardless of worker count or completion order.
  EXPECT_EQ(slurp(dir + "/j1.csv"), slurp(dir + "/j4.csv"));
  EXPECT_EQ(slurp(dir + "/j1.json"), slurp(dir + "/j4.json"));
  EXPECT_EQ(slurp(dir + "/j1_grid.json"), slurp(dir + "/j4_grid.json"));
  EXPECT_GT(slurp(dir + "/j1_grid.json").size(), 100u);
  std::filesystem::remove_all(dir);
}

TEST(SweepExecutor, DuplicateSpecsSimulateOnceAndAgree) {
  std::vector<RunSpec> specs;
  RunSpec base;
  base.app = "histo";
  base.size = SizeClass::kTiny;
  base.mode = CohMode::kRaCCD;
  for (int i = 0; i < 6; ++i) specs.push_back(base);  // all share one key
  RunOptions opts;
  opts.jobs = 4;
  opts.use_cache = false;
  const auto results = run_all(specs, opts);
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(stats_to_text(results[0]), stats_to_text(results[i]));
  }
}

// -- SweepExecutor: cache races -----------------------------------------------

// Two run_all invocations race the same uncached key in one shared cache
// directory (the multi-process --shard scenario, compressed into threads):
// both must succeed, and the surviving entry must be a complete, loadable
// stats file — the unique-temp-name + rename store guarantees no torn write.
TEST(SweepExecutor, ConcurrentSweepsRacingSameKeyLeaveValidCache) {
  const std::string dir = "test_exec_cache_race";
  std::filesystem::remove_all(dir);
  RunSpec spec;
  spec.app = "histo";
  spec.size = SizeClass::kTiny;
  spec.mode = CohMode::kPT;
  std::vector<SimStats> a;
  std::vector<SimStats> b;
  {
    RunOptions opts;
    opts.jobs = 2;
    opts.cache_dir = dir;
    std::thread t1([&] { a = run_all({spec, spec}, opts); });
    std::thread t2([&] { b = run_all({spec, spec}, opts); });
    t1.join();
    t2.join();
  }
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(stats_to_text(a[0]), stats_to_text(b[0]));
  const auto cached = cache_load(dir, spec.key());
  ASSERT_TRUE(cached.has_value()) << "racing writers must leave a loadable entry";
  EXPECT_EQ(stats_to_text(*cached), stats_to_text(a[0]));
  std::filesystem::remove_all(dir);
}

// Within one sweep, a sampling spec and a plain spec share a cache key but
// dedup separately (a series only exists if the run executes): two workers
// therefore *store* the same key concurrently. Deterministic model ⇒ both
// write identical bytes; the store must never tear.
TEST(SweepExecutor, SamplingAndPlainVariantRaceOneKey) {
  const std::string dir = "test_exec_cache_race2";
  std::filesystem::remove_all(dir);
  RunSpec plain;
  plain.app = "histo";
  plain.size = SizeClass::kTiny;
  plain.mode = CohMode::kRaCCD;
  RunSpec sampling = plain;
  sampling.series_interval = 2000;
  ASSERT_EQ(plain.key(), sampling.key());
  RunOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir;
  std::vector<Series> series;
  const auto results = run_all({plain, sampling}, opts, &series);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(stats_to_text(results[0]), stats_to_text(results[1]));
  EXPECT_TRUE(series[0].samples().empty());
  EXPECT_FALSE(series[1].samples().empty());
  const auto cached = cache_load(dir, plain.key());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(stats_to_text(*cached), stats_to_text(results[0]));
  std::filesystem::remove_all(dir);
}

// -- SweepExecutor: failure containment ---------------------------------------

TEST(SweepExecutor, RunOneCheckedReportsInsteadOfAborting) {
  RunSpec bad;
  bad.app = "no-such-workload";
  bad.size = SizeClass::kTiny;
  std::string err;
  EXPECT_FALSE(run_one_checked(bad, nullptr, &err).has_value());
  EXPECT_FALSE(err.empty());

  RunSpec good;
  good.app = "histo";
  good.size = SizeClass::kTiny;
  err.clear();
  const auto stats = run_one_checked(good, nullptr, &err);
  ASSERT_TRUE(stats.has_value()) << err;
  EXPECT_GT(stats->cycles, 0u);
}

TEST(SweepExecutor, FailedSpecIsCollectedAndSweepDrains) {
  std::vector<RunSpec> specs;
  RunSpec good;
  good.app = "histo";
  good.size = SizeClass::kTiny;
  RunSpec bad = good;
  bad.app = "no-such-workload";
  specs.push_back(good);
  specs.push_back(bad);
  RunOptions opts;
  opts.jobs = 2;
  opts.use_cache = false;
  SweepExecutor executor(opts);
  const auto results = executor.run(specs);
  ASSERT_EQ(executor.failures().size(), 1u);
  EXPECT_EQ(executor.failures()[0].key, bad.key());
  EXPECT_NE(executor.failures()[0].error.find("cannot run"), std::string::npos);
  // The failed slot keeps zeroed stats; in-flight good runs drained normally
  // (the good spec may or may not have been issued before the failure
  // cancelled the queue under -j2 timing — with 2 workers and 2 specs both
  // are issued immediately, so it completes).
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].cycles, 0u);
  EXPECT_EQ(results[1].cycles, 0u);
}

TEST(SweepExecutorDeathTest, RunAllReportsFailingKeyThenAborts) {
  RunSpec bad;
  bad.app = "no-such-workload";
  bad.size = SizeClass::kTiny;
  RunOptions opts;
  opts.jobs = 1;
  opts.use_cache = false;
  EXPECT_DEATH((void)run_all({bad}, opts), "no-such-workload");
}

// -- Legacy-structures flag under concurrency ---------------------------------

// TSan coverage for the immutable-env + atomic-override read path: hammer
// legacy_structures() from several threads while another toggles the
// in-process override. (Per the documented contract, *meaningful* A/B
// toggling requires -j1 — this test only asserts race-freedom, not
// which value any reader observes.)
TEST(LegacyStructuresFlag, ConcurrentReadsAndTogglesAreRaceFree) {
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        (void)legacy_structures();
        ++reads;
      }
    });
  }
  for (int i = 0; i < 2000; ++i) set_legacy_structures(i % 2 == 0);
  for (auto& t : readers) t.join();
  EXPECT_EQ(reads.load(), 4u * 20000u);
  set_legacy_structures(false);  // leave the process in the default state
  EXPECT_FALSE(legacy_structures());
}

}  // namespace
}  // namespace raccd
