#include "raccd/runtime/tdg.hpp"

#include <algorithm>

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"

namespace raccd {

TaskId Tdg::add_task(TaskDesc desc) {
  const TaskId id = static_cast<TaskId>(nodes_.size());
  TaskNode n;
  n.id = id;
  n.deps = std::move(desc.deps);
  n.body = std::move(desc.body);
  n.name = std::move(desc.name);
  n.release = desc.release;
  n.request = desc.request;
  nodes_.push_back(std::move(n));
  return id;
}

void Tdg::add_edge(TaskId from, TaskId to) {
  RACCD_ASSERT(from < nodes_.size() && to < nodes_.size(), "edge endpoints out of range");
  RACCD_ASSERT(from != to, "self edge");
  TaskNode& src = nodes_[from];
  if (std::find(src.successors.begin(), src.successors.end(), to) != src.successors.end()) {
    return;  // duplicate dependence between the same pair
  }
  src.successors.push_back(to);
  ++edges_;
  if (src.state != TaskState::kFinished) {
    ++nodes_[to].unresolved_preds;
  }
}

std::uint32_t Tdg::finish(TaskId t, std::vector<TaskId>& ready) {
  TaskNode& n = nodes_[t];
  RACCD_ASSERT(n.state == TaskState::kRunning, "finishing a task that is not running");
  n.state = TaskState::kFinished;
  ++finished_;
  std::uint32_t resolved = 0;
  for (const TaskId s : n.successors) {
    TaskNode& succ = nodes_[s];
    RACCD_ASSERT(succ.unresolved_preds > 0, "dependence count underflow");
    ++resolved;
    if (--succ.unresolved_preds == 0 && succ.state == TaskState::kCreated) {
      succ.state = TaskState::kReady;
      ready.push_back(s);
    }
  }
  return resolved;
}

std::size_t Tdg::critical_path_length() const {
  if (nodes_.empty()) return 0;
  // Dependences always point from earlier-created tasks to later ones, so a
  // single pass in id order is a topological traversal.
  std::vector<std::size_t> depth(nodes_.size(), 1);
  std::size_t longest = 0;
  for (const TaskNode& n : nodes_) {
    longest = std::max(longest, depth[n.id]);
    for (const TaskId s : n.successors) {
      RACCD_ASSERT(s > n.id, "dependence edge against creation order");
      depth[s] = std::max(depth[s], depth[n.id] + 1);
    }
  }
  return longest;
}

std::string Tdg::to_dot() const {
  std::string out = "digraph tdg {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (const TaskNode& n : nodes_) {
    out += strprintf("  t%u [label=\"%s\"];\n", n.id,
                     n.name.empty() ? strprintf("t%u", n.id).c_str() : n.name.c_str());
  }
  for (const TaskNode& n : nodes_) {
    for (const TaskId s : n.successors) {
      out += strprintf("  t%u -> t%u;\n", n.id, s);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace raccd
