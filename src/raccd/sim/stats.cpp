#include "raccd/sim/stats.hpp"

#include "raccd/common/format.hpp"
#include "raccd/common/math.hpp"

namespace raccd {

std::string SimStats::summary() const {
  std::string out;
  out += strprintf("mode=%s dir=1:%u adr=%d\n", to_string(mode), dir_ratio,
                   adr_enabled ? 1 : 0);
  out += strprintf("  cycles=%s tasks=%llu edges=%llu util=%.1f%%\n",
                   format_count(cycles).c_str(),
                   static_cast<unsigned long long>(tasks),
                   static_cast<unsigned long long>(edges), 100.0 * core_utilization);
  out += strprintf("  L1: %llu accesses, %.1f%% hit | LLC: %llu lookups, %.1f%% hit\n",
                   static_cast<unsigned long long>(fabric.l1_accesses),
                   percent(static_cast<double>(fabric.l1_hits),
                           static_cast<double>(fabric.l1_accesses)),
                   static_cast<unsigned long long>(fabric.llc_lookups),
                   100.0 * fabric.llc_hit_ratio());
  out += strprintf("  dir: %llu accesses, occupancy %.1f%%, active %.1f%%\n",
                   static_cast<unsigned long long>(fabric.dir_accesses),
                   100.0 * avg_dir_occupancy, 100.0 * avg_dir_active_frac);
  out += strprintf("  noc: %llu flit-hops | mem: %llu reads, %llu writes\n",
                   static_cast<unsigned long long>(noc.total_flit_hops()),
                   static_cast<unsigned long long>(fabric.mem_reads),
                   static_cast<unsigned long long>(fabric.mem_writes));
  if (fabric.dram_row_hits + fabric.dram_row_misses + fabric.dram_row_conflicts > 0) {
    out += strprintf(
        "  dram: row hit %.1f%% (%llu hit / %llu miss / %llu conflict), "
        "read wait %s cycles, wb wait %s cycles\n",
        100.0 * fabric.dram_row_hit_ratio(),
        static_cast<unsigned long long>(fabric.dram_row_hits),
        static_cast<unsigned long long>(fabric.dram_row_misses),
        static_cast<unsigned long long>(fabric.dram_row_conflicts),
        format_count(fabric.dram_queue_wait_cycles).c_str(),
        format_count(fabric.mem_wb_wait_cycles).c_str());
  }
  if (noc.cross_socket.messages > 0) {
    out += strprintf(
        "  cross-socket: %llu flit-hops (%.1f%% of traffic), %llu dir reqs, "
        "%llu nc reqs, %llu link flits\n",
        static_cast<unsigned long long>(noc.cross_socket.flit_hops),
        percent(static_cast<double>(noc.cross_socket.flit_hops),
                static_cast<double>(noc.total_flit_hops())),
        static_cast<unsigned long long>(fabric.dir_reqs_cross_socket),
        static_cast<unsigned long long>(fabric.nc_reqs_cross_socket),
        static_cast<unsigned long long>(noc.socket_link_flits));
  }
  out += strprintf("  non-coherent blocks: %.1f%% (%llu / %llu)\n",
                   100.0 * noncoherent_block_fraction,
                   static_cast<unsigned long long>(blocks_noncoherent),
                   static_cast<unsigned long long>(blocks_touched));
  out += strprintf("  energy: dir %.1f nJ, llc %.1f nJ, noc %.1f nJ\n",
                   dir_dyn_energy_pj / 1e3, llc_dyn_energy_pj / 1e3,
                   noc_dyn_energy_pj / 1e3);
  return out;
}

}  // namespace raccd
