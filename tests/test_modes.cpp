// Cross-mode behavioural tests: the paper's qualitative claims must hold on
// small workloads — RaCCD ≤ PT ≤ FullCoh in directory pressure, occupancy
// ordering (Fig. 8), FullCoh degradation under directory reduction (Fig. 6),
// and RaCCD's robustness to it.
#include <gtest/gtest.h>

#include "raccd/apps/app.hpp"
#include "raccd/harness/experiment.hpp"

namespace raccd {
namespace {

SimStats run(const std::string& app, CohMode mode, std::uint32_t ratio,
             bool adr = false, SizeClass size = SizeClass::kTiny) {
  RunSpec spec;
  spec.app = app;
  spec.size = size;
  spec.mode = mode;
  spec.dir_ratio = ratio;
  spec.adr = adr;
  return run_one(spec);
}

TEST(Modes, DirectoryAccessOrdering) {
  // Jacobi: temporally-private blocks. RaCCD must slash directory accesses
  // versus FullCoh; PT lands in between (paper Fig. 7a). Small size: page
  // granularity needs a dataset of many pages to classify anything (on tiny
  // inputs PT degenerates, which is itself the granularity problem the
  // paper describes).
  const SimStats full = run("jacobi", CohMode::kFullCoh, 1, false, SizeClass::kSmall);
  const SimStats pt = run("jacobi", CohMode::kPT, 1, false, SizeClass::kSmall);
  const SimStats raccd = run("jacobi", CohMode::kRaCCD, 1, false, SizeClass::kSmall);
  EXPECT_LT(raccd.fabric.dir_accesses, full.fabric.dir_accesses / 2);
  EXPECT_LT(raccd.fabric.dir_accesses, pt.fabric.dir_accesses);
  EXPECT_LT(pt.fabric.dir_accesses, full.fabric.dir_accesses);
}

TEST(Modes, OccupancyOrderingMatchesFig8) {
  const SimStats full = run("gauss", CohMode::kFullCoh, 1);
  const SimStats pt = run("gauss", CohMode::kPT, 1);
  const SimStats raccd = run("gauss", CohMode::kRaCCD, 1);
  EXPECT_GT(full.avg_dir_occupancy, pt.avg_dir_occupancy);
  EXPECT_GT(pt.avg_dir_occupancy, raccd.avg_dir_occupancy * 0.999);
  EXPECT_GE(full.avg_dir_occupancy, 0.0);
  EXPECT_LE(full.avg_dir_occupancy, 1.0);
}

TEST(Modes, NonCoherentBlockFractionMatchesFig2Ordering) {
  // RaCCD identifies (far) more non-coherent blocks than PT on apps whose
  // data migrates between cores (paper Fig. 2).
  for (const char* app : {"jacobi", "gauss", "histo"}) {
    const SimStats pt = run(app, CohMode::kPT, 1);
    const SimStats raccd = run(app, CohMode::kRaCCD, 1);
    EXPECT_GT(raccd.noncoherent_block_fraction, pt.noncoherent_block_fraction) << app;
    EXPECT_GT(raccd.noncoherent_block_fraction, 0.5) << app;
  }
}

TEST(Modes, FullCohDegradesWithTinyDirectoryRaccdTolerates) {
  // Working sets at tiny size still exceed the 1:256 directory coverage.
  const SimStats full_1 = run("jacobi", CohMode::kFullCoh, 1);
  const SimStats full_256 = run("jacobi", CohMode::kFullCoh, 256);
  const SimStats raccd_1 = run("jacobi", CohMode::kRaCCD, 1);
  const SimStats raccd_256 = run("jacobi", CohMode::kRaCCD, 256);
  const double full_slowdown =
      static_cast<double>(full_256.cycles) / static_cast<double>(full_1.cycles);
  const double raccd_slowdown =
      static_cast<double>(raccd_256.cycles) / static_cast<double>(raccd_1.cycles);
  EXPECT_GT(full_slowdown, 1.05);  // FullCoh visibly hurt
  EXPECT_LT(raccd_slowdown, full_slowdown);
  // LLC hit rate collapses for FullCoh (directory-inclusion invalidations).
  EXPECT_LT(full_256.llc_hit_ratio(), full_1.llc_hit_ratio());
  EXPECT_GT(raccd_256.llc_hit_ratio() + 0.02, full_256.llc_hit_ratio());
}

TEST(Modes, RaccdCutsDirectoryEnergy) {
  const SimStats full = run("gauss", CohMode::kFullCoh, 1);
  const SimStats raccd = run("gauss", CohMode::kRaCCD, 1);
  EXPECT_LT(raccd.dir_dyn_energy_pj, full.dir_dyn_energy_pj * 0.6);
}

TEST(Modes, AdrSavesEnergyWithoutHurtingRaccd) {
  // JPEG under RaCCD is all-coherent traffic with a small footprint: ADR
  // must power the directory down and cut per-access energy. Small size so
  // the (rare) reconfiguration costs amortize as in the paper.
  const SimStats base = run("jpeg", CohMode::kRaCCD, 1, false, SizeClass::kSmall);
  const SimStats adr = run("jpeg", CohMode::kRaCCD, 1, true, SizeClass::kSmall);
  EXPECT_GT(adr.adr.shrinks, 0u);
  EXPECT_LT(adr.avg_dir_active_frac, 1.0);
  EXPECT_LT(adr.dir_dyn_energy_pj, base.dir_dyn_energy_pj);
  // Performance stays within a few percent (paper Fig. 9).
  EXPECT_LT(static_cast<double>(adr.cycles), static_cast<double>(base.cycles) * 1.05);
}

TEST(Modes, AdrPowersDownIdleDirectory) {
  // A fully-annotated app under RaCCD generates ~no directory traffic; the
  // task-boundary evaluation must still shrink the powered size to the floor.
  const SimStats adr = run("histo", CohMode::kRaCCD, 1, true, SizeClass::kSmall);
  EXPECT_GT(adr.adr.shrinks, 0u);
  EXPECT_LT(adr.avg_dir_active_frac, 0.25);
}

TEST(Modes, JpegIsRaccdWorstCase) {
  const SimStats raccd = run("jpeg", CohMode::kRaCCD, 1, false, SizeClass::kSmall);
  const SimStats pt = run("jpeg", CohMode::kPT, 1, false, SizeClass::kSmall);
  EXPECT_EQ(raccd.blocks_noncoherent, 0u);
  EXPECT_GT(pt.noncoherent_block_fraction, 0.1);  // PT classifies fine here
  EXPECT_LT(pt.fabric.dir_accesses, raccd.fabric.dir_accesses);
}

TEST(Modes, MeshTrafficAccountingConsistent) {
  // Every mode's NoC stats must balance: responses never exceed requests,
  // and flit-hops are nonzero once there is any cross-tile traffic.
  for (const CohMode mode : kAllModes) {
    const SimStats s = run("md5", mode, 1);
    const auto& req = s.noc.per_class[static_cast<std::size_t>(MsgClass::kRequest)];
    const auto& dat = s.noc.per_class[static_cast<std::size_t>(MsgClass::kResponseData)];
    EXPECT_GT(req.messages, 0u) << to_string(mode);
    EXPECT_LE(dat.messages, req.messages * 2) << to_string(mode);
    EXPECT_GT(s.noc.total_flit_hops(), 0u);
  }
}

}  // namespace
}  // namespace raccd
