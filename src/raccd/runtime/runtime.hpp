// The task-based runtime system frontend: task creation with dependence
// analysis, readiness tracking, and scheduling (paper §II-C/III-B).
// Execution timing is driven by sim::Machine; this class owns the
// programming-model state only, so it is unit-testable in isolation.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/types.hpp"
#include "raccd/runtime/dep_registry.hpp"
#include "raccd/runtime/scheduler.hpp"
#include "raccd/runtime/tdg.hpp"

namespace raccd {

struct RuntimeStats {
  std::uint64_t tasks_created = 0;
  std::uint64_t deps_registered = 0;
  std::uint64_t edges = 0;
  std::uint64_t wakeups = 0;  ///< successor edges resolved at task completion
};

class Runtime {
 public:
  explicit Runtime(SchedPolicy policy = SchedPolicy::kFifo, std::uint32_t cores = 16)
      : sched_(policy, cores) {}

  /// Create a task, derive its dependence edges, and enqueue it if ready
  /// (creation happens on the main thread, core 0).
  TaskId create_task(TaskDesc desc);

  /// Scheduler pop for an idle core; false when no task is ready.
  bool pop_ready(CoreId core, TaskId& out);

  /// Mark `t` running (scheduler handed it to a core).
  void start_task(TaskId t);

  /// Complete `t` on `core`: resolves successors, enqueues newly ready
  /// tasks (onto the finishing core's deque under work stealing). Returns
  /// whether any task became ready; `resolved` counts wake-up edges.
  bool finish_task(TaskId t, CoreId core, std::uint32_t& resolved);

  [[nodiscard]] TaskNode& task(TaskId t) { return tdg_.task(t); }
  [[nodiscard]] const TaskNode& task(TaskId t) const { return tdg_.task(t); }
  [[nodiscard]] bool all_finished() const noexcept { return tdg_.all_finished(); }
  [[nodiscard]] std::size_t task_count() const noexcept { return tdg_.task_count(); }
  [[nodiscard]] const Tdg& tdg() const noexcept { return tdg_; }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Scheduler& scheduler() const noexcept { return sched_; }
  [[nodiscard]] std::size_t ready_count() const noexcept { return sched_.size(); }

 private:
  Tdg tdg_;
  DepRegistry deps_;
  Scheduler sched_;
  RuntimeStats stats_;
  std::vector<TaskId> scratch_preds_;
  std::vector<TaskId> scratch_ready_;
};

}  // namespace raccd
