#include "raccd/exec/sweep_executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/exec/progress.hpp"
#include "raccd/exec/work_steal_pool.hpp"
#include "raccd/harness/sweep_cache.hpp"
#include "raccd/obs/profiler.hpp"

namespace raccd {

unsigned SweepExecutor::effective_jobs(unsigned jobs, std::size_t todo) {
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  return std::max(1u, std::min<unsigned>(jobs, static_cast<unsigned>(
                                                   std::max<std::size_t>(1, todo))));
}

std::vector<SimStats> SweepExecutor::run(const std::vector<RunSpec>& specs,
                                         std::vector<Series>* series_out) {
  failures_.clear();
  // Host-side wall-time profile of this sweep: filled as the sweep runs,
  // published through obs::last_sweep_profile() at the end (export timing is
  // accumulated there later by the grid emitters). Observation only — it
  // never influences scheduling, results, or the cache.
  obs::SweepProfile profile;
  obs::ScopeTimer wall;
  std::vector<SimStats> results(specs.size());
  std::vector<std::uint8_t> pending(specs.size(), 1);
  if (series_out != nullptr) series_out->assign(specs.size(), Series{});
  const auto samples = [&](std::size_t i) {
    return series_out != nullptr && specs[i].series_interval > 0;
  };

  if (opts_.use_cache) {
    const obs::ScopeTimer preload;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      // A cached SimStats cannot satisfy a sampling spec: the series only
      // exists if the simulation actually runs.
      if (samples(i)) continue;
      if (auto cached = cache_load(opts_.cache_dir, specs[i].key())) {
        results[i] = *cached;
        pending[i] = 0;
        ++profile.cached;
      }
    }
    profile.preload_s = preload.seconds();
  }

  // In-flight dedup: identical specs (same cache key) are simulated once and
  // copied after the sweep drains, so two workers never race the same
  // uncached spec and callers may pass lists with repeats for free.
  // Sampling variants dedup separately: series params are deliberately not
  // part of the cache key (they don't change the stats).
  const auto dedup_key = [&](std::size_t i) {
    std::string k = specs[i].key();
    if (samples(i)) {
      k += strprintf("+series%llu:%s",
                     static_cast<unsigned long long>(specs[i].series_interval),
                     specs[i].series_metrics.c_str());
    }
    return k;
  };
  std::vector<std::size_t> todo;
  std::unordered_map<std::string, std::size_t> first_with_key;
  std::vector<std::pair<std::size_t, std::size_t>> dup;  // (dst, src) indices
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (pending[i] == 0) continue;
    const auto [it, inserted] = first_with_key.try_emplace(dedup_key(i), i);
    if (inserted) todo.push_back(i);
    else dup.emplace_back(i, it->second);
  }

  // Shard the deduped to-run list by position: deterministic for a given
  // spec list, and every shard of the same sweep agrees on the partition.
  if (opts_.shard_count > 1) {
    RACCD_ASSERT(opts_.shard_index < opts_.shard_count, "shard index out of range");
    std::vector<std::size_t> mine;
    for (std::size_t slot = 0; slot < todo.size(); ++slot) {
      if (slot % opts_.shard_count == opts_.shard_index) mine.push_back(todo[slot]);
    }
    if (opts_.verbose) {
      std::fprintf(stderr, "shard %u/%u: %zu of %zu uncached runs\n", opts_.shard_index,
                   opts_.shard_count, mine.size(), todo.size());
    }
    todo = std::move(mine);
  }

  profile.deduped = dup.size();

  {
    const unsigned jobs = effective_jobs(opts_.jobs, todo.size());
    profile.jobs = jobs;
    profile.workers.assign(jobs, {});
    ProgressReporter progress(todo.size(), jobs, opts_.verbose, stderr,
                              /*force_tty=*/-1, profile.cached);
    std::mutex failures_mutex;
    std::mutex profile_mutex;
    std::atomic<bool> stop{false};

    // The per-spec task body. Returns through `results[i]` (index commit:
    // the determinism guarantee) and the cache; never throws.
    const auto run_slot = [&](std::size_t i, unsigned worker) {
      const std::string key = specs[i].key();
      progress.run_started(worker, key);
      const obs::ScopeTimer busy;
      obs::RunProfile run_profile;
      // Sampled specs feed phase transitions into the strip: the entry shows
      // whether the worker is fast-forwarding or measuring, and the window.
      std::function<void(SimPhase, std::uint64_t)> phase_hook;
      if (opts_.verbose && !specs[i].sampling.empty()) {
        phase_hook = [&progress, worker](SimPhase p, std::uint64_t window) {
          progress.phase_changed(worker, p == SimPhase::kFfwd, window);
        };
      }
      // Open-loop service specs feed release batches into the strip the same
      // way; batch workloads never fire the hook, so wiring it is free.
      std::function<void(std::uint64_t)> release_hook;
      if (opts_.verbose) {
        release_hook = [&progress, worker](std::uint64_t released) {
          progress.release_changed(worker, released);
        };
      }
      std::string err;
      std::optional<SimStats> stats;
      try {
        stats = run_one_checked(specs[i], samples(i) ? &(*series_out)[i] : nullptr,
                                &err, phase_hook, release_hook, &run_profile);
      } catch (const std::exception& e) {
        err = strprintf("unhandled exception: %s", e.what());
      } catch (...) {
        err = "unhandled exception (non-std type)";
      }
      {
        const std::lock_guard<std::mutex> lock(profile_mutex);
        profile.setup_s += run_profile.setup_s;
        profile.sim_s += run_profile.sim_s;
        const unsigned slot = worker == ProgressReporter::kNoWorker ? 0 : worker;
        if (slot < profile.workers.size()) {
          profile.workers[slot].busy_s += busy.seconds();
          ++profile.workers[slot].runs;
        }
        if (stats.has_value()) ++profile.executed;
        else ++profile.failed;
      }
      if (!stats.has_value()) {
        stop.store(true, std::memory_order_relaxed);
        {
          const std::lock_guard<std::mutex> lock(failures_mutex);
          failures_.push_back({key, err});
        }
        progress.run_failed(worker, key, err);
        return;
      }
      results[i] = *stats;
      if (opts_.use_cache && !cache_store(opts_.cache_dir, key, results[i]) &&
          opts_.verbose) {
        std::fprintf(stderr, "warning: could not store cache entry '%s' under %s\n",
                     key.c_str(), opts_.cache_dir.c_str());
      }
      progress.run_finished(worker, key);
    };

    if (todo.empty()) {
      // Nothing to simulate (all cached): no workers, but the summary below
      // still reports the cache hits.
    } else if (jobs == 1) {
      // Inline serial path: the historical behavior, and the only mode in
      // which per-process RACCD_LEGACY_STRUCTURES A/B toggling is sound.
      for (const std::size_t i : todo) {
        if (stop.load(std::memory_order_relaxed)) break;  // drain semantics
        run_slot(i, ProgressReporter::kNoWorker);
      }
    } else {
      WorkStealPool pool(jobs);
      for (const std::size_t i : todo) {
        pool.submit([&, i] {
          run_slot(i, pool.current_worker());
          // First failure stops issuing new work: queued specs are dropped,
          // in-flight specs on other workers drain normally.
          if (stop.load(std::memory_order_relaxed)) pool.cancel();
        });
      }
      pool.wait();
      profile.steals = pool.steal_count();
    }
    profile.wall_s = wall.seconds();
    progress.set_summary_extra(profile.summary());
    progress.finish();
  }

  for (const auto& [dst, src] : dup) {
    results[dst] = results[src];
    if (series_out != nullptr && samples(dst)) (*series_out)[dst] = (*series_out)[src];
  }
  // Publish for bench binaries / grid emitters; export_s starts at zero and
  // accumulates as the ResultSet emitters time their own writes.
  obs::last_sweep_profile() = std::move(profile);
  return results;
}

}  // namespace raccd
