// Network-on-Chip model (paper Table I: 4x4 mesh, 1-cycle links, 1-cycle
// routers, XY dimension-ordered routing), generalized over a Topology
// (topo/topology.hpp): flat mesh (the default), concentrated mesh, or a
// multi-socket NUMA machine with distinct inter-socket links.
//
// The atomic-transaction protocol engine asks the mesh for the latency of
// each message leg and the mesh accounts traffic (messages, flits and
// flit-hops) per message class, with an on-socket vs cross-socket breakdown.
// Flit-hops (flits x links traversed, inter-socket links included) is the
// figure-of-merit reported as "NoC traffic" (paper Fig. 7c) and the basis of
// NoC dynamic energy.
#pragma once

#include <array>
#include <cstdint>

#include "raccd/common/types.hpp"
#include "raccd/topo/topology.hpp"

namespace raccd {

/// Message classes, used for traffic breakdown and flit sizing.
enum class MsgClass : std::uint8_t {
  kRequest = 0,   ///< GetS/GetX/Upgrade and NC request (control, 1 flit)
  kResponseData,  ///< data response, 1 + line flits
  kInval,         ///< invalidation / recall request (control)
  kAck,           ///< invalidation ack / completion (control)
  kWriteback,     ///< dirty data writeback (data)
};
inline constexpr std::size_t kMsgClassCount = 5;

[[nodiscard]] constexpr const char* to_string(MsgClass c) noexcept {
  switch (c) {
    case MsgClass::kRequest: return "request";
    case MsgClass::kResponseData: return "data";
    case MsgClass::kInval: return "inval";
    case MsgClass::kAck: return "ack";
    case MsgClass::kWriteback: return "writeback";
  }
  return "?";
}

struct MeshConfig {
  std::uint32_t width = 4;
  std::uint32_t height = 4;
  Cycle link_cycles = 1;
  Cycle router_cycles = 1;
  std::uint32_t flit_bytes = 16;
  std::uint32_t control_bytes = 8;                 ///< header-only message payload
  std::uint32_t data_bytes = 8 + kLineBytes;       ///< header + cache line
};

struct NocStats {
  struct PerClass {
    std::uint64_t messages = 0;
    std::uint64_t flits = 0;
    std::uint64_t flit_hops = 0;
  };
  std::array<PerClass, kMsgClassCount> per_class{};
  /// Subset of the above that traversed an inter-socket link (all zero on
  /// single-socket topologies).
  PerClass cross_socket{};
  /// Flits carried over the inter-socket links themselves (the off-package
  /// bandwidth demand, as opposed to cross-socket messages' total hops).
  std::uint64_t socket_link_flits = 0;

  [[nodiscard]] std::uint64_t total_messages() const noexcept;
  [[nodiscard]] std::uint64_t total_flits() const noexcept;
  [[nodiscard]] std::uint64_t total_flit_hops() const noexcept;
  [[nodiscard]] std::uint64_t on_socket_flit_hops() const noexcept {
    return total_flit_hops() - cross_socket.flit_hops;
  }
  void add(const NocStats& o) noexcept;
};

class Mesh {
 public:
  /// Legacy single-socket construction: a flat mesh of cfg.width x cfg.height.
  explicit Mesh(const MeshConfig& cfg);
  /// Topology-driven construction (cfg supplies flit sizing; geometry and
  /// link timing come from `topo`).
  Mesh(const MeshConfig& cfg, const TopologyConfig& topo, std::uint32_t cores);

  [[nodiscard]] std::uint32_t node_count() const noexcept { return topo_.cores(); }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Links traversed between two nodes (inter-socket links included).
  [[nodiscard]] std::uint32_t hops(std::uint32_t from, std::uint32_t to) const noexcept {
    return topo_.route(from, to).total_hops();
  }

  /// Head-flit latency of a message: the topology's route latency plus
  /// serialization of the remaining flits at the destination.
  [[nodiscard]] Cycle latency(std::uint32_t from, std::uint32_t to, MsgClass cls) const noexcept;

  /// Record a message in the stats and return its latency.
  Cycle transfer(std::uint32_t from, std::uint32_t to, MsgClass cls) noexcept {
    return transfer(topo_.route(from, to), cls);
  }
  /// Same, for a route the caller already resolved (saves the recompute on
  /// the fabric's hot path).
  Cycle transfer(const Route& r, MsgClass cls) noexcept;

  /// Node id of the memory controller closest to `node` (controllers sit at
  /// the grid corners of the node's socket, as in common tiled floorplans).
  [[nodiscard]] std::uint32_t nearest_memory_controller(std::uint32_t node) const noexcept {
    return topo_.mem_controller(node);
  }

  [[nodiscard]] std::uint32_t flits_for(MsgClass cls) const noexcept;
  [[nodiscard]] const NocStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NocStats{}; }
  [[nodiscard]] const MeshConfig& config() const noexcept { return cfg_; }

  /// Redirect traffic accounting into `sink` (nullptr = the mesh's own
  /// measured stats). Sampled simulation points this at a scratch bucket
  /// during detailed-warmup windows so warmup traffic never pollutes the
  /// measured rates; the mesh itself is timing-stateless, so redirection is
  /// the only hook sampling needs here.
  void set_stats_sink(NocStats* sink) noexcept { sink_ = sink; }

 private:
  MeshConfig cfg_;
  Topology topo_;
  NocStats stats_;
  NocStats* sink_ = nullptr;  ///< non-null: stats bucket override
};

}  // namespace raccd
