// Internal per-app factory declarations (one per translation unit).
#pragma once

#include <memory>

#include "raccd/apps/app.hpp"

namespace raccd::apps {

std::unique_ptr<App> make_cg(const AppConfig& cfg);
std::unique_ptr<App> make_gauss(const AppConfig& cfg);
std::unique_ptr<App> make_histogram(const AppConfig& cfg);
std::unique_ptr<App> make_jacobi(const AppConfig& cfg);
std::unique_ptr<App> make_jpeg(const AppConfig& cfg);
std::unique_ptr<App> make_kmeans(const AppConfig& cfg);
std::unique_ptr<App> make_knn(const AppConfig& cfg);
std::unique_ptr<App> make_md5(const AppConfig& cfg);
std::unique_ptr<App> make_redblack(const AppConfig& cfg);
std::unique_ptr<App> make_cholesky(const AppConfig& cfg);

}  // namespace raccd::apps
