// Phase-resolved metric time-series (paper Fig. 8 plots directory occupancy
// *over time*, not just its time-average).
//
// StatSampler hooks into the Machine's discrete-event loop: every
// SeriesConfig::interval cycles it snapshots the live machine state (via a
// caller-supplied snapshot function) and evaluates a by-name metric
// selection into a Series. Memory is bounded: when the sample count reaches
// SeriesConfig::max_samples the series decimates — every second sample is
// dropped and the effective interval doubles — so arbitrarily long runs keep
// full-run coverage at O(max_samples) memory (DESIGN.md substitution #8).
//
// Sampling is deterministic: sample times derive only from simulated event
// times, so identical specs produce identical series (tested).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "raccd/metrics/metric_schema.hpp"
#include "raccd/sim/config.hpp"

namespace raccd {

class Series {
 public:
  struct Sample {
    Cycle t = 0;
    std::vector<double> v;  ///< one value per metric, in metric order
    [[nodiscard]] bool operator==(const Sample&) const = default;
  };

  Series() = default;
  Series(std::vector<std::string> metric_names, Cycle interval)
      : names_(std::move(metric_names)), interval_(interval) {}

  [[nodiscard]] const std::vector<std::string>& metric_names() const noexcept {
    return names_;
  }
  /// Effective sampling interval (doubles on each decimation).
  [[nodiscard]] Cycle interval() const noexcept { return interval_; }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Column index of `name` (dotted name or flat key); -1 when absent.
  [[nodiscard]] int column(std::string_view name) const;
  /// All values of one column, in time order.
  [[nodiscard]] std::vector<double> values(std::string_view name) const;

  /// Append a sample; decimates (and doubles interval_) at `max_samples`.
  void push(Cycle t, std::vector<double> v, std::uint32_t max_samples);

  /// {"interval": N, "metrics": [...], "samples": [[t, v...], ...]} —
  /// non-finite values emit as null.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] bool operator==(const Series&) const = default;

 private:
  std::vector<std::string> names_;
  Cycle interval_ = 0;
  std::vector<Sample> samples_;
};

/// One JSON object mapping labels (spec keys, escaped) to series bodies:
/// {"<label>": {"interval": ..., ...}, ...} — the single wrapper every
/// series file writer (simulate --series, fig08_occupancy) uses.
[[nodiscard]] std::string series_map_json(
    std::span<const std::pair<std::string, const Series*>> entries);

/// Drives a Series from inside a simulation loop.
class StatSampler {
 public:
  /// `snapshot(at, s)` fills `s` with the *live* machine state at time
  /// `at` (occupancy fields instantaneous, counters as-of-now). Aborts on unknown metric
  /// names — validate CLI input with MetricSchema::parse_selection first.
  StatSampler(const SeriesConfig& cfg,
              std::function<void(Cycle, SimStats&)> snapshot);

  /// Call with a (globally non-decreasing) event time; samples at most once
  /// per crossed interval boundary.
  void observe(Cycle now);
  /// Record the final point at `end` (idempotent for repeated ends).
  void finish(Cycle end);

  [[nodiscard]] const Series& series() const noexcept { return series_; }

 private:
  void sample(Cycle at);

  std::function<void(Cycle, SimStats&)> snapshot_;
  std::vector<const MetricDesc*> selection_;
  Series series_;
  Cycle next_ = 0;
  std::uint32_t max_samples_;
};

}  // namespace raccd
