// Verbose per-run report printing (used by examples and for debugging).
#pragma once

#include <cstdio>

#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"

namespace raccd {

/// Print a full breakdown of one simulation run to `out`.
void print_report(const SimStats& s, std::FILE* out = stdout);

/// Print the machine configuration header (paper Table I analogue).
void print_config(const SimConfig& cfg, std::FILE* out = stdout);

}  // namespace raccd
