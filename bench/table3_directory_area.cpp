// Paper Table III: directory storage (KB) and area (mm^2) for the seven
// directory-size configurations of the paper machine (524288-entry baseline,
// 66-bit entries, CACTI 6.0 area anchors).
#include <cstdio>

#include "raccd/common/format.hpp"
#include "raccd/energy/area_model.hpp"
#include "raccd/harness/table.hpp"
#include "raccd/sim/config.hpp"

using namespace raccd;

int main() {
  std::printf("Table III — Directory size and area (paper machine: 524288 entries at 1:1)\n");
  constexpr std::uint64_t kBaseEntries = 524288;
  // Paper values for side-by-side comparison.
  const double paper_kb[] = {4224, 2112, 1056, 528, 264, 66, 16.5};
  const double paper_mm2[] = {106.08, 53.92, 34.08, 21.28, 14.88, 6.18, 2.64};

  TextTable table({"config", "entries", "KB (model)", "KB (paper)", "mm2 (model)",
                   "mm2 (paper)"});
  for (std::size_t i = 0; i < kDirRatios.size(); ++i) {
    const std::uint64_t entries = kBaseEntries / kDirRatios[i];
    const DirStorage s = AreaModel::directory_storage(entries);
    table.add_row({strprintf("1:%u", kDirRatios[i]), format_count(entries),
                   strprintf("%.1f", s.kilobytes), strprintf("%.1f", paper_kb[i]),
                   strprintf("%.2f", s.area_mm2), strprintf("%.2f", paper_mm2[i])});
  }
  table.print();
  table.write_csv("results/table3_directory_area.csv");
  const double reduction =
      100.0 * (1.0 - AreaModel::directory_storage(kBaseEntries / 256).area_mm2 /
                         AreaModel::directory_storage(kBaseEntries).area_mm2);
  std::printf("\n1:256 reduces directory area by %.1f%% (paper: 97.5%%)\n", reduction);
  return 0;
}
