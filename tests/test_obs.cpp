// Observability layer: simulated-time trace recording (TraceSink), the
// structural validator, category filtering, bounded-buffer drop accounting,
// the zero-overhead-when-off byte-identity contract, and the host-side sweep
// profile's -jN merge determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/metrics/emit.hpp"
#include "raccd/obs/profiler.hpp"
#include "raccd/obs/trace_sink.hpp"
#include "raccd/obs/trace_validate.hpp"
#include "raccd/sim/machine.hpp"

namespace raccd {
namespace {

/// Run one tiny registry workload on a `cores`-wide scaled machine with an
/// optional trace sink attached; returns the collected stats.
SimStats run_traced(const std::string& workload, CohMode mode, std::uint32_t cores,
                    obs::TraceSink* sink) {
  SimConfig cfg = SimConfig::scaled(mode);
  cfg.fabric.cores = cores;
  cfg.fabric.mesh.width = cores;  // flat mesh: geometry must match core count
  cfg.fabric.mesh.height = 1;
  Machine m(cfg);
  if (sink != nullptr) m.set_obs_trace(sink);
  std::string err;
  const std::unique_ptr<App> app = WorkloadRegistry::instance().create(
      workload, AppConfig(SizeClass::kTiny, 42), &err);
  EXPECT_NE(app, nullptr) << err;
  app->run(m);
  EXPECT_EQ(app->verify(m), "");
  return m.collect();
}

TEST(TraceFilter, ParsesCategoryLists) {
  std::string err;
  EXPECT_EQ(obs::parse_trace_filter("task,coh", &err), 0b00011u) << err;
  EXPECT_EQ(obs::parse_trace_filter("dram,svc,noc", &err), 0b11100u) << err;
  EXPECT_EQ(obs::parse_trace_filter("all", &err), obs::kAllCats) << err;
  // "none" is a valid empty mask (armed-but-off sink), not a parse error.
  err.clear();
  EXPECT_EQ(obs::parse_trace_filter("none", &err), 0u);
  EXPECT_EQ(err, "");
  EXPECT_EQ(obs::parse_trace_filter("", &err), 0u);
  EXPECT_NE(err.find("empty"), std::string::npos) << err;
  EXPECT_EQ(obs::parse_trace_filter("task,bogus", &err), 0u);
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
}

TEST(TraceSink, InternsNamesAndFiltersCategories) {
  obs::TraceConfig cfg;
  cfg.categories = 1u << static_cast<unsigned>(obs::TraceCat::kTask);
  obs::TraceSink sink(cfg);
  EXPECT_TRUE(sink.wants(obs::TraceCat::kTask));
  EXPECT_FALSE(sink.wants(obs::TraceCat::kDram));
  const obs::NameId a = sink.intern("compute");
  EXPECT_EQ(sink.intern("compute"), a);  // stable
  EXPECT_EQ(sink.name_of(a), "compute");
  // Events in filtered-out categories are refused at admission, not counted
  // as drops (the site should not even have called in — this is the backstop).
  sink.instant(obs::TraceCat::kDram, obs::kPidDram, 0, a, 10);
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.dropped_total(), 0u);
  sink.instant(obs::TraceCat::kTask, obs::kPidCores, 0, a, 10);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].ph, 'i');
  EXPECT_EQ(sink.events()[0].ts, 10u);
}

TEST(TraceSink, BoundedBufferDropsAreCountedAndDeclared) {
  obs::TraceConfig cfg;
  cfg.max_events = 4;
  obs::TraceSink sink(cfg);
  const obs::NameId n = sink.intern("tick");
  for (std::uint64_t t = 0; t < 10; ++t) {
    sink.instant(obs::TraceCat::kTask, obs::kPidCores, 0, n, t);
  }
  EXPECT_EQ(sink.events().size(), 4u);  // drop-newest: first 4 retained
  EXPECT_EQ(sink.events().back().ts, 3u);
  EXPECT_EQ(sink.dropped(obs::TraceCat::kTask), 6u);
  EXPECT_EQ(sink.dropped_total(), 6u);
  // The export declares the drops and the validator accepts the capped trace.
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"dropped_total\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped_task\":6"), std::string::npos) << json;
  const obs::TraceValidation v = obs::validate_trace_json(json);
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
  EXPECT_EQ(v.dropped, 6u);
  EXPECT_EQ(v.events, 4u);
}

TEST(TraceValidate, AcceptsBalancedSpansAndRejectsImbalance) {
  // Balanced B/E + X + instant: ok, spans counted per kind.
  obs::TraceSink good;
  const obs::NameId n = good.intern("work");
  good.begin(obs::TraceCat::kTask, obs::kPidCores, 0, n, 10);
  good.end(obs::TraceCat::kTask, obs::kPidCores, 0, n, 20);
  good.complete(obs::TraceCat::kDram, obs::kPidDram, 1, n, 5, 3);
  good.instant(obs::TraceCat::kCoh, obs::kPidCoherence, 0, n, 12);
  const obs::TraceValidation ok = obs::validate_trace_json(good.to_json());
  EXPECT_TRUE(ok.ok) << (ok.errors.empty() ? "" : ok.errors.front());
  EXPECT_EQ(ok.spans, 2u);
  EXPECT_EQ(ok.tracks, 3u);

  // Unclosed B with no declared drops: structural error.
  obs::TraceSink open_span;
  open_span.begin(obs::TraceCat::kTask, obs::kPidCores, 0, open_span.intern("w"), 10);
  const obs::TraceValidation bad = obs::validate_trace_json(open_span.to_json());
  EXPECT_FALSE(bad.ok);
  ASSERT_FALSE(bad.errors.empty());

  // E before B can never be valid, drops or not.
  const obs::TraceValidation stray = obs::validate_trace_json(
      "{\"traceEvents\":[{\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":5,"
      "\"name\":\"w\",\"cat\":\"task\"}]}");
  EXPECT_FALSE(stray.ok);

  // Malformed documents are errors, not crashes.
  EXPECT_FALSE(obs::validate_trace_json("not json").ok);
  EXPECT_FALSE(obs::validate_trace_json("{\"traceEvents\":42}").ok);
}

TEST(MachineTrace, TwoCoreJacobiTraceIsStructurallyValid) {
  obs::TraceSink sink;
  const SimStats s = run_traced("jacobi", CohMode::kRaCCD, 2, &sink);
  EXPECT_GT(s.tasks, 0u);
  EXPECT_EQ(sink.dropped_total(), 0u);
  ASSERT_FALSE(sink.events().empty());

  // Task spans must appear on both cores; each core's begin timestamps must
  // advance in simulated time (global order is not promised — service spans,
  // for one, are reconstructed at collect()).
  bool core_seen[2] = {false, false};
  std::uint64_t last_b_ts[2] = {0, 0};
  bool per_core_monotone = true;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.pid != obs::kPidCores || e.ph != 'B') continue;
    const std::uint32_t core = e.tid % 2;
    core_seen[core] = true;
    if (e.ts < last_b_ts[core]) per_core_monotone = false;
    last_b_ts[core] = e.ts;
  }
  EXPECT_TRUE(core_seen[0]);
  EXPECT_TRUE(core_seen[1]);
  EXPECT_TRUE(per_core_monotone);

  // RaCCD mode must contribute coherence events (register instants).
  std::size_t coh_events = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.cat == static_cast<std::uint8_t>(obs::TraceCat::kCoh)) ++coh_events;
  }
  EXPECT_GT(coh_events, 0u);

  const obs::TraceValidation v = obs::validate_trace_json(sink.to_json());
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
  EXPECT_GT(v.spans, 0u);
  EXPECT_GE(v.tracks, 2u);
  EXPECT_GT(v.metadata, 0u);  // track names for Perfetto
}

TEST(MachineTrace, ServiceSpansLinkByRequestId) {
  obs::TraceSink sink;
  const SimStats s = run_traced("service", CohMode::kFullCoh, 16, &sink);
  ASSERT_EQ(s.service.requests, 24u);  // tiny default

  // Every request gets its own track (tid = request id) with balanced
  // begin/end pairs for its queueing and service phases.
  std::set<std::uint32_t> request_ids;
  std::uint64_t begins = 0, ends = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.pid != obs::kPidService) continue;
    request_ids.insert(e.tid);
    if (e.ph == 'B') ++begins;
    if (e.ph == 'E') ++ends;
  }
  EXPECT_EQ(request_ids.size(), 24u);
  EXPECT_EQ(begins, ends);
  EXPECT_GE(begins, 2u * 24u);  // at least queueing + service per request

  const obs::TraceValidation v = obs::validate_trace_json(sink.to_json());
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
}

TEST(MachineTrace, AttachingASinkNeverChangesStats) {
  // The zero-overhead-when-off contract, exercised from the other side:
  // recording is pure observation, so the full bench payload — every metric
  // the emitters export — is byte-identical with and without a sink.
  for (const CohMode mode : {CohMode::kFullCoh, CohMode::kRaCCD}) {
    obs::TraceSink sink;
    const SimStats with = run_traced("jacobi", mode, 2, &sink);
    const SimStats without = run_traced("jacobi", mode, 2, nullptr);
    EXPECT_FALSE(sink.events().empty());
    EXPECT_EQ(bench_metrics_json(with), bench_metrics_json(without))
        << to_string(mode);
  }
}

TEST(SweepProfile, MergeIsDeterministicAcrossJobCounts) {
  const std::string dir = "test_obs_profile_tmp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::vector<RunSpec> specs;
  for (const CohMode mode :
       {CohMode::kFullCoh, CohMode::kPT, CohMode::kRaCCD, CohMode::kWbNC}) {
    RunSpec spec;
    spec.size = SizeClass::kTiny;
    spec.mode = mode;
    EXPECT_EQ(spec.set_workload_ref("histo"), "");
    specs.push_back(spec);
  }
  const auto bench_with_jobs = [&](unsigned jobs, const std::string& path) {
    RunOptions opts;
    opts.jobs = jobs;
    opts.use_cache = false;
    const ResultSet rs = ResultSet::run(specs, opts);
    EXPECT_EQ(rs.size(), specs.size());
    EXPECT_TRUE(rs.append_bench_json(path, /*include_profile=*/true));
    // The published profile reflects this sweep.
    const obs::SweepProfile& p = obs::last_sweep_profile();
    EXPECT_EQ(p.executed, specs.size());
    EXPECT_EQ(p.failed, 0u);
    EXPECT_EQ(p.jobs, jobs);
    EXPECT_GT(p.wall_s, 0.0);
  };
  bench_with_jobs(1, dir + "/j1.json");
  bench_with_jobs(4, dir + "/j4.json");

  // Both logs carry a profile entry; everything else is byte-identical.
  const auto slurp_without_profile = [](const std::string& path, bool* had) {
    std::ifstream in(path);
    std::ostringstream kept;
    std::string line;
    *had = false;
    while (std::getline(in, line)) {
      if (line.find("\"__profile__\"") != std::string::npos) {
        *had = true;
        continue;
      }
      kept << line << "\n";
    }
    return kept.str();
  };
  bool j1_had = false, j4_had = false;
  const std::string j1 = slurp_without_profile(dir + "/j1.json", &j1_had);
  const std::string j4 = slurp_without_profile(dir + "/j4.json", &j4_had);
  EXPECT_TRUE(j1_had);
  EXPECT_TRUE(j4_had);
  EXPECT_EQ(j1, j4);

  // The profile entry itself serializes with the documented sorted keys.
  const std::string fields = obs::last_sweep_profile().json_fields();
  EXPECT_LT(fields.find("\"cached\""), fields.find("\"executed\""));
  EXPECT_NE(fields.find("\"sim_s\""), std::string::npos);
  EXPECT_NE(fields.find("\"utilization\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace raccd
