#include "raccd/apps/registry.hpp"

#include <algorithm>
#include <numeric>

#include "raccd/common/format.hpp"

namespace raccd {
namespace {

/// Levenshtein distance, two-row rolling array — the registry holds a few
/// dozen short names, so the quadratic cost is irrelevant.
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  std::iota(prev.begin(), prev.end(), std::size_t{0});
  for (std::size_t i = 0; i < a.size(); ++i) {
    cur[0] = i + 1;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::size_t subst = prev[j] + (a[i] == b[j] ? 0 : 1);
      cur[j + 1] = std::min({prev[j + 1] + 1, cur[j] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

bool WorkloadRegistry::add(WorkloadInfo info) {
  if (info.name.empty() || info.factory == nullptr) return false;
  const auto it = std::lower_bound(
      workloads_.begin(), workloads_.end(), info.name,
      [](const WorkloadInfo& w, const std::string& n) { return w.name < n; });
  if (it != workloads_.end() && it->name == info.name) return false;
  workloads_.insert(it, std::move(info));
  return true;
}

const WorkloadInfo* WorkloadRegistry::find(std::string_view name) const {
  const auto it = std::lower_bound(
      workloads_.begin(), workloads_.end(), name,
      [](const WorkloadInfo& w, std::string_view n) { return w.name < n; });
  if (it != workloads_.end() && it->name == name) return &*it;
  return nullptr;
}

std::vector<std::string> WorkloadRegistry::names(std::string_view family) const {
  std::vector<std::string> out;
  for (const WorkloadInfo& w : workloads_) {
    if (family.empty() || w.family == family) out.push_back(w.name);
  }
  return out;
}

std::vector<std::string> WorkloadRegistry::families() const {
  std::vector<std::string> out;
  for (const WorkloadInfo& w : workloads_) {
    if (std::find(out.begin(), out.end(), w.family) == out.end()) {
      out.push_back(w.family);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string WorkloadRegistry::unknown_name_message(std::string_view name) const {
  std::string known;
  const WorkloadInfo* nearest = nullptr;
  std::size_t nearest_d = ~std::size_t{0};
  for (const WorkloadInfo& w : workloads_) {
    if (!known.empty()) known += ", ";
    known += w.name;
    const std::size_t d = edit_distance(name, w.name);
    if (d < nearest_d) {
      nearest_d = d;
      nearest = &w;
    }
  }
  std::string msg = strprintf("unknown workload '%.*s'",
                              static_cast<int>(name.size()), name.data());
  // Only suggest plausible typos: within 3 edits or half the typed length.
  if (nearest != nullptr &&
      nearest_d <= std::max<std::size_t>(3, name.size() / 2)) {
    msg += strprintf(" — did you mean '%s'?", nearest->name.c_str());
  }
  msg += strprintf(" (registered: %s)", known.empty() ? "none" : known.c_str());
  return msg;
}

WorkloadParams WorkloadRegistry::supported_params(std::string_view name,
                                                  const WorkloadParams& params) const {
  const WorkloadInfo* w = find(name);
  if (w == nullptr) return params;
  WorkloadParams out;
  for (const auto& e : params.entries()) {
    if (w->schema.find(e.key) != nullptr) out.set(e.key, e.value);
  }
  return out;
}

std::unique_ptr<App> WorkloadRegistry::create(std::string_view name,
                                              const AppConfig& cfg,
                                              std::string* error) const {
  const WorkloadInfo* w = find(name);
  if (w == nullptr) {
    if (error != nullptr) *error = unknown_name_message(name);
    return nullptr;
  }
  const std::string verr = w->schema.validate(cfg.params);
  if (!verr.empty()) {
    if (error != nullptr) {
      *error = strprintf("workload '%s': %s", w->name.c_str(), verr.c_str());
    }
    return nullptr;
  }
  return w->factory(cfg);
}

std::string parse_workload_ref(std::string_view ref, std::string& name,
                               WorkloadParams& params) {
  const std::size_t colon = ref.find(':');
  name = std::string(ref.substr(0, colon));
  if (name.empty()) return "empty workload name";
  if (colon == std::string_view::npos) return {};
  return WorkloadParams::parse(ref.substr(colon + 1), params);
}

std::string format_workload_ref(std::string_view name, const WorkloadParams& params) {
  std::string out(name);
  if (!params.empty()) {
    out += ':';
    out += params.canonical();
  }
  return out;
}

}  // namespace raccd
