#include <gtest/gtest.h>

#include <set>

#include "raccd/mem/page_table.hpp"
#include "raccd/mem/phys_memory.hpp"
#include "raccd/mem/sim_memory.hpp"

namespace raccd {
namespace {

TEST(PhysMemory, ContiguousAllocation) {
  PhysMemory pm(16, AllocPolicy::kContiguous);
  for (PageNum i = 0; i < 16; ++i) {
    EXPECT_EQ(pm.alloc_frame(), i);
  }
  EXPECT_EQ(pm.frames_allocated(), 16u);
}

TEST(PhysMemory, FragmentedIsAPermutation) {
  PhysMemory pm(64, AllocPolicy::kFragmented, 9);
  std::set<PageNum> seen;
  bool out_of_order = false;
  PageNum prev = 0;
  for (PageNum i = 0; i < 64; ++i) {
    const PageNum f = pm.alloc_frame();
    EXPECT_LT(f, 64u);
    EXPECT_TRUE(seen.insert(f).second) << "frame handed out twice";
    if (i > 0 && f != prev + 1) out_of_order = true;
    prev = f;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(PhysMemory, FragmentedDeterministicPerSeed) {
  PhysMemory a(32, AllocPolicy::kFragmented, 5);
  PhysMemory b(32, AllocPolicy::kFragmented, 5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.alloc_frame(), b.alloc_frame());
}

TEST(PageTable, MapAndTranslate) {
  PageTable pt;
  EXPECT_FALSE(pt.mapped(3));
  pt.map(3, 7);
  EXPECT_TRUE(pt.mapped(3));
  EXPECT_EQ(pt.frame_of(3), 7u);
  EXPECT_EQ(pt.translate((3ull << kPageShift) | 0x123), (7ull << kPageShift) | 0x123);
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(SimMemory, AllocAlignmentAndZeroInit) {
  SimMemory mem(1024, AllocPolicy::kContiguous);
  const VAddr a = mem.alloc(100, 64, "a");
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(mem.read<std::uint64_t>(a), 0u);
  const VAddr b = mem.alloc(8, 256, "b");
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(mem.allocations().size(), 2u);
  EXPECT_EQ(mem.allocations()[0].label, "a");
}

TEST(SimMemory, ReadWriteRoundTrip) {
  SimMemory mem(1024, AllocPolicy::kContiguous);
  const VAddr a = mem.alloc_array<double>(1000, "d");
  for (int i = 0; i < 1000; ++i) {
    mem.write<double>(a + i * 8, i * 1.5);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(mem.read<double>(a + i * 8), i * 1.5);
  }
}

TEST(SimMemory, CrossChunkCopy) {
  // Chunks are 1 MB; allocate past the boundary and copy across it.
  SimMemory mem(4096, AllocPolicy::kContiguous);
  const VAddr a = mem.alloc(3 * 1024 * 1024, 64, "big");
  std::vector<std::uint8_t> src(2 * 1024 * 1024);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::uint8_t>(i * 31);
  const VAddr mid = a + 512 * 1024;  // straddles the 1MB chunk boundary
  mem.copy_in(mid, src.data(), src.size());
  std::vector<std::uint8_t> dst(src.size());
  mem.copy_out(mid, dst.data(), dst.size());
  EXPECT_EQ(src, dst);
}

TEST(SimMemory, PagesMappedEagerly) {
  SimMemory mem(1024, AllocPolicy::kContiguous);
  const VAddr a = mem.alloc(10 * kPageBytes, 64, "p");
  for (PageNum vp = page_of(a); vp <= page_of(a + 10 * kPageBytes - 1); ++vp) {
    EXPECT_TRUE(mem.page_table().mapped(vp));
  }
  // Contiguous policy => contiguous frames => translate is affine.
  const PAddr p0 = mem.translate(a);
  EXPECT_EQ(mem.translate(a + 2 * kPageBytes + 5), p0 + 2 * kPageBytes + 5);
}

TEST(SimMemory, FragmentedBreaksContiguity) {
  SimMemory mem(4096, AllocPolicy::kFragmented, 77);
  const VAddr a = mem.alloc(32 * kPageBytes, kPageBytes, "p");
  bool contiguous = true;
  for (unsigned i = 1; i < 32; ++i) {
    if (mem.translate(a + i * kPageBytes) !=
        mem.translate(a + (i - 1) * kPageBytes) + kPageBytes) {
      contiguous = false;
    }
  }
  EXPECT_FALSE(contiguous);
}

}  // namespace
}  // namespace raccd
