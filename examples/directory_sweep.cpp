// Sweep the directory size for one workload across the three paper systems
// and print how execution time, LLC hit rate and directory pressure react —
// a single-workload view of the paper's Fig. 6/7 experiment.
//
// Usage: directory_sweep [workload[:k=v,...]] (default jacobi; any
// registered workload — see `simulate --list`)
#include <cstdio>
#include <string>

#include "raccd/common/format.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/harness/table.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const std::string ref = argc > 1 ? argv[1] : "jacobi";

  const std::vector<RunSpec> specs = Grid()
                                         .workload(ref)
                                         .size(SizeClass::kSmall)
                                         .modes(kAllModes)
                                         .dir_ratios(kDirRatios)
                                         .specs();
  std::printf("sweeping %zu configurations of '%s' (this runs and verifies each)...\n",
              specs.size(), ref.c_str());
  const ResultSet rs = ResultSet::run(specs);

  const Cycle base = rs.at(ref, CohMode::kFullCoh, 1).cycles;
  TextTable table({"system", "dir", "norm.cycles", "LLC hit%", "dir accesses",
                   "NoC flit-hops", "dir energy (nJ)"});
  for (const CohMode mode : kAllModes) {
    if (mode != CohMode::kFullCoh) table.add_separator();
    for (const std::uint32_t ratio : kDirRatios) {
      const SimStats& s = rs.at(ref, mode, ratio);
      table.add_row({to_string(mode), strprintf("1:%u", ratio),
                     strprintf("%.3f", static_cast<double>(s.cycles) /
                                           static_cast<double>(base)),
                     strprintf("%.1f", 100.0 * s.llc_hit_ratio()),
                     format_count(s.fabric.dir_accesses),
                     format_count(s.noc.total_flit_hops()),
                     strprintf("%.1f", s.dir_dyn_energy_pj / 1e3)});
    }
  }
  table.print();
  return 0;
}
