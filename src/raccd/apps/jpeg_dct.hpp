// 8x8 DCT-II / DCT-III pair and JPEG quantization tables, shared by the
// synthetic encoder (host-side initialization) and the simulated decoder
// tasks plus the verification reference.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace raccd::apps {

/// Standard JPEG luminance quantization table (Annex K), row-major.
inline constexpr std::array<std::uint8_t, 64> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

/// Standard JPEG chrominance quantization table (Annex K).
inline constexpr std::array<std::uint8_t, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

namespace dct_detail {
/// C[u][x] = c(u) * cos((2x+1) u pi / 16) with c(0)=sqrt(1/8), c(u>0)=1/2.
inline const std::array<std::array<float, 8>, 8>& basis() {
  static const auto kBasis = [] {
    std::array<std::array<float, 8>, 8> b{};
    for (int u = 0; u < 8; ++u) {
      const double cu = u == 0 ? std::sqrt(1.0 / 8.0) : 0.5;
      for (int x = 0; x < 8; ++x) {
        b[u][x] = static_cast<float>(cu * std::cos((2 * x + 1) * u * M_PI / 16.0));
      }
    }
    return b;
  }();
  return kBasis;
}
}  // namespace dct_detail

/// Forward 8x8 DCT-II of pixel block (values centred on 0), row-major.
inline void fdct8x8(const float in[64], float out[64]) noexcept {
  const auto& c = dct_detail::basis();
  float tmp[64];
  for (int u = 0; u < 8; ++u) {  // rows
    for (int x = 0; x < 8; ++x) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += c[u][k] * in[k * 8 + x];
      tmp[u * 8 + x] = acc;
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += c[v][k] * tmp[u * 8 + k];
      out[u * 8 + v] = acc;
    }
  }
}

/// Inverse 8x8 DCT (DCT-III), row-major.
inline void idct8x8(const float in[64], float out[64]) noexcept {
  const auto& c = dct_detail::basis();
  float tmp[64];
  for (int x = 0; x < 8; ++x) {  // columns of the row pass
    for (int v = 0; v < 8; ++v) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += c[k][x] * in[k * 8 + v];
      tmp[x * 8 + v] = acc;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += c[k][y] * tmp[x * 8 + k];
      out[x * 8 + y] = acc;
    }
  }
}

[[nodiscard]] inline std::uint8_t clamp_u8(float v) noexcept {
  return v <= 0.0f ? 0 : (v >= 255.0f ? 255 : static_cast<std::uint8_t>(v + 0.5f));
}

/// BT.601 full-range YCbCr -> RGB.
inline void yuv_to_rgb(float y, float cb, float cr, std::uint8_t rgb[3]) noexcept {
  rgb[0] = clamp_u8(y + 1.402f * (cr - 128.0f));
  rgb[1] = clamp_u8(y - 0.344136f * (cb - 128.0f) - 0.714136f * (cr - 128.0f));
  rgb[2] = clamp_u8(y + 1.772f * (cb - 128.0f));
}

}  // namespace raccd::apps
