// Host throughput benchmark: how many *simulated* cycles (and replayed
// accesses) the simulator retires per wall-clock second, per workload x
// coherence mode x topology x DRAM model.
//
// This measures the simulator itself, not the modelled machine — the number
// every other bench binary's turnaround time depends on. Runs merge into the
// cumulative results/BENCH_throughput.json keyed by RunSpec::key() (same
// line-per-entry merge format as BENCH_grid.json).
//
// --compare-legacy additionally re-runs every config with the pre-flat
// structures (RACCD_LEGACY_STRUCTURES path: unordered_map memory-version map
// and TLB index, AoS tag probes, unmemoized NCRT scans), asserts the two
// paths produce bit-identical SimStats, and exits non-zero if the optimized
// structures are ever >25% *slower* than the legacy ones — the CI
// throughput-smoke regression gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "raccd/common/format.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/sweep_cache.hpp"

namespace raccd {
namespace {

constexpr const char* kThroughputJsonPath = "results/BENCH_throughput.json";

struct Measurement {
  SimStats stats;
  double best_wall_s = 0.0;

  [[nodiscard]] double sim_cycles_per_sec() const {
    return best_wall_s > 0.0 ? static_cast<double>(stats.cycles) / best_wall_s : 0.0;
  }
  [[nodiscard]] double accesses_per_sec() const {
    return best_wall_s > 0.0 ? static_cast<double>(stats.accesses_replayed) / best_wall_s
                             : 0.0;
  }
};

/// Best-of-`reps` wall-clock timing of one uncached simulation.
[[nodiscard]] Measurement measure(const RunSpec& spec, unsigned reps) {
  Measurement m;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    SimStats stats = run_one(spec);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (r == 0 || wall < m.best_wall_s) m.best_wall_s = wall;
    m.stats = stats;  // deterministic: identical every rep
  }
  return m;
}

[[nodiscard]] bool write_file_atomic(const std::string& path, const std::string& text) {
  if (const auto dir = std::filesystem::path(path).parent_path(); !dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  const std::string tmp = strprintf(
      "%s.tmp.%llu", path.c_str(),
      static_cast<unsigned long long>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

/// Merge measurements into the cumulative log (same one-entry-per-line JSON
/// object format as ResultSet::append_bench_json; other keys are preserved).
[[nodiscard]] bool merge_json(const std::vector<std::pair<std::string, std::string>>& add) {
  std::map<std::string, std::string> entries;
  if (std::ifstream in(kThroughputJsonPath); in) {
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t kq0 = line.find('"');
      if (kq0 == std::string::npos) continue;
      const std::size_t kq1 = line.find('"', kq0 + 1);
      const std::size_t brace0 = line.find('{', kq1);
      const std::size_t brace1 = line.rfind('}');
      if (kq1 == std::string::npos || brace0 == std::string::npos ||
          brace1 == std::string::npos || brace1 <= brace0) {
        continue;
      }
      entries[line.substr(kq0 + 1, kq1 - kq0 - 1)] =
          line.substr(brace0, brace1 - brace0 + 1);
    }
  }
  for (const auto& [key, payload] : add) entries[key] = payload;
  std::string text = "{\n";
  std::size_t n = 0;
  for (const auto& [key, payload] : entries) {
    text += strprintf("  \"%s\": %s%s\n", key.c_str(), payload.c_str(),
                      ++n < entries.size() ? "," : "");
  }
  text += "}\n";
  return write_file_atomic(kThroughputJsonPath, text);
}

int run(int argc, char** argv) {
  BenchOptions opts = BenchOptions::parse(argc, argv);
  unsigned reps = 3;
  bool compare_legacy = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::max(1u, static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10)));
    } else if (std::strcmp(argv[i], "--compare-legacy") == 0) {
      compare_legacy = true;
    }
  }
  // The A/B comparison toggles the process-global RACCD_LEGACY_STRUCTURES
  // flag around each measurement — concurrent workers would race on it and
  // measure a mix of both structure sets. Reject the combination up front
  // rather than producing silently corrupt timings.
  if (compare_legacy && opts.run.jobs > 1) {
    std::fprintf(stderr,
                 "throughput: --compare-legacy requires --jobs=1 (it toggles the "
                 "process-global legacy-structures flag per measurement)\n");
    return 2;
  }

  // The throughput grid: the two replay-heaviest workloads (jacobi streams,
  // synthetic with a footprint that overflows the scaled 2 MB LLC), the two
  // systems whose hot paths differ most (FullCoh exercises the directory,
  // RaCCD the NCRT), both machine shapes and both memory models.
  struct Config {
    const char* workload;
    CohMode mode;
    const char* topo;
    const char* dram;
  };
  std::vector<Config> grid;
  for (const char* w : {"jacobi", "synthetic:footprint_kb=4096"}) {
    for (const CohMode m : {CohMode::kFullCoh, CohMode::kRaCCD}) {
      for (const char* t : {"flat", "numa2"}) {
        for (const char* d : {"simple", "ddr"}) {
          grid.push_back(Config{w, m, t, d});
        }
      }
    }
  }

  std::vector<std::pair<std::string, std::string>> json;
  const bool initial_legacy = legacy_structures();
  bool stats_mismatch = false;
  bool perf_regression = false;
  std::printf("%-34s %-7s %-6s %-6s %14s %14s%s\n", "workload", "mode", "topo", "dram",
              "Mcycles/s", "Macc/s", compare_legacy ? "   vs legacy" : "");
  for (std::size_t slot = 0; slot < grid.size(); ++slot) {
    if (slot % opts.run.shard_count != opts.run.shard_index) continue;
    const Config& c = grid[slot];
    RunSpec spec;
    if (const std::string err = spec.set_workload_ref(c.workload); !err.empty()) {
      std::fprintf(stderr, "workload %s: %s\n", c.workload, err.c_str());
      return 2;
    }
    if (!opts.params.entries().empty()) {
      WorkloadParams p;
      (void)WorkloadParams::parse(spec.params, p);
      for (const auto& e : opts.params.entries()) p.set(e.key, e.value);
      spec.params = p.canonical();
    }
    spec.size = opts.size;
    spec.mode = c.mode;
    spec.topo = c.topo;
    spec.dram = c.dram;
    spec.paper_machine = opts.paper_machine;

    set_legacy_structures(false);
    const Measurement opt = measure(spec, reps);
    double ratio = 0.0;
    if (compare_legacy) {
      set_legacy_structures(true);
      const Measurement leg = measure(spec, reps);
      set_legacy_structures(initial_legacy);
      if (stats_to_text(opt.stats) != stats_to_text(leg.stats)) {
        std::fprintf(stderr, "FAIL: stats differ between structures for %s\n",
                     spec.key().c_str());
        stats_mismatch = true;
      }
      ratio = opt.best_wall_s > 0.0 ? leg.best_wall_s / opt.best_wall_s : 0.0;
      // Regression gate: the flat structures must never cost more than 1/0.75
      // of the legacy wall time (>25% throughput loss).
      if (ratio < 0.75) perf_regression = true;
    } else {
      set_legacy_structures(initial_legacy);
    }

    std::printf("%-34s %-7s %-6s %-6s %14.2f %14.2f", c.workload, to_string(c.mode),
                c.topo, c.dram, opt.sim_cycles_per_sec() / 1e6,
                opt.accesses_per_sec() / 1e6);
    if (compare_legacy) std::printf("   %5.2fx", ratio);
    std::printf("\n");
    std::fflush(stdout);

    std::string payload = strprintf(
        "{\"sim_cycles_per_sec\": %.0f, \"accesses_per_sec\": %.0f, "
        "\"cycles\": %llu, \"accesses\": %llu, \"wall_s\": %.6f, \"reps\": %u",
        opt.sim_cycles_per_sec(), opt.accesses_per_sec(),
        static_cast<unsigned long long>(opt.stats.cycles),
        static_cast<unsigned long long>(opt.stats.accesses_replayed), opt.best_wall_s,
        reps);
    if (compare_legacy) payload += strprintf(", \"speedup_vs_legacy\": %.3f", ratio);
    payload += "}";
    std::string key = spec.key();
    for (char& ch : key) {
      if (ch == '"' || ch == '\\') ch = '_';
    }
    json.emplace_back(std::move(key), std::move(payload));
  }

  if (!merge_json(json)) {
    std::fprintf(stderr, "warning: could not update %s\n", kThroughputJsonPath);
  } else {
    std::printf("(merged %zu entries into %s)\n", json.size(), kThroughputJsonPath);
  }
  if (stats_mismatch) {
    std::fprintf(stderr, "throughput: FAIL (optimized structures change stats)\n");
    return 1;
  }
  if (perf_regression) {
    std::fprintf(stderr,
                 "throughput: FAIL (flat structures >25%% slower than legacy)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace raccd

int main(int argc, char** argv) { return raccd::run(argc, argv); }
