// Property-based tests: randomized task graphs with random byte-range
// dependences run under every coherence mode and several directory sizes;
// the value-version checker asserts every load sees the latest store, and
// the structural scan asserts the protocol invariants afterwards.
#include <gtest/gtest.h>

#include "raccd/coherence/checker.hpp"
#include "raccd/common/rng.hpp"
#include "raccd/sim/machine.hpp"

namespace raccd {
namespace {

struct PropCase {
  CohMode mode;
  std::uint32_t dir_ratio;
  bool adr;
  std::uint64_t seed;
};

std::string prop_name(const ::testing::TestParamInfo<PropCase>& info) {
  return std::string(to_string(info.param.mode)) + "_d" +
         std::to_string(info.param.dir_ratio) + (info.param.adr ? "_adr" : "") + "_s" +
         std::to_string(info.param.seed);
}

/// Random DAG workload: regions of random (line-aligned) sizes, tasks that
/// read some regions and read-modify-write others, with a mix of annotated
/// and unannotated (JPEG-style, but then exclusively-owned) accesses.
void run_random_workload(Machine& m, std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::uint32_t kRegions = 24;
  constexpr std::uint32_t kTasks = 120;
  std::vector<VAddr> region(kRegions);
  std::vector<std::uint32_t> region_bytes(kRegions);
  for (std::uint32_t r = 0; r < kRegions; ++r) {
    region_bytes[r] = static_cast<std::uint32_t>((1 + rng.next_below(32)) * kLineBytes);
    region[r] = m.mem().alloc(region_bytes[r], kLineBytes, "prop");
  }
  std::uint32_t spawned = 0;
  while (spawned < kTasks) {
    const std::uint32_t group = 1 + static_cast<std::uint32_t>(rng.next_below(40));
    for (std::uint32_t g = 0; g < group && spawned < kTasks; ++g, ++spawned) {
      TaskDesc t;
      // Pick 1..3 distinct regions; first is inout, the rest in.
      const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      std::vector<std::uint32_t> picks;
      while (picks.size() < n) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(kRegions));
        if (std::find(picks.begin(), picks.end(), r) == picks.end()) picks.push_back(r);
      }
      for (std::size_t i = 0; i < picks.size(); ++i) {
        t.deps.push_back(DepSpec{region[picks[i]], region_bytes[picks[i]],
                                 i == 0 ? DepKind::kInout : DepKind::kIn});
      }
      const std::uint32_t stride = 4u << rng.next_below(3);  // 4, 8 or 16 bytes
      const VAddr w = region[picks[0]];
      const std::uint32_t wbytes = region_bytes[picks[0]];
      std::vector<std::pair<VAddr, std::uint32_t>> reads;
      for (std::size_t i = 1; i < picks.size(); ++i) {
        reads.emplace_back(region[picks[i]], region_bytes[picks[i]]);
      }
      t.body = [w, wbytes, reads, stride](TaskContext& ctx) {
        std::uint32_t acc = 0;
        for (const auto& [base, bytes] : reads) {
          for (std::uint32_t off = 0; off + 4 <= bytes; off += 64) {
            acc += ctx.load<std::uint32_t>(base + off);
          }
        }
        for (std::uint32_t off = 0; off + 4 <= wbytes; off += stride) {
          const std::uint32_t v = ctx.load<std::uint32_t>(w + off);
          ctx.compute(1);
          ctx.store<std::uint32_t>(w + off, v + acc + 1);
        }
      };
      m.spawn(std::move(t));
    }
    if (rng.next_bool(0.3)) m.taskwait();
  }
  m.taskwait();
}

class PropertyTest : public ::testing::TestWithParam<PropCase> {};

TEST_P(PropertyTest, NoStaleLoadsNoInvariantViolations) {
  const PropCase& pc = GetParam();
  SimConfig cfg = SimConfig::scaled(pc.mode);
  cfg.set_dir_ratio(pc.dir_ratio);
  cfg.adr.enabled = pc.adr;
  cfg.enable_checker = true;
  cfg.seed = pc.seed;
  Machine m(cfg);
  run_random_workload(m, pc.seed);
  ASSERT_NE(m.checker(), nullptr);
  EXPECT_EQ(m.checker()->violations(), 0u);
  EXPECT_GT(m.checker()->loads_checked(), 0u);
  const auto violations = CoherenceChecker::scan(m.fabric());
  for (const auto& v : violations) ADD_FAILURE() << v;
  const SimStats s = m.collect();
  EXPECT_EQ(s.tasks, 120u);
}

std::vector<PropCase> prop_cases() {
  std::vector<PropCase> cases;
  for (const CohMode mode : kAllModes) {
    for (const std::uint32_t ratio : {1u, 8u, 256u}) {
      cases.push_back(PropCase{mode, ratio, false, 11});
      cases.push_back(PropCase{mode, ratio, false, 77});
    }
  }
  // ADR on top of each mode at full size.
  for (const CohMode mode : kAllModes) {
    cases.push_back(PropCase{mode, 1, true, 42});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PropertyTest, ::testing::ValuesIn(prop_cases()),
                         prop_name);

}  // namespace
}  // namespace raccd
