#include "raccd/harness/experiment.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "raccd/apps/registry.hpp"
#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/exec/sweep_executor.hpp"
#include "raccd/harness/sweep_cache.hpp"  // kStatsFormatVersion in RunSpec::key()

namespace raccd {
namespace {

/// A `file` workload param names external content the spec identity must
/// reflect: hash the bytes so re-recording a trace to the same path cannot
/// reuse a stale cache entry. Unreadable files hash to a fixed marker.
/// Memoized per path for the life of the process — key() sits on the
/// executor's hot path and sweeps call it several times per spec.
[[nodiscard]] std::string file_param_fingerprint(const std::string& params) {
  WorkloadParams p;
  if (!WorkloadParams::parse(params, p).empty()) return {};
  const std::string* path = p.raw("file");
  if (path == nullptr || path->empty()) return {};

  static std::mutex memo_mutex;
  static std::unordered_map<std::string, std::string> memo;
  {
    const std::lock_guard<std::mutex> lock(memo_mutex);
    if (const auto it = memo.find(*path); it != memo.end()) return it->second;
  }
  std::string fp = "-fh0";
  if (std::FILE* f = std::fopen(path->c_str(), "rb"); f != nullptr) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    unsigned char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      for (std::size_t i = 0; i < n; ++i) h = (h ^ buf[i]) * 0x100000001b3ULL;
    }
    std::fclose(f);
    fp = strprintf("-fh%016llx", static_cast<unsigned long long>(h));
  }
  const std::lock_guard<std::mutex> lock(memo_mutex);
  memo.emplace(*path, fp);
  return fp;
}

}  // namespace

std::string RunSpec::workload_ref() const {
  return params.empty() ? app : app + ":" + params;
}

std::string RunSpec::set_workload_ref(std::string_view ref) {
  WorkloadParams p;
  const std::string err = parse_workload_ref(ref, app, p);
  if (err.empty()) params = p.canonical();
  return err;
}

std::string RunSpec::key() const {
  std::string k =
      strprintf("%s-%s-%s-d%u%s%s-s%llu-nl%u-ne%u-%s-%s-v%u", app.c_str(),
                to_string(size), to_string(mode), dir_ratio, adr ? "-adr" : "",
                paper_machine ? "-paperm" : "", static_cast<unsigned long long>(seed),
                static_cast<unsigned>(ncrt_latency), ncrt_entries, to_string(alloc),
                to_string(sched), kStatsFormatVersion);
  // Only non-default extensions append, so legacy cache keys stay valid.
  if (adr_theta_inc != 0.80 || adr_theta_dec != 0.20) {
    k += strprintf("-ti%g-td%g", adr_theta_inc, adr_theta_dec);
  }
  if (topo != "flat") k += strprintf("-t%s", topo.c_str());
  if (dram != "simple") k += strprintf("-dram=%s", dram.c_str());
  if (!sampling.empty()) {
    // Canonicalize through the parser so "10/1" and "10/1/1" share one key.
    SamplingConfig sc;
    if (parse_sampling(sampling, sc).empty()) {
      k += strprintf("-smp%u-%u-%u", sc.period, sc.window, sc.warmup);
    } else {
      k += strprintf("-smp{%s}", sampling.c_str());  // config_for will reject it
    }
  }
  if (!params.empty()) {
    k += strprintf("-p{%s}", params.c_str());
    k += file_param_fingerprint(params);
  }
  return k;
}

SimConfig config_for(const RunSpec& spec) {
  SimConfig cfg =
      spec.paper_machine ? SimConfig::paper(spec.mode) : SimConfig::scaled(spec.mode);
  if (const std::string err = cfg.apply_topology(spec.topo); !err.empty()) {
    std::fprintf(stderr, "topology '%s': %s\n", spec.topo.c_str(), err.c_str());
    RACCD_ASSERT(false, "malformed topology token");
  }
  if (const std::string err = cfg.apply_dram(spec.dram); !err.empty()) {
    std::fprintf(stderr, "dram '%s': %s\n", spec.dram.c_str(), err.c_str());
    RACCD_ASSERT(false, "malformed DRAM token");
  }
  if (!spec.sampling.empty()) {
    if (const std::string err = cfg.apply_sampling(spec.sampling); !err.empty()) {
      std::fprintf(stderr, "sampling '%s': %s\n", spec.sampling.c_str(), err.c_str());
      RACCD_ASSERT(false, "malformed sampling token");
    }
  }
  cfg.set_dir_ratio(spec.dir_ratio);
  cfg.adr.enabled = spec.adr;
  cfg.adr.theta_inc = spec.adr_theta_inc;
  cfg.adr.theta_dec = spec.adr_theta_dec;
  cfg.timing.ncrt_lookup_cycles = spec.ncrt_latency;
  cfg.raccd.ncrt_entries = spec.ncrt_entries;
  cfg.alloc_policy = spec.alloc;
  cfg.sched = spec.sched;
  cfg.seed = spec.seed;
  cfg.series.interval = spec.series_interval;
  cfg.series.metrics = spec.series_metrics;
  return cfg;
}

std::optional<SimStats> run_one_checked(
    const RunSpec& spec, Series* series_out, std::string* error,
    const std::function<void(SimPhase, std::uint64_t)>& phase_hook,
    const std::function<void(std::uint64_t)>& release_hook,
    obs::RunProfile* profile) {
  obs::ScopeTimer timer;
  Machine machine(config_for(spec));
  if (phase_hook) machine.set_phase_hook(phase_hook);
  if (release_hook) machine.set_release_hook(release_hook);
  AppConfig acfg;
  acfg.size = spec.size;
  acfg.seed = spec.seed;
  std::string err = WorkloadParams::parse(spec.params, acfg.params);
  std::unique_ptr<App> app;
  if (err.empty()) {
    // Sampled simulation fast-forwards task timing, which would silently
    // corrupt the per-request latency distributions open-loop service runs
    // exist to measure — reject the combination instead of mis-measuring.
    const WorkloadInfo* info = WorkloadRegistry::instance().find(spec.app);
    if (info != nullptr && info->family == "service" && !spec.sampling.empty()) {
      if (error != nullptr) {
        *error = "cannot run: sampled simulation is incompatible with open-loop "
                 "service workloads (per-request latency needs detailed timing)";
      }
      return std::nullopt;
    }
    app = WorkloadRegistry::instance().create(spec.app, acfg, &err);
  }
  if (app == nullptr) {
    if (error != nullptr) *error = "cannot run: " + err;
    return std::nullopt;
  }
  if (profile != nullptr) {
    profile->setup_s = timer.seconds();
    timer.reset();
  }
  app->run(machine);
  err = app->verify(machine);
  if (!err.empty()) {
    if (error != nullptr) *error = "verification failed: " + err;
    return std::nullopt;
  }
  SimStats stats = machine.collect();
  if (series_out != nullptr && machine.series() != nullptr) {
    *series_out = *machine.series();
  }
  if (profile != nullptr) profile->sim_s = timer.seconds();
  return stats;
}

SimStats run_one(const RunSpec& spec, Series* series_out) {
  std::string err;
  const std::optional<SimStats> stats = run_one_checked(spec, series_out, &err);
  if (!stats.has_value()) {
    std::fprintf(stderr, "%s: %s\n", spec.key().c_str(), err.c_str());
    RACCD_ASSERT(false, "run_one failed (unknown workload, bad params, or "
                        "verification mismatch)");
  }
  return *stats;
}

std::vector<SimStats> run_all(const std::vector<RunSpec>& specs, const RunOptions& opts,
                              std::vector<Series>* series_out) {
  SweepExecutor executor(opts);
  std::vector<SimStats> results = executor.run(specs, series_out);
  if (!executor.failures().empty()) {
    // The executor already drained in-flight work and cached every completed
    // run; all that is left is to fail loudly with the spec identities.
    std::fprintf(stderr, "run_all: %zu spec(s) failed:\n", executor.failures().size());
    for (const SweepFailure& f : executor.failures()) {
      std::fprintf(stderr, "  %s\n    %s\n", f.key.c_str(), f.error.c_str());
    }
    RACCD_ASSERT(false, "sweep aborted: at least one spec failed (keys above)");
  }
  return results;
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  const auto apply_size = [&o](const char* v) {
    if (std::strcmp(v, "tiny") == 0) o.size = SizeClass::kTiny;
    if (std::strcmp(v, "small") == 0) o.size = SizeClass::kSmall;
    if (std::strcmp(v, "medium") == 0) o.size = SizeClass::kMedium;
    if (std::strcmp(v, "paper") == 0) o.size = SizeClass::kPaper;
    if (std::strcmp(v, "large") == 0) o.size = SizeClass::kLarge;
  };
  if (const char* env = std::getenv("RACCD_SIZE")) apply_size(env);
  if (std::getenv("RACCD_PAPER") != nullptr) o.paper_machine = true;
  if (std::getenv("RACCD_NO_CACHE") != nullptr) o.run.use_cache = false;
  // RACCD_THREADS is the legacy spelling of RACCD_JOBS; RACCD_JOBS wins.
  if (const char* env = std::getenv("RACCD_THREADS")) {
    o.run.jobs = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("RACCD_JOBS")) {
    o.run.jobs = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  const auto apply_shard = [&o](const char* text) {
    char* end = nullptr;
    const unsigned long idx = std::strtoul(text, &end, 10);
    unsigned long cnt = 0;
    if (end != nullptr && *end == '/') cnt = std::strtoul(end + 1, nullptr, 10);
    if (cnt == 0 || idx >= cnt) {
      std::fprintf(stderr, "--shard %s: expected i/N with i < N\n", text);
      std::exit(2);
    }
    o.run.shard_index = static_cast<unsigned>(idx);
    o.run.shard_count = static_cast<unsigned>(cnt);
  };
  if (const char* env = std::getenv("RACCD_SHARD")) apply_shard(env);
  const auto apply_set = [&o](const char* text) {
    WorkloadParams p;
    const std::string err = WorkloadParams::parse(text, p);
    if (!err.empty()) {
      // Running a whole sweep with silently-dropped overrides would be far
      // worse than refusing to start.
      std::fprintf(stderr, "--set %s: %s\n", text, err.c_str());
      std::exit(2);
    }
    for (const auto& e : p.entries()) o.params.set(e.key, e.value);
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--size=", 7) == 0) apply_size(a + 7);
    else if (std::strncmp(a, "--topology=", 11) == 0) o.topo = a + 11;
    else if (std::strncmp(a, "--dram=", 7) == 0) o.dram = a + 7;
    else if (std::strncmp(a, "--sample=", 9) == 0) o.sampling = a + 9;
    else if (std::strcmp(a, "--paper") == 0) o.paper_machine = true;
    else if (std::strcmp(a, "--no-cache") == 0) o.run.use_cache = false;
    else if (std::strcmp(a, "--verbose") == 0) o.run.verbose = true;
    else if (std::strncmp(a, "--jobs=", 7) == 0) {
      o.run.jobs = static_cast<unsigned>(std::strtoul(a + 7, nullptr, 10));
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      o.run.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(a, "-j", 2) == 0 && a[2] >= '0' && a[2] <= '9') {
      o.run.jobs = static_cast<unsigned>(std::strtoul(a + 2, nullptr, 10));
    } else if (std::strncmp(a, "--threads=", 10) == 0) {  // legacy alias
      o.run.jobs = static_cast<unsigned>(std::strtoul(a + 10, nullptr, 10));
    } else if (std::strncmp(a, "--shard=", 8) == 0) {
      apply_shard(a + 8);
    } else if (std::strncmp(a, "--set=", 6) == 0) {
      apply_set(a + 6);
    } else if (std::strcmp(a, "--set") == 0 && i + 1 < argc) {
      apply_set(argv[++i]);
    }
  }
  return o;
}

}  // namespace raccd
