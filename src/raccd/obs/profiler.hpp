// Host-side (wall-clock) profiling for sweeps: lightweight scope timers fill
// a per-run setup/sim breakdown, the SweepExecutor aggregates them with
// per-worker busy time and steal telemetry from the work-stealing pool, and
// the result is surfaced three ways — the progress reporter's final summary
// line, an opt-in `__profile__` entry merged into results/BENCH_*.json, and
// `raccd-report profile` for showing/diffing recorded breakdowns.
//
// Host time never touches SimStats, cache keys, or the stats cache: profile
// data is nondeterministic by nature, so it rides beside the results (a
// double-underscore bench entry the perf differ skips), never inside them.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace raccd::obs {

/// Monotonic wall-clock scope timer; seconds since construction or reset().
class ScopeTimer {
 public:
  ScopeTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Wall-time breakdown of one simulation run.
struct RunProfile {
  double setup_s = 0.0;  ///< SimConfig + Machine + workload construction
  double sim_s = 0.0;    ///< app body + replay + collect
};

struct WorkerProfile {
  double busy_s = 0.0;     ///< summed run wall time on this worker
  std::uint64_t runs = 0;  ///< runs completed (incl. failed)
};

/// Aggregated profile of one sweep (one run_all / SweepExecutor::run call).
struct SweepProfile {
  double wall_s = 0.0;     ///< whole sweep, preload to drain
  double preload_s = 0.0;  ///< cache preload scan
  double setup_s = 0.0;    ///< summed RunProfile::setup_s across runs
  double sim_s = 0.0;      ///< summed RunProfile::sim_s across runs
  double export_s = 0.0;   ///< bench JSON render+merge (accumulated by grid)
  std::uint64_t cached = 0;    ///< specs satisfied from the stats cache
  std::uint64_t executed = 0;  ///< specs actually simulated
  std::uint64_t failed = 0;    ///< specs that failed verification/setup
  std::uint64_t deduped = 0;   ///< duplicate specs satisfied by copy
  std::uint64_t steals = 0;    ///< pool steal count (0 for -j1)
  unsigned jobs = 1;
  std::vector<WorkerProfile> workers;

  /// Summed worker busy time over jobs * wall_s; 0 when nothing ran.
  [[nodiscard]] double utilization() const;
  /// One-line wall-time breakdown ("3.2s wall (setup 0.1s, sim 3.0s, …)") —
  /// the progress reporter's final line appends it after the run counts.
  [[nodiscard]] std::string summary() const;
  /// Bench-JSON field list for the `__profile__` entry (sorted keys).
  [[nodiscard]] std::string json_fields() const;
};

/// The most recent sweep's profile (process-wide; sweeps never overlap).
/// SweepExecutor::run fills it; bench binaries read it to merge into their
/// BENCH files and grid export timing accumulates into export_s.
[[nodiscard]] SweepProfile& last_sweep_profile();

}  // namespace raccd::obs
