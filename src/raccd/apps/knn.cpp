// KNN: k-nearest-neighbours classification (paper Table II: 16384 training
// points, 8192 points to classify, 4 dims, 4 classes).
//
// Tasks classify query blocks: in = query block + the full training set
// (shared read-only — a pattern where RaCCD's end-of-task self-invalidation
// throws away reusable training-set lines while PT keeps them coherent and
// cached; the paper notes PT slightly beats RaCCD here). The kernel streams
// the training set once per task, maintaining per-query k-best heaps.
#include <cstring>
#include <algorithm>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

struct KnnParams {
  std::uint32_t train;
  std::uint32_t queries;
  std::uint32_t dims;
  std::uint32_t classes;
  std::uint32_t k;
  std::uint32_t blocks;
};

[[nodiscard]] KnnParams params_for(const AppConfig& cfg) {
  KnnParams p{4096, 2048, 4, 4, 4, 16};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {256, 128, 4, 4, 4, 4}; break;
    case SizeClass::kSmall: p = {4096, 2048, 4, 4, 4, 16}; break;
    case SizeClass::kMedium: p = {8192, 4096, 4, 4, 4, 32}; break;
    case SizeClass::kPaper: p = {16384, 8192, 4, 4, 4, 64}; break;
    case SizeClass::kLarge: p = {32768, 16384, 4, 4, 4, 128}; break;
  }
  p.train = cfg.params.get_u32("train", p.train);
  p.queries = cfg.params.get_u32("queries", p.queries);
  p.dims = cfg.params.get_u32("dims", p.dims);
  p.classes = cfg.params.get_u32("classes", p.classes);
  // k beyond half a class's training points degenerates toward majority
  // voting across blobs, which the accuracy verification rightly rejects.
  p.k = std::min(cfg.params.get_u32("k", p.k),
                 std::max(1u, p.train / (p.classes * 2)));
  p.blocks = std::min(cfg.params.get_u32("blocks", p.blocks), p.queries);
  return p;
}

/// Insert (d2, label) into a fixed-size max-of-k nearest list.
inline void kbest_insert(float* dist, std::int32_t* lab, std::uint32_t k, float d2,
                         std::int32_t label) {
  std::uint32_t worst = 0;
  for (std::uint32_t i = 1; i < k; ++i) {
    if (dist[i] > dist[worst]) worst = i;
  }
  if (d2 < dist[worst]) {
    dist[worst] = d2;
    lab[worst] = label;
  }
}

class KnnApp final : public App {
 public:
  explicit KnnApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "knn"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("%u training pts, %u pts to classify, %u dims, %u classes, k=%u",
                     p_.train, p_.queries, p_.dims, p_.classes, p_.k);
  }

  void run(Machine& m) override {
    const std::uint32_t dims = p_.dims;
    train_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(p_.train) * dims,
                                        "knn.train");
    train_labels_ = m.mem().alloc_array<std::int32_t>(p_.train, "knn.train_labels");
    queries_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(p_.queries) * dims,
                                          "knn.queries");
    results_ = m.mem().alloc_array<std::int32_t>(p_.queries, "knn.results");
    init_data(m.mem());

    const VAddr tr = train_, trl = train_labels_, qs = queries_, rs = results_;
    const std::uint32_t ntrain = p_.train, k = p_.k, classes = p_.classes;
    for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
      const auto q0 = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(blk) * p_.queries) / p_.blocks);
      const auto q1 = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(blk + 1) * p_.queries) / p_.blocks);
      TaskDesc t;
      t.name = strprintf("knn(b%u)", blk);
      t.deps = {
          DepSpec{tr, static_cast<std::uint64_t>(ntrain) * dims * 4, DepKind::kIn},
          DepSpec{trl, static_cast<std::uint64_t>(ntrain) * 4, DepKind::kIn},
          DepSpec{qs + static_cast<VAddr>(q0) * dims * 4,
                  static_cast<std::uint64_t>(q1 - q0) * dims * 4, DepKind::kIn},
          DepSpec{rs + static_cast<VAddr>(q0) * 4,
                  static_cast<std::uint64_t>(q1 - q0) * 4, DepKind::kOut},
      };
      t.body = [tr, trl, qs, rs, q0, q1, ntrain, dims, k, classes](TaskContext& ctx) {
        const std::uint32_t nq = q1 - q0;
        std::vector<float> query(static_cast<std::size_t>(nq) * dims);
        for (std::uint32_t w = 0; w < nq * dims; ++w) {
          query[w] = ctx.load<float>(qs + (static_cast<VAddr>(q0) * dims + w) * 4);
        }
        std::vector<float> best_d(static_cast<std::size_t>(nq) * k, 1e30f);
        std::vector<std::int32_t> best_l(static_cast<std::size_t>(nq) * k, -1);
        std::vector<float> tp(dims);
        for (std::uint32_t ti = 0; ti < ntrain; ++ti) {
          for (std::uint32_t d = 0; d < dims; ++d) {
            tp[d] = ctx.load<float>(tr + (static_cast<VAddr>(ti) * dims + d) * 4);
          }
          const std::int32_t tl = ctx.load<std::int32_t>(trl + static_cast<VAddr>(ti) * 4);
          ctx.compute(2ULL * dims * nq);  // distance FMA chain per query
          for (std::uint32_t qi = 0; qi < nq; ++qi) {
            float d2 = 0.0f;
            for (std::uint32_t d = 0; d < dims; ++d) {
              const float diff = query[static_cast<std::size_t>(qi) * dims + d] - tp[d];
              d2 += diff * diff;
            }
            kbest_insert(&best_d[static_cast<std::size_t>(qi) * k],
                         &best_l[static_cast<std::size_t>(qi) * k], k, d2, tl);
          }
        }
        for (std::uint32_t qi = 0; qi < nq; ++qi) {
          std::vector<std::uint32_t> votes(classes, 0);
          for (std::uint32_t i = 0; i < k; ++i) {
            const std::int32_t l = best_l[static_cast<std::size_t>(qi) * k + i];
            if (l >= 0) ++votes[static_cast<std::uint32_t>(l)];
          }
          std::uint32_t winner = 0;
          for (std::uint32_t c = 1; c < classes; ++c) {
            if (votes[c] > votes[winner]) winner = c;
          }
          ctx.store<std::int32_t>(rs + static_cast<VAddr>(q0 + qi) * 4,
                                  static_cast<std::int32_t>(winner));
        }
      };
      m.spawn(std::move(t));
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    const std::uint32_t dims = p_.dims, k = p_.k, classes = p_.classes;
    std::vector<float> tr(static_cast<std::size_t>(p_.train) * dims);
    std::vector<std::int32_t> trl(p_.train);
    std::vector<float> qs(static_cast<std::size_t>(p_.queries) * dims);
    m.mem().copy_out(train_, tr.data(), tr.size() * 4);
    m.mem().copy_out(train_labels_, trl.data(), trl.size() * 4);
    m.mem().copy_out(queries_, qs.data(), qs.size() * 4);

    std::uint32_t correct_class = 0;
    for (std::uint32_t qi = 0; qi < p_.queries; ++qi) {
      std::vector<float> best_d(k, 1e30f);
      std::vector<std::int32_t> best_l(k, -1);
      for (std::uint32_t ti = 0; ti < p_.train; ++ti) {
        float d2 = 0.0f;
        for (std::uint32_t d = 0; d < dims; ++d) {
          const float diff = qs[static_cast<std::size_t>(qi) * dims + d] -
                             tr[static_cast<std::size_t>(ti) * dims + d];
          d2 += diff * diff;
        }
        kbest_insert(best_d.data(), best_l.data(), k, d2, trl[ti]);
      }
      std::vector<std::uint32_t> votes(classes, 0);
      for (std::uint32_t i = 0; i < k; ++i) {
        if (best_l[i] >= 0) ++votes[static_cast<std::uint32_t>(best_l[i])];
      }
      std::uint32_t winner = 0;
      for (std::uint32_t c = 1; c < classes; ++c) {
        if (votes[c] > votes[winner]) winner = c;
      }
      const auto got = m.mem().read<std::int32_t>(results_ + static_cast<VAddr>(qi) * 4);
      if (got != static_cast<std::int32_t>(winner)) {
        return strprintf("knn query %u: got %d want %u", qi, got, winner);
      }
      if (got == expected_class_[qi]) ++correct_class;
    }
    // Synthetic blobs are well separated: classification accuracy must be
    // high, or the kernel (not just the replay) is broken.
    if (correct_class < p_.queries * 9 / 10) {
      return strprintf("knn accuracy too low: %u/%u", correct_class, p_.queries);
    }
    return {};
  }

 private:
  void init_data(SimMemory& mem) {
    Rng rng(seed_);
    const std::uint32_t dims = p_.dims;
    for (std::uint32_t i = 0; i < p_.train; ++i) {
      const auto cls = static_cast<std::int32_t>(rng.next_below(p_.classes));
      mem.write<std::int32_t>(train_labels_ + static_cast<VAddr>(i) * 4, cls);
      for (std::uint32_t d = 0; d < dims; ++d) {
        mem.write<float>(train_ + (static_cast<VAddr>(i) * dims + d) * 4,
                         static_cast<float>(cls) * 8.0f + rng.next_float(-1.0f, 1.0f));
      }
    }
    expected_class_.resize(p_.queries);
    for (std::uint32_t i = 0; i < p_.queries; ++i) {
      const auto cls = static_cast<std::int32_t>(rng.next_below(p_.classes));
      expected_class_[i] = cls;
      for (std::uint32_t d = 0; d < dims; ++d) {
        mem.write<float>(queries_ + (static_cast<VAddr>(i) * dims + d) * 4,
                         static_cast<float>(cls) * 8.0f + rng.next_float(-1.0f, 1.0f));
      }
    }
  }

  KnnParams p_;
  std::uint64_t seed_;
  VAddr train_ = 0, train_labels_ = 0, queries_ = 0, results_ = 0;
  std::vector<std::int32_t> expected_class_;
};

const WorkloadRegistrar kRegistrar{{
    "knn",
    "k-nearest-neighbour classification over a shared training set",
    "paper",
    ParamSchema()
        .add_int("train", 4096, "training points", 16, 262144)
        .add_int("queries", 2048, "points to classify", 16, 262144)
        .add_int("dims", 4, "dimensions per point", 1, 64)
        .add_int("classes", 4, "label classes", 2, 64)
        .add_int("k", 4, "neighbours considered (clamped to train/(2*classes))", 1, 64)
        .add_int("blocks", 16, "query blocks (clamped to queries)", 1, 4096),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<KnnApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
