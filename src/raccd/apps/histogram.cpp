// Histo: cumulative histogram of an image via cross-weave scan (paper
// Table II: 1000x1000 pixels, 50 bins).
//
// Per round: strip tasks accumulate private partial histograms (out), a
// fan-in-8 merge tree combines them (in: children, out: parent), and a final
// task turns counts into the cumulative histogram. Strips are rescheduled to
// different cores every round — temporally-private data that PT permanently
// reclassifies as shared but RaCCD keeps non-coherent.
#include <string>
#include <algorithm>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

constexpr std::uint32_t kBins = 50;
constexpr std::uint32_t kFanIn = 8;
/// One histogram padded to full cache lines (no false sharing between slots).
constexpr std::uint32_t kHistStride = ((kBins * 4 + kLineBytes - 1) / kLineBytes) * kLineBytes;

struct HistoParams {
  std::uint32_t width;
  std::uint32_t height;
  std::uint32_t strips;
  std::uint32_t rounds;
};

[[nodiscard]] HistoParams params_for(const AppConfig& cfg) {
  HistoParams p{1024, 1024, 32, 3};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {64, 64, 8, 2}; break;
    case SizeClass::kSmall: p = {1024, 1024, 32, 3}; break;
    case SizeClass::kMedium: p = {2048, 2048, 64, 3}; break;
    case SizeClass::kPaper: p = {1000, 1000, 64, 3}; break;
    case SizeClass::kLarge: p = {4096, 4096, 128, 3}; break;
  }
  p.width = cfg.params.get_u32("width", p.width);
  p.height = cfg.params.get_u32("height", p.height);
  p.strips = std::min(cfg.params.get_u32("strips", p.strips), p.height);
  p.rounds = cfg.params.get_u32("rounds", p.rounds);
  return p;
}

class HistoApp final : public App {
 public:
  explicit HistoApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "histo"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("%ux%u pixel image, %u bins, %u strips, %u rounds", p_.width,
                     p_.height, kBins, p_.strips, p_.rounds);
  }

  void run(Machine& m) override {
    const std::uint64_t pixels = static_cast<std::uint64_t>(p_.width) * p_.height;
    image_ = m.mem().alloc(pixels, kLineBytes, "histo.image");
    Rng rng(seed_);
    for (std::uint64_t i = 0; i < pixels; ++i) {
      m.mem().write<std::uint8_t>(image_ + i, static_cast<std::uint8_t>(rng.next_below(256)));
    }
    // Merge-tree level sizes: strips, ceil(strips/8), ..., 1.
    std::vector<std::uint32_t> level_nodes;
    for (std::uint32_t nodes = p_.strips; nodes > 1; nodes = (nodes + kFanIn - 1) / kFanIn) {
      level_nodes.push_back(nodes);
    }
    level_nodes.push_back(1);

    std::uint64_t slots = 0;
    for (const std::uint32_t nodes : level_nodes) slots += nodes;
    hists_ = m.mem().alloc(static_cast<std::uint64_t>(p_.rounds) * slots * kHistStride,
                           kLineBytes, "histo.hists");
    finals_ = m.mem().alloc(static_cast<std::uint64_t>(p_.rounds) * kHistStride,
                            kLineBytes, "histo.finals");

    for (std::uint32_t round = 0; round < p_.rounds; ++round) {
      const VAddr round_base = hists_ + static_cast<VAddr>(round) * slots * kHistStride;
      // Level base offsets within this round's slot block.
      std::vector<VAddr> level_base;
      VAddr off = round_base;
      for (const std::uint32_t nodes : level_nodes) {
        level_base.push_back(off);
        off += static_cast<VAddr>(nodes) * kHistStride;
      }

      // Strip tasks -> level 0.
      const std::uint64_t strip_pixels = pixels / p_.strips;
      for (std::uint32_t s = 0; s < p_.strips; ++s) {
        const VAddr strip = image_ + static_cast<VAddr>(s) * strip_pixels;
        const std::uint64_t count =
            s + 1 == p_.strips ? pixels - s * strip_pixels : strip_pixels;
        const VAddr out = level_base[0] + static_cast<VAddr>(s) * kHistStride;
        TaskDesc t;
        t.name = strprintf("histo(r%u,s%u)", round, s);
        t.deps = {DepSpec{strip, count, DepKind::kIn},
                  DepSpec{out, kHistStride, DepKind::kOut}};
        t.body = [strip, count, out](TaskContext& ctx) {
          std::uint32_t local[kBins] = {};
          for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint8_t px = ctx.load<std::uint8_t>(strip + i);
            ctx.compute(2);  // bin index computation
            ++local[static_cast<std::uint32_t>(px) * kBins / 256];
          }
          for (std::uint32_t b = 0; b < kBins; ++b) {
            ctx.store<std::uint32_t>(out + b * 4, local[b]);
          }
        };
        m.spawn(std::move(t));
      }

      // Merge tree.
      for (std::size_t lvl = 1; lvl < level_nodes.size(); ++lvl) {
        const std::uint32_t parents = level_nodes[lvl];
        const std::uint32_t children = level_nodes[lvl - 1];
        for (std::uint32_t pnode = 0; pnode < parents; ++pnode) {
          const std::uint32_t c0 = pnode * kFanIn;
          const std::uint32_t c1 = std::min(children, c0 + kFanIn);
          const VAddr out = level_base[lvl] + static_cast<VAddr>(pnode) * kHistStride;
          const VAddr child_base = level_base[lvl - 1];
          TaskDesc t;
          t.name = strprintf("merge(r%u,l%zu,%u)", round, lvl, pnode);
          // Children are contiguous slots: one in-range covers them all.
          t.deps = {DepSpec{child_base + static_cast<VAddr>(c0) * kHistStride,
                            static_cast<std::uint64_t>(c1 - c0) * kHistStride,
                            DepKind::kIn},
                    DepSpec{out, kHistStride, DepKind::kOut}};
          t.body = [child_base, c0, c1, out](TaskContext& ctx) {
            std::uint32_t acc[kBins] = {};
            for (std::uint32_t ch = c0; ch < c1; ++ch) {
              for (std::uint32_t b = 0; b < kBins; ++b) {
                acc[b] += ctx.load<std::uint32_t>(
                    child_base + static_cast<VAddr>(ch) * kHistStride + b * 4);
                ctx.compute(1);
              }
            }
            for (std::uint32_t b = 0; b < kBins; ++b) {
              ctx.store<std::uint32_t>(out + b * 4, acc[b]);
            }
          };
          m.spawn(std::move(t));
        }
      }

      // Cumulative (prefix-sum) task.
      const VAddr root = level_base.back();
      const VAddr fin = finals_ + static_cast<VAddr>(round) * kHistStride;
      TaskDesc t;
      t.name = strprintf("cumsum(r%u)", round);
      t.deps = {DepSpec{root, kHistStride, DepKind::kIn},
                DepSpec{fin, kHistStride, DepKind::kOut}};
      t.body = [root, fin](TaskContext& ctx) {
        std::uint32_t running = 0;
        for (std::uint32_t b = 0; b < kBins; ++b) {
          running += ctx.load<std::uint32_t>(root + b * 4);
          ctx.compute(1);
          ctx.store<std::uint32_t>(fin + b * 4, running);
        }
      };
      m.spawn(std::move(t));
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    const std::uint64_t pixels = static_cast<std::uint64_t>(p_.width) * p_.height;
    std::vector<std::uint8_t> img(pixels);
    m.mem().copy_out(image_, img.data(), pixels);
    std::uint64_t ref[kBins] = {};
    for (const std::uint8_t px : img) ++ref[static_cast<std::uint32_t>(px) * kBins / 256];
    std::uint64_t cum = 0;
    for (std::uint32_t b = 0; b < kBins; ++b) {
      cum += ref[b];
      for (std::uint32_t round = 0; round < p_.rounds; ++round) {
        const auto got = m.mem().read<std::uint32_t>(
            finals_ + static_cast<VAddr>(round) * kHistStride + b * 4);
        if (got != cum) {
          return strprintf("histo round %u bin %u: got %u want %llu", round, b, got,
                           static_cast<unsigned long long>(cum));
        }
      }
    }
    if (cum != pixels) return "histogram mass not conserved";
    return {};
  }

 private:
  HistoParams p_;
  std::uint64_t seed_;
  VAddr image_ = 0, hists_ = 0, finals_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "histo",
    "image histogram with a fan-in-8 merge tree of partial histograms",
    "paper",
    ParamSchema()
        .add_int("width", 1024, "image width in pixels", 8, 16384)
        .add_int("height", 1024, "image height in pixels", 8, 16384)
        .add_int("strips", 32, "leaf strips (clamped to height)", 1, 4096)
        .add_int("rounds", 3, "repeated histogram rounds", 1, 64),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<HistoApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
