#include "raccd/harness/sweep_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <thread>

#include "raccd/common/format.hpp"

namespace raccd {
namespace {

// Field table: every serialized counter gets an explicit name. Doubles are
// printed with full precision; integers as decimal.
struct Fields {
  std::map<std::string, std::string> kv;

  void put_u(const std::string& k, std::uint64_t v) { kv[k] = std::to_string(v); }
  void put_d(const std::string& k, double v) { kv[k] = strprintf("%.17g", v); }

  [[nodiscard]] std::uint64_t get_u(const std::string& k) const {
    const auto it = kv.find(k);
    return it == kv.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] double get_d(const std::string& k) const {
    const auto it = kv.find(k);
    return it == kv.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr);
  }
};

void pack(const SimStats& s, Fields& f) {
  f.put_u("mode", static_cast<std::uint64_t>(s.mode));
  f.put_u("dir_ratio", s.dir_ratio);
  f.put_u("adr_enabled", s.adr_enabled ? 1 : 0);
  f.put_u("cycles", s.cycles);
  f.put_u("busy_cycles", s.busy_cycles);
  f.put_d("core_utilization", s.core_utilization);
  const FabricStats& fb = s.fabric;
  f.put_u("l1_accesses", fb.l1_accesses);
  f.put_u("l1_hits", fb.l1_hits);
  f.put_u("l1_misses", fb.l1_misses);
  f.put_u("l1_evictions", fb.l1_evictions);
  f.put_u("l1_wb_coh", fb.l1_wb_coh);
  f.put_u("l1_wb_nc", fb.l1_wb_nc);
  f.put_u("l1_invals_sharer", fb.l1_invals_sharer);
  f.put_u("l1_invals_recall", fb.l1_invals_recall);
  f.put_u("l1_flush_nc_lines", fb.l1_flush_nc_lines);
  f.put_u("l1_flush_nc_wbs", fb.l1_flush_nc_wbs);
  f.put_u("l1_flush_page_lines", fb.l1_flush_page_lines);
  f.put_u("l1_flush_page_wbs", fb.l1_flush_page_wbs);
  f.put_u("llc_lookups", fb.llc_lookups);
  f.put_u("llc_hits", fb.llc_hits);
  f.put_u("llc_misses", fb.llc_misses);
  f.put_u("llc_nc_lookups", fb.llc_nc_lookups);
  f.put_u("llc_nc_hits", fb.llc_nc_hits);
  f.put_u("llc_fills", fb.llc_fills);
  f.put_u("llc_evictions", fb.llc_evictions);
  f.put_u("llc_inval_by_dir", fb.llc_inval_by_dir);
  f.put_u("llc_wb_mem", fb.llc_wb_mem);
  f.put_u("llc_touches", fb.llc_touches);
  f.put_u("dir_accesses", fb.dir_accesses);
  f.put_u("dir_lookups", fb.dir_lookups);
  f.put_u("dir_hits", fb.dir_hits);
  f.put_u("dir_misses", fb.dir_misses);
  f.put_u("dir_allocs", fb.dir_allocs);
  f.put_u("dir_evictions", fb.dir_evictions);
  f.put_u("dir_recall_msgs", fb.dir_recall_msgs);
  f.put_u("dir_wb_updates", fb.dir_wb_updates);
  f.put_u("dir_nc_to_coh", fb.dir_nc_to_coh);
  f.put_u("dir_coh_to_nc", fb.dir_coh_to_nc);
  f.put_u("coh_reads", fb.coh_reads);
  f.put_u("coh_writes", fb.coh_writes);
  f.put_u("upgrades", fb.upgrades);
  f.put_u("nc_reads", fb.nc_reads);
  f.put_u("nc_writes", fb.nc_writes);
  f.put_u("owner_probes", fb.owner_probes);
  f.put_u("dir_reqs_cross_socket", fb.dir_reqs_cross_socket);
  f.put_u("nc_reqs_cross_socket", fb.nc_reqs_cross_socket);
  f.put_u("mem_reads", fb.mem_reads);
  f.put_u("mem_writes", fb.mem_writes);
  f.put_u("mem_wb_wait_cycles", fb.mem_wb_wait_cycles);
  f.put_u("dram_row_hits", fb.dram_row_hits);
  f.put_u("dram_row_misses", fb.dram_row_misses);
  f.put_u("dram_row_conflicts", fb.dram_row_conflicts);
  f.put_u("dram_queue_wait_cycles", fb.dram_queue_wait_cycles);
  f.put_d("e_dir_pj", fb.e_dir_pj);
  f.put_d("e_llc_pj", fb.e_llc_pj);
  f.put_d("e_l1_pj", fb.e_l1_pj);
  f.put_d("e_noc_pj", fb.e_noc_pj);
  f.put_d("e_mem_pj", fb.e_mem_pj);
  f.put_d("e_mem_act_pj", fb.e_mem_act_pj);
  f.put_d("e_mem_rd_pj", fb.e_mem_rd_pj);
  f.put_d("e_mem_wr_pj", fb.e_mem_wr_pj);
  f.put_d("e_mem_pre_pj", fb.e_mem_pre_pj);
  for (std::size_t c = 0; c < kMsgClassCount; ++c) {
    const auto& pc = s.noc.per_class[c];
    f.put_u(strprintf("noc%zu_messages", c), pc.messages);
    f.put_u(strprintf("noc%zu_flits", c), pc.flits);
    f.put_u(strprintf("noc%zu_flit_hops", c), pc.flit_hops);
  }
  f.put_u("noc_cross_messages", s.noc.cross_socket.messages);
  f.put_u("noc_cross_flits", s.noc.cross_socket.flits);
  f.put_u("noc_cross_flit_hops", s.noc.cross_socket.flit_hops);
  f.put_u("noc_socket_link_flits", s.noc.socket_link_flits);
  f.put_u("ncrt_lookups", s.ncrt.lookups);
  f.put_u("ncrt_hits", s.ncrt.hits);
  f.put_u("ncrt_inserts", s.ncrt.inserts);
  f.put_u("ncrt_overflows", s.ncrt.overflows);
  f.put_u("ncrt_clears", s.ncrt.clears);
  f.put_u("tlb_lookups", s.tlb.lookups);
  f.put_u("tlb_hits", s.tlb.hits);
  f.put_u("tlb_misses", s.tlb.misses);
  f.put_u("tlb_shootdowns", s.tlb.shootdowns);
  f.put_u("tlb_evictions", s.tlb.evictions);
  f.put_u("pt_first_touches", s.pt.first_touches);
  f.put_u("pt_transitions", s.pt.transitions);
  f.put_u("adr_polls", s.adr.polls);
  f.put_u("adr_grows", s.adr.grows);
  f.put_u("adr_shrinks", s.adr.shrinks);
  f.put_u("adr_entries_moved", s.adr.entries_moved);
  f.put_u("adr_entries_displaced", s.adr.entries_displaced);
  f.put_u("adr_blocked_cycles", s.adr.blocked_cycles);
  f.put_u("tasks", s.tasks);
  f.put_u("edges", s.edges);
  f.put_u("accesses_replayed", s.accesses_replayed);
  f.put_u("create_cycles", s.create_cycles);
  f.put_u("schedule_cycles", s.schedule_cycles);
  f.put_u("wakeup_cycles", s.wakeup_cycles);
  f.put_u("register_cycles", s.register_cycles);
  f.put_u("invalidate_cycles", s.invalidate_cycles);
  f.put_u("flushed_nc_lines", s.flushed_nc_lines);
  f.put_u("flushed_nc_wbs", s.flushed_nc_wbs);
  f.put_u("blocks_touched", s.blocks_touched);
  f.put_u("blocks_noncoherent", s.blocks_noncoherent);
  f.put_d("noncoherent_block_fraction", s.noncoherent_block_fraction);
  f.put_d("avg_dir_occupancy", s.avg_dir_occupancy);
  f.put_d("avg_dir_active_frac", s.avg_dir_active_frac);
  f.put_d("dir_dyn_energy_pj", s.dir_dyn_energy_pj);
  f.put_d("llc_dyn_energy_pj", s.llc_dyn_energy_pj);
  f.put_d("noc_dyn_energy_pj", s.noc_dyn_energy_pj);
  f.put_d("mem_dyn_energy_pj", s.mem_dyn_energy_pj);
  f.put_d("l1_dyn_energy_pj", s.l1_dyn_energy_pj);
  f.put_d("dir_leak_energy_pj", s.dir_leak_energy_pj);
  if (s.sampling.active != 0) {
    // Gated on `active` so detailed entries keep the v5 byte layout — a
    // sampled spec carries a distinct `-smp` key, so the two never collide.
    const SamplingStats& sp = s.sampling;
    f.put_u("sampling_active", sp.active);
    f.put_u("sampling_windows", sp.windows);
    f.put_u("sampling_measured_tasks", sp.measured_tasks);
    f.put_u("sampling_warmup_tasks", sp.warmup_tasks);
    f.put_u("sampling_ffwd_tasks", sp.ffwd_tasks);
    f.put_u("sampling_measured_accesses", sp.measured_accesses);
    f.put_u("sampling_ffwd_accesses", sp.ffwd_accesses);
    f.put_d("sampling_scale", sp.scale);
    f.put_d("sampling_cycles_ci95", sp.cycles_ci95);
    f.put_d("sampling_dir_accesses_ci95", sp.dir_accesses_ci95);
    f.put_d("sampling_llc_hits_ci95", sp.llc_hits_ci95);
    f.put_d("sampling_noc_flits_ci95", sp.noc_flits_ci95);
    f.put_d("sampling_noc_flit_hops_ci95", sp.noc_flit_hops_ci95);
    f.put_d("sampling_dram_row_hits_ci95", sp.dram_row_hits_ci95);
    f.put_d("sampling_dram_row_hit_rate_ci95", sp.dram_row_hit_rate_ci95);
    f.put_d("sampling_dir_occupancy_ci95", sp.dir_occupancy_ci95);
  }
  if (s.service.requests != 0) {
    // Same gating idea as sampling: batch entries keep the v5 byte layout,
    // and a service spec always carries workload params in its key.
    const auto put_dist = [&f](const char* prefix, const DistSummary& d) {
      f.put_u(strprintf("%s_count", prefix), d.count);
      f.put_d(strprintf("%s_mean", prefix), d.mean);
      f.put_d(strprintf("%s_p50", prefix), d.p50);
      f.put_d(strprintf("%s_p95", prefix), d.p95);
      f.put_d(strprintf("%s_p99", prefix), d.p99);
      f.put_d(strprintf("%s_max", prefix), d.max);
    };
    f.put_u("service_requests", s.service.requests);
    put_dist("service_queue", s.service.queueing);
    put_dist("service_svc", s.service.service);
    put_dist("service_e2e", s.service.e2e);
  }
}

void unpack(const Fields& f, SimStats& s) {
  s.mode = static_cast<CohMode>(f.get_u("mode"));
  s.dir_ratio = static_cast<std::uint32_t>(f.get_u("dir_ratio"));
  s.adr_enabled = f.get_u("adr_enabled") != 0;
  s.cycles = f.get_u("cycles");
  s.busy_cycles = f.get_u("busy_cycles");
  s.core_utilization = f.get_d("core_utilization");
  FabricStats& fb = s.fabric;
  fb.l1_accesses = f.get_u("l1_accesses");
  fb.l1_hits = f.get_u("l1_hits");
  fb.l1_misses = f.get_u("l1_misses");
  fb.l1_evictions = f.get_u("l1_evictions");
  fb.l1_wb_coh = f.get_u("l1_wb_coh");
  fb.l1_wb_nc = f.get_u("l1_wb_nc");
  fb.l1_invals_sharer = f.get_u("l1_invals_sharer");
  fb.l1_invals_recall = f.get_u("l1_invals_recall");
  fb.l1_flush_nc_lines = f.get_u("l1_flush_nc_lines");
  fb.l1_flush_nc_wbs = f.get_u("l1_flush_nc_wbs");
  fb.l1_flush_page_lines = f.get_u("l1_flush_page_lines");
  fb.l1_flush_page_wbs = f.get_u("l1_flush_page_wbs");
  fb.llc_lookups = f.get_u("llc_lookups");
  fb.llc_hits = f.get_u("llc_hits");
  fb.llc_misses = f.get_u("llc_misses");
  fb.llc_nc_lookups = f.get_u("llc_nc_lookups");
  fb.llc_nc_hits = f.get_u("llc_nc_hits");
  fb.llc_fills = f.get_u("llc_fills");
  fb.llc_evictions = f.get_u("llc_evictions");
  fb.llc_inval_by_dir = f.get_u("llc_inval_by_dir");
  fb.llc_wb_mem = f.get_u("llc_wb_mem");
  fb.llc_touches = f.get_u("llc_touches");
  fb.dir_accesses = f.get_u("dir_accesses");
  fb.dir_lookups = f.get_u("dir_lookups");
  fb.dir_hits = f.get_u("dir_hits");
  fb.dir_misses = f.get_u("dir_misses");
  fb.dir_allocs = f.get_u("dir_allocs");
  fb.dir_evictions = f.get_u("dir_evictions");
  fb.dir_recall_msgs = f.get_u("dir_recall_msgs");
  fb.dir_wb_updates = f.get_u("dir_wb_updates");
  fb.dir_nc_to_coh = f.get_u("dir_nc_to_coh");
  fb.dir_coh_to_nc = f.get_u("dir_coh_to_nc");
  fb.coh_reads = f.get_u("coh_reads");
  fb.coh_writes = f.get_u("coh_writes");
  fb.upgrades = f.get_u("upgrades");
  fb.nc_reads = f.get_u("nc_reads");
  fb.nc_writes = f.get_u("nc_writes");
  fb.owner_probes = f.get_u("owner_probes");
  fb.dir_reqs_cross_socket = f.get_u("dir_reqs_cross_socket");
  fb.nc_reqs_cross_socket = f.get_u("nc_reqs_cross_socket");
  fb.mem_reads = f.get_u("mem_reads");
  fb.mem_writes = f.get_u("mem_writes");
  fb.mem_wb_wait_cycles = f.get_u("mem_wb_wait_cycles");
  fb.dram_row_hits = f.get_u("dram_row_hits");
  fb.dram_row_misses = f.get_u("dram_row_misses");
  fb.dram_row_conflicts = f.get_u("dram_row_conflicts");
  fb.dram_queue_wait_cycles = f.get_u("dram_queue_wait_cycles");
  fb.e_dir_pj = f.get_d("e_dir_pj");
  fb.e_llc_pj = f.get_d("e_llc_pj");
  fb.e_l1_pj = f.get_d("e_l1_pj");
  fb.e_noc_pj = f.get_d("e_noc_pj");
  fb.e_mem_pj = f.get_d("e_mem_pj");
  fb.e_mem_act_pj = f.get_d("e_mem_act_pj");
  fb.e_mem_rd_pj = f.get_d("e_mem_rd_pj");
  fb.e_mem_wr_pj = f.get_d("e_mem_wr_pj");
  fb.e_mem_pre_pj = f.get_d("e_mem_pre_pj");
  for (std::size_t c = 0; c < kMsgClassCount; ++c) {
    auto& pc = s.noc.per_class[c];
    pc.messages = f.get_u(strprintf("noc%zu_messages", c));
    pc.flits = f.get_u(strprintf("noc%zu_flits", c));
    pc.flit_hops = f.get_u(strprintf("noc%zu_flit_hops", c));
  }
  s.noc.cross_socket.messages = f.get_u("noc_cross_messages");
  s.noc.cross_socket.flits = f.get_u("noc_cross_flits");
  s.noc.cross_socket.flit_hops = f.get_u("noc_cross_flit_hops");
  s.noc.socket_link_flits = f.get_u("noc_socket_link_flits");
  s.ncrt.lookups = f.get_u("ncrt_lookups");
  s.ncrt.hits = f.get_u("ncrt_hits");
  s.ncrt.inserts = f.get_u("ncrt_inserts");
  s.ncrt.overflows = f.get_u("ncrt_overflows");
  s.ncrt.clears = f.get_u("ncrt_clears");
  s.tlb.lookups = f.get_u("tlb_lookups");
  s.tlb.hits = f.get_u("tlb_hits");
  s.tlb.misses = f.get_u("tlb_misses");
  s.tlb.shootdowns = f.get_u("tlb_shootdowns");
  s.tlb.evictions = f.get_u("tlb_evictions");
  s.pt.first_touches = f.get_u("pt_first_touches");
  s.pt.transitions = f.get_u("pt_transitions");
  s.adr.polls = f.get_u("adr_polls");
  s.adr.grows = f.get_u("adr_grows");
  s.adr.shrinks = f.get_u("adr_shrinks");
  s.adr.entries_moved = f.get_u("adr_entries_moved");
  s.adr.entries_displaced = f.get_u("adr_entries_displaced");
  s.adr.blocked_cycles = f.get_u("adr_blocked_cycles");
  s.tasks = f.get_u("tasks");
  s.edges = f.get_u("edges");
  s.accesses_replayed = f.get_u("accesses_replayed");
  s.create_cycles = f.get_u("create_cycles");
  s.schedule_cycles = f.get_u("schedule_cycles");
  s.wakeup_cycles = f.get_u("wakeup_cycles");
  s.register_cycles = f.get_u("register_cycles");
  s.invalidate_cycles = f.get_u("invalidate_cycles");
  s.flushed_nc_lines = f.get_u("flushed_nc_lines");
  s.flushed_nc_wbs = f.get_u("flushed_nc_wbs");
  s.blocks_touched = f.get_u("blocks_touched");
  s.blocks_noncoherent = f.get_u("blocks_noncoherent");
  s.noncoherent_block_fraction = f.get_d("noncoherent_block_fraction");
  s.avg_dir_occupancy = f.get_d("avg_dir_occupancy");
  s.avg_dir_active_frac = f.get_d("avg_dir_active_frac");
  s.dir_dyn_energy_pj = f.get_d("dir_dyn_energy_pj");
  s.llc_dyn_energy_pj = f.get_d("llc_dyn_energy_pj");
  s.noc_dyn_energy_pj = f.get_d("noc_dyn_energy_pj");
  s.mem_dyn_energy_pj = f.get_d("mem_dyn_energy_pj");
  s.l1_dyn_energy_pj = f.get_d("l1_dyn_energy_pj");
  s.dir_leak_energy_pj = f.get_d("dir_leak_energy_pj");
  s.sampling.active = f.get_u("sampling_active");
  if (s.sampling.active != 0) {
    SamplingStats& sp = s.sampling;
    sp.windows = f.get_u("sampling_windows");
    sp.measured_tasks = f.get_u("sampling_measured_tasks");
    sp.warmup_tasks = f.get_u("sampling_warmup_tasks");
    sp.ffwd_tasks = f.get_u("sampling_ffwd_tasks");
    sp.measured_accesses = f.get_u("sampling_measured_accesses");
    sp.ffwd_accesses = f.get_u("sampling_ffwd_accesses");
    sp.scale = f.get_d("sampling_scale");
    sp.cycles_ci95 = f.get_d("sampling_cycles_ci95");
    sp.dir_accesses_ci95 = f.get_d("sampling_dir_accesses_ci95");
    sp.llc_hits_ci95 = f.get_d("sampling_llc_hits_ci95");
    sp.noc_flits_ci95 = f.get_d("sampling_noc_flits_ci95");
    sp.noc_flit_hops_ci95 = f.get_d("sampling_noc_flit_hops_ci95");
    sp.dram_row_hits_ci95 = f.get_d("sampling_dram_row_hits_ci95");
    sp.dram_row_hit_rate_ci95 = f.get_d("sampling_dram_row_hit_rate_ci95");
    sp.dir_occupancy_ci95 = f.get_d("sampling_dir_occupancy_ci95");
  }
  s.service.requests = f.get_u("service_requests");
  if (s.service.requests != 0) {
    const auto get_dist = [&f](const char* prefix, DistSummary& d) {
      d.count = f.get_u(strprintf("%s_count", prefix));
      d.mean = f.get_d(strprintf("%s_mean", prefix));
      d.p50 = f.get_d(strprintf("%s_p50", prefix));
      d.p95 = f.get_d(strprintf("%s_p95", prefix));
      d.p99 = f.get_d(strprintf("%s_p99", prefix));
      d.max = f.get_d(strprintf("%s_max", prefix));
    };
    get_dist("service_queue", s.service.queueing);
    get_dist("service_svc", s.service.service);
    get_dist("service_e2e", s.service.e2e);
  }
}

}  // namespace

std::string stats_to_text(const SimStats& s) {
  Fields f;
  pack(s, f);
  std::string out = strprintf("format=%u\n", kStatsFormatVersion);
  for (const auto& [k, v] : f.kv) out += k + "=" + v + "\n";
  return out;
}

std::optional<SimStats> stats_from_text(const std::string& text) {
  Fields f;
  std::istringstream in(text);
  std::string line;
  bool version_ok = false;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string k = line.substr(0, eq);
    const std::string v = line.substr(eq + 1);
    if (k == "format") {
      version_ok = (std::strtoul(v.c_str(), nullptr, 10) == kStatsFormatVersion);
      continue;
    }
    f.kv[k] = v;
  }
  if (!version_ok) return std::nullopt;
  SimStats s;
  unpack(f, s);
  return s;
}

namespace {

// Cache keys become single filenames: map path separators and other
// filesystem-hostile characters to '_' (identity for legacy keys, which
// only contain [A-Za-z0-9.{}=,:-]).
[[nodiscard]] std::string key_filename(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '{' || c == '}' ||
                    c == '=' || c == ',' || c == ':' || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return out + ".stats";
}

}  // namespace

std::optional<SimStats> cache_load(const std::string& dir, const std::string& key) {
  std::error_code ec;
  const std::filesystem::path path = std::filesystem::path(dir) / key_filename(key);
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return stats_from_text(text);
}

bool cache_store(const std::string& dir, const std::string& key, const SimStats& s) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  if (!std::filesystem::is_directory(dir, ec)) return false;
  // Write-to-temp + rename so concurrent executor workers (or bench
  // binaries sharing one cache) never observe a truncated entry; the rename
  // makes same-key races benign — the model is deterministic, so the last
  // writer wins with identical bytes. The tmp name must be unique across
  // every concurrent writer: pid (thread-id hashes can collide across
  // processes) + thread id + a per-process sequence number (two stores from
  // one worker can otherwise alias under recycled thread ids).
  static std::atomic<unsigned long long> seq{0};
  const std::filesystem::path path = std::filesystem::path(dir) / key_filename(key);
  const std::filesystem::path tmp =
      path.string() +
      strprintf(".tmp.%ld.%llu.%llu", static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    std::hash<std::thread::id>{}(std::this_thread::get_id())),
                seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << stats_to_text(s);
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace raccd
