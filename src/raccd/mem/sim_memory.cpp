#include "raccd/mem/sim_memory.hpp"

#include <algorithm>

#include "raccd/common/bits.hpp"

namespace raccd {

SimMemory::SimMemory(std::uint64_t phys_frames, AllocPolicy policy, std::uint64_t seed,
                     std::uint32_t sockets)
    : phys_(phys_frames, policy, seed, sockets) {}

VAddr SimMemory::alloc(std::uint64_t bytes, std::uint64_t align, std::string label) {
  RACCD_ASSERT(bytes > 0, "zero-byte allocation");
  RACCD_ASSERT(is_pow2(align) && align >= 8, "alignment must be a power of two >= 8");
  const VAddr base = align_up(next_, align);
  next_ = base + bytes;
  ensure_backing(next_);
  // Map every page of the allocation eagerly (the paper's workloads touch
  // their whole footprint; eager mapping also keeps translation latency out
  // of the timing path, which gem5 full-system pays at warmup) — except
  // under first-touch placement, where the machine maps each page on its
  // first timed access so the toucher's socket decides the frame.
  if (!lazy_mapping()) {
    for (PageNum vp = page_of(base); vp <= page_of(next_ - 1); ++vp) {
      if (!page_table_.mapped(vp)) page_table_.map(vp, phys_.alloc_frame());
    }
  }
  allocations_.push_back(Allocation{std::move(label), base, bytes});
  return base;
}

void SimMemory::ensure_backing(VAddr up_to) {
  const std::uint64_t needed_chunks = chunk_index(up_to - 1) + 1;
  while (chunks_.size() < needed_chunks) {
    auto chunk = std::make_unique<std::uint8_t[]>(kChunkBytes);
    std::memset(chunk.get(), 0, kChunkBytes);
    chunks_.push_back(std::move(chunk));
  }
}

void SimMemory::copy_out(VAddr va, void* dst, std::uint64_t n) const {
  RACCD_DEBUG_ASSERT(va >= kArenaBase && va + n <= next_, "functional read out of arena");
  auto* out = static_cast<std::uint8_t*>(dst);
  while (n > 0) {
    const std::uint64_t ci = chunk_index(va);
    const std::uint64_t off = chunk_offset(va);
    const std::uint64_t take = std::min(n, kChunkBytes - off);
    std::memcpy(out, chunks_[ci].get() + off, take);
    va += take;
    out += take;
    n -= take;
  }
}

void SimMemory::copy_in(VAddr va, const void* src, std::uint64_t n) {
  RACCD_DEBUG_ASSERT(va >= kArenaBase && va + n <= next_, "functional write out of arena");
  const auto* in = static_cast<const std::uint8_t*>(src);
  while (n > 0) {
    const std::uint64_t ci = chunk_index(va);
    const std::uint64_t off = chunk_offset(va);
    const std::uint64_t take = std::min(n, kChunkBytes - off);
    std::memcpy(chunks_[ci].get() + off, in, take);
    va += take;
    in += take;
    n -= take;
  }
}

}  // namespace raccd
