// RFC 1321 MD5, implemented from the specification.
//
// The block transform is shared between the simulated benchmark (which feeds
// it words loaded through the timing model) and the host-side reference
// hasher used for verification and for the RFC test-vector unit tests.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

namespace raccd::apps {

struct Md5State {
  std::uint32_t a = 0x67452301u;
  std::uint32_t b = 0xefcdab89u;
  std::uint32_t c = 0x98badcfeu;
  std::uint32_t d = 0x10325476u;
};

namespace md5_detail {

inline constexpr std::array<std::uint32_t, 64> kT = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

inline constexpr std::array<std::uint8_t, 64> kS = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

[[nodiscard]] constexpr std::uint32_t rotl(std::uint32_t x, unsigned s) noexcept {
  return (x << s) | (x >> (32 - s));
}

}  // namespace md5_detail

/// One 512-bit block transform.
inline void md5_transform(Md5State& st, const std::uint32_t m[16]) noexcept {
  using namespace md5_detail;
  std::uint32_t a = st.a, b = st.b, c = st.c, d = st.d;
  for (unsigned i = 0; i < 64; ++i) {
    std::uint32_t f = 0;
    unsigned g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kT[i] + m[g], kS[i]);
    a = tmp;
  }
  st.a += a;
  st.b += b;
  st.c += c;
  st.d += d;
}

/// Finish a hash whose full 64-byte blocks were already transformed and whose
/// remaining tail (< 64 bytes) is given; total_len is the full message length.
[[nodiscard]] inline std::array<std::uint8_t, 16> md5_finalize(
    Md5State st, std::uint64_t total_len, std::span<const std::uint8_t> tail) noexcept {
  std::uint8_t pad[128] = {};
  // An empty span's data() may be null, which memcpy must never see.
  if (!tail.empty()) std::memcpy(pad, tail.data(), tail.size());
  pad[tail.size()] = 0x80;
  const std::size_t pad_blocks = tail.size() + 9 <= 64 ? 1 : 2;
  const std::uint64_t bit_len = total_len * 8;
  std::memcpy(pad + pad_blocks * 64 - 8, &bit_len, 8);
  std::uint32_t m[16];
  for (std::size_t blk = 0; blk < pad_blocks; ++blk) {
    std::memcpy(m, pad + blk * 64, 64);
    md5_transform(st, m);
  }
  std::array<std::uint8_t, 16> digest{};
  std::memcpy(digest.data() + 0, &st.a, 4);
  std::memcpy(digest.data() + 4, &st.b, 4);
  std::memcpy(digest.data() + 8, &st.c, 4);
  std::memcpy(digest.data() + 12, &st.d, 4);
  return digest;
}

/// Host-side reference hash of a full buffer.
[[nodiscard]] inline std::array<std::uint8_t, 16> md5_hash(
    std::span<const std::uint8_t> data) noexcept {
  Md5State st;
  std::size_t off = 0;
  std::uint32_t m[16];
  while (data.size() - off >= 64) {
    std::memcpy(m, data.data() + off, 64);
    md5_transform(st, m);
    off += 64;
  }
  return md5_finalize(st, data.size(), data.subspan(off));
}

[[nodiscard]] inline std::string md5_hex(const std::array<std::uint8_t, 16>& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[2 * i] = kHex[d[i] >> 4];
    out[2 * i + 1] = kHex[d[i] & 0xf];
  }
  return out;
}

}  // namespace raccd::apps
