// Paper Fig. 2: percentage of non-coherent cache blocks under the PT and
// RaCCD classification approaches (1:1 directory). A block counts as
// non-coherent iff it is touched and never accessed coherently.
//
// Paper reference points: RaCCD averages 78.6% vs PT 26.9% (2.9x); RaCCD
// wins big on CG/Gauss/Histo/Jacobi/Kmeans/RedBlack (migrating data),
// ties on MD5, loses slightly on KNN, and identifies 0% on JPEG (tasks
// without annotations).
#include <cstdio>

#include "bench_common.hpp"
#include "raccd/apps/registry.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  const std::vector<CohMode> modes{CohMode::kPT, CohMode::kRaCCD};
  const auto results = bench::run_logged(Grid()
                                             .paper_apps()
                                             .set_params(opts.params)
                                             .size(opts.size)
                                             .modes(modes)
                                             .paper_machine(opts.paper_machine)
                                             .specs(),
                                         opts);

  std::printf("Fig. 2 — Percentage of non-coherent cache blocks (1:1 directory)\n");
  TextTable table({"app", "problem", "PT %", "RaCCD %", "RaCCD/PT"});
  std::vector<double> pt_vals, raccd_vals;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    // Spec-addressed lookup: adding a mode to the grid cannot misattribute.
    const SimStats& pt = results.at(apps[a], CohMode::kPT);
    const SimStats& rc = results.at(apps[a], CohMode::kRaCCD);
    pt_vals.push_back(100.0 * metric_value(pt, "blocks.nc_fraction"));
    raccd_vals.push_back(100.0 * metric_value(rc, "blocks.nc_fraction"));
    const auto app_obj = make_app(
        apps[a], AppConfig{opts.size, 42,
                           WorkloadRegistry::instance().supported_params(
                               apps[a], opts.params)});
    table.add_row({apps[a], app_obj->problem(), strprintf("%.1f", pt_vals.back()),
                   strprintf("%.1f", raccd_vals.back()),
                   pt_vals.back() > 0.0
                       ? strprintf("%.2fx", raccd_vals.back() / pt_vals.back())
                       : "-"});
  }
  table.add_separator();
  table.add_row({"AVG", "", strprintf("%.1f", mean(pt_vals)),
                 strprintf("%.1f", mean(raccd_vals)),
                 strprintf("%.2fx", mean(raccd_vals) / mean(pt_vals))});
  table.print();
  table.write_csv("results/fig02_noncoherent_blocks.csv");
  std::printf("\npaper: PT avg 26.9%%, RaCCD avg 78.6%% (2.9x); JPEG 0%% under RaCCD\n");
  return 0;
}
