// Typed workload parameters (the Workload SDK's knob vocabulary).
//
// A workload declares a ParamSchema — named int/double/string knobs with
// defaults, help text and (for numbers) bounds. Callers override knobs with
// `key=value` text (CLI `--set n=512`, or the `jacobi:n=512,iters=16` ref
// syntax); WorkloadParams holds the overrides as strings, the schema
// validates and types them, and canonical() renders a sorted, stable text
// form that participates in RunSpec cache keys. The SizeClass baseline
// (tiny/small/paper) supplies per-size default values; schema defaults
// document the `small` baseline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace raccd {

enum class ParamType : std::uint8_t { kInt, kDouble, kString };

[[nodiscard]] constexpr const char* to_string(ParamType t) noexcept {
  switch (t) {
    case ParamType::kInt: return "int";
    case ParamType::kDouble: return "double";
    case ParamType::kString: return "string";
  }
  return "?";
}

/// Ordered key→value overrides, stored as text; typed access goes through
/// the getters (values are validated against a ParamSchema before use).
class WorkloadParams {
 public:
  struct Entry {
    std::string key;
    std::string value;
  };

  /// Parse "k=v,k2=v2" (empty text is valid and yields no entries).
  /// Returns an error message, or "" on success.
  [[nodiscard]] static std::string parse(std::string_view text, WorkloadParams& out);

  /// Set/overwrite one key.
  void set(std::string key, std::string value);

  [[nodiscard]] bool has(std::string_view key) const noexcept;
  /// Raw text for `key`, or nullptr when unset.
  [[nodiscard]] const std::string* raw(std::string_view key) const noexcept;

  // Typed getters: `fallback` when the key is unset. Values are assumed
  // schema-validated; unparseable text falls back (validate() reports it).
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] std::uint32_t get_u32(std::string_view key, std::uint32_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;

  /// Sorted "k=v,k2=v2" text — the stable cache-key fragment. Empty string
  /// when no overrides are set (legacy cache keys stay unchanged).
  [[nodiscard]] std::string canonical() const;

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;  // kept sorted by key (set() inserts in place)
};

/// Parse helpers shared with the schema (full-string, base-10/float).
[[nodiscard]] bool parse_int_text(std::string_view text, std::int64_t& out);
[[nodiscard]] bool parse_double_text(std::string_view text, double& out);

struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kInt;
  std::string default_text;  ///< the `small` baseline, for --list/usage
  std::string help;
  std::int64_t min_int = 0;
  std::int64_t max_int = 0;  ///< inclusive; min==max==0 means unbounded
  double min_double = 0.0;
  double max_double = 0.0;  ///< inclusive; min==max==0 means unbounded
  std::vector<std::string> choices;  ///< kString only: allowed values (empty = any)
};

/// A workload's declared knobs. validate() is the single gate between user
/// text and app code: unknown keys, untypeable values and out-of-bounds
/// numbers are rejected with messages that name the valid alternatives.
class ParamSchema {
 public:
  ParamSchema& add_int(std::string key, std::int64_t small_default, std::string help,
                       std::int64_t min, std::int64_t max);
  ParamSchema& add_double(std::string key, double small_default, std::string help,
                          double min, double max);
  ParamSchema& add_string(std::string key, std::string small_default, std::string help);
  /// String knob restricted to a closed set of values.
  ParamSchema& add_enum(std::string key, std::string small_default, std::string help,
                        std::vector<std::string> choices);

  [[nodiscard]] const ParamSpec* find(std::string_view key) const noexcept;
  [[nodiscard]] const std::vector<ParamSpec>& specs() const noexcept { return specs_; }

  /// "" when every entry in `p` names a declared key and carries a value of
  /// the declared type within bounds; an explanatory error otherwise.
  [[nodiscard]] std::string validate(const WorkloadParams& p) const;

  /// Schema defaults overlaid with `overrides` — every declared key present.
  [[nodiscard]] WorkloadParams resolve(const WorkloadParams& overrides) const;

  /// One-per-line "key=default (type) help [bounds]" description for usage.
  [[nodiscard]] std::string describe(std::string_view indent = "  ") const;

 private:
  std::vector<ParamSpec> specs_;
};

}  // namespace raccd
