// Ablation (beyond the paper): physical page allocation policy. The paper
// relies on Linux mapping contiguous virtual pages to contiguous frames
// (§III-C.2), which lets raccd_register collapse each dependence region into
// ~1 NCRT entry. Fragmented physical memory defeats the collapsing: more
// NCRT inserts, overflows, and lost coverage.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names;
  const auto results = bench::run_logged(
      Grid()
          .paper_apps()
          .set_params(opts.params)
          .size(opts.size)
          .mode(CohMode::kRaCCD)
          .allocs({AllocPolicy::kContiguous, AllocPolicy::kFragmented})
          .paper_machine(opts.paper_machine)
          .specs(),
      opts);

  std::printf("Ablation — physical allocation policy under RaCCD\n");
  TextTable table({"app", "policy", "NCRT inserts", "overflows", "NC blocks %",
                   "register cycles", "norm.cycles"});
  for (std::size_t a = 0; a < apps().size(); ++a) {
    const double base = static_cast<double>(results[a * 2].cycles);
    for (int p = 0; p < 2; ++p) {
      const SimStats& s = results[a * 2 + p];
      table.add_row({apps()[a], p == 0 ? "contiguous" : "fragmented",
                     format_count(s.ncrt.inserts), format_count(s.ncrt.overflows),
                     strprintf("%.1f", 100.0 * s.noncoherent_block_fraction),
                     format_count(s.register_cycles),
                     strprintf("%.3f", static_cast<double>(s.cycles) / base)});
    }
  }
  table.print();
  table.write_csv("results/ablation_page_allocation.csv");
  return 0;
}
