// Structural validation of Chrome Trace Event JSON produced by TraceSink
// (or anything else emitting the format): well-formedness plus the span
// invariants the instrumentation promises — per-(pid,tid) B/E balance and
// monotone begin/end timestamps, non-negative X durations, known phase
// letters. Used by tests/test_obs.cpp directly and by the standalone
// `trace_validate` CLI the trace-smoke CI job runs on recorded artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace raccd::obs {

struct TraceValidation {
  bool ok = false;
  std::vector<std::string> errors;  ///< empty iff ok
  std::uint64_t events = 0;         ///< non-metadata events seen
  std::uint64_t metadata = 0;       ///< M records
  std::uint64_t spans = 0;          ///< matched B/E pairs + X records
  std::uint64_t dropped = 0;        ///< declared drops (raccd.dropped_total)
  std::uint64_t tracks = 0;         ///< distinct (pid,tid) pairs
};

/// Validate a JSON document in memory. When the trace declares dropped
/// events (raccd.dropped_total > 0) the B/E balance check is relaxed to
/// "never more E than B" — a capped trace legitimately ends mid-span.
[[nodiscard]] TraceValidation validate_trace_json(std::string_view json);

/// Validate a file on disk (adds a read error instead of throwing).
[[nodiscard]] TraceValidation validate_trace_file(const std::string& path);

}  // namespace raccd::obs
