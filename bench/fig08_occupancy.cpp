// Paper Fig. 8: time-averaged directory occupancy at the 1:1 configuration.
//
// Paper reference points: FullCoh 65.7%, PT 20.3%, RaCCD 10.8% on average.
// FullCoh occupancy only grows (up to capacity); PT and RaCCD shed entries
// when NC blocks displace coherent LLC lines.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  const auto results = bench::run_logged(Grid()
                                             .paper_apps()
                                             .set_params(opts.params)
                                             .size(opts.size)
                                             .modes(kAllModes)
                                             .paper_machine(opts.paper_machine)
                                             .specs(),
                                         opts);

  std::printf("Fig. 8 — Average directory occupancy (%%, 1:1 directory)\n");
  TextTable table({"app", "FullCoh", "PT", "RaCCD"});
  std::vector<double> avg(kAllModes.size(), 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::vector<std::string> row{apps[a]};
    for (std::size_t m = 0; m < kAllModes.size(); ++m) {
      const double occ = 100.0 * results[a * 3 + m].avg_dir_occupancy;
      avg[m] += occ;
      row.push_back(strprintf("%.1f", occ));
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  table.add_row({"AVG", strprintf("%.1f", avg[0] / apps.size()),
                 strprintf("%.1f", avg[1] / apps.size()),
                 strprintf("%.1f", avg[2] / apps.size())});
  table.print();
  table.write_csv("results/fig08_occupancy.csv");
  std::printf("\npaper: FullCoh 65.7%%, PT 20.3%%, RaCCD 10.8%% on average\n");
  return 0;
}
