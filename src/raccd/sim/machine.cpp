#include "raccd/sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/metrics/histogram.hpp"
#include "raccd/obs/trace_sink.hpp"

namespace raccd {
namespace {

/// The topology's per-socket memory ranges must describe the same frame
/// space PhysMemory allocates from — derive them from one place.
[[nodiscard]] SimConfig finalized(SimConfig cfg) {
  cfg.fabric.topo.phys_frames = cfg.phys_mb * (1024 * 1024 / kPageBytes);
  // Pre-size the fabric's memory version map (clamped there) so large runs
  // don't rehash it unboundedly.
  cfg.fabric.phys_lines_hint = cfg.fabric.topo.phys_frames * kLinesPerPage;
  return cfg;
}

// -- sampled-run extrapolation helpers ---------------------------------------

[[nodiscard]] std::uint64_t scale_u(std::uint64_t v, double s) noexcept {
  return static_cast<std::uint64_t>(std::llround(static_cast<double>(v) * s));
}

/// Measured-bucket counters scaled up to run totals: every event counter and
/// dynamic-energy term extrapolates uniformly by the access ratio.
[[nodiscard]] FabricStats scaled(const FabricStats& m, double s) noexcept {
  FabricStats o = m;
#define RACCD_SCALE_FIELD(f) o.f = scale_u(m.f, s)
  RACCD_SCALE_FIELD(l1_accesses);
  RACCD_SCALE_FIELD(l1_hits);
  RACCD_SCALE_FIELD(l1_misses);
  RACCD_SCALE_FIELD(l1_evictions);
  RACCD_SCALE_FIELD(l1_wb_coh);
  RACCD_SCALE_FIELD(l1_wb_nc);
  RACCD_SCALE_FIELD(l1_invals_sharer);
  RACCD_SCALE_FIELD(l1_invals_recall);
  RACCD_SCALE_FIELD(l1_flush_nc_lines);
  RACCD_SCALE_FIELD(l1_flush_nc_wbs);
  RACCD_SCALE_FIELD(l1_flush_page_lines);
  RACCD_SCALE_FIELD(l1_flush_page_wbs);
  RACCD_SCALE_FIELD(llc_lookups);
  RACCD_SCALE_FIELD(llc_hits);
  RACCD_SCALE_FIELD(llc_misses);
  RACCD_SCALE_FIELD(llc_nc_lookups);
  RACCD_SCALE_FIELD(llc_nc_hits);
  RACCD_SCALE_FIELD(llc_fills);
  RACCD_SCALE_FIELD(llc_evictions);
  RACCD_SCALE_FIELD(llc_inval_by_dir);
  RACCD_SCALE_FIELD(llc_wb_mem);
  RACCD_SCALE_FIELD(llc_touches);
  RACCD_SCALE_FIELD(dir_accesses);
  RACCD_SCALE_FIELD(dir_lookups);
  RACCD_SCALE_FIELD(dir_hits);
  RACCD_SCALE_FIELD(dir_misses);
  RACCD_SCALE_FIELD(dir_allocs);
  RACCD_SCALE_FIELD(dir_evictions);
  RACCD_SCALE_FIELD(dir_recall_msgs);
  RACCD_SCALE_FIELD(dir_wb_updates);
  RACCD_SCALE_FIELD(dir_nc_to_coh);
  RACCD_SCALE_FIELD(dir_coh_to_nc);
  RACCD_SCALE_FIELD(coh_reads);
  RACCD_SCALE_FIELD(coh_writes);
  RACCD_SCALE_FIELD(upgrades);
  RACCD_SCALE_FIELD(nc_reads);
  RACCD_SCALE_FIELD(nc_writes);
  RACCD_SCALE_FIELD(owner_probes);
  RACCD_SCALE_FIELD(dir_reqs_cross_socket);
  RACCD_SCALE_FIELD(nc_reqs_cross_socket);
  RACCD_SCALE_FIELD(mem_reads);
  RACCD_SCALE_FIELD(mem_writes);
  RACCD_SCALE_FIELD(mem_wb_wait_cycles);
  RACCD_SCALE_FIELD(dram_row_hits);
  RACCD_SCALE_FIELD(dram_row_misses);
  RACCD_SCALE_FIELD(dram_row_conflicts);
  RACCD_SCALE_FIELD(dram_queue_wait_cycles);
#undef RACCD_SCALE_FIELD
  o.e_dir_pj = m.e_dir_pj * s;
  o.e_llc_pj = m.e_llc_pj * s;
  o.e_l1_pj = m.e_l1_pj * s;
  o.e_noc_pj = m.e_noc_pj * s;
  o.e_mem_pj = m.e_mem_pj * s;
  o.e_mem_act_pj = m.e_mem_act_pj * s;
  o.e_mem_rd_pj = m.e_mem_rd_pj * s;
  o.e_mem_wr_pj = m.e_mem_wr_pj * s;
  o.e_mem_pre_pj = m.e_mem_pre_pj * s;
  return o;
}

[[nodiscard]] NocStats scaled(const NocStats& m, double s) noexcept {
  NocStats o = m;
  for (std::size_t i = 0; i < o.per_class.size(); ++i) {
    o.per_class[i].messages = scale_u(m.per_class[i].messages, s);
    o.per_class[i].flits = scale_u(m.per_class[i].flits, s);
    o.per_class[i].flit_hops = scale_u(m.per_class[i].flit_hops, s);
  }
  o.cross_socket.messages = scale_u(m.cross_socket.messages, s);
  o.cross_socket.flits = scale_u(m.cross_socket.flits, s);
  o.cross_socket.flit_hops = scale_u(m.cross_socket.flit_hops, s);
  o.socket_link_flits = scale_u(m.socket_link_flits, s);
  return o;
}

/// 95% half-width of the mean of `r` (zero below two samples).
[[nodiscard]] double ci95_half_width(const std::vector<double>& r) noexcept {
  if (r.size() < 2) return 0.0;
  double mean = 0.0;
  for (const double v : r) mean += v;
  mean /= static_cast<double>(r.size());
  double ss = 0.0;
  for (const double v : r) {
    const double d = v - mean;
    ss += d * d;
  }
  const double sd = std::sqrt(ss / static_cast<double>(r.size() - 1));
  return 1.96 * sd / std::sqrt(static_cast<double>(r.size()));
}

}  // namespace

Machine::Machine(const SimConfig& cfg)
    : cfg_(finalized(cfg)),
      legacy_(legacy_structures()),
      checker_(/*strict=*/true),
      fabric_(cfg_.fabric, cfg_.enable_checker ? &checker_ : nullptr),
      adr_(fabric_, cfg_.adr),
      mem_(cfg_.fabric.topo.phys_frames, cfg_.alloc_policy, cfg_.seed,
           cfg_.fabric.topo.sockets),
      rt_(cfg_.sched, cfg_.fabric.cores) {
  for (std::uint32_t c = 0; c < cfg_.fabric.cores; ++c) {
    tlbs_.emplace_back(cfg_.tlb_entries);
  }
  cores_.resize(cfg_.fabric.cores);
  sampling_on_ = cfg_.sampling.enabled;
  if (sampling_on_) {
    ffwd_near_tasks_ = 2ULL * cfg_.fabric.cores;
    // Timed cooldown after each measured window: roughly one task per core,
    // clamped so the detailed block still fits in the period.
    const std::uint64_t block = cfg_.sampling.warmup + cfg_.sampling.window;
    if (cfg_.sampling.period > block) {
      cooldown_tasks_ =
          std::min<std::uint64_t>(cfg_.fabric.cores, cfg_.sampling.period - block);
    }
  }
  backend_ = make_backend(BackendContext{cfg_, fabric_, mem_, tlbs_});
  if (cfg_.series.interval > 0) {
    sampler_ = std::make_unique<StatSampler>(
        cfg_.series, [this](Cycle at, SimStats& s) { snapshot_stats(at, s); });
  }
}

void Machine::set_obs_trace(obs::TraceSink* sink) {
  obs_ = sink;
  fabric_.set_obs_trace(sink);
  backend_->set_obs_trace(sink);
  if (sink == nullptr) return;
  sink->set_process_name(obs::kPidCores, "cores");
  sink->set_process_name(obs::kPidRuntime, "runtime");
  sink->set_process_name(obs::kPidCoherence, "coherence");
  sink->set_process_name(obs::kPidDram, "dram");
  sink->set_process_name(obs::kPidService, "service");
  sink->set_process_name(obs::kPidNoc, "noc");
  for (CoreId c = 0; c < cfg_.fabric.cores; ++c) {
    sink->set_thread_name(obs::kPidCores, c, strprintf("core %u", c));
  }
  sink->set_thread_name(obs::kPidRuntime, 0, "scheduler");
  sink->set_thread_name(obs::kPidNoc, 0, "mesh");
  obs_ids_.taskwait = sink->intern("taskwait");
  obs_ids_.idle_gap = sink->intern("idle_gap");
  obs_ids_.release = sink->intern("release");
  obs_ids_.flush = sink->intern("nc_flush");
  obs_ids_.queueing = sink->intern("queueing");
  obs_ids_.service = sink->intern("service");
  obs_ids_.respond = sink->intern("respond");
  obs_ids_.noc_flits = sink->intern("noc_flits");
  obs_ids_.lines = sink->intern("lines");
  obs_ids_.wbs = sink->intern("wbs");
  obs_ids_.released = sink->intern("released");
  obs_ids_.until = sink->intern("until");
  obs_ids_.task = sink->intern("task");
}

TaskId Machine::spawn(TaskDesc desc) {
  const Cycle cost = cfg_.timing.task_create_cycles +
                     cfg_.timing.dep_analysis_cycles * desc.deps.size();
  main_clock_ += cost;
  create_cycles_ += cost;
  return rt_.create_task(std::move(desc));
}

CoreId Machine::pop_min_clock_core() {
  while (!run_heap_.empty()) {
    const auto [clock, c] = run_heap_.top();
    run_heap_.pop();
    const CoreState& cs = cores_[c];
    if (!cs.sleeping && cs.clock == clock) return c;
  }
  return kNoCore;
}

void Machine::wake_sleepers(Cycle at) {
  for (CoreId c = 0; c < cores_.size(); ++c) {
    CoreState& cs = cores_[c];
    if (cs.sleeping) {
      cs.sleeping = false;
      cs.clock = std::max(cs.clock, at);
      run_heap_.emplace(cs.clock, c);
    }
  }
}

void Machine::taskwait() {
  const Cycle phase_start = main_clock_;
  const bool tr = obs_ != nullptr && obs_->wants(obs::TraceCat::kTask);
  if (tr) {
    obs_->begin(obs::TraceCat::kTask, obs::kPidRuntime, 0, obs_ids_.taskwait,
                phase_start);
  }
  // Open-loop releases are anchored to this phase: a task with release r
  // becomes schedulable at absolute cycle phase_start + r, exactly.
  rt_.set_release_base(phase_start);
  run_heap_ = {};
  for (CoreId c = 0; c < cores_.size(); ++c) {
    cores_[c].clock = phase_start;
    cores_[c].sleeping = false;
    run_heap_.emplace(phase_start, c);
  }
  while (!rt_.all_finished()) {
    const CoreId c = pop_min_clock_core();
    if (c == kNoCore) {
      // Every core is asleep with nothing runnable. Under open-loop
      // arrivals this is an idle gap, not a deadlock: advance the clock to
      // the next release instant and resume there instead of spinning.
      Cycle nr = 0;
      RACCD_ASSERT(rt_.next_release(nr),
                   "deadlock: all cores asleep with unfinished tasks");
      rt_.release_up_to(nr);
      if (release_hook_) release_hook_(rt_.released_count());
      if (tr) {
        obs_->instant(obs::TraceCat::kTask, obs::kPidRuntime, 0,
                      obs_ids_.idle_gap, nr, obs_ids_.released,
                      rt_.released_count());
      }
      wake_sleepers(nr);
      continue;
    }
    // Drain releases due at or before the minimum clock: sleeping cores
    // wake *at the release instant* (possibly earlier than the popped
    // core), so re-pick the global minimum afterwards. One release batch
    // per iteration keeps each wake-up at its own exact instant.
    Cycle due = 0;
    if (rt_.next_release(due) && due <= cores_[c].clock) {
      rt_.release_up_to(due);
      if (release_hook_) release_hook_(rt_.released_count());
      if (tr) {
        obs_->instant(obs::TraceCat::kTask, obs::kPidRuntime, 0,
                      obs_ids_.release, due, obs_ids_.released,
                      rt_.released_count());
      }
      wake_sleepers(due);
      run_heap_.emplace(cores_[c].clock, c);
      continue;
    }
    for (;;) {
      // The stepped core holds the globally minimal clock, so sample times
      // are non-decreasing — the series is a consistent global timeline.
      if (sampler_) sampler_->observe(cores_[c].clock);
      step(c);
      if (cores_[c].sleeping) break;
      // Fast path: keep stepping this core while it provably remains the
      // global minimum, skipping the per-step heap round trip. Strict
      // (clock, id) comparison against the top reproduces the push-then-pop
      // order exactly (a stale top only underestimates its core's clock, so
      // it can only send us down the slow path, never reorder steps).
      // A pending release at or before this clock also exits: the slow
      // path must perform the release before anything steps past it.
      if (!legacy_ && !rt_.all_finished() &&
          (run_heap_.empty() || ClockEntry{cores_[c].clock, c} < run_heap_.top()) &&
          !(rt_.next_release(due) && due <= cores_[c].clock)) {
        continue;
      }
      run_heap_.emplace(cores_[c].clock, c);
      break;
    }
  }
  Cycle end = phase_start;
  for (const auto& cs : cores_) end = std::max(end, cs.clock);
  main_clock_ = end;
  if (tr) {
    obs_->end(obs::TraceCat::kTask, obs::kPidRuntime, 0, obs_ids_.taskwait, end);
  }
}

void Machine::step(CoreId c) {
  CoreState& cs = cores_[c];
  if (cs.current == kNoTask) {
    TaskId t = kNoTask;
    if (!rt_.pop_ready(c, t)) {
      cs.sleeping = true;  // woken by the next task completion
      return;
    }
    cs.clock += cfg_.timing.schedule_cycles;
    schedule_cycles_ += cfg_.timing.schedule_cycles;
    start_task(c, t);
    return;
  }
  if (sampling_on_) {
    sync_phase(cs.phase);
    if (cs.phase == SimPhase::kFfwd && cs.cursor < cs.trace.records().size()) {
      replay_task_ffwd(c);
      return;
    }
  }
  if (cs.cursor < cs.trace.records().size()) {
    replay_record(c);
    return;
  }
  finish_task(c);
}

SimPhase Machine::phase_for(std::uint64_t k) const noexcept {
  const SamplingConfig& sc = cfg_.sampling;
  // window >= period: the whole period is measured — an all-detailed
  // sampled run, bit-exact with detailed simulation (tested).
  if (sc.window >= sc.period) return SimPhase::kMeasured;
  const std::uint64_t kmod = k % sc.period;
  // Rotate the detailed block (warmup prefix + measured window) through the
  // period one slot per window: a fixed slot would alias with any periodic
  // task structure (e.g. alternating compute/copy task classes) and sample
  // only one class, biasing the extrapolation. The block never wraps a
  // period boundary, so warmup still immediately precedes its window.
  // The block ends with a timed cooldown (phase kWarmup, so it is replayed in
  // full but never attributed): without it the window's tail would interleave
  // with fast-forwarded tasks whose accesses occupy no bank or link, and the
  // last measured tasks would see fading contention — on queue-dominated
  // workloads that clips 10%+ off every contention-sensitive metric.
  const std::uint64_t detailed = sc.warmup + sc.window + cooldown_tasks_;
  const std::uint64_t slots = sc.period > detailed ? sc.period - detailed + 1 : 1;
  const std::uint64_t start = (k / sc.period) % slots;
  if (kmod < start) return SimPhase::kFfwd;
  const std::uint64_t rel = kmod - start;
  if (rel < sc.warmup) return SimPhase::kWarmup;
  if (rel < sc.warmup + sc.window) return SimPhase::kMeasured;
  if (rel < detailed) return SimPhase::kWarmup;
  return SimPhase::kFfwd;
}

bool Machine::ffwd_is_near(std::uint64_t k) const noexcept {
  const SamplingConfig& sc = cfg_.sampling;
  const std::uint64_t detailed = sc.warmup + sc.window + cooldown_tasks_;
  const std::uint64_t slots = sc.period > detailed ? sc.period - detailed + 1 : 1;
  const std::uint64_t kmod = k % sc.period;
  const std::uint64_t start = (k / sc.period) % slots;
  // Task starts until the next detailed block (this period's if it is still
  // ahead, else the next period's rotated slot).
  std::uint64_t dist;
  if (kmod < start) {
    dist = start - kmod;
  } else {
    dist = (sc.period - kmod) + ((k / sc.period + 1) % slots);
  }
  return dist <= ffwd_near_tasks_;
}

void Machine::sync_phase(SimPhase p) {
  if (fabric_.phase() == p) return;
  fabric_.set_phase(p);
  if (phase_hook_) phase_hook_(p, task_seq_ / cfg_.sampling.period);
}

void Machine::replay_task_ffwd(CoreId c) {
  CoreState& cs = cores_[c];
  const auto& recs = cs.trace.records();
  std::uint64_t n_acc = 0;
  Cycle gaps = 0;
  double n_miss = 0.0;

  if (cs.ffwd_far && cs.cursor == 0) {
    // Far tier: the task's accesses never touch the fabric — totals come
    // from the trace header, the hit/miss split from the detailed-replay
    // miss rate, and only page-grained classification still advances
    // (PT ownership transitions are sticky and must observe every
    // accessor; the page walk also keeps the TLB warm). Tag, directory and
    // DRAM warming is the near tier's and the warmup prefix's job.
    if (cs.classify) {
      const TaskNode& node = rt_.task(cs.current);
      for (const DepSpec& d : node.deps) {
        if (d.size == 0) continue;
        for (PageNum vp = page_of(d.addr); vp <= page_of(d.addr + d.size - 1);
             ++vp) {
          auto it = std::lower_bound(
              cs.class_memo.begin(), cs.class_memo.end(), vp,
              [](const std::pair<PageNum, bool>& e, PageNum p) { return e.first < p; });
          if (it != cs.class_memo.end() && it->first == vp) continue;
          const auto tr = tlbs_[c].access(vp, mem_.page_table());
          const VAddr va = vp << kPageShift;
          const AccessClass ac =
              cs.classify(c, va, tr.pframe << kPageShift, tr.pframe, cs.clock);
          cs.class_memo.insert(it, {vp, ac.nc});
        }
      }
    }
    n_acc = cs.trace.total_accesses();
    gaps = cs.trace.total_compute();
    const double miss_rate =
        detailed_stall_accesses_ == 0
            ? 0.0
            : static_cast<double>(detailed_misses_) /
                  static_cast<double>(detailed_stall_accesses_);
    n_miss = miss_rate * static_cast<double>(n_acc);
    // The task leaves no L1 footprint, so the mode teardown in finish_task
    // will find nothing to flush — charge the measured per-access teardown
    // rate here instead (clock-only, like the real teardown).
    if (detailed_end_accesses_ > 0) {
      cs.clock += static_cast<Cycle>(
          std::llround(static_cast<double>(detailed_end_cycles_) /
                       static_cast<double>(detailed_end_accesses_) *
                       static_cast<double>(n_acc)));
    }
    cs.cursor = recs.size();
  } else {
    for (; cs.cursor < recs.size(); ++cs.cursor) {
      const AccessRecord& r = recs[cs.cursor];
      gaps += r.compute_gap;
      n_acc += r.repeat;
  
      const PageNum vpage = page_of(r.vaddr);
      if (mem_.lazy_mapping() && !mem_.page_table().mapped(vpage)) {
        mem_.map_on_touch(vpage, fabric_.topology().socket_of(c));
      }
      const auto tr = tlbs_[c].access(vpage, mem_.page_table());
      const PAddr paddr = (tr.pframe << kPageShift) | page_offset(r.vaddr);
      const LineAddr line = line_of(paddr);
  
      bool nc = false;
      if (cs.classify && fabric_.l1(c).find(line) == nullptr) {
        // Batch classification: each page goes through the ClassifierView
        // once per task; later accesses reuse the memoized verdict.
        auto it = std::lower_bound(
            cs.class_memo.begin(), cs.class_memo.end(), vpage,
            [](const std::pair<PageNum, bool>& e, PageNum p) { return e.first < p; });
        if (it == cs.class_memo.end() || it->first != vpage) {
          const AccessClass ac = cs.classify(c, r.vaddr, paddr, tr.pframe, cs.clock);
          it = cs.class_memo.insert(it, {vpage, ac.nc});
        }
        nc = it->second;
      }
      const AccessOutcome out = fabric_.access(c, line, r.is_write != 0, nc, cs.clock);
      if (!out.l1_hit) n_miss += 1.0;
      if (r.repeat > 1) fabric_.count_l1_repeat_hits(r.repeat - 1);
    }
  }
  accesses_replayed_ += n_acc;
  ffwd_accesses_ += n_acc;
  // Time dilation: compute gaps are exact; the near tier also knows the
  // exact L1 hit/miss split (its tags are warm) while the far tier uses the
  // detailed-replay miss rate. Only the mean penalty per miss is estimated,
  // from the *measured* replay so far — measured windows span the whole
  // machine, so the mean includes queueing/contention, while warmup replay
  // right after a fast-forward stretch is deliberately cold and would bias
  // it. The prior before any detailed miss is one LLC round (llc_cycles).
  const double miss_extra =
      detailed_misses_ == 0 ? static_cast<double>(cfg_.fabric.llc_cycles)
                            : static_cast<double>(detailed_miss_extra_) /
                                  static_cast<double>(detailed_misses_);
  const Cycle stall =
      n_acc * cfg_.fabric.l1_hit_cycles +
      static_cast<Cycle>(std::llround(miss_extra * n_miss));
  cs.clock += gaps + stall;
  cs.busy_cycles += gaps + stall;
  adr_.poll(cs.clock);
  finish_task(c);
}

void Machine::start_task(CoreId c, TaskId t) {
  CoreState& cs = cores_[c];
  rt_.start_task(t);
  cs.current = t;
  cs.cursor = 0;
  if (sampling_on_) {
    // Phase schedule off the global task-start counter: deterministic under
    // any scheduler interleaving, and task-aligned so state-warming setup
    // (registration, first-touch) runs under the task's own phase.
    cs.phase = phase_for(task_seq_);
    cs.window_id = task_seq_ / cfg_.sampling.period;
    ++task_seq_;
    switch (cs.phase) {
      case SimPhase::kMeasured: ++measured_tasks_; break;
      case SimPhase::kWarmup: ++warmup_tasks_; break;
      case SimPhase::kFfwd:
        ++ffwd_tasks_;
        cs.class_memo.clear();
        cs.ffwd_far = !ffwd_is_near(task_seq_ - 1);
        break;
    }
    sync_phase(cs.phase);
  }
  TaskNode& node = rt_.task(t);
  if (obs_ != nullptr && obs_->wants(obs::TraceCat::kTask)) {
    obs_->begin(obs::TraceCat::kTask, obs::kPidCores, c,
                node.name.empty() ? obs_ids_.task : obs_->intern(node.name),
                cs.clock);
  }

  // Per-request latency: the chain head carries the release instant; the
  // first task to start (the head, by dep order) opens the service window.
  if (node.request != kNoRequest) {
    if (requests_.size() <= node.request) requests_.resize(node.request + 1);
    RequestLat& rq = requests_[node.request];
    if (node.release > 0) rq.release = rt_.release_base() + node.release;
    if (!rq.started || cs.clock < rq.start) rq.start = cs.clock;
    rq.started = true;
  }

  // First-touch placement: the scheduled core's socket claims the frames of
  // this task's dependence pages before anything translates them (RaCCD's
  // raccd_register below walks these pages through the TLB).
  if (mem_.lazy_mapping()) {
    const std::uint32_t socket = fabric_.topology().socket_of(c);
    for (const DepSpec& d : node.deps) {
      if (d.size == 0) continue;
      for (PageNum vp = page_of(d.addr); vp <= page_of(d.addr + d.size - 1); ++vp) {
        mem_.map_on_touch(vp, socket);
      }
    }
  }

  // Mode-specific setup (e.g. RaCCD's raccd_register per dependence), and
  // the per-access classification hook for this task, resolved once.
  const Cycle setup = backend_->on_task_start(c, node, cs.clock);
  cs.clock += setup;
  register_cycles_ += setup;
  cs.classify = backend_->classifier();

  // Functional execution records the access trace; replay charges timing.
  cs.trace.clear();
  TaskContext ctx(mem_, cs.trace);
  RACCD_ASSERT(node.body != nullptr, "task without a body");
  node.body(ctx);
}

void Machine::replay_record(CoreId c) {
  CoreState& cs = cores_[c];
  const AccessRecord& r = cs.trace.records()[cs.cursor++];
  cs.clock += r.compute_gap;
  cs.busy_cycles += r.compute_gap;
  accesses_replayed_ += r.repeat;

  // Address translation (VIPT-style: only walks cost extra time).
  const PageNum vpage = page_of(r.vaddr);
  if (mem_.lazy_mapping() && !mem_.page_table().mapped(vpage)) {
    // Accesses outside the declared dependence ranges first-touch here.
    mem_.map_on_touch(vpage, fabric_.topology().socket_of(c));
  }
  const auto tr = tlbs_[c].access(vpage, mem_.page_table());
  Cycle extra = 0;
  if (!tr.hit) extra += cfg_.timing.tlb_walk_cycles;
  const PAddr paddr = (tr.pframe << kPageShift) | page_offset(r.vaddr);
  const LineAddr line = line_of(paddr);

  // Classify the request on an L1 miss through the backend's cached view
  // (NCRT lookup / PT page class / always-NC; null view = always coherent).
  bool nc = false;
  const bool l1_resident = fabric_.l1(c).find(line) != nullptr;
  if (!l1_resident && cs.classify) {
    const AccessClass ac = cs.classify(c, r.vaddr, paddr, tr.pframe, cs.clock + extra);
    extra += ac.extra_cycles;
    nc = ac.nc;
  }

  // Per-window attribution (sampled runs): counter deltas around this
  // access land in the core's own window bucket, so concurrently running
  // tasks from neighboring windows never pollute each other's rates.
  std::uint64_t d0 = 0, h0 = 0, f0 = 0, fh0 = 0, rh0 = 0, rm0 = 0, rc0 = 0;
  const bool attribute = sampling_on_ && cs.phase == SimPhase::kMeasured;
  if (attribute) {
    const FabricStats& f = fabric_.stats();
    const NocStats& n = fabric_.mesh().stats();
    d0 = f.dir_accesses;
    h0 = f.llc_hits;
    rh0 = f.dram_row_hits;
    rm0 = f.dram_row_misses;
    rc0 = f.dram_row_conflicts;
    f0 = n.total_flits();
    fh0 = n.total_flit_hops();
  }

  const AccessOutcome out = fabric_.access(c, line, r.is_write != 0, nc, cs.clock + extra);
  Cycle stall = out.latency;
  if (!out.l1_hit && cfg_.timing.miss_overlap > 1.0) {
    const Cycle l1h = cfg_.fabric.l1_hit_cycles;
    stall = l1h + static_cast<Cycle>(static_cast<double>(out.latency - l1h) /
                                     cfg_.timing.miss_overlap);
  }
  Cycle total = extra + stall;
  if (r.repeat > 1) {
    fabric_.count_l1_repeat_hits(r.repeat - 1);
    total += static_cast<Cycle>(r.repeat - 1) * cfg_.fabric.l1_hit_cycles;
  }
  cs.clock += total;
  cs.busy_cycles += total;
  if (sampling_on_) {
    // The dilation estimator learns only from *measured* replay: warmup
    // tasks right after a fast-forward stretch are deliberately cold (that
    // is the bias warmup absorbs), and their compulsory-miss storms would
    // inflate both the miss rate and the mean miss penalty.
    if (attribute) {
      detailed_stall_cycles_ += total;
      detailed_stall_accesses_ += r.repeat;
      if (!out.l1_hit) {
        ++detailed_misses_;
        const Cycle l1h = cfg_.fabric.l1_hit_cycles;
        detailed_miss_extra_ += extra + stall > l1h ? extra + stall - l1h : 0;
      }
      if (windows_.size() <= cs.window_id) windows_.resize(cs.window_id + 1);
      WindowBucket& w = windows_[cs.window_id];
      measured_accesses_ += r.repeat;
      w.accesses += r.repeat;
      w.stall_cycles += total;
      const FabricStats& f = fabric_.stats();
      const NocStats& n = fabric_.mesh().stats();
      w.dir_accesses += f.dir_accesses - d0;
      w.llc_hits += f.llc_hits - h0;
      w.dram_row_hits += f.dram_row_hits - rh0;
      w.dram_row_misses += f.dram_row_misses - rm0;
      w.dram_row_conflicts += f.dram_row_conflicts - rc0;
      w.noc_flits += n.total_flits() - f0;
      w.noc_flit_hops += n.total_flit_hops() - fh0;
    }
  }
  adr_.poll(cs.clock);
}

void Machine::finish_task(CoreId c) {
  CoreState& cs = cores_[c];
  if (trace_sink_) trace_sink_(rt_.task(cs.current), cs.trace);
  const Cycle trailing = cs.trace.trailing_compute();
  cs.clock += trailing;
  cs.busy_cycles += trailing;

  // Mode-specific teardown (RaCCD: NCRT clear + NC-line flush; WbNC:
  // whole-L1 writeback flush). Costs block the finishing core.
  const TaskEndOutcome teardown = backend_->on_task_end(c, cs.clock);
  cs.clock += teardown.cycles;
  invalidate_cycles_ += teardown.cycles;
  flushed_nc_lines_ += teardown.flushed_lines;
  flushed_nc_wbs_ += teardown.flushed_wbs;
  if (obs_ != nullptr && obs_->wants(obs::TraceCat::kCoh) &&
      (teardown.flushed_lines > 0 || teardown.flushed_wbs > 0)) {
    // Invalidation burst: the mode's end-of-task NC flush / writeback storm.
    obs_->instant(obs::TraceCat::kCoh, obs::kPidCoherence, c, obs_ids_.flush,
                  cs.clock, obs_ids_.lines, teardown.flushed_lines,
                  obs_ids_.wbs, teardown.flushed_wbs);
  }
  if (sampling_on_ && cs.phase == SimPhase::kMeasured) {
    detailed_end_cycles_ += teardown.cycles;
    detailed_end_accesses_ += cs.trace.total_accesses();
  }

  adr_.poll_all(cs.clock);

  if (sampling_on_ && cs.phase == SimPhase::kMeasured) {
    // Occupancy is a level, not a rate: sample the instantaneous directory
    // occupancy at each measured task's end and CI the per-window means.
    if (windows_.size() <= cs.window_id) windows_.resize(cs.window_id + 1);
    WindowBucket& w = windows_[cs.window_id];
    double occ = 0.0;
    for (BankId b = 0; b < cfg_.fabric.cores; ++b) {
      const auto& d = fabric_.dir(b);
      occ += static_cast<double>(d.valid_entries()) /
             (static_cast<double>(d.total_sets()) * d.ways());
    }
    w.occ_sum += occ / cfg_.fabric.cores;
    ++w.occ_samples;
  }

  // Per-request latency: the chain's last task to finish closes the
  // request. Recorded after teardown (the mode's end-of-task flush is part
  // of serving the request) but before the wake-up edges below.
  {
    const TaskNode& node = rt_.task(cs.current);
    if (node.request != kNoRequest && node.request < requests_.size()) {
      RequestLat& rq = requests_[node.request];
      if (cs.clock > rq.end) rq.end = cs.clock;
    }
  }

  // Wake-up phase (paper Fig. 3): notify dependent tasks.
  std::uint32_t resolved = 0;
  const TaskId finished = cs.current;
  const bool new_ready = rt_.finish_task(cs.current, c, resolved);
  const Cycle wake_cost = cfg_.timing.wakeup_per_edge_cycles * resolved;
  cs.clock += wake_cost;
  wakeup_cycles_ += wake_cost;
  cs.current = kNoTask;
  if (obs_ != nullptr) {
    if (obs_->wants(obs::TraceCat::kTask)) {
      const TaskNode& node = rt_.task(finished);
      obs_->end(obs::TraceCat::kTask, obs::kPidCores, c,
                node.name.empty() ? obs_ids_.task : obs_->intern(node.name),
                cs.clock);
    }
    if (obs_->wants(obs::TraceCat::kNoc)) {
      // Cumulative flit counter, sampled at every task end: a step curve of
      // total mesh traffic over simulated time.
      obs_->counter(obs::TraceCat::kNoc, obs::kPidNoc, 0, obs_ids_.noc_flits,
                    cs.clock, fabric_.mesh().stats().total_flits());
    }
  }
  if (new_ready) wake_sleepers(cs.clock);
}

void Machine::snapshot_stats(Cycle at, SimStats& s) const {
  // Fills a default-constructed SimStats with the machine's state as of
  // `at`. Counters are exact; the occupancy fields are *instantaneous*
  // (valid entries vs capacity, powered sets vs total right now) — the
  // quantity a Fig. 8-style occupancy-over-time trace plots. collect()
  // overwrites them with the run's time-weighted averages.
  s.mode = cfg_.mode;
  s.dir_ratio = cfg_.dir_ratio();
  s.adr_enabled = cfg_.adr.enabled;
  s.cycles = at;
  for (const auto& cs : cores_) s.busy_cycles += cs.busy_cycles;
  s.core_utilization = at == 0 ? 0.0
                               : static_cast<double>(s.busy_cycles) /
                                     (static_cast<double>(at) * cores_.size());
  s.fabric = fabric_.stats();
  s.noc = fabric_.mesh().stats();
  backend_->accumulate(s);  // mode-private stats (NCRT, PT classifier)
  for (const auto& tlb : tlbs_) {
    const TlbStats& t = tlb.stats();
    s.tlb.lookups += t.lookups;
    s.tlb.hits += t.hits;
    s.tlb.misses += t.misses;
    s.tlb.shootdowns += t.shootdowns;
    s.tlb.evictions += t.evictions;
  }
  s.adr = adr_.stats();
  s.tasks = rt_.stats().tasks_created;
  s.edges = rt_.stats().edges;
  s.accesses_replayed = accesses_replayed_;
  s.create_cycles = create_cycles_;
  s.schedule_cycles = schedule_cycles_;
  s.wakeup_cycles = wakeup_cycles_;
  s.register_cycles = register_cycles_;
  s.invalidate_cycles = invalidate_cycles_;
  s.flushed_nc_lines = flushed_nc_lines_;
  s.flushed_nc_wbs = flushed_nc_wbs_;
  s.blocks_touched = fabric_.classifier().touched_blocks();
  s.blocks_noncoherent = fabric_.classifier().noncoherent_blocks();
  s.noncoherent_block_fraction = fabric_.classifier().noncoherent_fraction();
  double occ_sum = 0.0, active_sum = 0.0;
  for (BankId b = 0; b < cfg_.fabric.cores; ++b) {
    const auto& d = fabric_.dir(b);
    occ_sum += static_cast<double>(d.valid_entries()) /
               (static_cast<double>(d.total_sets()) * d.ways());
    active_sum += static_cast<double>(d.active_sets()) / d.total_sets();
  }
  s.avg_dir_occupancy = occ_sum / cfg_.fabric.cores;
  s.avg_dir_active_frac = active_sum / cfg_.fabric.cores;
  s.dir_dyn_energy_pj = s.fabric.e_dir_pj;
  s.llc_dyn_energy_pj = s.fabric.e_llc_pj;
  s.noc_dyn_energy_pj = s.fabric.e_noc_pj;
  s.mem_dyn_energy_pj = s.fabric.e_mem_pj;
  s.l1_dyn_energy_pj = s.fabric.e_l1_pj;
  // Leakage over the powered entry-cycles accumulated so far.
  double leak = 0.0;
  for (BankId b = 0; b < cfg_.fabric.cores; ++b) {
    const double entry_cycles = fabric_.dir(b).active_integral();
    leak += fabric_.energy().dir_leakage_pj(1, 1) * entry_cycles;
  }
  s.dir_leak_energy_pj = leak;
}

SimStats Machine::collect() {
  RACCD_ASSERT(!collected_, "collect() must be called once");
  RACCD_ASSERT(rt_.all_finished(), "collect() before all tasks finished");
  collected_ = true;
  // Finalize before the last series point so integral-derived metrics
  // (e.g. energy.dir_leak_pj) include the tail window up to main_clock_.
  fabric_.finalize(main_clock_);
  if (sampler_) sampler_->finish(main_clock_);

  SimStats s;
  snapshot_stats(main_clock_, s);
  // End-of-run reports use the time-weighted averages (paper Fig. 8's
  // per-app numbers), not the final instantaneous occupancy.
  s.avg_dir_occupancy = fabric_.avg_dir_occupancy(main_clock_);
  s.avg_dir_active_frac = 0.0;
  if (main_clock_ > 0) {
    double active_sum = 0.0;
    for (BankId b = 0; b < cfg_.fabric.cores; ++b) {
      const auto& d = fabric_.dir(b);
      const double cap = static_cast<double>(d.total_sets()) * d.ways();
      active_sum += d.active_integral() / (static_cast<double>(main_clock_) * cap);
    }
    s.avg_dir_active_frac = active_sum / cfg_.fabric.cores;
  }
  if (sampling_on_) apply_sampling(s);

  // Open-loop service runs: summarize the per-request latency components.
  // Queueing = release -> first task start (scheduling delay under load),
  // service = first start -> last end, end-to-end = release -> last end.
  if (!requests_.empty()) {
    Histogram queueing, service, e2e;
    for (const RequestLat& rq : requests_) {
      if (!rq.started) continue;
      queueing.add(rq.start > rq.release ? rq.start - rq.release : 0);
      service.add(rq.end > rq.start ? rq.end - rq.start : 0);
      e2e.add(rq.end > rq.release ? rq.end - rq.release : 0);
    }
    s.service.requests = e2e.count();
    // Empty distributions summarize to NaN (emitted as JSON null); a service
    // run where no request ever started keeps the all-zero default payload
    // so empty-request stats stay byte-identical with requests == 0 gating.
    if (e2e.count() > 0) {
      s.service.queueing = queueing.summary();
      s.service.service = service.summary();
      s.service.e2e = e2e.summary();
    }
    emit_request_spans();
  }
  return s;
}

void Machine::emit_request_spans() {
  // Post-hoc service lifecycle spans: one track per request id, queueing
  // span [release, start], service span [start, end], respond instant at
  // end. Emitted from the recorded RequestLat table after the run — the
  // hot path never pays for per-request bookkeeping beyond what the
  // latency histograms already need.
  if (obs_ == nullptr || !obs_->wants(obs::TraceCat::kSvc)) return;
  for (std::size_t r = 0; r < requests_.size(); ++r) {
    const RequestLat& rq = requests_[r];
    if (!rq.started) continue;
    const std::uint32_t tid = static_cast<std::uint32_t>(r);
    const Cycle start = std::max(rq.start, rq.release);
    const Cycle end = std::max(rq.end, start);
    obs_->begin(obs::TraceCat::kSvc, obs::kPidService, tid, obs_ids_.queueing,
                rq.release);
    obs_->end(obs::TraceCat::kSvc, obs::kPidService, tid, obs_ids_.queueing,
              start);
    obs_->begin(obs::TraceCat::kSvc, obs::kPidService, tid, obs_ids_.service,
                start);
    obs_->end(obs::TraceCat::kSvc, obs::kPidService, tid, obs_ids_.service, end);
    obs_->instant(obs::TraceCat::kSvc, obs::kPidService, tid, obs_ids_.respond,
                  end);
  }
}

void Machine::apply_sampling(SimStats& s) const {
  SamplingStats& sp = s.sampling;
  sp.active = 1;
  sp.measured_tasks = measured_tasks_;
  sp.warmup_tasks = warmup_tasks_;
  sp.ffwd_tasks = ffwd_tasks_;
  sp.measured_accesses = measured_accesses_;
  sp.ffwd_accesses = ffwd_accesses_;
  for (const WindowBucket& w : windows_) {
    if (w.accesses > 0) ++sp.windows;
  }
  // window >= period degenerates to an all-detailed run: every task is
  // measured, the measured bucket already holds exact totals — leave
  // everything (scale 1, zero CIs). Warmup-phase tasks disqualify the
  // shortcut: their events live outside the measured bucket and must be
  // covered by extrapolation (small periods can be all warmup + cooldown).
  if (ffwd_tasks_ == 0 && warmup_tasks_ == 0) return;
  if (measured_accesses_ == 0) {
    // Degenerate schedule with nothing measured (e.g. fewer tasks than the
    // warmup prefix): report every observed event unscaled rather than zero.
    s.fabric.add(fabric_.warm_stats());
    s.fabric.add(fabric_.ffwd_stats());
    s.noc.add(fabric_.noc_scratch_stats());
  } else {
    const double scale = static_cast<double>(accesses_replayed_) /
                         static_cast<double>(measured_accesses_);
    sp.scale = scale;
    s.fabric = scaled(fabric_.stats(), scale);
    s.noc = scaled(fabric_.mesh().stats(), scale);

    // Per-window measured rates; their spread prices the extrapolation. CI on
    // a counter total = CI(mean rate) x the extrapolated (unmeasured) access
    // count; level metrics (row-hit rate, occupancy) take CI(mean) directly.
    std::vector<double> r_stall, r_dir, r_llc, r_flits, r_hops, r_rowhit, r_rowrate,
        r_occ;
    for (const WindowBucket& w : windows_) {
      if (w.accesses == 0) continue;
      const double a = static_cast<double>(w.accesses);
      r_stall.push_back(static_cast<double>(w.stall_cycles) / a);
      r_dir.push_back(static_cast<double>(w.dir_accesses) / a);
      r_llc.push_back(static_cast<double>(w.llc_hits) / a);
      r_flits.push_back(static_cast<double>(w.noc_flits) / a);
      r_hops.push_back(static_cast<double>(w.noc_flit_hops) / a);
      r_rowhit.push_back(static_cast<double>(w.dram_row_hits) / a);
      const std::uint64_t rows =
          w.dram_row_hits + w.dram_row_misses + w.dram_row_conflicts;
      if (rows > 0) {
        r_rowrate.push_back(static_cast<double>(w.dram_row_hits) /
                            static_cast<double>(rows));
      }
      if (w.occ_samples > 0) {
        r_occ.push_back(w.occ_sum / static_cast<double>(w.occ_samples));
      }
    }
    const double extrapolated =
        static_cast<double>(accesses_replayed_ - measured_accesses_);
    sp.cycles_ci95 = ci95_half_width(r_stall) * extrapolated;
    sp.dir_accesses_ci95 = ci95_half_width(r_dir) * extrapolated;
    sp.llc_hits_ci95 = ci95_half_width(r_llc) * extrapolated;
    sp.noc_flits_ci95 = ci95_half_width(r_flits) * extrapolated;
    sp.noc_flit_hops_ci95 = ci95_half_width(r_hops) * extrapolated;
    sp.dram_row_hits_ci95 = ci95_half_width(r_rowhit) * extrapolated;
    sp.dram_row_hit_rate_ci95 = ci95_half_width(r_rowrate);
    sp.dir_occupancy_ci95 = ci95_half_width(r_occ);
  }
  // Re-derive the energy roll-ups from the extrapolated fabric bucket
  // (leakage stays exact: it integrates state over the dilated timeline).
  s.dir_dyn_energy_pj = s.fabric.e_dir_pj;
  s.llc_dyn_energy_pj = s.fabric.e_llc_pj;
  s.noc_dyn_energy_pj = s.fabric.e_noc_pj;
  s.mem_dyn_energy_pj = s.fabric.e_mem_pj;
  s.l1_dyn_energy_pj = s.fabric.e_l1_pj;
}

}  // namespace raccd
