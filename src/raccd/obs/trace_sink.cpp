#include "raccd/obs/trace_sink.hpp"

#include <algorithm>
#include <cstdio>

#include "raccd/common/format.hpp"

namespace raccd::obs {

const char* to_string(TraceCat c) noexcept {
  switch (c) {
    case TraceCat::kTask: return "task";
    case TraceCat::kCoh: return "coh";
    case TraceCat::kDram: return "dram";
    case TraceCat::kSvc: return "svc";
    case TraceCat::kNoc: return "noc";
  }
  return "?";
}

std::uint32_t parse_trace_filter(std::string_view filter, std::string* error) {
  std::uint32_t mask = 0;
  bool none_seen = false;
  std::size_t pos = 0;
  while (pos <= filter.size()) {
    const std::size_t comma = filter.find(',', pos);
    const std::string_view tok = filter.substr(
        pos, (comma == std::string_view::npos ? filter.size() : comma) - pos);
    pos = (comma == std::string_view::npos) ? filter.size() + 1 : comma + 1;
    if (tok.empty()) continue;
    if (tok == "all") {
      mask |= kAllCats;
      continue;
    }
    // "none" arms the sink with every category off — the sites' wants()
    // checks all run but nothing records (the overhead-gate A/B arm).
    if (tok == "none") {
      none_seen = true;
      continue;
    }
    bool known = false;
    for (std::uint32_t c = 0; c < kCatCount; ++c) {
      if (tok == to_string(static_cast<TraceCat>(c))) {
        mask |= 1u << c;
        known = true;
        break;
      }
    }
    if (!known) {
      if (error != nullptr) {
        *error = strprintf(
            "unknown trace category '%.*s' (know: task,coh,dram,svc,noc,all,none)",
            static_cast<int>(tok.size()), tok.data());
      }
      return 0;
    }
  }
  if (mask == 0 && !none_seen && error != nullptr) *error = "empty trace filter";
  return mask;
}

TraceSink::TraceSink(TraceConfig cfg) : cfg_(cfg) {
  // Reserve modestly: tiny traced runs should not pre-commit the full cap.
  events_.reserve(std::min<std::size_t>(cfg_.max_events, 4096));
  names_.reserve(64);
}

NameId TraceSink::intern(std::string_view name) {
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  // 16-bit id space (minus the kNoName sentinel): past the cap, collapse to
  // one shared placeholder so hot paths never observe a failed intern.
  if (names_.size() >= static_cast<std::size_t>(kNoName) - 1) {
    if (overflow_name_ == kNoName) {
      overflow_name_ = static_cast<NameId>(names_.size());
      names_.push_back("<interned-overflow>");
    }
    return overflow_name_;
  }
  const NameId id = static_cast<NameId>(names_.size());
  names_.push_back(std::string(name));
  name_ids_.emplace(names_.back(), id);
  return id;
}

const std::string& TraceSink::name_of(NameId id) const {
  static const std::string unknown = "<unknown>";
  return id < names_.size() ? names_[id] : unknown;
}

bool TraceSink::admit(TraceCat cat) noexcept {
  // Backstop for the sites' wants() pre-check: filtered-out categories are
  // refused silently — they were never wanted, so they don't count as drops.
  if (!wants(cat)) return false;
  if (events_.size() < cfg_.max_events) return true;
  ++drops_[static_cast<unsigned>(cat)];
  return false;
}

void TraceSink::begin(TraceCat cat, std::uint8_t pid, std::uint32_t tid,
                      NameId name, std::uint64_t ts) {
  if (!admit(cat)) return;
  TraceEvent e;
  e.ts = ts;
  e.tid = tid;
  e.name = name;
  e.pid = pid;
  e.ph = 'B';
  e.cat = static_cast<std::uint8_t>(cat);
  events_.push_back(e);
}

void TraceSink::end(TraceCat cat, std::uint8_t pid, std::uint32_t tid,
                    NameId name, std::uint64_t ts) {
  if (!admit(cat)) return;
  TraceEvent e;
  e.ts = ts;
  e.tid = tid;
  e.name = name;
  e.pid = pid;
  e.ph = 'E';
  e.cat = static_cast<std::uint8_t>(cat);
  events_.push_back(e);
}

void TraceSink::complete(TraceCat cat, std::uint8_t pid, std::uint32_t tid,
                         NameId name, std::uint64_t ts, std::uint64_t dur,
                         NameId k0, std::uint64_t a0, NameId k1,
                         std::uint64_t a1) {
  if (!admit(cat)) return;
  TraceEvent e;
  e.ts = ts;
  e.dur = dur;
  e.a0 = a0;
  e.a1 = a1;
  e.tid = tid;
  e.name = name;
  e.k0 = k0;
  e.k1 = k1;
  e.pid = pid;
  e.ph = 'X';
  e.cat = static_cast<std::uint8_t>(cat);
  events_.push_back(e);
}

void TraceSink::instant(TraceCat cat, std::uint8_t pid, std::uint32_t tid,
                        NameId name, std::uint64_t ts, NameId k0,
                        std::uint64_t a0, NameId k1, std::uint64_t a1) {
  if (!admit(cat)) return;
  TraceEvent e;
  e.ts = ts;
  e.a0 = a0;
  e.a1 = a1;
  e.tid = tid;
  e.name = name;
  e.k0 = k0;
  e.k1 = k1;
  e.pid = pid;
  e.ph = 'i';
  e.cat = static_cast<std::uint8_t>(cat);
  events_.push_back(e);
}

void TraceSink::counter(TraceCat cat, std::uint8_t pid, std::uint32_t tid,
                        NameId name, std::uint64_t ts, std::uint64_t value) {
  if (!admit(cat)) return;
  TraceEvent e;
  e.ts = ts;
  e.a0 = value;
  e.tid = tid;
  e.name = name;
  e.pid = pid;
  e.ph = 'C';
  e.cat = static_cast<std::uint8_t>(cat);
  events_.push_back(e);
}

void TraceSink::set_process_name(std::uint8_t pid, std::string_view name) {
  process_names_.emplace_back(pid, std::string(name));
}

void TraceSink::set_thread_name(std::uint8_t pid, std::uint32_t tid,
                                std::string_view name) {
  thread_names_.emplace_back(std::make_pair(pid, tid), std::string(name));
}

std::uint64_t TraceSink::dropped_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t d : drops_) total += d;
  return total;
}

namespace {

void append_json_string(std::string& out, std::string_view in) {
  out += '"';
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string TraceSink::to_json() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    out += strprintf(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
        "\"args\":{\"name\":",
        static_cast<unsigned>(pid));
    append_json_string(out, name);
    out += "}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    out += strprintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
        "\"args\":{\"name\":",
        static_cast<unsigned>(key.first), static_cast<unsigned>(key.second));
    append_json_string(out, name);
    out += "}}";
  }
  for (const TraceEvent& e : events_) {
    sep();
    out += "{\"name\":";
    append_json_string(out, name_of(e.name));
    out += strprintf(",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%llu,\"pid\":%u,\"tid\":%u",
                     to_string(static_cast<TraceCat>(e.cat)), e.ph,
                     static_cast<unsigned long long>(e.ts),
                     static_cast<unsigned>(e.pid), static_cast<unsigned>(e.tid));
    if (e.ph == 'X') {
      out += strprintf(",\"dur\":%llu", static_cast<unsigned long long>(e.dur));
    }
    if (e.ph == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    if (e.ph == 'C') {
      out += strprintf(",\"args\":{\"value\":%llu}",
                       static_cast<unsigned long long>(e.a0));
    } else if (e.k0 != kNoName || e.k1 != kNoName) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (e.k0 != kNoName) {
        append_json_string(out, name_of(e.k0));
        out += strprintf(":%llu", static_cast<unsigned long long>(e.a0));
        first_arg = false;
      }
      if (e.k1 != kNoName) {
        if (!first_arg) out += ',';
        append_json_string(out, name_of(e.k1));
        out += strprintf(":%llu", static_cast<unsigned long long>(e.a1));
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\",\n\"raccd\":{";
  out += strprintf("\"events\":%llu,\"dropped_total\":%llu",
                   static_cast<unsigned long long>(events_.size()),
                   static_cast<unsigned long long>(dropped_total()));
  for (std::uint32_t c = 0; c < kCatCount; ++c) {
    out += strprintf(",\"dropped_%s\":%llu", to_string(static_cast<TraceCat>(c)),
                     static_cast<unsigned long long>(drops_[c]));
  }
  out += "}}\n";
  return out;
}

bool TraceSink::write_json(const std::string& path) const {
  const std::string body = to_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace raccd::obs
