#include <gtest/gtest.h>

#include "raccd/energy/area_model.hpp"
#include "raccd/energy/energy_model.hpp"

namespace raccd {
namespace {

TEST(EnergyModel, DirEnergyScalesWithSqrtOfSize) {
  EnergyModel e;
  const double full = e.dir_access_pj(32768);
  EXPECT_DOUBLE_EQ(full, 20.0);  // reference point
  EXPECT_NEAR(e.dir_access_pj(8192), full / 2.0, 1e-9);   // 4x smaller -> /2
  EXPECT_NEAR(e.dir_access_pj(512), full / 8.0, 1e-9);    // 64x smaller -> /8
  EXPECT_DOUBLE_EQ(e.dir_access_pj(0), 0.0);
}

TEST(EnergyModel, MonotoneInActiveSize) {
  EnergyModel e;
  double prev = 0.0;
  for (std::uint32_t n = 64; n <= 32768; n *= 2) {
    const double cur = e.dir_access_pj(n);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(EnergyModel, Leakage) {
  EnergyModel e;
  // 1 entry for 1e9 cycles at 1 GHz = 1 s -> 132 pW * 1 s = 132 pJ.
  EXPECT_NEAR(e.dir_leakage_pj(1, 1000000000ull), 132.0, 1e-6);
  EXPECT_DOUBLE_EQ(e.dir_leakage_pj(0, 12345), 0.0);
}

TEST(AreaModel, EntryStorageMatchesPaper) {
  // Paper Table III: 524288 entries x 66 bits = 4224 KB.
  EXPECT_DOUBLE_EQ(AreaModel::directory_kb(524288), 4224.0);
  EXPECT_DOUBLE_EQ(AreaModel::directory_kb(524288 / 256), 16.5);
}

TEST(AreaModel, AnchorsReproduceTableIII) {
  const struct {
    std::uint64_t entries;
    double kb;
    double mm2;
  } rows[] = {
      {524288, 4224.0, 106.08}, {262144, 2112.0, 53.92}, {131072, 1056.0, 34.08},
      {65536, 528.0, 21.28},    {32768, 264.0, 14.88},   {8192, 66.0, 6.18},
      {2048, 16.5, 2.64},
  };
  for (const auto& r : rows) {
    const DirStorage s = AreaModel::directory_storage(r.entries);
    EXPECT_DOUBLE_EQ(s.kilobytes, r.kb);
    EXPECT_NEAR(s.area_mm2, r.mm2, 1e-9) << r.entries;
  }
}

TEST(AreaModel, InterpolationIsMonotone) {
  double prev = 0.0;
  for (std::uint64_t e = 1024; e <= 1048576; e *= 2) {
    const double a = AreaModel::directory_storage(e).area_mm2;
    EXPECT_GT(a, prev);
    prev = a;
  }
}

}  // namespace
}  // namespace raccd
