#include "raccd/energy/energy_model.hpp"

#include <cmath>

namespace raccd {

double EnergyModel::dir_access_pj(std::uint32_t active_entries) const noexcept {
  if (active_entries == 0) return 0.0;
  return cfg_.dir_ref_pj *
         std::pow(static_cast<double>(active_entries) / cfg_.dir_ref_entries,
                  cfg_.size_exponent);
}

double EnergyModel::llc_access_pj(std::uint32_t lines_per_bank) const noexcept {
  if (lines_per_bank == 0) return 0.0;
  return cfg_.llc_ref_pj *
         std::pow(static_cast<double>(lines_per_bank) / cfg_.llc_ref_lines,
                  cfg_.size_exponent);
}

double EnergyModel::dir_leakage_pj(std::uint64_t active_entries, std::uint64_t cycles,
                                   double ghz) const noexcept {
  // pW * cycles / (GHz * 1e9 cycles/s) = pJ * 1e-9; fold the 1e-9 in.
  const double seconds = static_cast<double>(cycles) / (ghz * 1e9);
  return cfg_.dir_leak_pw_per_entry * static_cast<double>(active_entries) * seconds;
}

}  // namespace raccd
