// Coherence operating modes (the systems compared by the paper, plus one
// software-coherence baseline).
//
//  * kFullCoh — every request is coherent; the sparse directory tracks all
//    cached lines (the paper's hardware-coherence baseline).
//  * kPT      — OS page-table private/shared classification (Cuesta et al.,
//    ISCA'11): first-touch-private pages go non-coherent until another core
//    touches them.
//  * kRaCCD   — runtime-assisted coherence deactivation: the task runtime
//    registers dependence regions in the per-core NCRT and flushes
//    non-coherent lines at task end (the paper's contribution).
//  * kWbNC    — writeback-non-coherent software coherence: *every* request
//    bypasses the directory and the runtime flushes the whole L1 at task
//    boundaries, as task-parallel runtimes for non-coherent machines do
//    (BDDT-SCC, Labrineas et al.). A lower bound on directory pressure and
//    an upper bound on task-boundary flush cost.
//
// This header is the bottom of the modes layer: it must stay free of
// sim/coherence includes so stats-only consumers can name a mode without
// pulling in the machine model.
#pragma once

#include <array>
#include <cstdint>

namespace raccd {

enum class CohMode : std::uint8_t { kFullCoh = 0, kPT, kRaCCD, kWbNC };

/// The paper's three systems (Fig. 2/6/7/8 compare exactly these).
inline constexpr std::array<CohMode, 3> kAllModes{CohMode::kFullCoh, CohMode::kPT,
                                                  CohMode::kRaCCD};

/// Every implemented backend, including the software-coherence baseline.
inline constexpr std::array<CohMode, 4> kAllBackends{CohMode::kFullCoh, CohMode::kPT,
                                                     CohMode::kRaCCD, CohMode::kWbNC};

[[nodiscard]] constexpr const char* to_string(CohMode m) noexcept {
  switch (m) {
    case CohMode::kFullCoh: return "FullCoh";
    case CohMode::kPT: return "PT";
    case CohMode::kRaCCD: return "RaCCD";
    case CohMode::kWbNC: return "WbNC";
  }
  return "?";
}

}  // namespace raccd
