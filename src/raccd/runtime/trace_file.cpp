#include "raccd/runtime/trace_file.hpp"

#include <cstdio>
#include <sstream>

#include "raccd/common/format.hpp"

namespace raccd {
namespace {

[[nodiscard]] const char* dep_kind_text(DepKind k) noexcept { return to_string(k); }

[[nodiscard]] bool parse_dep_kind(const std::string& text, DepKind& out) {
  if (text == "in") out = DepKind::kIn;
  else if (text == "out") out = DepKind::kOut;
  else if (text == "inout") out = DepKind::kInout;
  else return false;
  return true;
}

}  // namespace

std::string TraceFile::to_text() const {
  std::string out = "raccd-trace 1\n";
  for (const TraceRegion& r : regions) {
    out += strprintf("region %s %llu\n", r.name.c_str(),
                     static_cast<unsigned long long>(r.bytes));
  }
  for (const TraceTask& t : tasks) {
    out += strprintf("task %s\n", t.name.empty() ? "-" : t.name.c_str());
    for (const TraceDep& d : t.deps) {
      out += strprintf("dep %s %u %llu %llu\n", dep_kind_text(d.kind), d.region,
                       static_cast<unsigned long long>(d.offset),
                       static_cast<unsigned long long>(d.size));
    }
    for (const TraceAccess& a : t.accesses) {
      out += strprintf("a %c %u %llu %u %u %llu\n", a.is_write ? 'w' : 'r', a.region,
                       static_cast<unsigned long long>(a.offset), a.size, a.repeat,
                       static_cast<unsigned long long>(a.compute_gap));
    }
    if (t.trailing_compute > 0) {
      out += strprintf("tc %llu\n", static_cast<unsigned long long>(t.trailing_compute));
    }
    out += "end\n";
  }
  return out;
}

std::string TraceFile::from_text(const std::string& text, TraceFile& out) {
  out = TraceFile{};
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  bool seen_magic = false;
  TraceTask* cur = nullptr;
  const auto err = [&lineno](const char* what) {
    return strprintf("trace line %zu: %s", lineno, what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (!seen_magic) {
      unsigned version = 0;
      if (word != "raccd-trace" || !(ls >> version) || version != 1) {
        return err("expected header 'raccd-trace 1'");
      }
      seen_magic = true;
      continue;
    }
    if (word == "region") {
      if (cur != nullptr) return err("'region' inside a task");
      TraceRegion r;
      if (!(ls >> r.name >> r.bytes) || r.bytes == 0) return err("bad region line");
      out.regions.push_back(std::move(r));
    } else if (word == "task") {
      if (cur != nullptr) return err("missing 'end' before 'task'");
      TraceTask t;
      ls >> t.name;
      if (t.name == "-") t.name.clear();
      out.tasks.push_back(std::move(t));
      cur = &out.tasks.back();
    } else if (word == "dep") {
      if (cur == nullptr) return err("'dep' outside a task");
      TraceDep d;
      std::string kind;
      if (!(ls >> kind >> d.region >> d.offset >> d.size) ||
          !parse_dep_kind(kind, d.kind)) {
        return err("bad dep line");
      }
      if (d.region >= out.regions.size()) return err("dep region index out of range");
      const std::uint64_t dregion_bytes = out.regions[d.region].bytes;
      if (d.offset > dregion_bytes || d.size > dregion_bytes - d.offset) {
        return err("dep range exceeds region");
      }
      cur->deps.push_back(d);
    } else if (word == "a") {
      if (cur == nullptr) return err("'a' outside a task");
      TraceAccess a;
      std::string rw;
      if (!(ls >> rw >> a.region >> a.offset >> a.size >> a.repeat >> a.compute_gap) ||
          (rw != "r" && rw != "w")) {
        return err("bad access line");
      }
      a.is_write = rw == "w";
      if (a.region >= out.regions.size()) return err("access region index out of range");
      if (a.size != 1 && a.size != 2 && a.size != 4 && a.size != 8) {
        return err("access size must be 1, 2, 4 or 8");
      }
      if (a.offset % a.size != 0) return err("access offset not size-aligned");
      const std::uint64_t aregion_bytes = out.regions[a.region].bytes;
      if (a.offset > aregion_bytes || a.size > aregion_bytes - a.offset) {
        return err("access exceeds region");
      }
      if (a.repeat == 0) return err("access repeat must be >= 1");
      cur->accesses.push_back(a);
    } else if (word == "tc") {
      if (cur == nullptr) return err("'tc' outside a task");
      if (!(ls >> cur->trailing_compute)) return err("bad tc line");
    } else if (word == "end") {
      if (cur == nullptr) return err("'end' outside a task");
      cur = nullptr;
    } else {
      return err("unknown directive");
    }
  }
  if (!seen_magic) return "empty trace (missing 'raccd-trace 1' header)";
  if (cur != nullptr) return "unterminated task (missing 'end')";
  return {};
}

std::string TraceFile::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return strprintf("cannot open '%s' for writing", path.c_str());
  const std::string text = to_text();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok ? std::string{} : strprintf("short write to '%s'", path.c_str());
}

std::string TraceFile::load(const std::string& path, TraceFile& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return strprintf("cannot open trace file '%s'", path.c_str());
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return from_text(text, out);
}

}  // namespace raccd
