// Directory storage and area model (paper Table III).
//
// Each directory entry stores a 42-bit tag plus 3 bytes of state and sharer
// bit-vector = 66 bits (paper §V-A.5). Area is interpolated log-log through
// the paper's own CACTI 6.0 numbers (Table III), so `bench/table3_directory_area`
// reproduces the table exactly at the anchor points and sensibly in between.
#pragma once

#include <cstdint>

namespace raccd {

struct DirStorage {
  double kilobytes = 0.0;
  double area_mm2 = 0.0;
};

class AreaModel {
 public:
  /// Bits per directory entry: 42-bit tag + 3 bytes state/sharers.
  static constexpr unsigned kEntryBits = 42 + 24;

  /// Total directory storage in KB for `entries` entries.
  [[nodiscard]] static double directory_kb(std::uint64_t entries) noexcept;

  /// Area (mm^2) for a directory of the given total KB.
  [[nodiscard]] static double directory_mm2_from_kb(double kb) noexcept;

  [[nodiscard]] static DirStorage directory_storage(std::uint64_t entries) noexcept;
};

}  // namespace raccd
