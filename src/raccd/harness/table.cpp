#include "raccd/harness/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace raccd {

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_sep = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::fputc('+', out);
      for (std::size_t i = 0; i < width[c] + 2; ++i) std::fputc('-', out);
    }
    std::fputs("+\n", out);
  };
  const auto print_row = [&](const std::vector<std::string>& row, bool right_align) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      const std::size_t pad = width[c] - cell.size();
      std::fputs("| ", out);
      if (right_align && c > 0) {
        for (std::size_t i = 0; i < pad; ++i) std::fputc(' ', out);
        std::fputs(cell.c_str(), out);
      } else {
        std::fputs(cell.c_str(), out);
        for (std::size_t i = 0; i < pad; ++i) std::fputc(' ', out);
      }
      std::fputc(' ', out);
    }
    std::fputs("|\n", out);
  };
  print_sep();
  print_row(headers_, false);
  print_sep();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end()) {
      print_sep();
    }
    print_row(rows_[r], true);
  }
  print_sep();
}

bool TextTable::write_csv(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) return false;
  const auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c != 0 ? "," : "") << esc(headers_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c != 0 ? "," : "") << esc(row[c]);
    }
    out << "\n";
  }
  return true;
}

}  // namespace raccd
