// Fixed-bucket log-spaced histogram backing the `distribution` metric kind:
// per-request latencies accumulate here and summarize as count/mean/p50/
// p95/p99/max. Buckets are linear within each power-of-two octave (HdrHistogram
// style), so relative resolution is constant (~3% at 32 sub-buckets) across
// the full 64-bit cycle range in a flat 16 KiB table — no reservoir, no
// sorting, and identical results regardless of insertion order.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "raccd/sim/stats.hpp"

namespace raccd {

class Histogram {
 public:
  Histogram() : counts_(kBuckets, 0) {}

  void add(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// NaN when empty (the emitters' NaN-to-null convention): an empty
  /// distribution has no mean, and 0 would silently read as "instant".
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_; }

  /// Value at quantile `q` in (0, 1]: the bucket holding the ceil(q*count)-th
  /// smallest sample, linearly interpolated across the bucket's span. Exact
  /// at the resolution of the bucket grid; NaN when empty (emitted as JSON
  /// null, never a fake 0-cycle latency).
  [[nodiscard]] double percentile(double q) const noexcept;

  /// count/mean/p50/p95/p99/max in one shot (mean and max are exact; all
  /// NaN when the distribution is empty).
  [[nodiscard]] DistSummary summary() const noexcept;

 private:
  /// Sub-buckets per octave; 32 gives ~3.1% worst-case relative error.
  static constexpr std::uint32_t kSub = 32;
  /// Bucket 0 holds exact zeros; 64 octaves of kSub cover all of uint64.
  static constexpr std::uint32_t kBuckets = 1 + 64 * kSub;

  [[nodiscard]] static std::uint32_t index_of(std::uint64_t v) noexcept;
  /// [lo, hi) value span of bucket `i` (i >= 1).
  static void bounds_of(std::uint32_t i, double& lo, double& hi) noexcept;

  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace raccd
