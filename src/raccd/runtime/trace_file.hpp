// Portable task-trace file format ("raccd-trace v1"): a recorded task
// program — named regions, per-task dependence annotations and the memory
// access stream — that the `tracereplay` workload re-executes through any
// coherence mode. Addresses are region-relative, so a trace recorded on one
// machine configuration replays on any other.
//
// Text format (line-oriented, '#' comments):
//   raccd-trace 1
//   region <name> <bytes>
//   task <name>
//   dep <in|out|inout> <region_idx> <offset> <size>
//   a <r|w> <region_idx> <offset> <size> <repeat> <compute_gap>
//   tc <cycles>              # trailing compute (optional, once per task)
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raccd/runtime/task.hpp"

namespace raccd {

struct TraceRegion {
  std::string name;
  std::uint64_t bytes = 0;
};

struct TraceDep {
  std::uint32_t region = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  DepKind kind = DepKind::kIn;
};

struct TraceAccess {
  std::uint32_t region = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;    ///< 1, 2, 4 or 8 bytes; offset must be size-aligned
  std::uint32_t repeat = 1;  ///< consecutive same-line repeats
  bool is_write = false;
  std::uint64_t compute_gap = 0;  ///< compute cycles charged before this access
};

struct TraceTask {
  std::string name;
  std::vector<TraceDep> deps;
  std::vector<TraceAccess> accesses;
  std::uint64_t trailing_compute = 0;
};

struct TraceFile {
  std::vector<TraceRegion> regions;
  std::vector<TraceTask> tasks;

  [[nodiscard]] std::string to_text() const;
  /// Parse + validate (region indices, access alignment/bounds, sizes).
  /// Returns "" on success, an error message otherwise.
  [[nodiscard]] static std::string from_text(const std::string& text, TraceFile& out);

  /// File IO; returns "" on success.
  [[nodiscard]] std::string save(const std::string& path) const;
  [[nodiscard]] static std::string load(const std::string& path, TraceFile& out);
};

}  // namespace raccd
