// Paper §V-C: RaCCD overheads.
//  * NCRT latency sensitivity: raising the miss-path NCRT lookup from 1 to
//    2/3/5/10 cycles costs 0.5/0.7/1.2/3.5% on average (0.1% at 1 cycle vs
//    an ideal 0-cycle NCRT).
//  * Storage: 5.25 KB for all NCRTs + 1 KB of NC bits; energy < 0.1%.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  // One list drives both the grid and the table stride, so they cannot drift.
  const std::vector<Cycle> latencies{0, 1, 2, 3, 5, 10};
  const auto results =
      bench::run_logged(Grid()
                            .paper_apps()
                            .set_params(opts.params)
                            .size(opts.size)
                            .mode(CohMode::kRaCCD)
                            .ncrt_latencies(latencies)
                            .paper_machine(opts.paper_machine)
                            .specs(),
                        opts);

  std::printf("Sec. V-C — NCRT lookup latency sensitivity (RaCCD 1:1, overhead %% "
              "vs ideal 0-cycle NCRT)\n");
  std::vector<std::string> headers{"app"};
  for (const Cycle lat : latencies) {
    headers.push_back(strprintf("%u cyc", static_cast<unsigned>(lat)));
  }
  TextTable table(headers);
  std::vector<double> sums(latencies.size(), 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double base = static_cast<double>(results[a * latencies.size()].cycles);
    std::vector<std::string> row{apps[a]};
    for (std::size_t l = 0; l < latencies.size(); ++l) {
      const double over =
          100.0 * (static_cast<double>(results[a * latencies.size() + l].cycles) /
                       base -
                   1.0);
      sums[l] += over;
      row.push_back(strprintf("%.2f", over));
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> avg{"AVG"};
  for (std::size_t l = 0; l < latencies.size(); ++l) {
    avg.push_back(strprintf("%.2f", sums[l] / apps.size()));
  }
  table.add_row(std::move(avg));
  table.print();
  table.write_csv("results/overheads_ncrt.csv");
  std::printf("\npaper: +0.1%% @1 cycle, +0.5/0.7/1.2/3.5%% @2/3/5/10 cycles\n");

  // Storage overheads (paper machine): 16 NCRTs x 32 entries x 84 bits
  // (2 x 42-bit physical addresses) = 5.25 KB; 1 bit per L1 line = 1 KB.
  const SimConfig paper = SimConfig::paper();
  const double ncrt_kb = paper.fabric.cores * paper.raccd.ncrt_entries * (2 * 42) / 8.0 / 1024.0;
  const double nc_bits_kb =
      paper.fabric.cores * paper.fabric.l1.lines() / 8.0 / 1024.0;
  std::printf("storage: NCRTs %.2f KB (paper 5.25 KB), NC bits %.2f KB (paper 1 KB)\n",
              ncrt_kb, nc_bits_kb);
  return 0;
}
