#include "raccd/metrics/metric_schema.hpp"

#include <algorithm>
#include <cstdio>

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"

namespace raccd {
namespace {

// One descriptor per line: dotted name, flat emitter key, unit, kind, doc,
// accessor expression over `s`. The lambda decays to a plain function
// pointer, so the table stays POD-cheap.
#define RACCD_METRIC(NAME, KEY, UNIT, KIND, DOC, EXPR)        \
  MetricDesc {                                                \
    NAME, KEY, UNIT, MetricKind::KIND, DOC,                   \
        [](const SimStats& s) { return MetricValue::of(EXPR); } \
  }

[[nodiscard]] std::vector<MetricDesc> build_table() {
  return {
      // -- Time -----------------------------------------------------------------
      RACCD_METRIC("cycles", "cycles", "cycles", kCycles,
                   "end-to-end execution time (paper Fig. 6/9)", s.cycles),
      RACCD_METRIC("time.busy_cycles", "busy_cycles", "cycles", kCycles,
                   "sum of per-core task execution time", s.busy_cycles),
      RACCD_METRIC("time.core_utilization", "core_utilization", "", kRatio,
                   "busy_cycles / (cycles x cores)", s.core_utilization),

      // -- L1 (aggregated over cores) -------------------------------------------
      RACCD_METRIC("fabric.l1_accesses", "l1_accesses", "", kCounter,
                   "L1 demand accesses", s.fabric.l1_accesses),
      RACCD_METRIC("fabric.l1_hits", "l1_hits", "", kCounter, "L1 hits",
                   s.fabric.l1_hits),
      RACCD_METRIC("fabric.l1_misses", "l1_misses", "", kCounter, "L1 misses",
                   s.fabric.l1_misses),
      RACCD_METRIC("fabric.l1_hit_rate", "l1_hit_rate", "", kRatio,
                   "l1_hits / l1_accesses (derived)",
                   s.fabric.l1_accesses == 0
                       ? 0.0
                       : static_cast<double>(s.fabric.l1_hits) /
                             static_cast<double>(s.fabric.l1_accesses)),
      RACCD_METRIC("fabric.l1_evictions", "l1_evictions", "", kCounter,
                   "L1 capacity/conflict evictions", s.fabric.l1_evictions),
      RACCD_METRIC("fabric.l1_wb_coh", "l1_wb_coh", "", kCounter,
                   "coherent dirty writebacks from L1", s.fabric.l1_wb_coh),
      RACCD_METRIC("fabric.l1_wb_nc", "l1_wb_nc", "", kCounter,
                   "non-coherent dirty writebacks from L1", s.fabric.l1_wb_nc),
      RACCD_METRIC("fabric.l1_invals_sharer", "l1_invals_sharer", "", kCounter,
                   "L1 invalidations from GetX/upgrades", s.fabric.l1_invals_sharer),
      RACCD_METRIC("fabric.l1_invals_recall", "l1_invals_recall", "", kCounter,
                   "L1 invalidations from directory/LLC recalls",
                   s.fabric.l1_invals_recall),
      RACCD_METRIC("fabric.l1_flush_nc_lines", "l1_flush_nc_lines", "", kCounter,
                   "NC lines flushed by raccd_invalidate", s.fabric.l1_flush_nc_lines),
      RACCD_METRIC("fabric.l1_flush_nc_wbs", "l1_flush_nc_wbs", "", kCounter,
                   "dirty NC lines written back by raccd_invalidate",
                   s.fabric.l1_flush_nc_wbs),
      RACCD_METRIC("fabric.l1_flush_page_lines", "l1_flush_page_lines", "", kCounter,
                   "lines flushed by PT private->shared recovery",
                   s.fabric.l1_flush_page_lines),
      RACCD_METRIC("fabric.l1_flush_page_wbs", "l1_flush_page_wbs", "", kCounter,
                   "dirty lines written back by PT recovery",
                   s.fabric.l1_flush_page_wbs),

      // -- LLC --------------------------------------------------------------------
      RACCD_METRIC("fabric.llc_lookups", "llc_lookups", "", kCounter,
                   "demand LLC lookups from L1 misses", s.fabric.llc_lookups),
      RACCD_METRIC("fabric.llc_hits", "llc_hits", "", kCounter, "LLC hits",
                   s.fabric.llc_hits),
      RACCD_METRIC("fabric.llc_misses", "llc_misses", "", kCounter, "LLC misses",
                   s.fabric.llc_misses),
      RACCD_METRIC("fabric.llc_hit_rate", "llc_hit_rate", "", kRatio,
                   "llc_hits / llc_lookups (paper Fig. 7b)", s.llc_hit_ratio()),
      RACCD_METRIC("fabric.llc_nc_lookups", "llc_nc_lookups", "", kCounter,
                   "directory-bypassing NC lookups", s.fabric.llc_nc_lookups),
      RACCD_METRIC("fabric.llc_nc_hits", "llc_nc_hits", "", kCounter,
                   "NC lookups that hit", s.fabric.llc_nc_hits),
      RACCD_METRIC("fabric.llc_fills", "llc_fills", "", kCounter, "LLC line fills",
                   s.fabric.llc_fills),
      RACCD_METRIC("fabric.llc_evictions", "llc_evictions", "", kCounter,
                   "LLC evictions", s.fabric.llc_evictions),
      RACCD_METRIC("fabric.llc_inval_by_dir", "llc_inval_by_dir", "", kCounter,
                   "LLC lines dropped by directory entry eviction",
                   s.fabric.llc_inval_by_dir),
      RACCD_METRIC("fabric.llc_wb_mem", "llc_wb_mem", "", kCounter,
                   "dirty LLC lines written back to memory", s.fabric.llc_wb_mem),
      RACCD_METRIC("fabric.llc_touches", "llc_touches", "", kCounter,
                   "every LLC array access (energy basis)", s.fabric.llc_touches),

      // -- Directory --------------------------------------------------------------
      RACCD_METRIC("fabric.dir_accesses", "dir_accesses", "", kCounter,
                   "directory structure reads+updates (paper Fig. 7a)",
                   s.fabric.dir_accesses),
      RACCD_METRIC("fabric.dir_lookups", "dir_lookups", "", kCounter,
                   "directory lookups", s.fabric.dir_lookups),
      RACCD_METRIC("fabric.dir_hits", "dir_hits", "", kCounter, "directory hits",
                   s.fabric.dir_hits),
      RACCD_METRIC("fabric.dir_misses", "dir_misses", "", kCounter, "directory misses",
                   s.fabric.dir_misses),
      RACCD_METRIC("fabric.dir_allocs", "dir_allocs", "", kCounter,
                   "directory entry allocations", s.fabric.dir_allocs),
      RACCD_METRIC("fabric.dir_evictions", "dir_evictions", "", kCounter,
                   "directory entry evictions (with recalls)", s.fabric.dir_evictions),
      RACCD_METRIC("fabric.dir_recall_msgs", "dir_recall_msgs", "", kCounter,
                   "recall messages sent to sharers", s.fabric.dir_recall_msgs),
      RACCD_METRIC("fabric.dir_wb_updates", "dir_wb_updates", "", kCounter,
                   "directory updates from L1 writebacks", s.fabric.dir_wb_updates),
      RACCD_METRIC("fabric.dir_nc_to_coh", "dir_nc_to_coh", "", kCounter,
                   "NC LLC lines re-tracked on coherent access", s.fabric.dir_nc_to_coh),
      RACCD_METRIC("fabric.dir_coh_to_nc", "dir_coh_to_nc", "", kCounter,
                   "directory entries dropped on NC access (paper III-E)",
                   s.fabric.dir_coh_to_nc),

      // -- Transactions -----------------------------------------------------------
      RACCD_METRIC("fabric.coh_reads", "coh_reads", "", kCounter,
                   "coherent read transactions", s.fabric.coh_reads),
      RACCD_METRIC("fabric.coh_writes", "coh_writes", "", kCounter,
                   "coherent write transactions", s.fabric.coh_writes),
      RACCD_METRIC("fabric.upgrades", "upgrades", "", kCounter, "S->M upgrades",
                   s.fabric.upgrades),
      RACCD_METRIC("fabric.nc_reads", "nc_reads", "", kCounter,
                   "non-coherent read transactions", s.fabric.nc_reads),
      RACCD_METRIC("fabric.nc_writes", "nc_writes", "", kCounter,
                   "non-coherent write transactions", s.fabric.nc_writes),
      RACCD_METRIC("fabric.owner_probes", "owner_probes", "", kCounter,
                   "dirty-owner forwarding probes", s.fabric.owner_probes),
      RACCD_METRIC("fabric.dir_reqs.cross_socket", "dir_reqs_cross_socket", "",
                   kCounter, "coherent misses+upgrades crossing a socket link",
                   s.fabric.dir_reqs_cross_socket),
      RACCD_METRIC("fabric.nc_reqs.cross_socket", "nc_reqs_cross_socket", "", kCounter,
                   "NC requests crossing a socket link", s.fabric.nc_reqs_cross_socket),
      RACCD_METRIC("fabric.mem_reads", "mem_reads", "", kCounter, "memory line fetches",
                   s.fabric.mem_reads),
      RACCD_METRIC("fabric.mem_writes", "mem_writes", "", kCounter,
                   "memory line writebacks", s.fabric.mem_writes),
      RACCD_METRIC("fabric.mem_wb_wait_cycles", "mem_wb_wait_cycles", "cycles",
                   kCycles,
                   "writeback delivery: NoC leg to the controller + write-queue wait",
                   s.fabric.mem_wb_wait_cycles),

      // -- DRAM (dram/dram.hpp; zero under the default simple model) --------------
      RACCD_METRIC("dram.row_hits", "dram_row_hits", "", kCounter,
                   "requests served from an open row buffer", s.fabric.dram_row_hits),
      RACCD_METRIC("dram.row_misses", "dram_row_misses", "", kCounter,
                   "requests that activated a closed row", s.fabric.dram_row_misses),
      RACCD_METRIC("dram.row_conflicts", "dram_row_conflicts", "", kCounter,
                   "requests that precharged another open row first",
                   s.fabric.dram_row_conflicts),
      RACCD_METRIC("dram.row_hit_rate", "dram_row_hit_rate", "", kRatio,
                   "row-buffer hits / serviced DRAM requests",
                   s.fabric.dram_row_hit_ratio()),
      RACCD_METRIC("dram.queue_wait_cycles", "dram_queue_wait_cycles", "cycles",
                   kCycles,
                   "read-request wait before DRAM service (queues, write drains, "
                   "bank conflicts, issue order)",
                   s.fabric.dram_queue_wait_cycles),

      // -- NoC --------------------------------------------------------------------
      RACCD_METRIC("noc.messages", "noc_messages", "", kCounter, "NoC messages",
                   s.noc.total_messages()),
      RACCD_METRIC("noc.flits", "noc_flits", "flits", kCounter, "NoC flits injected",
                   s.noc.total_flits()),
      RACCD_METRIC("noc.flit_hops", "noc_flit_hops", "flit-hops", kCounter,
                   "flits x links traversed (paper Fig. 7c)", s.noc.total_flit_hops()),
      RACCD_METRIC("noc.flit_hops.on_socket", "noc_on_socket_flit_hops", "flit-hops",
                   kCounter, "flit-hops on intra-socket links",
                   s.noc.on_socket_flit_hops()),
      RACCD_METRIC("noc.flit_hops.cross_socket", "noc_cross_socket_flit_hops",
                   "flit-hops", kCounter,
                   "flit-hops of messages that crossed a socket link",
                   s.noc.cross_socket.flit_hops),
      RACCD_METRIC("noc.messages.cross_socket", "noc_cross_socket_messages", "",
                   kCounter, "messages that crossed a socket link",
                   s.noc.cross_socket.messages),
      RACCD_METRIC("noc.flits.cross_socket", "noc_cross_socket_flits", "flits",
                   kCounter, "flits of cross-socket messages", s.noc.cross_socket.flits),
      RACCD_METRIC("noc.socket_link_flits", "noc_socket_link_flits", "flits", kCounter,
                   "flits carried over the inter-socket links themselves",
                   s.noc.socket_link_flits),

// Per-message-class traffic (request/data/inval/ack/writeback).
#define RACCD_NOC_CLASS(IDX, CLS)                                              \
  RACCD_METRIC("noc." CLS ".messages", "noc_" CLS "_messages", "", kCounter,   \
               CLS " messages", s.noc.per_class[IDX].messages),                \
      RACCD_METRIC("noc." CLS ".flits", "noc_" CLS "_flits", "flits", kCounter,\
                   CLS " flits", s.noc.per_class[IDX].flits),                  \
      RACCD_METRIC("noc." CLS ".flit_hops", "noc_" CLS "_flit_hops",           \
                   "flit-hops", kCounter, CLS " flit-hops",                    \
                   s.noc.per_class[IDX].flit_hops)
      RACCD_NOC_CLASS(0, "request"),
      RACCD_NOC_CLASS(1, "data"),
      RACCD_NOC_CLASS(2, "inval"),
      RACCD_NOC_CLASS(3, "ack"),
      RACCD_NOC_CLASS(4, "writeback"),
#undef RACCD_NOC_CLASS

      // -- NCRT / TLB / PT classifier ---------------------------------------------
      RACCD_METRIC("ncrt.lookups", "ncrt_lookups", "", kCounter,
                   "NCRT lookups on the L1 miss path", s.ncrt.lookups),
      RACCD_METRIC("ncrt.hits", "ncrt_hits", "", kCounter, "NCRT hits (access goes NC)",
                   s.ncrt.hits),
      RACCD_METRIC("ncrt.inserts", "ncrt_inserts", "", kCounter,
                   "regions inserted by raccd_register", s.ncrt.inserts),
      RACCD_METRIC("ncrt.overflows", "ncrt_overflows", "", kCounter,
                   "regions rejected because the table was full", s.ncrt.overflows),
      RACCD_METRIC("ncrt.clears", "ncrt_clears", "", kCounter,
                   "NCRT clears at task end", s.ncrt.clears),
      RACCD_METRIC("tlb.lookups", "tlb_lookups", "", kCounter, "TLB lookups",
                   s.tlb.lookups),
      RACCD_METRIC("tlb.hits", "tlb_hits", "", kCounter, "TLB hits", s.tlb.hits),
      RACCD_METRIC("tlb.misses", "tlb_misses", "", kCounter, "TLB misses (page walks)",
                   s.tlb.misses),
      RACCD_METRIC("tlb.shootdowns", "tlb_shootdowns", "", kCounter,
                   "entries invalidated by remote shootdown", s.tlb.shootdowns),
      RACCD_METRIC("tlb.evictions", "tlb_evictions", "", kCounter,
                   "capacity-driven LRU evictions", s.tlb.evictions),
      RACCD_METRIC("pt.first_touches", "pt_first_touches", "", kCounter,
                   "pages classified private on first touch", s.pt.first_touches),
      RACCD_METRIC("pt.transitions", "pt_transitions", "", kCounter,
                   "private->shared reclassifications", s.pt.transitions),

      // -- ADR --------------------------------------------------------------------
      RACCD_METRIC("adr.polls", "adr_polls", "", kCounter, "ADR monitor polls",
                   s.adr.polls),
      RACCD_METRIC("adr.grows", "adr_grows", "", kCounter, "directory grow reconfigs",
                   s.adr.grows),
      RACCD_METRIC("adr.shrinks", "adr_shrinks", "", kCounter,
                   "directory shrink reconfigs", s.adr.shrinks),
      RACCD_METRIC("adr.entries_moved", "adr_entries_moved", "", kCounter,
                   "entries rehashed by resizes", s.adr.entries_moved),
      RACCD_METRIC("adr.entries_displaced", "adr_entries_displaced", "", kCounter,
                   "entries recalled by shrinks", s.adr.entries_displaced),
      RACCD_METRIC("adr.blocked_cycles", "adr_blocked_cycles", "cycles", kCycles,
                   "bank-blocked cycles during resizes", s.adr.blocked_cycles),

      // -- Runtime activity -------------------------------------------------------
      RACCD_METRIC("runtime.tasks", "tasks", "", kCounter, "tasks created",
                   s.tasks),
      RACCD_METRIC("runtime.edges", "edges", "", kCounter, "TDG dependence edges",
                   s.edges),
      RACCD_METRIC("runtime.accesses_replayed", "accesses_replayed", "", kCounter,
                   "memory accesses replayed through the timing model",
                   s.accesses_replayed),
      RACCD_METRIC("runtime.create_cycles", "create_cycles", "cycles", kCycles,
                   "task creation + dependence analysis time", s.create_cycles),
      RACCD_METRIC("runtime.schedule_cycles", "schedule_cycles", "cycles", kCycles,
                   "scheduling phase time (paper Fig. 3)", s.schedule_cycles),
      RACCD_METRIC("runtime.wakeup_cycles", "wakeup_cycles", "cycles", kCycles,
                   "wake-up phase time", s.wakeup_cycles),
      RACCD_METRIC("runtime.register_cycles", "register_cycles", "cycles", kCycles,
                   "raccd_register total", s.register_cycles),
      RACCD_METRIC("runtime.invalidate_cycles", "invalidate_cycles", "cycles", kCycles,
                   "raccd_invalidate total (incl. cache walks)", s.invalidate_cycles),
      RACCD_METRIC("runtime.flushed_nc_lines", "flushed_nc_lines", "", kCounter,
                   "NC lines flushed at task ends", s.flushed_nc_lines),
      RACCD_METRIC("runtime.flushed_nc_wbs", "flushed_nc_wbs", "", kCounter,
                   "dirty NC lines written back at task ends", s.flushed_nc_wbs),

      // -- Block classification (paper Fig. 2) ------------------------------------
      RACCD_METRIC("blocks.touched", "blocks_touched", "", kCounter,
                   "distinct cache blocks touched", s.blocks_touched),
      RACCD_METRIC("blocks.noncoherent", "blocks_noncoherent", "", kCounter,
                   "touched blocks never accessed coherently", s.blocks_noncoherent),
      RACCD_METRIC("blocks.nc_fraction", "nc_block_fraction", "", kRatio,
                   "non-coherent fraction of touched blocks (paper Fig. 2)",
                   s.noncoherent_block_fraction),

      // -- Directory occupancy (paper Fig. 8) -------------------------------------
      RACCD_METRIC("dir.avg_occupancy", "avg_dir_occupancy", "", kRatio,
                   "directory occupancy vs configured capacity (time-averaged "
                   "end-of-run; instantaneous in series samples)",
                   s.avg_dir_occupancy),
      RACCD_METRIC("dir.avg_active_frac", "avg_dir_active_frac", "", kRatio,
                   "powered fraction of the directory under ADR",
                   s.avg_dir_active_frac),

      // -- Energy (paper Fig. 7d, 10) ---------------------------------------------
      RACCD_METRIC("energy.dir_dyn_pj", "dir_dyn_energy_pj", "pJ", kEnergy,
                   "directory dynamic energy (the headline, Fig. 7d/10)",
                   s.dir_dyn_energy_pj),
      RACCD_METRIC("energy.llc_dyn_pj", "llc_dyn_energy_pj", "pJ", kEnergy,
                   "LLC dynamic energy", s.llc_dyn_energy_pj),
      RACCD_METRIC("energy.noc_dyn_pj", "noc_dyn_energy_pj", "pJ", kEnergy,
                   "NoC dynamic energy", s.noc_dyn_energy_pj),
      RACCD_METRIC("energy.mem_dyn_pj", "mem_dyn_energy_pj", "pJ", kEnergy,
                   "memory dynamic energy", s.mem_dyn_energy_pj),
      RACCD_METRIC("energy.mem_act_pj", "mem_act_energy_pj", "pJ", kEnergy,
                   "DRAM activate energy (kDdr per-op split of the memory total)",
                   s.fabric.e_mem_act_pj),
      RACCD_METRIC("energy.mem_rd_pj", "mem_rd_energy_pj", "pJ", kEnergy,
                   "DRAM column-read energy", s.fabric.e_mem_rd_pj),
      RACCD_METRIC("energy.mem_wr_pj", "mem_wr_energy_pj", "pJ", kEnergy,
                   "DRAM column-write energy", s.fabric.e_mem_wr_pj),
      RACCD_METRIC("energy.mem_pre_pj", "mem_pre_energy_pj", "pJ", kEnergy,
                   "DRAM precharge energy", s.fabric.e_mem_pre_pj),
      RACCD_METRIC("energy.l1_dyn_pj", "l1_dyn_energy_pj", "pJ", kEnergy,
                   "L1 dynamic energy", s.l1_dyn_energy_pj),
      RACCD_METRIC("energy.dir_leak_pj", "dir_leak_energy_pj", "pJ", kEnergy,
                   "directory leakage over powered entry-cycles",
                   s.dir_leak_energy_pj),

      // -- Sampled simulation (SamplingConfig; zero / scale 1 for detailed runs) --
      RACCD_METRIC("sampling.windows", "sampling_windows", "", kCounter,
                   "measured sampling windows with at least one access",
                   s.sampling.windows),
      RACCD_METRIC("sampling.measured_tasks", "sampling_measured_tasks", "", kCounter,
                   "tasks replayed with detailed timing into the measured bucket",
                   s.sampling.measured_tasks),
      RACCD_METRIC("sampling.warmup_tasks", "sampling_warmup_tasks", "", kCounter,
                   "detailed-warmup tasks (timed but not measured)",
                   s.sampling.warmup_tasks),
      RACCD_METRIC("sampling.ffwd_tasks", "sampling_ffwd_tasks", "", kCounter,
                   "tasks fast-forwarded functionally", s.sampling.ffwd_tasks),
      RACCD_METRIC("sampling.measured_accesses", "sampling_measured_accesses", "",
                   kCounter, "accesses replayed in measured windows",
                   s.sampling.measured_accesses),
      RACCD_METRIC("sampling.ffwd_accesses", "sampling_ffwd_accesses", "", kCounter,
                   "accesses replayed functionally (fast-forward)",
                   s.sampling.ffwd_accesses),
      RACCD_METRIC("sampling.scale", "sampling_scale", "", kRatio,
                   "extrapolation factor: total / measured accesses",
                   s.sampling.scale),
      // 95% CI half-widths, keyed `<base key>_ci95` so reports and
      // raccd-report diff pair them with the metric they price.
      RACCD_METRIC("sampling.cycles_ci95", "cycles_ci95", "cycles", kRatio,
                   "95% CI half-width on extrapolated cycles",
                   s.sampling.cycles_ci95),
      RACCD_METRIC("sampling.dir_accesses_ci95", "dir_accesses_ci95", "", kRatio,
                   "95% CI half-width on extrapolated directory accesses",
                   s.sampling.dir_accesses_ci95),
      RACCD_METRIC("sampling.llc_hits_ci95", "llc_hits_ci95", "", kRatio,
                   "95% CI half-width on extrapolated LLC hits",
                   s.sampling.llc_hits_ci95),
      RACCD_METRIC("sampling.noc_flits_ci95", "noc_flits_ci95", "flits", kRatio,
                   "95% CI half-width on extrapolated NoC flits",
                   s.sampling.noc_flits_ci95),
      RACCD_METRIC("sampling.noc_flit_hops_ci95", "noc_flit_hops_ci95", "flit-hops",
                   kRatio, "95% CI half-width on extrapolated NoC flit-hops",
                   s.sampling.noc_flit_hops_ci95),
      RACCD_METRIC("sampling.dram_row_hits_ci95", "dram_row_hits_ci95", "", kRatio,
                   "95% CI half-width on extrapolated DRAM row hits",
                   s.sampling.dram_row_hits_ci95),
      RACCD_METRIC("sampling.dram_row_hit_rate_ci95", "dram_row_hit_rate_ci95", "",
                   kRatio, "95% CI half-width on the DRAM row-hit rate",
                   s.sampling.dram_row_hit_rate_ci95),
      RACCD_METRIC("sampling.dir_occupancy_ci95", "avg_dir_occupancy_ci95", "",
                   kRatio, "95% CI half-width on average directory occupancy",
                   s.sampling.dir_occupancy_ci95),

      // -- Open-loop service runs (ServiceStats; zero for batch runs) -------------
      RACCD_METRIC("service.requests", "service_requests", "", kCounter,
                   "completed service requests (open-loop runs)",
                   s.service.requests),
// Each latency component reports the distribution summary the histogram
// produced: mean and max exact, percentiles at the bucket-grid resolution.
#define RACCD_SERVICE_DIST(NAME, KEY, FIELD, WHAT)                              \
  RACCD_METRIC("service." NAME ".mean", "service_" KEY "_mean", "cycles",       \
               kDistribution, WHAT " latency, mean", s.service.FIELD.mean),     \
      RACCD_METRIC("service." NAME ".p50", "service_" KEY "_p50", "cycles",     \
                   kDistribution, WHAT " latency, median", s.service.FIELD.p50),\
      RACCD_METRIC("service." NAME ".p95", "service_" KEY "_p95", "cycles",     \
                   kDistribution, WHAT " latency, 95th percentile",             \
                   s.service.FIELD.p95),                                        \
      RACCD_METRIC("service." NAME ".p99", "service_" KEY "_p99", "cycles",     \
                   kDistribution, WHAT " latency, 99th percentile",             \
                   s.service.FIELD.p99),                                        \
      RACCD_METRIC("service." NAME ".max", "service_" KEY "_max", "cycles",     \
                   kDistribution, WHAT " latency, maximum", s.service.FIELD.max)
      RACCD_SERVICE_DIST("queue", "queue", queueing,
                         "request queueing (release to first task start)"),
      RACCD_SERVICE_DIST("svc", "svc", service,
                         "request service (first task start to last task end)"),
      RACCD_SERVICE_DIST("e2e", "e2e", e2e,
                         "request end-to-end (release to last task end)"),
#undef RACCD_SERVICE_DIST
  };
}

#undef RACCD_METRIC

constexpr const char* kBenchKeys[] = {
    // The results/BENCH_grid.json payload, in its historical field order.
    "cycles",
    "dir_accesses",
    "llc_hit_rate",
    "noc_flit_hops",
    "noc_on_socket_flit_hops",
    "noc_cross_socket_flit_hops",
    "dir_reqs_cross_socket",
    "dir_dyn_energy_pj",
    "llc_dyn_energy_pj",
    "noc_dyn_energy_pj",
    "dir_leak_energy_pj",
    "nc_block_fraction",
    "avg_dir_occupancy",
    "tasks",
};

constexpr const char* kCsvKeys[] = {
    "cycles",
    "dir_accesses",
    "llc_hit_rate",
    "noc_flit_hops",
    "noc_cross_socket_flit_hops",
    "dir_dyn_energy_pj",
    "nc_block_fraction",
    "avg_dir_occupancy",
    "tasks",
};

constexpr const char* kSeriesDefaults[] = {
    "dir.avg_occupancy", "dir.avg_active_frac", "fabric.dir_accesses",
    "fabric.llc_hit_rate", "noc.flit_hops",
};

}  // namespace

std::string MetricDesc::format(const SimStats& s) const {
  const MetricValue v = value(s);
  switch (kind) {
    case MetricKind::kCounter:
    case MetricKind::kCycles:
      return strprintf("%llu", static_cast<unsigned long long>(v.u));
    case MetricKind::kRatio:
      return strprintf("%.6f", v.d);
    case MetricKind::kEnergy:
      return strprintf("%.3f", v.d);
    case MetricKind::kDistribution:
      return strprintf("%.1f", v.d);
  }
  return "?";
}

MetricSchema::MetricSchema() : metrics_(build_table()) {
  for (const MetricDesc& m : metrics_) {
    const auto [it, inserted] = index_.try_emplace(m.name, &m);
    RACCD_ASSERT(inserted, "duplicate metric name in schema");
    if (std::string_view(m.key) != m.name) {
      const auto [kit, kinserted] = index_.try_emplace(m.key, &m);
      RACCD_ASSERT(kinserted, "metric key collides with another name/key");
    }
  }
}

const MetricSchema& MetricSchema::instance() {
  static const MetricSchema schema;
  return schema;
}

const MetricDesc* MetricSchema::find(std::string_view name_or_key) const {
  const auto it = index_.find(name_or_key);
  return it == index_.end() ? nullptr : it->second;
}

const MetricDesc& MetricSchema::get(std::string_view name_or_key) const {
  const MetricDesc* m = find(name_or_key);
  if (m == nullptr) {
    std::fprintf(stderr, "unknown metric '%.*s'; known metrics:\n",
                 static_cast<int>(name_or_key.size()), name_or_key.data());
    for (const MetricDesc& d : metrics_) std::fprintf(stderr, "  %s\n", d.name);
    RACCD_ASSERT(false, "metric name not present in schema");
  }
  return *m;
}

std::vector<const MetricDesc*> MetricSchema::select(
    std::span<const std::string> names) const {
  std::vector<const MetricDesc*> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(&get(n));
  return out;
}

std::vector<const MetricDesc*> MetricSchema::select(
    std::initializer_list<const char*> names) const {
  std::vector<const MetricDesc*> out;
  out.reserve(names.size());
  for (const char* n : names) out.push_back(&get(n));
  return out;
}

std::string MetricSchema::parse_selection(std::string_view csv,
                                          std::vector<const MetricDesc*>& out) const {
  out.clear();
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    const std::string_view name = csv.substr(pos, comma - pos);
    if (!name.empty()) {
      const MetricDesc* m = find(name);
      if (m == nullptr) {
        return strprintf("unknown metric '%.*s' (see `raccd-report metrics`)",
                         static_cast<int>(name.size()), name.data());
      }
      out.push_back(m);
    }
    pos = comma + 1;
  }
  if (out.empty()) return "empty metric selection";
  return "";
}

std::string MetricSchema::describe(bool markdown) const {
  std::size_t name_w = 0, key_w = 0, kind_w = 0, unit_w = 0;
  for (const MetricDesc& m : metrics_) {
    name_w = std::max(name_w, std::string_view(m.name).size());
    key_w = std::max(key_w, std::string_view(m.key).size());
    kind_w = std::max(kind_w, std::string_view(to_string(m.kind)).size());
    unit_w = std::max(unit_w, std::string_view(m.unit).size());
  }
  std::string out;
  if (markdown) {
    out += "| metric | key | kind | unit | description |\n";
    out += "|---|---|---|---|---|\n";
    for (const MetricDesc& m : metrics_) {
      out += strprintf("| `%s` | `%s` | %s | %s | %s |\n", m.name, m.key,
                       to_string(m.kind), m.unit, m.doc);
    }
    return out;
  }
  out += strprintf("%-*s  %-*s  %-*s  %-*s  %s\n", static_cast<int>(name_w), "metric",
                   static_cast<int>(key_w), "key", static_cast<int>(kind_w), "kind",
                   static_cast<int>(unit_w), "unit", "description");
  for (const MetricDesc& m : metrics_) {
    out += strprintf("%-*s  %-*s  %-*s  %-*s  %s\n", static_cast<int>(name_w), m.name,
                     static_cast<int>(key_w), m.key, static_cast<int>(kind_w),
                     to_string(m.kind), static_cast<int>(unit_w), m.unit, m.doc);
  }
  return out;
}

std::span<const char* const> bench_metric_keys() noexcept { return kBenchKeys; }
std::span<const char* const> csv_metric_keys() noexcept { return kCsvKeys; }
std::span<const char* const> default_series_metrics() noexcept { return kSeriesDefaults; }

}  // namespace raccd
