#include "raccd/service/arrivals.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd {
namespace {

[[nodiscard]] std::vector<Cycle> fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return {};
}

/// Exponential inter-arrival gap with the given mean (inverse CDF on the
/// deterministic Rng; 1-u is in (0,1] so the log never sees zero).
[[nodiscard]] double exp_gap(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.next_double());
}

/// Clamp an accumulated arrival instant to a valid, monotone release cycle
/// (releases must be >= 1: release 0 means "not gated").
[[nodiscard]] Cycle to_release(double t, Cycle prev) {
  const double rounded = std::floor(t + 0.5);
  Cycle r = rounded < 1.0 ? 1 : static_cast<Cycle>(rounded);
  return r < prev ? prev : r;
}

}  // namespace

std::vector<Cycle> generate_arrivals(const ArrivalConfig& cfg, std::string* error) {
  if (error) error->clear();
  if (cfg.kind == ArrivalKind::kTrace) {
    std::vector<Cycle> out;
    if (!read_schedule_file(cfg.trace_path, out, error)) return {};
    return out;
  }
  if (cfg.count == 0) return fail(error, "arrival count must be > 0");
  if (!(cfg.mean_gap_cycles > 0.0)) {
    return fail(error, "mean inter-arrival gap must be > 0");
  }

  Rng rng(cfg.seed);
  std::vector<Cycle> out;
  out.reserve(cfg.count);

  if (cfg.kind == ArrivalKind::kPoisson) {
    double t = 0.0;
    Cycle prev = 1;
    for (std::uint64_t i = 0; i < cfg.count; ++i) {
      t += exp_gap(rng, cfg.mean_gap_cycles);
      prev = to_release(t, prev);
      out.push_back(prev);
    }
    return out;
  }

  // kBurst: Poisson arrivals confined to the leading `duty` fraction of each
  // period. Generate in "on-time" (the concatenation of the on-windows) at
  // mean gap `mean_gap x duty` — compressing the whole load into the duty
  // fraction — then map on-time back to wall time by skipping each period's
  // off-window. The wall-clock mean rate stays exactly 1/mean_gap.
  if (!(cfg.burst_duty > 0.0) || cfg.burst_duty > 1.0) {
    return fail(error, "burst duty must be in (0, 1]");
  }
  const double period = cfg.burst_period_cycles > 0
                            ? static_cast<double>(cfg.burst_period_cycles)
                            : 16.0 * cfg.mean_gap_cycles;
  const double on_len = cfg.burst_duty * period;
  double t_on = 0.0;
  Cycle prev = 1;
  for (std::uint64_t i = 0; i < cfg.count; ++i) {
    t_on += exp_gap(rng, cfg.mean_gap_cycles * cfg.burst_duty);
    const double k = std::floor(t_on / on_len);
    const double wall = k * period + (t_on - k * on_len);
    prev = to_release(wall, prev);
    out.push_back(prev);
  }
  return out;
}

std::string format_schedule(const std::vector<Cycle>& schedule) {
  std::string out = "raccd-sched v1\n";
  out += strprintf("%zu\n", schedule.size());
  for (const Cycle c : schedule) {
    out += strprintf("%llu\n", static_cast<unsigned long long>(c));
  }
  return out;
}

bool parse_schedule(const std::string& text, std::vector<Cycle>& out,
                    std::string* error) {
  out.clear();
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "raccd-sched v1") {
    if (error) *error = "schedule file missing 'raccd-sched v1' header";
    return false;
  }
  if (!std::getline(in, line)) {
    if (error) *error = "schedule file missing release count";
    return false;
  }
  const std::uint64_t count = std::strtoull(line.c_str(), nullptr, 10);
  out.reserve(count);
  Cycle prev = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    char* end = nullptr;
    const Cycle c = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str()) {
      if (error) *error = strprintf("bad release cycle '%s'", line.c_str());
      return false;
    }
    if (c < 1 || c < prev) {
      if (error) {
        *error = strprintf("release cycles must be >= 1 and non-decreasing "
                           "(got %llu after %llu)",
                           static_cast<unsigned long long>(c),
                           static_cast<unsigned long long>(prev));
      }
      return false;
    }
    prev = c;
    out.push_back(c);
  }
  if (out.size() != count) {
    if (error) {
      *error = strprintf("schedule file declares %llu releases but holds %zu",
                         static_cast<unsigned long long>(count), out.size());
    }
    return false;
  }
  if (out.empty()) {
    if (error) *error = "schedule file holds no releases";
    return false;
  }
  return true;
}

bool write_schedule_file(const std::string& path, const std::vector<Cycle>& schedule,
                         std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error) *error = strprintf("cannot write schedule file '%s'", path.c_str());
    return false;
  }
  out << format_schedule(schedule);
  if (!out) {
    if (error) *error = strprintf("write to schedule file '%s' failed", path.c_str());
    return false;
  }
  return true;
}

bool read_schedule_file(const std::string& path, std::vector<Cycle>& out,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = strprintf("cannot read schedule file '%s'", path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_schedule(text, out, error);
}

}  // namespace raccd
