#include "raccd/apps/app.hpp"

#include "raccd/apps/app_factories.hpp"
#include "raccd/common/assert.hpp"

namespace raccd {

const std::vector<std::string>& paper_app_names() {
  static const std::vector<std::string> kNames{
      "cg", "gauss", "histo", "jacobi", "jpeg", "kmeans", "knn", "md5", "redblack"};
  return kNames;
}

std::unique_ptr<App> make_app(std::string_view name, const AppConfig& cfg) {
  if (name == "cg") return apps::make_cg(cfg);
  if (name == "gauss") return apps::make_gauss(cfg);
  if (name == "histo") return apps::make_histogram(cfg);
  if (name == "jacobi") return apps::make_jacobi(cfg);
  if (name == "jpeg") return apps::make_jpeg(cfg);
  if (name == "kmeans") return apps::make_kmeans(cfg);
  if (name == "knn") return apps::make_knn(cfg);
  if (name == "md5") return apps::make_md5(cfg);
  if (name == "redblack") return apps::make_redblack(cfg);
  if (name == "cholesky") return apps::make_cholesky(cfg);
  RACCD_ASSERT(false, "unknown application name");
  return nullptr;
}

}  // namespace raccd
