// Paper Fig. 6: execution cycles by directory size, normalized to the
// FullCoh 1:1 configuration of each benchmark.
//
// Paper reference points: halving the directory already costs FullCoh 22%
// on average and 71% at 1:256; RaCCD loses only 0.9% at 1:8, ~2.8% at 1:64
// and 10% at 1:256; PT sits in between (15% at 1:8).
#include "bench_common.hpp"

using namespace raccd;
using namespace raccd::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const PaperGrid g = run_grid(opts);
  print_figure(
      g, "Fig. 6 — Normalized cycles by directory size (FullCoh 1:1 = 1.0)",
      "normalized execution cycles",
      [](const SimStats& s, const SimStats& base) {
        return metric_value(s, "cycles") / metric_value(base, "cycles");
      },
      "results/fig06_performance.csv");
  std::printf("paper: FullCoh avg 1.22 @1:2 and 1.71 @1:256; RaCCD 1.009 @1:8, "
              "~1.028 @1:64, 1.10 @1:256\n");
  return 0;
}
