// RedBlack: stationary heat diffusion with red-black (checkerboard) ordering,
// 4-element stencil (paper Table II: 2D matrix N^2 = 2359296, 10 iterations).
//
// Each iteration has a red phase (updates cells with (i+j) even) and a black
// phase (odd), both over contiguous row blocks of the single in-place grid.
// Phase tasks carry inout on their rows and in on the halo rows, which
// serializes red(k) -> black(k) -> red(k+1) per neighbourhood while allowing
// full parallelism within a phase.
#include <algorithm>
#include <string>

#include "raccd/apps/registry.hpp"
#include "raccd/apps/stencil_common.hpp"
#include "raccd/common/format.hpp"

namespace raccd::apps {
namespace {

struct RbParams {
  std::uint32_t n;
  std::uint32_t iters;
  std::uint32_t blocks;
};

[[nodiscard]] RbParams params_for(const AppConfig& cfg) {
  RbParams p{512, 10, 32};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {64, 3, 8}; break;
    case SizeClass::kSmall: p = {512, 10, 32}; break;
    case SizeClass::kMedium: p = {1024, 10, 48}; break;
    case SizeClass::kPaper: p = {1536, 10, 64}; break;
    case SizeClass::kLarge: p = {3072, 10, 128}; break;
  }
  p.n = cfg.params.get_u32("n", p.n);
  p.iters = cfg.params.get_u32("iters", p.iters);
  p.blocks = std::min(cfg.params.get_u32("blocks", p.blocks), p.n);
  return p;
}

class RedBlackApp final : public App {
 public:
  explicit RedBlackApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "redblack"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("2D matrix N^2=%u, %u iters (2 phases each), %u row blocks",
                     p_.n * p_.n, p_.iters, p_.blocks);
  }

  void run(Machine& m) override {
    const std::uint32_t n = p_.n;
    grid_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(n) * n, "redblack.grid");
    Rng rng(seed_);
    init_grid(m.mem(), grid_, n, rng);

    const RowBlocks rb{n, p_.blocks};
    const VAddr g = grid_;
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t color = 0; color < 2; ++color) {
        for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
          const std::uint32_t r0 = rb.row0(blk);
          const std::uint32_t r1 = rb.row1(blk);
          TaskDesc t;
          t.name = strprintf("rb(i%u,%s,b%u)", iter, color == 0 ? "red" : "black", blk);
          t.deps.push_back(
              DepSpec{g + static_cast<VAddr>(r0) * n * sizeof(float),
                      static_cast<std::uint64_t>(r1 - r0) * n * sizeof(float),
                      DepKind::kInout});
          if (r0 > 0) {
            t.deps.push_back(DepSpec{g + static_cast<VAddr>(r0 - 1) * n * sizeof(float),
                                     static_cast<std::uint64_t>(n) * sizeof(float),
                                     DepKind::kIn});
          }
          if (r1 < n) {
            t.deps.push_back(DepSpec{g + static_cast<VAddr>(r1) * n * sizeof(float),
                                     static_cast<std::uint64_t>(n) * sizeof(float),
                                     DepKind::kIn});
          }
          t.body = [g, n, r0, r1, color](TaskContext& ctx) {
            const auto at = [g, n](std::uint32_t i, std::uint32_t j) {
              return g + (static_cast<VAddr>(i) * n + j) * sizeof(float);
            };
            for (std::uint32_t i = std::max(r0, 1u); i < std::min(r1, n - 1); ++i) {
              const std::uint32_t j0 = 1 + ((i + 1 + color) & 1u);
              for (std::uint32_t j = j0; j < n - 1; j += 2) {
                const float up = ctx.load<float>(at(i - 1, j));
                const float left = ctx.load<float>(at(i, j - 1));
                const float right = ctx.load<float>(at(i, j + 1));
                const float down = ctx.load<float>(at(i + 1, j));
                ctx.compute(4);
                ctx.store<float>(at(i, j), 0.25f * (up + left + right + down));
              }
            }
          };
          m.spawn(std::move(t));
        }
      }
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    const std::uint32_t n = p_.n;
    Rng rng(seed_);
    std::vector<float> ref(static_cast<std::size_t>(n) * n);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        const bool boundary = i == 0 || j == 0 || i == n - 1 || j == n - 1;
        ref[static_cast<std::size_t>(i) * n + j] =
            boundary ? 1.0f : rng.next_float(0.0f, 1.0f);
      }
    }
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t color = 0; color < 2; ++color) {
        for (std::uint32_t i = 1; i < n - 1; ++i) {
          const std::uint32_t j0 = 1 + ((i + 1 + color) & 1u);
          for (std::uint32_t j = j0; j < n - 1; j += 2) {
            const std::size_t idx = static_cast<std::size_t>(i) * n + j;
            ref[idx] =
                0.25f * (ref[idx - n] + ref[idx - 1] + ref[idx + 1] + ref[idx + n]);
          }
        }
      }
    }
    const std::vector<float> got = read_grid(m.mem(), grid_, n);
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != ref[i]) {
        return strprintf("redblack mismatch at %zu: got %g want %g", i,
                         static_cast<double>(got[i]), static_cast<double>(ref[i]));
      }
    }
    return {};
  }

 private:
  RbParams p_;
  std::uint64_t seed_;
  VAddr grid_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "redblack",
    "red-black checkerboard stencil, two phases per iteration (paper Table II)",
    "paper",
    ParamSchema()
        .add_int("n", 512, "grid edge (N x N floats)", 8, 8192)
        .add_int("iters", 10, "iterations (red + black phase each)", 1, 1024)
        .add_int("blocks", 32, "row blocks per phase (clamped to n)", 1, 8192),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<RedBlackApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
