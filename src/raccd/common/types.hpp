// Fundamental identifiers and geometry constants shared by every module.
//
// Addresses are 64-bit byte addresses. Virtual and physical addresses use
// distinct aliases so interfaces document which space they operate in; the
// simulated machine uses 42-bit physical addresses (paper Table I) but the
// model accepts any width.
#pragma once

#include <cstddef>
#include <cstdint>

namespace raccd {

using VAddr = std::uint64_t;  ///< simulated virtual byte address
using PAddr = std::uint64_t;  ///< simulated physical byte address
using Cycle = std::uint64_t;  ///< simulated time, in core cycles
using CoreId = std::uint32_t;
using BankId = std::uint32_t;
using TaskId = std::uint32_t;

/// Cache line geometry (64 B lines, paper Table I).
inline constexpr unsigned kLineShift = 6;
inline constexpr unsigned kLineBytes = 1u << kLineShift;

/// Page geometry (4 KB pages, x86).
inline constexpr unsigned kPageShift = 12;
inline constexpr unsigned kPageBytes = 1u << kPageShift;
inline constexpr unsigned kLinesPerPage = kPageBytes / kLineBytes;

/// A physical cache-line number (PAddr >> kLineShift).
using LineAddr = std::uint64_t;
/// A page number in either address space (addr >> kPageShift).
using PageNum = std::uint64_t;

[[nodiscard]] constexpr LineAddr line_of(PAddr a) noexcept { return a >> kLineShift; }
[[nodiscard]] constexpr PAddr addr_of_line(LineAddr l) noexcept { return l << kLineShift; }
[[nodiscard]] constexpr PageNum page_of(std::uint64_t a) noexcept { return a >> kPageShift; }
[[nodiscard]] constexpr std::uint64_t page_offset(std::uint64_t a) noexcept {
  return a & (kPageBytes - 1);
}
[[nodiscard]] constexpr std::uint64_t line_offset(std::uint64_t a) noexcept {
  return a & (kLineBytes - 1);
}
[[nodiscard]] constexpr std::uint64_t align_down(std::uint64_t a, std::uint64_t align) noexcept {
  return a & ~(align - 1);
}
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t a, std::uint64_t align) noexcept {
  return (a + align - 1) & ~(align - 1);
}

/// Marker for "no core" in owner fields.
inline constexpr CoreId kNoCore = ~CoreId{0};
/// Marker for "no task".
inline constexpr TaskId kNoTask = ~TaskId{0};

/// A half-open byte range [begin, end) in one address space.
struct AddrRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] constexpr std::uint64_t size() const noexcept { return end - begin; }
  [[nodiscard]] constexpr bool empty() const noexcept { return begin >= end; }
  [[nodiscard]] constexpr bool contains(std::uint64_t a) const noexcept {
    return a >= begin && a < end;
  }
  [[nodiscard]] constexpr bool overlaps(const AddrRange& o) const noexcept {
    return begin < o.end && o.begin < end;
  }
  constexpr bool operator==(const AddrRange&) const noexcept = default;
};

}  // namespace raccd
