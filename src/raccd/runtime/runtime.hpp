// The task-based runtime system frontend: task creation with dependence
// analysis, readiness tracking, and scheduling (paper §II-C/III-B).
// Execution timing is driven by sim::Machine; this class owns the
// programming-model state only, so it is unit-testable in isolation.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "raccd/common/types.hpp"
#include "raccd/runtime/dep_registry.hpp"
#include "raccd/runtime/scheduler.hpp"
#include "raccd/runtime/tdg.hpp"

namespace raccd {

struct RuntimeStats {
  std::uint64_t tasks_created = 0;
  std::uint64_t deps_registered = 0;
  std::uint64_t edges = 0;
  std::uint64_t wakeups = 0;  ///< successor edges resolved at task completion
};

class Runtime {
 public:
  explicit Runtime(SchedPolicy policy = SchedPolicy::kFifo, std::uint32_t cores = 16)
      : sched_(policy, cores) {}

  /// Create a task, derive its dependence edges, and enqueue it if ready
  /// (creation happens on the main thread, core 0).
  TaskId create_task(TaskDesc desc);

  /// Scheduler pop for an idle core; false when no task is ready.
  bool pop_ready(CoreId core, TaskId& out);

  /// Mark `t` running (scheduler handed it to a core).
  void start_task(TaskId t);

  /// Complete `t` on `core`: resolves successors, enqueues newly ready
  /// tasks (onto the finishing core's deque under work stealing). Returns
  /// whether any task became ready; `resolved` counts wake-up edges.
  bool finish_task(TaskId t, CoreId core, std::uint32_t& resolved);

  // -- Open-loop releases (service workloads) -------------------------------
  // Tasks with `release > 0` are *release-gated*: when their dependences
  // resolve they park in a (release, id) min-heap instead of entering the
  // scheduler. The Machine anchors releases to the executing taskwait phase
  // (set_release_base) and drains due tasks as its clock passes each release
  // instant (release_up_to), so the gating is exact, not approximate.

  /// Anchor relative release times: absolute release = base + task.release.
  void set_release_base(Cycle base) noexcept { release_base_ = base; }
  [[nodiscard]] Cycle release_base() const noexcept { return release_base_; }

  /// Move every parked task with absolute release <= `now` into the
  /// scheduler (pushed in (release, id) order onto core 0's queue).
  /// Returns the number of tasks released.
  std::uint32_t release_up_to(Cycle now);

  /// Earliest pending absolute release; false when nothing is parked.
  [[nodiscard]] bool next_release(Cycle& out) const;

  /// Total tasks released so far via release gating (progress reporting).
  [[nodiscard]] std::uint64_t released_count() const noexcept { return released_count_; }

  [[nodiscard]] TaskNode& task(TaskId t) { return tdg_.task(t); }
  [[nodiscard]] const TaskNode& task(TaskId t) const { return tdg_.task(t); }
  [[nodiscard]] bool all_finished() const noexcept { return tdg_.all_finished(); }
  [[nodiscard]] std::size_t task_count() const noexcept { return tdg_.task_count(); }
  [[nodiscard]] const Tdg& tdg() const noexcept { return tdg_; }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Scheduler& scheduler() const noexcept { return sched_; }
  [[nodiscard]] std::size_t ready_count() const noexcept { return sched_.size(); }

 private:
  /// True when `t` must park in the release heap rather than be scheduled.
  [[nodiscard]] bool gated(const TaskNode& n) const noexcept {
    return n.release > 0 && release_base_ + n.release > released_up_to_;
  }

  Tdg tdg_;
  DepRegistry deps_;
  Scheduler sched_;
  RuntimeStats stats_;
  std::vector<TaskId> scratch_preds_;
  std::vector<TaskId> scratch_ready_;

  /// Dep-resolved tasks awaiting their release instant, keyed by absolute-
  /// release-order (ties broken by creation id for determinism).
  using ReleaseEntry = std::pair<Cycle, TaskId>;
  std::priority_queue<ReleaseEntry, std::vector<ReleaseEntry>, std::greater<ReleaseEntry>>
      pending_releases_;
  Cycle release_base_ = 0;
  Cycle released_up_to_ = 0;  ///< high-water mark of release_up_to()
  std::uint64_t released_count_ = 0;
};

}  // namespace raccd
