#include "raccd/modes/wbnc_backend.hpp"

#include "raccd/coherence/fabric.hpp"
#include "raccd/sim/config.hpp"

namespace raccd {

AccessClass WbNcBackend::classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                        PAddr paddr, PageNum pframe, Cycle now) {
  (void)self;
  (void)c;
  (void)vaddr;
  (void)paddr;
  (void)pframe;
  (void)now;
  // Every request is non-coherent; classification is free (no lookup
  // structure — the mode is wired into the memory instructions).
  return {true, 0};
}

TaskEndOutcome WbNcBackend::on_task_end(CoreId c, Cycle now) {
  // Software coherence: write back and invalidate the finishing core's L1 so
  // dependent tasks read the produced data from the LLC. All lines are NC in
  // this mode, so the NC-line walk empties the whole cache.
  const auto fo = ctx_.fabric.flush_nc_lines(c, now);
  return {ctx_.cfg.timing.swcoh_flush_call_cycles + fo.cycles, fo.lines,
          fo.writebacks};
}

}  // namespace raccd
