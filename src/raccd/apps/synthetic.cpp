// Synthetic task-graph generator: parameterized workload families beyond the
// paper's nine fixed benchmarks (DESIGN.md substitution #6).
//
// Three shapes, all built from the same plan/kernel machinery:
//  * forkjoin  — `depth` rounds of `width` independent per-lane workers
//    followed by a reduction task touching every lane (barrier-style apps);
//  * pipeline  — `depth` stages over `width` lanes with a neighbour probe,
//    so blocks migrate producer->consumer between cores (the temporally-
//    private pattern PT misclassifies and RaCCD tracks);
//  * randomdag — `width*depth` tasks, each rewriting one lane and probing
//    `fanin` pseudo-randomly chosen other lanes (irregular dependence
//    structure, seed-controlled).
//
// `footprint_kb` sets the per-lane region size and `reuse` declares a
// read-shared region re-read by every task — the high inter-task-reuse
// stress case where RaCCD's end-of-task invalidation costs L1/LLC locality
// that FullCoh keeps, a corner the paper's apps never exercise.
//
// The task plan is built once (seed-deterministic) and drives both run()
// and the host-side mirror in verify(), so every coherence mode must
// deliver byte-identical functional results.
#include <algorithm>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

struct SynParams {
  std::string shape;
  std::uint32_t width;
  std::uint32_t depth;
  std::uint32_t footprint_kb;
  double reuse;
  std::uint32_t compute;
  std::uint32_t fanin;
};

[[nodiscard]] SynParams params_for(const AppConfig& cfg) {
  SynParams p{"forkjoin", 16, 8, 64, 0.25, 4, 3};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {"forkjoin", 4, 3, 8, 0.25, 4, 2}; break;
    case SizeClass::kSmall: p = {"forkjoin", 16, 8, 64, 0.25, 4, 3}; break;
    // Depth over width at medium+: many task starts (sampled-simulation
    // windows need them) at bounded per-wave concurrency.
    case SizeClass::kMedium: p = {"forkjoin", 32, 192, 128, 0.25, 4, 3}; break;
    case SizeClass::kPaper: p = {"forkjoin", 64, 16, 256, 0.25, 4, 4}; break;
    case SizeClass::kLarge: p = {"forkjoin", 96, 24, 512, 0.25, 4, 4}; break;
  }
  p.shape = cfg.params.get_string("shape", p.shape);
  p.width = cfg.params.get_u32("width", p.width);
  p.depth = cfg.params.get_u32("depth", p.depth);
  p.footprint_kb = cfg.params.get_u32("footprint_kb", p.footprint_kb);
  p.reuse = cfg.params.get_double("reuse", p.reuse);
  p.compute = cfg.params.get_u32("compute", p.compute);
  p.fanin = std::min(cfg.params.get_u32("fanin", p.fanin), p.width - 1);
  return p;
}

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 32;
  return x;
}

/// One planned task: probe element 0 of some buffers, then either fold into
/// the accumulator (join) or stream-rewrite one buffer from a source.
struct PlannedTask {
  std::string name;
  std::uint32_t write = 0;                ///< buffer index written (non-join)
  std::uint32_t src = 0;                  ///< buffer streamed as input
  std::vector<std::uint32_t> probes;      ///< buffers probed at element 0
  std::uint64_t c = 0;                    ///< task constant
  bool is_join = false;
  bool inout = true;  ///< write==src as one inout range (else in src + out write)
};

class SyntheticApp final : public App {
 public:
  explicit SyntheticApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {
    elems_ = std::max<std::uint64_t>(p_.footprint_kb * 1024 / 8, 8);
    shared_elems_ = static_cast<std::uint64_t>(p_.reuse * static_cast<double>(elems_));
    buffers_n_ = p_.shape == "pipeline" ? 2 * p_.width : p_.width;
    build_plan();
  }

  [[nodiscard]] std::string_view name() const override { return "synthetic"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("%s: %u lanes x %u rounds, %u KB/lane, reuse %.0f%%, %zu tasks",
                     p_.shape.c_str(), p_.width, p_.depth, p_.footprint_kb,
                     100.0 * p_.reuse, plan_.size());
  }

  void run(Machine& m) override {
    buf_.clear();
    for (std::uint32_t b = 0; b < buffers_n_; ++b) {
      buf_.push_back(m.mem().alloc_array<std::uint64_t>(elems_, strprintf("syn.b%u", b)));
    }
    shared_ = m.mem().alloc_array<std::uint64_t>(std::max<std::uint64_t>(shared_elems_, 1),
                                                 "syn.shared");
    accum_ = m.mem().alloc_array<std::uint64_t>(8, "syn.accum");
    init_memory(m);

    const std::uint64_t bytes = elems_ * 8;
    for (const PlannedTask& pt : plan_) {
      TaskDesc t;
      t.name = pt.name;
      if (pt.is_join) {
        for (const std::uint32_t b : pt.probes) t.deps.push_back({buf_[b], 8, DepKind::kIn});
        t.deps.push_back({accum_, 8, DepKind::kInout});
      } else {
        if (pt.inout) {
          t.deps.push_back({buf_[pt.write], bytes, DepKind::kInout});
        } else {
          t.deps.push_back({buf_[pt.src], bytes, DepKind::kIn});
          t.deps.push_back({buf_[pt.write], bytes, DepKind::kOut});
        }
        for (const std::uint32_t b : pt.probes) t.deps.push_back({buf_[b], 8, DepKind::kIn});
      }
      if (shared_elems_ > 0) t.deps.push_back({shared_, shared_elems_ * 8, DepKind::kIn});

      const PlannedTask* task = &pt;
      t.body = [this, task](TaskContext& ctx) {
        const auto load = [&ctx](VAddr base, std::uint64_t j) {
          return ctx.load<std::uint64_t>(base + j * 8);
        };
        std::uint64_t acc = task->c;
        for (const std::uint32_t b : task->probes) acc += load(buf_[b], 0);
        for (std::uint64_t j = 0; j < shared_elems_; ++j) acc += load(shared_, j);
        if (task->is_join) {
          ctx.store<std::uint64_t>(accum_, mix64(load(accum_, 0) + acc));
          return;
        }
        for (std::uint64_t j = 0; j < elems_; ++j) {
          const std::uint64_t v = load(buf_[task->src], j);
          if (j % 8 == 0) ctx.compute(p_.compute);
          ctx.store<std::uint64_t>(buf_[task->write] + j * 8, mix64(v + acc));
        }
      };
      m.spawn(std::move(t));
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    // Host mirror: identical init + plan replay in creation order (the
    // dependence annotations order every conflicting pair the same way).
    std::vector<std::vector<std::uint64_t>> ref(buffers_n_,
                                                std::vector<std::uint64_t>(elems_, 0));
    std::vector<std::uint64_t> ref_shared(std::max<std::uint64_t>(shared_elems_, 1), 0);
    std::uint64_t ref_accum = 0;
    mirror_init(ref, ref_shared);
    for (const PlannedTask& pt : plan_) {
      std::uint64_t acc = pt.c;
      for (const std::uint32_t b : pt.probes) acc += ref[b][0];
      for (std::uint64_t j = 0; j < shared_elems_; ++j) acc += ref_shared[j];
      if (pt.is_join) {
        ref_accum = mix64(ref_accum + acc);
        continue;
      }
      for (std::uint64_t j = 0; j < elems_; ++j) {
        ref[pt.write][j] = mix64(ref[pt.src][j] + acc);
      }
    }

    std::vector<std::uint64_t> got(elems_);
    for (std::uint32_t b = 0; b < buffers_n_; ++b) {
      m.mem().copy_out(buf_[b], got.data(), elems_ * 8);
      for (std::uint64_t j = 0; j < elems_; ++j) {
        if (got[j] != ref[b][j]) {
          return strprintf("synthetic mismatch: buffer %u elem %llu got %llx want %llx",
                           b, static_cast<unsigned long long>(j),
                           static_cast<unsigned long long>(got[j]),
                           static_cast<unsigned long long>(ref[b][j]));
        }
      }
    }
    const auto got_accum = m.mem().read<std::uint64_t>(accum_);
    if (got_accum != ref_accum) {
      return strprintf("synthetic accumulator mismatch: got %llx want %llx",
                       static_cast<unsigned long long>(got_accum),
                       static_cast<unsigned long long>(ref_accum));
    }
    return {};
  }

 private:
  void build_plan() {
    if (p_.shape == "pipeline") {
      for (std::uint32_t s = 0; s < p_.depth; ++s) {
        const std::uint32_t prev_row = (s % 2) * p_.width;
        const std::uint32_t cur_row = ((s + 1) % 2) * p_.width;
        for (std::uint32_t i = 0; i < p_.width; ++i) {
          PlannedTask t;
          t.name = strprintf("pipe(s%u,l%u)", s, i);
          t.src = prev_row + i;
          t.write = cur_row + i;
          t.inout = false;
          if (i > 0) t.probes.push_back(prev_row + i - 1);
          t.c = mix64((static_cast<std::uint64_t>(s) << 32) | i);
          plan_.push_back(std::move(t));
        }
      }
    } else if (p_.shape == "randomdag") {
      Rng rng(seed_ ^ 0xDA61DA61ULL);
      const std::uint64_t tasks = static_cast<std::uint64_t>(p_.width) * p_.depth;
      for (std::uint64_t n = 0; n < tasks; ++n) {
        PlannedTask t;
        t.name = strprintf("dag(%llu)", static_cast<unsigned long long>(n));
        t.write = t.src = static_cast<std::uint32_t>(n % p_.width);
        for (std::uint32_t f = 0; f < p_.fanin && p_.width > 1; ++f) {
          std::uint32_t pick = static_cast<std::uint32_t>(rng.next_below(p_.width - 1));
          if (pick >= t.write) ++pick;  // never probe the written lane
          if (std::find(t.probes.begin(), t.probes.end(), pick) == t.probes.end()) {
            t.probes.push_back(pick);
          }
        }
        t.c = mix64(n);
        plan_.push_back(std::move(t));
      }
    } else {  // forkjoin
      for (std::uint32_t r = 0; r < p_.depth; ++r) {
        for (std::uint32_t i = 0; i < p_.width; ++i) {
          PlannedTask t;
          t.name = strprintf("fork(r%u,l%u)", r, i);
          t.write = t.src = i;
          t.c = mix64((static_cast<std::uint64_t>(r) << 32) | i);
          plan_.push_back(std::move(t));
        }
        PlannedTask j;
        j.name = strprintf("join(r%u)", r);
        j.is_join = true;
        for (std::uint32_t i = 0; i < p_.width; ++i) j.probes.push_back(i);
        j.c = mix64(0xA150000ULL + r);
        plan_.push_back(std::move(j));
      }
    }
  }

  void init_memory(Machine& m) {
    Rng rng(seed_);
    for (std::uint64_t j = 0; j < shared_elems_; ++j) {
      m.mem().write<std::uint64_t>(shared_ + j * 8, rng.next_u64());
    }
    // Pipeline starts from row 0 only; the other row is written before read.
    const std::uint32_t init_n = p_.shape == "pipeline" ? p_.width : buffers_n_;
    for (std::uint32_t b = 0; b < init_n; ++b) {
      for (std::uint64_t j = 0; j < elems_; ++j) {
        m.mem().write<std::uint64_t>(buf_[b] + j * 8, rng.next_u64());
      }
    }
  }

  void mirror_init(std::vector<std::vector<std::uint64_t>>& ref,
                   std::vector<std::uint64_t>& ref_shared) const {
    Rng rng(seed_);
    for (std::uint64_t j = 0; j < shared_elems_; ++j) ref_shared[j] = rng.next_u64();
    const std::uint32_t init_n = p_.shape == "pipeline" ? p_.width : buffers_n_;
    for (std::uint32_t b = 0; b < init_n; ++b) {
      for (std::uint64_t j = 0; j < elems_; ++j) ref[b][j] = rng.next_u64();
    }
  }

  SynParams p_;
  std::uint64_t seed_;
  std::uint64_t elems_ = 0;
  std::uint64_t shared_elems_ = 0;
  std::uint32_t buffers_n_ = 0;
  std::vector<PlannedTask> plan_;
  std::vector<VAddr> buf_;
  VAddr shared_ = 0, accum_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "synthetic",
    "parameterized task-graph generator: fork-join, pipeline or random DAG",
    "synthetic",
    ParamSchema()
        .add_enum("shape", "forkjoin", "task-graph family",
                  {"forkjoin", "pipeline", "randomdag"})
        .add_int("width", 16, "parallel lanes (tasks per round)", 1, 256)
        .add_int("depth", 8, "rounds / pipeline stages / DAG layers", 1, 256)
        .add_int("footprint_kb", 64, "per-lane region size in KB", 1, 4096)
        .add_double("reuse", 0.25,
                    "read-shared region fraction re-read by every task", 0.0, 1.0)
        .add_int("compute", 4, "annotated compute cycles per 8 elements", 0, 1024)
        .add_int("fanin", 3, "randomdag: probed input lanes per task", 0, 16),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<SyntheticApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
