// Ablation (beyond the paper): ADR hysteresis thresholds. The paper picks
// theta_inc/theta_dec = 80%/20% as a band with "good reaction time and a
// reduced number of reconfigurations"; this sweep quantifies the trade-off
// between reconfiguration count, powered size and energy.
#include <cstdio>

#include "bench_common.hpp"
#include "raccd/sim/machine.hpp"

using namespace raccd;

namespace {

SimStats run_with_thresholds(const std::string& app, SizeClass size, double inc,
                             double dec) {
  RunSpec spec;
  spec.app = app;
  spec.size = size;
  spec.mode = CohMode::kRaCCD;
  spec.adr = true;
  SimConfig cfg = config_for(spec);
  cfg.adr.theta_inc = inc;
  cfg.adr.theta_dec = dec;
  Machine m(cfg);
  auto a = make_app(app, AppConfig{size, spec.seed});
  a->run(m);
  const std::string err = a->verify(m);
  RACCD_ASSERT(err.empty(), "verification failed in ablation");
  return m.collect();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const struct {
    double inc, dec;
  } bands[] = {{0.95, 0.05}, {0.90, 0.10}, {0.80, 0.20}, {0.70, 0.30}, {0.60, 0.40}};
  const char* apps[] = {"cg", "jacobi", "kmeans"};

  std::printf("Ablation — ADR thresholds (RaCCD+ADR)\n");
  TextTable table({"app", "band", "reconfigs", "displaced", "powered %", "dir energy (nJ)",
                   "cycles"});
  for (const char* app : apps) {
    for (const auto& band : bands) {
      const SimStats s = run_with_thresholds(app, opts.size, band.inc, band.dec);
      table.add_row(
          {app, strprintf("%.0f/%.0f%s", 100 * band.inc, 100 * band.dec,
                          band.inc == 0.80 ? " (paper)" : ""),
           format_count(s.adr.grows + s.adr.shrinks), format_count(s.adr.entries_displaced),
           strprintf("%.1f", 100.0 * s.avg_dir_active_frac),
           strprintf("%.1f", s.dir_dyn_energy_pj / 1e3), format_count(s.cycles)});
    }
  }
  table.print();
  table.write_csv("results/ablation_adr_thresholds.csv");
  return 0;
}
