// Topology layer tests: flat equivalence with the legacy mesh, token
// parsing, socket views and socket-local home banking on NUMA shapes,
// socket-aware page placement, end-to-end cross-socket stats, and
// determinism of topology-swept runs.
#include <gtest/gtest.h>

#include "fabric_test_util.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/harness/sweep_cache.hpp"
#include "raccd/mem/phys_memory.hpp"
#include "raccd/topo/topology.hpp"

namespace raccd {
namespace {

[[nodiscard]] TopologyConfig flat4x4() {
  TopologyConfig t;
  t.kind = TopologyKind::kFlatMesh;
  t.width = 4;
  t.height = 4;
  return t;
}

TEST(Topology, FlatMatchesLegacyMesh) {
  const Topology topo(flat4x4(), 16);
  EXPECT_EQ(topo.sockets(), 1u);
  // Manhattan hops under XY routing, 2 cycles per hop (link + router).
  EXPECT_EQ(topo.route(0, 0).total_hops(), 0u);
  EXPECT_EQ(topo.route(0, 0).latency, 0u);
  EXPECT_EQ(topo.route(0, 15).total_hops(), 6u);
  EXPECT_EQ(topo.route(0, 15).latency, 12u);
  EXPECT_EQ(topo.route(5, 6).total_hops(), 1u);
  EXPECT_EQ(topo.route(0, 15).socket_hops, 0u);
  // Home bank is the legacy line-interleave; everything is socket 0.
  for (LineAddr l = 0; l < 64; ++l) {
    EXPECT_EQ(topo.home_bank(l), static_cast<BankId>(l & 15));
  }
  EXPECT_EQ(topo.socket_of(0), 0u);
  EXPECT_EQ(topo.socket_of(15), 0u);
  // Corner memory controllers with the legacy tie-break.
  EXPECT_EQ(topo.mem_controller(0), 0u);
  EXPECT_EQ(topo.mem_controller(5), 0u);
  EXPECT_EQ(topo.mem_controller(10), 15u);
  EXPECT_EQ(topo.mem_controller(15), 15u);
}

TEST(Topology, ParseTokens) {
  TopologyConfig cfg;
  std::uint32_t cores = 0;
  EXPECT_EQ(parse_topology("flat", cfg, cores), "");
  EXPECT_EQ(cfg.kind, TopologyKind::kFlatMesh);
  EXPECT_EQ(cores, 0u);

  EXPECT_EQ(parse_topology("cmesh", cfg, cores), "");
  EXPECT_EQ(cfg.kind, TopologyKind::kCMesh);
  EXPECT_EQ(cfg.cluster_size, 4u);
  EXPECT_EQ(parse_topology("cmesh8", cfg, cores), "");
  EXPECT_EQ(cfg.cluster_size, 8u);

  EXPECT_EQ(parse_topology("numa2", cfg, cores), "");
  EXPECT_EQ(cfg.kind, TopologyKind::kNuma);
  EXPECT_EQ(cfg.sockets, 2u);
  EXPECT_EQ(cores, 0u);
  EXPECT_EQ(parse_topology("numa4x16", cfg, cores), "");
  EXPECT_EQ(cfg.sockets, 4u);
  EXPECT_EQ(cores, 64u);

  EXPECT_NE(parse_topology("ring", cfg, cores), "");
  EXPECT_NE(parse_topology("numa3", cfg, cores), "");
  EXPECT_NE(parse_topology("numa2x48", cfg, cores), "");  // 96 cores > 64
  EXPECT_NE(parse_topology("cmesh3", cfg, cores), "");
}

TEST(Topology, NumaSocketViewsAndRoutes) {
  TopologyConfig tc;
  tc.kind = TopologyKind::kNuma;
  tc.sockets = 2;
  tc.socket_link_cycles = 40;
  const Topology topo(tc, 16);  // 2 sockets x 8 cores (4x2 mesh each)
  EXPECT_EQ(topo.cores_per_socket(), 8u);
  EXPECT_EQ(topo.socket_of(0), 0u);
  EXPECT_EQ(topo.socket_of(7), 0u);
  EXPECT_EQ(topo.socket_of(8), 1u);
  EXPECT_TRUE(topo.cross_socket(0, 8));
  EXPECT_FALSE(topo.cross_socket(0, 7));
  EXPECT_EQ(topo.bank_mask(0), 0x00FFull);
  EXPECT_EQ(topo.bank_mask(1), 0xFF00ull);

  // Same-socket routes never touch the socket link.
  const Route local = topo.route(0, 7);
  EXPECT_EQ(local.socket_hops, 0u);
  EXPECT_EQ(local.total_hops(), 4u);  // (0,0) -> (3,1) on a 4x2 grid
  // Cross-socket routes pay local legs to/from the gateways plus the link.
  const Route cross = topo.route(0, 8);
  EXPECT_EQ(cross.socket_hops, 1u);
  EXPECT_EQ(cross.link_hops, 0u);  // both tiles are their socket's gateway
  EXPECT_EQ(cross.latency, 40u);
  const Route far = topo.route(7, 15);
  EXPECT_EQ(far.socket_hops, 1u);
  EXPECT_EQ(far.link_hops, 8u);  // 4 hops to gateway, 4 from it
  EXPECT_EQ(far.latency, 8u * 2 + 40u);
  // Memory controllers never leave the node's socket.
  for (std::uint32_t n = 0; n < 16; ++n) {
    EXPECT_EQ(topo.socket_of(topo.mem_controller(n)), topo.socket_of(n));
  }
}

TEST(Topology, NumaHomeBankFollowsFrameSocket) {
  TopologyConfig tc;
  tc.kind = TopologyKind::kNuma;
  tc.sockets = 2;
  tc.phys_frames = 1024;  // socket 0 owns frames [0,512), socket 1 [512,1024)
  const Topology topo(tc, 16);
  const LineAddr socket0_line = 0;
  const LineAddr socket1_line = LineAddr{600} * kLinesPerPage;
  EXPECT_LT(topo.home_bank(socket0_line), 8u);
  EXPECT_GE(topo.home_bank(socket1_line), 8u);
  // Within a socket, lines interleave across its banks.
  EXPECT_EQ(topo.home_bank(1), 1u);
  EXPECT_EQ(topo.home_bank(socket1_line + 3), 8u + 3u);
}

TEST(Topology, CMeshConcentratesRouters) {
  TopologyConfig tc;
  tc.kind = TopologyKind::kCMesh;
  tc.cluster_size = 4;
  const Topology topo(tc, 16);  // 4 routers in a 2x2 grid
  EXPECT_EQ(topo.route(0, 3).total_hops(), 0u);   // same cluster: no links
  EXPECT_EQ(topo.route(0, 3).latency, 0u);
  EXPECT_EQ(topo.route(0, 15).total_hops(), 2u);  // opposite corner routers
  // Concentration shortens the worst-case path vs the flat 4x4 (6 hops).
  const Topology flat(flat4x4(), 16);
  EXPECT_LT(topo.route(0, 15).total_hops(), flat.route(0, 15).total_hops());
}

TEST(PhysMemorySockets, FirstTouchAllocatesOnRequestedSocket) {
  PhysMemory pm(128, AllocPolicy::kFirstTouch, /*seed=*/1, /*sockets=*/4);
  const PageNum f0 = pm.alloc_frame_on(0);
  const PageNum f2 = pm.alloc_frame_on(2);
  const PageNum f2b = pm.alloc_frame_on(2);
  EXPECT_EQ(pm.socket_of_frame(f0), 0u);
  EXPECT_EQ(pm.socket_of_frame(f2), 2u);
  EXPECT_EQ(pm.socket_of_frame(f2b), 2u);
  EXPECT_NE(f2, f2b);
  EXPECT_EQ(pm.frames_allocated(), 3u);
}

TEST(PhysMemorySockets, FirstTouchFallsBackWhenSocketExhausted) {
  PhysMemory pm(8, AllocPolicy::kFirstTouch, 1, 2);  // 4 frames/socket
  for (int i = 0; i < 4; ++i) EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame_on(0)), 0u);
  EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame_on(0)), 1u);  // socket 0 full
}

TEST(PhysMemorySockets, InterleaveRoundRobinsSockets) {
  PhysMemory pm(64, AllocPolicy::kInterleave, 1, 2);
  EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame()), 0u);
  EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame()), 1u);
  EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame()), 0u);
  EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame()), 1u);
}

TEST(PhysMemorySockets, ContiguousFillsSocketZeroFirst) {
  PhysMemory pm(64, AllocPolicy::kContiguous, 1, 2);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame()), 0u);
  EXPECT_EQ(pm.socket_of_frame(pm.alloc_frame()), 1u);
}

TEST(FabricTopo, SocketDirOccupancyAndCrossSocketRequests) {
  FabricConfig cfg = testutil::small_fabric_config();
  cfg.topo.kind = TopologyKind::kNuma;
  cfg.topo.sockets = 2;  // 2 sockets x 2 cores; frame-modulo memory striping
  Fabric fabric(cfg);
  ASSERT_EQ(fabric.topology().sockets(), 2u);
  // Frame 0 (lines 0..63) belongs to socket 0: its home banks are 0/1, so a
  // socket-1 core's request crosses the socket link and only socket 0's
  // directory banks fill.
  (void)fabric.access(/*core=*/3, /*line=*/0, /*is_write=*/false, /*nc=*/false, 0);
  EXPECT_EQ(fabric.stats().dir_reqs_cross_socket, 1u);
  EXPECT_GT(fabric.mesh().stats().cross_socket.messages, 0u);
  EXPECT_GT(fabric.socket_dir_occupancy(0), 0.0);
  EXPECT_EQ(fabric.socket_dir_occupancy(1), 0.0);
  // A socket-0 core hitting the same home stays on-socket.
  (void)fabric.access(/*core=*/1, /*line=*/1, false, false, 10);
  EXPECT_EQ(fabric.stats().dir_reqs_cross_socket, 1u);
}

TEST(RunSpecTopo, KeyExtendsOnlyForNonFlat) {
  RunSpec flat;
  flat.app = "jacobi";
  flat.size = SizeClass::kSmall;
  flat.mode = CohMode::kFullCoh;
  EXPECT_EQ(flat.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5");
  RunSpec numa = flat;
  numa.topo = "numa2";
  EXPECT_EQ(numa.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5-tnuma2");
  RunSpec ft = flat;
  ft.alloc = AllocPolicy::kFirstTouch;
  EXPECT_EQ(ft.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-ft-fifo-v5");
}

TEST(RunSpecTopo, ConfigForAppliesTopology) {
  RunSpec spec;
  spec.topo = "numa4x16";
  const SimConfig cfg = config_for(spec);
  EXPECT_EQ(cfg.fabric.topo.kind, TopologyKind::kNuma);
  EXPECT_EQ(cfg.fabric.topo.sockets, 4u);
  EXPECT_EQ(cfg.fabric.cores, 64u);
}

TEST(GridTopo, TopologiesAreAnInnermostAxis) {
  const auto specs = Grid()
                         .workload("histo")
                         .modes({CohMode::kFullCoh, CohMode::kRaCCD})
                         .topologies({"flat", "numa2"})
                         .specs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].topo, "flat");
  EXPECT_EQ(specs[1].topo, "numa2");
  EXPECT_EQ(specs[0].mode, CohMode::kFullCoh);
  EXPECT_EQ(specs[2].mode, CohMode::kRaCCD);
}

TEST(TopologyEndToEnd, CrossSocketStatsOnlyOnNuma) {
  RunSpec spec;
  spec.app = "histo";
  spec.size = SizeClass::kTiny;
  spec.mode = CohMode::kFullCoh;
  const SimStats flat = run_one(spec);
  EXPECT_EQ(flat.noc.cross_socket.messages, 0u);
  EXPECT_EQ(flat.fabric.dir_reqs_cross_socket, 0u);
  EXPECT_EQ(flat.noc.socket_link_flits, 0u);

  spec.topo = "numa2";
  const SimStats numa = run_one(spec);
  EXPECT_GT(numa.noc.cross_socket.messages, 0u);
  EXPECT_GT(numa.noc.socket_link_flits, 0u);
  EXPECT_LE(numa.noc.cross_socket.flit_hops, numa.noc.total_flit_hops());
  EXPECT_GT(numa.cycles, 0u);
}

TEST(TopologyEndToEnd, FirstTouchVerifiesUnderEveryBackend) {
  // Lazy first-touch mapping must keep every backend functionally correct
  // (run_one aborts on verification failure).
  for (const CohMode mode : kAllBackends) {
    RunSpec spec;
    spec.app = "histo";
    spec.size = SizeClass::kTiny;
    spec.mode = mode;
    spec.topo = "numa2";
    spec.alloc = AllocPolicy::kFirstTouch;
    const SimStats s = run_one(spec);
    EXPECT_GT(s.cycles, 0u) << to_string(mode);
  }
}

TEST(TopologyEndToEnd, AdrOnNumaIsDeterministic) {
  // ADR's multi-socket shrink damper (socket occupancy consult) must keep
  // runs deterministic and the controller active.
  RunSpec spec;
  spec.app = "jacobi";
  spec.size = SizeClass::kTiny;
  spec.mode = CohMode::kRaCCD;
  spec.adr = true;
  spec.topo = "numa2";
  const SimStats a = run_one(spec);
  const SimStats b = run_one(spec);
  EXPECT_EQ(stats_to_text(a), stats_to_text(b));
  EXPECT_GT(a.adr.polls, 0u);
}

TEST(TopologyEndToEnd, SameSpecSameTopologyIsDeterministic) {
  for (const char* topo : {"numa2", "cmesh", "numa4"}) {
    RunSpec spec;
    spec.app = "jacobi";
    spec.size = SizeClass::kTiny;
    spec.mode = CohMode::kRaCCD;
    spec.topo = topo;
    spec.alloc = AllocPolicy::kFirstTouch;
    const SimStats a = run_one(spec);
    const SimStats b = run_one(spec);
    // Every serialized counter must match bit-for-bit across repeated runs.
    EXPECT_EQ(stats_to_text(a), stats_to_text(b)) << topo;
  }
}

}  // namespace
}  // namespace raccd
