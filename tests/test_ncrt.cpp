// NCRT and raccd_register tests, including the paper's Fig. 5 translation
// example (byte-precise bounds, contiguous-frame collapsing) and overflow
// fallback.
#include <gtest/gtest.h>

#include "raccd/core/ncrt.hpp"
#include "raccd/core/raccd_engine.hpp"
#include "raccd/mem/page_table.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {
namespace {

TEST(Ncrt, InsertLookupClear) {
  Ncrt t(4);
  EXPECT_TRUE(t.insert(100, 200));
  EXPECT_TRUE(t.lookup(100));
  EXPECT_TRUE(t.lookup(199));
  EXPECT_FALSE(t.lookup(200));
  EXPECT_FALSE(t.lookup(99));
  EXPECT_EQ(t.stats().lookups, 4u);
  EXPECT_EQ(t.stats().hits, 2u);
  t.clear();
  EXPECT_FALSE(t.lookup(150));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.stats().clears, 1u);
}

TEST(Ncrt, OverflowRejectsAndCounts) {
  Ncrt t(2);
  EXPECT_TRUE(t.insert(0, 10));
  EXPECT_TRUE(t.insert(20, 30));
  EXPECT_FALSE(t.insert(40, 50));
  EXPECT_EQ(t.stats().overflows, 1u);
  EXPECT_TRUE(t.full());
  EXPECT_FALSE(t.lookup(45));  // rejected region stays coherent
}

class RegisterTest : public ::testing::Test {
 protected:
  RegisterTest() : engine_(1, RaccdEngineConfig{}), tlb_(64) {}
  RaccdEngine engine_;
  Tlb tlb_;
  PageTable pt_;
};

TEST_F(RegisterTest, PaperFig5Example) {
  // Paper Fig. 5: virtual range [0xaa044, 0xad088], pages 0xaa..0xad mapping
  // to frames 0xb2, 0xb3, 0xb7, 0xb8 -> two collapsed physical ranges:
  // [0xb2044, 0xb4000) and [0xb7000, 0xb8089).
  pt_.map(0xaa, 0xb2);
  pt_.map(0xab, 0xb3);
  pt_.map(0xac, 0xb7);
  pt_.map(0xad, 0xb8);
  const VAddr start = 0xaa044;
  const VAddr end_inclusive = 0xad088;
  const auto out =
      engine_.register_region(0, start, end_inclusive - start + 1, tlb_, pt_);
  EXPECT_EQ(out.pages_translated, 4u);
  EXPECT_EQ(out.ranges_inserted, 2u);
  EXPECT_FALSE(out.overflowed);
  const auto& entries = engine_.ncrt(0).entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].begin, 0xb2044u);
  EXPECT_EQ(entries[0].end, 0xb4000u);  // paper prints the last byte 0xb3fff
  EXPECT_EQ(entries[1].begin, 0xb7000u);
  EXPECT_EQ(entries[1].end, 0xb8089u);  // paper prints the last byte 0xb8088
  EXPECT_TRUE(engine_.is_noncoherent(0, 0xb3fff));
  EXPECT_FALSE(engine_.is_noncoherent(0, 0xb4000));
  EXPECT_TRUE(engine_.is_noncoherent(0, 0xb8088));
  EXPECT_FALSE(engine_.is_noncoherent(0, 0xb8089));
}

TEST_F(RegisterTest, ContiguousFramesCollapseToOneEntry) {
  for (PageNum v = 0; v < 32; ++v) pt_.map(v, v + 10);
  const auto out = engine_.register_region(0, 0, 32 * kPageBytes, tlb_, pt_);
  EXPECT_EQ(out.ranges_inserted, 1u);
  EXPECT_EQ(out.pages_translated, 32u);
  const auto& entries = engine_.ncrt(0).entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].begin, 10u * kPageBytes);
  EXPECT_EQ(entries[0].end, 42u * kPageBytes);
}

TEST_F(RegisterTest, LatencyGrowsWithPagesAndWalks) {
  for (PageNum v = 0; v < 64; ++v) pt_.map(v, v);
  const auto cold = engine_.register_region(0, 0, 16 * kPageBytes, tlb_, pt_);
  EXPECT_EQ(cold.tlb_misses, 16u);
  // Same region again: TLB now warm, so much cheaper.
  const auto warm = engine_.register_region(0, 0, 16 * kPageBytes, tlb_, pt_);
  EXPECT_EQ(warm.tlb_misses, 0u);
  EXPECT_GT(cold.cycles, warm.cycles);
  const auto& cfg = engine_.config();
  EXPECT_EQ(cold.cycles, cfg.instr_overhead_cycles + 16 * cfg.per_page_lookup_cycles +
                             16 * cfg.tlb_walk_cycles + cfg.per_insert_cycles);
}

TEST_F(RegisterTest, FragmentedMappingNeedsManyEntriesAndOverflows) {
  // Alternating frames (v -> 2v) are never contiguous: one entry per page.
  for (PageNum v = 0; v < 64; ++v) pt_.map(v, v * 2);
  RaccdEngineConfig cfg;
  cfg.ncrt_entries = 8;
  RaccdEngine small(1, cfg);
  const auto out = small.register_region(0, 0, 16 * kPageBytes, tlb_, pt_);
  EXPECT_TRUE(out.overflowed);
  EXPECT_EQ(out.ranges_inserted, 8u);
  EXPECT_EQ(small.ncrt(0).stats().overflows, 8u);
}

TEST_F(RegisterTest, InvalidateClearsNcrt) {
  pt_.map(0, 0);
  engine_.register_region(0, 0, 100, tlb_, pt_);
  EXPECT_EQ(engine_.ncrt(0).size(), 1u);
  const Cycle c = engine_.invalidate(0);
  EXPECT_EQ(c, engine_.config().instr_overhead_cycles);
  EXPECT_EQ(engine_.ncrt(0).size(), 0u);
}

TEST_F(RegisterTest, ZeroSizeRegionIsNoop) {
  const auto out = engine_.register_region(0, 0x1000, 0, tlb_, pt_);
  EXPECT_EQ(out.pages_translated, 0u);
  EXPECT_EQ(engine_.ncrt(0).size(), 0u);
}

TEST_F(RegisterTest, PerCoreTablesAreIndependent) {
  RaccdEngine multi(4, RaccdEngineConfig{});
  pt_.map(0, 5);
  multi.register_region(2, 0, 64, tlb_, pt_);
  EXPECT_TRUE(multi.is_noncoherent(2, 5 * kPageBytes));
  EXPECT_FALSE(multi.is_noncoherent(0, 5 * kPageBytes));
  EXPECT_FALSE(multi.is_noncoherent(3, 5 * kPageBytes));
  const auto total = multi.total_stats();
  EXPECT_EQ(total.inserts, 1u);
}

}  // namespace
}  // namespace raccd
