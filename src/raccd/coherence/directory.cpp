#include "raccd/coherence/directory.hpp"

#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"

namespace raccd {

DirectoryBank::DirectoryBank(const DirGeometry& geo)
    : total_sets_(geo.entries_per_bank / geo.ways),
      active_sets_(total_sets_),
      ways_(geo.ways),
      bank_bits_(geo.bank_bits),
      legacy_(legacy_structures()),
      repl_policy_(geo.repl),
      repl_(geo.repl, total_sets_, geo.ways) {
  RACCD_ASSERT(is_pow2(total_sets_), "directory bank set count must be a power of two");
  entries_.resize(static_cast<std::size_t>(total_sets_) * ways_);
  tags_.assign(static_cast<std::size_t>(total_sets_) * ways_, kNoTag);
}

DirEntry* DirectoryBank::find(LineAddr line) noexcept {
  const std::uint32_t set = set_of(line);
  if (!legacy_) {
    const LineAddr* tags = tags_.data() + static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line) return &at(set, w);
    }
    return nullptr;
  }
  for (std::uint32_t w = 0; w < ways_; ++w) {
    DirEntry& e = at(set, w);
    if (e.valid && e.line == line) return &e;
  }
  return nullptr;
}

const DirEntry* DirectoryBank::find(LineAddr line) const noexcept {
  return const_cast<DirectoryBank*>(this)->find(line);
}

void DirectoryBank::touch(const DirEntry& e) noexcept {
  const auto idx = static_cast<std::size_t>(&e - entries_.data());
  repl_.touch(static_cast<std::uint32_t>(idx / ways_),
              static_cast<std::uint32_t>(idx % ways_));
}

bool DirectoryBank::has_free_way(LineAddr line) const noexcept {
  const std::uint32_t set = const_cast<DirectoryBank*>(this)->set_of(line);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!entries_[static_cast<std::size_t>(set) * ways_ + w].valid) return true;
  }
  return false;
}

DirEntry DirectoryBank::peek_victim(LineAddr line) noexcept {
  const std::uint32_t set = set_of(line);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!at(set, w).valid) return DirEntry{};
  }
  return at(set, repl_.victim(set));
}

DirEntry& DirectoryBank::alloc(LineAddr line) {
  RACCD_DEBUG_ASSERT(find(line) == nullptr, "directory double-allocation");
  const std::uint32_t set = set_of(line);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    DirEntry& e = at(set, w);
    if (!e.valid) {
      e = DirEntry{line, true, 0, kNoCore};
      set_tag(set, w, line);
      ++valid_count_;
      repl_.touch(set, w);
      return e;
    }
  }
  RACCD_ASSERT(false, "directory alloc with no free way (victim not recalled)");
  return at(set, 0);
}

bool DirectoryBank::remove(LineAddr line) noexcept {
  DirEntry* e = find(line);
  if (e == nullptr) return false;
  *e = DirEntry{};
  tags_[static_cast<std::size_t>(e - entries_.data())] = kNoTag;
  --valid_count_;
  return true;
}

std::uint32_t DirectoryBank::resize(std::uint32_t new_active_sets,
                                    std::vector<DirEntry>& displaced) {
  RACCD_ASSERT(is_pow2(new_active_sets) && new_active_sets >= 1 &&
                   new_active_sets <= total_sets_,
               "invalid ADR resize target");
  if (new_active_sets == active_sets_) return 0;
  // Gather all valid entries, clear, re-index under the new mask. This is the
  // "move the contents of the directory to the appropriate entries" step of
  // paper §III-D, whose cost the caller converts into bank-blocked cycles.
  std::vector<DirEntry> survivors;
  survivors.reserve(valid_count_);
  for (auto& e : entries_) {
    if (e.valid) {
      survivors.push_back(e);
      e = DirEntry{};
    }
  }
  tags_.assign(tags_.size(), kNoTag);
  valid_count_ = 0;
  active_sets_ = new_active_sets;
  repl_ = ReplacementState(repl_policy_, total_sets_, ways_);
  std::uint32_t moved = 0;
  for (const DirEntry& s : survivors) {
    const std::uint32_t set = set_of(s.line);
    bool placed = false;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      DirEntry& slot = at(set, w);
      if (!slot.valid) {
        slot = s;
        set_tag(set, w, s.line);
        ++valid_count_;
        repl_.touch(set, w);
        placed = true;
        ++moved;
        break;
      }
    }
    if (!placed) displaced.push_back(s);  // conflict overflow: caller recalls
  }
  return moved;
}

void DirectoryBank::occupancy_tick(Cycle now) noexcept {
  if (now > last_tick_) {
    const double dt = static_cast<double>(now - last_tick_);
    occupancy_integral_ += dt * static_cast<double>(valid_count_);
    active_integral_ += dt * static_cast<double>(active_entries());
    last_tick_ = now;
  }
}

}  // namespace raccd
