// Adaptive Directory Reduction demo: runs one workload with and without ADR
// and shows the resizing activity, the powered fraction of the directory
// and the dynamic-energy saving (paper §III-D, Fig. 9/10 mechanism).
//
// Usage: adr_demo [workload[:k=v,...]] (default cg)
#include <cstdio>
#include <string>

#include "raccd/common/format.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/metrics/metric_schema.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const std::string ref = argc > 1 ? argv[1] : "cg";

  std::printf("running '%s' under RaCCD 1:1 with and without ADR...\n\n", ref.c_str());
  const ResultSet rs = Grid()
                           .workload(ref)
                           .size(SizeClass::kSmall)
                           .mode(CohMode::kRaCCD)
                           .adr_values({false, true})
                           .run();
  const SimStats& without = rs.at(ref, CohMode::kRaCCD, 1, /*adr=*/false);
  const SimStats& with = rs.at(ref, CohMode::kRaCCD, 1, /*adr=*/true);

  std::printf("                          RaCCD 1:1      RaCCD+ADR\n");
  std::printf("cycles                %12s  %12s  (%.2fx)\n",
              format_count(without.cycles).c_str(), format_count(with.cycles).c_str(),
              static_cast<double>(with.cycles) / static_cast<double>(without.cycles));
  if (without.dir_dyn_energy_pj > 0.0) {
    std::printf("dir dynamic energy    %10.1f nJ  %10.1f nJ  (-%.0f%%)\n",
                without.dir_dyn_energy_pj / 1e3, with.dir_dyn_energy_pj / 1e3,
                100.0 * (1.0 - with.dir_dyn_energy_pj / without.dir_dyn_energy_pj));
  } else {
    std::printf("dir dynamic energy    %10.1f nJ  %10.1f nJ  (app is fully "
                "non-coherent under RaCCD)\n",
                without.dir_dyn_energy_pj / 1e3, with.dir_dyn_energy_pj / 1e3);
  }
  std::printf("avg powered fraction  %11.1f%%  %11.1f%%\n",
              100.0 * metric_value(without, "dir.avg_active_frac"),
              100.0 * metric_value(with, "dir.avg_active_frac"));
  std::printf("avg occupancy         %11.1f%%  %11.1f%%\n",
              100.0 * metric_value(without, "dir.avg_occupancy"),
              100.0 * metric_value(with, "dir.avg_occupancy"));
  std::printf("\nADR activity: %llu grows, %llu shrinks, %llu entries moved, "
              "%llu displaced, %s bank-blocked cycles\n",
              static_cast<unsigned long long>(with.adr.grows),
              static_cast<unsigned long long>(with.adr.shrinks),
              static_cast<unsigned long long>(with.adr.entries_moved),
              static_cast<unsigned long long>(with.adr.entries_displaced),
              format_count(with.adr.blocked_cycles).c_str());
  return 0;
}
