// Per-task memory access traces.
//
// Task bodies execute functionally once (at schedule time) while recording
// their loads/stores and annotated compute cycles here; the machine then
// replays the trace through the timing model. Consecutive same-line,
// same-kind accesses are run-length merged: after the first access the line
// is L1-resident and no other event can intervene within the record, so the
// remaining repeats are guaranteed L1 hits — the replay charges them as such
// without touching the protocol engine. This compresses streaming kernels
// ~16x (16 floats per 64 B line).
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/assert.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

struct AccessRecord {
  VAddr vaddr = 0;
  std::uint32_t compute_gap = 0;  ///< compute cycles preceding this access
  std::uint16_t repeat = 1;       ///< merged same-line same-kind accesses
  std::uint8_t is_write = 0;
  std::uint8_t size = 0;  ///< access width in bytes
};

class AccessTrace {
 public:
  void record(VAddr vaddr, std::uint8_t size, bool is_write) {
    RACCD_DEBUG_ASSERT(line_of(vaddr) == line_of(vaddr + size - 1),
                       "access straddles a cache line");
    if (!records_.empty() && pending_compute_ == 0) {
      AccessRecord& last = records_.back();
      if (line_of(last.vaddr) == line_of(vaddr) &&
          last.is_write == static_cast<std::uint8_t>(is_write) && last.repeat < 0xffff) {
        ++last.repeat;
        ++total_accesses_;
        return;
      }
    }
    AccessRecord r;
    r.vaddr = vaddr;
    r.compute_gap = pending_compute_ > 0xffffffffULL
                        ? 0xffffffffu
                        : static_cast<std::uint32_t>(pending_compute_);
    r.size = size;
    r.is_write = static_cast<std::uint8_t>(is_write);
    records_.push_back(r);
    total_compute_ += r.compute_gap;
    pending_compute_ = 0;
    ++total_accesses_;
  }

  /// Annotate compute work between memory accesses.
  void add_compute(std::uint64_t cycles) noexcept { pending_compute_ += cycles; }

  void clear() noexcept {
    records_.clear();
    pending_compute_ = 0;
    total_accesses_ = 0;
    total_compute_ = 0;
  }

  [[nodiscard]] const std::vector<AccessRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t total_accesses() const noexcept { return total_accesses_; }
  /// Compute cycles recorded after the final access (charged at task end).
  [[nodiscard]] std::uint64_t trailing_compute() const noexcept { return pending_compute_; }
  /// Sum of every record's compute_gap — the whole trace's inter-access
  /// compute, available without walking the records (the sampled
  /// simulator's far fast-forward tier dilates whole tasks from this).
  [[nodiscard]] std::uint64_t total_compute() const noexcept { return total_compute_; }

 private:
  std::vector<AccessRecord> records_;
  std::uint64_t pending_compute_ = 0;
  std::uint64_t total_accesses_ = 0;
  std::uint64_t total_compute_ = 0;
};

}  // namespace raccd
