// Simulated physical page frame allocator.
//
// The paper observes (§III-C.2) that an unmodified Linux kernel maps the
// benchmarks' contiguous virtual pages to contiguous physical pages, so NCRT
// range collapsing is highly effective. We model that as the default
// Contiguous policy and provide a Fragmented policy (random frame order) to
// stress NCRT capacity in tests and ablations.
//
// Multi-socket topologies (topo/topology.hpp) divide the frame space into
// per-socket contiguous ranges (one memory controller's range per socket)
// and add two socket-aware policies:
//  * FirstTouch  — a page's frame comes from the socket of the core that
//    first touches it (mapping is deferred to that touch; Linux default).
//  * Interleave  — successive pages round-robin across the sockets'
//    ranges (numactl --interleave).
// Contiguous on a multi-socket machine fills socket 0's range first — the
// NUMA-oblivious worst case every cross-socket measurement is judged
// against.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/rng.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

enum class AllocPolicy {
  kContiguous,  ///< frames handed out in increasing order (Linux-like for our workloads)
  kFragmented,  ///< frames handed out in pseudo-random order
  kFirstTouch,  ///< frame from the socket of the first-touching core (lazy mapping)
  kInterleave,  ///< successive pages round-robin across the sockets
};

[[nodiscard]] constexpr const char* to_string(AllocPolicy p) noexcept {
  switch (p) {
    case AllocPolicy::kContiguous: return "cont";
    case AllocPolicy::kFragmented: return "frag";
    case AllocPolicy::kFirstTouch: return "ft";
    case AllocPolicy::kInterleave: return "il";
  }
  return "?";
}

class PhysMemory {
 public:
  /// @param frames  total number of physical page frames available.
  /// @param sockets memory sockets; frames split into per-socket contiguous
  ///                ranges (must match the machine topology's socket count).
  PhysMemory(std::uint64_t frames, AllocPolicy policy, std::uint64_t seed = 0x9acc5eedULL,
             std::uint32_t sockets = 1);

  /// Allocate one physical frame with no placement preference (Contiguous/
  /// Fragmented order; Interleave round-robins sockets). Asserts if physical
  /// memory is exhausted.
  [[nodiscard]] PageNum alloc_frame();

  /// Allocate the next free frame owned by `socket` (FirstTouch). Falls back
  /// to the nearest socket with free frames when `socket`'s range is full.
  [[nodiscard]] PageNum alloc_frame_on(std::uint32_t socket);

  /// Memory socket owning `frame` (per-socket contiguous ranges).
  [[nodiscard]] std::uint32_t socket_of_frame(PageNum frame) const noexcept;

  [[nodiscard]] std::uint64_t frames_total() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t frames_allocated() const noexcept { return allocated_; }
  [[nodiscard]] AllocPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint32_t sockets() const noexcept { return sockets_; }

 private:
  [[nodiscard]] std::uint64_t frames_per_socket() const noexcept {
    return frames_ / sockets_;
  }

  std::uint64_t frames_;
  AllocPolicy policy_;
  std::uint32_t sockets_;
  std::uint64_t allocated_ = 0;            // frames handed out so far
  std::uint64_t next_ = 0;                 // global cursor (Contiguous/Fragmented)
  std::uint32_t rr_socket_ = 0;            // Interleave cursor
  std::vector<std::uint64_t> socket_next_; // per-socket cursor into its range
  std::vector<PageNum> shuffled_;          // lazily built permutation (Fragmented only)
  Rng rng_;
};

}  // namespace raccd
