#include "raccd/mem/phys_memory.hpp"

#include <numeric>

#include "raccd/common/assert.hpp"

namespace raccd {

PhysMemory::PhysMemory(std::uint64_t frames, AllocPolicy policy, std::uint64_t seed)
    : frames_(frames), policy_(policy), rng_(seed) {
  RACCD_ASSERT(frames > 0, "physical memory needs at least one frame");
  if (policy_ == AllocPolicy::kFragmented) {
    shuffled_.resize(frames_);
    std::iota(shuffled_.begin(), shuffled_.end(), PageNum{0});
    // Fisher-Yates with the deterministic RNG.
    for (std::uint64_t i = frames_ - 1; i > 0; --i) {
      const std::uint64_t j = rng_.next_below(i + 1);
      std::swap(shuffled_[i], shuffled_[j]);
    }
  }
}

PageNum PhysMemory::alloc_frame() {
  RACCD_ASSERT(next_ < frames_, "simulated physical memory exhausted");
  const std::uint64_t idx = next_++;
  return policy_ == AllocPolicy::kContiguous ? PageNum{idx} : shuffled_[idx];
}

}  // namespace raccd
