// Checker-focused tests: the value-version tracker and structural scan must
// actually *catch* corruption, not just stay silent on correct runs.
#include <gtest/gtest.h>

#include "fabric_test_util.hpp"

namespace raccd {
namespace {

using testutil::line_in_bank;
using testutil::small_fabric_config;

TEST(Checker, NonStrictCountsStaleLoads) {
  CoherenceChecker checker(/*strict=*/false);
  checker.on_store(5, 100);
  checker.on_load(5, 100);
  EXPECT_EQ(checker.violations(), 0u);
  checker.on_load(5, 99);  // stale
  EXPECT_EQ(checker.violations(), 1u);
  checker.on_load(7, 0);  // never-written line observed at version 0: fine
  EXPECT_EQ(checker.violations(), 1u);
  checker.on_load(7, 3);  // phantom write
  EXPECT_EQ(checker.violations(), 2u);
  EXPECT_EQ(checker.loads_checked(), 4u);
  EXPECT_EQ(checker.stores_seen(), 1u);
}

TEST(Checker, StrictDiesOnStaleLoad) {
  CoherenceChecker checker(/*strict=*/true);
  checker.on_store(5, 100);
  EXPECT_DEATH(checker.on_load(5, 99), "stale data");
}

TEST(Checker, ScanCleanOnFreshAndActiveFabric) {
  Fabric fabric(small_fabric_config(), nullptr);
  EXPECT_TRUE(CoherenceChecker::scan(fabric).empty());
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    fabric.access(static_cast<CoreId>(i % 4), line_in_bank(i % 4, i), i % 3 == 0,
                  i % 5 == 0, t++);
  }
  EXPECT_TRUE(CoherenceChecker::scan(fabric).empty());
}

TEST(Checker, ScanDetectsUntrackedCoherentL1Copy) {
  Fabric fabric(small_fabric_config(), nullptr);
  const LineAddr l = line_in_bank(0, 3);
  fabric.access(0, l, false, false, 0);
  // Corrupt: drop the directory entry behind the fabric's back.
  fabric.dir(0).remove(l);
  const auto violations = CoherenceChecker::scan(fabric);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) {
    found |= v.find("without directory entry") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Checker, ScanDetectsNcLineWithDirectoryEntry) {
  Fabric fabric(small_fabric_config(), nullptr);
  const LineAddr l = line_in_bank(1, 4);
  fabric.access(0, l, false, true, 0);  // NC fill (no dir entry)
  fabric.dir(1).alloc(l);               // corrupt: track the NC line
  const auto violations = CoherenceChecker::scan(fabric);
  bool found = false;
  for (const auto& v : violations) {
    found |= v.find("NC") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Checker, ScanDetectsDoubleExclusive) {
  Fabric fabric(small_fabric_config(), nullptr);
  const LineAddr l = line_in_bank(2, 6);
  fabric.access(0, l, true, false, 0);  // M at core 0
  // Corrupt: force a second coherent copy in E state into core 1's L1.
  fabric.l1(1).fill(l, false, Mesi::kExclusive, false, 0);
  const auto violations = CoherenceChecker::scan(fabric);
  bool found = false;
  for (const auto& v : violations) {
    found |= v.find("exclusive") != std::string::npos ||
             v.find("E/M copy coexists") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Checker, ScanDetectsDirtySharedCopy) {
  Fabric fabric(small_fabric_config(), nullptr);
  const LineAddr l = line_in_bank(3, 2);
  fabric.access(0, l, false, false, 0);
  L1Line* line = fabric.l1(0).find(l);
  ASSERT_NE(line, nullptr);
  line->coh = Mesi::kShared;
  line->dirty = true;  // corrupt: dirty outside M
  const auto violations = CoherenceChecker::scan(fabric);
  bool found = false;
  for (const auto& v : violations) {
    found |= v.find("dirty coherent copy") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace raccd
