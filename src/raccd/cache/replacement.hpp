// Replacement policies for the set-associative structures (L1, LLC banks,
// directory banks). Tree-PLRU is the paper's pseudoLRU (Table I); true LRU
// and FIFO are provided for tests/ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"

namespace raccd {

enum class ReplPolicy : std::uint8_t { kTreePlru, kLru, kFifo };

[[nodiscard]] constexpr const char* to_string(ReplPolicy p) noexcept {
  switch (p) {
    case ReplPolicy::kTreePlru: return "tree-plru";
    case ReplPolicy::kLru: return "lru";
    case ReplPolicy::kFifo: return "fifo";
  }
  return "?";
}

/// Replacement state for one cache, all sets.
///
/// Tree-PLRU keeps ways-1 tree bits per set packed in a uint64 (ways <= 64,
/// power-of-two). LRU/FIFO keep an age counter per way.
class ReplacementState {
 public:
  ReplacementState(ReplPolicy policy, std::uint32_t sets, std::uint32_t ways);

  /// Record an access to (set, way).
  void touch(std::uint32_t set, std::uint32_t way) noexcept;

  /// Way to evict in `set` (callers prefer invalid ways before asking).
  [[nodiscard]] std::uint32_t victim(std::uint32_t set) const noexcept;

  [[nodiscard]] ReplPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }

 private:
  ReplPolicy policy_;
  std::uint32_t sets_;
  std::uint32_t ways_;
  unsigned levels_ = 0;                 // log2(ways), tree-PLRU only
  std::vector<std::uint64_t> tree_;     // tree bits per set (tree-PLRU)
  std::vector<std::uint64_t> age_;      // per (set, way) stamp (LRU/FIFO)
  std::uint64_t clock_ = 0;
};

}  // namespace raccd
