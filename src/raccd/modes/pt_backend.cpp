#include "raccd/modes/pt_backend.hpp"

#include "raccd/coherence/fabric.hpp"
#include "raccd/obs/trace_sink.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

void PtBackend::on_obs_trace() {
  if (obs_trace_ == nullptr) return;
  obs_ids_.flip = obs_trace_->intern("pt_flip");
  obs_ids_.vpage = obs_trace_->intern("vpage");
  obs_ids_.prev_owner = obs_trace_->intern("prev_owner");
}

AccessClass PtBackend::classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                      PAddr paddr, PageNum pframe, Cycle now) {
  (void)paddr;
  return static_cast<PtBackend*>(self)->classify(c, vaddr, pframe, now);
}

AccessClass PtBackend::classify(CoreId c, VAddr vaddr, PageNum pframe, Cycle now) {
  AccessClass out;
  const PageNum vpage = page_of(vaddr);
  const PtClassifier::Decision d = pt_.on_access(c, vpage);
  if (d.transition) {
    // private -> shared recovery: flush the previous owner's cached lines of
    // this page and shoot down its TLB entry; the accessor waits for the
    // recovery to complete.
    const auto fo = ctx_.fabric.flush_page_lines(d.prev_owner, pframe, now);
    ctx_.tlbs[d.prev_owner].invalidate(vpage);
    out.extra_cycles = fo.cycles + ctx_.cfg.timing.pt_shootdown_cycles;
    if (obs_trace_ != nullptr && obs_trace_->wants(obs::TraceCat::kCoh)) {
      // Classification flip: the page just went private -> shared forever
      // (paper §II-B); placed when the recovery completes.
      obs_trace_->instant(obs::TraceCat::kCoh, obs::kPidCoherence, c,
                          obs_ids_.flip, now + out.extra_cycles, obs_ids_.vpage,
                          vpage, obs_ids_.prev_owner, d.prev_owner);
    }
  }
  out.nc = d.noncoherent;
  return out;
}

void PtBackend::accumulate(SimStats& s) const { s.pt = pt_.stats(); }

}  // namespace raccd
