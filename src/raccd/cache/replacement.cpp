#include "raccd/cache/replacement.hpp"

namespace raccd {

ReplacementState::ReplacementState(ReplPolicy policy, std::uint32_t sets, std::uint32_t ways)
    : policy_(policy), sets_(sets), ways_(ways) {
  RACCD_ASSERT(sets > 0 && ways > 0, "degenerate cache geometry");
  if (policy_ == ReplPolicy::kTreePlru) {
    RACCD_ASSERT(is_pow2(ways) && ways <= 64, "tree-PLRU requires pow2 ways <= 64");
    levels_ = log2_exact(ways);
    tree_.assign(sets, 0);
  } else {
    age_.assign(static_cast<std::size_t>(sets) * ways, 0);
  }
}

void ReplacementState::touch(std::uint32_t set, std::uint32_t way) noexcept {
  RACCD_DEBUG_ASSERT(set < sets_ && way < ways_, "touch out of range");
  switch (policy_) {
    case ReplPolicy::kTreePlru: {
      if (levels_ == 0) return;
      // Walk root->leaf; at each level point the tree bit AWAY from `way`
      // (victim() follows the bits: 0 = left, 1 = right).
      std::uint64_t bits = tree_[set];
      std::uint32_t node = 0;  // heap-style index, root = 0
      for (unsigned level = 0; level < levels_; ++level) {
        const std::uint32_t bit = (way >> (levels_ - 1 - level)) & 1u;
        if (bit != 0) {
          bits &= ~(1ULL << node);  // way is in right subtree -> point left (0)
        } else {
          bits |= (1ULL << node);  // way is in left subtree -> point right (1)
        }
        node = 2 * node + 1 + bit;
      }
      tree_[set] = bits;
      break;
    }
    case ReplPolicy::kLru:
      age_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
      break;
    case ReplPolicy::kFifo: {
      // FIFO stamps only on first touch (fill); callers touch on every
      // access, so only overwrite a zero stamp.
      auto& stamp = age_[static_cast<std::size_t>(set) * ways_ + way];
      if (stamp == 0) stamp = ++clock_;
      break;
    }
  }
}

std::uint32_t ReplacementState::victim(std::uint32_t set) const noexcept {
  RACCD_DEBUG_ASSERT(set < sets_, "victim out of range");
  switch (policy_) {
    case ReplPolicy::kTreePlru: {
      if (levels_ == 0) return 0;
      const std::uint64_t bits = tree_[set];
      std::uint32_t node = 0;
      std::uint32_t way = 0;
      for (unsigned level = 0; level < levels_; ++level) {
        const std::uint32_t bit = static_cast<std::uint32_t>((bits >> node) & 1u);
        way = (way << 1) | bit;
        node = 2 * node + 1 + bit;
      }
      return way;
    }
    case ReplPolicy::kLru:
    case ReplPolicy::kFifo: {
      std::uint32_t best = 0;
      std::uint64_t best_age = ~std::uint64_t{0};
      for (std::uint32_t w = 0; w < ways_; ++w) {
        const std::uint64_t a = age_[static_cast<std::size_t>(set) * ways_ + w];
        if (a < best_age) {
          best_age = a;
          best = w;
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace raccd
