#include "raccd/mem/phys_memory.hpp"

#include <numeric>

#include "raccd/common/assert.hpp"

namespace raccd {

PhysMemory::PhysMemory(std::uint64_t frames, AllocPolicy policy, std::uint64_t seed,
                       std::uint32_t sockets)
    : frames_(frames), policy_(policy), sockets_(sockets), rng_(seed) {
  RACCD_ASSERT(frames > 0, "physical memory needs at least one frame");
  RACCD_ASSERT(sockets_ > 0 && frames_ >= sockets_,
               "physical memory needs at least one frame per socket");
  socket_next_.assign(sockets_, 0);
  if (policy_ == AllocPolicy::kFragmented) {
    shuffled_.resize(frames_);
    std::iota(shuffled_.begin(), shuffled_.end(), PageNum{0});
    // Fisher-Yates with the deterministic RNG.
    for (std::uint64_t i = frames_ - 1; i > 0; --i) {
      const std::uint64_t j = rng_.next_below(i + 1);
      std::swap(shuffled_[i], shuffled_[j]);
    }
  }
}

std::uint32_t PhysMemory::socket_of_frame(PageNum frame) const noexcept {
  if (sockets_ == 1) return 0;
  const std::uint64_t s = frame / frames_per_socket();
  return static_cast<std::uint32_t>(s < sockets_ ? s : sockets_ - 1);
}

PageNum PhysMemory::alloc_frame() {
  if (policy_ == AllocPolicy::kInterleave && sockets_ > 1) {
    const std::uint32_t s = rr_socket_;
    rr_socket_ = (rr_socket_ + 1) % sockets_;
    return alloc_frame_on(s);
  }
  RACCD_ASSERT(next_ < frames_, "simulated physical memory exhausted");
  ++allocated_;
  const std::uint64_t idx = next_++;
  return policy_ == AllocPolicy::kFragmented ? shuffled_[idx] : PageNum{idx};
}

PageNum PhysMemory::alloc_frame_on(std::uint32_t socket) {
  RACCD_ASSERT(socket < sockets_, "socket out of range");
  RACCD_ASSERT(allocated_ < frames_, "simulated physical memory exhausted");
  const std::uint64_t fps = frames_per_socket();
  for (std::uint32_t probe = 0; probe < sockets_; ++probe) {
    const std::uint32_t s = (socket + probe) % sockets_;
    // The last socket's range absorbs the division remainder.
    const std::uint64_t range = s + 1 == sockets_ ? frames_ - fps * (sockets_ - 1) : fps;
    if (socket_next_[s] < range) {
      ++allocated_;
      return PageNum{s * fps + socket_next_[s]++};
    }
  }
  RACCD_ASSERT(false, "simulated physical memory exhausted");
  return PageNum{0};
}

}  // namespace raccd
