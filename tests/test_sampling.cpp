// Sampled simulation (SamplingConfig + sim/machine.cpp fast-forward tiers):
// the contract is that *disabled* sampling is byte-identical to the seed
// simulator (pinned v5 cache keys, no key token), a window covering the whole
// period reproduces detailed SimStats exactly, and real sampling schedules
// extrapolate every headline metric to within the 95% CI they report —
// deterministically, under any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "raccd/harness/experiment.hpp"
#include "raccd/harness/sweep_cache.hpp"
#include "raccd/sim/config.hpp"

namespace raccd {
namespace {

[[nodiscard]] RunSpec tiny_spec(const char* app, CohMode mode) {
  RunSpec s;
  s.app = app;
  s.size = SizeClass::kTiny;
  s.mode = mode;
  return s;
}

// -- Disabled sampling: the seed behavior, byte for byte ---------------------

TEST(Sampling, DisabledKeepsSeedCacheKey) {
  // The stats format version and the default (detailed) key are pinned: a
  // sampled-simulator change that alters either invalidates every cached
  // sweep and perf baseline on disk, which must never happen silently.
  EXPECT_EQ(kStatsFormatVersion, 5u);
  RunSpec spec;  // defaults: jacobi small fullcoh
  EXPECT_EQ(spec.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5");
  EXPECT_EQ(spec.key().find("smp"), std::string::npos);
}

TEST(Sampling, KeyTokenOnlyWhenEnabledAndCanonical) {
  RunSpec spec;
  spec.sampling = "10/1";
  const std::string k = spec.key();
  EXPECT_NE(k.find("-smp10-1-1"), std::string::npos);
  // "10/1" and "10/1/1" canonicalize to one key (warmup defaults to 1), so
  // the sweep cache never stores the same schedule twice.
  RunSpec explicit_warmup = spec;
  explicit_warmup.sampling = "10/1/1";
  EXPECT_EQ(k, explicit_warmup.key());
  spec.sampling.clear();
  EXPECT_EQ(spec.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5");
}

TEST(Sampling, ParseRejectsMalformedTokens) {
  SamplingConfig cfg;
  EXPECT_FALSE(parse_sampling("10", cfg).empty());
  EXPECT_FALSE(parse_sampling("10/", cfg).empty());
  EXPECT_FALSE(parse_sampling("0/1", cfg).empty());
  EXPECT_FALSE(parse_sampling("10/0", cfg).empty());
  EXPECT_FALSE(parse_sampling("10/1/1/1", cfg).empty());
  EXPECT_FALSE(parse_sampling("10/a", cfg).empty());
  EXPECT_TRUE(parse_sampling("10/2/3", cfg).empty());
  EXPECT_EQ(cfg.period, 10u);
  EXPECT_EQ(cfg.window, 2u);
  EXPECT_EQ(cfg.warmup, 3u);
  EXPECT_TRUE(cfg.enabled);
}

// -- window >= period: a sampled run that measures everything ----------------

TEST(Sampling, FullWindowReproducesDetailedStatsExactly) {
  for (const CohMode mode : {CohMode::kFullCoh, CohMode::kRaCCD}) {
    RunSpec detailed = tiny_spec("jacobi", mode);
    detailed.dram = "ddr";
    const SimStats want = run_one(detailed);

    RunSpec sampled = detailed;
    sampled.sampling = "8/8";  // window == period: every task measured
    SimStats got = run_one(sampled);
    EXPECT_EQ(got.sampling.active, 1u);
    EXPECT_EQ(got.sampling.ffwd_tasks, 0u);
    EXPECT_EQ(got.sampling.warmup_tasks, 0u);
    EXPECT_DOUBLE_EQ(got.sampling.scale, 1.0);
    // Identical except for the sampling bookkeeping block.
    got.sampling = SamplingStats{};
    SimStats want_clean = want;
    want_clean.sampling = SamplingStats{};
    EXPECT_EQ(stats_to_text(want_clean), stats_to_text(got))
        << "mode=" << to_string(mode);
  }
}

// -- Real schedules: extrapolated totals within the reported CI --------------

/// |sampled - detailed| must sit inside the reported 95% CI, widened by a
/// small relative floor — a CI of a handful of windows is itself an
/// estimate, and the paper-style acceptance bound is "within the reported
/// confidence interval", not "equal".
void expect_within(double det, double smp, double ci95, double rel_floor,
                   const char* what, const std::string& ctx) {
  const double tol = std::max(ci95, rel_floor * std::fabs(det));
  EXPECT_LE(std::fabs(smp - det), tol)
      << ctx << " " << what << ": detailed=" << det << " sampled=" << smp
      << " ci95=" << ci95;
}

TEST(Sampling, ExtrapolationWithinReportedCiAllModes) {
  for (const char* app : {"jacobi", "synthetic"}) {
    for (const CohMode mode :
         {CohMode::kFullCoh, CohMode::kPT, CohMode::kRaCCD, CohMode::kWbNC}) {
      RunSpec detailed;
      detailed.app = app;
      detailed.size = SizeClass::kSmall;
      detailed.mode = mode;
      const SimStats d = run_one(detailed);

      RunSpec sampled = detailed;
      sampled.sampling = "10/1";
      const SimStats s = run_one(sampled);
      const std::string ctx =
          std::string(app) + "-" + to_string(mode) + "-smp10-1";
      ASSERT_EQ(s.sampling.active, 1u) << ctx;
      EXPECT_GE(s.sampling.windows, 3u) << ctx;
      EXPECT_GT(s.sampling.scale, 1.0) << ctx;

      const SamplingStats& sp = s.sampling;
      expect_within(static_cast<double>(d.cycles), static_cast<double>(s.cycles),
                    sp.cycles_ci95, 0.10, "cycles", ctx);
      expect_within(static_cast<double>(d.fabric.dir_accesses),
                    static_cast<double>(s.fabric.dir_accesses),
                    sp.dir_accesses_ci95, 0.10, "dir_accesses", ctx);
      expect_within(static_cast<double>(d.noc.total_flits()),
                    static_cast<double>(s.noc.total_flits()), sp.noc_flits_ci95,
                    0.10, "noc_flits", ctx);
      expect_within(static_cast<double>(d.noc.total_flit_hops()),
                    static_cast<double>(s.noc.total_flit_hops()),
                    sp.noc_flit_hops_ci95, 0.10, "noc_flit_hops", ctx);
      // Levels compare absolutely: both live in [0, 1].
      EXPECT_LE(std::fabs(s.avg_dir_occupancy - d.avg_dir_occupancy),
                std::max(sp.dir_occupancy_ci95, 0.05))
          << ctx;
    }
  }
}

// -- Determinism: sampled sweeps are identical under any worker count --------

TEST(Sampling, DeterministicUnderParallelSweep) {
  std::vector<RunSpec> specs;
  for (const char* app : {"jacobi", "synthetic"}) {
    for (const CohMode mode : {CohMode::kFullCoh, CohMode::kRaCCD}) {
      RunSpec s = tiny_spec(app, mode);
      s.sampling = "6/2";
      specs.push_back(s);
    }
  }
  RunOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  RunOptions parallel;
  parallel.jobs = 4;
  parallel.use_cache = false;

  const std::vector<SimStats> a = run_all(specs, serial);
  const std::vector<SimStats> b = run_all(specs, parallel);
  const std::vector<SimStats> c = run_all(specs, parallel);
  ASSERT_EQ(a.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(stats_to_text(a[i]), stats_to_text(b[i])) << specs[i].key();
    EXPECT_EQ(stats_to_text(b[i]), stats_to_text(c[i])) << specs[i].key();
    EXPECT_EQ(a[i].sampling.active, 1u) << specs[i].key();
  }
}

}  // namespace
}  // namespace raccd
