#include <gtest/gtest.h>

#include "raccd/coherence/directory.hpp"

namespace raccd {
namespace {

DirGeometry small_geo() {
  DirGeometry g;
  g.entries_per_bank = 64;  // 8 sets x 8 ways
  g.ways = 8;
  g.bank_bits = 0;
  return g;
}

TEST(Directory, AllocFindRemove) {
  DirectoryBank d(small_geo());
  EXPECT_EQ(d.find(5), nullptr);
  DirEntry& e = d.alloc(5);
  e.sharers = 0b11;
  e.excl = kNoCore;
  ASSERT_NE(d.find(5), nullptr);
  EXPECT_EQ(d.find(5)->sharers, 0b11u);
  EXPECT_EQ(d.valid_entries(), 1u);
  EXPECT_TRUE(d.remove(5));
  EXPECT_EQ(d.find(5), nullptr);
  EXPECT_FALSE(d.remove(5));
  EXPECT_EQ(d.valid_entries(), 0u);
}

TEST(Directory, SetConflictVictim) {
  DirectoryBank d(small_geo());
  // 8 sets: lines congruent mod 8 collide. Fill a set.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(d.has_free_way(i * 8));
    d.alloc(i * 8);
  }
  EXPECT_FALSE(d.has_free_way(64));
  const DirEntry victim = d.peek_victim(64);
  EXPECT_TRUE(victim.valid);
  d.remove(victim.line);
  d.alloc(64);
  EXPECT_EQ(d.valid_entries(), 8u);
}

TEST(Directory, ResizeShrinkKeepsEntriesOrDisplaces) {
  DirectoryBank d(small_geo());
  for (std::uint64_t i = 0; i < 32; ++i) d.alloc(i);  // 4 per set
  std::vector<DirEntry> displaced;
  const std::uint32_t moved = d.resize(4, displaced);  // 8 -> 4 sets
  // 32 entries over 4 sets x 8 ways = full; all fit exactly.
  EXPECT_EQ(moved, 32u);
  EXPECT_TRUE(displaced.empty());
  EXPECT_EQ(d.active_sets(), 4u);
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_NE(d.find(i), nullptr) << i;
  }
}

TEST(Directory, ResizeShrinkDisplacesOverflow) {
  DirectoryBank d(small_geo());
  for (std::uint64_t i = 0; i < 40; ++i) d.alloc(i);  // 5 per set
  std::vector<DirEntry> displaced;
  d.resize(4, displaced);  // capacity 32 < 40
  EXPECT_EQ(displaced.size(), 8u);
  EXPECT_EQ(d.valid_entries(), 32u);
}

TEST(Directory, ResizeGrowRedistributes) {
  DirectoryBank d(small_geo());
  std::vector<DirEntry> displaced;
  d.resize(2, displaced);
  displaced.clear();
  for (std::uint64_t i = 0; i < 16; ++i) d.alloc(i);
  EXPECT_EQ(d.active_sets(), 2u);
  d.resize(8, displaced);
  EXPECT_TRUE(displaced.empty());
  EXPECT_EQ(d.active_sets(), 8u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_NE(d.find(i), nullptr);
    // Entries now spread over 8 sets again.
    EXPECT_EQ(d.set_of(i), i % 8);
  }
}

TEST(Directory, OccupancyIntegral) {
  DirectoryBank d(small_geo());
  d.occupancy_tick(0);
  d.alloc(1);
  d.occupancy_tick(100);  // 1 entry for 100 cycles
  d.alloc(2);
  d.occupancy_tick(200);  // 2 entries for 100 cycles
  EXPECT_DOUBLE_EQ(d.occupancy_integral(), 100.0 + 200.0);
  // Ticks never go backwards.
  d.occupancy_tick(150);
  EXPECT_DOUBLE_EQ(d.occupancy_integral(), 300.0);
}

TEST(Directory, ActiveIntegralTracksPoweredSize) {
  DirectoryBank d(small_geo());
  d.occupancy_tick(0);
  d.occupancy_tick(10);
  EXPECT_DOUBLE_EQ(d.active_integral(), 10.0 * 64);
  std::vector<DirEntry> displaced;
  d.resize(4, displaced);
  d.occupancy_tick(20);
  EXPECT_DOUBLE_EQ(d.active_integral(), 10.0 * 64 + 10.0 * 32);
}

}  // namespace
}  // namespace raccd
