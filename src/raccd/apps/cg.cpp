// CG: conjugate gradient for large sparse systems (paper Table II: 3D matrix
// N^3 = 884736, 3 iterations).
//
// The system is the 7-point Laplacian of an n^3 grid with Dirichlet boundary
// (SPD), stored in CSR. Each iteration runs: SpMV row-block tasks (in: CSR
// block + the whole p vector; out: q block), blocked dot products with a
// sequential reduce task writing the alpha/beta scalars, AXPY tasks gated on
// the scalar line, and the p-update. Vectors migrate across cores every
// phase — the temporally-private pattern RaCCD captures and PT does not.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

struct CgParams {
  std::uint32_t n;  ///< grid edge; rows = n^3
  std::uint32_t iters;
  std::uint32_t blocks;
};

[[nodiscard]] CgParams params_for(const AppConfig& cfg) {
  CgParams p{32, 3, 32};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {8, 2, 8}; break;
    case SizeClass::kSmall: p = {32, 3, 32}; break;
    case SizeClass::kMedium: p = {64, 3, 48}; break;
    case SizeClass::kPaper: p = {96, 3, 64}; break;  // N^3 = 884736
    case SizeClass::kLarge: p = {128, 3, 96}; break;
  }
  p.n = cfg.params.get_u32("n", p.n);
  p.iters = cfg.params.get_u32("iters", p.iters);
  p.blocks = std::min(cfg.params.get_u32("blocks", p.blocks), p.n * p.n * p.n);
  return p;
}

/// Host-side CSR of the 7-point Laplacian (diag 6, neighbours -1).
struct Csr {
  std::vector<std::int32_t> rowptr;
  std::vector<std::int32_t> colidx;
  std::vector<float> vals;
};

[[nodiscard]] Csr build_laplacian(std::uint32_t n) {
  Csr csr;
  const std::uint32_t rows = n * n * n;
  csr.rowptr.reserve(rows + 1);
  csr.rowptr.push_back(0);
  const auto id = [n](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (static_cast<std::int64_t>(z) * n + y) * n + x;
  };
  for (std::uint32_t z = 0; z < n; ++z) {
    for (std::uint32_t y = 0; y < n; ++y) {
      for (std::uint32_t x = 0; x < n; ++x) {
        const auto push = [&](std::int64_t col, float v) {
          csr.colidx.push_back(static_cast<std::int32_t>(col));
          csr.vals.push_back(v);
        };
        // CSR columns in ascending order.
        if (z > 0) push(id(x, y, z - 1), -1.0f);
        if (y > 0) push(id(x, y - 1, z), -1.0f);
        if (x > 0) push(id(x - 1, y, z), -1.0f);
        push(id(x, y, z), 6.0f);
        if (x + 1 < n) push(id(x + 1, y, z), -1.0f);
        if (y + 1 < n) push(id(x, y + 1, z), -1.0f);
        if (z + 1 < n) push(id(x, y, z + 1), -1.0f);
        csr.rowptr.push_back(static_cast<std::int32_t>(csr.colidx.size()));
      }
    }
  }
  return csr;
}

// Scalar slots within the scalars line.
constexpr std::uint32_t kRsOld = 0;   // r.r from the previous iteration
constexpr std::uint32_t kAlpha = 4;
constexpr std::uint32_t kBeta = 8;

class CgApp final : public App {
 public:
  explicit CgApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "cg"; }
  [[nodiscard]] std::string problem() const override {
    const std::uint32_t rows = p_.n * p_.n * p_.n;
    return strprintf("3D matrix N^3=%u, %u iters, %u row blocks", rows, p_.iters,
                     p_.blocks);
  }

  void run(Machine& m) override {
    const std::uint32_t rows = p_.n * p_.n * p_.n;
    const Csr csr = build_laplacian(p_.n);
    const auto nnz = static_cast<std::uint64_t>(csr.vals.size());

    rowptr_ = m.mem().alloc_array<std::int32_t>(rows + 1, "cg.rowptr");
    colidx_ = m.mem().alloc_array<std::int32_t>(nnz, "cg.colidx");
    vals_ = m.mem().alloc_array<float>(nnz, "cg.vals");
    x_ = m.mem().alloc_array<float>(rows, "cg.x");
    b_ = m.mem().alloc_array<float>(rows, "cg.b");
    r_ = m.mem().alloc_array<float>(rows, "cg.r");
    pv_ = m.mem().alloc_array<float>(rows, "cg.p");
    q_ = m.mem().alloc_array<float>(rows, "cg.q");
    partials_ = m.mem().alloc(static_cast<std::uint64_t>(p_.blocks) * kLineBytes,
                              kLineBytes, "cg.partials");
    scalars_ = m.mem().alloc(kLineBytes, kLineBytes, "cg.scalars");

    m.mem().copy_in(rowptr_, csr.rowptr.data(), csr.rowptr.size() * 4);
    m.mem().copy_in(colidx_, csr.colidx.data(), csr.colidx.size() * 4);
    m.mem().copy_in(vals_, csr.vals.data(), csr.vals.size() * 4);

    // b = A * x_true with pseudo-random x_true; x0 = 0 => r0 = b, p0 = r0.
    Rng rng(seed_);
    std::vector<float> x_true(rows);
    for (auto& v : x_true) v = rng.next_float(0.0f, 1.0f);
    std::vector<float> b_host(rows, 0.0f);
    for (std::uint32_t row = 0; row < rows; ++row) {
      float acc = 0.0f;
      for (std::int32_t e = csr.rowptr[row]; e < csr.rowptr[row + 1]; ++e) {
        acc += csr.vals[e] * x_true[csr.colidx[e]];
      }
      b_host[row] = acc;
    }
    m.mem().copy_in(b_, b_host.data(), b_host.size() * 4);
    m.mem().copy_in(r_, b_host.data(), b_host.size() * 4);
    m.mem().copy_in(pv_, b_host.data(), b_host.size() * 4);
    float rs0 = 0.0f;
    {
      // rs_old = r.r computed with the same blocked order the tasks use.
      std::vector<float> part(p_.blocks, 0.0f);
      for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
        for (std::uint32_t i = row0(blk, rows); i < row1(blk, rows); ++i) {
          part[blk] += b_host[i] * b_host[i];
        }
      }
      for (const float v : part) rs0 += v;
    }
    m.mem().write<float>(scalars_ + kRsOld, rs0);
    initial_rr_ = rs0;

    const VAddr rowptr = rowptr_, colidx = colidx_, vals = vals_;
    const VAddr x = x_, r = r_, p = pv_, q = q_, sc = scalars_;
    const std::uint32_t blocks = p_.blocks;

    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      // q = A p
      for (std::uint32_t blk = 0; blk < blocks; ++blk) {
        const std::uint32_t i0 = row0(blk, rows), i1 = row1(blk, rows);
        const std::int32_t e0 = csr.rowptr[i0], e1 = csr.rowptr[i1];
        TaskDesc t;
        t.name = strprintf("spmv(i%u,b%u)", iter, blk);
        t.deps = {
            DepSpec{rowptr + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0 + 1) * 4, DepKind::kIn},
            DepSpec{colidx + static_cast<VAddr>(e0) * 4,
                    static_cast<std::uint64_t>(e1 - e0) * 4, DepKind::kIn},
            DepSpec{vals + static_cast<VAddr>(e0) * 4,
                    static_cast<std::uint64_t>(e1 - e0) * 4, DepKind::kIn},
            DepSpec{p, static_cast<std::uint64_t>(rows) * 4, DepKind::kIn},
            DepSpec{q + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kOut},
        };
        t.body = [rowptr, colidx, vals, p, q, i0, i1](TaskContext& ctx) {
          std::int32_t e = ctx.load<std::int32_t>(rowptr + static_cast<VAddr>(i0) * 4);
          for (std::uint32_t row = i0; row < i1; ++row) {
            const std::int32_t eend =
                ctx.load<std::int32_t>(rowptr + static_cast<VAddr>(row + 1) * 4);
            float acc = 0.0f;
            for (; e < eend; ++e) {
              const float v = ctx.load<float>(vals + static_cast<VAddr>(e) * 4);
              const auto col = ctx.load<std::int32_t>(colidx + static_cast<VAddr>(e) * 4);
              acc += v * ctx.load<float>(p + static_cast<VAddr>(col) * 4);
              ctx.compute(2);
            }
            ctx.store<float>(q + static_cast<VAddr>(row) * 4, acc);
          }
        };
        m.spawn(std::move(t));
      }
      spawn_dot(m, p, q, /*alpha_step=*/true, rows);
      // x += alpha p ; r -= alpha q
      for (std::uint32_t blk = 0; blk < blocks; ++blk) {
        const std::uint32_t i0 = row0(blk, rows), i1 = row1(blk, rows);
        TaskDesc t;
        t.name = strprintf("axpy(i%u,b%u)", iter, blk);
        t.deps = {
            DepSpec{sc, kLineBytes, DepKind::kIn},
            DepSpec{p + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kIn},
            DepSpec{q + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kIn},
            DepSpec{x + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kInout},
            DepSpec{r + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kInout},
        };
        t.body = [sc, p, q, x, r, i0, i1](TaskContext& ctx) {
          const float alpha = ctx.load<float>(sc + kAlpha);
          for (std::uint32_t i = i0; i < i1; ++i) {
            const VAddr off = static_cast<VAddr>(i) * 4;
            ctx.compute(4);
            ctx.store<float>(x + off,
                             ctx.load<float>(x + off) + alpha * ctx.load<float>(p + off));
            ctx.store<float>(r + off,
                             ctx.load<float>(r + off) - alpha * ctx.load<float>(q + off));
          }
        };
        m.spawn(std::move(t));
      }
      spawn_dot(m, r, r, /*alpha_step=*/false, rows);
      // p = r + beta p
      for (std::uint32_t blk = 0; blk < blocks; ++blk) {
        const std::uint32_t i0 = row0(blk, rows), i1 = row1(blk, rows);
        TaskDesc t;
        t.name = strprintf("pupd(i%u,b%u)", iter, blk);
        t.deps = {
            DepSpec{sc, kLineBytes, DepKind::kIn},
            DepSpec{r + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kIn},
            DepSpec{p + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kInout},
        };
        t.body = [sc, r, p, i0, i1](TaskContext& ctx) {
          const float beta = ctx.load<float>(sc + kBeta);
          for (std::uint32_t i = i0; i < i1; ++i) {
            const VAddr off = static_cast<VAddr>(i) * 4;
            ctx.compute(2);
            ctx.store<float>(p + off,
                             ctx.load<float>(r + off) + beta * ctx.load<float>(p + off));
          }
        };
        m.spawn(std::move(t));
      }
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    const std::uint32_t rows = p_.n * p_.n * p_.n;
    const Csr csr = build_laplacian(p_.n);
    Rng rng(seed_);
    std::vector<float> x_true(rows);
    for (auto& v : x_true) v = rng.next_float(0.0f, 1.0f);
    std::vector<float> b(rows, 0.0f);
    for (std::uint32_t row = 0; row < rows; ++row) {
      float acc = 0.0f;
      for (std::int32_t e = csr.rowptr[row]; e < csr.rowptr[row + 1]; ++e) {
        acc += csr.vals[e] * x_true[csr.colidx[e]];
      }
      b[row] = acc;
    }
    std::vector<float> x(rows, 0.0f), r = b, p = b, q(rows, 0.0f);
    float rs_old = blocked_dot(b, b, rows);
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t row = 0; row < rows; ++row) {
        float acc = 0.0f;
        for (std::int32_t e = csr.rowptr[row]; e < csr.rowptr[row + 1]; ++e) {
          acc += csr.vals[e] * p[csr.colidx[e]];
        }
        q[row] = acc;
      }
      const float pq = blocked_dot(p, q, rows);
      const float alpha = rs_old / pq;
      for (std::uint32_t i = 0; i < rows; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * q[i];
      }
      const float rs_new = blocked_dot(r, r, rows);
      const float beta = rs_new / rs_old;
      rs_old = rs_new;
      for (std::uint32_t i = 0; i < rows; ++i) p[i] = r[i] + beta * p[i];
    }
    std::vector<float> got(rows);
    m.mem().copy_out(x_, got.data(), got.size() * 4);
    for (std::uint32_t i = 0; i < rows; ++i) {
      if (got[i] != x[i]) {
        return strprintf("cg x[%u]: got %g want %g", i, static_cast<double>(got[i]),
                         static_cast<double>(x[i]));
      }
    }
    if (!(rs_old < initial_rr_)) return "cg residual did not decrease";
    return {};
  }

 private:
  [[nodiscard]] std::uint32_t row0(std::uint32_t blk, std::uint32_t rows) const {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(blk) * rows) /
                                      p_.blocks);
  }
  [[nodiscard]] std::uint32_t row1(std::uint32_t blk, std::uint32_t rows) const {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(blk + 1) * rows) /
                                      p_.blocks);
  }

  /// Blocked dot + reduce tasks. alpha_step: computes alpha = rs_old/(u.v);
  /// otherwise the r.r step: beta = rs_new/rs_old, rs_old = rs_new.
  void spawn_dot(Machine& m, VAddr u, VAddr v, bool alpha_step, std::uint32_t rows) {
    const VAddr parts = partials_, sc = scalars_;
    const std::uint32_t blocks = p_.blocks;
    for (std::uint32_t blk = 0; blk < blocks; ++blk) {
      const std::uint32_t i0 = row0(blk, rows), i1 = row1(blk, rows);
      TaskDesc t;
      t.name = strprintf("dot(b%u)", blk);
      t.deps = {
          DepSpec{u + static_cast<VAddr>(i0) * 4, static_cast<std::uint64_t>(i1 - i0) * 4,
                  DepKind::kIn},
          DepSpec{parts + static_cast<VAddr>(blk) * kLineBytes, kLineBytes,
                  DepKind::kOut},
      };
      if (u != v) {
        t.deps.push_back(DepSpec{v + static_cast<VAddr>(i0) * 4,
                                 static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kIn});
      }
      t.body = [u, v, parts, blk, i0, i1](TaskContext& ctx) {
        float acc = 0.0f;
        for (std::uint32_t i = i0; i < i1; ++i) {
          const VAddr off = static_cast<VAddr>(i) * 4;
          const float a = ctx.load<float>(u + off);
          const float bb = (u == v) ? a : ctx.load<float>(v + off);
          acc += a * bb;
          ctx.compute(2);
        }
        ctx.store<float>(parts + static_cast<VAddr>(blk) * kLineBytes, acc);
      };
      m.spawn(std::move(t));
    }
    TaskDesc t;
    t.name = alpha_step ? "reduce_alpha" : "reduce_beta";
    t.deps = {DepSpec{parts, static_cast<std::uint64_t>(blocks) * kLineBytes, DepKind::kIn},
              DepSpec{sc, kLineBytes, DepKind::kInout}};
    t.body = [parts, sc, blocks, alpha_step](TaskContext& ctx) {
      float sum = 0.0f;
      for (std::uint32_t blk = 0; blk < blocks; ++blk) {
        sum += ctx.load<float>(parts + static_cast<VAddr>(blk) * kLineBytes);
        ctx.compute(1);
      }
      const float rs_old = ctx.load<float>(sc + kRsOld);
      if (alpha_step) {
        ctx.store<float>(sc + kAlpha, rs_old / sum);
      } else {
        ctx.store<float>(sc + kBeta, sum / rs_old);
        ctx.store<float>(sc + kRsOld, sum);
      }
    };
    m.spawn(std::move(t));
  }

  [[nodiscard]] float blocked_dot(const std::vector<float>& u, const std::vector<float>& v,
                                  std::uint32_t rows) const {
    std::vector<float> part(p_.blocks, 0.0f);
    for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
      for (std::uint32_t i = row0(blk, rows); i < row1(blk, rows); ++i) {
        part[blk] += u[i] * v[i];
      }
    }
    float sum = 0.0f;
    for (const float x : part) sum += x;
    return sum;
  }

  CgParams p_;
  std::uint64_t seed_;
  float initial_rr_ = 0.0f;
  VAddr rowptr_ = 0, colidx_ = 0, vals_ = 0;
  VAddr x_ = 0, b_ = 0, r_ = 0, pv_ = 0, q_ = 0, partials_ = 0, scalars_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "cg",
    "conjugate gradient on a 7-point Laplacian CSR matrix (paper Table II)",
    "paper",
    ParamSchema()
        .add_int("n", 32, "grid edge; matrix rows = n^3", 2, 192)
        .add_int("iters", 3, "CG iterations", 1, 256)
        .add_int("blocks", 32, "row blocks per SpMV (clamped to rows)", 1, 8192),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<CgApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
