// Service workload family: registration, functional verification across
// coherence modes, per-request latency stats, determinism, and worker-count
// independence through the sweep executor.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/harness/experiment.hpp"

namespace raccd {
namespace {

RunSpec service_spec(CohMode mode, const std::string& ref = "service") {
  RunSpec spec;
  spec.size = SizeClass::kTiny;
  spec.mode = mode;
  const std::string err = spec.set_workload_ref(ref);
  EXPECT_EQ(err, "");
  return spec;
}

TEST(Service, RegisteredInServiceFamilyWithKnobs) {
  const WorkloadInfo* info = WorkloadRegistry::instance().find("service");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->family, "service");
  // The load/arrival knobs validate through the schema: a bad arrival kind
  // is rejected with a message naming the valid choices.
  AppConfig cfg(SizeClass::kTiny, 1);
  cfg.params.set("arrival", "uniform");
  std::string err;
  EXPECT_EQ(WorkloadRegistry::instance().create("service", cfg, &err), nullptr);
  EXPECT_NE(err.find("arrival"), std::string::npos) << err;
}

TEST(Service, UnknownNameSuggestsNearestWorkload) {
  const std::string msg =
      WorkloadRegistry::instance().unknown_name_message("servise");
  EXPECT_NE(msg.find("did you mean 'service'"), std::string::npos) << msg;
}

TEST(Service, RunsAndVerifiesAcrossCoherenceModes) {
  for (const CohMode mode : {CohMode::kFullCoh, CohMode::kPT, CohMode::kRaCCD}) {
    std::string err;
    const auto stats = run_one_checked(service_spec(mode), nullptr, &err);
    ASSERT_TRUE(stats.has_value()) << err;
    // Tiny default: 24 requests, all of which must complete and report
    // finite latency components.
    EXPECT_EQ(stats->service.requests, 24u);
    EXPECT_GT(stats->service.e2e.p99, 0.0);
    EXPECT_GE(stats->service.e2e.max, stats->service.e2e.p99);
    EXPECT_GT(stats->service.service.mean, 0.0);
  }
}

TEST(Service, StatsAreDeterministicAcrossRuns) {
  const RunSpec spec = service_spec(CohMode::kRaCCD);
  std::string err;
  const auto a = run_one_checked(spec, nullptr, &err);
  const auto b = run_one_checked(spec, nullptr, &err);
  ASSERT_TRUE(a.has_value() && b.has_value()) << err;
  EXPECT_EQ(a->cycles, b->cycles);
  EXPECT_DOUBLE_EQ(a->service.e2e.p99, b->service.e2e.p99);
  EXPECT_DOUBLE_EQ(a->service.queueing.mean, b->service.queueing.mean);
}

TEST(Service, OverloadRaisesTailLatency) {
  // Open-loop load factor: past the saturation knee the queue grows without
  // bound, so p99 at load 1.5 must clearly exceed p99 at load 0.2.
  std::string err;
  const auto light = run_one_checked(
      service_spec(CohMode::kFullCoh, "service:requests=96,load=0.2"), nullptr, &err);
  ASSERT_TRUE(light.has_value()) << err;
  const auto heavy = run_one_checked(
      service_spec(CohMode::kFullCoh, "service:requests=96,load=1.5"), nullptr, &err);
  ASSERT_TRUE(heavy.has_value()) << err;
  EXPECT_GT(heavy->service.e2e.p99, light->service.e2e.p99);
  EXPECT_GT(heavy->service.queueing.mean, light->service.queueing.mean);
}

TEST(Service, WorkerCountDoesNotChangeResults) {
  // Release order and latency stats are independent of how many executor
  // workers serve the sweep: -j1 and -j2 commit identical results.
  std::vector<RunSpec> specs;
  for (const CohMode mode : {CohMode::kFullCoh, CohMode::kPT, CohMode::kRaCCD}) {
    specs.push_back(service_spec(mode));
  }
  RunOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  RunOptions parallel;
  parallel.jobs = 2;
  parallel.use_cache = false;
  const auto a = run_all(specs, serial);
  const auto b = run_all(specs, parallel);
  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a[i].cycles, b[i].cycles) << specs[i].key();
    EXPECT_EQ(a[i].service.requests, b[i].service.requests) << specs[i].key();
    EXPECT_DOUBLE_EQ(a[i].service.e2e.p99, b[i].service.e2e.p99) << specs[i].key();
    EXPECT_DOUBLE_EQ(a[i].service.queueing.p95, b[i].service.queueing.p95)
        << specs[i].key();
  }
}

TEST(Service, SampledSimulationIsCleanlyRejected) {
  RunSpec spec = service_spec(CohMode::kRaCCD);
  spec.sampling = "10/2";
  std::string err;
  const auto stats = run_one_checked(spec, nullptr, &err);
  EXPECT_FALSE(stats.has_value());
  EXPECT_NE(err.find("incompatible"), std::string::npos) << err;
}

}  // namespace
}  // namespace raccd
