// Workload SDK tests: registry registration/lookup/duplicate rejection,
// WorkloadParams parsing round-trips (defaults, overrides, bad values),
// schema validation, workload references, trace-file round-trips, and
// synthetic-workload determinism (same params+seed -> byte-identical stats,
// in every coherence mode).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "raccd/apps/registry.hpp"
#include "raccd/apps/trace_capture.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/sweep_cache.hpp"
#include "raccd/runtime/trace_file.hpp"

namespace raccd {
namespace {

TEST(Registry, AllBuiltinWorkloadsAreRegistered) {
  const WorkloadRegistry& reg = WorkloadRegistry::instance();
  for (const auto& name : paper_app_names()) {
    const WorkloadInfo* w = reg.find(name);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->family, "paper");
    EXPECT_FALSE(w->description.empty());
  }
  ASSERT_NE(reg.find("cholesky"), nullptr);
  ASSERT_NE(reg.find("synthetic"), nullptr);
  EXPECT_EQ(reg.find("synthetic")->family, "synthetic");
  ASSERT_NE(reg.find("tracereplay"), nullptr);
  EXPECT_EQ(reg.find("tracereplay")->family, "trace");
  // One family per workload kind, discoverable for CI smoke enumeration.
  const auto families = reg.families();
  EXPECT_NE(std::find(families.begin(), families.end(), "paper"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(), "synthetic"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(), "trace"), families.end());
}

TEST(Registry, UnknownNameReturnsNullWithHelpfulError) {
  std::string error;
  auto app = WorkloadRegistry::instance().create("nope", AppConfig{}, &error);
  EXPECT_EQ(app, nullptr);
  EXPECT_NE(error.find("unknown workload 'nope'"), std::string::npos);
  EXPECT_NE(error.find("jacobi"), std::string::npos);  // lists alternatives
  EXPECT_NE(error.find("synthetic"), std::string::npos);
  // make_app shim: prints, returns nullptr, never asserts.
  EXPECT_EQ(make_app("nope"), nullptr);
}

TEST(Registry, DuplicateAndInvalidRegistrationsAreRejected) {
  WorkloadRegistry& reg = WorkloadRegistry::instance();
  WorkloadInfo dup;
  dup.name = "jacobi";  // already taken by the real app
  dup.description = "imposter";
  dup.family = "paper";
  dup.factory = [](const AppConfig& cfg) { return make_app("gauss", cfg); };
  EXPECT_FALSE(reg.add(std::move(dup)));
  EXPECT_NE(reg.find("jacobi")->description.find("Jacobi"), std::string::npos);

  WorkloadInfo unnamed;
  unnamed.factory = [](const AppConfig& cfg) { return make_app("gauss", cfg); };
  EXPECT_FALSE(reg.add(std::move(unnamed)));

  WorkloadInfo no_factory;
  no_factory.name = "factoryless";
  EXPECT_FALSE(reg.add(std::move(no_factory)));
  EXPECT_EQ(reg.find("factoryless"), nullptr);
}

TEST(WorkloadParams, ParseAndCanonicalRoundTrip) {
  WorkloadParams p;
  EXPECT_EQ(WorkloadParams::parse("n=512,iters=16", p), "");
  EXPECT_TRUE(p.has("n"));
  EXPECT_EQ(p.get_int("n", 0), 512);
  EXPECT_EQ(p.get_int("iters", 0), 16);
  EXPECT_EQ(p.get_int("absent", 7), 7);
  // Canonical form is sorted and stable under re-parsing.
  EXPECT_EQ(p.canonical(), "iters=16,n=512");
  WorkloadParams q;
  EXPECT_EQ(WorkloadParams::parse(p.canonical(), q), "");
  EXPECT_EQ(q.canonical(), p.canonical());
  // Later values win; empty text is fine.
  WorkloadParams r;
  EXPECT_EQ(WorkloadParams::parse("a=1,a=2", r), "");
  EXPECT_EQ(r.get_int("a", 0), 2);
  WorkloadParams empty;
  EXPECT_EQ(WorkloadParams::parse("", empty), "");
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.canonical(), "");
}

TEST(WorkloadParams, MalformedTextIsRejected) {
  WorkloadParams p;
  EXPECT_NE(WorkloadParams::parse("novalue", p), "");
  EXPECT_NE(WorkloadParams::parse("=5", p), "");
}

TEST(WorkloadParams, SchemaValidatesTypesBoundsAndChoices) {
  const ParamSchema schema = ParamSchema()
                                 .add_int("n", 512, "edge", 8, 8192)
                                 .add_double("reuse", 0.25, "fraction", 0.0, 1.0)
                                 .add_enum("shape", "forkjoin", "family",
                                           {"forkjoin", "pipeline"});
  WorkloadParams ok;
  ASSERT_EQ(WorkloadParams::parse("n=64,reuse=0.5,shape=pipeline", ok), "");
  EXPECT_EQ(schema.validate(ok), "");

  WorkloadParams unknown;
  unknown.set("bogus", "1");
  const std::string uerr = schema.validate(unknown);
  EXPECT_NE(uerr.find("unknown parameter 'bogus'"), std::string::npos);
  EXPECT_NE(uerr.find("n, reuse, shape"), std::string::npos);

  WorkloadParams bad_int;
  bad_int.set("n", "abc");
  EXPECT_NE(schema.validate(bad_int).find("not an integer"), std::string::npos);

  WorkloadParams oob;
  oob.set("n", "4");
  EXPECT_NE(schema.validate(oob).find("out of range"), std::string::npos);

  WorkloadParams oob_d;
  oob_d.set("reuse", "1.5");
  EXPECT_NE(schema.validate(oob_d).find("out of range"), std::string::npos);

  WorkloadParams bad_enum;
  bad_enum.set("shape", "ring");
  EXPECT_NE(schema.validate(bad_enum).find("forkjoin|pipeline"), std::string::npos);

  // resolve(): defaults overlaid with overrides, every declared key present.
  WorkloadParams partial;
  partial.set("n", "64");
  const WorkloadParams resolved = schema.resolve(partial);
  EXPECT_EQ(resolved.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(resolved.get_double("reuse", -1), 0.25);
  EXPECT_EQ(resolved.get_string("shape", ""), "forkjoin");
}

TEST(WorkloadParams, InvalidParamsRejectedAtCreation) {
  AppConfig cfg;
  cfg.size = SizeClass::kTiny;
  ASSERT_EQ(WorkloadParams::parse("n=0", cfg.params), "");
  std::string error;
  auto app = WorkloadRegistry::instance().create("jacobi", cfg, &error);
  EXPECT_EQ(app, nullptr);
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(WorkloadParams, OverridesChangeTheProblem) {
  auto small = make_app("jacobi", AppConfig{SizeClass::kTiny, 1});
  AppConfig big_cfg{SizeClass::kTiny, 1};
  ASSERT_EQ(WorkloadParams::parse("n=128,iters=2", big_cfg.params), "");
  auto big = make_app("jacobi", big_cfg);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  EXPECT_NE(small->problem(), big->problem());
  EXPECT_NE(big->problem().find("16384"), std::string::npos);  // 128^2
}

TEST(Registry, WorkloadRefParsing) {
  std::string name;
  WorkloadParams params;
  EXPECT_EQ(parse_workload_ref("jacobi", name, params), "");
  EXPECT_EQ(name, "jacobi");
  EXPECT_TRUE(params.empty());
  EXPECT_EQ(parse_workload_ref("synthetic:width=8,shape=pipeline", name, params), "");
  EXPECT_EQ(name, "synthetic");
  EXPECT_EQ(params.canonical(), "shape=pipeline,width=8");
  EXPECT_EQ(format_workload_ref(name, params), "synthetic:shape=pipeline,width=8");
  EXPECT_NE(parse_workload_ref(":x=1", name, params), "");
  EXPECT_NE(parse_workload_ref("app:broken", name, params), "");
}

// Same params + seed must give byte-identical stats, in every mode, for
// every synthetic shape (the generator is the determinism stress case: its
// structure comes from an RNG-built plan).
class SyntheticDeterminism
    : public ::testing::TestWithParam<std::tuple<std::string, CohMode>> {};

TEST_P(SyntheticDeterminism, ByteIdenticalStats) {
  const auto& [shape, mode] = GetParam();
  RunSpec spec;
  spec.app = "synthetic";
  spec.size = SizeClass::kTiny;
  spec.mode = mode;
  spec.seed = 0xD37E;
  ASSERT_EQ(spec.set_workload_ref("synthetic:shape=" + shape + ",width=4,depth=3"), "");
  const std::string a = stats_to_text(run_one(spec));
  const std::string b = stats_to_text(run_one(spec));
  EXPECT_EQ(a, b);
  // A different seed must change the functional stream (but still verify).
  RunSpec other = spec;
  other.seed = 0xD37F;
  const SimStats c = run_one(other);
  EXPECT_GT(c.cycles, 0u);
}

std::string determinism_case_name(
    const ::testing::TestParamInfo<std::tuple<std::string, CohMode>>& info) {
  return std::get<0>(info.param) + "_" + to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapesAllModes, SyntheticDeterminism,
    ::testing::Combine(::testing::Values("forkjoin", "pipeline", "randomdag"),
                       ::testing::ValuesIn(std::vector<CohMode>(kAllBackends.begin(),
                                                                kAllBackends.end()))),
    determinism_case_name);

TEST(TraceFile, TextRoundTrip) {
  TraceFile tf;
  tf.regions = {{"a", 4096}, {"b", 256}};
  TraceTask t;
  t.name = "t0";
  t.deps.push_back({0, 0, 4096, DepKind::kIn});
  t.deps.push_back({1, 64, 128, DepKind::kInout});
  t.accesses.push_back({0, 8, 8, 3, false, 12});
  t.accesses.push_back({1, 64, 4, 1, true, 0});
  t.trailing_compute = 9;
  tf.tasks.push_back(std::move(t));

  TraceFile back;
  ASSERT_EQ(TraceFile::from_text(tf.to_text(), back), "");
  ASSERT_EQ(back.regions.size(), 2u);
  EXPECT_EQ(back.regions[0].name, "a");
  EXPECT_EQ(back.regions[1].bytes, 256u);
  ASSERT_EQ(back.tasks.size(), 1u);
  EXPECT_EQ(back.tasks[0].deps.size(), 2u);
  EXPECT_EQ(back.tasks[0].deps[1].kind, DepKind::kInout);
  ASSERT_EQ(back.tasks[0].accesses.size(), 2u);
  EXPECT_EQ(back.tasks[0].accesses[0].repeat, 3u);
  EXPECT_EQ(back.tasks[0].accesses[0].compute_gap, 12u);
  EXPECT_TRUE(back.tasks[0].accesses[1].is_write);
  EXPECT_EQ(back.tasks[0].trailing_compute, 9u);
  EXPECT_EQ(back.to_text(), tf.to_text());
}

TEST(TraceFile, RejectsMalformedInput) {
  TraceFile out;
  EXPECT_NE(TraceFile::from_text("", out), "");
  EXPECT_NE(TraceFile::from_text("bogus 1\n", out), "");
  // Access beyond its region.
  EXPECT_NE(TraceFile::from_text("raccd-trace 1\nregion r 64\ntask t\n"
                                 "a r 0 64 8 1 0\nend\n",
                                 out),
            "");
  // Misaligned access.
  EXPECT_NE(TraceFile::from_text("raccd-trace 1\nregion r 64\ntask t\n"
                                 "a r 0 4 8 1 0\nend\n",
                                 out),
            "");
  // Unterminated task.
  EXPECT_NE(TraceFile::from_text("raccd-trace 1\nregion r 64\ntask t\n", out), "");
}

TEST(TraceCaptureTest, CapturedWorkloadReplaysInEveryMode) {
  // Record histo (annotated, migrating) once, then replay the trace under
  // every backend; replay must functionally verify everywhere.
  TraceFile tf;
  ASSERT_EQ(capture_workload_trace("histo", AppConfig{SizeClass::kTiny, 11},
                                   SimConfig::scaled(CohMode::kFullCoh), tf),
            "");
  EXPECT_GT(tf.regions.size(), 0u);
  EXPECT_GT(tf.tasks.size(), 0u);
  const std::string path = "test_capture_tmp.rtrace";
  ASSERT_EQ(tf.save(path), "");
  for (const CohMode mode : kAllBackends) {
    AppConfig cfg{SizeClass::kTiny, 11};
    cfg.params.set("file", path);
    std::string error;
    auto app = WorkloadRegistry::instance().create("tracereplay", cfg, &error);
    ASSERT_NE(app, nullptr) << error;
    Machine m(SimConfig::scaled(mode));
    app->run(m);
    EXPECT_EQ(app->verify(m), "") << to_string(mode);
    const SimStats s = m.collect();
    EXPECT_EQ(s.tasks, tf.tasks.size());
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace raccd
