// Open-loop service workload: request arrivals against a shared read-mostly
// store, with per-request tail latency (DESIGN.md substitution #13).
//
// Each request is a small task chain — parse (fills private scratch), `chain`
// lookup stages probing pseudo-random slots of a shared region (a small
// fraction of requests also update their home slot in place), and a respond
// task writing one result word. The chain head carries a release time from a
// seeded arrival process (Poisson, bursty, or a replayed raccd-sched trace),
// so the machine serves requests open-loop: arrivals keep coming whether or
// not earlier requests finished, and queueing shows up as tail latency
// instead of a longer makespan.
//
// The `load` knob targets a load factor rho against a *nominal* request cost
// model (task overheads + L1-hit-priced accesses + annotated compute); the
// simulated service rate is lower — misses, coherence and NUMA make real
// service time exceed nominal — so the saturation knee lands below rho = 1
// and moves with the coherence mode. That gap is the experiment.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"
#include "raccd/service/arrivals.hpp"

namespace raccd::apps {
namespace {

struct SvcParams {
  std::uint32_t requests;
  std::string arrival;  // poisson | burst | trace
  double load;
  double update_frac;
  std::uint32_t shared_kb;
  std::uint32_t scratch_kb;
  std::uint32_t chain;
  std::uint32_t probes;
  std::uint32_t compute;
  double burst_duty;
  std::uint64_t burst_period;
  std::string trace_file;
};

[[nodiscard]] SvcParams params_for(const AppConfig& cfg) {
  SvcParams p{256, "poisson", 0.6, 0.125, 64, 2, 3, 8, 16, 0.25, 0, ""};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {24, "poisson", 0.6, 0.125, 8, 1, 2, 4, 8, 0.25, 0, ""}; break;
    case SizeClass::kSmall: break;  // the baseline above
    case SizeClass::kMedium: p = {1024, "poisson", 0.6, 0.125, 128, 2, 3, 8, 16, 0.25, 0, ""}; break;
    case SizeClass::kPaper: p = {4096, "poisson", 0.6, 0.125, 512, 4, 4, 16, 16, 0.25, 0, ""}; break;
    case SizeClass::kLarge: p = {16384, "poisson", 0.6, 0.125, 1024, 4, 4, 16, 16, 0.25, 0, ""}; break;
  }
  p.requests = cfg.params.get_u32("requests", p.requests);
  p.arrival = cfg.params.get_string("arrival", p.arrival);
  p.load = cfg.params.get_double("load", p.load);
  p.update_frac = cfg.params.get_double("update_frac", p.update_frac);
  p.shared_kb = cfg.params.get_u32("shared_kb", p.shared_kb);
  p.scratch_kb = cfg.params.get_u32("scratch_kb", p.scratch_kb);
  p.chain = cfg.params.get_u32("chain", p.chain);
  p.probes = cfg.params.get_u32("probes", p.probes);
  p.compute = cfg.params.get_u32("compute", p.compute);
  p.burst_duty = cfg.params.get_double("burst_duty", p.burst_duty);
  p.burst_period = static_cast<std::uint64_t>(
      cfg.params.get_int("burst_period", static_cast<std::int64_t>(p.burst_period)));
  p.trace_file = cfg.params.get_string("trace_file", p.trace_file);
  return p;
}

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 32;
  return x;
}

class ServiceApp final : public App {
 public:
  explicit ServiceApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {
    shared_elems_ = std::max<std::uint64_t>(p_.shared_kb * 1024 / 8, 8);
    scratch_elems_ = std::max<std::uint64_t>(p_.scratch_kb * 1024 / 8, 8);
  }

  [[nodiscard]] std::string_view name() const override { return "service"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("%u %s requests @ load %.2f: chain %u x %u probes over %u KB "
                     "shared (%.0f%% updates), %u KB scratch",
                     p_.requests, p_.arrival.c_str(), p_.load, p_.chain, p_.probes,
                     p_.shared_kb, 100.0 * p_.update_frac, p_.scratch_kb);
  }

  void run(Machine& m) override {
    shared_ = m.mem().alloc_array<std::uint64_t>(shared_elems_, "svc.shared");
    scratch_ = m.mem().alloc_array<std::uint64_t>(
        static_cast<std::uint64_t>(p_.requests) * scratch_elems_, "svc.scratch");
    results_ = m.mem().alloc_array<std::uint64_t>(std::max(p_.requests, 1u),
                                                  "svc.results");
    init_memory(m);

    const std::vector<Cycle> schedule = make_schedule(m);
    for (std::uint32_t r = 0; r < p_.requests; ++r) {
      submit_request(m, r, schedule[r]);
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    // Host mirror replayed in creation order: every pair of conflicting
    // accesses (updates vs probes of the same slot, chained scratch stages)
    // carries dependence annotations, so creation order is a legal serial
    // schedule every mode must reproduce.
    std::vector<std::uint64_t> ref_shared(shared_elems_);
    mirror_init(ref_shared);
    std::vector<std::uint64_t> ref_results(p_.requests, 0);
    std::vector<std::uint64_t> scr(scratch_elems_);
    for (std::uint32_t r = 0; r < p_.requests; ++r) {
      mirror_request(r, ref_shared, scr, ref_results[r]);
    }

    std::vector<std::uint64_t> got(shared_elems_);
    m.mem().copy_out(shared_, got.data(), shared_elems_ * 8);
    for (std::uint64_t j = 0; j < shared_elems_; ++j) {
      if (got[j] != ref_shared[j]) {
        return strprintf("service shared mismatch: slot %llu got %llx want %llx",
                         static_cast<unsigned long long>(j),
                         static_cast<unsigned long long>(got[j]),
                         static_cast<unsigned long long>(ref_shared[j]));
      }
    }
    std::vector<std::uint64_t> got_res(p_.requests);
    m.mem().copy_out(results_, got_res.data(), p_.requests * 8);
    for (std::uint32_t r = 0; r < p_.requests; ++r) {
      if (got_res[r] != ref_results[r]) {
        return strprintf("service result mismatch: request %u got %llx want %llx", r,
                         static_cast<unsigned long long>(got_res[r]),
                         static_cast<unsigned long long>(ref_results[r]));
      }
    }
    return {};
  }

 private:
  // -- deterministic request plan (shared by deps, bodies and the mirror) ----
  [[nodiscard]] std::uint64_t probe_idx(std::uint32_t r, std::uint32_t k,
                                        std::uint32_t p) const noexcept {
    return mix64(seed_ ^ (static_cast<std::uint64_t>(r) << 24) ^
                 (static_cast<std::uint64_t>(k) << 12) ^ p) %
           shared_elems_;
  }
  [[nodiscard]] std::uint64_t home_idx(std::uint32_t r) const noexcept {
    return mix64(seed_ ^ 0x40DEULL ^ (static_cast<std::uint64_t>(r) * 0x9E37ULL)) %
           shared_elems_;
  }
  [[nodiscard]] bool is_update(std::uint32_t r) const noexcept {
    const std::uint64_t u = mix64(seed_ ^ 0xF8AC ^ r) >> 11;  // 53 random bits
    return static_cast<double>(u) * 0x1.0p-53 < p_.update_frac;
  }

  /// Nominal single-core cost of one request, pricing every access at the L1
  /// hit latency: runtime overheads + streamed scratch + probes + compute.
  /// Real service time exceeds this (misses, coherence), which is why the
  /// saturation knee sits below load = 1 (DESIGN.md #13).
  [[nodiscard]] double nominal_request_cycles(const SimConfig& cfg) const {
    const TimingConfig& t = cfg.timing;
    const double tasks = 2.0 + p_.chain;
    const double deps = 1.0                          // parse: out scratch
                        + p_.chain * (1.0 + p_.probes) + 1.0  // lookups (+home)
                        + 2.0;                       // respond: in scratch, out result
    const double accesses = static_cast<double>(scratch_elems_)       // parse stores
                            + p_.chain * (p_.probes + 2.0) + 2.0      // lookups + home
                            + 3.0;                                    // respond
    const double overhead = tasks * (t.task_create_cycles + t.schedule_cycles +
                                     t.wakeup_per_edge_cycles) +
                            deps * t.dep_analysis_cycles;
    return overhead + accesses * cfg.fabric.l1_hit_cycles +
           static_cast<double>(p_.chain) * p_.compute;
  }

  [[nodiscard]] std::vector<Cycle> make_schedule(Machine& m) const {
    ArrivalConfig ac;
    ac.count = p_.requests;
    ac.seed = seed_ ^ 0x5EDC0DEULL;
    ac.burst_duty = p_.burst_duty;
    ac.burst_period_cycles = p_.burst_period;
    ac.trace_path = p_.trace_file;
    if (p_.arrival == "burst") {
      ac.kind = ArrivalKind::kBurst;
    } else if (p_.arrival == "trace") {
      ac.kind = ArrivalKind::kTrace;
    } else {
      ac.kind = ArrivalKind::kPoisson;
    }
    const std::uint32_t cores = m.config().fabric.cores;
    ac.mean_gap_cycles =
        nominal_request_cycles(m.config()) / (static_cast<double>(cores) * p_.load);

    std::string err;
    std::vector<Cycle> schedule = generate_arrivals(ac, &err);
    RACCD_ASSERT(!schedule.empty(), err.c_str());
    if (ac.kind == ArrivalKind::kTrace && schedule.size() < p_.requests) {
      RACCD_ASSERT(false, "service: trace holds fewer releases than requests");
    }
    schedule.resize(p_.requests);
    return schedule;
  }

  void submit_request(Machine& m, std::uint32_t r, Cycle release) {
    const VAddr scratch = scratch_ + static_cast<std::uint64_t>(r) * scratch_elems_ * 8;
    const bool upd = is_update(r);
    const std::uint64_t home = home_idx(r);

    // parse: fill the private scratch from the request id.
    {
      TaskDesc t;
      t.name = strprintf("req%u.parse", r);
      t.release = release;
      t.request = r;
      t.deps.push_back({scratch, scratch_elems_ * 8, DepKind::kOut});
      t.body = [this, r, scratch](TaskContext& ctx) {
        const std::uint64_t base = mix64(seed_ ^ r);
        ctx.compute(p_.compute);
        for (std::uint64_t j = 0; j < scratch_elems_; ++j) {
          ctx.store<std::uint64_t>(scratch + j * 8, mix64(base + j));
        }
      };
      m.spawn(std::move(t));
    }

    // chain of lookups: probe shared slots, fold into scratch[0]; the last
    // stage of an update request rewrites its home slot in place.
    for (std::uint32_t k = 0; k < p_.chain; ++k) {
      const bool write_home = upd && k == p_.chain - 1;
      TaskDesc t;
      t.name = strprintf("req%u.lu%u", r, k);
      t.request = r;
      t.deps.push_back({scratch, scratch_elems_ * 8, DepKind::kInout});
      for (std::uint32_t p = 0; p < p_.probes; ++p) {
        t.deps.push_back({shared_ + probe_idx(r, k, p) * 8, 8, DepKind::kIn});
      }
      if (write_home) t.deps.push_back({shared_ + home * 8, 8, DepKind::kInout});
      t.body = [this, r, k, scratch, write_home, home](TaskContext& ctx) {
        ctx.compute(p_.compute);
        std::uint64_t acc = ctx.load<std::uint64_t>(scratch);
        for (std::uint32_t p = 0; p < p_.probes; ++p) {
          acc += ctx.load<std::uint64_t>(shared_ + probe_idx(r, k, p) * 8);
        }
        if (write_home) {
          const std::uint64_t old = ctx.load<std::uint64_t>(shared_ + home * 8);
          ctx.store<std::uint64_t>(shared_ + home * 8, mix64(old + acc));
        }
        ctx.store<std::uint64_t>(scratch, mix64(acc + k));
      };
      m.spawn(std::move(t));
    }

    // respond: one result word from the scratch head and tail.
    {
      TaskDesc t;
      t.name = strprintf("req%u.resp", r);
      t.request = r;
      t.deps.push_back({scratch, scratch_elems_ * 8, DepKind::kIn});
      t.deps.push_back({results_ + static_cast<std::uint64_t>(r) * 8, 8, DepKind::kOut});
      t.body = [this, r, scratch](TaskContext& ctx) {
        const std::uint64_t head = ctx.load<std::uint64_t>(scratch);
        const std::uint64_t tail =
            ctx.load<std::uint64_t>(scratch + (scratch_elems_ - 1) * 8);
        ctx.store<std::uint64_t>(results_ + static_cast<std::uint64_t>(r) * 8,
                                 mix64(head + tail + r));
      };
      m.spawn(std::move(t));
    }
  }

  void init_memory(Machine& m) {
    Rng rng(seed_);
    for (std::uint64_t j = 0; j < shared_elems_; ++j) {
      m.mem().write<std::uint64_t>(shared_ + j * 8, rng.next_u64());
    }
  }

  void mirror_init(std::vector<std::uint64_t>& ref_shared) const {
    Rng rng(seed_);
    for (std::uint64_t j = 0; j < shared_elems_; ++j) ref_shared[j] = rng.next_u64();
  }

  void mirror_request(std::uint32_t r, std::vector<std::uint64_t>& shared,
                      std::vector<std::uint64_t>& scr, std::uint64_t& result) const {
    const std::uint64_t base = mix64(seed_ ^ r);
    for (std::uint64_t j = 0; j < scratch_elems_; ++j) scr[j] = mix64(base + j);
    const bool upd = is_update(r);
    const std::uint64_t home = home_idx(r);
    for (std::uint32_t k = 0; k < p_.chain; ++k) {
      std::uint64_t acc = scr[0];
      for (std::uint32_t p = 0; p < p_.probes; ++p) acc += shared[probe_idx(r, k, p)];
      if (upd && k == p_.chain - 1) shared[home] = mix64(shared[home] + acc);
      scr[0] = mix64(acc + k);
    }
    result = mix64(scr[0] + scr[scratch_elems_ - 1] + r);
  }

  SvcParams p_;
  std::uint64_t seed_;
  std::uint64_t shared_elems_ = 0;
  std::uint64_t scratch_elems_ = 0;
  VAddr shared_ = 0, scratch_ = 0, results_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "service",
    "open-loop request server: arrival-released task chains over a shared store",
    "service",
    ParamSchema()
        .add_int("requests", 256, "requests to serve", 1, 1 << 20)
        .add_enum("arrival", "poisson", "arrival process",
                  {"poisson", "burst", "trace"})
        .add_double("load", 0.6, "target load factor vs the nominal request cost",
                    0.01, 8.0)
        .add_double("update_frac", 0.125, "fraction of requests that update their home slot",
                    0.0, 1.0)
        .add_int("shared_kb", 64, "shared read-mostly region size in KB", 1, 65536)
        .add_int("scratch_kb", 2, "per-request private scratch in KB", 1, 256)
        .add_int("chain", 3, "lookup stages per request", 1, 32)
        .add_int("probes", 8, "shared-region probes per lookup stage", 1, 64)
        .add_int("compute", 16, "annotated compute cycles per stage", 0, 4096)
        .add_double("burst_duty", 0.25, "burst: on-window fraction of each period",
                    0.01, 1.0)
        .add_int("burst_period", 0, "burst: period in cycles (0 = 16x mean gap)", 0,
                 1'000'000'000)
        .add_string("trace_file", "", "trace: raccd-sched schedule file to replay"),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<ServiceApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
