#include "raccd/coherence/fabric.hpp"

#include <algorithm>

#include "raccd/coherence/checker.hpp"
#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"
#include "raccd/common/format.hpp"
#include "raccd/obs/trace_sink.hpp"

namespace raccd {

namespace {
[[nodiscard]] constexpr std::uint64_t bit(CoreId c) noexcept { return 1ULL << c; }
}  // namespace

// ---------------------------------------------------------------------------
// FabricStats / BlockClassifier
// ---------------------------------------------------------------------------

void FabricStats::add(const FabricStats& o) noexcept {
  l1_accesses += o.l1_accesses;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l1_evictions += o.l1_evictions;
  l1_wb_coh += o.l1_wb_coh;
  l1_wb_nc += o.l1_wb_nc;
  l1_invals_sharer += o.l1_invals_sharer;
  l1_invals_recall += o.l1_invals_recall;
  l1_flush_nc_lines += o.l1_flush_nc_lines;
  l1_flush_nc_wbs += o.l1_flush_nc_wbs;
  l1_flush_page_lines += o.l1_flush_page_lines;
  l1_flush_page_wbs += o.l1_flush_page_wbs;
  llc_lookups += o.llc_lookups;
  llc_hits += o.llc_hits;
  llc_misses += o.llc_misses;
  llc_nc_lookups += o.llc_nc_lookups;
  llc_nc_hits += o.llc_nc_hits;
  llc_fills += o.llc_fills;
  llc_evictions += o.llc_evictions;
  llc_inval_by_dir += o.llc_inval_by_dir;
  llc_wb_mem += o.llc_wb_mem;
  llc_touches += o.llc_touches;
  dir_accesses += o.dir_accesses;
  dir_lookups += o.dir_lookups;
  dir_hits += o.dir_hits;
  dir_misses += o.dir_misses;
  dir_allocs += o.dir_allocs;
  dir_evictions += o.dir_evictions;
  dir_recall_msgs += o.dir_recall_msgs;
  dir_wb_updates += o.dir_wb_updates;
  dir_nc_to_coh += o.dir_nc_to_coh;
  dir_coh_to_nc += o.dir_coh_to_nc;
  coh_reads += o.coh_reads;
  coh_writes += o.coh_writes;
  upgrades += o.upgrades;
  nc_reads += o.nc_reads;
  nc_writes += o.nc_writes;
  owner_probes += o.owner_probes;
  dir_reqs_cross_socket += o.dir_reqs_cross_socket;
  nc_reqs_cross_socket += o.nc_reqs_cross_socket;
  mem_reads += o.mem_reads;
  mem_writes += o.mem_writes;
  mem_wb_wait_cycles += o.mem_wb_wait_cycles;
  dram_row_hits += o.dram_row_hits;
  dram_row_misses += o.dram_row_misses;
  dram_row_conflicts += o.dram_row_conflicts;
  dram_queue_wait_cycles += o.dram_queue_wait_cycles;
  e_dir_pj += o.e_dir_pj;
  e_llc_pj += o.e_llc_pj;
  e_l1_pj += o.e_l1_pj;
  e_noc_pj += o.e_noc_pj;
  e_mem_pj += o.e_mem_pj;
  e_mem_act_pj += o.e_mem_act_pj;
  e_mem_rd_pj += o.e_mem_rd_pj;
  e_mem_wr_pj += o.e_mem_wr_pj;
  e_mem_pre_pj += o.e_mem_pre_pj;
}

void BlockClassifier::record(LineAddr line, bool nc) {
  if (line >= flags_.size()) flags_.resize(line + 1, 0);
  flags_[line] |= nc ? kSawNc : kSawCoh;
}
std::uint64_t BlockClassifier::touched_blocks() const noexcept {
  std::uint64_t n = 0;
  for (auto f : flags_) n += (f != 0);
  return n;
}
std::uint64_t BlockClassifier::coherent_blocks() const noexcept {
  std::uint64_t n = 0;
  for (auto f : flags_) n += ((f & kSawCoh) != 0);
  return n;
}
std::uint64_t BlockClassifier::noncoherent_blocks() const noexcept {
  std::uint64_t n = 0;
  for (auto f : flags_) n += (f == kSawNc);  // touched and never coherent
  return n;
}
double BlockClassifier::noncoherent_fraction() const noexcept {
  const std::uint64_t t = touched_blocks();
  return t == 0 ? 0.0 : static_cast<double>(noncoherent_blocks()) / static_cast<double>(t);
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Fabric::Fabric(const FabricConfig& cfg, CoherenceChecker* checker)
    : cfg_(cfg), energy_(cfg.energy), mesh_(cfg.mesh, cfg.topo, cfg.cores),
      legacy_(legacy_structures()), checker_(checker) {
  RACCD_ASSERT(is_pow2(cfg_.cores), "core count must be a power of two");
  RACCD_ASSERT(cfg_.cores <= 64, "sharer vector limited to 64 cores");
  RACCD_ASSERT(mesh_.node_count() == cfg_.cores, "mesh geometry must match core count");
  const std::uint32_t bank_bits = log2_exact(cfg_.cores);
  FabricConfig fixed = cfg_;
  fixed.llc.bank_bits = bank_bits;
  fixed.dir.bank_bits = bank_bits;
  cfg_ = fixed;
  for (std::uint32_t c = 0; c < cfg_.cores; ++c) {
    l1_.push_back(std::make_unique<L1Cache>(cfg_.l1));
    llc_.push_back(std::make_unique<LlcBank>(cfg_.llc));
    dir_.push_back(std::make_unique<DirectoryBank>(cfg_.dir));
    dir_access_pj_.push_back(energy_.dir_access_pj(dir_[c]->active_entries()));
  }
  dir_busy_.assign(cfg_.cores, 0);
  llc_busy_.assign(cfg_.cores, 0);
  if (cfg_.dram.model != DramModel::kSimple) {
    // One DramController per distinct memory-controller tile (NUMA sockets
    // each get their own); mc_of_ resolves a controller node to its index.
    mc_of_.assign(cfg_.cores, 0);
    std::unordered_map<std::uint32_t, std::uint32_t> index;
    for (std::uint32_t n = 0; n < cfg_.cores; ++n) {
      const std::uint32_t mc = mesh_.nearest_memory_controller(n);
      const auto [it, inserted] =
          index.try_emplace(mc, static_cast<std::uint32_t>(dram_.size()));
      if (inserted) dram_.emplace_back(cfg_.dram);
      mc_of_[mc] = it->second;
    }
  }
  if (legacy_) {
    // Bounded pre-size: writeback versions are keyed by physical line, and
    // rehashing an unbounded map mid-run is what the hint avoids. Cap at a
    // multiple of the machine's total LLC lines — the scale of plausible
    // writeback working sets — so multi-GB phys spaces don't make every
    // (possibly tiny) Machine pay a megabytes-large bucket array up front.
    const std::uint64_t cap = std::max<std::uint64_t>(
        4096, 8ull * cfg_.llc.lines_per_bank * cfg_.cores);
    mem_version_.reserve(static_cast<std::size_t>(
        std::min(std::max<std::uint64_t>(cfg_.phys_lines_hint, 4096), cap)));
  } else {
    // The paged array needs no size cap: only its chunk directory scales with
    // the hint (one pointer per 4096 lines); data chunks allocate on first
    // write to their region.
    mem_flat_.reserve_lines(cfg_.phys_lines_hint);
  }
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

Cycle Fabric::msg(std::uint32_t from, std::uint32_t to, MsgClass cls) {
  if (phase_ == SimPhase::kFfwd) return 0;  // functional: no routing, no traffic
  const Route r = topology().route(from, to);
  const std::uint32_t flits = mesh_.flits_for(cls);
  // Inter-socket hops burn `socket_hop_energy_scale` times the on-chip
  // per-flit-hop energy (off-package SerDes links).
  const double hop_cost =
      static_cast<double>(r.link_hops) +
      static_cast<double>(r.socket_hops) * topology().config().socket_hop_energy_scale;
  st().e_noc_pj += hop_cost * flits * energy_.noc_flit_hop_pj();
  return mesh_.transfer(r, cls);
}

Cycle Fabric::bank_service(Cycle& busy_until, Cycle arrive, Cycle service) noexcept {
  if (phase_ == SimPhase::kFfwd) return 0;  // functional: no busy windows
  if (!cfg_.model_bank_contention) return service;
  const Cycle start = std::max(arrive, busy_until);
  busy_until = start + service;
  return (start - arrive) + service;
}

void Fabric::count_dir_access(BankId b) {
  ++st().dir_accesses;
  st().e_dir_pj += dir_access_pj_[b];
}

void Fabric::count_llc_touch(BankId b) {
  ++st().llc_touches;
  st().e_llc_pj += energy_.llc_access_pj(llc_[b]->line_capacity());
}

void Fabric::mark_dir_dirty(BankId b, Cycle now) {
  dir_[b]->occupancy_tick(now);
  dir_dirty_mask_ |= (1ULL << b);
}

std::uint64_t Fabric::mem_version(LineAddr line) const noexcept {
  if (!legacy_) return mem_flat_.get(line);
  const auto it = mem_version_.find(line);
  return it == mem_version_.end() ? 0 : it->second;
}

void Fabric::store_version_bump(L1Line& l, LineAddr line) {
  l.version = ++version_counter_;
  l.dirty = true;
  if (checker_ != nullptr) checker_->on_store(line, l.version);
}

// ---------------------------------------------------------------------------
// Recall / eviction machinery
// ---------------------------------------------------------------------------

Cycle Fabric::recall_sharers(BankId b, DirEntry& e, CoreId skip, Cycle now) {
  (void)now;
  Cycle slowest = 0;
  std::uint64_t remaining = e.sharers;
  while (remaining != 0) {
    const CoreId s = static_cast<CoreId>(std::countr_zero(remaining));
    remaining &= remaining - 1;
    if (s == skip) continue;
    Cycle leg = msg(b, s, MsgClass::kInval);
    ++st().dir_recall_msgs;
    const L1Line old = l1_[s]->invalidate(e.line);
    if (old.valid) {
      ++st().l1_invals_recall;
      if (old.dirty) {
        // Owner held M: pull the data back into the (still resident) LLC line.
        LlcLine* ll = llc_[b]->find(e.line);
        RACCD_ASSERT(ll != nullptr, "dirty recall without resident LLC line");
        ll->dirty = true;
        ll->version = old.version;
        count_llc_touch(b);
        leg += msg(s, b, MsgClass::kWriteback);
        ++st().l1_wb_coh;
      } else {
        leg += msg(s, b, MsgClass::kAck);
      }
    } else {
      leg += msg(s, b, MsgClass::kAck);  // silently evicted: stale sharer bit
    }
    slowest = std::max(slowest, leg);
  }
  e.sharers = (skip != kNoCore && (e.sharers & bit(skip)) != 0) ? bit(skip) : 0;
  e.excl = kNoCore;
  return slowest;
}

Cycle Fabric::drop_llc_line(BankId b, LineAddr line, bool due_to_dir, Cycle now) {
  const LlcLine dead = llc_[b]->invalidate(line);
  RACCD_ASSERT(dead.valid, "dropping a non-resident LLC line");
  count_llc_touch(b);
  if (due_to_dir) ++st().llc_inval_by_dir;
  Cycle lat = 0;
  if (dead.dirty) {
    mem_writeback(b, line, dead.version, now);
    ++st().llc_wb_mem;
    lat += 0;  // writeback drains off the critical path
  }
  return lat;
}

Cycle Fabric::evict_dir_entry(BankId b, const DirEntry& victim, Cycle now) {
  DirEntry copy = victim;
  Cycle lat = recall_sharers(b, copy, kNoCore, now);
  lat += drop_llc_line(b, victim.line, /*due_to_dir=*/true, now + lat);
  mark_dir_dirty(b, now);
  const bool removed = dir_[b]->remove(victim.line);
  RACCD_ASSERT(removed, "directory victim vanished during recall");
  count_dir_access(b);
  ++st().dir_evictions;
  return lat;
}

Cycle Fabric::llc_fill(BankId b, LineAddr line, bool nc, bool dirty, std::uint64_t version,
                       Cycle now) {
  Cycle lat = 0;
  const LlcLine victim = llc_[b]->peek_victim(line);
  if (victim.valid) {
    ++st().llc_evictions;
    const DirEntry* ve = victim.nc ? nullptr : dir_[b]->find(victim.line);
    if (ve != nullptr) {
      // Tracked coherent victim: recall the L1 copies and free its entry
      // (LLC capacity pressure shrinking directory occupancy, paper Fig. 8).
      count_dir_access(b);
      lat += evict_dir_entry(b, *ve, now);
    } else {
      // NC line or untracked coherent line: plain eviction.
      lat += drop_llc_line(b, victim.line, /*due_to_dir=*/false, now + lat);
    }
  }
  llc_[b]->fill(line, nc, dirty, version);
  count_llc_touch(b);
  ++st().llc_fills;
  return lat;
}

void Fabric::set_obs_trace(obs::TraceSink* sink) {
  obs_ = sink;
  obs_q_names_.clear();
  if (sink == nullptr) return;
  obs_ids_.deactivate = sink->intern("line_deactivate");
  obs_ids_.reactivate = sink->intern("line_reactivate");
  obs_ids_.busy = sink->intern("bank_busy");
  obs_ids_.line = sink->intern("line");
  obs_ids_.wait = sink->intern("wait");
  obs_ids_.row = sink->intern("row");
  const std::uint32_t chs = cfg_.dram.channels, bks = cfg_.dram.banks;
  for (std::uint32_t ctrl = 0; ctrl < dram_.size(); ++ctrl) {
    for (std::uint32_t ch = 0; ch < chs; ++ch) {
      obs_q_names_.emplace_back(
          sink->intern(strprintf("read_q mc%u ch%u", ctrl, ch)),
          sink->intern(strprintf("write_q mc%u ch%u", ctrl, ch)));
      for (std::uint32_t bk = 0; bk < bks; ++bk) {
        sink->set_thread_name(obs::kPidDram, ctrl * chs * bks + ch * bks + bk,
                              strprintf("mc%u ch%u bk%u", ctrl, ch, bk));
      }
    }
  }
  for (BankId b = 0; b < cfg_.cores; ++b) {
    sink->set_thread_name(obs::kPidCoherence, b, strprintf("bank %u", b));
  }
}

void Fabric::trace_dram(std::uint32_t ctrl, const DramOutcome& out, Cycle arrive) {
  // Busy span on the bank's own track: [service start, data done]. Queue
  // depths step on the channel's counter tracks at the same instant.
  const std::uint32_t chs = cfg_.dram.channels, bks = cfg_.dram.banks;
  const std::uint32_t tid = ctrl * chs * bks + out.channel * bks + out.bank;
  const Cycle at = arrive + out.wait;
  obs_->complete(obs::TraceCat::kDram, obs::kPidDram, tid, obs_ids_.busy, at,
                 out.latency, obs_ids_.wait, out.wait, obs_ids_.row,
                 static_cast<std::uint64_t>(out.row));
  const auto& qn = obs_q_names_[ctrl * chs + out.channel];
  obs_->counter(obs::TraceCat::kDram, obs::kPidDram, 0, qn.first, at, out.read_depth);
  obs_->counter(obs::TraceCat::kDram, obs::kPidDram, 0, qn.second, at, out.write_depth);
}

DramController& Fabric::dram_at(std::uint32_t mc) {
  RACCD_DEBUG_ASSERT(!dram_.empty(), "DRAM model disabled");
  return dram_[mc_of_[mc]];
}

void Fabric::account_dram(const DramOutcome& out, bool is_write) {
  switch (out.row) {
    case DramOutcome::Row::kHit: ++st().dram_row_hits; break;
    case DramOutcome::Row::kEmpty: ++st().dram_row_misses; break;
    case DramOutcome::Row::kConflict: ++st().dram_row_conflicts; break;
  }
  double pj = is_write ? energy_.dram_write_pj() : energy_.dram_read_pj();
  (is_write ? st().e_mem_wr_pj : st().e_mem_rd_pj) += pj;
  if (out.activated) {
    st().e_mem_act_pj += energy_.dram_activate_pj();
    pj += energy_.dram_activate_pj();
  }
  if (out.precharged) {
    st().e_mem_pre_pj += energy_.dram_precharge_pj();
    pj += energy_.dram_precharge_pj();
  }
  st().e_mem_pj += pj;  // e_mem_pj stays the memory total under both models
}

Cycle Fabric::mem_fetch(BankId b, LineAddr line, std::uint64_t& version, Cycle now) {
  const std::uint32_t mc = mesh_.nearest_memory_controller(b);
  ++st().mem_reads;
  version = mem_version(line);
  if (phase_ == SimPhase::kFfwd) {
    // Functional: keep the row-buffer stream warm, skip queue/bus timing.
    if (cfg_.dram.model != DramModel::kSimple) dram_at(mc).warm_touch(line);
    return 0;
  }
  Cycle lat = msg(b, mc, MsgClass::kRequest);
  if (cfg_.dram.model == DramModel::kSimple) {
    lat += cfg_.mem_cycles;
    st().e_mem_pj += energy_.mem_access_pj();
  } else {
    const Cycle arrive = now + lat;
    const DramOutcome out = dram_at(mc).read(line, arrive);
    lat += out.total();
    st().dram_queue_wait_cycles += out.wait;
    account_dram(out, /*is_write=*/false);
    if (obs_ != nullptr && obs_->wants(obs::TraceCat::kDram)) {
      trace_dram(mc_of_[mc], out, arrive);
    }
  }
  lat += msg(mc, b, MsgClass::kResponseData);
  return lat;
}

void Fabric::mem_writeback(BankId b, LineAddr line, std::uint64_t version, Cycle now) {
  const std::uint32_t mc = mesh_.nearest_memory_controller(b);
  // Posted write: the requester never waits. Under kDdr the delivery leg
  // and write-queue wait are accounted (mem_wb_wait_cycles) instead of
  // dropped, and the write occupies a queue slot that backpressures later
  // reads; kSimple keeps the legacy fire-and-forget stats byte-identical
  // (warm pre-DRAM cache entries stay consistent with fresh runs).
  const Cycle leg = msg(b, mc, MsgClass::kWriteback);
  ++st().mem_writes;
  if (phase_ == SimPhase::kFfwd) {
    if (cfg_.dram.model != DramModel::kSimple) dram_at(mc).warm_touch(line);
  } else if (cfg_.dram.model == DramModel::kSimple) {
    st().e_mem_pj += energy_.mem_access_pj();
  } else {
    const DramOutcome out = dram_at(mc).write(line, now + leg);
    st().mem_wb_wait_cycles += leg + out.wait;
    account_dram(out, /*is_write=*/true);
    if (obs_ != nullptr && obs_->wants(obs::TraceCat::kDram)) {
      trace_dram(mc_of_[mc], out, now + leg);
    }
  }
  if (!legacy_) {
    mem_flat_.set(line, version);
  } else {
    mem_version_[line] = version;
  }
}

void Fabric::handle_l1_victim(CoreId c, const L1Line& victim, Cycle now) {
  ++st().l1_evictions;
  if (!victim.dirty) return;  // silent clean eviction (paper Table I)
  const BankId b = home_of(victim.line);
  if (victim.nc) {
    // NC writeback: straight to the LLC; if the LLC lost the line, forward
    // to memory without re-allocating (paper §III-C.3).
    (void)msg(c, b, MsgClass::kWriteback);
    ++st().l1_wb_nc;
    LlcLine* ll = llc_[b]->find(victim.line);
    count_llc_touch(b);
    if (ll != nullptr) {
      ll->dirty = true;
      ll->version = victim.version;
    } else {
      mem_writeback(b, victim.line, victim.version, now);
      ++st().llc_wb_mem;
    }
  } else {
    // Coherent M writeback: update LLC data and directory sharing state.
    (void)msg(c, b, MsgClass::kWriteback);
    ++st().l1_wb_coh;
    DirEntry* e = dir_[b]->find(victim.line);
    count_dir_access(b);
    ++st().dir_wb_updates;
    RACCD_ASSERT(e != nullptr, "M writeback without directory entry");
    if (e->excl == c) e->excl = kNoCore;
    e->sharers &= ~bit(c);
    LlcLine* ll = llc_[b]->find(victim.line);
    RACCD_ASSERT(ll != nullptr, "M writeback without LLC line");
    count_llc_touch(b);
    ll->dirty = true;
    ll->version = victim.version;
  }
}

// ---------------------------------------------------------------------------
// Miss paths
// ---------------------------------------------------------------------------

Fabric::MissResult Fabric::coherent_miss(CoreId c, LineAddr line, bool is_write, Cycle now) {
  const BankId b = home_of(line);
  if (topology().cross_socket(c, b)) ++st().dir_reqs_cross_socket;
  MissResult r;
  r.latency += msg(c, b, MsgClass::kRequest);
  // The home node looks up directory and LLC tags in parallel.
  {
    const Cycle arrive = now + r.latency;
    const Cycle dir_leg = bank_service(dir_busy_[b], arrive, cfg_.dir_cycles);
    const Cycle llc_leg = bank_service(llc_busy_[b], arrive, cfg_.llc_cycles);
    r.latency += std::max(dir_leg, llc_leg);
  }
  count_dir_access(b);
  ++st().dir_lookups;
  count_llc_touch(b);
  ++st().llc_lookups;

  DirEntry* e = dir_[b]->find(line);
  if (e != nullptr) {
    ++st().dir_hits;
    dir_[b]->touch(*e);
    if (e->excl != kNoCore) {
      // Probe the E/M holder (it may have silently evicted an E line).
      const CoreId o = e->excl;
      ++st().owner_probes;
      Cycle leg = msg(b, o, MsgClass::kInval);
      L1Line* ol = l1_[o]->find(line);
      if (ol != nullptr) {
        if (is_write) {
          const L1Line old = l1_[o]->invalidate(line);
          ++st().l1_invals_sharer;
          if (old.dirty) {
            LlcLine* ll = llc_[b]->find(line);
            RACCD_ASSERT(ll != nullptr, "owner WB without LLC line");
            ll->dirty = true;
            ll->version = old.version;
            count_llc_touch(b);
            leg += msg(o, b, MsgClass::kWriteback);
            ++st().l1_wb_coh;
          } else {
            leg += msg(o, b, MsgClass::kAck);
          }
          e->sharers &= ~bit(o);
        } else {
          // Downgrade to S; dirty data returns to the LLC.
          if (ol->dirty) {
            LlcLine* ll = llc_[b]->find(line);
            RACCD_ASSERT(ll != nullptr, "owner WB without LLC line");
            ll->dirty = true;
            ll->version = ol->version;
            count_llc_touch(b);
            leg += msg(o, b, MsgClass::kWriteback);
            ++st().l1_wb_coh;
            ol->dirty = false;
          } else {
            leg += msg(o, b, MsgClass::kAck);
          }
          ol->coh = Mesi::kShared;
        }
      } else {
        leg += msg(o, b, MsgClass::kAck);  // silent eviction: stale owner
        e->sharers &= ~bit(o);
      }
      e->excl = kNoCore;
      r.latency += leg;
    }
    if (is_write && (e->sharers & ~bit(c)) != 0) {
      // Invalidate remaining sharers in parallel; pay the slowest leg.
      Cycle slowest = 0;
      std::uint64_t remaining = e->sharers & ~bit(c);
      while (remaining != 0) {
        const CoreId s = static_cast<CoreId>(std::countr_zero(remaining));
        remaining &= remaining - 1;
        Cycle leg = msg(b, s, MsgClass::kInval);
        const L1Line old = l1_[s]->invalidate(line);
        if (old.valid) {
          RACCD_ASSERT(!old.dirty, "dirty sharer outside excl state");
          ++st().l1_invals_sharer;
        }
        leg += msg(s, b, MsgClass::kAck);
        slowest = std::max(slowest, leg);
      }
      r.latency += slowest;
    }
    // Serve data from the LLC (a tracked line is always LLC-resident: LLC
    // evictions recall the entry and directory evictions invalidate the line).
    LlcLine* ll = llc_[b]->find(line);
    RACCD_ASSERT(ll != nullptr, "directory entry without LLC line");
    ++st().llc_hits;
    llc_[b]->touch(*ll);
    r.llc_hit = true;
    r.version = ll->version;
    if (is_write) {
      e->sharers = bit(c);
      e->excl = c;
      r.grant = Mesi::kModified;
    } else {
      e->sharers |= bit(c);
      if (e->sharers == bit(c)) {
        e->excl = c;
        r.grant = Mesi::kExclusive;
      } else {
        r.grant = Mesi::kShared;
      }
    }
  } else {
    // Sparse directory: entries track lines with (possible) private-cache
    // copies. A new L1 fill allocates one, recalling a victim if the set is
    // full (the recall also invalidates the victim's LLC line — the
    // mechanism behind FullCoh's LLC degradation, paper §V-A.3). LLC lines
    // without L1 copies live untracked.
    ++st().dir_misses;
    if (!dir_[b]->has_free_way(line)) {
      const DirEntry victim = dir_[b]->peek_victim(line);
      r.latency += evict_dir_entry(b, victim, now + r.latency);
    }
    mark_dir_dirty(b, now + r.latency);
    DirEntry& ne = dir_[b]->alloc(line);
    count_dir_access(b);
    ++st().dir_allocs;

    LlcLine* ll = llc_[b]->find(line);
    if (ll != nullptr) {
      ++st().llc_hits;
      if (ll->nc) {
        // NC -> coherent transition (paper §III-E): start tracking.
        ll->nc = false;
        ++st().dir_nc_to_coh;
        if (obs_ != nullptr && obs_->wants(obs::TraceCat::kCoh)) {
          obs_->instant(obs::TraceCat::kCoh, obs::kPidCoherence, b,
                        obs_ids_.reactivate, now + r.latency, obs_ids_.line, line);
        }
      }
      llc_[b]->touch(*ll);
      r.llc_hit = true;
      r.version = ll->version;
    } else {
      ++st().llc_misses;
      r.latency += mem_fetch(b, line, r.version, now + r.latency);
      r.latency += llc_fill(b, line, /*nc=*/false, /*dirty=*/false, r.version,
                            now + r.latency);
    }
    ne.sharers = bit(c);
    ne.excl = c;
    r.grant = is_write ? Mesi::kModified : Mesi::kExclusive;
  }
  r.latency += msg(b, c, MsgClass::kResponseData);
  return r;
}

Fabric::MissResult Fabric::nc_miss(CoreId c, LineAddr line, bool is_write, Cycle now) {
  const BankId b = home_of(line);
  if (topology().cross_socket(c, b)) ++st().nc_reqs_cross_socket;
  MissResult r;
  r.grant = Mesi::kInvalid;
  r.latency += msg(c, b, MsgClass::kRequest);
  r.latency += bank_service(llc_busy_[b], now + r.latency, cfg_.llc_cycles);
  ++st().llc_lookups;
  ++st().llc_nc_lookups;
  LlcLine* ll = llc_[b]->find(line);
  count_llc_touch(b);
  if (ll != nullptr) {
    ++st().llc_hits;
    ++st().llc_nc_hits;
    if (!ll->nc) {
      // Coherent -> NC transition (paper §III-E): if the line is tracked,
      // pull any dirty owner data into the LLC and deallocate the entry;
      // untracked lines simply re-tag without touching the directory.
      DirEntry* e = dir_[b]->find(line);
      if (e != nullptr) {
        count_dir_access(b);
        r.latency += recall_sharers(b, *e, kNoCore, now + r.latency);
        mark_dir_dirty(b, now + r.latency);
        dir_[b]->remove(line);
        count_dir_access(b);
        ++st().dir_coh_to_nc;
      }
      ll->nc = true;
      if (obs_ != nullptr && obs_->wants(obs::TraceCat::kCoh)) {
        obs_->instant(obs::TraceCat::kCoh, obs::kPidCoherence, b,
                      obs_ids_.deactivate, now + r.latency, obs_ids_.line, line);
      }
    }
    llc_[b]->touch(*ll);
    r.llc_hit = true;
    r.version = ll->version;
  } else {
    ++st().llc_misses;
    r.latency += mem_fetch(b, line, r.version, now + r.latency);
    r.latency += llc_fill(b, line, /*nc=*/true, /*dirty=*/false, r.version,
                          now + r.latency);
  }
  r.latency += msg(b, c, MsgClass::kResponseData);
  (void)is_write;
  return r;
}

Cycle Fabric::upgrade_to_m(CoreId c, LineAddr line, Cycle now) {
  const BankId b = home_of(line);
  if (topology().cross_socket(c, b)) ++st().dir_reqs_cross_socket;
  Cycle lat = msg(c, b, MsgClass::kRequest);
  lat += bank_service(dir_busy_[b], now + lat, cfg_.dir_cycles);
  count_dir_access(b);
  ++st().dir_lookups;
  ++st().upgrades;
  DirEntry* e = dir_[b]->find(line);
  RACCD_ASSERT(e != nullptr, "upgrade from S without directory entry");
  ++st().dir_hits;
  dir_[b]->touch(*e);
  RACCD_ASSERT(e->excl == kNoCore || e->excl == c,
               "S copy coexisting with a foreign exclusive owner");
  Cycle slowest = 0;
  std::uint64_t remaining = e->sharers & ~bit(c);
  while (remaining != 0) {
    const CoreId s = static_cast<CoreId>(std::countr_zero(remaining));
    remaining &= remaining - 1;
    Cycle leg = msg(b, s, MsgClass::kInval);
    const L1Line old = l1_[s]->invalidate(line);
    if (old.valid) {
      RACCD_ASSERT(!old.dirty, "dirty sharer outside excl state");
      ++st().l1_invals_sharer;
    }
    leg += msg(s, b, MsgClass::kAck);
    slowest = std::max(slowest, leg);
  }
  lat += slowest;
  e->sharers = bit(c);
  e->excl = c;
  lat += msg(b, c, MsgClass::kAck);
  return lat;
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

AccessOutcome Fabric::access(CoreId c, LineAddr line, bool is_write, bool nc, Cycle now) {
  RACCD_DEBUG_ASSERT(c < cfg_.cores, "core id out of range");
  ++st().l1_accesses;
  st().e_l1_pj += energy_.l1_access_pj();
  L1Cache& l1c = *l1_[c];
  Cycle lat = cfg_.l1_hit_cycles;

  if (L1Line* hit = l1c.find(line)) {
    ++st().l1_hits;
    l1c.touch(*hit);
    classifier_.record(line, hit->nc);
    if (!is_write) {
      if (checker_ != nullptr) checker_->on_load(line, hit->version);
      return AccessOutcome{lat, true, false};
    }
    if (hit->nc) {
      store_version_bump(*hit, line);
    } else {
      switch (hit->coh) {
        case Mesi::kModified:
          store_version_bump(*hit, line);
          break;
        case Mesi::kExclusive:
          hit->coh = Mesi::kModified;  // silent E->M upgrade
          store_version_bump(*hit, line);
          break;
        case Mesi::kShared:
          lat += upgrade_to_m(c, line, now + lat);
          hit->coh = Mesi::kModified;
          store_version_bump(*hit, line);
          break;
        case Mesi::kInvalid:
          RACCD_ASSERT(false, "valid coherent line in I state");
          break;
      }
    }
    return AccessOutcome{lat, true, false};
  }

  ++st().l1_misses;
  classifier_.record(line, nc);
  if (nc) {
    is_write ? ++st().nc_writes : ++st().nc_reads;
  } else {
    is_write ? ++st().coh_writes : ++st().coh_reads;
  }
  const MissResult r =
      nc ? nc_miss(c, line, is_write, now + lat) : coherent_miss(c, line, is_write, now + lat);
  lat += r.latency;

  const L1Line victim = l1c.fill(line, nc, r.grant, /*dirty=*/false, r.version);
  if (victim.valid) handle_l1_victim(c, victim, now + lat);
  L1Line* nl = l1c.find(line);
  if (is_write) {
    store_version_bump(*nl, line);
  } else if (checker_ != nullptr) {
    checker_->on_load(line, nl->version);
  }
  return AccessOutcome{lat, false, r.llc_hit};
}

Fabric::FlushOutcome Fabric::flush_nc_lines(CoreId c, Cycle now) {
  FlushOutcome out;
  L1Cache& l1c = *l1_[c];
  // Sequential walk over the whole array (paper §III-C.4).
  out.cycles = static_cast<Cycle>(l1c.line_capacity()) * cfg_.invalidate_walk_cycles_per_line;
  std::vector<LineAddr> to_drop;
  to_drop.reserve(64);
  l1c.for_each_valid([&](L1Line& l) {
    if (l.nc) to_drop.push_back(l.line);
  });
  for (const LineAddr line : to_drop) {
    const L1Line old = l1c.invalidate(line);
    ++out.lines;
    ++st().l1_flush_nc_lines;
    if (old.dirty) {
      ++out.writebacks;
      ++st().l1_flush_nc_wbs;
      const BankId b = home_of(line);
      (void)msg(c, b, MsgClass::kWriteback);
      ++st().l1_wb_nc;
      LlcLine* ll = llc_[b]->find(line);
      count_llc_touch(b);
      if (ll != nullptr) {
        ll->dirty = true;
        ll->version = old.version;
      } else {
        mem_writeback(b, line, old.version, now + out.cycles);
        ++st().llc_wb_mem;
      }
    }
  }
  return out;
}

Fabric::FlushOutcome Fabric::flush_page_lines(CoreId c, PageNum frame, Cycle now) {
  FlushOutcome out;
  L1Cache& l1c = *l1_[c];
  const LineAddr first = frame << (kPageShift - kLineShift);
  for (std::uint32_t i = 0; i < kLinesPerPage; ++i) {
    const LineAddr line = first + i;
    out.cycles += 1;  // one tag probe per line of the page
    const L1Line old = l1c.invalidate(line);
    if (!old.valid) continue;
    ++out.lines;
    ++st().l1_flush_page_lines;
    if (old.dirty) {
      ++out.writebacks;
      ++st().l1_flush_page_wbs;
      const BankId b = home_of(line);
      (void)msg(c, b, MsgClass::kWriteback);
      if (old.nc) {
        ++st().l1_wb_nc;
        LlcLine* ll = llc_[b]->find(line);
        count_llc_touch(b);
        if (ll != nullptr) {
          ll->dirty = true;
          ll->version = old.version;
        } else {
          mem_writeback(b, line, old.version, now + out.cycles);
          ++st().llc_wb_mem;
        }
      } else {
        // Coherent M line of a reclassifying page.
        ++st().l1_wb_coh;
        DirEntry* e = dir_[home_of(line)]->find(line);
        count_dir_access(b);
        RACCD_ASSERT(e != nullptr, "M flush without directory entry");
        if (e->excl == c) e->excl = kNoCore;
        e->sharers &= ~bit(c);
        LlcLine* ll = llc_[b]->find(line);
        RACCD_ASSERT(ll != nullptr, "M flush without LLC line");
        count_llc_touch(b);
        ll->dirty = true;
        ll->version = old.version;
      }
    }
  }
  return out;
}

Fabric::ResizeOutcome Fabric::resize_dir_bank(BankId b, std::uint32_t new_active_sets,
                                              Cycle now) {
  ResizeOutcome out;
  mark_dir_dirty(b, now);
  std::vector<DirEntry> displaced;
  out.moved = dir_[b]->resize(new_active_sets, displaced);
  out.displaced = static_cast<std::uint32_t>(displaced.size());
  for (DirEntry& e : displaced) {
    // Conflict overflow under the new indexing: recall like an eviction.
    (void)recall_sharers(b, e, kNoCore, now);
    (void)drop_llc_line(b, e.line, /*due_to_dir=*/true, now);
    ++st().dir_evictions;
  }
  // The reconfiguration blocks the bank while entries move (paper §III-D).
  out.blocked_cycles = static_cast<Cycle>(out.moved) * 2 + 100;
  dir_busy_[b] = std::max(dir_busy_[b], now) + out.blocked_cycles;
  dir_access_pj_[b] = energy_.dir_access_pj(dir_[b]->active_entries());
  return out;
}

void Fabric::finalize(Cycle end_time) {
  for (auto& d : dir_) d->occupancy_tick(end_time);
}

double Fabric::socket_dir_occupancy(std::uint32_t socket) const noexcept {
  const Topology& topo = topology();
  std::uint64_t valid = 0, active = 0;
  for (BankId b = socket * topo.cores_per_socket();
       b < (socket + 1) * topo.cores_per_socket(); ++b) {
    valid += dir_[b]->valid_entries();
    active += dir_[b]->active_entries();
  }
  return active == 0 ? 0.0 : static_cast<double>(valid) / static_cast<double>(active);
}

double Fabric::avg_dir_occupancy(Cycle end_time) const noexcept {
  if (end_time == 0) return 0.0;
  double sum = 0.0;
  for (const auto& d : dir_) {
    // Normalize against the *configured* capacity (paper Fig. 8 reports
    // occupancy of the 1:1 directory).
    const double cap = static_cast<double>(d->total_sets()) * d->ways();
    sum += d->occupancy_integral() / (static_cast<double>(end_time) * cap);
  }
  return sum / static_cast<double>(dir_.size());
}

}  // namespace raccd
