#include <gtest/gtest.h>

#include "raccd/trace/access_trace.hpp"

namespace raccd {
namespace {

TEST(AccessTrace, RecordsBasicFields) {
  AccessTrace t;
  t.add_compute(10);
  t.record(0x100, 4, false);
  t.record(0x200, 8, true);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].vaddr, 0x100u);
  EXPECT_EQ(t.records()[0].compute_gap, 10u);
  EXPECT_EQ(t.records()[0].is_write, 0u);
  EXPECT_EQ(t.records()[0].size, 4u);
  EXPECT_EQ(t.records()[1].is_write, 1u);
  EXPECT_EQ(t.total_accesses(), 2u);
}

TEST(AccessTrace, MergesConsecutiveSameLineSameKind) {
  AccessTrace t;
  for (int i = 0; i < 16; ++i) t.record(0x1000 + i * 4, 4, false);  // one line
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].repeat, 16u);
  EXPECT_EQ(t.total_accesses(), 16u);
}

TEST(AccessTrace, DoesNotMergeAcrossLines) {
  AccessTrace t;
  t.record(0x1000, 4, false);
  t.record(0x1040, 4, false);  // next line
  EXPECT_EQ(t.records().size(), 2u);
}

TEST(AccessTrace, DoesNotMergeLoadWithStore) {
  AccessTrace t;
  t.record(0x1000, 4, false);
  t.record(0x1004, 4, true);
  t.record(0x1008, 4, true);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[1].repeat, 2u);
}

TEST(AccessTrace, ComputeBreaksMerging) {
  AccessTrace t;
  t.record(0x1000, 4, false);
  t.add_compute(5);
  t.record(0x1004, 4, false);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[1].compute_gap, 5u);
}

TEST(AccessTrace, TrailingComputeExposed) {
  AccessTrace t;
  t.record(0x1000, 4, false);
  t.add_compute(42);
  EXPECT_EQ(t.trailing_compute(), 42u);
  t.clear();
  EXPECT_EQ(t.trailing_compute(), 0u);
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.total_accesses(), 0u);
}

TEST(AccessTrace, RepeatSaturationSplitsRecords) {
  AccessTrace t;
  for (int i = 0; i < 0xffff + 10; ++i) t.record(0x2000, 4, false);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].repeat, 0xffffu);
  EXPECT_EQ(t.records()[1].repeat, 10u);
  EXPECT_EQ(t.total_accesses(), 0xffffu + 10u);
}

}  // namespace
}  // namespace raccd
