// Non-coherent transaction tests: directory bypass, NC bit propagation,
// coherent<->NC transitions (paper §III-E), raccd_invalidate flushes and the
// PT page flush.
#include <gtest/gtest.h>

#include "fabric_test_util.hpp"

namespace raccd {
namespace {

using testutil::line_in_bank;
using testutil::small_fabric_config;

class FabricNcTest : public ::testing::Test {
 protected:
  FabricNcTest() : checker_(true), fabric_(small_fabric_config(), &checker_) {}

  AccessOutcome access(CoreId c, LineAddr l, bool w, bool nc) {
    return fabric_.access(c, l, w, nc, t_++);
  }

  void expect_clean_scan() {
    for (const auto& v : CoherenceChecker::scan(fabric_)) ADD_FAILURE() << v;
  }

  CoherenceChecker checker_;
  Fabric fabric_;
  Cycle t_ = 0;
};

TEST_F(FabricNcTest, NcMissBypassesDirectory) {
  const LineAddr l = line_in_bank(1, 2);
  const auto before = fabric_.stats().dir_accesses;
  access(0, l, false, true);
  EXPECT_EQ(fabric_.stats().dir_accesses, before);  // never touched
  EXPECT_EQ(fabric_.dir(1).find(l), nullptr);
  const L1Line* line = fabric_.l1(0).find(l);
  ASSERT_NE(line, nullptr);
  EXPECT_TRUE(line->nc);
  const LlcLine* ll = fabric_.llc(1).find(l);
  ASSERT_NE(ll, nullptr);
  EXPECT_TRUE(ll->nc);
  expect_clean_scan();
}

TEST_F(FabricNcTest, NcLatencySkipsDirectoryCycles) {
  // NC request: request + LLC + memory; coherent adds the directory access.
  const auto nc = access(0, line_in_bank(1, 2), false, true);
  const auto coh = access(0, line_in_bank(1, 34), false, false);
  EXPECT_LT(nc.latency, coh.latency);
}

TEST_F(FabricNcTest, NcStoreWritebackReachesLlc) {
  const LineAddr l = line_in_bank(0, 3);
  access(0, l, true, true);  // NC write-allocate
  EXPECT_TRUE(fabric_.l1(0).find(l)->dirty);
  const auto out = fabric_.flush_nc_lines(0, t_++);
  EXPECT_EQ(out.lines, 1u);
  EXPECT_EQ(out.writebacks, 1u);
  EXPECT_EQ(fabric_.l1(0).find(l), nullptr);
  const LlcLine* ll = fabric_.llc(0).find(l);
  ASSERT_NE(ll, nullptr);
  EXPECT_TRUE(ll->dirty);
  // Another core reading coherently must see the NC-written version
  // (NC -> coherent transition allocates a directory entry).
  access(1, l, false, false);
  EXPECT_EQ(checker_.violations(), 0u);
  EXPECT_EQ(fabric_.stats().dir_nc_to_coh, 1u);
  EXPECT_FALSE(fabric_.llc(0).find(l)->nc);
  ASSERT_NE(fabric_.dir(0).find(l), nullptr);
  expect_clean_scan();
}

TEST_F(FabricNcTest, CoherentToNcTransitionDropsDirEntry) {
  const LineAddr l = line_in_bank(2, 4);
  access(0, l, true, false);  // coherent M at core 0
  const auto flush = fabric_.flush_nc_lines(0, t_++);  // no NC lines yet
  EXPECT_EQ(flush.lines, 0u);
  // A later task accesses the same data as a declared dependence: NC request.
  // The dirty owner copy must be pulled back and the dir entry dropped.
  access(1, l, false, true);
  EXPECT_EQ(fabric_.stats().dir_coh_to_nc, 1u);
  EXPECT_EQ(fabric_.dir(2).find(l), nullptr);
  EXPECT_TRUE(fabric_.llc(2).find(l)->nc);
  EXPECT_EQ(fabric_.l1(0).find(l), nullptr) << "stale owner copy must be recalled";
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricNcTest, FlushWalkCostCoversWholeL1) {
  const auto out = fabric_.flush_nc_lines(0, 0);
  // 1 KB L1 = 16 lines; walk cost = capacity * per-line cycles.
  EXPECT_EQ(out.cycles, 16u * small_fabric_config().invalidate_walk_cycles_per_line);
}

TEST_F(FabricNcTest, FlushLeavesCoherentLinesAlone) {
  const LineAddr coh = line_in_bank(0, 1);
  const LineAddr nc = line_in_bank(0, 2);
  access(0, coh, false, false);
  access(0, nc, false, true);
  const auto out = fabric_.flush_nc_lines(0, t_++);
  EXPECT_EQ(out.lines, 1u);
  EXPECT_EQ(out.writebacks, 0u);  // clean NC line drops silently
  EXPECT_NE(fabric_.l1(0).find(coh), nullptr);
  EXPECT_EQ(fabric_.l1(0).find(nc), nullptr);
  expect_clean_scan();
}

TEST_F(FabricNcTest, NcWritebackAfterLlcEvictionGoesToMemory) {
  // Dirty NC line in L1; evict the LLC copy via conflicting NC fills, then
  // flush: the writeback must fall through to memory without reallocation.
  const LineAddr victim = line_in_bank(0, 0);
  access(0, victim, true, true);
  // LLC bank 0 set of `victim` holds 8 ways; fill 8 conflicting lines
  // (same LLC set: bank-local stride 8) from another core.
  for (std::uint64_t i = 1; i <= 8; ++i) {
    access(1, line_in_bank(0, i * 8), false, true);
  }
  EXPECT_EQ(fabric_.llc(0).find(victim), nullptr) << "LLC copy should be evicted";
  const auto mem_writes_before = fabric_.stats().mem_writes;
  const auto out = fabric_.flush_nc_lines(0, t_++);
  EXPECT_EQ(out.writebacks, 1u);
  EXPECT_GT(fabric_.stats().mem_writes, mem_writes_before);
  // Coherent read must still see the written version (now from memory).
  access(2, victim, false, false);
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricNcTest, PageFlushPurgesOnlyThatFrame) {
  // Lines of frame 0 are lines 0..63; frame 1 is 64..127.
  access(0, 0, true, true);
  access(0, 1, false, true);
  access(0, 64, false, true);
  const auto out = fabric_.flush_page_lines(0, 0, t_++);
  EXPECT_EQ(out.lines, 2u);
  EXPECT_EQ(out.writebacks, 1u);
  EXPECT_EQ(out.cycles, kLinesPerPage);
  EXPECT_EQ(fabric_.l1(0).find(0), nullptr);
  EXPECT_EQ(fabric_.l1(0).find(1), nullptr);
  EXPECT_NE(fabric_.l1(0).find(64), nullptr);
  expect_clean_scan();
}

TEST_F(FabricNcTest, ClassifierTracksEverCoherent) {
  const LineAddr a = line_in_bank(0, 1);  // only NC
  const LineAddr b = line_in_bank(0, 2);  // NC then coherent
  const LineAddr c = line_in_bank(0, 3);  // only coherent
  access(0, a, false, true);
  access(0, b, false, true);
  fabric_.flush_nc_lines(0, t_++);
  access(1, b, false, false);
  access(1, c, false, false);
  const BlockClassifier& cls = fabric_.classifier();
  EXPECT_EQ(cls.touched_blocks(), 3u);
  EXPECT_EQ(cls.noncoherent_blocks(), 1u);  // only `a` was never coherent
  EXPECT_EQ(cls.coherent_blocks(), 2u);
  EXPECT_NEAR(cls.noncoherent_fraction(), 1.0 / 3.0, 1e-12);
}

TEST_F(FabricNcTest, ResizeDirBankDisplacesAndBlocks) {
  // Track 16 coherent lines in bank 0, then shrink the bank hard.
  for (std::uint64_t i = 0; i < 16; ++i) access(0, line_in_bank(0, i), false, false);
  EXPECT_EQ(fabric_.dir(0).valid_entries(), 16u);
  const auto out = fabric_.resize_dir_bank(0, 1, t_++);  // 8 entries total
  EXPECT_EQ(fabric_.dir(0).active_sets(), 1u);
  EXPECT_EQ(out.displaced, 8u);
  EXPECT_EQ(fabric_.dir(0).valid_entries(), 8u);
  EXPECT_GT(out.blocked_cycles, 0u);
  // Displaced lines lost their LLC copies; reading them again must re-fetch
  // and still see correct data.
  for (std::uint64_t i = 0; i < 16; ++i) access(1, line_in_bank(0, i), false, false);
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricNcTest, RepeatHitAccounting) {
  const auto before = fabric_.stats().l1_accesses;
  fabric_.count_l1_repeat_hits(15);
  EXPECT_EQ(fabric_.stats().l1_accesses, before + 15);
  EXPECT_EQ(fabric_.stats().l1_hits, 15u);
}

}  // namespace
}  // namespace raccd
