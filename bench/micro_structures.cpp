// google-benchmark microbenchmarks of the hardware-model hot paths: these
// bound the host cost per simulated event, which is what makes the full
// figure sweeps tractable.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "raccd/cache/l1_cache.hpp"
#include "raccd/coherence/fabric.hpp"
#include "raccd/common/flat_map.hpp"
#include "raccd/common/rng.hpp"
#include "raccd/core/ncrt.hpp"
#include "raccd/dram/dram.hpp"
#include "raccd/interval/interval_set.hpp"
#include "raccd/mem/page_table.hpp"
#include "raccd/runtime/dep_registry.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {
namespace {

// The legacy/flat pairs below measure the structure swap in isolation:
// structures capture legacy_structures() at construction, so toggling the
// override before building each fixture selects the implementation.

void BM_NcrtLookup(benchmark::State& state) {
  set_legacy_structures(state.range(0) != 0);
  Ncrt ncrt(32);
  set_legacy_structures(false);
  for (std::uint64_t i = 0; i < 32; ++i) {
    ncrt.insert(i * 0x100000, i * 0x100000 + 0x10000);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ncrt.lookup(rng.next_below(32) * 0x100000 + 0x8000));
  }
}
BENCHMARK(BM_NcrtLookup)->Arg(0)->Arg(1);  // 0 = sorted+memo, 1 = legacy scan

void BM_L1FindHit(benchmark::State& state) {
  set_legacy_structures(state.range(0) != 0);
  L1Cache l1(L1Geometry{});
  set_legacy_structures(false);
  for (LineAddr l = 0; l < 512; ++l) l1.fill(l, false, Mesi::kShared, false, 0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1.find(rng.next_below(512)));
  }
}
BENCHMARK(BM_L1FindHit)->Arg(0)->Arg(1);  // 0 = SoA tag probe, 1 = AoS scan

void BM_TlbAccess(benchmark::State& state) {
  set_legacy_structures(state.range(0) != 0);
  Tlb tlb(256);
  set_legacy_structures(false);
  PageTable pt;
  for (PageNum v = 0; v < 4096; ++v) pt.map(v, v);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(rng.next_below(512), pt));
  }
}
BENCHMARK(BM_TlbAccess)->Arg(0)->Arg(1);  // 0 = OpenPageMap index, 1 = hash map

void BM_MemVersionFlat(benchmark::State& state) {
  // The memory version map access pattern of a replay: write a line on
  // writeback, read lines on fills — line-granular, dense in a bounded
  // physical range.
  PagedLineMap map;
  map.reserve_lines(1 << 16);
  for (LineAddr l = 0; l < (1 << 16); l += 7) map.set(l, l);
  Rng rng(5);
  for (auto _ : state) {
    const LineAddr l = rng.next_below(1 << 16);
    benchmark::DoNotOptimize(map.get(l));
    if ((l & 7) == 0) map.set(l, l);
  }
}
BENCHMARK(BM_MemVersionFlat);

void BM_MemVersionHash(benchmark::State& state) {
  // Same access pattern through the legacy unordered_map for comparison.
  std::unordered_map<LineAddr, std::uint64_t> map;
  for (LineAddr l = 0; l < (1 << 16); l += 7) map[l] = l;
  Rng rng(5);
  for (auto _ : state) {
    const LineAddr l = rng.next_below(1 << 16);
    const auto it = map.find(l);
    benchmark::DoNotOptimize(it == map.end() ? 0 : it->second);
    if ((l & 7) == 0) map[l] = l;
  }
}
BENCHMARK(BM_MemVersionHash);

void BM_FabricL1Hit(benchmark::State& state) {
  FabricConfig cfg;
  cfg.cores = 16;
  Fabric fabric(cfg, nullptr);
  fabric.access(0, 1, false, false, 0);
  Cycle t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.access(0, 1, false, false, t++));
  }
}
BENCHMARK(BM_FabricL1Hit);

void BM_FabricMissStream(benchmark::State& state) {
  FabricConfig cfg;
  cfg.cores = 16;
  Fabric fabric(cfg, nullptr);
  Cycle t = 0;
  LineAddr l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.access(l & 15, l, false, false, t++));
    ++l;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricMissStream);

void BM_DramReadStream(benchmark::State& state) {
  // Sequential lines: mostly row hits, periodic activates — the fast path of
  // the queue/bank structures behind every simulated LLC miss.
  DramConfig cfg;
  cfg.model = DramModel::kDdr;
  DramController dc(cfg);
  Cycle t = 0;
  LineAddr l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.read(l++, t));
    t += 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramReadStream);

void BM_DramMixedRandom(benchmark::State& state) {
  // Random reads + writebacks: row conflicts plus queue-slot management
  // (erase/min scans) — the worst case of the closed-form DRAM model.
  DramConfig cfg;
  cfg.model = DramModel::kDdr;
  cfg.channels = 2;
  DramController dc(cfg);
  Rng rng(6);
  Cycle t = 0;
  for (auto _ : state) {
    const LineAddr l = rng.next_below(1 << 16);
    if ((l & 3) == 0) {
      benchmark::DoNotOptimize(dc.write(l, t));
    } else {
      benchmark::DoNotOptimize(dc.read(l, t));
    }
    t += 2;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramMixedRandom);

void BM_DepRegistryRegister(benchmark::State& state) {
  DepRegistry reg;
  std::vector<TaskId> preds;
  TaskId t = 0;
  for (auto _ : state) {
    preds.clear();
    reg.register_dep(t, DepSpec{(t % 64) * 4096ull, 4096, DepKind::kInout}, preds);
    benchmark::DoNotOptimize(preds.data());
    ++t;
  }
}
BENCHMARK(BM_DepRegistryRegister);

void BM_IntervalSetInsert(benchmark::State& state) {
  Rng rng(4);
  IntervalSet set;
  for (auto _ : state) {
    const std::uint64_t a = rng.next_below(1 << 20);
    set.insert(a, a + 64);
    if (set.range_count() > 4096) set.clear();
  }
}
BENCHMARK(BM_IntervalSetInsert);

}  // namespace
}  // namespace raccd

BENCHMARK_MAIN();
