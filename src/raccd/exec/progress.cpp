#include "raccd/exec/progress.hpp"

#include <unistd.h>

#include <algorithm>

#include "raccd/common/format.hpp"

namespace raccd {
namespace {

/// Keys are long ("jacobi-small-raccd-d1-s42-..."); the per-worker strip
/// shows just enough to tell workers apart.
[[nodiscard]] std::string abbrev(const std::string& key, std::size_t max = 24) {
  if (key.size() <= max) return key;
  return key.substr(0, max - 1) + "~";
}

}  // namespace

ProgressReporter::ProgressReporter(std::size_t total, unsigned workers, bool enabled,
                                   std::FILE* stream, int force_tty,
                                   std::size_t cached)
    : stream_(stream),
      total_(total),
      cached_(cached),
      enabled_(enabled),
      running_(std::max(1u, workers)),
      phase_(std::max(1u, workers)),
      start_(std::chrono::steady_clock::now()) {
  tty_ = force_tty >= 0 ? force_tty != 0 : ::isatty(::fileno(stream)) != 0;
}

ProgressReporter::~ProgressReporter() { finish(); }

std::string ProgressReporter::rate_eta_locked() const {
  // Rate counts only runs that actually simulated (done_ never includes
  // cache-preload hits), so the ETA reflects real per-run cost from the
  // first finished run instead of starting wildly optimistic.
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const double rate = secs > 0.0 ? static_cast<double>(done_) / secs : 0.0;
  const double eta =
      rate > 0.0 ? static_cast<double>(total_ - done_) / rate : 0.0;
  return strprintf("%.2f runs/s, ETA %d:%02d", rate, static_cast<int>(eta) / 60,
                   static_cast<int>(eta) % 60);
}

void ProgressReporter::repaint_locked() {
  std::string line = strprintf("[%zu/%zu] %s |", done_, total_, rate_eta_locked().c_str());
  for (std::size_t w = 0; w < running_.size(); ++w) {
    line += strprintf(" w%zu:%s%s", w,
                      running_[w].empty() ? "-" : abbrev(running_[w]).c_str(),
                      phase_[w].c_str());
  }
  // Pad over the previous (possibly longer) paint, then return the cursor.
  static constexpr std::size_t kPad = 4;
  std::fprintf(stream_, "\r%-*s\r", static_cast<int>(line.size() + kPad), line.c_str());
  std::fflush(stream_);
  line_open_ = true;
}

void ProgressReporter::run_started(unsigned worker, const std::string& key) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (worker < running_.size()) {
    running_[worker] = key;
    phase_[worker].clear();
  }
  if (tty_) repaint_locked();
}

void ProgressReporter::phase_changed(unsigned worker, bool ffwd,
                                     std::uint64_t window) {
  // Chrome only: no phase suffix in non-TTY logs, nothing when disabled.
  if (!enabled_ || !tty_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (worker >= phase_.size()) return;
  phase_[worker] = strprintf("|%s%llu", ffwd ? "ffwd" : "det",
                             static_cast<unsigned long long>(window));
  // Windows can turn over thousands of times a second on fast-forwarded
  // runs — cap the repaint rate so the strip stays cheap.
  const auto now = std::chrono::steady_clock::now();
  if (now - last_phase_paint_ < std::chrono::milliseconds(50)) return;
  last_phase_paint_ = now;
  repaint_locked();
}

void ProgressReporter::release_changed(unsigned worker, std::uint64_t released) {
  // Chrome only, like phase_changed: release batches can drain quickly, so
  // the suffix shares the throttled repaint.
  if (!enabled_ || !tty_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (worker >= phase_.size()) return;
  phase_[worker] = strprintf("|rel%llu", static_cast<unsigned long long>(released));
  const auto now = std::chrono::steady_clock::now();
  if (now - last_phase_paint_ < std::chrono::milliseconds(50)) return;
  last_phase_paint_ = now;
  repaint_locked();
}

void ProgressReporter::run_finished(unsigned worker, const std::string& key) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (worker < running_.size()) {
    running_[worker].clear();
    phase_[worker].clear();
  }
  if (tty_) {
    repaint_locked();
  } else {
    std::fprintf(stream_, "[%zu/%zu] %s (%s)\n", done_, total_, key.c_str(),
                 rate_eta_locked().c_str());
  }
}

void ProgressReporter::run_failed(unsigned worker, const std::string& key,
                                  const std::string& error) {
  // Failures print even when progress is disabled: they are diagnostics,
  // not chrome.
  const std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (worker < running_.size()) {
    running_[worker].clear();
    phase_[worker].clear();
  }
  if (line_open_) {
    std::fprintf(stream_, "\n");
    line_open_ = false;
  }
  ++failed_;
  std::fprintf(stream_, "[%zu/%zu] FAILED %s: %s\n", done_, total_, key.c_str(),
               error.c_str());
  if (enabled_ && tty_) repaint_locked();
}

void ProgressReporter::set_summary_extra(std::string extra) {
  const std::lock_guard<std::mutex> lock(mutex_);
  summary_extra_ = std::move(extra);
}

void ProgressReporter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (line_open_) {
    std::fprintf(stream_, "\n");
    std::fflush(stream_);
    line_open_ = false;
  }
  if (enabled_ && !summary_printed_) {
    summary_printed_ = true;
    std::fprintf(stream_, "sweep: %zu run, %zu cached, %zu failed%s%s\n",
                 done_ - failed_, cached_, failed_,
                 summary_extra_.empty() ? "" : " | ", summary_extra_.c_str());
    std::fflush(stream_);
  }
}

std::size_t ProgressReporter::done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

}  // namespace raccd
