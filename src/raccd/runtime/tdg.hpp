// Task Dependence Graph (paper §II-C, Fig. 1): nodes are tasks, edges are
// data dependences derived by DepRegistry. Tracks readiness via unresolved
// predecessor counts and supports Graphviz export (examples/cholesky).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raccd/common/types.hpp"
#include "raccd/runtime/task.hpp"

namespace raccd {

class Tdg {
 public:
  /// Add a task node; returns its id.
  TaskId add_task(TaskDesc desc);

  /// Add a dependence edge from -> to. Edges from finished tasks resolve
  /// immediately and are recorded only for export. Duplicate edges between
  /// the same pair are ignored.
  void add_edge(TaskId from, TaskId to);

  [[nodiscard]] TaskNode& task(TaskId t) { return nodes_[t]; }
  [[nodiscard]] const TaskNode& task(TaskId t) const { return nodes_[t]; }

  /// Mark `t` finished; appends newly ready successor ids to `ready`.
  /// Returns the number of successor edges resolved (wake-up work).
  std::uint32_t finish(TaskId t, std::vector<TaskId>& ready);

  [[nodiscard]] std::size_t task_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::uint64_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] std::size_t finished_count() const noexcept { return finished_; }
  [[nodiscard]] bool all_finished() const noexcept { return finished_ == nodes_.size(); }

  /// Graphviz dot of the graph (paper Fig. 1 right-hand side).
  [[nodiscard]] std::string to_dot() const;

  /// Longest dependence chain in tasks (unit weights). With p cores, the
  /// execution time is bounded below by this; the ratio task_count/critical
  /// path is the graph's average parallelism.
  [[nodiscard]] std::size_t critical_path_length() const;

 private:
  std::vector<TaskNode> nodes_;
  std::uint64_t edges_ = 0;
  std::size_t finished_ = 0;
};

}  // namespace raccd
