// printf-style std::string formatting (the toolchain's <format> is not yet
// complete for our uses) plus human-readable unit helpers.
#pragma once

#include <cstdint>
#include <string>

namespace raccd {

/// vsnprintf into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "1.5 KB", "32 MB", ... (powers of 1024).
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// "1234567" -> "1,234,567".
[[nodiscard]] std::string format_count(std::uint64_t v);

}  // namespace raccd
