// Adaptive Directory Reduction (paper §III-D).
//
// A per-bank occupancy monitor is updated whenever a directory entry is
// allocated or evicted (the fabric exposes a dirty-bank mask to avoid
// resizing mid-transaction). When occupancy crosses theta_inc (80% of the
// current active size) the bank doubles its sets; below theta_dec (20%) it
// halves them. The 80/20 pair forms a hysteresis loop (after a resize the
// occupancy ratio lands between the thresholds). Reconfiguration re-indexes
// entries, recalls conflict overflow and blocks the bank (cost modelled in
// Fabric::resize_dir_bank); Gated-Vdd leakage of powered-off sets is zero.
//
// On multi-socket topologies the monitor also consults the bank's *socket*
// occupancy (home banks are socket-local, so per-socket working sets are
// correlated): a bank never powers down while its socket sits at the grow
// threshold, damping shrink/grow bounce. Single-socket machines keep the
// paper's pure per-bank hysteresis.
#pragma once

#include <cstdint>

#include "raccd/coherence/fabric.hpp"
#include "raccd/common/types.hpp"
#include "raccd/core/adr_config.hpp"

namespace raccd {

class AdrController {
 public:
  AdrController(Fabric& fabric, const AdrConfig& cfg);

  /// Check banks whose occupancy changed since the last poll and resize any
  /// that crossed a threshold. Call between accesses (never mid-transaction).
  void poll(Cycle now);

  /// Evaluate every bank regardless of recent activity. The machine calls
  /// this at task completion boundaries so banks with *no* directory traffic
  /// (fully non-coherent phases) still power down to their floor.
  void poll_all(Cycle now);

  [[nodiscard]] const AdrStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AdrConfig& config() const noexcept { return cfg_; }

 private:
  void consider_bank(BankId b, Cycle now);

  Fabric& fabric_;
  AdrConfig cfg_;
  AdrStats stats_;
  std::uint32_t min_sets_;
};

}  // namespace raccd
