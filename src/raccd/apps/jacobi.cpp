// Jacobi: stationary heat diffusion, iterative Jacobi method, 5-point stencil
// (paper Table II: 2D matrix N^2 = 2359296, 10 iterations).
//
// Two grids (src/dst) swap roles each iteration. Tasks update contiguous row
// blocks: in = src rows [r0-1, r1+1) (block + halo), out = dst rows [r0, r1).
// All iterations are created up front and executed at one taskwait, so the
// TDG pipelines across iterations and blocks migrate between cores — the
// temporally-private pattern PT misclassifies and RaCCD tracks precisely.
#include <algorithm>
#include <string>

#include "raccd/apps/registry.hpp"
#include "raccd/apps/stencil_common.hpp"
#include "raccd/common/format.hpp"

namespace raccd::apps {
namespace {

struct JacobiParams {
  std::uint32_t n;
  std::uint32_t iters;
  std::uint32_t blocks;
};

[[nodiscard]] JacobiParams params_for(const AppConfig& cfg) {
  JacobiParams p{512, 10, 32};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {64, 3, 8}; break;
    case SizeClass::kSmall: p = {512, 10, 32}; break;
    // Medium and up keep tasks fine-grained (many tasks per size) so the
    // sampled simulator has enough task starts for several detailed windows.
    case SizeClass::kMedium: p = {1024, 24, 256}; break;
    case SizeClass::kPaper: p = {1536, 10, 64}; break;  // N^2 = 2359296
    case SizeClass::kLarge: p = {3072, 10, 128}; break;
  }
  p.n = cfg.params.get_u32("n", p.n);
  p.iters = cfg.params.get_u32("iters", p.iters);
  p.blocks = std::min(cfg.params.get_u32("blocks", p.blocks), p.n);
  return p;
}

class JacobiApp final : public App {
 public:
  explicit JacobiApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "jacobi"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("2D matrix N^2=%u, %u iters, %u row blocks", p_.n * p_.n, p_.iters,
                     p_.blocks);
  }

  void run(Machine& m) override {
    const std::uint32_t n = p_.n;
    a_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(n) * n, "jacobi.a");
    b_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(n) * n, "jacobi.b");
    Rng rng(seed_);
    init_grid(m.mem(), a_, n, rng);
    init_grid(m.mem(), b_, n, rng);  // overwritten; boundary must be set

    const RowBlocks rb{n, p_.blocks};
    VAddr src = a_;
    VAddr dst = b_;
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
        const std::uint32_t r0 = rb.row0(blk);
        const std::uint32_t r1 = rb.row1(blk);
        const std::uint32_t h0 = r0 == 0 ? 0 : r0 - 1;
        const std::uint32_t h1 = r1 == n ? n : r1 + 1;
        TaskDesc t;
        t.name = strprintf("jacobi(i%u,b%u)", iter, blk);
        t.deps = {
            DepSpec{src + static_cast<VAddr>(h0) * n * sizeof(float),
                    static_cast<std::uint64_t>(h1 - h0) * n * sizeof(float), DepKind::kIn},
            DepSpec{dst + static_cast<VAddr>(r0) * n * sizeof(float),
                    static_cast<std::uint64_t>(r1 - r0) * n * sizeof(float),
                    DepKind::kOut},
        };
        t.body = [src, dst, n, r0, r1](TaskContext& ctx) {
          const auto at = [n](VAddr base, std::uint32_t i, std::uint32_t j) {
            return base + (static_cast<VAddr>(i) * n + j) * sizeof(float);
          };
          for (std::uint32_t i = r0; i < r1; ++i) {
            for (std::uint32_t j = 0; j < n; ++j) {
              if (i == 0 || j == 0 || i == n - 1 || j == n - 1) {
                ctx.store<float>(at(dst, i, j), ctx.load<float>(at(src, i, j)));
                continue;
              }
              const float up = ctx.load<float>(at(src, i - 1, j));
              const float left = ctx.load<float>(at(src, i, j - 1));
              const float mid = ctx.load<float>(at(src, i, j));
              const float right = ctx.load<float>(at(src, i, j + 1));
              const float down = ctx.load<float>(at(src, i + 1, j));
              ctx.compute(4);  // 4 adds + scale on the FP units
              ctx.store<float>(at(dst, i, j), 0.2f * (up + left + mid + right + down));
            }
          }
        };
        m.spawn(std::move(t));
      }
      std::swap(src, dst);
    }
    final_ = src;  // after the last swap, `src` holds the final grid
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    // Reference: identical arithmetic on the host.
    const std::uint32_t n = p_.n;
    Rng rng(seed_);
    std::vector<float> ref_a(static_cast<std::size_t>(n) * n);
    std::vector<float> ref_b(static_cast<std::size_t>(n) * n);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        const bool boundary = i == 0 || j == 0 || i == n - 1 || j == n - 1;
        ref_a[static_cast<std::size_t>(i) * n + j] =
            boundary ? 1.0f : rng.next_float(0.0f, 1.0f);
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        const bool boundary = i == 0 || j == 0 || i == n - 1 || j == n - 1;
        ref_b[static_cast<std::size_t>(i) * n + j] =
            boundary ? 1.0f : rng.next_float(0.0f, 1.0f);
      }
    }
    std::vector<float>* src = &ref_a;
    std::vector<float>* dst = &ref_b;
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
          const std::size_t idx = static_cast<std::size_t>(i) * n + j;
          if (i == 0 || j == 0 || i == n - 1 || j == n - 1) {
            (*dst)[idx] = (*src)[idx];
          } else {
            (*dst)[idx] = 0.2f * ((*src)[idx - n] + (*src)[idx - 1] + (*src)[idx] +
                                  (*src)[idx + 1] + (*src)[idx + n]);
          }
        }
      }
      std::swap(src, dst);
    }
    const std::vector<float> got = read_grid(m.mem(), final_, n);
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != (*src)[i]) {
        return strprintf("jacobi mismatch at %zu: got %g want %g", i,
                         static_cast<double>(got[i]), static_cast<double>((*src)[i]));
      }
    }
    return {};
  }

 private:
  JacobiParams p_;
  std::uint64_t seed_;
  VAddr a_ = 0, b_ = 0, final_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "jacobi",
    "5-point Jacobi stencil over ping-pong grids (paper Table II)",
    "paper",
    ParamSchema()
        .add_int("n", 512, "grid edge (N x N floats)", 8, 8192)
        .add_int("iters", 10, "Jacobi iterations", 1, 1024)
        .add_int("blocks", 32, "row blocks per iteration (clamped to n)", 1, 8192),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<JacobiApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
