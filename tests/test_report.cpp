// Report/summary formatting and configuration-printing smoke tests, plus the
// paper-preset (Table I) machine configuration checks.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "raccd/harness/experiment.hpp"
#include "raccd/sim/report.hpp"

namespace raccd {
namespace {

std::string render_config(const SimConfig& cfg) {
  std::FILE* f = std::tmpfile();
  print_config(cfg, f);
  std::rewind(f);
  std::string out;
  char buf[512];
  while (std::fgets(buf, sizeof buf, f) != nullptr) out += buf;
  std::fclose(f);
  return out;
}

TEST(Report, ScaledConfigHeaderMentionsGeometry) {
  const std::string text = render_config(SimConfig::scaled(CohMode::kRaCCD));
  EXPECT_NE(text.find("16 cores"), std::string::npos);
  EXPECT_NE(text.find("4x4 mesh"), std::string::npos);
  EXPECT_NE(text.find("32 KB"), std::string::npos);   // L1
  EXPECT_NE(text.find("2 MB total"), std::string::npos);
  EXPECT_NE(text.find("RaCCD"), std::string::npos);
  EXPECT_NE(text.find("NCRT: 32 entries/core"), std::string::npos);
}

TEST(Report, PaperConfigMatchesTableI) {
  const SimConfig cfg = SimConfig::paper(CohMode::kFullCoh);
  // Table I: 32 MB LLC banked 2 MB/core; directory 524288 entries total,
  // 32768/bank, 8-way; 32 KB 2-way L1s.
  EXPECT_EQ(cfg.fabric.cores, 16u);
  EXPECT_EQ(cfg.fabric.llc.lines_per_bank * std::uint64_t{kLineBytes}, 2u * 1024 * 1024);
  EXPECT_EQ(cfg.total_dir_entries(), 524288u);
  EXPECT_EQ(cfg.fabric.dir.ways, 8u);
  EXPECT_EQ(cfg.fabric.l1.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.fabric.l1.ways, 2u);
  EXPECT_EQ(cfg.tlb_entries, 256u);
  const std::string text = render_config(cfg);
  EXPECT_NE(text.find("32 MB total"), std::string::npos);
  EXPECT_NE(text.find("524,288 entries"), std::string::npos);
}

TEST(Report, DirRatioSweepChangesEntries) {
  SimConfig cfg = SimConfig::paper();
  for (const std::uint32_t r : kDirRatios) {
    cfg.set_dir_ratio(r);
    EXPECT_EQ(cfg.dir_ratio(), r);
    EXPECT_EQ(cfg.total_dir_entries(), 524288u / r);
  }
}

TEST(Report, SummaryAndReportContainKeyMetrics) {
  RunSpec spec;
  spec.app = "histo";
  spec.size = SizeClass::kTiny;
  spec.mode = CohMode::kRaCCD;
  spec.adr = true;
  const SimStats s = run_one(spec);
  const std::string summary = s.summary();
  EXPECT_NE(summary.find("mode=RaCCD"), std::string::npos);
  EXPECT_NE(summary.find("tasks="), std::string::npos);
  EXPECT_NE(summary.find("non-coherent blocks"), std::string::npos);

  std::FILE* f = std::tmpfile();
  print_report(s, f);
  std::rewind(f);
  std::string text;
  char buf[512];
  while (std::fgets(buf, sizeof buf, f) != nullptr) text += buf;
  std::fclose(f);
  EXPECT_NE(text.find("runtime overhead"), std::string::npos);
  EXPECT_NE(text.find("register="), std::string::npos);  // RaCCD-only line
  EXPECT_NE(text.find("ADR:"), std::string::npos);
}

TEST(Report, PaperMachineRunsTinyWorkload) {
  // Smoke: the full Table I machine executes and verifies a tiny app.
  RunSpec spec;
  spec.app = "md5";
  spec.size = SizeClass::kTiny;
  spec.mode = CohMode::kRaCCD;
  spec.paper_machine = true;
  const SimStats s = run_one(spec);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.noncoherent_block_fraction, 0.9);
}

}  // namespace
}  // namespace raccd
