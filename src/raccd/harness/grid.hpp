// Declarative experiment grids.
//
// Grid is a fluent builder over every RunSpec axis: workloads (registry
// references like "synthetic:shape=pipeline,width=64"), problem sizes,
// coherence modes, directory ratios, machine topologies, DRAM models, ADR
// on/off (and thresholds), seeds and the overhead/ablation knobs. specs()
// expands the cartesian product in a fixed nesting order — workloads, sizes,
// modes, dir_ratios, adr, adr_bands, seeds, ncrt_latencies, ncrt_entries,
// allocs, scheds, topologies, drams, samplings, outermost to innermost — so
// axis-major index arithmetic on the results stays valid.
//
// ResultSet pairs the expanded specs with their stats (run through the
// cache-aware work-stealing sweep executor, exec/sweep_executor.hpp; every
// emitter below is byte-identical between --jobs=1 and --jobs=N because
// results commit in spec order) and adds spec-addressed lookup plus
// machine-readable emitters: CSV, JSON, and the cumulative BENCH_grid.json
// perf log keyed by RunSpec::key(). All metric output flows through the
// MetricSchema emitters (metrics/emit.hpp) — the selections live in
// metric_schema.cpp, so emitters and schema cannot drift. Grids with
// sampling enabled (sample_series) also carry one Series per spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raccd/harness/experiment.hpp"

namespace raccd {

class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(std::vector<RunSpec> specs, std::vector<SimStats> results)
      : specs_(std::move(specs)), results_(std::move(results)) {}
  ResultSet(std::vector<RunSpec> specs, std::vector<SimStats> results,
            std::vector<Series> series)
      : specs_(std::move(specs)),
        results_(std::move(results)),
        series_(std::move(series)) {}

  /// Execute `specs` (cache-aware, host-parallel) and bundle the results.
  [[nodiscard]] static ResultSet run(std::vector<RunSpec> specs,
                                     const RunOptions& opts = {});

  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }
  [[nodiscard]] const std::vector<RunSpec>& specs() const noexcept { return specs_; }
  [[nodiscard]] const RunSpec& spec(std::size_t i) const { return specs_.at(i); }
  [[nodiscard]] const SimStats& operator[](std::size_t i) const { return results_.at(i); }

  /// First result whose spec matches workload ref + mode + ratio + adr
  /// (params in `workload_ref` are part of the match). Aborts when absent.
  [[nodiscard]] const SimStats& at(std::string_view workload_ref, CohMode mode,
                                   std::uint32_t dir_ratio = 1, bool adr = false) const;
  /// First result whose spec satisfies `pred`; nullptr when none does.
  template <typename Pred>
  [[nodiscard]] const SimStats* find(Pred&& pred) const {
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      if (pred(specs_[i])) return &results_[i];
    }
    return nullptr;
  }

  /// Per-spec metric time-series; empty Series for specs without sampling.
  [[nodiscard]] bool has_series() const noexcept { return !series_.empty(); }
  [[nodiscard]] const Series& series(std::size_t i) const { return series_.at(i); }

  /// Concatenate another set (spec order preserved).
  ResultSet& append(ResultSet other);

  /// One row per spec: identity columns + headline metrics.
  [[nodiscard]] bool write_csv(const std::string& path) const;
  /// JSON array of per-spec objects (same fields as the CSV).
  [[nodiscard]] bool write_json(const std::string& path) const;
  /// Merge into the cumulative benchmark log at `path`: a JSON object
  /// mapping RunSpec::key() to {cycles, dir_accesses, llc_hit_rate,
  /// noc_flit_hops, dir_dyn_energy_pj, ...}. Existing keys are overwritten,
  /// other keys are preserved, the key order is sorted. When
  /// `include_profile` is true, the last sweep's host-side wall-time profile
  /// (obs::last_sweep_profile()) also merges as a `__profile__` entry;
  /// double-underscore keys are informational — the perf differ skips them,
  /// and emitters that must stay byte-identical across -jN leave the flag
  /// off (host timings are nondeterministic by nature).
  [[nodiscard]] bool append_bench_json(const std::string& path,
                                       bool include_profile = false) const;

 private:
  std::vector<RunSpec> specs_;
  std::vector<SimStats> results_;
  std::vector<Series> series_;  ///< empty, or one per spec
};

class Grid {
 public:
  // -- Workloads --------------------------------------------------------------
  Grid& workload(std::string ref);
  Grid& workloads(const std::vector<std::string>& refs);
  /// The nine paper benchmarks, in the paper's order.
  Grid& paper_apps();
  /// Apply one `key=value` override to every workload of the grid.
  Grid& set(std::string key, std::string value);
  Grid& set_params(const WorkloadParams& params);

  // -- Axes (each replaces its axis; single-value helpers wrap a vector) ------
  Grid& size(SizeClass s);
  Grid& sizes(std::vector<SizeClass> v);
  Grid& mode(CohMode m);
  Grid& modes(std::vector<CohMode> v);
  template <typename Container>
  Grid& modes(const Container& c) {
    return modes(std::vector<CohMode>(std::begin(c), std::end(c)));
  }
  Grid& dir_ratio(std::uint32_t r);
  Grid& dir_ratios(std::vector<std::uint32_t> v);
  template <typename Container>
  Grid& dir_ratios(const Container& c) {
    return dir_ratios(std::vector<std::uint32_t>(std::begin(c), std::end(c)));
  }
  Grid& adr(bool enabled);
  Grid& adr_values(std::vector<bool> v);
  /// ADR hysteresis bands (theta_inc, theta_dec); default {0.80, 0.20}.
  Grid& adr_bands(std::vector<std::pair<double, double>> v);
  Grid& seed(std::uint64_t s);
  Grid& seeds(std::vector<std::uint64_t> v);
  Grid& ncrt_latency(Cycle c);
  Grid& ncrt_latencies(std::vector<Cycle> v);
  Grid& ncrt_entry_counts(std::vector<std::uint32_t> v);
  Grid& alloc(AllocPolicy p);
  Grid& allocs(std::vector<AllocPolicy> v);
  Grid& sched(SchedPolicy p);
  Grid& scheds(std::vector<SchedPolicy> v);
  /// Machine-shape tokens ("flat", "cmesh[<K>]", "numa<S>[x<C>]").
  Grid& topology(std::string t);
  Grid& topologies(std::vector<std::string> v);
  /// Memory-system tokens ("simple", "ddr[-open|-closed|-fcfs|-frfcfs|-chN|-bkN]").
  Grid& dram(std::string d);
  Grid& drams(std::vector<std::string> v);
  /// Sampled-simulation tokens ("" = detailed, or "period/window[/warmup]"
  /// in tasks — see SamplingConfig). Innermost axis.
  Grid& sampling(std::string s);
  Grid& samplings(std::vector<std::string> v);
  Grid& paper_machine(bool on);
  /// Sample `metrics` (comma-separated names; "" = default subset) every
  /// `interval` cycles on every run of the grid — ResultSet::series(i).
  Grid& sample_series(Cycle interval, std::string metrics = "");

  /// Expand to the cartesian product (nesting order documented above).
  [[nodiscard]] std::vector<RunSpec> specs() const;
  /// Expand and execute.
  [[nodiscard]] ResultSet run(const RunOptions& opts = {}) const;

 private:
  std::vector<std::string> workloads_;
  WorkloadParams common_params_;
  std::vector<SizeClass> sizes_{SizeClass::kSmall};
  std::vector<CohMode> modes_{CohMode::kRaCCD};
  std::vector<std::uint32_t> dir_ratios_{1};
  std::vector<bool> adr_{false};
  std::vector<std::pair<double, double>> adr_bands_{{0.80, 0.20}};
  std::vector<std::uint64_t> seeds_{42};
  std::vector<Cycle> ncrt_latencies_{1};
  std::vector<std::uint32_t> ncrt_entries_{32};
  std::vector<AllocPolicy> allocs_{AllocPolicy::kContiguous};
  std::vector<SchedPolicy> scheds_{SchedPolicy::kFifo};
  std::vector<std::string> topologies_{"flat"};
  std::vector<std::string> drams_{"simple"};
  std::vector<std::string> samplings_{""};
  bool paper_machine_ = false;
  Cycle series_interval_ = 0;
  std::string series_metrics_;
};

}  // namespace raccd
