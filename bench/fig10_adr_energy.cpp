// Paper Fig. 10: dynamic energy consumed in the directory with ADR —
// RaCCD+ADR vs FullCoh/PT/RaCCD 1:1, normalized to FullCoh 1:1.
//
// Paper reference points: RaCCD+ADR cuts directory dynamic energy by 50% vs
// RaCCD 1:1 and 72% vs PT 1:1 (13% on JPEG up to 78% on CG); the abstract's
// headline is 86% saved vs the FullCoh baseline.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  Grid base = Grid()
                  .paper_apps()
                  .set_params(opts.params)
                  .size(opts.size)
                  .paper_machine(opts.paper_machine);
  std::vector<RunSpec> specs = Grid(base).modes(kAllModes).specs();
  const std::vector<RunSpec> adr_specs =
      Grid(base).mode(CohMode::kRaCCD).adr(true).specs();
  specs.insert(specs.end(), adr_specs.begin(), adr_specs.end());
  const ResultSet rs = bench::run_logged(std::move(specs), opts);
  const auto variant = [&rs](const std::string& app, int v) -> const SimStats& {
    const CohMode mode = v == 0   ? CohMode::kFullCoh
                         : v == 1 ? CohMode::kPT
                                  : CohMode::kRaCCD;
    return rs.at(app, mode, 1, /*adr=*/v == 3);
  };

  std::printf("Fig. 10 — Normalized directory dynamic energy with ADR "
              "(FullCoh 1:1 = 1.0)\n");
  TextTable table({"app", "FullCoh", "PT", "RaCCD", "RaCCD+ADR", "powered %"});
  std::vector<double> sums(4, 0.0);
  double save_vs_raccd = 0.0;
  unsigned save_samples = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double base = variant(apps[a], 0).dir_dyn_energy_pj;
    std::vector<std::string> row{apps[a]};
    for (int v = 0; v < 4; ++v) {
      const double norm = variant(apps[a], v).dir_dyn_energy_pj / base;
      sums[v] += norm;
      row.push_back(strprintf("%.3f", norm));
    }
    // Fully-annotated apps can have zero directory energy under RaCCD;
    // the relative ADR saving is only defined where the base is nonzero.
    if (variant(apps[a], 2).dir_dyn_energy_pj > 0.0) {
      save_vs_raccd += 1.0 - variant(apps[a], 3).dir_dyn_energy_pj /
                                 variant(apps[a], 2).dir_dyn_energy_pj;
      ++save_samples;
    }
    row.push_back(strprintf(
        "%.1f", 100.0 * metric_value(variant(apps[a], 3), "dir.avg_active_frac")));
    table.add_row(std::move(row));
  }
  table.add_separator();
  table.add_row({"AVG", strprintf("%.3f", sums[0] / apps.size()),
                 strprintf("%.3f", sums[1] / apps.size()),
                 strprintf("%.3f", sums[2] / apps.size()),
                 strprintf("%.3f", sums[3] / apps.size()), ""});
  table.print();
  table.write_csv("results/fig10_adr_energy.csv");
  std::printf("\nRaCCD+ADR saves %.1f%% directory dynamic energy vs RaCCD 1:1 "
              "(paper: 50%%; over the %u apps with nonzero RaCCD directory "
              "energy); vs FullCoh 1:1: %.1f%% (abstract: 86%%)\n",
              save_samples > 0 ? 100.0 * save_vs_raccd / save_samples : 0.0,
              save_samples,
              100.0 * (1.0 - (sums[3] / apps.size())));
  return 0;
}
