#include "raccd/runtime/runtime.hpp"

#include <algorithm>

#include "raccd/common/assert.hpp"

namespace raccd {

TaskId Runtime::create_task(TaskDesc desc) {
  scratch_preds_.clear();
  const TaskId id = tdg_.add_task(std::move(desc));
  TaskNode& n = tdg_.task(id);
  for (const DepSpec& d : n.deps) {
    deps_.register_dep(id, d, scratch_preds_);
    ++stats_.deps_registered;
  }
  std::sort(scratch_preds_.begin(), scratch_preds_.end());
  scratch_preds_.erase(std::unique(scratch_preds_.begin(), scratch_preds_.end()),
                       scratch_preds_.end());
  for (const TaskId p : scratch_preds_) {
    tdg_.add_edge(p, id);
  }
  stats_.edges = tdg_.edge_count();
  ++stats_.tasks_created;
  if (n.unresolved_preds == 0) {
    n.state = TaskState::kReady;
    sched_.push(id, /*producer=*/0);
  }
  return id;
}

bool Runtime::pop_ready(CoreId core, TaskId& out) { return sched_.pop(core, out); }

void Runtime::start_task(TaskId t) {
  TaskNode& n = tdg_.task(t);
  RACCD_ASSERT(n.state == TaskState::kReady, "starting a non-ready task");
  n.state = TaskState::kRunning;
}

bool Runtime::finish_task(TaskId t, CoreId core, std::uint32_t& resolved) {
  scratch_ready_.clear();
  resolved = tdg_.finish(t, scratch_ready_);
  stats_.wakeups += resolved;
  for (const TaskId r : scratch_ready_) {
    sched_.push(r, core);
  }
  return !scratch_ready_.empty();
}

}  // namespace raccd
