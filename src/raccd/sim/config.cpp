#include "raccd/sim/config.hpp"

#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"
#include "raccd/topo/topology.hpp"

namespace raccd {

SimConfig SimConfig::scaled(CohMode mode) {
  SimConfig cfg;
  cfg.mode = mode;
  cfg.fabric.cores = 16;
  cfg.fabric.l1 = L1Geometry{32 * 1024, 2, ReplPolicy::kTreePlru};
  cfg.fabric.llc.lines_per_bank = 2048;  // 128 KB/bank, 2 MB total
  cfg.fabric.llc.ways = 8;
  cfg.fabric.dir.entries_per_bank = 2048;  // 1:1
  cfg.fabric.dir.ways = 8;
  cfg.fabric.mesh = MeshConfig{};  // 4x4, 1-cycle link + router
  cfg.fabric.energy.dir_ref_entries = 2048;
  cfg.fabric.energy.llc_ref_lines = 2048;
  return cfg;
}

SimConfig SimConfig::paper(CohMode mode) {
  SimConfig cfg = scaled(mode);
  cfg.fabric.llc.lines_per_bank = 32768;  // 2 MB/bank, 32 MB total
  cfg.fabric.dir.entries_per_bank = 32768;
  cfg.fabric.energy.dir_ref_entries = 32768;
  cfg.fabric.energy.llc_ref_lines = 32768;
  cfg.phys_mb = 4096;
  return cfg;
}

std::string SimConfig::apply_topology(std::string_view token) {
  TopologyConfig tc = fabric.topo;
  std::uint32_t total_cores = 0;
  const std::string err = parse_topology(token, tc, total_cores);
  if (!err.empty()) return err;
  if (total_cores != 0) fabric.cores = total_cores;
  if (fabric.cores > 64) return "core count limited to 64 (sharer bit-vector)";
  if (tc.sockets > fabric.cores) return "more sockets than cores";
  if (tc.kind == TopologyKind::kCMesh && tc.cluster_size > fabric.cores) {
    return "cmesh cluster larger than the core count";
  }
  fabric.topo = tc;
  return {};
}

std::string SimConfig::apply_dram(std::string_view token) {
  return parse_dram(token, fabric.dram);
}

std::string parse_sampling(std::string_view token, SamplingConfig& cfg) {
  SamplingConfig out;
  out.enabled = true;
  std::uint32_t parts[3] = {0, 0, 1};  // warmup defaults to 1
  std::size_t part = 0;
  std::size_t pos = 0;
  while (true) {
    std::size_t slash = token.find('/', pos);
    if (slash == std::string_view::npos) slash = token.size();
    const std::string_view piece = token.substr(pos, slash - pos);
    if (piece.empty()) return "empty field in sampling token (period/window[/warmup])";
    if (part == 3) return "too many fields in sampling token (period/window[/warmup])";
    std::uint64_t v = 0;
    for (const char c : piece) {
      if (c < '0' || c > '9') {
        return "sampling token must be period/window[/warmup] with decimal fields";
      }
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
      if (v > 1'000'000'000) return "sampling field too large";
    }
    parts[part++] = static_cast<std::uint32_t>(v);
    if (slash == token.size()) break;
    pos = slash + 1;
  }
  if (part < 2) return "sampling token needs at least period/window";
  out.period = parts[0];
  out.window = parts[1];
  out.warmup = parts[2];
  if (out.period == 0) return "sampling period must be >= 1 task";
  if (out.window == 0) return "sampling window must be >= 1 task";
  cfg = out;
  return {};
}

std::string SimConfig::apply_sampling(std::string_view token) {
  return parse_sampling(token, sampling);
}

void SimConfig::set_dir_ratio(std::uint32_t n) {
  RACCD_ASSERT(is_pow2(n), "directory ratio must be a power of two");
  const std::uint32_t entries = fabric.llc.lines_per_bank / n;
  RACCD_ASSERT(entries >= fabric.dir.ways, "directory smaller than one set");
  fabric.dir.entries_per_bank = entries;
}

}  // namespace raccd
