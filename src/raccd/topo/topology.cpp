#include "raccd/topo/topology.hpp"

#include <cstdlib>

#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"
#include "raccd/common/format.hpp"

namespace raccd {
namespace {

/// Near-square WxH grid for n nodes (n a power of two): 8 -> 4x2, 16 -> 4x4.
void derive_grid(std::uint32_t n, std::uint32_t& w, std::uint32_t& h) {
  const std::uint32_t bits = log2_exact(n);
  w = 1u << ((bits + 1) / 2);
  h = n / w;
}

}  // namespace

Topology::Topology(const TopologyConfig& cfg, std::uint32_t cores)
    : cfg_(cfg), cores_(cores) {
  RACCD_ASSERT(is_pow2(cores_), "core count must be a power of two");
  RACCD_ASSERT(is_pow2(cfg_.sockets) && cfg_.sockets <= cores_,
               "socket count must be a power of two dividing the core count");
  switch (cfg_.kind) {
    case TopologyKind::kFlatMesh:
      RACCD_ASSERT(cfg_.sockets == 1, "flat mesh is single-socket");
      grid_w_ = cfg_.width;
      grid_h_ = cfg_.height;
      nodes_per_router_ = 1;
      RACCD_ASSERT(grid_w_ * grid_h_ == cores_, "mesh geometry must match core count");
      break;
    case TopologyKind::kCMesh:
      RACCD_ASSERT(cfg_.sockets == 1, "concentrated mesh is single-socket");
      RACCD_ASSERT(is_pow2(cfg_.cluster_size) && cfg_.cluster_size >= 2 &&
                       cfg_.cluster_size <= cores_,
                   "cluster size must be a power of two in [2, cores]");
      nodes_per_router_ = cfg_.cluster_size;
      derive_grid(cores_ / nodes_per_router_, grid_w_, grid_h_);
      break;
    case TopologyKind::kNuma:
      RACCD_ASSERT(cfg_.sockets >= 2, "NUMA topology needs at least two sockets");
      nodes_per_router_ = 1;
      derive_grid(cores_ / cfg_.sockets, grid_w_, grid_h_);
      break;
  }
}

std::uint64_t Topology::bank_mask(std::uint32_t socket) const noexcept {
  const std::uint32_t cps = cores_per_socket();
  const std::uint64_t ones = cps >= 64 ? ~0ULL : (1ULL << cps) - 1;
  return ones << (socket * cps);
}

std::uint32_t Topology::socket_of_frame(PageNum frame) const noexcept {
  if (cfg_.sockets == 1) return 0;
  if (cfg_.phys_frames == 0) return static_cast<std::uint32_t>(frame % cfg_.sockets);
  const std::uint64_t per_socket = cfg_.phys_frames / cfg_.sockets;
  const std::uint64_t s = per_socket == 0 ? 0 : frame / per_socket;
  return static_cast<std::uint32_t>(s < cfg_.sockets ? s : cfg_.sockets - 1);
}

BankId Topology::home_bank(LineAddr line) const noexcept {
  if (cfg_.sockets == 1) return static_cast<BankId>(line & (cores_ - 1));
  const PageNum frame = line >> (kPageShift - kLineShift);
  const std::uint32_t socket = socket_of_frame(frame);
  const std::uint32_t banks_per_socket = cores_per_socket();
  return static_cast<BankId>(socket * banks_per_socket + (line & (banks_per_socket - 1)));
}

Topology::Coord Topology::coord_of(std::uint32_t node) const noexcept {
  const std::uint32_t cps = cores_per_socket();
  const std::uint32_t router = (node % cps) / nodes_per_router_;
  return Coord{router % grid_w_, router / grid_w_, node / cps};
}

std::uint32_t Topology::grid_hops(Coord a, Coord b) const noexcept {
  const auto d = [](std::uint32_t p, std::uint32_t q) { return p > q ? p - q : q - p; };
  return d(a.x, b.x) + d(a.y, b.y);
}

Route Topology::route(std::uint32_t from, std::uint32_t to) const noexcept {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  const Cycle per_hop = cfg_.link_cycles + cfg_.router_cycles;
  Route r;
  if (a.socket == b.socket) {
    r.link_hops = grid_hops(a, b);
    r.latency = static_cast<Cycle>(r.link_hops) * per_hop;
    return r;
  }
  // Cross-socket: hop to the local gateway tile (router (0,0)), one
  // point-to-point inter-socket link, then the remote socket's mesh.
  const Coord gateway{0, 0, 0};
  r.link_hops = grid_hops(a, gateway) + grid_hops(gateway, b);
  r.socket_hops = 1;
  r.latency = static_cast<Cycle>(r.link_hops) * per_hop + cfg_.socket_link_cycles;
  return r;
}

std::uint32_t Topology::mem_controller(std::uint32_t node) const noexcept {
  // Controllers sit at the four corners of the node's own router grid (per
  // socket for NUMA), as in common tiled-CMP floorplans. The corner order
  // matches the legacy mesh so flat tie-breaks are unchanged.
  const std::uint32_t socket = socket_of(node);
  const Coord corners[4] = {{0, 0, socket},
                            {grid_w_ - 1, 0, socket},
                            {0, grid_h_ - 1, socket},
                            {grid_w_ - 1, grid_h_ - 1, socket}};
  const Coord here = coord_of(node);
  std::uint32_t best = 0;
  std::uint32_t best_hops = ~0u;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const std::uint32_t h = grid_hops(here, corners[i]);
    if (h < best_hops) {
      best_hops = h;
      best = i;
    }
  }
  const Coord c = corners[best];
  const std::uint32_t router = c.y * grid_w_ + c.x;
  return socket * cores_per_socket() + router * nodes_per_router_;
}

std::string Topology::describe() const {
  switch (cfg_.kind) {
    case TopologyKind::kFlatMesh:
      return strprintf("flat %ux%u mesh", grid_w_, grid_h_);
    case TopologyKind::kCMesh:
      return strprintf("concentrated mesh: %ux%u routers x %u cores", grid_w_, grid_h_,
                       nodes_per_router_);
    case TopologyKind::kNuma:
      return strprintf("%u sockets x %u cores (%ux%u mesh/socket, %u-cycle links)",
                       cfg_.sockets, cores_per_socket(), grid_w_, grid_h_,
                       static_cast<unsigned>(cfg_.socket_link_cycles));
  }
  return "?";
}

std::string parse_topology(std::string_view token, TopologyConfig& cfg,
                           std::uint32_t& total_cores) {
  total_cores = 0;
  const std::string t(token);
  const auto parse_u32 = [](const std::string& s, std::uint32_t& out) {
    if (s.empty()) return false;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    // No topology number exceeds the 64-core machine limit; rejecting here
    // keeps the uint32 products below from wrapping.
    if (end == nullptr || *end != '\0' || v == 0 || v > 64) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
  };
  if (t == "flat") {
    cfg.kind = TopologyKind::kFlatMesh;
    cfg.sockets = 1;
    return {};
  }
  if (t.rfind("cmesh", 0) == 0) {
    cfg.kind = TopologyKind::kCMesh;
    cfg.sockets = 1;
    std::uint32_t k = 4;
    if (t.size() > 5 && !parse_u32(t.substr(5), k)) {
      return "malformed cmesh topology '" + t + "' (expected cmesh or cmesh<K>)";
    }
    if (!is_pow2(k) || k < 2 || k > 64) {
      return "cmesh cluster size must be a power of two in [2, 64]";
    }
    cfg.cluster_size = k;
    return {};
  }
  if (t.rfind("numa", 0) == 0) {
    cfg.kind = TopologyKind::kNuma;
    const std::string rest = t.substr(4);
    const std::size_t x = rest.find('x');
    std::uint32_t sockets = 0;
    std::uint32_t per_socket = 0;
    if (!parse_u32(x == std::string::npos ? rest : rest.substr(0, x), sockets)) {
      return "malformed numa topology '" + t + "' (expected numa<S> or numa<S>x<C>)";
    }
    if (x != std::string::npos && !parse_u32(rest.substr(x + 1), per_socket)) {
      return "malformed numa topology '" + t + "' (expected numa<S>x<C>)";
    }
    if (!is_pow2(sockets) || sockets < 2 || sockets > 16) {
      return "numa socket count must be a power of two in [2, 16]";
    }
    if (per_socket != 0 && (!is_pow2(per_socket) || sockets * per_socket > 64)) {
      return "numa cores/socket must be a power of two with sockets*cores <= 64";
    }
    cfg.sockets = sockets;
    total_cores = per_socket == 0 ? 0 : sockets * per_socket;
    return {};
  }
  return "unknown topology '" + t + "' (expected flat, cmesh[<K>], numa<S>[x<C>])";
}

}  // namespace raccd
