// JPEG: decode of JPEG images with 2x2 MCU and YUV colour (paper Table II:
// 2992x2000 image).
//
// Substitution (DESIGN.md #5): instead of a Huffman bitstream, the input is a
// stream of quantized DCT coefficient blocks produced by our own forward
// transform at initialization; decode tasks dequantize, run the 8x8 IDCT for
// the 4 Y + 1 Cb + 1 Cr blocks of each 16x16 MCU, and write interleaved RGB.
//
// The load-bearing property of this benchmark is preserved exactly: its
// tasks carry NO dependence annotations (they are pairwise independent and
// synchronized only by the taskwait barrier), so RaCCD has nothing to
// register and deactivates no coherence — the paper's worst case (Fig. 2:
// 0% non-coherent blocks under RaCCD, while PT still classifies the
// private-per-task pages).
#include <cstring>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/apps/jpeg_dct.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

struct JpegParams {
  std::uint32_t width;   // multiple of 16
  std::uint32_t height;  // multiple of 16
};

[[nodiscard]] JpegParams params_for(const AppConfig& cfg) {
  JpegParams p{320, 320};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {64, 64}; break;
    case SizeClass::kSmall: p = {320, 320}; break;
    case SizeClass::kMedium: p = {1600, 1072}; break;
    case SizeClass::kPaper: p = {2992, 2000}; break;  // rounded to MCU: 2992x2000
    case SizeClass::kLarge: p = {4000, 3008}; break;
  }
  // Overrides are rounded down to whole 16x16 MCUs.
  p.width = cfg.params.get_u32("width", p.width) / 16 * 16;
  p.height = cfg.params.get_u32("height", p.height) / 16 * 16;
  return p;
}

/// Coefficient stream layout: per MCU, 6 blocks x 64 int16 (4 Y, Cb, Cr),
/// MCUs in raster order. One MCU = 768 bytes.
constexpr std::uint32_t kMcuCoeffBytes = 6 * 64 * 2;

class JpegApp final : public App {
 public:
  explicit JpegApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "jpeg"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("%ux%u pixel image, 2x2 MCU, YUV 4:2:0 (tasks without annotations)",
                     p_.width, p_.height);
  }

  void run(Machine& m) override {
    const std::uint32_t mcux = p_.width / 16, mcuy = p_.height / 16;
    const std::uint64_t mcus = static_cast<std::uint64_t>(mcux) * mcuy;
    coeffs_ = m.mem().alloc(mcus * kMcuCoeffBytes, kLineBytes, "jpeg.coeffs");
    rgb_ = m.mem().alloc(static_cast<std::uint64_t>(p_.width) * p_.height * 3, kLineBytes,
                         "jpeg.rgb");
    encode_source(m.mem());

    const VAddr coeffs = coeffs_, rgb = rgb_;
    const std::uint32_t width = p_.width;
    // One task per MCU row (the paper's decode units): its coefficient slice
    // and output rows are page-sized private strips, which is why PT
    // classifies JPEG well even though the tasks declare nothing.
    for (std::uint32_t my = 0; my < mcuy; ++my) {
      TaskDesc t;
      t.name = strprintf("mcurow(%u)", my);
      // Deliberately NO dependence annotations (see header comment).
      t.body = [coeffs, rgb, width, mcux, my](TaskContext& ctx) {
        for (std::uint32_t mx = 0; mx < mcux; ++mx) {
          const VAddr in = coeffs + (static_cast<VAddr>(my) * mcux + mx) * kMcuCoeffBytes;
          float blocks[6][64];
          for (unsigned b = 0; b < 6; ++b) {
            const auto& quant = b < 4 ? kLumaQuant : kChromaQuant;
            float dequant[64];
            for (unsigned i = 0; i < 64; ++i) {
              const auto c = ctx.load<std::int16_t>(in + (b * 64 + i) * 2);
              dequant[i] = static_cast<float>(c) * static_cast<float>(quant[i]);
            }
            ctx.compute(1024);  // 8x8 IDCT: 2 passes x 8x8x8 MACs
            idct8x8(dequant, blocks[b]);
            for (unsigned i = 0; i < 64; ++i) blocks[b][i] += 128.0f;
          }
          // Colour conversion: 16x16 pixels; chroma upsampled 2x2.
          for (unsigned py = 0; py < 16; ++py) {
            for (unsigned px = 0; px < 16; ++px) {
              const unsigned yblk = (py / 8) * 2 + (px / 8);
              const float y = blocks[yblk][(py % 8) * 8 + (px % 8)];
              const float cb = blocks[4][(py / 2) * 8 + (px / 2)];
              const float cr = blocks[5][(py / 2) * 8 + (px / 2)];
              std::uint8_t px_rgb[3];
              yuv_to_rgb(y, cb, cr, px_rgb);
              ctx.compute(6);
              const VAddr dst =
                  rgb + ((static_cast<VAddr>(my) * 16 + py) * width + mx * 16 + px) * 3;
              for (unsigned ch = 0; ch < 3; ++ch) {
                ctx.store<std::uint8_t>(dst + ch, px_rgb[ch]);
              }
            }
          }
        }
      };
      m.spawn(std::move(t));
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    // Reference decode on the host, bit-identical arithmetic.
    const std::uint32_t mcux = p_.width / 16, mcuy = p_.height / 16;
    std::vector<std::int16_t> coeffs(static_cast<std::size_t>(mcux) * mcuy * 6 * 64);
    m.mem().copy_out(coeffs_, coeffs.data(), coeffs.size() * 2);
    std::vector<std::uint8_t> got(static_cast<std::size_t>(p_.width) * p_.height * 3);
    m.mem().copy_out(rgb_, got.data(), got.size());

    double sq_err = 0.0;
    for (std::uint32_t my = 0; my < mcuy; ++my) {
      for (std::uint32_t mx = 0; mx < mcux; ++mx) {
        const std::size_t base =
            (static_cast<std::size_t>(my) * mcux + mx) * 6 * 64;
        float blocks[6][64];
        for (unsigned b = 0; b < 6; ++b) {
          const auto& quant = b < 4 ? kLumaQuant : kChromaQuant;
          float dequant[64];
          for (unsigned i = 0; i < 64; ++i) {
            dequant[i] =
                static_cast<float>(coeffs[base + b * 64 + i]) * static_cast<float>(quant[i]);
          }
          idct8x8(dequant, blocks[b]);
          for (unsigned i = 0; i < 64; ++i) blocks[b][i] += 128.0f;
        }
        for (unsigned py = 0; py < 16; ++py) {
          for (unsigned px = 0; px < 16; ++px) {
            const unsigned yblk = (py / 8) * 2 + (px / 8);
            std::uint8_t want[3];
            yuv_to_rgb(blocks[yblk][(py % 8) * 8 + (px % 8)],
                       blocks[4][(py / 2) * 8 + (px / 2)],
                       blocks[5][(py / 2) * 8 + (px / 2)], want);
            const std::size_t dst =
                ((static_cast<std::size_t>(my) * 16 + py) * p_.width + mx * 16 + px) * 3;
            for (unsigned ch = 0; ch < 3; ++ch) {
              if (got[dst + ch] != want[ch]) {
                return strprintf("jpeg pixel mismatch at mcu(%u,%u) py=%u px=%u ch=%u", mx,
                                 my, py, px, ch);
              }
              const double d = static_cast<double>(got[dst + ch]) -
                               static_cast<double>(source_rgb_[dst + ch]);
              sq_err += d * d;
            }
          }
        }
      }
    }
    // Decode vs original source: quantization-limited, so demand sane PSNR.
    const double mse = sq_err / static_cast<double>(got.size());
    const double psnr = 10.0 * std::log10(255.0 * 255.0 / (mse + 1e-12));
    if (psnr < 20.0) return strprintf("jpeg PSNR too low: %.1f dB", psnr);
    return {};
  }

 private:
  /// Host-side "encoder": build a smooth synthetic RGB image, convert to
  /// YCbCr 4:2:0, forward-DCT and quantize into the coefficient stream.
  void encode_source(SimMemory& mem) {
    const std::uint32_t w = p_.width, h = p_.height;
    Rng rng(seed_);
    source_rgb_.resize(static_cast<std::size_t>(w) * h * 3);
    std::vector<float> yp(static_cast<std::size_t>(w) * h);
    std::vector<float> cbp(static_cast<std::size_t>(w / 2) * (h / 2));
    std::vector<float> crp(cbp.size());
    for (std::uint32_t y = 0; y < h; ++y) {
      for (std::uint32_t x = 0; x < w; ++x) {
        const float fx = static_cast<float>(x) / static_cast<float>(w);
        const float fy = static_cast<float>(y) / static_cast<float>(h);
        const float r = 255.0f * fx;
        const float g = 255.0f * fy;
        const float b = 128.0f + 100.0f * std::sin(8.0f * fx) * std::cos(6.0f * fy) +
                        rng.next_float(-6.0f, 6.0f);
        const std::size_t idx = (static_cast<std::size_t>(y) * w + x) * 3;
        source_rgb_[idx] = r;
        source_rgb_[idx + 1] = g;
        source_rgb_[idx + 2] = std::min(std::max(b, 0.0f), 255.0f);
        yp[static_cast<std::size_t>(y) * w + x] =
            0.299f * r + 0.587f * g + 0.114f * source_rgb_[idx + 2];
      }
    }
    for (std::uint32_t y = 0; y < h / 2; ++y) {
      for (std::uint32_t x = 0; x < w / 2; ++x) {
        // Subsample chroma from the top-left pixel of each 2x2 quad.
        const std::size_t src = (static_cast<std::size_t>(y) * 2 * w + x * 2) * 3;
        const float r = source_rgb_[src], g = source_rgb_[src + 1], b = source_rgb_[src + 2];
        cbp[static_cast<std::size_t>(y) * (w / 2) + x] =
            128.0f - 0.168736f * r - 0.331264f * g + 0.5f * b;
        crp[static_cast<std::size_t>(y) * (w / 2) + x] =
            128.0f + 0.5f * r - 0.418688f * g - 0.081312f * b;
      }
    }
    const std::uint32_t mcux = w / 16;
    const auto encode_block = [&](const std::vector<float>& plane, std::uint32_t pw,
                                  std::uint32_t bx, std::uint32_t by,
                                  const std::array<std::uint8_t, 64>& quant,
                                  std::int16_t out[64]) {
      float in[64];
      for (unsigned yy = 0; yy < 8; ++yy) {
        for (unsigned xx = 0; xx < 8; ++xx) {
          in[yy * 8 + xx] =
              plane[(static_cast<std::size_t>(by) * 8 + yy) * pw + bx * 8 + xx] - 128.0f;
        }
      }
      float f[64];
      fdct8x8(in, f);
      for (unsigned i = 0; i < 64; ++i) {
        out[i] = static_cast<std::int16_t>(std::lrintf(f[i] / static_cast<float>(quant[i])));
      }
    };
    std::int16_t mcu[6 * 64];
    for (std::uint32_t my = 0; my < h / 16; ++my) {
      for (std::uint32_t mx = 0; mx < mcux; ++mx) {
        encode_block(yp, w, mx * 2, my * 2, kLumaQuant, mcu + 0 * 64);
        encode_block(yp, w, mx * 2 + 1, my * 2, kLumaQuant, mcu + 1 * 64);
        encode_block(yp, w, mx * 2, my * 2 + 1, kLumaQuant, mcu + 2 * 64);
        encode_block(yp, w, mx * 2 + 1, my * 2 + 1, kLumaQuant, mcu + 3 * 64);
        encode_block(cbp, w / 2, mx, my, kChromaQuant, mcu + 4 * 64);
        encode_block(crp, w / 2, mx, my, kChromaQuant, mcu + 5 * 64);
        mem.copy_in(coeffs_ + (static_cast<VAddr>(my) * mcux + mx) * kMcuCoeffBytes, mcu,
                    sizeof(mcu));
      }
    }
  }

  JpegParams p_;
  std::uint64_t seed_;
  VAddr coeffs_ = 0, rgb_ = 0;
  std::vector<float> source_rgb_;
};

const WorkloadRegistrar kRegistrar{{
    "jpeg",
    "JPEG IDCT + color conversion; tasks without annotations (paper worst case)",
    "paper",
    ParamSchema()
        .add_int("width", 320, "image width in pixels (rounded down to x16)", 16, 8192)
        .add_int("height", 320, "image height in pixels (rounded down to x16)", 16, 8192),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<JpegApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
