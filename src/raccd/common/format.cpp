#include "raccd/common/format.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace raccd {

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    return strprintf("%llu %s", static_cast<unsigned long long>(v), kUnits[unit]);
  }
  return strprintf("%.2f %s", v, kUnits[unit]);
}

std::string format_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen != 0 && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace raccd
