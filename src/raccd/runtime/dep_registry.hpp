// Byte-range dependence analysis (the OmpSs/Nanos++ region-dependence model).
//
// A segment map over the virtual address space tracks, for every byte range,
// the last writing task and the readers since that write. Registering a new
// dependence splits segments at the range boundaries and derives:
//   in    -> RAW edge from the last writer;
//   out   -> WAW edge from the last writer + WAR edges from the readers;
//   inout -> both of the above.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "raccd/common/types.hpp"
#include "raccd/runtime/task.hpp"

namespace raccd {

class DepRegistry {
 public:
  /// Register one dependence of task `t`; appends predecessor task ids to
  /// `preds` (duplicates possible — caller dedupes per task).
  void register_dep(TaskId t, const DepSpec& dep, std::vector<TaskId>& preds);

  [[nodiscard]] std::size_t segment_count() const noexcept { return segs_.size(); }

  /// Last writer covering `addr` (kNoTask if never written). Test hook.
  [[nodiscard]] TaskId last_writer_at(VAddr addr) const noexcept;

 private:
  struct Segment {
    VAddr end = 0;
    TaskId last_writer = kNoTask;
    std::vector<TaskId> readers;  ///< readers since last_writer
  };
  using Map = std::map<VAddr, Segment>;  // key = segment begin

  /// Ensure a segment boundary exists exactly at `addr`.
  void split_at(VAddr addr);

  Map segs_;
};

}  // namespace raccd
