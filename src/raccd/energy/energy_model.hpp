// Analytical dynamic-energy model for the simulated structures.
//
// Substitutes McPAT/CACTI 6.0 (paper §IV-A; 22 nm, 0.6 V). Per-access dynamic
// energy of an SRAM array scales sub-linearly with its active capacity: we
// use E(n) = E_ref * (n / n_ref)^alpha with alpha = 0.5, the classic
// bitline/wordline length scaling CACTI exhibits for same-associativity
// arrays. Reference energies are in the range CACTI reports for similar
// arrays at this node. All paper energy figures are *normalized*, so only
// this relative scaling is load-bearing; we document absolute values in
// EXPERIMENTS.md for transparency.
//
// ADR ties per-access energy to the *currently active* directory size: a
// Gated-Vdd powered-down portion neither spends dynamic energy nor leaks.
#pragma once

#include <cstdint>

namespace raccd {

struct EnergyConfig {
  double size_exponent = 0.5;  ///< alpha in E(n) = E_ref * (n/n_ref)^alpha

  double dir_ref_pj = 20.0;           ///< directory bank access at dir_ref_entries
  std::uint32_t dir_ref_entries = 32768;

  double llc_ref_pj = 120.0;          ///< LLC bank access at llc_ref_lines
  std::uint32_t llc_ref_lines = 32768;  ///< 2 MB / 64 B

  double l1_access_pj = 10.0;
  double noc_flit_hop_pj = 6.0;
  double ncrt_lookup_pj = 0.6;
  double mem_access_pj = 15000.0;  ///< DRAM access (row activation + IO)

  /// Per-op DRAM energies for the detailed dram/dram.hpp model, which
  /// replace the flat mem_access_pj there: a closed-page access
  /// (ACT + RD + PRE ~ 13 nJ) lands near the flat number, while a row hit
  /// pays only the column read — the energy side of row-buffer locality.
  double dram_activate_pj = 8000.0;
  double dram_read_pj = 3000.0;
  double dram_write_pj = 3200.0;
  double dram_precharge_pj = 2000.0;

  /// Leakage power per directory entry (Gated-Vdd cuts this for powered-off
  /// entries). 66 bits/entry at 22 nm LP: ~2 pW/bit.
  double dir_leak_pw_per_entry = 132.0;
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyConfig& cfg = {}) : cfg_(cfg) {}

  /// Per-access dynamic energy of one directory bank with `active_entries`
  /// currently powered (ADR shrinks this).
  [[nodiscard]] double dir_access_pj(std::uint32_t active_entries) const noexcept;

  [[nodiscard]] double llc_access_pj(std::uint32_t lines_per_bank) const noexcept;
  [[nodiscard]] double l1_access_pj() const noexcept { return cfg_.l1_access_pj; }
  [[nodiscard]] double noc_flit_hop_pj() const noexcept { return cfg_.noc_flit_hop_pj; }
  [[nodiscard]] double ncrt_lookup_pj() const noexcept { return cfg_.ncrt_lookup_pj; }
  [[nodiscard]] double mem_access_pj() const noexcept { return cfg_.mem_access_pj; }
  [[nodiscard]] double dram_activate_pj() const noexcept { return cfg_.dram_activate_pj; }
  [[nodiscard]] double dram_read_pj() const noexcept { return cfg_.dram_read_pj; }
  [[nodiscard]] double dram_write_pj() const noexcept { return cfg_.dram_write_pj; }
  [[nodiscard]] double dram_precharge_pj() const noexcept { return cfg_.dram_precharge_pj; }

  /// Leakage energy of `active_entries` over `cycles` cycles at `ghz`.
  [[nodiscard]] double dir_leakage_pj(std::uint64_t active_entries, std::uint64_t cycles,
                                      double ghz = 1.0) const noexcept;

  [[nodiscard]] const EnergyConfig& config() const noexcept { return cfg_; }

 private:
  EnergyConfig cfg_;
};

}  // namespace raccd
