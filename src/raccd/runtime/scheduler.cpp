// ReadyQueue is header-only; this translation unit anchors the library.
#include "raccd/runtime/scheduler.hpp"
