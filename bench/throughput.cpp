// Host throughput benchmark: how many *simulated* cycles (and replayed
// accesses) the simulator retires per wall-clock second, per workload x
// coherence mode x topology x DRAM model.
//
// This measures the simulator itself, not the modelled machine — the number
// every other bench binary's turnaround time depends on. Runs merge into the
// cumulative results/BENCH_throughput.json keyed by RunSpec::key() (same
// line-per-entry merge format as BENCH_grid.json).
//
// --compare-legacy additionally re-runs every config with the pre-flat
// structures (RACCD_LEGACY_STRUCTURES path: unordered_map memory-version map
// and TLB index, AoS tag probes, unmemoized NCRT scans), asserts the two
// paths produce bit-identical SimStats, and exits non-zero if the optimized
// structures are ever >25% *slower* than the legacy ones — the CI
// throughput-smoke regression gate.
//
// --trace-ab measures the cost of event tracing compiled-in-but-off: each
// rep runs the same simulation twice back to back — null sink, then a sink
// armed with every category filtered off, so every instrumentation guard
// executes and nothing records. Interleaving the arms per rep makes the
// comparison robust to host load drift; the gate fails if the armed arm's
// best time regresses more than the tolerance (default 2%), and always
// fails if the two arms' stats differ (tracing must be pure observation).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/sweep_cache.hpp"
#include "raccd/obs/trace_sink.hpp"
#include "raccd/sim/machine.hpp"

namespace raccd {
namespace {

constexpr const char* kThroughputJsonPath = "results/BENCH_throughput.json";

struct Measurement {
  SimStats stats;
  double best_wall_s = 0.0;

  [[nodiscard]] double sim_cycles_per_sec() const {
    return best_wall_s > 0.0 ? static_cast<double>(stats.cycles) / best_wall_s : 0.0;
  }
  [[nodiscard]] double accesses_per_sec() const {
    return best_wall_s > 0.0 ? static_cast<double>(stats.accesses_replayed) / best_wall_s
                             : 0.0;
  }
};

/// Best-of-`reps` wall-clock timing of one uncached simulation.
[[nodiscard]] Measurement measure(const RunSpec& spec, unsigned reps) {
  Measurement m;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    SimStats stats = run_one(spec);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (r == 0 || wall < m.best_wall_s) m.best_wall_s = wall;
    m.stats = stats;  // deterministic: identical every rep
  }
  return m;
}

/// One uncached simulation with an optional trace sink attached, timed from
/// Machine construction to collect() (process startup excluded).
[[nodiscard]] double timed_run(const RunSpec& spec, obs::TraceSink* sink,
                               SimStats* stats_out) {
  const auto t0 = std::chrono::steady_clock::now();
  Machine machine(config_for(spec));
  if (sink != nullptr) machine.set_obs_trace(sink);
  AppConfig acfg;
  acfg.size = spec.size;
  acfg.seed = spec.seed;
  std::string err = WorkloadParams::parse(spec.params, acfg.params);
  std::unique_ptr<App> app;
  if (err.empty()) app = WorkloadRegistry::instance().create(spec.app, acfg, &err);
  if (app == nullptr) {
    std::fprintf(stderr, "trace-ab: cannot run %s: %s\n", spec.key().c_str(),
                 err.c_str());
    std::exit(2);
  }
  app->run(machine);
  *stats_out = machine.collect();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The trace-smoke CI gate: tracing compiled-in-but-off must be (nearly)
/// free, and attaching a sink must never change results.
[[nodiscard]] int trace_ab_gate(const BenchOptions& opts, unsigned reps,
                                double max_pct) {
  int rc = 0;
  std::printf("%-34s %-7s %12s %12s %9s\n", "workload", "mode", "plain ms",
              "armed-off ms", "delta");
  for (const char* w : {"jacobi", "synthetic:footprint_kb=4096"}) {
    for (const CohMode m : {CohMode::kFullCoh, CohMode::kRaCCD}) {
      RunSpec spec;
      if (const std::string err = spec.set_workload_ref(w); !err.empty()) {
        std::fprintf(stderr, "trace-ab: %s\n", err.c_str());
        return 2;
      }
      spec.size = opts.size;
      spec.mode = m;
      spec.paper_machine = opts.paper_machine;
      obs::TraceConfig armed_cfg;
      armed_cfg.categories = 0;  // every guard runs, nothing records
      double best_plain = 0.0, best_armed = 0.0;
      SimStats plain_stats, armed_stats;
      for (unsigned r = 0; r < reps; ++r) {
        // Interleave the arms so host-load drift hits both equally.
        const double p = timed_run(spec, nullptr, &plain_stats);
        obs::TraceSink sink(armed_cfg);
        const double a = timed_run(spec, &sink, &armed_stats);
        if (r == 0 || p < best_plain) best_plain = p;
        if (r == 0 || a < best_armed) best_armed = a;
      }
      if (stats_to_text(plain_stats) != stats_to_text(armed_stats)) {
        std::fprintf(stderr, "trace-ab: FAIL: stats differ with a sink attached "
                             "for %s\n",
                     spec.key().c_str());
        rc = 1;
      }
      const double pct = best_plain > 0.0
                             ? (best_armed - best_plain) * 100.0 / best_plain
                             : 0.0;
      std::printf("%-34s %-7s %12.2f %12.2f %+8.2f%%\n", w, to_string(m),
                  best_plain * 1e3, best_armed * 1e3, pct);
      // Sub-millisecond deltas are timer noise on tiny runs, not overhead.
      if (pct > max_pct && best_armed - best_plain > 1e-3) rc = 1;
    }
  }
  if (rc == 1) {
    std::fprintf(stderr, "throughput: FAIL (armed-but-off tracing costs >%g%%)\n",
                 max_pct);
  }
  return rc;
}

[[nodiscard]] bool write_file_atomic(const std::string& path, const std::string& text) {
  if (const auto dir = std::filesystem::path(path).parent_path(); !dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  const std::string tmp = strprintf(
      "%s.tmp.%llu", path.c_str(),
      static_cast<unsigned long long>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

/// Merge measurements into the cumulative log (same one-entry-per-line JSON
/// object format as ResultSet::append_bench_json; other keys are preserved).
[[nodiscard]] bool merge_json(const std::vector<std::pair<std::string, std::string>>& add) {
  std::map<std::string, std::string> entries;
  if (std::ifstream in(kThroughputJsonPath); in) {
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t kq0 = line.find('"');
      if (kq0 == std::string::npos) continue;
      const std::size_t kq1 = line.find('"', kq0 + 1);
      const std::size_t brace0 = line.find('{', kq1);
      const std::size_t brace1 = line.rfind('}');
      if (kq1 == std::string::npos || brace0 == std::string::npos ||
          brace1 == std::string::npos || brace1 <= brace0) {
        continue;
      }
      entries[line.substr(kq0 + 1, kq1 - kq0 - 1)] =
          line.substr(brace0, brace1 - brace0 + 1);
    }
  }
  for (const auto& [key, payload] : add) entries[key] = payload;
  std::string text = "{\n";
  std::size_t n = 0;
  for (const auto& [key, payload] : entries) {
    text += strprintf("  \"%s\": %s%s\n", key.c_str(), payload.c_str(),
                      ++n < entries.size() ? "," : "");
  }
  text += "}\n";
  return write_file_atomic(kThroughputJsonPath, text);
}

int run(int argc, char** argv) {
  BenchOptions opts = BenchOptions::parse(argc, argv);
  unsigned reps = 3;
  bool compare_legacy = false;
  bool trace_ab = false;
  double max_trace_pct = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::max(1u, static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10)));
    } else if (std::strcmp(argv[i], "--compare-legacy") == 0) {
      compare_legacy = true;
    } else if (std::strcmp(argv[i], "--trace-ab") == 0) {
      trace_ab = true;
    } else if (std::strncmp(argv[i], "--max-trace-pct=", 16) == 0) {
      max_trace_pct = std::atof(argv[i] + 16);
    }
  }
  if (trace_ab) return trace_ab_gate(opts, reps, max_trace_pct);
  // The A/B comparison toggles the process-global RACCD_LEGACY_STRUCTURES
  // flag around each measurement — concurrent workers would race on it and
  // measure a mix of both structure sets. Reject the combination up front
  // rather than producing silently corrupt timings.
  if (compare_legacy && opts.run.jobs > 1) {
    std::fprintf(stderr,
                 "throughput: --compare-legacy requires --jobs=1 (it toggles the "
                 "process-global legacy-structures flag per measurement)\n");
    return 2;
  }

  // The throughput grid: the two replay-heaviest workloads (jacobi streams,
  // synthetic with a footprint that overflows the scaled 2 MB LLC), the two
  // systems whose hot paths differ most (FullCoh exercises the directory,
  // RaCCD the NCRT), both machine shapes and both memory models.
  struct Config {
    const char* workload;
    CohMode mode;
    const char* topo;
    const char* dram;
  };
  std::vector<Config> grid;
  for (const char* w : {"jacobi", "synthetic:footprint_kb=4096"}) {
    for (const CohMode m : {CohMode::kFullCoh, CohMode::kRaCCD}) {
      for (const char* t : {"flat", "numa2"}) {
        for (const char* d : {"simple", "ddr"}) {
          grid.push_back(Config{w, m, t, d});
        }
      }
    }
  }

  std::vector<std::pair<std::string, std::string>> json;
  const bool initial_legacy = legacy_structures();
  bool stats_mismatch = false;
  bool perf_regression = false;
  std::printf("%-34s %-7s %-6s %-6s %14s %14s%s\n", "workload", "mode", "topo", "dram",
              "Mcycles/s", "Macc/s", compare_legacy ? "   vs legacy" : "");
  for (std::size_t slot = 0; slot < grid.size(); ++slot) {
    if (slot % opts.run.shard_count != opts.run.shard_index) continue;
    const Config& c = grid[slot];
    RunSpec spec;
    if (const std::string err = spec.set_workload_ref(c.workload); !err.empty()) {
      std::fprintf(stderr, "workload %s: %s\n", c.workload, err.c_str());
      return 2;
    }
    if (!opts.params.entries().empty()) {
      WorkloadParams p;
      (void)WorkloadParams::parse(spec.params, p);
      for (const auto& e : opts.params.entries()) p.set(e.key, e.value);
      spec.params = p.canonical();
    }
    spec.size = opts.size;
    spec.mode = c.mode;
    spec.topo = c.topo;
    spec.dram = c.dram;
    spec.paper_machine = opts.paper_machine;

    set_legacy_structures(false);
    const Measurement opt = measure(spec, reps);
    double ratio = 0.0;
    if (compare_legacy) {
      set_legacy_structures(true);
      const Measurement leg = measure(spec, reps);
      set_legacy_structures(initial_legacy);
      if (stats_to_text(opt.stats) != stats_to_text(leg.stats)) {
        std::fprintf(stderr, "FAIL: stats differ between structures for %s\n",
                     spec.key().c_str());
        stats_mismatch = true;
      }
      ratio = opt.best_wall_s > 0.0 ? leg.best_wall_s / opt.best_wall_s : 0.0;
      // Regression gate: the flat structures must never cost more than 1/0.75
      // of the legacy wall time (>25% throughput loss).
      if (ratio < 0.75) perf_regression = true;
    } else {
      set_legacy_structures(initial_legacy);
    }

    std::printf("%-34s %-7s %-6s %-6s %14.2f %14.2f", c.workload, to_string(c.mode),
                c.topo, c.dram, opt.sim_cycles_per_sec() / 1e6,
                opt.accesses_per_sec() / 1e6);
    if (compare_legacy) std::printf("   %5.2fx", ratio);
    std::printf("\n");
    std::fflush(stdout);

    std::string payload = strprintf(
        "{\"sim_cycles_per_sec\": %.0f, \"accesses_per_sec\": %.0f, "
        "\"cycles\": %llu, \"accesses\": %llu, \"wall_s\": %.6f, \"reps\": %u",
        opt.sim_cycles_per_sec(), opt.accesses_per_sec(),
        static_cast<unsigned long long>(opt.stats.cycles),
        static_cast<unsigned long long>(opt.stats.accesses_replayed), opt.best_wall_s,
        reps);
    if (compare_legacy) payload += strprintf(", \"speedup_vs_legacy\": %.3f", ratio);
    payload += "}";
    std::string key = spec.key();
    for (char& ch : key) {
      if (ch == '"' || ch == '\\') ch = '_';
    }
    json.emplace_back(std::move(key), std::move(payload));
  }

  if (!merge_json(json)) {
    std::fprintf(stderr, "warning: could not update %s\n", kThroughputJsonPath);
  } else {
    std::printf("(merged %zu entries into %s)\n", json.size(), kThroughputJsonPath);
  }
  if (stats_mismatch) {
    std::fprintf(stderr, "throughput: FAIL (optimized structures change stats)\n");
    return 1;
  }
  if (perf_regression) {
    std::fprintf(stderr,
                 "throughput: FAIL (flat structures >25%% slower than legacy)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace raccd

int main(int argc, char** argv) { return raccd::run(argc, argv); }
