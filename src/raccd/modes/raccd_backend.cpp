#include "raccd/modes/raccd_backend.hpp"

#include "raccd/coherence/fabric.hpp"
#include "raccd/mem/sim_memory.hpp"
#include "raccd/obs/trace_sink.hpp"
#include "raccd/runtime/task.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

RaccdBackend::RaccdBackend(const BackendContext& ctx)
    : CoherenceBackend(ctx), engine_(ctx.cfg.fabric.cores, ctx.cfg.raccd) {}

void RaccdBackend::on_obs_trace() {
  if (obs_trace_ == nullptr) return;
  obs_ids_.reg = obs_trace_->intern("raccd_register");
  obs_ids_.overflow = obs_trace_->intern("ncrt_overflow");
  obs_ids_.pages = obs_trace_->intern("pages");
  obs_ids_.ranges = obs_trace_->intern("ranges");
}

Cycle RaccdBackend::on_task_start(CoreId c, const TaskNode& node, Cycle now) {
  // raccd_register for every input/output (paper §III-B).
  Cycle cost = 0;
  const bool tr = obs_trace_ != nullptr && obs_trace_->wants(obs::TraceCat::kCoh);
  for (const DepSpec& d : node.deps) {
    const RegisterOutcome ro =
        engine_.register_region(c, d.addr, d.size, ctx_.tlbs[c], ctx_.mem.page_table());
    cost += ro.cycles;
    if (tr) {
      // Page deactivation: this dependence's ranges just went non-coherent
      // for the task (paper Fig. 3). An overflow means at least one range
      // stayed coherent — the event Fig. 7's overhead tail comes from.
      obs_trace_->instant(obs::TraceCat::kCoh, obs::kPidCoherence, c,
                          ro.overflowed ? obs_ids_.overflow : obs_ids_.reg,
                          now + cost, obs_ids_.pages, ro.pages_translated,
                          obs_ids_.ranges, ro.ranges_inserted);
    }
  }
  return cost;
}

AccessClass RaccdBackend::classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                         PAddr paddr, PageNum pframe, Cycle now) {
  (void)vaddr;
  (void)pframe;
  (void)now;
  auto* be = static_cast<RaccdBackend*>(self);
  return {be->engine_.is_noncoherent(c, paddr),
          be->ctx_.cfg.timing.ncrt_lookup_cycles};
}

TaskEndOutcome RaccdBackend::on_task_end(CoreId c, Cycle now) {
  // raccd_invalidate: clear the NCRT and walk the L1 flushing NC lines
  // (paper §III-C.4). The instruction blocks until the walk completes.
  Cycle cost = engine_.invalidate(c);
  const auto fo = ctx_.fabric.flush_nc_lines(c, now);
  cost += fo.cycles;
  return {cost, fo.lines, fo.writebacks};
}

void RaccdBackend::accumulate(SimStats& s) const { s.ncrt = engine_.total_stats(); }

}  // namespace raccd
