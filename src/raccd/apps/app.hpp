// Benchmark application interface (paper §IV-B, Table II).
//
// Each app allocates its dataset in the machine's simulated memory,
// initializes it functionally (host-side, untimed — gem5 checkpoints past
// initialization the same way), then submits OpenMP-4.0-style tasks with
// in/out/inout dependence annotations and runs them through taskwait phases.
// After run(), verify() checks the *functional* result (residuals, reference
// digests, conservation laws), proving the simulated protocol delivered
// correct data in every mode.
//
// Size classes: kTiny for unit tests, kSmall (default) keeps the paper's
// working-set : LLC ratio on the scaled machine, kPaper is Table II verbatim.
// kMedium sits between kSmall and kPaper; kLarge goes beyond Table II and is
// only tractable under sampled simulation (SamplingConfig).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "raccd/apps/workload_params.hpp"
#include "raccd/sim/machine.hpp"

namespace raccd {

enum class SizeClass : std::uint8_t { kTiny, kSmall, kMedium, kPaper, kLarge };

[[nodiscard]] constexpr const char* to_string(SizeClass s) noexcept {
  switch (s) {
    case SizeClass::kTiny: return "tiny";
    case SizeClass::kSmall: return "small";
    case SizeClass::kMedium: return "medium";
    case SizeClass::kPaper: return "paper";
    case SizeClass::kLarge: return "large";
  }
  return "?";
}

struct AppConfig {
  AppConfig() = default;
  AppConfig(SizeClass s, std::uint64_t sd, WorkloadParams p = {})
      : size(s), seed(sd), params(std::move(p)) {}

  SizeClass size = SizeClass::kSmall;
  std::uint64_t seed = 0xA99DA7A;
  /// Explicit knob overrides; the size class supplies the baseline values
  /// and each override replaces one knob (validated by the workload schema).
  WorkloadParams params;
};

class App {
 public:
  virtual ~App() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Problem-size description (Table II analogue).
  [[nodiscard]] virtual std::string problem() const = 0;

  /// Allocate, initialize, submit tasks and execute to completion.
  virtual void run(Machine& m) = 0;

  /// Functional check after run(); empty string on success.
  [[nodiscard]] virtual std::string verify(Machine& m) = 0;
};

/// The nine paper benchmarks, in the paper's order (a fixed fact of the
/// paper; the full dynamic workload list lives in WorkloadRegistry).
[[nodiscard]] const std::vector<std::string>& paper_app_names();

/// Convenience front end over WorkloadRegistry::create: on an unknown name
/// or invalid parameters, prints the error (listing registered workloads /
/// valid knobs) to stderr and returns nullptr — it no longer asserts.
[[nodiscard]] std::unique_ptr<App> make_app(std::string_view name,
                                            const AppConfig& cfg = {});

}  // namespace raccd
