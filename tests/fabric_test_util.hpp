// Shared helpers for protocol-level tests: a small 4-core fabric with tight
// cache/directory geometry so eviction/recall paths trigger quickly.
#pragma once

#include "raccd/coherence/checker.hpp"
#include "raccd/coherence/fabric.hpp"

namespace raccd::testutil {

inline FabricConfig small_fabric_config() {
  FabricConfig cfg;
  cfg.cores = 4;
  cfg.mesh = MeshConfig{2, 2, 1, 1, 16, 8, 72};
  cfg.l1 = L1Geometry{1024, 2, ReplPolicy::kTreePlru};  // 8 sets x 2 ways
  cfg.llc.lines_per_bank = 64;                          // 8 sets x 8 ways
  cfg.llc.ways = 8;
  cfg.dir.entries_per_bank = 64;
  cfg.dir.ways = 8;
  cfg.energy.dir_ref_entries = 64;
  cfg.energy.llc_ref_lines = 64;
  return cfg;
}

/// Line that maps to bank `bank` with per-bank offset `i` (4 banks).
inline LineAddr line_in_bank(std::uint32_t bank, std::uint64_t i) {
  return (i << 2) | bank;
}

}  // namespace raccd::testutil
