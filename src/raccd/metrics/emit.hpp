// Schema-driven emitters: CSV / JSON / Markdown over a metric selection,
// with hardened escaping. These replace the hand-rolled format strings the
// ResultSet emitters and bench tables used to carry — output flows from
// MetricSchema descriptors, so the formats cannot drift from the schema.
//
// Escaping rules:
//  * CSV cells are quoted (and inner quotes doubled) whenever they contain a
//    comma, quote, or newline — workload refs like
//    "synthetic:shape=pipeline,width=64" round-trip through any CSV reader.
//  * JSON strings escape quotes, backslashes and all control characters.
//  * Non-finite doubles (NaN/inf) emit as JSON null, never as bare tokens
//    that would break the document.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "raccd/metrics/metric_schema.hpp"

namespace raccd {

/// Escape one CSV cell: quoted iff it needs quoting (or `force_quote`).
[[nodiscard]] std::string csv_cell(std::string_view cell, bool force_quote = false);

/// JSON string contents (no surrounding quotes): ", \, and control chars.
[[nodiscard]] std::string json_escape(std::string_view in);

/// A JSON number: integers as-is, doubles via `fmt`, NaN/inf as null.
[[nodiscard]] std::string json_number(const MetricDesc& m, const SimStats& s);

/// Comma-joined CSV header cells for a selection (flat keys).
[[nodiscard]] std::string metrics_csv_header(std::span<const MetricDesc* const> sel);
/// Comma-joined CSV value cells for one run.
[[nodiscard]] std::string metrics_csv_cells(std::span<const MetricDesc* const> sel,
                                            const SimStats& s);

/// `"key": value, ...` JSON object fields (no braces) for a selection.
[[nodiscard]] std::string metrics_json_fields(std::span<const MetricDesc* const> sel,
                                              const SimStats& s);

/// The results/BENCH_grid.json payload for one run — the historical field
/// list and formatting, byte-for-byte (verified by the round-trip test).
[[nodiscard]] std::string bench_metrics_json(const SimStats& s);

/// One markdown table over several runs: first column from `row_labels`,
/// one column per selected metric.
[[nodiscard]] std::string metrics_markdown_table(
    std::span<const std::string> row_labels, std::span<const MetricDesc* const> sel,
    std::span<const SimStats* const> runs);

}  // namespace raccd
