#include "raccd/core/adr.hpp"

#include <algorithm>
#include <bit>

#include "raccd/common/assert.hpp"

namespace raccd {

AdrController::AdrController(Fabric& fabric, const AdrConfig& cfg)
    : fabric_(fabric), cfg_(cfg) {
  RACCD_ASSERT(cfg_.theta_dec < cfg_.theta_inc, "ADR thresholds must form a hysteresis band");
  const std::uint32_t total = fabric_.dir(0).total_sets();
  min_sets_ = std::max(1u, total / std::max(1u, cfg_.min_sets_divisor));
}

void AdrController::poll(Cycle now) {
  if (!cfg_.enabled) return;
  std::uint64_t mask = fabric_.take_dir_occupancy_dirty_mask();
  if (mask == 0) return;
  ++stats_.polls;
  while (mask != 0) {
    const BankId b = static_cast<BankId>(std::countr_zero(mask));
    mask &= mask - 1;
    consider_bank(b, now);
  }
}

void AdrController::poll_all(Cycle now) {
  if (!cfg_.enabled) return;
  (void)fabric_.take_dir_occupancy_dirty_mask();
  ++stats_.polls;
  for (BankId b = 0; b < fabric_.config().cores; ++b) {
    consider_bank(b, now);
  }
}

void AdrController::consider_bank(BankId b, Cycle now) {
  DirectoryBank& bank = fabric_.dir(b);
  const auto active = static_cast<double>(bank.active_entries());
  const auto valid = static_cast<double>(bank.valid_entries());
  if (valid >= cfg_.theta_inc * active && bank.active_sets() < bank.total_sets()) {
    const auto out = fabric_.resize_dir_bank(b, bank.active_sets() * 2, now);
    ++stats_.grows;
    stats_.entries_moved += out.moved;
    stats_.entries_displaced += out.displaced;
    stats_.blocked_cycles += out.blocked_cycles;
  } else if (valid <= cfg_.theta_dec * active && bank.active_sets() > min_sets_) {
    // Multi-socket damper: a bank's working set tracks its socket's pages
    // (home banks are socket-local), so while the socket as a whole sits at
    // the grow threshold, powering this bank down would bounce straight
    // back — skip the shrink. Single-socket machines keep the pure per-bank
    // hysteresis of the paper.
    const Topology& topo = fabric_.topology();
    if (topo.sockets() > 1 &&
        fabric_.socket_dir_occupancy(topo.socket_of(b)) >= cfg_.theta_inc) {
      return;
    }
    const auto out = fabric_.resize_dir_bank(b, bank.active_sets() / 2, now);
    ++stats_.shrinks;
    stats_.entries_moved += out.moved;
    stats_.entries_displaced += out.displaced;
    stats_.blocked_cycles += out.blocked_cycles;
  }
}

}  // namespace raccd
