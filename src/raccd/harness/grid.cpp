#include "raccd/harness/grid.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "raccd/apps/registry.hpp"
#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/metrics/emit.hpp"
#include "raccd/obs/profiler.hpp"

namespace raccd {
namespace {

/// The ResultSet CSV/JSON headline selection, resolved once.
[[nodiscard]] const std::vector<const MetricDesc*>& csv_selection() {
  static const std::vector<const MetricDesc*> sel = [] {
    const MetricSchema& schema = MetricSchema::instance();
    std::vector<const MetricDesc*> v;
    for (const char* key : csv_metric_keys()) v.push_back(&schema.get(key));
    return v;
  }();
  return sel;
}

/// Extra columns for sampled grids: extrapolation telemetry + CI half-widths.
[[nodiscard]] const std::vector<const MetricDesc*>& sampling_csv_selection() {
  static const std::vector<const MetricDesc*> sel = MetricSchema::instance().select(
      {"sampling.scale", "sampling.windows", "sampling.measured_tasks",
       "sampling.ffwd_tasks", "sampling.cycles_ci95", "sampling.dir_accesses_ci95",
       "sampling.llc_hits_ci95", "sampling.noc_flits_ci95",
       "sampling.noc_flit_hops_ci95", "sampling.dram_row_hits_ci95",
       "sampling.dram_row_hit_rate_ci95", "sampling.dir_occupancy_ci95"});
  return sel;
}

[[nodiscard]] bool write_text_file(const std::string& path, const std::string& text) {
  if (const auto dir = std::filesystem::path(path).parent_path(); !dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  // Write-to-temp + rename: concurrent bench binaries (the fig grid runs
  // them side by side) never see a truncated file. Lost-update races merely
  // drop the loser's merge, which the next run of that binary repairs. The
  // pid keeps tmp names distinct across processes (thread-id hashes alone
  // can collide).
  const std::string tmp =
      strprintf("%s.tmp.%ld.%llu", path.c_str(), static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    std::hash<std::thread::id>{}(std::this_thread::get_id())));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

ResultSet ResultSet::run(std::vector<RunSpec> specs, const RunOptions& opts) {
  bool any_series = false;
  for (const RunSpec& s : specs) any_series = any_series || s.series_interval > 0;
  if (!any_series) {
    auto results = run_all(specs, opts);
    return ResultSet(std::move(specs), std::move(results));
  }
  std::vector<Series> series;
  auto results = run_all(specs, opts, &series);
  return ResultSet(std::move(specs), std::move(results), std::move(series));
}

const SimStats& ResultSet::at(std::string_view workload_ref, CohMode mode,
                              std::uint32_t dir_ratio, bool adr) const {
  // Canonicalize the reference so parameter order/spelling cannot miss. A
  // bare name (no ':') matches any parameterization of that workload, so
  // grid-wide --set overrides don't break name-addressed lookups.
  RunSpec ref;
  std::string canonical(workload_ref);
  if (ref.set_workload_ref(workload_ref).empty()) canonical = ref.workload_ref();
  const bool exact = canonical.find(':') != std::string::npos;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const RunSpec& s = specs_[i];
    if (s.mode == mode && s.dir_ratio == dir_ratio && s.adr == adr &&
        (exact ? s.workload_ref() == canonical : s.app == canonical)) {
      return results_[i];
    }
  }
  // Not found: make grid-indexing bugs diagnosable — echo the requested key
  // and the nearest available spec keys before aborting.
  std::fprintf(stderr, "ResultSet::at: no result for %.*s/%s/1:%u%s\n",
               static_cast<int>(workload_ref.size()), workload_ref.data(),
               to_string(mode), dir_ratio, adr ? "/adr" : "");
  if (specs_.empty()) {
    std::fprintf(stderr, "  (the result set is empty)\n");
  } else {
    std::vector<std::size_t> order(specs_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto score = [&](const RunSpec& s) {
      int v = 0;
      if (s.app == canonical || s.workload_ref() == canonical) v += 4;
      if (s.mode == mode) v += 2;
      if (s.dir_ratio == dir_ratio) v += 1;
      if (s.adr == adr) v += 1;
      return v;
    };
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return score(specs_[a]) > score(specs_[b]);
    });
    const std::size_t show = std::min<std::size_t>(5, order.size());
    std::fprintf(stderr, "  nearest of %zu available specs:\n", specs_.size());
    for (std::size_t i = 0; i < show; ++i) {
      std::fprintf(stderr, "    %s\n", specs_[order[i]].key().c_str());
    }
  }
  RACCD_ASSERT(false, "spec not present in result set");
  return results_.front();
}

ResultSet& ResultSet::append(ResultSet other) {
  // Series alignment: if either side carries series, the merged set carries
  // one (empty) Series per spec so indices keep lining up.
  if (has_series() || other.has_series()) {
    series_.resize(specs_.size());
    other.series_.resize(other.specs_.size());
    series_.insert(series_.end(), std::make_move_iterator(other.series_.begin()),
                   std::make_move_iterator(other.series_.end()));
  }
  specs_.insert(specs_.end(), std::make_move_iterator(other.specs_.begin()),
                std::make_move_iterator(other.specs_.end()));
  results_.insert(results_.end(), std::make_move_iterator(other.results_.begin()),
                  std::make_move_iterator(other.results_.end()));
  return *this;
}

bool ResultSet::write_csv(const std::string& path) const {
  const obs::ScopeTimer timer;
  // Sampled grids gain a `sampling` identity column plus the extrapolation
  // telemetry; detailed-only grids keep the historical byte-identical layout.
  bool any_sampling = false;
  for (const RunSpec& sp : specs_) {
    if (!sp.sampling.empty()) {
      any_sampling = true;
      break;
    }
  }
  std::string text = "key,app,params,size,mode,dir_ratio,adr,seed,sched,topo,dram,";
  if (any_sampling) text += "sampling,";
  text += metrics_csv_header(csv_selection());
  if (any_sampling) {
    text += ',';
    text += metrics_csv_header(sampling_csv_selection());
  }
  text += "\n";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const RunSpec& sp = specs_[i];
    // key and params can contain commas (multi-knob overrides) — always
    // quoted; the remaining identity cells quote themselves when needed.
    text += strprintf(
        "%s,%s,%s,%s,%s,%u,%d,%llu,%s,%s,%s,", csv_cell(sp.key(), true).c_str(),
        csv_cell(sp.app).c_str(), csv_cell(sp.params, true).c_str(),
        to_string(sp.size), to_string(sp.mode), sp.dir_ratio, sp.adr ? 1 : 0,
        static_cast<unsigned long long>(sp.seed), to_string(sp.sched),
        csv_cell(sp.topo).c_str(), csv_cell(sp.dram).c_str());
    if (any_sampling) text += csv_cell(sp.sampling) + ",";
    text += metrics_csv_cells(csv_selection(), results_[i]);
    if (any_sampling) {
      text += ',';
      text += metrics_csv_cells(sampling_csv_selection(), results_[i]);
    }
    text += "\n";
  }
  const bool ok = write_text_file(path, text);
  obs::last_sweep_profile().export_s += timer.seconds();
  return ok;
}

bool ResultSet::write_json(const std::string& path) const {
  const obs::ScopeTimer timer;
  std::string text = "[\n";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const RunSpec& sp = specs_[i];
    // Sampled specs carry their schedule token; detailed specs stay
    // byte-identical to the historical layout.
    const std::string smp =
        sp.sampling.empty()
            ? std::string()
            : strprintf("\"sampling\": \"%s\", ", json_escape(sp.sampling).c_str());
    text += strprintf(
        "  {\"key\": \"%s\", \"app\": \"%s\", \"params\": \"%s\", "
        "\"size\": \"%s\", \"mode\": \"%s\", \"dir_ratio\": %u, \"adr\": %s, "
        "\"seed\": %llu, \"sched\": \"%s\", \"topo\": \"%s\", \"dram\": \"%s\", "
        "%s%s}%s\n",
        json_escape(sp.key()).c_str(), json_escape(sp.app).c_str(),
        json_escape(sp.params).c_str(), to_string(sp.size), to_string(sp.mode),
        sp.dir_ratio, sp.adr ? "true" : "false",
        static_cast<unsigned long long>(sp.seed), to_string(sp.sched),
        json_escape(sp.topo).c_str(), json_escape(sp.dram).c_str(), smp.c_str(),
        bench_metrics_json(results_[i]).c_str(), i + 1 < specs_.size() ? "," : "");
  }
  text += "]\n";
  const bool ok = write_text_file(path, text);
  obs::last_sweep_profile().export_s += timer.seconds();
  return ok;
}

bool ResultSet::append_bench_json(const std::string& path,
                                  bool include_profile) const {
  const obs::ScopeTimer timer;
  // Collect existing entries (one `  "key": {...}` line each — the format
  // this emitter writes; foreign files are rewritten from scratch).
  std::map<std::string, std::string> entries;
  if (std::ifstream in(path); in) {
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t kq0 = line.find('"');
      if (kq0 == std::string::npos) continue;
      const std::size_t kq1 = line.find('"', kq0 + 1);
      const std::size_t brace0 = line.find('{', kq1);
      const std::size_t brace1 = line.rfind('}');
      if (kq1 == std::string::npos || brace0 == std::string::npos ||
          brace1 == std::string::npos || brace1 <= brace0) {
        continue;
      }
      entries[line.substr(kq0 + 1, kq1 - kq0 - 1)] =
          line.substr(brace0, brace1 - brace0 + 1);
    }
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    // Keys are written (and re-parsed) unescaped, one line each: neutralize
    // the two characters that would break that framing.
    std::string key = specs_[i].key();
    for (char& c : key) {
      if (c == '"' || c == '\\') c = '_';
    }
    entries[key] = strprintf("{%s}", bench_metrics_json(results_[i]).c_str());
  }
  if (include_profile) {
    // The sweep's host-side wall-time breakdown. export_s reflects emitter
    // time accumulated *before* this merge (CSV/JSON writes); the merge
    // itself is timed into the next sweep's entry.
    entries["__profile__"] =
        strprintf("{%s}", obs::last_sweep_profile().json_fields().c_str());
  }
  std::string text = "{\n";
  std::size_t n = 0;
  for (const auto& [key, payload] : entries) {
    text += strprintf("  \"%s\": %s%s\n", key.c_str(), payload.c_str(),
                      ++n < entries.size() ? "," : "");
  }
  text += "}\n";
  const bool ok = write_text_file(path, text);
  obs::last_sweep_profile().export_s += timer.seconds();
  return ok;
}

// -- Grid ---------------------------------------------------------------------

Grid& Grid::workload(std::string ref) {
  workloads_.push_back(std::move(ref));
  return *this;
}

Grid& Grid::workloads(const std::vector<std::string>& refs) {
  workloads_.insert(workloads_.end(), refs.begin(), refs.end());
  return *this;
}

Grid& Grid::paper_apps() { return workloads(paper_app_names()); }

Grid& Grid::set(std::string key, std::string value) {
  common_params_.set(std::move(key), std::move(value));
  return *this;
}

Grid& Grid::set_params(const WorkloadParams& params) {
  for (const auto& e : params.entries()) common_params_.set(e.key, e.value);
  return *this;
}

Grid& Grid::size(SizeClass s) { return sizes({s}); }
Grid& Grid::sizes(std::vector<SizeClass> v) {
  sizes_ = std::move(v);
  return *this;
}
Grid& Grid::mode(CohMode m) { return modes(std::vector<CohMode>{m}); }
Grid& Grid::modes(std::vector<CohMode> v) {
  modes_ = std::move(v);
  return *this;
}
Grid& Grid::dir_ratio(std::uint32_t r) { return dir_ratios(std::vector<std::uint32_t>{r}); }
Grid& Grid::dir_ratios(std::vector<std::uint32_t> v) {
  dir_ratios_ = std::move(v);
  return *this;
}
Grid& Grid::adr(bool enabled) { return adr_values({enabled}); }
Grid& Grid::adr_values(std::vector<bool> v) {
  adr_ = std::move(v);
  return *this;
}
Grid& Grid::adr_bands(std::vector<std::pair<double, double>> v) {
  adr_bands_ = std::move(v);
  return *this;
}
Grid& Grid::seed(std::uint64_t s) { return seeds({s}); }
Grid& Grid::seeds(std::vector<std::uint64_t> v) {
  seeds_ = std::move(v);
  return *this;
}
Grid& Grid::ncrt_latency(Cycle c) { return ncrt_latencies({c}); }
Grid& Grid::ncrt_latencies(std::vector<Cycle> v) {
  ncrt_latencies_ = std::move(v);
  return *this;
}
Grid& Grid::ncrt_entry_counts(std::vector<std::uint32_t> v) {
  ncrt_entries_ = std::move(v);
  return *this;
}
Grid& Grid::alloc(AllocPolicy p) { return allocs({p}); }
Grid& Grid::allocs(std::vector<AllocPolicy> v) {
  allocs_ = std::move(v);
  return *this;
}
Grid& Grid::sched(SchedPolicy p) { return scheds({p}); }
Grid& Grid::scheds(std::vector<SchedPolicy> v) {
  scheds_ = std::move(v);
  return *this;
}
Grid& Grid::topology(std::string t) { return topologies({std::move(t)}); }
Grid& Grid::topologies(std::vector<std::string> v) {
  topologies_ = std::move(v);
  return *this;
}
Grid& Grid::dram(std::string d) { return drams({std::move(d)}); }
Grid& Grid::drams(std::vector<std::string> v) {
  drams_ = std::move(v);
  return *this;
}
Grid& Grid::sampling(std::string s) { return samplings({std::move(s)}); }
Grid& Grid::samplings(std::vector<std::string> v) {
  samplings_ = std::move(v);
  return *this;
}
Grid& Grid::paper_machine(bool on) {
  paper_machine_ = on;
  return *this;
}
Grid& Grid::sample_series(Cycle interval, std::string metrics) {
  series_interval_ = interval;
  series_metrics_ = std::move(metrics);
  return *this;
}

std::vector<RunSpec> Grid::specs() const {
  RACCD_ASSERT(!workloads_.empty(), "Grid has no workloads");
  // A grid-wide override that no workload of this grid declares would be
  // silently dropped by the per-schema filtering below — refuse instead.
  for (const auto& e : common_params_.entries()) {
    bool declared = false;
    for (const std::string& ref : workloads_) {
      std::string name;
      WorkloadParams ignore;
      if (!parse_workload_ref(ref, name, ignore).empty()) continue;
      const WorkloadInfo* w = WorkloadRegistry::instance().find(name);
      if (w == nullptr || w->schema.find(e.key) != nullptr) {  // unknown name errors later
        declared = true;
        break;
      }
    }
    if (!declared) {
      std::fprintf(stderr,
                   "grid override '%s=%s': no workload in this grid declares a "
                   "'%s' parameter\n",
                   e.key.c_str(), e.value.c_str(), e.key.c_str());
      RACCD_ASSERT(false, "grid-wide parameter unknown to every workload");
    }
  }
  std::vector<RunSpec> out;
  for (const std::string& ref : workloads_) {
    RunSpec base;
    const std::string err = base.set_workload_ref(ref);
    if (!err.empty()) {
      std::fprintf(stderr, "Grid workload '%s': %s\n", ref.c_str(), err.c_str());
      RACCD_ASSERT(false, "malformed workload reference");
    }
    if (!common_params_.empty()) {
      // Per-ref params win over grid-wide --set overrides, and grid-wide
      // keys only apply to workloads whose schema declares them (so one
      // --set can target a multi-workload grid).
      WorkloadParams merged =
          WorkloadRegistry::instance().supported_params(base.app, common_params_);
      WorkloadParams own;
      (void)WorkloadParams::parse(base.params, own);
      for (const auto& e : own.entries()) merged.set(e.key, e.value);
      base.params = merged.canonical();
    }
    base.paper_machine = paper_machine_;
    base.series_interval = series_interval_;
    base.series_metrics = series_metrics_;
    for (const SizeClass size : sizes_) {
      for (const CohMode mode : modes_) {
        for (const std::uint32_t ratio : dir_ratios_) {
          for (const bool adr : adr_) {
            for (const auto& [ti, td] : adr_bands_) {
              for (const std::uint64_t seed : seeds_) {
                for (const Cycle lat : ncrt_latencies_) {
                  for (const std::uint32_t entries : ncrt_entries_) {
                    for (const AllocPolicy alloc : allocs_) {
                      for (const SchedPolicy sched : scheds_) {
                        for (const std::string& topo : topologies_) {
                          for (const std::string& dram : drams_) {
                            for (const std::string& smp : samplings_) {
                              RunSpec s = base;
                              s.size = size;
                              s.mode = mode;
                              s.dir_ratio = ratio;
                              s.adr = adr;
                              s.adr_theta_inc = ti;
                              s.adr_theta_dec = td;
                              s.seed = seed;
                              s.ncrt_latency = lat;
                              s.ncrt_entries = entries;
                              s.alloc = alloc;
                              s.sched = sched;
                              s.topo = topo;
                              s.dram = dram;
                              s.sampling = smp;
                              out.push_back(std::move(s));
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

ResultSet Grid::run(const RunOptions& opts) const { return ResultSet::run(specs(), opts); }

}  // namespace raccd
