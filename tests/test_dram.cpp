// DRAM model tests: row-buffer hit/miss/conflict latencies, page policies,
// FR-FCFS vs FCFS service, queue backpressure, the token grammar, the
// kSimple golden (flat-latency behavior exactly as before the DRAM layer),
// and determinism under the host-parallel executor.
#include <gtest/gtest.h>

#include "fabric_test_util.hpp"

#include "raccd/dram/dram.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/harness/sweep_cache.hpp"

namespace raccd {
namespace {

using testutil::line_in_bank;
using testutil::small_fabric_config;

[[nodiscard]] DramConfig ddr_config() {
  DramConfig cfg;
  cfg.model = DramModel::kDdr;
  return cfg;
}

// Default geometry: 1 channel, 8 banks, 2 KB rows => 32 lines per row;
// bank = (line >> 5) & 7, row = line >> 8.
constexpr LineAddr kRow0Bank0 = 0;
constexpr LineAddr kRow0Bank0Next = 1;
constexpr LineAddr kRow0Bank1 = 32;
constexpr LineAddr kRow1Bank0 = 256;

TEST(DramController, RowEmptyMissPaysActivate) {
  DramController dc(ddr_config());
  const DramConfig& c = dc.config();
  const DramOutcome out = dc.read(kRow0Bank0, 0);
  EXPECT_EQ(out.row, DramOutcome::Row::kEmpty);
  EXPECT_TRUE(out.activated);
  EXPECT_FALSE(out.precharged);
  EXPECT_EQ(out.wait, 0u);
  EXPECT_EQ(out.latency, c.t_rcd + c.t_cas + c.t_burst);
}

TEST(DramController, RowHitPaysColumnAccessOnly) {
  DramController dc(ddr_config());
  const DramConfig& c = dc.config();
  (void)dc.read(kRow0Bank0, 0);
  const DramOutcome out = dc.read(kRow0Bank0Next, 500);  // bank idle, row open
  EXPECT_EQ(out.row, DramOutcome::Row::kHit);
  EXPECT_FALSE(out.activated);
  EXPECT_EQ(out.wait, 0u);
  EXPECT_EQ(out.latency, c.t_cas + c.t_burst);
}

TEST(DramController, RowConflictPrechargesFirst) {
  DramController dc(ddr_config());
  const DramConfig& c = dc.config();
  (void)dc.read(kRow0Bank0, 0);
  // Far enough out that tRAS has elapsed and the bank/bus are idle.
  const DramOutcome out = dc.read(kRow1Bank0, 1000);
  EXPECT_EQ(out.row, DramOutcome::Row::kConflict);
  EXPECT_TRUE(out.activated);
  EXPECT_TRUE(out.precharged);
  EXPECT_EQ(out.latency, c.t_rp + c.t_rcd + c.t_cas + c.t_burst);
}

TEST(DramController, ConflictAgainstYoungRowWaitsOutRas) {
  DramController dc(ddr_config());
  const DramConfig& c = dc.config();
  const DramOutcome first = dc.read(kRow0Bank0, 0);
  // Arrive right when the bank frees: the freshly activated row may not
  // precharge before tRAS, so the conflict waits past plain bank-busy.
  const DramOutcome out = dc.read(kRow1Bank0, first.latency);
  EXPECT_EQ(out.row, DramOutcome::Row::kConflict);
  EXPECT_GT(out.latency, c.t_rp + c.t_rcd + c.t_cas + c.t_burst);
}

TEST(DramController, ClosedPagePolicyNeverRowHits) {
  DramConfig cfg = ddr_config();
  cfg.page = PagePolicy::kClosed;
  DramController dc(cfg);
  Cycle t = 0;
  for (int i = 0; i < 8; ++i) {
    const DramOutcome out = dc.read(kRow0Bank0 + i, t);  // same row each time
    EXPECT_EQ(out.row, DramOutcome::Row::kEmpty) << i;
    EXPECT_TRUE(out.activated);
    EXPECT_TRUE(out.precharged);  // auto-precharge after every access
    t += 1000;
  }
}

TEST(DramController, FrFcfsLetsARowHitBypassTheQueue) {
  // A slow conflict inflates the channel's in-order issue point and keeps
  // the bus busy; a row hit to another bank then arrives. FR-FCFS serves it
  // immediately; FCFS makes it wait behind the conflict's issue order.
  const auto run = [](DramSched sched) {
    DramConfig cfg = ddr_config();
    cfg.sched = sched;
    DramController dc(cfg);
    (void)dc.read(kRow0Bank1, 0);   // open bank 1 row 0
    (void)dc.read(kRow0Bank0, 0);   // open bank 0 row 0
    (void)dc.read(kRow1Bank0, 10);  // conflict: issues late, holds the bus
    return dc.read(kRow0Bank1 + 1, 20);  // row hit on bank 1
  };
  const DramOutcome frfcfs = run(DramSched::kFrFcfs);
  const DramOutcome fcfs = run(DramSched::kFcfs);
  EXPECT_EQ(frfcfs.row, DramOutcome::Row::kHit);
  EXPECT_EQ(fcfs.row, DramOutcome::Row::kHit);
  EXPECT_LT(frfcfs.wait, fcfs.wait);
  EXPECT_LT(frfcfs.total(), fcfs.total());
}

TEST(DramController, FullWriteQueueBackpressuresWritesAndReads) {
  DramConfig cfg = ddr_config();
  cfg.write_queue_slots = 2;
  DramController dc(cfg);
  const DramOutcome w1 = dc.write(kRow0Bank0, 0);
  const DramOutcome w2 = dc.write(kRow0Bank1, 0);
  EXPECT_EQ(w1.wait + w2.wait, 0u);
  // Third write finds both slots occupied: it drains the earliest completer.
  const DramOutcome w3 = dc.write(kRow0Bank0 + 64, 0);
  EXPECT_GT(w3.wait, 0u);
  // A read against a full write queue stalls the same way.
  DramController dc2(cfg);
  (void)dc2.write(kRow0Bank0, 0);
  (void)dc2.write(kRow0Bank1, 0);
  const DramOutcome r = dc2.read(kRow0Bank0 + 64, 0);
  EXPECT_GT(r.wait, 0u);
}

TEST(DramController, ChannelsServeIndependently) {
  DramConfig cfg = ddr_config();
  cfg.channels = 2;
  DramController dc(cfg);
  (void)dc.read(0, 0);  // channel 0
  // Channel 1 is untouched: an access at t=0 starts immediately even though
  // channel 0's bank and bus are busy.
  const DramOutcome out = dc.read(1, 0);
  EXPECT_EQ(out.wait, 0u);
  EXPECT_EQ(out.row, DramOutcome::Row::kEmpty);
}

TEST(DramParse, TokenGrammar) {
  DramConfig cfg;
  EXPECT_EQ(parse_dram("simple", cfg), "");
  EXPECT_EQ(cfg.model, DramModel::kSimple);
  EXPECT_EQ(parse_dram("ddr", cfg), "");
  EXPECT_EQ(cfg.model, DramModel::kDdr);
  EXPECT_EQ(cfg.page, PagePolicy::kOpen);
  EXPECT_EQ(cfg.sched, DramSched::kFrFcfs);
  EXPECT_EQ(parse_dram("ddr-closed-fcfs-ch2-bk16", cfg), "");
  EXPECT_EQ(cfg.page, PagePolicy::kClosed);
  EXPECT_EQ(cfg.sched, DramSched::kFcfs);
  EXPECT_EQ(cfg.channels, 2u);
  EXPECT_EQ(cfg.banks, 16u);
  EXPECT_NE(parse_dram("", cfg), "");
  EXPECT_NE(parse_dram("dimm", cfg), "");
  EXPECT_NE(parse_dram("ddr-fast", cfg), "");
  EXPECT_NE(parse_dram("ddr-ch3", cfg), "");   // not a power of two
  EXPECT_NE(parse_dram("ddr-ch", cfg), "");    // no digits
  EXPECT_NE(parse_dram("ddr-ch4294967297", cfg), "");  // would wrap uint32 to 1
  EXPECT_NE(parse_dram("simple-ch2", cfg), "");
}

// -- kSimple golden: the flat-latency path is exactly the pre-DRAM one -------

TEST(DramSimpleGolden, ColdMissLatencyMatchesTheLegacyFormula) {
  const FabricConfig cfg = small_fabric_config();  // dram defaults to kSimple
  Fabric fabric(cfg, nullptr);
  const CoreId c = 0;
  const LineAddr l = line_in_bank(1, 3);
  const BankId b = 1;
  const Mesh& mesh = fabric.mesh();
  const std::uint32_t mc = mesh.nearest_memory_controller(b);
  // Pre-DRAM cold coherent miss: request to home, parallel dir+LLC tag
  // lookup, flat mem_cycles fetch between the controller legs, data back.
  const Cycle expected = cfg.l1_hit_cycles + mesh.latency(c, b, MsgClass::kRequest) +
                         std::max(cfg.dir_cycles, cfg.llc_cycles) +
                         mesh.latency(b, mc, MsgClass::kRequest) + cfg.mem_cycles +
                         mesh.latency(mc, b, MsgClass::kResponseData) +
                         mesh.latency(b, c, MsgClass::kResponseData);
  const AccessOutcome out = fabric.access(c, l, false, false, 0);
  EXPECT_FALSE(out.l1_hit);
  EXPECT_FALSE(out.llc_hit);
  EXPECT_EQ(out.latency, expected);
  // The flat model never touches the DRAM counters...
  EXPECT_EQ(fabric.stats().dram_row_hits + fabric.stats().dram_row_misses +
                fabric.stats().dram_row_conflicts,
            0u);
  EXPECT_EQ(fabric.stats().dram_queue_wait_cycles, 0u);
  // ...and memory energy stays the flat per-access number.
  EXPECT_DOUBLE_EQ(fabric.stats().e_mem_pj, fabric.energy().mem_access_pj());
}

TEST(DramSimpleGolden, DefaultSpecKeyAndConfigAreUnchanged) {
  RunSpec spec;
  spec.app = "jacobi";
  spec.size = SizeClass::kSmall;
  spec.mode = CohMode::kFullCoh;
  // The exact legacy key (also pinned in test_grid): no dram token appears.
  EXPECT_EQ(spec.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5");
  EXPECT_EQ(config_for(spec).fabric.dram.model, DramModel::kSimple);
  spec.dram = "ddr-closed";
  EXPECT_EQ(spec.key(),
            "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5-dram=ddr-closed");
  const SimConfig cfg = config_for(spec);
  EXPECT_EQ(cfg.fabric.dram.model, DramModel::kDdr);
  EXPECT_EQ(cfg.fabric.dram.page, PagePolicy::kClosed);
}

// -- End-to-end behavior under the executor ----------------------------------

[[nodiscard]] RunSpec tiny_spec(CohMode mode, std::string dram) {
  RunSpec s;
  s.app = "jacobi";
  s.size = SizeClass::kTiny;
  s.mode = mode;
  s.dram = std::move(dram);
  return s;
}

TEST(DramEndToEnd, DdrChangesTimingAndOpenPageRowHits) {
  const SimStats simple = run_one(tiny_spec(CohMode::kRaCCD, "simple"));
  const SimStats open = run_one(tiny_spec(CohMode::kRaCCD, "ddr"));
  const SimStats closed = run_one(tiny_spec(CohMode::kRaCCD, "ddr-closed"));
  // The detailed model actually engages...
  EXPECT_NE(open.cycles, simple.cycles);
  EXPECT_GT(open.fabric.dram_row_hits + open.fabric.dram_row_misses +
                open.fabric.dram_row_conflicts,
            0u);
  EXPECT_EQ(simple.fabric.dram_row_hits, 0u);
  // ...open page sees row-buffer locality, closed page cannot by definition.
  EXPECT_GT(open.fabric.dram_row_hits, 0u);
  EXPECT_EQ(closed.fabric.dram_row_hits, 0u);
  EXPECT_GT(closed.fabric.dram_row_misses, 0u);
  // The per-op energy split replaces the flat per-access energy.
  EXPECT_GT(open.fabric.e_mem_act_pj, 0.0);
  const double split = open.fabric.e_mem_act_pj + open.fabric.e_mem_rd_pj +
                       open.fabric.e_mem_wr_pj + open.fabric.e_mem_pre_pj;
  EXPECT_NEAR(open.fabric.e_mem_pj, split, 1e-6 * split);
}

TEST(DramEndToEnd, WritebackDeliveryIsAccountedNotDropped) {
  // A 1:256 directory under FullCoh forces entry evictions, whose dirty LLC
  // drops write back to memory — exercising the posted write path.
  RunSpec ddr = tiny_spec(CohMode::kFullCoh, "ddr");
  ddr.dir_ratio = 256;
  RunSpec simple = tiny_spec(CohMode::kFullCoh, "simple");
  simple.dir_ratio = 256;
  const SimStats d = run_one(ddr);
  const SimStats s = run_one(simple);
  ASSERT_GT(s.fabric.mem_writes, 0u);
  // kDdr accounts the NoC delivery leg + write-queue wait; kSimple stays
  // byte-identical to the pre-DRAM stats (zero, matching legacy caches).
  EXPECT_GT(d.fabric.mem_wb_wait_cycles, 0u);
  EXPECT_EQ(s.fabric.mem_wb_wait_cycles, 0u);
  EXPECT_GT(d.fabric.e_mem_wr_pj, 0.0);
}

TEST(DramEndToEnd, DeterministicUnderTheParallelExecutor) {
  std::vector<RunSpec> specs;
  for (const char* dram : {"ddr", "ddr-closed", "ddr-fcfs-ch2"}) {
    specs.push_back(tiny_spec(CohMode::kFullCoh, dram));
    specs.push_back(tiny_spec(CohMode::kRaCCD, dram));
    specs.push_back(tiny_spec(CohMode::kRaCCD, dram));  // duplicate: dedup copy
  }
  RunOptions opts;
  opts.jobs = 4;
  opts.use_cache = false;
  const std::vector<SimStats> a = run_all(specs, opts);
  const std::vector<SimStats> b = run_all(specs, opts);
  ASSERT_EQ(a.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(stats_to_text(a[i]), stats_to_text(b[i])) << specs[i].key();
  }
  // The duplicated spec is bit-identical to its twin within one batch too.
  EXPECT_EQ(stats_to_text(a[1]), stats_to_text(a[2]));
}

}  // namespace
}  // namespace raccd
