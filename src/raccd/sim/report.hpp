// Verbose per-run report printing (used by examples and for debugging).
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "raccd/metrics/metric_schema.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"

namespace raccd {

/// Print a full breakdown of one simulation run to `out`.
void print_report(const SimStats& s, std::FILE* out = stdout);

/// Print the machine configuration header (paper Table I analogue).
void print_config(const SimConfig& cfg, std::FILE* out = stdout);

/// Schema-driven metric listing: one aligned `name  value unit  # doc` line
/// per selected metric (simulate --metrics=a,b,c; every name comes from
/// MetricSchema, so there is no hand-maintained format string to drift).
void print_metrics(const SimStats& s, std::span<const MetricDesc* const> selection,
                   std::FILE* out = stdout);

}  // namespace raccd
