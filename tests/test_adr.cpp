// Adaptive Directory Reduction tests: hysteresis thresholds, grow/shrink
// decisions, bounds, and end-to-end occupancy tracking through the fabric.
#include <gtest/gtest.h>

#include "fabric_test_util.hpp"
#include "raccd/core/adr.hpp"

namespace raccd {
namespace {

using testutil::line_in_bank;
using testutil::small_fabric_config;

class AdrTest : public ::testing::Test {
 protected:
  AdrTest() : fabric_(small_fabric_config(), nullptr) {}

  AdrConfig enabled_cfg() {
    AdrConfig cfg;
    cfg.enabled = true;
    cfg.min_sets_divisor = 8;  // 8 sets -> min 1 set
    return cfg;
  }

  Fabric fabric_;
  Cycle t_ = 0;
};

TEST_F(AdrTest, DisabledDoesNothing) {
  AdrConfig cfg;
  cfg.enabled = false;
  AdrController adr(fabric_, cfg);
  for (std::uint64_t i = 0; i < 32; ++i) {
    fabric_.access(0, line_in_bank(0, i), false, false, t_++);
    adr.poll(t_);
  }
  EXPECT_EQ(adr.stats().grows + adr.stats().shrinks, 0u);
  EXPECT_EQ(fabric_.dir(0).active_sets(), fabric_.dir(0).total_sets());
}

TEST_F(AdrTest, ShrinksWhenNearlyEmpty) {
  AdrController adr(fabric_, enabled_cfg());
  // One coherent line -> occupancy 1/64 < 20%: repeated polls shrink down to
  // the floor (but never below, and never to zero).
  fabric_.access(0, line_in_bank(0, 1), false, false, t_++);
  adr.poll(t_);
  // The first poll handles the alloc event; further occupancy changes are
  // needed for more polls to fire, so touch more lines.
  for (std::uint64_t i = 2; i < 6; ++i) {
    fabric_.access(0, line_in_bank(0, i), false, false, t_++);
    adr.poll(t_);
  }
  EXPECT_GT(adr.stats().shrinks, 0u);
  EXPECT_GE(fabric_.dir(0).active_sets(), 1u);
  EXPECT_LT(fabric_.dir(0).active_sets(), fabric_.dir(0).total_sets());
}

TEST_F(AdrTest, GrowsUnderPressure) {
  AdrController adr(fabric_, enabled_cfg());
  // Shrink bank 0 to the floor first.
  (void)fabric_.resize_dir_bank(0, 1, t_);
  ASSERT_EQ(fabric_.dir(0).active_entries(), 8u);
  // Now track many coherent lines of bank 0: occupancy crosses 80% of the
  // small active size and ADR must grow it back.
  for (std::uint64_t i = 0; i < 32; ++i) {
    fabric_.access(0, line_in_bank(0, i), false, false, t_++);
    adr.poll(t_);
  }
  EXPECT_GT(adr.stats().grows, 0u);
  EXPECT_GT(fabric_.dir(0).active_sets(), 1u);
}

TEST_F(AdrTest, HysteresisPreventsImmediateReversal) {
  // After a grow, occupancy relative to the doubled size lands between
  // theta_dec and theta_inc, so the next poll must not act.
  AdrController adr(fabric_, enabled_cfg());
  (void)fabric_.resize_dir_bank(0, 1, t_);
  for (std::uint64_t i = 0; i < 7; ++i) {
    fabric_.access(0, line_in_bank(0, i), false, false, t_++);
    adr.poll(t_);
  }
  const auto grows = adr.stats().grows;
  const auto shrinks = adr.stats().shrinks;
  ASSERT_GT(grows, 0u);
  // 7 entries in 16 active (43%): inside the hysteresis band.
  EXPECT_EQ(fabric_.dir(0).active_entries(), 16u);
  adr.poll(t_);  // no occupancy change since -> no resize either way
  EXPECT_EQ(adr.stats().grows, grows);
  EXPECT_EQ(adr.stats().shrinks, shrinks);
}

TEST_F(AdrTest, ThresholdsValidated) {
  AdrConfig bad;
  bad.theta_inc = 0.2;
  bad.theta_dec = 0.8;
  EXPECT_DEATH({ AdrController adr(fabric_, bad); (void)adr; }, "hysteresis");
}

TEST_F(AdrTest, PollOnlyVisitsDirtyBanks) {
  AdrController adr(fabric_, enabled_cfg());
  fabric_.access(0, line_in_bank(2, 1), false, false, t_++);  // only bank 2
  adr.poll(t_);
  // Banks 0,1,3 untouched: still full size or shrunk? Only bank 2 was
  // considered, so the others keep their full active size.
  EXPECT_EQ(fabric_.dir(0).active_sets(), fabric_.dir(0).total_sets());
  EXPECT_EQ(fabric_.dir(1).active_sets(), fabric_.dir(1).total_sets());
  EXPECT_EQ(fabric_.dir(3).active_sets(), fabric_.dir(3).total_sets());
}

}  // namespace
}  // namespace raccd
