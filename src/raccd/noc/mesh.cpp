#include "raccd/noc/mesh.hpp"

#include <cstdlib>

#include "raccd/common/assert.hpp"

namespace raccd {

std::uint64_t NocStats::total_messages() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : per_class) sum += c.messages;
  return sum;
}
std::uint64_t NocStats::total_flits() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : per_class) sum += c.flits;
  return sum;
}
std::uint64_t NocStats::total_flit_hops() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : per_class) sum += c.flit_hops;
  return sum;
}
void NocStats::add(const NocStats& o) noexcept {
  for (std::size_t i = 0; i < per_class.size(); ++i) {
    per_class[i].messages += o.per_class[i].messages;
    per_class[i].flits += o.per_class[i].flits;
    per_class[i].flit_hops += o.per_class[i].flit_hops;
  }
}

Mesh::Mesh(const MeshConfig& cfg) : cfg_(cfg) {
  RACCD_ASSERT(cfg_.width > 0 && cfg_.height > 0, "empty mesh");
  RACCD_ASSERT(cfg_.flit_bytes > 0, "flit size must be positive");
  const std::uint32_t w = cfg_.width;
  const std::uint32_t h = cfg_.height;
  corners_ = {0, w - 1, (h - 1) * w, h * w - 1};
}

std::uint32_t Mesh::hops(std::uint32_t from, std::uint32_t to) const noexcept {
  const auto xy = [this](std::uint32_t n) {
    return std::pair<int, int>{static_cast<int>(n % cfg_.width),
                               static_cast<int>(n / cfg_.width)};
  };
  const auto [fx, fy] = xy(from);
  const auto [tx, ty] = xy(to);
  return static_cast<std::uint32_t>(std::abs(fx - tx) + std::abs(fy - ty));
}

std::uint32_t Mesh::flits_for(MsgClass cls) const noexcept {
  const std::uint32_t bytes = (cls == MsgClass::kResponseData || cls == MsgClass::kWriteback)
                                  ? cfg_.data_bytes
                                  : cfg_.control_bytes;
  return (bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
}

Cycle Mesh::latency(std::uint32_t from, std::uint32_t to, MsgClass cls) const noexcept {
  const std::uint32_t h = hops(from, to);
  if (h == 0) return 0;  // same tile: bank is local, no network traversal
  const Cycle per_hop = cfg_.link_cycles + cfg_.router_cycles;
  // Wormhole pipeline: head flit pays the route, body flits stream behind.
  return per_hop * h + (flits_for(cls) - 1);
}

Cycle Mesh::transfer(std::uint32_t from, std::uint32_t to, MsgClass cls) noexcept {
  const std::uint32_t h = hops(from, to);
  const std::uint32_t flits = flits_for(cls);
  auto& pc = stats_.per_class[static_cast<std::size_t>(cls)];
  ++pc.messages;
  pc.flits += flits;
  pc.flit_hops += static_cast<std::uint64_t>(flits) * h;
  return latency(from, to, cls);
}

std::uint32_t Mesh::nearest_memory_controller(std::uint32_t node) const noexcept {
  std::uint32_t best = corners_[0];
  std::uint32_t best_hops = hops(node, best);
  for (std::size_t i = 1; i < corners_.size(); ++i) {
    const std::uint32_t h = hops(node, corners_[i]);
    if (h < best_hops) {
      best_hops = h;
      best = corners_[i];
    }
  }
  return best;
}

}  // namespace raccd
