#include <gtest/gtest.h>

#include "raccd/noc/mesh.hpp"

namespace raccd {
namespace {

TEST(Mesh, HopCountsOn4x4) {
  Mesh mesh{MeshConfig{}};
  EXPECT_EQ(mesh.node_count(), 16u);
  EXPECT_EQ(mesh.hops(0, 0), 0u);
  EXPECT_EQ(mesh.hops(0, 3), 3u);
  EXPECT_EQ(mesh.hops(0, 15), 6u);   // (0,0) -> (3,3)
  EXPECT_EQ(mesh.hops(5, 10), 2u);   // (1,1) -> (2,2)
  EXPECT_EQ(mesh.hops(12, 3), 6u);   // corners
  EXPECT_EQ(mesh.hops(7, 4), 3u);    // same row
}

TEST(Mesh, HopsSymmetric) {
  Mesh mesh{MeshConfig{}};
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
    }
  }
}

TEST(Mesh, FlitSizing) {
  Mesh mesh{MeshConfig{}};
  // control: 8 B in 16 B flits -> 1 flit; data: 72 B -> 5 flits.
  EXPECT_EQ(mesh.flits_for(MsgClass::kRequest), 1u);
  EXPECT_EQ(mesh.flits_for(MsgClass::kInval), 1u);
  EXPECT_EQ(mesh.flits_for(MsgClass::kAck), 1u);
  EXPECT_EQ(mesh.flits_for(MsgClass::kResponseData), 5u);
  EXPECT_EQ(mesh.flits_for(MsgClass::kWriteback), 5u);
}

TEST(Mesh, LatencyModel) {
  Mesh mesh{MeshConfig{}};
  // Same tile: free. 1 hop control: link+router = 2. 1 hop data: 2 + 4 body flits.
  EXPECT_EQ(mesh.latency(0, 0, MsgClass::kRequest), 0u);
  EXPECT_EQ(mesh.latency(0, 1, MsgClass::kRequest), 2u);
  EXPECT_EQ(mesh.latency(0, 1, MsgClass::kResponseData), 6u);
  EXPECT_EQ(mesh.latency(0, 15, MsgClass::kRequest), 12u);
}

TEST(Mesh, TrafficAccounting) {
  Mesh mesh{MeshConfig{}};
  mesh.transfer(0, 15, MsgClass::kResponseData);  // 5 flits x 6 hops
  mesh.transfer(3, 3, MsgClass::kRequest);        // local: 0 flit-hops
  mesh.transfer(0, 1, MsgClass::kInval);          // 1 flit x 1 hop
  const NocStats& s = mesh.stats();
  EXPECT_EQ(s.total_messages(), 3u);
  EXPECT_EQ(s.total_flit_hops(), 5u * 6 + 0 + 1);
  EXPECT_EQ(s.per_class[static_cast<std::size_t>(MsgClass::kResponseData)].flit_hops, 30u);
  mesh.reset_stats();
  EXPECT_EQ(mesh.stats().total_messages(), 0u);
}

TEST(Mesh, NearestMemoryController) {
  Mesh mesh{MeshConfig{}};
  EXPECT_EQ(mesh.nearest_memory_controller(0), 0u);
  EXPECT_EQ(mesh.nearest_memory_controller(3), 3u);
  EXPECT_EQ(mesh.nearest_memory_controller(12), 12u);
  EXPECT_EQ(mesh.nearest_memory_controller(15), 15u);
  EXPECT_EQ(mesh.nearest_memory_controller(5), 0u);   // (1,1): corner (0,0)
  EXPECT_EQ(mesh.nearest_memory_controller(10), 15u);  // (2,2): corner (3,3)
}

TEST(Mesh, NonSquareGeometry) {
  Mesh mesh{MeshConfig{8, 2, 1, 1, 16, 8, 72}};
  EXPECT_EQ(mesh.node_count(), 16u);
  EXPECT_EQ(mesh.hops(0, 15), 8u);  // (0,0)->(7,1)
}

TEST(NocStats, Accumulation) {
  NocStats a, b;
  a.per_class[0].messages = 2;
  a.per_class[0].flit_hops = 10;
  b.per_class[0].messages = 3;
  b.per_class[0].flit_hops = 5;
  a.add(b);
  EXPECT_EQ(a.per_class[0].messages, 5u);
  EXPECT_EQ(a.total_flit_hops(), 15u);
}

}  // namespace
}  // namespace raccd
