// Run workloads once under all four coherence backends — FullCoh, PT, RaCCD,
// and the WbNC software-coherence baseline — at the 1:1 directory and print
// a side-by-side comparison: a one-screen tour of what the library measures.
//
// By default the nine paper benchmarks run; pass registry references to
// compare anything else, e.g.
//   mode_compare 'synthetic:shape=pipeline,width=32' tracereplay jacobi
// The sweep fans out over the work-stealing executor (--jobs=N / -jN,
// default hardware concurrency; results are byte-identical to -j1) and
// composes with --shard=i/N for multi-process scale-out.
// Results also merge into results/BENCH_grid.json (machine-readable).
#include <cstdio>
#include <cstring>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/harness/table.hpp"
#include "raccd/metrics/metric_schema.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  std::vector<std::string> refs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--set") == 0) {  // its value is not a workload
      ++i;
      continue;
    }
    if (argv[i][0] != '-') refs.emplace_back(argv[i]);
  }
  if (refs.empty()) refs = paper_app_names();

  const ResultSet rs = Grid()
                           .workloads(refs)
                           .set_params(opts.params)
                           .size(SizeClass::kTiny)  // quick tour by default
                           .modes(kAllBackends)
                           .topology(opts.topo)  // --topology=flat|cmesh|numaS[xC]
                           .dram(opts.dram)      // --dram=simple|ddr[-...]
                           .paper_machine(opts.paper_machine)
                           .run(opts.run);
  if (!rs.append_bench_json("results/BENCH_grid.json")) {
    std::fprintf(stderr, "warning: could not update results/BENCH_grid.json\n");
  }

  TextTable table({"workload", "system", "cycles", "NC blocks %", "dir accesses",
                   "dir occupancy %"});
  std::size_t i = 0;
  for (const auto& ref : refs) {
    if (i != 0) table.add_separator();
    for (std::size_t m = 0; m < kAllBackends.size(); ++m) {
      const SimStats& s = rs[i++];
      // Columns select what they plot by schema name (metrics/metric_schema.hpp).
      table.add_row({ref, to_string(s.mode), format_count(s.cycles),
                     strprintf("%.1f", 100.0 * metric_value(s, "blocks.nc_fraction")),
                     format_count(s.fabric.dir_accesses),
                     strprintf("%.1f", 100.0 * metric_value(s, "dir.avg_occupancy"))});
    }
  }
  table.print();
  std::puts("\nAll runs functionally verified (run_one aborts on corruption).");
  std::puts("Machine-readable results merged into results/BENCH_grid.json.");
  return 0;
}
