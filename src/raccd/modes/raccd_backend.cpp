#include "raccd/modes/raccd_backend.hpp"

#include "raccd/coherence/fabric.hpp"
#include "raccd/mem/sim_memory.hpp"
#include "raccd/runtime/task.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

RaccdBackend::RaccdBackend(const BackendContext& ctx)
    : CoherenceBackend(ctx), engine_(ctx.cfg.fabric.cores, ctx.cfg.raccd) {}

Cycle RaccdBackend::on_task_start(CoreId c, const TaskNode& node) {
  // raccd_register for every input/output (paper §III-B).
  Cycle cost = 0;
  for (const DepSpec& d : node.deps) {
    const RegisterOutcome ro =
        engine_.register_region(c, d.addr, d.size, ctx_.tlbs[c], ctx_.mem.page_table());
    cost += ro.cycles;
  }
  return cost;
}

AccessClass RaccdBackend::classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                         PAddr paddr, PageNum pframe, Cycle now) {
  (void)vaddr;
  (void)pframe;
  (void)now;
  auto* be = static_cast<RaccdBackend*>(self);
  return {be->engine_.is_noncoherent(c, paddr),
          be->ctx_.cfg.timing.ncrt_lookup_cycles};
}

TaskEndOutcome RaccdBackend::on_task_end(CoreId c, Cycle now) {
  // raccd_invalidate: clear the NCRT and walk the L1 flushing NC lines
  // (paper §III-C.4). The instruction blocks until the walk completes.
  Cycle cost = engine_.invalidate(c);
  const auto fo = ctx_.fabric.flush_nc_lines(c, now);
  cost += fo.cycles;
  return {cost, fo.lines, fo.writebacks};
}

void RaccdBackend::accumulate(SimStats& s) const { s.ncrt = engine_.total_stats(); }

}  // namespace raccd
