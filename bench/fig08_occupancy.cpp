// Paper Fig. 8: directory occupancy at the 1:1 configuration — both the
// per-app time averages the paper reports and the occupancy-over-time curves
// the figure actually plots.
//
// Paper reference points: FullCoh 65.7%, PT 20.3%, RaCCD 10.8% on average.
// FullCoh occupancy only grows (up to capacity); PT and RaCCD shed entries
// when NC blocks displace coherent LLC lines. The time-resolved curves for
// jacobi land in results/fig08_occupancy_series.json (see --series in
// `simulate` for arbitrary workloads).
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "raccd/metrics/series.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  const auto results = bench::run_logged(Grid()
                                             .paper_apps()
                                             .set_params(opts.params)
                                             .size(opts.size)
                                             .modes(kAllModes)
                                             .paper_machine(opts.paper_machine)
                                             .specs(),
                                         opts);

  std::printf("Fig. 8 — Average directory occupancy (%%, 1:1 directory)\n");
  std::vector<std::string> headers{"app"};
  for (const CohMode mode : kAllModes) headers.emplace_back(to_string(mode));
  TextTable table(headers);
  // Grid nesting: app outer, mode inner — the stride is the mode count.
  const std::size_t stride = kAllModes.size();
  std::vector<double> avg(stride, 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::vector<std::string> row{apps[a]};
    for (std::size_t m = 0; m < stride; ++m) {
      const double occ =
          100.0 * metric_value(results[a * stride + m], "dir.avg_occupancy");
      avg[m] += occ;
      row.push_back(strprintf("%.1f", occ));
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> avg_row{"AVG"};
  for (std::size_t m = 0; m < stride; ++m) {
    avg_row.push_back(strprintf("%.1f", avg[m] / apps.size()));
  }
  table.add_row(std::move(avg_row));
  table.print();
  table.write_csv("results/fig08_occupancy.csv");
  std::printf("\npaper: FullCoh 65.7%%, PT 20.3%%, RaCCD 10.8%% on average\n");

  // The paper's actual plot is occupancy *over time*: sample jacobi under
  // the three systems. Series runs bypass the stats cache (they must
  // execute to record), so only one representative app is traced here.
  const ResultSet series_rs = Grid()
                                  .workload("jacobi")
                                  .set_params(opts.params)
                                  .size(opts.size)
                                  .modes(kAllModes)
                                  .paper_machine(opts.paper_machine)
                                  .sample_series(bench::series_interval_for(opts.size),
                                                 "dir.avg_occupancy")
                                  .run(opts.run);
  std::vector<std::pair<std::string, const Series*>> entries;
  for (std::size_t i = 0; i < series_rs.size(); ++i) {
    entries.emplace_back(series_rs.spec(i).key(), &series_rs.series(i));
  }
  std::ofstream out("results/fig08_occupancy_series.json");
  out << series_map_json(entries);
  if (out) {
    std::printf("occupancy-vs-time series (jacobi x %zu systems) written to "
                "results/fig08_occupancy_series.json\n",
                series_rs.size());
  } else {
    std::fprintf(stderr,
                 "warning: could not write results/fig08_occupancy_series.json\n");
  }
  return 0;
}
