// The CoherenceBackend seam: every mode must produce the SAME functional
// result for the same workload (coherence policy changes timing and traffic,
// never data), with mode-appropriate traffic statistics — RaCCD/WbNC see NC
// transactions, FullCoh sees none; all policy is behind the backend, so the
// machine loop itself is mode-blind.
#include <gtest/gtest.h>

#include <vector>

#include "raccd/coherence/checker.hpp"
#include "raccd/sim/machine.hpp"

namespace raccd {
namespace {

struct SeamRun {
  SimStats stats;
  std::vector<std::uint32_t> result;  ///< functional memory contents after run
};

/// Producer/consumer chain over enough data to miss in L1, with cross-core
/// partner reads (the migration pattern that separates the modes).
SeamRun run_workload(CohMode mode) {
  SimConfig cfg = SimConfig::scaled(mode);
  cfg.enable_checker = true;
  Machine m(cfg);
  constexpr std::uint32_t kTasks = 24;
  constexpr std::uint32_t kBytes = 4096;
  const VAddr base =
      m.mem().alloc(static_cast<std::uint64_t>(kTasks) * kBytes, kLineBytes, "seam");
  for (std::uint32_t t = 0; t < kTasks; ++t) {
    const VAddr region = base + static_cast<VAddr>(t) * kBytes;
    TaskDesc wr;
    wr.deps = {DepSpec{region, kBytes, DepKind::kOut}};
    wr.body = [region, t](TaskContext& ctx) {
      for (std::uint32_t i = 0; i < kBytes; i += 4) {
        ctx.store<std::uint32_t>(region + i, t * 131 + i);
      }
    };
    m.spawn(std::move(wr));
  }
  for (std::uint32_t t = 0; t < kTasks; ++t) {
    const VAddr region = base + static_cast<VAddr>(t) * kBytes;
    const VAddr partner = base + static_cast<VAddr>((t + kTasks / 2) % kTasks) * kBytes;
    TaskDesc rd;
    rd.deps = {DepSpec{region, kBytes, DepKind::kInout},
               DepSpec{partner, kBytes, DepKind::kIn}};
    rd.body = [region, partner](TaskContext& ctx) {
      for (std::uint32_t i = 0; i < kBytes; i += 4) {
        const std::uint32_t own = ctx.load<std::uint32_t>(region + i);
        const std::uint32_t other = ctx.load<std::uint32_t>(partner + i);
        ctx.store<std::uint32_t>(region + i, own + other);
      }
    };
    m.spawn(std::move(rd));
  }
  m.taskwait();

  SeamRun out;
  for (std::uint32_t i = 0; i < kTasks * kBytes; i += 4) {
    out.result.push_back(m.mem().read<std::uint32_t>(base + i));
  }
  const auto violations = CoherenceChecker::scan(m.fabric());
  for (const auto& v : violations) ADD_FAILURE() << to_string(mode) << ": " << v;
  out.stats = m.collect();
  return out;
}

class BackendSeam : public ::testing::TestWithParam<CohMode> {};

TEST_P(BackendSeam, FunctionalResultIdenticalToFullCoh) {
  const SeamRun ref = run_workload(CohMode::kFullCoh);
  const SeamRun got = run_workload(GetParam());
  ASSERT_EQ(ref.result.size(), got.result.size());
  EXPECT_EQ(ref.result, got.result);
  EXPECT_EQ(ref.stats.tasks, got.stats.tasks);
  EXPECT_EQ(ref.stats.accesses_replayed, got.stats.accesses_replayed);
}

TEST_P(BackendSeam, StatsMatchModePolicy) {
  const CohMode mode = GetParam();
  const SimStats s = run_workload(mode).stats;
  EXPECT_EQ(s.mode, mode);
  const std::uint64_t nc_traffic = s.fabric.nc_reads + s.fabric.nc_writes;
  switch (mode) {
    case CohMode::kFullCoh:
      // Nothing is ever non-coherent: no NC transactions, no NC LLC path,
      // no task-boundary flushes, no NCRT/PT activity.
      EXPECT_EQ(nc_traffic, 0u);
      EXPECT_EQ(s.fabric.llc_nc_lookups, 0u);
      EXPECT_EQ(s.flushed_nc_lines, 0u);
      EXPECT_EQ(s.ncrt.lookups, 0u);
      EXPECT_EQ(s.pt.first_touches, 0u);
      EXPECT_EQ(s.register_cycles, 0u);
      EXPECT_EQ(s.invalidate_cycles, 0u);
      break;
    case CohMode::kPT:
      // First-touch classification engages, and task migration forces
      // private->shared transitions (the paper's PT inaccuracy).
      EXPECT_GT(s.pt.first_touches, 0u);
      EXPECT_GT(s.pt.transitions, 0u);
      EXPECT_EQ(s.ncrt.lookups, 0u);
      EXPECT_EQ(s.flushed_nc_lines, 0u);
      break;
    case CohMode::kRaCCD:
      // All task data is dependence-declared: NC traffic, NCRT activity,
      // register/invalidate overheads and task-end NC flushes all engage.
      EXPECT_GT(nc_traffic, 0u);
      EXPECT_GT(s.fabric.llc_nc_lookups, 0u);
      EXPECT_GT(s.ncrt.inserts, 0u);
      EXPECT_GT(s.register_cycles, 0u);
      EXPECT_GT(s.invalidate_cycles, 0u);
      EXPECT_GT(s.flushed_nc_lines, 0u);
      EXPECT_GT(s.noncoherent_block_fraction, 0.95);
      break;
    case CohMode::kWbNC:
      // Everything is non-coherent: zero directory pressure, zero coherent
      // transactions, and whole-L1 writeback flushes at task boundaries.
      EXPECT_GT(nc_traffic, 0u);
      EXPECT_EQ(s.fabric.coh_reads + s.fabric.coh_writes + s.fabric.upgrades, 0u);
      EXPECT_EQ(s.fabric.dir_accesses, 0u);
      EXPECT_EQ(s.noncoherent_block_fraction, 1.0);
      EXPECT_GT(s.flushed_nc_lines, 0u);
      EXPECT_GT(s.flushed_nc_wbs, 0u);
      EXPECT_GT(s.invalidate_cycles, 0u);
      EXPECT_EQ(s.register_cycles, 0u);  // no per-task registration
      break;
  }
}

TEST_P(BackendSeam, BackendReportsItsMode) {
  SimConfig cfg = SimConfig::scaled(GetParam());
  Machine m(cfg);
  EXPECT_EQ(m.backend().mode(), GetParam());
  EXPECT_EQ(mode_traits(GetParam()).mode, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSeam, ::testing::ValuesIn(kAllBackends),
                         [](const ::testing::TestParamInfo<CohMode>& info) {
                           return to_string(info.param);
                         });

TEST(BackendSeam, DirectoryPressureOrdering) {
  // WbNC <= RaCCD < PT <= FullCoh on the migrating-producer/consumer
  // workload: the whole point of deactivation, now across four backends.
  const SimStats full = run_workload(CohMode::kFullCoh).stats;
  const SimStats pt = run_workload(CohMode::kPT).stats;
  const SimStats raccd = run_workload(CohMode::kRaCCD).stats;
  const SimStats wbnc = run_workload(CohMode::kWbNC).stats;
  EXPECT_LE(wbnc.fabric.dir_accesses, raccd.fabric.dir_accesses);
  EXPECT_LT(raccd.fabric.dir_accesses, pt.fabric.dir_accesses);
  EXPECT_LE(pt.fabric.dir_accesses, full.fabric.dir_accesses);
  EXPECT_EQ(wbnc.fabric.dir_accesses, 0u);
}

}  // namespace
}  // namespace raccd
