// MD5: cryptographically hash random input buffers (paper Table II:
// 128 buffers of 512 KB).
//
// One task per buffer: in = the buffer, out = its digest slot. Streaming
// reads with essentially no reuse — the paper's example of a workload where
// PT and RaCCD perform similarly (every block is touched once, so
// classification accuracy matters little) and where LLC hit rate stays flat
// across directory sizes (compulsory misses dominate).
#include <algorithm>
#include <array>
#include <string>

#include "raccd/apps/registry.hpp"
#include "raccd/apps/md5_core.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

struct Md5Params {
  std::uint32_t buffers;
  std::uint32_t buffer_bytes;  // multiple of 64
};

[[nodiscard]] Md5Params params_for(const AppConfig& cfg) {
  Md5Params p{48, 64 * 1024};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {4, 8 * 1024}; break;
    case SizeClass::kSmall: p = {48, 64 * 1024}; break;
    case SizeClass::kMedium: p = {96, 256 * 1024}; break;
    case SizeClass::kPaper: p = {128, 512 * 1024}; break;
    case SizeClass::kLarge: p = {256, 1024 * 1024}; break;
  }
  p.buffers = cfg.params.get_u32("buffers", p.buffers);
  // MD5 consumes whole 64-byte chunks; overrides are rounded down to one.
  p.buffer_bytes = std::max(cfg.params.get_u32("buffer_bytes", p.buffer_bytes) / 64 * 64,
                            64u);
  return p;
}

class Md5App final : public App {
 public:
  explicit Md5App(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "md5"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("%u buffers of %s to hash", p_.buffers,
                     format_bytes(p_.buffer_bytes).c_str());
  }

  void run(Machine& m) override {
    buffers_ = m.mem().alloc(static_cast<std::uint64_t>(p_.buffers) * p_.buffer_bytes,
                             kLineBytes, "md5.buffers");
    digests_ = m.mem().alloc(static_cast<std::uint64_t>(p_.buffers) * kLineBytes,
                             kLineBytes, "md5.digests");
    Rng rng(seed_);
    for (std::uint64_t w = 0;
         w < static_cast<std::uint64_t>(p_.buffers) * p_.buffer_bytes / 8; ++w) {
      m.mem().write<std::uint64_t>(buffers_ + w * 8, rng.next_u64());
    }

    for (std::uint32_t i = 0; i < p_.buffers; ++i) {
      const VAddr buf = buffers_ + static_cast<VAddr>(i) * p_.buffer_bytes;
      const VAddr dig = digests_ + static_cast<VAddr>(i) * kLineBytes;
      const std::uint32_t bytes = p_.buffer_bytes;
      TaskDesc t;
      t.name = strprintf("md5(%u)", i);
      t.deps = {DepSpec{buf, bytes, DepKind::kIn},
                DepSpec{dig, kLineBytes, DepKind::kOut}};
      t.body = [buf, dig, bytes](TaskContext& ctx) {
        Md5State st;
        std::uint32_t block[16];
        for (std::uint32_t off = 0; off < bytes; off += 64) {
          for (unsigned w = 0; w < 16; ++w) {
            block[w] = ctx.load<std::uint32_t>(buf + off + w * 4);
          }
          ctx.compute(290);  // 64 rounds x ~4.5 ALU ops at 1 IPC-equivalent
          md5_transform(st, block);
        }
        const auto digest = md5_finalize(st, bytes, {});
        for (unsigned w = 0; w < 4; ++w) {
          std::uint32_t word;
          std::memcpy(&word, digest.data() + w * 4, 4);
          ctx.store<std::uint32_t>(dig + w * 4, word);
        }
      };
      m.spawn(std::move(t));
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    std::vector<std::uint8_t> host(p_.buffer_bytes);
    for (std::uint32_t i = 0; i < p_.buffers; ++i) {
      m.mem().copy_out(buffers_ + static_cast<VAddr>(i) * p_.buffer_bytes, host.data(),
                       host.size());
      const auto want = md5_hash(host);
      std::array<std::uint8_t, 16> got{};
      m.mem().copy_out(digests_ + static_cast<VAddr>(i) * kLineBytes, got.data(), 16);
      if (got != want) {
        return strprintf("md5 buffer %u: got %s want %s", i, md5_hex(got).c_str(),
                         md5_hex(want).c_str());
      }
    }
    return {};
  }

 private:
  Md5Params p_;
  std::uint64_t seed_;
  VAddr buffers_ = 0, digests_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "md5",
    "per-buffer MD5 digests; streaming, compulsory-miss dominated",
    "paper",
    ParamSchema()
        .add_int("buffers", 48, "independent buffers to hash", 1, 4096)
        .add_int("buffer_bytes", 64 * 1024, "bytes per buffer (rounded down to x64)",
                 64, 16 * 1024 * 1024),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<Md5App>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
