// Paper Fig. 7d: dynamic energy consumed in the directory by directory size,
// normalized to the FullCoh 1:1 configuration of each benchmark.
//
// Paper reference points: RaCCD consumes 71% less than FullCoh at 1:1 and
// 80% less at 1:256; it beats PT by >=38% everywhere except JPEG. Shrinking
// the directory always reduces energy per access. The paper also reports
// RaCCD@1:256 saving 35% NoC and 19% LLC dynamic energy vs FullCoh@1:256 —
// printed below the table.
#include "bench_common.hpp"

using namespace raccd;
using namespace raccd::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const PaperGrid g = run_grid(opts);
  print_figure(
      g, "Fig. 7d — Directory dynamic energy (normalized to FullCoh 1:1)",
      "normalized directory dynamic energy",
      [](const SimStats& s, const SimStats& base) {
        return metric_value(s, "energy.dir_dyn_pj") /
               metric_value(base, "energy.dir_dyn_pj");
      },
      "results/fig07d_energy.csv");

  // Companion numbers: NoC and LLC dynamic-energy savings at 1:256.
  double noc_save = 0.0, llc_save = 0.0;
  for (std::size_t a = 0; a < g.apps.size(); ++a) {
    const SimStats& full = g.at(a, CohMode::kFullCoh, 256);
    const SimStats& raccd = g.at(a, CohMode::kRaCCD, 256);
    noc_save += 1.0 - raccd.noc_dyn_energy_pj / full.noc_dyn_energy_pj;
    llc_save += 1.0 - raccd.llc_dyn_energy_pj / full.llc_dyn_energy_pj;
  }
  noc_save = 100.0 * noc_save / static_cast<double>(g.apps.size());
  llc_save = 100.0 * llc_save / static_cast<double>(g.apps.size());
  std::printf("RaCCD vs FullCoh at 1:256 — NoC dynamic energy saved: %.1f%% "
              "(paper 35%%), LLC: %.1f%% (paper 19%%)\n",
              noc_save, llc_save);
  std::printf("paper: RaCCD -71%% vs FullCoh @1:1, -80%% @1:256\n");

  // Memory-side energy with its DRAM per-op split (activate / read / write /
  // precharge; all zero under the default --dram=simple flat model, where
  // the memory total is the flat per-access energy).
  std::printf("\nMemory dynamic energy at 1:1 (act/rd/wr/pre split, --dram=%s):\n",
              opts.dram.c_str());
  for (const CohMode mode : kAllBackends) {
    double mem = 0.0, act = 0.0, rd = 0.0, wr = 0.0, pre = 0.0;
    for (std::size_t a = 0; a < g.apps.size(); ++a) {
      const SimStats& s = g.at(a, mode, 1);
      mem += metric_value(s, "energy.mem_dyn_pj");
      act += metric_value(s, "energy.mem_act_pj");
      rd += metric_value(s, "energy.mem_rd_pj");
      wr += metric_value(s, "energy.mem_wr_pj");
      pre += metric_value(s, "energy.mem_pre_pj");
    }
    std::printf("  %-7s total %10.1f nJ = act %10.1f + rd %10.1f + wr %10.1f "
                "+ pre %10.1f nJ\n",
                to_string(mode), mem / 1e3, act / 1e3, rd / 1e3, wr / 1e3, pre / 1e3);
  }
  return 0;
}
