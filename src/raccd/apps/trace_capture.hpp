// Capture a workload's task program as a portable TraceFile: attach a
// TraceCapture to a Machine before running any workload, run it, then
// finish() to get regions (from the machine's named allocations), per-task
// dependence annotations and the recorded access streams — ready for the
// `tracereplay` workload to re-execute under any coherence mode.
#pragma once

#include <string>
#include <vector>

#include "raccd/apps/app.hpp"
#include "raccd/runtime/trace_file.hpp"
#include "raccd/sim/machine.hpp"

namespace raccd {

class TraceCapture {
 public:
  /// Installs the machine's trace sink (replacing any previous sink).
  explicit TraceCapture(Machine& m);
  /// Uninstalls the sink — the machine must not outlive a dangling capture.
  ~TraceCapture();
  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  /// Build the TraceFile: tasks sorted by creation id, every address mapped
  /// to (allocation, offset). Returns "" on success; an error when an access
  /// or dependence falls outside every named allocation.
  [[nodiscard]] std::string finish(TraceFile& out);

 private:
  struct RawTask {
    TaskId id = kNoTask;
    std::string name;
    std::vector<DepSpec> deps;
    std::vector<AccessRecord> records;
    std::uint64_t trailing_compute = 0;
  };

  Machine& m_;
  std::vector<RawTask> tasks_;
};

/// One-call convenience: run `workload_ref` (name[:k=v,...]) at `cfg` on a
/// machine built from `mcfg` and capture its trace. Returns "" on success.
[[nodiscard]] std::string capture_workload_trace(const std::string& workload_ref,
                                                 const AppConfig& cfg,
                                                 const SimConfig& mcfg, TraceFile& out);

}  // namespace raccd
