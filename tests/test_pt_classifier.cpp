#include <gtest/gtest.h>

#include "raccd/core/pt_classifier.hpp"

namespace raccd {
namespace {

TEST(PtClassifier, FirstTouchIsPrivate) {
  PtClassifier pt;
  const auto d = pt.on_access(3, 10);
  EXPECT_TRUE(d.noncoherent);
  EXPECT_FALSE(d.transition);
  EXPECT_EQ(pt.class_of(10), PageClass::kPrivate);
  EXPECT_EQ(pt.owner_of(10), 3u);
  EXPECT_EQ(pt.stats().first_touches, 1u);
}

TEST(PtClassifier, OwnerKeepsNcAccess) {
  PtClassifier pt;
  pt.on_access(3, 10);
  for (int i = 0; i < 5; ++i) {
    const auto d = pt.on_access(3, 10);
    EXPECT_TRUE(d.noncoherent);
    EXPECT_FALSE(d.transition);
  }
  EXPECT_EQ(pt.stats().transitions, 0u);
}

TEST(PtClassifier, SecondCoreTriggersTransition) {
  PtClassifier pt;
  pt.on_access(3, 10);
  const auto d = pt.on_access(1, 10);
  EXPECT_FALSE(d.noncoherent);
  EXPECT_TRUE(d.transition);
  EXPECT_EQ(d.prev_owner, 3u);
  EXPECT_EQ(pt.class_of(10), PageClass::kShared);
  EXPECT_EQ(pt.stats().transitions, 1u);
}

TEST(PtClassifier, SharedIsForever) {
  // The key inaccuracy RaCCD fixes: temporarily-private pages never return
  // to private, even when only one core uses them later.
  PtClassifier pt;
  pt.on_access(0, 7);
  pt.on_access(1, 7);  // -> shared
  for (int i = 0; i < 10; ++i) {
    const auto d = pt.on_access(1, 7);
    EXPECT_FALSE(d.noncoherent);
    EXPECT_FALSE(d.transition);
  }
  EXPECT_EQ(pt.class_of(7), PageClass::kShared);
  EXPECT_EQ(pt.stats().transitions, 1u);
}

TEST(PtClassifier, PagesAreIndependent) {
  PtClassifier pt;
  pt.on_access(0, 1);
  pt.on_access(1, 2);
  EXPECT_EQ(pt.class_of(1), PageClass::kPrivate);
  EXPECT_EQ(pt.class_of(2), PageClass::kPrivate);
  EXPECT_EQ(pt.owner_of(1), 0u);
  EXPECT_EQ(pt.owner_of(2), 1u);
  EXPECT_EQ(pt.class_of(3), PageClass::kUntouched);
  EXPECT_EQ(pt.owner_of(999), kNoCore);
}

}  // namespace
}  // namespace raccd
