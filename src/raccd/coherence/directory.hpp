// One bank of the sparse full-map directory (paper Table I: 524288 entries
// banked 32768/core, 8-way, 15 cycles, pseudoLRU).
//
// Invariants maintained with the fabric:
//  * every *coherent* line resident in the LLC or any L1 has an entry here
//    (the directory is inclusive of the LLC: evicting an entry forces the
//    LLC line out and recalls the L1 copies — the mechanism behind the
//    FullCoh degradation in paper Fig. 6/7b);
//  * non-coherent lines are never tracked (the mechanism behind RaCCD's
//    capacity relief);
//  * `excl != kNoCore` means that core holds the line in E or M (the silent
//    E->M upgrade means the directory cannot distinguish them and must probe).
//
// The bank supports ADR resizing (paper §III-D): only `active_sets` sets are
// powered; resizing re-indexes surviving entries and reports the ones that no
// longer fit so the fabric can recall them.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/cache/replacement.hpp"
#include "raccd/common/flat_map.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

struct DirEntry {
  LineAddr line = 0;
  bool valid = false;
  std::uint64_t sharers = 0;   ///< bitmask of cores that may hold the line
  CoreId excl = kNoCore;       ///< core holding E/M, or kNoCore
};

struct DirGeometry {
  std::uint32_t entries_per_bank = 32768;
  std::uint32_t ways = 8;
  std::uint32_t bank_bits = 4;  ///< log2(bank count)
  ReplPolicy repl = ReplPolicy::kTreePlru;
};

class DirectoryBank {
 public:
  explicit DirectoryBank(const DirGeometry& geo);

  [[nodiscard]] std::uint32_t set_of(LineAddr line) const noexcept {
    return static_cast<std::uint32_t>(line >> bank_bits_) & (active_sets_ - 1);
  }

  [[nodiscard]] DirEntry* find(LineAddr line) noexcept;
  [[nodiscard]] const DirEntry* find(LineAddr line) const noexcept;
  void touch(const DirEntry& e) noexcept;

  /// True if a fill of `line` would not displace a valid entry.
  [[nodiscard]] bool has_free_way(LineAddr line) const noexcept;
  /// The valid entry a fill of `line` would displace ({} if a way is free).
  [[nodiscard]] DirEntry peek_victim(LineAddr line) noexcept;
  /// Allocate an entry for `line`; a way must be free (caller evicted the
  /// victim via the recall procedure first).
  DirEntry& alloc(LineAddr line);
  /// Remove the entry for `line` if present; returns true if it existed.
  bool remove(LineAddr line) noexcept;

  // -- ADR support ------------------------------------------------------------
  /// Power the bank down/up to `new_active_sets` (power of two within
  /// [min_sets, total sets]). Surviving entries are re-indexed; entries that
  /// exceed the new set's associativity are returned for the caller to
  /// recall. Returns the number of entries moved (reconfiguration cost).
  std::uint32_t resize(std::uint32_t new_active_sets, std::vector<DirEntry>& displaced);

  /// Visit every valid entry (checker scans, tests).
  template <typename F>
  void for_each_valid(F&& f) const {
    for (const auto& e : entries_) {
      if (e.valid) f(e);
    }
  }

  [[nodiscard]] std::uint32_t total_sets() const noexcept { return total_sets_; }
  [[nodiscard]] std::uint32_t active_sets() const noexcept { return active_sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint32_t active_entries() const noexcept { return active_sets_ * ways_; }
  [[nodiscard]] std::uint32_t valid_entries() const noexcept { return valid_count_; }

  // -- Time-weighted occupancy (paper Fig. 8) ----------------------------------
  /// Must be called with the current time *before* any occupancy change and
  /// once at end of simulation.
  void occupancy_tick(Cycle now) noexcept;
  [[nodiscard]] double occupancy_integral() const noexcept { return occupancy_integral_; }
  /// Time-weighted integral of the active (powered) entry count, for ADR
  /// energy accounting.
  [[nodiscard]] double active_integral() const noexcept { return active_integral_; }

 private:
  /// Sentinel in the SoA tag array marking an invalid entry (real line
  /// numbers are paddr >> 6, far below 2^64-1).
  static constexpr LineAddr kNoTag = ~LineAddr{0};

  [[nodiscard]] DirEntry& at(std::uint32_t set, std::uint32_t way) noexcept {
    return entries_[static_cast<std::size_t>(set) * ways_ + way];
  }
  void set_tag(std::uint32_t set, std::uint32_t way, LineAddr tag) noexcept {
    tags_[static_cast<std::size_t>(set) * ways_ + way] = tag;
  }

  std::uint32_t total_sets_;
  std::uint32_t active_sets_;
  std::uint32_t ways_;
  std::uint32_t bank_bits_;
  bool legacy_;  ///< RACCD_LEGACY_STRUCTURES: probe the AoS structs instead
  ReplPolicy repl_policy_;
  std::vector<DirEntry> entries_;
  /// SoA mirror of (valid, line); find() scans this contiguous vector.
  std::vector<LineAddr> tags_;
  ReplacementState repl_;
  std::uint32_t valid_count_ = 0;
  Cycle last_tick_ = 0;
  double occupancy_integral_ = 0.0;
  double active_integral_ = 0.0;
};

}  // namespace raccd
