// Sweep the directory size for one application across the three system types
// and print how execution time, LLC hit rate and directory pressure react —
// a single-app view of the paper's Fig. 6/7 experiment.
//
// Usage: directory_sweep [app] (default jacobi; any of the nine paper apps)
#include <cstdio>
#include <string>

#include "raccd/common/format.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/table.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "jacobi";

  std::vector<RunSpec> specs;
  for (const CohMode mode : kAllModes) {
    for (const std::uint32_t ratio : kDirRatios) {
      RunSpec s;
      s.app = app;
      s.size = SizeClass::kSmall;
      s.mode = mode;
      s.dir_ratio = ratio;
      specs.push_back(s);
    }
  }
  std::printf("sweeping %zu configurations of '%s' (this runs and verifies each)...\n",
              specs.size(), app.c_str());
  const auto results = run_all(specs);

  const Cycle base = results[0].cycles;  // FullCoh 1:1
  TextTable table({"system", "dir", "norm.cycles", "LLC hit%", "dir accesses",
                   "NoC flit-hops", "dir energy (nJ)"});
  std::size_t i = 0;
  for (const CohMode mode : kAllModes) {
    if (mode != CohMode::kFullCoh) table.add_separator();
    for (const std::uint32_t ratio : kDirRatios) {
      const SimStats& s = results[i++];
      table.add_row({to_string(mode), strprintf("1:%u", ratio),
                     strprintf("%.3f", static_cast<double>(s.cycles) / base),
                     strprintf("%.1f", 100.0 * s.llc_hit_ratio()),
                     format_count(s.fabric.dir_accesses),
                     format_count(s.noc.total_flit_hops()),
                     strprintf("%.1f", s.dir_dyn_energy_pj / 1e3)});
      (void)mode;
    }
  }
  table.print();
  return 0;
}
