// Paper Fig. 7c: NoC traffic (flit-hops) by directory size, normalized to
// the FullCoh 1:1 configuration of each benchmark.
//
// Paper reference points: at 1:256 traffic grows +91% under FullCoh but only
// +19% under PT and +15% under RaCCD (each vs its own 1:1); KNN barely moves
// except FullCoh 1:256 (+39%).
#include "bench_common.hpp"

using namespace raccd;
using namespace raccd::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const PaperGrid g = run_grid(opts);
  print_figure(
      g, "Fig. 7c — NoC traffic in flit-hops (normalized to FullCoh 1:1)",
      "normalized NoC flit-hops",
      [](const SimStats& s, const SimStats& base) {
        return metric_value(s, "noc.flit_hops") /
               metric_value(base, "noc.flit_hops");
      },
      "results/fig07c_noc_traffic.csv");
  std::printf("paper: growth 1:1 -> 1:256 is +91%% (FullCoh), +19%% (PT), +15%% (RaCCD)\n");
  return 0;
}
