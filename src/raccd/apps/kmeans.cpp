// Kmeans: k-means clustering (paper Table II: 150000 points, 30 dims,
// 6 clusters, 3 iterations).
//
// Each iteration: assignment tasks over point blocks (in: points block +
// centroids; out: labels block + a private partial-sum slot) followed by a
// fan-in-8 merge tree and a centroid-update task. Partial slots hold
// k*(dims+1) floats: per-cluster coordinate sums plus a count (stored as
// float — exact below 2^24). The many small tasks whose NC lines are flushed
// at task end make Kmeans the paper's recovery-cost outlier (Fig. 6/9).
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

constexpr std::uint32_t kFanIn = 8;

struct KmeansParams {
  std::uint32_t points;
  std::uint32_t dims;
  std::uint32_t clusters;
  std::uint32_t iters;
  std::uint32_t blocks;
};

[[nodiscard]] KmeansParams params_for(const AppConfig& cfg) {
  KmeansParams p{32768, 16, 6, 3, 32};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {512, 8, 4, 2, 8}; break;
    case SizeClass::kSmall: p = {32768, 16, 6, 3, 32}; break;
    case SizeClass::kMedium: p = {65536, 16, 8, 3, 48}; break;
    case SizeClass::kPaper: p = {150000, 30, 6, 3, 64}; break;
    case SizeClass::kLarge: p = {300000, 30, 8, 3, 128}; break;
  }
  p.points = cfg.params.get_u32("points", p.points);
  p.dims = cfg.params.get_u32("dims", p.dims);
  p.clusters = std::min(cfg.params.get_u32("clusters", p.clusters), p.points);
  p.iters = cfg.params.get_u32("iters", p.iters);
  p.blocks = std::min(cfg.params.get_u32("blocks", p.blocks), p.points);
  return p;
}

class KmeansApp final : public App {
 public:
  explicit KmeansApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "kmeans"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("%u pts, %u dims, %u clusters, %u iters, %u blocks", p_.points,
                     p_.dims, p_.clusters, p_.iters, p_.blocks);
  }

  /// Words per partial slot: k*dims sums + k counts.
  [[nodiscard]] std::uint32_t slot_words() const noexcept {
    return p_.clusters * (p_.dims + 1);
  }
  [[nodiscard]] std::uint32_t slot_stride() const noexcept {
    return ((slot_words() * 4 + kLineBytes - 1) / kLineBytes) * kLineBytes;
  }

  void run(Machine& m) override {
    const std::uint32_t npts = p_.points, dims = p_.dims, k = p_.clusters;
    points_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(npts) * dims,
                                         "kmeans.points");
    labels_ = m.mem().alloc_array<std::int32_t>(npts, "kmeans.labels");
    centroids_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(k) * dims,
                                            "kmeans.centroids");

    std::vector<std::uint32_t> level_nodes;
    for (std::uint32_t nodes = p_.blocks; nodes > 1;
         nodes = (nodes + kFanIn - 1) / kFanIn) {
      level_nodes.push_back(nodes);
    }
    level_nodes.push_back(1);
    std::uint64_t slots = 0;
    for (const std::uint32_t nodes : level_nodes) slots += nodes;
    const std::uint32_t stride = slot_stride();
    partials_ = m.mem().alloc(slots * stride, kLineBytes, "kmeans.partials");

    init_data(m.mem());

    std::vector<VAddr> level_base;
    {
      VAddr off = partials_;
      for (const std::uint32_t nodes : level_nodes) {
        level_base.push_back(off);
        off += static_cast<VAddr>(nodes) * stride;
      }
    }

    const VAddr pts = points_, lbl = labels_, cen = centroids_;
    const std::uint32_t words = slot_words();
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
        const auto i0 = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(blk) * npts) / p_.blocks);
        const auto i1 = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(blk + 1) * npts) / p_.blocks);
        const VAddr out = level_base[0] + static_cast<VAddr>(blk) * stride;
        TaskDesc t;
        t.name = strprintf("assign(i%u,b%u)", iter, blk);
        t.deps = {
            DepSpec{pts + static_cast<VAddr>(i0) * dims * 4,
                    static_cast<std::uint64_t>(i1 - i0) * dims * 4, DepKind::kIn},
            DepSpec{cen, static_cast<std::uint64_t>(k) * dims * 4, DepKind::kIn},
            DepSpec{lbl + static_cast<VAddr>(i0) * 4,
                    static_cast<std::uint64_t>(i1 - i0) * 4, DepKind::kOut},
            DepSpec{out, stride, DepKind::kOut},
        };
        t.body = [pts, lbl, cen, out, i0, i1, dims, k](TaskContext& ctx) {
          std::vector<float> cent(static_cast<std::size_t>(k) * dims);
          for (std::uint32_t w = 0; w < k * dims; ++w) {
            cent[w] = ctx.load<float>(cen + static_cast<VAddr>(w) * 4);
          }
          std::vector<float> sums(static_cast<std::size_t>(k) * dims, 0.0f);
          std::vector<float> counts(k, 0.0f);
          std::vector<float> pt(dims);
          for (std::uint32_t i = i0; i < i1; ++i) {
            for (std::uint32_t d = 0; d < dims; ++d) {
              pt[d] = ctx.load<float>(pts + (static_cast<VAddr>(i) * dims + d) * 4);
            }
            std::uint32_t best = 0;
            float best_d2 = 0.0f;
            for (std::uint32_t c = 0; c < k; ++c) {
              float d2 = 0.0f;
              for (std::uint32_t d = 0; d < dims; ++d) {
                const float diff = pt[d] - cent[static_cast<std::size_t>(c) * dims + d];
                d2 += diff * diff;
              }
              ctx.compute(2 * dims);
              if (c == 0 || d2 < best_d2) {
                best_d2 = d2;
                best = c;
              }
            }
            ctx.store<std::int32_t>(lbl + static_cast<VAddr>(i) * 4,
                                    static_cast<std::int32_t>(best));
            for (std::uint32_t d = 0; d < dims; ++d) {
              sums[static_cast<std::size_t>(best) * dims + d] += pt[d];
            }
            counts[best] += 1.0f;
          }
          for (std::uint32_t w = 0; w < k * dims; ++w) {
            ctx.store<float>(out + static_cast<VAddr>(w) * 4, sums[w]);
          }
          for (std::uint32_t c = 0; c < k; ++c) {
            ctx.store<float>(out + (static_cast<VAddr>(k) * dims + c) * 4, counts[c]);
          }
        };
        m.spawn(std::move(t));
      }
      for (std::size_t lvl = 1; lvl < level_nodes.size(); ++lvl) {
        const std::uint32_t parents = level_nodes[lvl];
        const std::uint32_t children = level_nodes[lvl - 1];
        for (std::uint32_t pnode = 0; pnode < parents; ++pnode) {
          const std::uint32_t c0 = pnode * kFanIn;
          const std::uint32_t c1 = std::min(children, c0 + kFanIn);
          const VAddr out = level_base[lvl] + static_cast<VAddr>(pnode) * stride;
          const VAddr child_base = level_base[lvl - 1];
          TaskDesc t;
          t.name = strprintf("kmerge(i%u,l%zu,%u)", iter, lvl, pnode);
          t.deps = {DepSpec{child_base + static_cast<VAddr>(c0) * stride,
                            static_cast<std::uint64_t>(c1 - c0) * stride, DepKind::kIn},
                    DepSpec{out, stride, DepKind::kOut}};
          t.body = [child_base, c0, c1, out, words, stride](TaskContext& ctx) {
            std::vector<float> acc(words, 0.0f);
            for (std::uint32_t ch = c0; ch < c1; ++ch) {
              const VAddr base = child_base + static_cast<VAddr>(ch) * stride;
              for (std::uint32_t w = 0; w < words; ++w) {
                acc[w] += ctx.load<float>(base + static_cast<VAddr>(w) * 4);
                ctx.compute(1);
              }
            }
            for (std::uint32_t w = 0; w < words; ++w) {
              ctx.store<float>(out + static_cast<VAddr>(w) * 4, acc[w]);
            }
          };
          m.spawn(std::move(t));
        }
      }
      const VAddr root = level_base.back();
      TaskDesc t;
      t.name = strprintf("update(i%u)", iter);
      t.deps = {DepSpec{root, stride, DepKind::kIn},
                DepSpec{cen, static_cast<std::uint64_t>(k) * dims * 4, DepKind::kInout}};
      t.body = [root, cen, k, dims](TaskContext& ctx) {
        for (std::uint32_t c = 0; c < k; ++c) {
          const float count =
              ctx.load<float>(root + (static_cast<VAddr>(k) * dims + c) * 4);
          for (std::uint32_t d = 0; d < dims; ++d) {
            const float sum =
                ctx.load<float>(root + (static_cast<VAddr>(c) * dims + d) * 4);
            ctx.compute(2);
            if (count > 0.0f) {
              ctx.store<float>(cen + (static_cast<VAddr>(c) * dims + d) * 4, sum / count);
            }
          }
        }
      };
      m.spawn(std::move(t));
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    const std::uint32_t npts = p_.points, dims = p_.dims, k = p_.clusters;
    std::vector<float> pts(static_cast<std::size_t>(npts) * dims);
    m.mem().copy_out(points_, pts.data(), pts.size() * 4);
    std::vector<float> cent(static_cast<std::size_t>(k) * dims);
    for (std::uint32_t w = 0; w < k * dims; ++w) cent[w] = pts[w];  // first k points

    std::vector<std::int32_t> ref_labels(npts, -1);
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      // Mirror the blocked float accumulation exactly: per block, then the
      // fan-in-8 tree order equals left-to-right addition over blocks.
      std::vector<std::vector<float>> block_acc(
          p_.blocks, std::vector<float>(static_cast<std::size_t>(k) * (dims + 1), 0.0f));
      for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
        const auto i0 = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(blk) * npts) / p_.blocks);
        const auto i1 = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(blk + 1) * npts) / p_.blocks);
        auto& acc = block_acc[blk];
        for (std::uint32_t i = i0; i < i1; ++i) {
          std::uint32_t best = 0;
          float best_d2 = 0.0f;
          for (std::uint32_t c = 0; c < k; ++c) {
            float d2 = 0.0f;
            for (std::uint32_t d = 0; d < dims; ++d) {
              const float diff = pts[static_cast<std::size_t>(i) * dims + d] -
                                 cent[static_cast<std::size_t>(c) * dims + d];
              d2 += diff * diff;
            }
            if (c == 0 || d2 < best_d2) {
              best_d2 = d2;
              best = c;
            }
          }
          ref_labels[i] = static_cast<std::int32_t>(best);
          for (std::uint32_t d = 0; d < dims; ++d) {
            acc[static_cast<std::size_t>(best) * dims + d] +=
                pts[static_cast<std::size_t>(i) * dims + d];
          }
          acc[static_cast<std::size_t>(k) * dims + best] += 1.0f;
        }
      }
      // Fan-in-8 tree reduction, mirroring task order.
      std::vector<std::vector<float>> level = std::move(block_acc);
      while (level.size() > 1) {
        std::vector<std::vector<float>> next;
        for (std::size_t p0 = 0; p0 < level.size(); p0 += kFanIn) {
          std::vector<float> acc(static_cast<std::size_t>(k) * (dims + 1), 0.0f);
          for (std::size_t ch = p0; ch < std::min(level.size(), p0 + kFanIn); ++ch) {
            for (std::size_t w = 0; w < acc.size(); ++w) acc[w] += level[ch][w];
          }
          next.push_back(std::move(acc));
        }
        level = std::move(next);
      }
      const auto& root = level[0];
      for (std::uint32_t c = 0; c < k; ++c) {
        const float count = root[static_cast<std::size_t>(k) * dims + c];
        if (count > 0.0f) {
          for (std::uint32_t d = 0; d < dims; ++d) {
            cent[static_cast<std::size_t>(c) * dims + d] =
                root[static_cast<std::size_t>(c) * dims + d] / count;
          }
        }
      }
    }

    std::vector<float> got_cent(static_cast<std::size_t>(k) * dims);
    m.mem().copy_out(centroids_, got_cent.data(), got_cent.size() * 4);
    for (std::size_t w = 0; w < got_cent.size(); ++w) {
      if (got_cent[w] != cent[w]) {
        return strprintf("kmeans centroid word %zu: got %g want %g", w,
                         static_cast<double>(got_cent[w]), static_cast<double>(cent[w]));
      }
    }
    std::vector<std::int32_t> got_labels(npts);
    m.mem().copy_out(labels_, got_labels.data(), got_labels.size() * 4);
    for (std::uint32_t i = 0; i < npts; ++i) {
      if (got_labels[i] != ref_labels[i]) {
        return strprintf("kmeans label %u: got %d want %d", i, got_labels[i],
                         ref_labels[i]);
      }
    }
    return {};
  }

 private:
  void init_data(SimMemory& mem) {
    Rng rng(seed_);
    const std::uint32_t npts = p_.points, dims = p_.dims, k = p_.clusters;
    for (std::uint32_t i = 0; i < npts; ++i) {
      const auto blob = static_cast<std::uint32_t>(rng.next_below(k));
      for (std::uint32_t d = 0; d < dims; ++d) {
        const float center = static_cast<float>(blob * 10 + d % 3);
        mem.write<float>(points_ + (static_cast<VAddr>(i) * dims + d) * 4,
                         center + rng.next_float(-1.0f, 1.0f));
      }
    }
    for (std::uint32_t w = 0; w < k * dims; ++w) {
      mem.write<float>(centroids_ + static_cast<VAddr>(w) * 4,
                       mem.read<float>(points_ + static_cast<VAddr>(w) * 4));
    }
  }

  KmeansParams p_;
  std::uint64_t seed_;
  VAddr points_ = 0, labels_ = 0, centroids_ = 0, partials_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "kmeans",
    "k-means clustering with blocked assignment and a merge tree of partials",
    "paper",
    ParamSchema()
        .add_int("points", 32768, "points to cluster", 16, 1000000)
        .add_int("dims", 16, "dimensions per point", 1, 128)
        .add_int("clusters", 6, "clusters k (clamped to points)", 2, 64)
        .add_int("iters", 3, "Lloyd iterations", 1, 64)
        .add_int("blocks", 32, "point blocks (clamped to points)", 1, 4096),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<KmeansApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
