#include "raccd/metrics/diff.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "raccd/common/format.hpp"
#include "raccd/metrics/metric_schema.hpp"

namespace raccd {
namespace {

// Minimal recursive-descent JSON reader for the object-of-objects-of-numbers
// shape our emitters write. Tolerant of whitespace and of values we don't
// need (arrays / nested objects are skipped structurally).
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool fail(const std::string& msg) {
    if (error.empty()) error = strprintf("%s at offset %zu", msg.c_str(), pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  [[nodiscard]] bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      return fail(strprintf("expected '%c'", c));
    }
    ++pos;
    return true;
  }
  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char e = text[pos++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // \uXXXX: decode latin-1 range, else keep a placeholder.
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            const unsigned v = static_cast<unsigned>(
                std::strtoul(std::string(text.substr(pos, 4)).c_str(), nullptr, 16));
            pos += 4;
            c = v < 0x100 ? static_cast<char>(v) : '?';
            break;
          }
          default: c = e;
        }
      }
      out += c;
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  [[nodiscard]] bool parse_number(double& out) {
    skip_ws();
    // strtod needs NUL termination the view cannot promise: copy the bounded
    // numeric token (JSON numbers are short) into a local buffer first.
    char buf[48];
    std::size_t n = 0;
    while (pos + n < text.size() && n + 1 < sizeof buf) {
      const char c = text[pos + n];
      const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                           c == '.' || c == 'e' || c == 'E';
      if (!numeric) break;
      buf[n++] = c;
    }
    buf[n] = '\0';
    char* end = nullptr;
    out = std::strtod(buf, &end);
    if (end == buf) return fail("expected a number");
    pos += static_cast<std::size_t>(end - buf);
    return true;
  }

  /// Skip any JSON value (used for nested structures we don't collect).
  [[nodiscard]] bool skip_value() {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos;
      skip_ws();
      if (peek_is(close)) {
        ++pos;
        return true;
      }
      for (;;) {
        if (c == '{') {
          std::string ignored;
          if (!parse_string(ignored) || !expect(':')) return false;
        }
        if (!skip_value()) return false;
        skip_ws();
        if (peek_is(',')) {
          ++pos;
          continue;
        }
        return expect(close);
      }
    }
    if (text.compare(pos, 4, "true") == 0) { pos += 4; return true; }
    if (text.compare(pos, 5, "false") == 0) { pos += 5; return true; }
    if (text.compare(pos, 4, "null") == 0) { pos += 4; return true; }
    double ignored = 0;
    return parse_number(ignored);
  }

  [[nodiscard]] bool parse_metric_map(MetricMap& out) {
    if (!expect('{')) return false;
    if (peek_is('}')) { ++pos; return true; }
    for (;;) {
      std::string name;
      if (!parse_string(name) || !expect(':')) return false;
      skip_ws();
      if (text.compare(pos, 4, "null") == 0) {
        pos += 4;
        out[name] = std::numeric_limits<double>::quiet_NaN();
      } else if (peek_is('{') || peek_is('[') || peek_is('"')) {
        if (!skip_value()) return false;  // non-numeric field: ignore
      } else if (text.compare(pos, 4, "true") == 0) {
        pos += 4;
        out[name] = 1.0;
      } else if (text.compare(pos, 5, "false") == 0) {
        pos += 5;
        out[name] = 0.0;
      } else {
        double v = 0;
        if (!parse_number(v)) return false;
        out[name] = v;
      }
      if (peek_is(',')) { ++pos; continue; }
      return expect('}');
    }
  }
};

[[nodiscard]] double tolerance_pct_for(const std::string& key,
                                       const DiffTolerances& tol, bool& absolute,
                                       double& abs_band) {
  absolute = false;
  abs_band = 0.0;
  const MetricDesc* m = MetricSchema::instance().find(key);
  if (m == nullptr) return tol.default_pct;
  switch (m->kind) {
    case MetricKind::kCounter: return tol.counter_pct;
    case MetricKind::kCycles: return tol.cycles_pct;
    case MetricKind::kEnergy: return tol.energy_pct;
    case MetricKind::kRatio:
      absolute = true;
      abs_band = tol.ratio_abs;
      return 0.0;
    case MetricKind::kDistribution: return tol.cycles_pct;  // latency summaries
  }
  return tol.default_pct;
}

}  // namespace

std::string parse_bench_json(std::string_view text, BenchLog& out) {
  out.clear();
  Parser p{text, 0, {}};
  if (!p.expect('{')) return p.error;
  if (p.peek_is('}')) return "";
  for (;;) {
    std::string key;
    if (!p.parse_string(key) || !p.expect(':')) return p.error;
    MetricMap metrics;
    if (!p.parse_metric_map(metrics)) return p.error;
    out[key] = std::move(metrics);
    if (p.peek_is(',')) { ++p.pos; continue; }
    if (!p.expect('}')) return p.error;
    return "";
  }
}

std::string load_bench_json(const std::string& path, BenchLog& out) {
  std::ifstream in(path);
  if (!in) return strprintf("cannot open %s", path.c_str());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::string err = parse_bench_json(text, out);
  if (!err.empty()) return strprintf("%s: %s", path.c_str(), err.c_str());
  return "";
}

BenchDiff diff_bench_logs(const BenchLog& base, const BenchLog& cand,
                          const DiffTolerances& tol) {
  BenchDiff d;
  for (const auto& [key, base_metrics] : base) {
    // Double-underscore entries (__profile__) carry host-side telemetry —
    // nondeterministic by nature, never part of the gate.
    if (key.rfind("__", 0) == 0) continue;
    const auto cit = cand.find(key);
    if (cit == cand.end()) {
      d.only_in_base.push_back(key);
      continue;
    }
    ++d.keys_compared;
    for (const auto& [metric, bval] : base_metrics) {
      const auto mit = cit->second.find(metric);
      DiffEntry e{key, metric, bval, 0.0, 0.0, false};
      if (mit == cit->second.end()) {
        // Candidate dropped a metric the baseline had: schema shrank.
        e.cand = std::numeric_limits<double>::quiet_NaN();
        e.out_of_tolerance = true;
        d.exceeded.push_back(std::move(e));
        continue;
      }
      ++d.metrics_compared;
      e.cand = mit->second;
      const bool bnan = std::isnan(bval), cnan = std::isnan(e.cand);
      if (bnan || cnan) {
        e.out_of_tolerance = bnan != cnan;  // null vs value is a change
      } else {
        e.delta_pct = bval == 0.0
                          ? (e.cand == 0.0 ? 0.0 : std::numeric_limits<double>::infinity())
                          : 100.0 * (e.cand - bval) / bval;
        bool absolute = false;
        double abs_band = 0.0;
        const double pct = tolerance_pct_for(metric, tol, absolute, abs_band);
        // CI-aware widening: a sampled run publishes `<metric>_ci95` beside
        // the metric it prices — the statistical half-width joins the band,
        // so extrapolation noise inside the reported CI never fails a gate.
        double ci = 0.0;
        const std::string ci_key = metric + "_ci95";
        if (const auto bci = base_metrics.find(ci_key);
            bci != base_metrics.end() && !std::isnan(bci->second)) {
          ci = std::max(ci, bci->second);
        }
        if (const auto cci = cit->second.find(ci_key);
            cci != cit->second.end() && !std::isnan(cci->second)) {
          ci = std::max(ci, cci->second);
        }
        if (absolute) {
          e.out_of_tolerance = std::fabs(e.cand - bval) > std::max(abs_band, ci);
        } else {
          const double band = std::max(std::fabs(bval) * pct / 100.0, ci);
          e.out_of_tolerance = std::fabs(e.cand - bval) > band;
        }
      }
      if (e.out_of_tolerance) d.exceeded.push_back(std::move(e));
    }
  }
  for (const auto& [key, metrics] : cand) {
    (void)metrics;
    if (key.rfind("__", 0) == 0) continue;
    if (base.find(key) == base.end()) d.only_in_candidate.push_back(key);
  }
  return d;
}

std::string BenchDiff::report(bool markdown) const {
  std::string out;
  const bool ok = regressions() == 0;
  if (markdown) {
    out += strprintf("%s **perf gate %s** — %zu spec keys, %zu metrics compared, "
                     "%zu out of tolerance, %zu baseline keys missing, %zu new keys\n\n",
                     ok ? "✅" : "❌", ok ? "PASS" : "FAIL", keys_compared,
                     metrics_compared, exceeded.size(), only_in_base.size(),
                     only_in_candidate.size());
  } else {
    out += strprintf("perf gate %s: %zu spec keys, %zu metrics compared, %zu out of "
                     "tolerance, %zu baseline keys missing, %zu new keys\n",
                     ok ? "PASS" : "FAIL", keys_compared, metrics_compared,
                     exceeded.size(), only_in_base.size(), only_in_candidate.size());
  }
  if (!exceeded.empty()) {
    if (markdown) {
      out += "| spec | metric | baseline | candidate | delta |\n|---|---|---|---|---|\n";
      for (const DiffEntry& e : exceeded) {
        out += strprintf("| `%s` | %s | %g | %g | %+.3f%% |\n", e.key.c_str(),
                         e.metric.c_str(), e.base, e.cand, e.delta_pct);
      }
    } else {
      for (const DiffEntry& e : exceeded) {
        out += strprintf("  %-70s %-28s %14g -> %14g (%+.3f%%)\n", e.key.c_str(),
                         e.metric.c_str(), e.base, e.cand, e.delta_pct);
      }
    }
  }
  for (const std::string& k : only_in_base) {
    out += strprintf(markdown ? "- missing from candidate: `%s`\n"
                              : "  missing from candidate: %s\n",
                     k.c_str());
  }
  for (const std::string& k : only_in_candidate) {
    out += strprintf(markdown ? "- new in candidate: `%s`\n"
                              : "  new in candidate: %s\n",
                     k.c_str());
  }
  return out;
}

}  // namespace raccd
