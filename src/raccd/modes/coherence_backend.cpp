#include "raccd/modes/coherence_backend.hpp"

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/modes/fullcoh_backend.hpp"
#include "raccd/modes/pt_backend.hpp"
#include "raccd/modes/raccd_backend.hpp"
#include "raccd/modes/wbnc_backend.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"

namespace raccd {

Cycle CoherenceBackend::on_task_start(CoreId c, const TaskNode& node, Cycle now) {
  (void)c;
  (void)node;
  (void)now;
  return 0;
}

TaskEndOutcome CoherenceBackend::on_task_end(CoreId c, Cycle now) {
  (void)c;
  (void)now;
  return {};
}

void CoherenceBackend::accumulate(SimStats& s) const { (void)s; }

std::unique_ptr<CoherenceBackend> make_backend(const BackendContext& ctx) {
  switch (ctx.cfg.mode) {
    case CohMode::kFullCoh: return std::make_unique<FullCohBackend>(ctx);
    case CohMode::kPT: return std::make_unique<PtBackend>(ctx);
    case CohMode::kRaCCD: return std::make_unique<RaccdBackend>(ctx);
    case CohMode::kWbNC: return std::make_unique<WbNcBackend>(ctx);
  }
  RACCD_ASSERT(false, "unknown coherence mode");
  return nullptr;
}

namespace {

void raccd_print_config_extra(const SimConfig& cfg, std::FILE* out) {
  std::fprintf(out, "  NCRT: %u entries/core, %u-cycle lookup | ADR: %s\n",
               cfg.raccd.ncrt_entries,
               static_cast<unsigned>(cfg.timing.ncrt_lookup_cycles),
               cfg.adr.enabled ? "on" : "off");
}

void raccd_print_report_extra(const SimStats& s, std::FILE* out) {
  std::fprintf(out, " register=%s invalidate=%s (flushed %llu lines, %llu WBs)",
               format_count(s.register_cycles).c_str(),
               format_count(s.invalidate_cycles).c_str(),
               static_cast<unsigned long long>(s.flushed_nc_lines),
               static_cast<unsigned long long>(s.flushed_nc_wbs));
}

void wbnc_print_config_extra(const SimConfig& cfg, std::FILE* out) {
  std::fprintf(out, "  software coherence: whole-L1 writeback flush at task end "
                    "(%u-cycle call)\n",
               static_cast<unsigned>(cfg.timing.swcoh_flush_call_cycles));
}

void wbnc_print_report_extra(const SimStats& s, std::FILE* out) {
  std::fprintf(out, " flush=%s (flushed %llu lines, %llu WBs)",
               format_count(s.invalidate_cycles).c_str(),
               static_cast<unsigned long long>(s.flushed_nc_lines),
               static_cast<unsigned long long>(s.flushed_nc_wbs));
}

constexpr std::array<ModeTraits, kAllBackends.size()> kModeTraits{{
    {CohMode::kFullCoh, nullptr, nullptr},
    {CohMode::kPT, nullptr, nullptr},
    {CohMode::kRaCCD, &raccd_print_config_extra, &raccd_print_report_extra},
    {CohMode::kWbNC, &wbnc_print_config_extra, &wbnc_print_report_extra},
}};

}  // namespace

const ModeTraits& mode_traits(CohMode m) noexcept {
  const auto idx = static_cast<std::size_t>(m);
  if (idx >= kModeTraits.size()) {
    // Out-of-range values can arrive from deserialized stats (corrupt or
    // future-version cache files); print nothing mode-specific, like the
    // pre-registry switch did for unknown modes.
    static constexpr ModeTraits kUnknown{};
    return kUnknown;
  }
  RACCD_DEBUG_ASSERT(kModeTraits[idx].mode == m,
                     "mode traits table out of sync with CohMode");
  return kModeTraits[idx];
}

}  // namespace raccd
