// Flat-structure equivalence suite: the hot-path structure swaps behind
// bench/throughput (PagedLineMap, OpenPageMap, SoA tag probes, sorted+memo
// NCRT) are host-side optimizations only — the modelled machine must be
// bit-for-bit unchanged. Three layers of insurance:
//
//  1. Unit tests of the new containers against their reference semantics
//     (default-zero line map, open addressing with backward-shift deletion).
//  2. Structure-level A/B: legacy and flat L1/LLC/directory/NCRT instances
//     driven through identical operation sequences must agree on every
//     observable (find results, victims, stats counters), including across
//     directory resize.
//  3. End-to-end golden: run_all over a tiny spec grid (both workload
//     families, both systems, both topologies, both DRAM models) with the
//     legacy structures and with the flat ones; stats_to_text must be
//     byte-identical. Plus the pinned default cache key, so warm sweep
//     caches stay valid (kStatsFormatVersion not bumped).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "raccd/cache/l1_cache.hpp"
#include "raccd/cache/llc_bank.hpp"
#include "raccd/coherence/directory.hpp"
#include "raccd/common/flat_map.hpp"
#include "raccd/common/rng.hpp"
#include "raccd/core/ncrt.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/sweep_cache.hpp"

namespace raccd {
namespace {

/// RAII guard: run a scope under the given structures, restore after.
class LegacyScope {
 public:
  explicit LegacyScope(bool legacy) : prev_(legacy_structures()) {
    set_legacy_structures(legacy);
  }
  ~LegacyScope() { set_legacy_structures(prev_); }

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// PagedLineMap

TEST(PagedLineMap, DefaultZeroWithoutAllocation) {
  PagedLineMap m;
  EXPECT_EQ(m.get(0), 0u);
  EXPECT_EQ(m.get(123456789), 0u);
  EXPECT_EQ(m.allocated_chunks(), 0u);  // get() never commits storage
}

TEST(PagedLineMap, SetGetRoundTripAndChunkGrowth) {
  PagedLineMap m;
  m.reserve_lines(1 << 20);
  m.set(0, 7);
  m.set(PagedLineMap::kChunkLines - 1, 8);  // last slot of chunk 0
  m.set(PagedLineMap::kChunkLines, 9);      // first slot of chunk 1
  m.set((1ull << 30), 10);                  // far past the reserve hint
  EXPECT_EQ(m.get(0), 7u);
  EXPECT_EQ(m.get(PagedLineMap::kChunkLines - 1), 8u);
  EXPECT_EQ(m.get(PagedLineMap::kChunkLines), 9u);
  EXPECT_EQ(m.get(1ull << 30), 10u);
  EXPECT_EQ(m.get(1), 0u);  // untouched neighbors stay zero
  EXPECT_EQ(m.allocated_chunks(), 3u);
  m.set(0, 0);  // storing zero is a store, not an erase
  EXPECT_EQ(m.get(0), 0u);
  EXPECT_EQ(m.allocated_chunks(), 3u);
}

TEST(PagedLineMap, MatchesHashMapUnderRandomTraffic) {
  PagedLineMap flat;
  std::unordered_map<LineAddr, std::uint64_t> ref;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const LineAddr line = rng.next_below(1 << 16);
    if (rng.next_below(2) == 0) {
      const std::uint64_t v = rng.next_below(1 << 20);
      flat.set(line, v);
      ref[line] = v;
    } else {
      const auto it = ref.find(line);
      EXPECT_EQ(flat.get(line), it == ref.end() ? 0u : it->second);
    }
  }
}

// ---------------------------------------------------------------------------
// OpenPageMap

TEST(OpenPageMap, InsertFindEraseClear) {
  OpenPageMap m(64);
  EXPECT_GE(m.capacity(), 256u);  // <= 25% load factor
  EXPECT_EQ(m.find(5), nullptr);
  m.insert(5, 50);
  m.insert(6, 60);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), 50u);
  EXPECT_EQ(*m.find(6), 60u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_EQ(m.find(5), nullptr);
  EXPECT_EQ(*m.find(6), 60u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(6), nullptr);
}

TEST(OpenPageMap, BackwardShiftKeepsCollidedKeysFindable) {
  // Erase keys out of the middle of long probe runs under colliding traffic;
  // backward-shift deletion must keep every surviving key reachable.
  OpenPageMap m(128);
  std::unordered_map<PageNum, std::uint32_t> ref;
  Rng rng(12);
  for (int i = 0; i < 40000; ++i) {
    // Small key range forces home-slot collisions and multi-slot probe runs.
    const PageNum key = rng.next_below(192);
    if (ref.size() < 128 && rng.next_below(3) != 0) {
      if (ref.find(key) == ref.end()) {
        const std::uint32_t v = static_cast<std::uint32_t>(rng.next_below(1 << 20));
        m.insert(key, v);
        ref[key] = v;
      }
    } else {
      EXPECT_EQ(m.erase(key), ref.erase(key) == 1);
    }
    const PageNum probe = rng.next_below(192);
    const auto it = ref.find(probe);
    std::uint32_t* got = m.find(probe);
    if (it == ref.end()) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, it->second);
    }
    EXPECT_EQ(m.size(), ref.size());
  }
}

// ---------------------------------------------------------------------------
// SoA tag probes vs legacy AoS scans

TEST(SoaTags, L1LegacyAndFlatAgreeUnderRandomTraffic) {
  LegacyScope scope(true);
  L1Cache legacy{L1Geometry{}};
  set_legacy_structures(false);
  L1Cache flat{L1Geometry{}};
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    const LineAddr line = rng.next_below(2048);  // 4x capacity: many conflicts
    switch (rng.next_below(3)) {
      case 0: {
        const L1Line* a = legacy.find(line);
        const L1Line* b = flat.find(line);
        ASSERT_EQ(a == nullptr, b == nullptr) << "line " << line;
        if (a != nullptr) {
          EXPECT_EQ(a->line, b->line);
          EXPECT_EQ(a->version, b->version);
        }
        break;
      }
      case 1: {
        if (legacy.find(line) == nullptr) {
          const L1Line va = legacy.fill(line, false, Mesi::kShared, false, i);
          const L1Line vb = flat.fill(line, false, Mesi::kShared, false, i);
          EXPECT_EQ(va.valid, vb.valid);
          EXPECT_EQ(va.line, vb.line);
        }
        break;
      }
      default: {
        const L1Line va = legacy.invalidate(line);
        const L1Line vb = flat.invalidate(line);
        EXPECT_EQ(va.valid, vb.valid);
        break;
      }
    }
  }
}

TEST(SoaTags, LlcLegacyAndFlatAgreeUnderRandomTraffic) {
  LlcGeometry geo;
  geo.lines_per_bank = 512;
  LegacyScope scope(true);
  LlcBank legacy{geo};
  set_legacy_structures(false);
  LlcBank flat{geo};
  Rng rng(14);
  for (int i = 0; i < 50000; ++i) {
    const LineAddr line = rng.next_below(4096) << geo.bank_bits;
    switch (rng.next_below(3)) {
      case 0: {
        const LlcLine* a = legacy.find(line);
        const LlcLine* b = flat.find(line);
        ASSERT_EQ(a == nullptr, b == nullptr) << "line " << line;
        if (a != nullptr) {
          EXPECT_EQ(a->version, b->version);
        }
        break;
      }
      case 1: {
        if (legacy.find(line) == nullptr) {
          const LlcLine va = legacy.peek_victim(line);
          const LlcLine vb = flat.peek_victim(line);
          EXPECT_EQ(va.valid, vb.valid);
          EXPECT_EQ(va.line, vb.line);
          if (va.valid) {
            legacy.invalidate(va.line);
            flat.invalidate(vb.line);
          }
          legacy.fill(line, false, false, i);
          flat.fill(line, false, false, i);
        }
        break;
      }
      default: {
        const LlcLine va = legacy.invalidate(line);
        const LlcLine vb = flat.invalidate(line);
        EXPECT_EQ(va.valid, vb.valid);
        break;
      }
    }
  }
}

TEST(SoaTags, DirectoryLegacyAndFlatAgreeAcrossResize) {
  DirGeometry geo;
  geo.entries_per_bank = 256;
  LegacyScope scope(true);
  DirectoryBank legacy{geo};
  set_legacy_structures(false);
  DirectoryBank flat{geo};
  Rng rng(15);
  auto mirror_op = [&](LineAddr line, std::uint64_t op) {
    switch (op) {
      case 0: {
        const DirEntry* a = legacy.find(line);
        const DirEntry* b = flat.find(line);
        ASSERT_EQ(a == nullptr, b == nullptr) << "line " << line;
        if (a != nullptr) {
          EXPECT_EQ(a->sharers, b->sharers);
        }
        break;
      }
      case 1: {
        if (legacy.find(line) == nullptr) {
          if (!legacy.has_free_way(line)) {
            const DirEntry va = legacy.peek_victim(line);
            const DirEntry vb = flat.peek_victim(line);
            ASSERT_TRUE(va.valid);
            EXPECT_EQ(va.line, vb.line);
            legacy.remove(va.line);
            flat.remove(vb.line);
          }
          legacy.alloc(line).sharers = line;
          flat.alloc(line).sharers = line;
        }
        break;
      }
      default: {
        EXPECT_EQ(legacy.remove(line), flat.remove(line));
        break;
      }
    }
  };
  for (int i = 0; i < 20000; ++i) {
    mirror_op(rng.next_below(2048) << geo.bank_bits, rng.next_below(3));
  }
  // Power down (displacing overfull sets identically), traffic, power up.
  for (const std::uint32_t sets : {legacy.active_sets() / 2, legacy.total_sets()}) {
    std::vector<DirEntry> da, db;
    EXPECT_EQ(legacy.resize(sets, da), flat.resize(sets, db));
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i].line, db[i].line);
    EXPECT_EQ(legacy.valid_entries(), flat.valid_entries());
    for (int i = 0; i < 20000; ++i) {
      mirror_op(rng.next_below(2048) << geo.bank_bits, rng.next_below(3));
    }
  }
}

// ---------------------------------------------------------------------------
// NCRT: sorted early-exit + memo must be stats-neutral

TEST(NcrtMemo, AgreesWithLegacyScanIncludingStats) {
  LegacyScope scope(true);
  Ncrt legacy(32);
  set_legacy_structures(false);
  Ncrt flat(32);
  Rng rng(16);
  // Insert in shuffled order (the sorted path reorders internally), then
  // interleave lookups with occasional re-register cycles, exactly the
  // frozen-between-register-and-invalidate usage the memo depends on.
  auto fill_both = [&] {
    std::vector<std::uint64_t> starts;
    for (std::uint64_t i = 0; i < 24; ++i) starts.push_back(i * 0x1000);
    for (std::size_t i = starts.size(); i > 1; --i) {
      std::swap(starts[i - 1], starts[rng.next_below(i)]);
    }
    for (const std::uint64_t s : starts) {
      EXPECT_EQ(legacy.insert(s, s + 0x800), flat.insert(s, s + 0x800));
    }
  };
  fill_both();
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 20000; ++i) {
      // Streams through regions (memo fast path) plus random probes.
      const PAddr pa = (i % 3 == 0) ? rng.next_below(24 * 0x1000)
                                    : (rng.next_below(24) * 0x1000 + (i & 0x7FF));
      EXPECT_EQ(legacy.lookup(pa), flat.lookup(pa)) << "pa " << pa;
    }
    EXPECT_EQ(legacy.stats().lookups, flat.stats().lookups);
    EXPECT_EQ(legacy.stats().hits, flat.stats().hits);
    legacy.clear();
    flat.clear();
    fill_both();
  }
  EXPECT_EQ(legacy.stats().inserts, flat.stats().inserts);
  EXPECT_EQ(legacy.stats().clears, flat.stats().clears);
}

// ---------------------------------------------------------------------------
// End-to-end golden + pinned cache key

TEST(ThroughputGolden, DefaultRunSpecKeyIsPinned) {
  // The structure swap must not perturb cache identity: warm sweep caches
  // (BENCH_baseline.json and friends) stay valid only while this exact key
  // format and kStatsFormatVersion survive.
  EXPECT_EQ(RunSpec{}.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5");
  EXPECT_EQ(kStatsFormatVersion, 5u);
}

TEST(ThroughputGolden, LegacyAndFlatStructuresBitIdenticalStats) {
  std::vector<RunSpec> specs;
  for (const char* app : {"jacobi", "synthetic"}) {
    for (const CohMode mode : {CohMode::kFullCoh, CohMode::kRaCCD}) {
      for (const char* topo : {"flat", "numa2"}) {
        RunSpec s;
        s.app = app;
        s.size = SizeClass::kTiny;
        s.mode = mode;
        s.topo = topo;
        s.dram = (mode == CohMode::kRaCCD) ? "ddr" : "simple";
        specs.push_back(s);
      }
    }
  }

  RunOptions opts;
  opts.use_cache = false;  // both sweeps must actually simulate
  opts.jobs = 2;

  std::vector<std::string> legacy_text, flat_text;
  {
    LegacyScope scope(true);
    for (const SimStats& s : run_all(specs, opts)) {
      legacy_text.push_back(stats_to_text(s));
    }
  }
  {
    LegacyScope scope(false);
    for (const SimStats& s : run_all(specs, opts)) {
      flat_text.push_back(stats_to_text(s));
    }
  }

  ASSERT_EQ(legacy_text.size(), specs.size());
  ASSERT_EQ(flat_text.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_FALSE(legacy_text[i].empty());
    EXPECT_EQ(legacy_text[i], flat_text[i]) << specs[i].key();
  }
}

}  // namespace
}  // namespace raccd
