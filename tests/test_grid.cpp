// Grid builder + ResultSet tests: cartesian expansion order, parameter
// merging, spec-addressed lookup, cache-key extensions, and the
// machine-readable emitters (CSV / JSON / cumulative BENCH_grid.json).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "raccd/harness/grid.hpp"

namespace raccd {
namespace {

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(GridBuilder, ExpandsCartesianProductInDocumentedOrder) {
  const auto specs = Grid()
                         .workloads({"jacobi", "histo"})
                         .size(SizeClass::kTiny)
                         .modes({CohMode::kPT, CohMode::kRaCCD})
                         .dir_ratios({1, 4})
                         .specs();
  ASSERT_EQ(specs.size(), 2u * 2u * 2u);
  // workload outer, then mode, then ratio (innermost).
  EXPECT_EQ(specs[0].app, "jacobi");
  EXPECT_EQ(specs[0].mode, CohMode::kPT);
  EXPECT_EQ(specs[0].dir_ratio, 1u);
  EXPECT_EQ(specs[1].dir_ratio, 4u);
  EXPECT_EQ(specs[2].mode, CohMode::kRaCCD);
  EXPECT_EQ(specs[4].app, "histo");
  for (const auto& s : specs) EXPECT_EQ(s.size, SizeClass::kTiny);
}

TEST(GridBuilder, PaperAppsAndDirRatioContainers) {
  const auto specs =
      Grid().paper_apps().modes(kAllBackends).dir_ratios(kDirRatios).specs();
  EXPECT_EQ(specs.size(), 9u * 4u * 7u);  // the paper's full grid
  EXPECT_EQ(specs.front().app, "cg");
  EXPECT_EQ(specs.back().app, "redblack");
  EXPECT_EQ(specs.back().dir_ratio, 256u);
}

TEST(GridBuilder, ParamsMergeWithPerRefPrecedence) {
  const auto specs = Grid()
                         .workload("synthetic:width=8")
                         .set("width", "32")  // per-ref value must win
                         .set("depth", "2")
                         .specs();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].params, "depth=2,width=8");
  EXPECT_EQ(specs[0].workload_ref(), "synthetic:depth=2,width=8");
}

TEST(GridBuilder, AdrBandsBecomeSpecThetas) {
  const auto specs = Grid()
                         .workload("cg")
                         .adr(true)
                         .adr_bands({{0.9, 0.1}, {0.8, 0.2}})
                         .specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_DOUBLE_EQ(specs[0].adr_theta_inc, 0.9);
  EXPECT_DOUBLE_EQ(specs[1].adr_theta_inc, 0.8);
  // Only the non-default band extends the cache key.
  EXPECT_NE(specs[0].key().find("-ti0.9"), std::string::npos);
  EXPECT_EQ(specs[1].key().find("-ti"), std::string::npos);
}

TEST(RunSpecKey, StableForDefaultsExtendedByParams) {
  RunSpec legacy;
  legacy.app = "jacobi";
  legacy.size = SizeClass::kSmall;
  legacy.mode = CohMode::kFullCoh;
  // The pre-SDK key format: params/theta extensions must not disturb it.
  EXPECT_EQ(legacy.key(), "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5");
  RunSpec with_params = legacy;
  ASSERT_EQ(with_params.set_workload_ref("jacobi:n=128"), "");
  EXPECT_EQ(with_params.key(),
            "jacobi-small-FullCoh-d1-s42-nl1-ne32-cont-fifo-v5-p{n=128}");
  EXPECT_NE(with_params.key(), legacy.key());
  // Equivalent refs in different spellings share one cache key.
  RunSpec reordered = legacy;
  ASSERT_EQ(reordered.set_workload_ref("jacobi:iters=2,n=128"), "");
  RunSpec sorted = legacy;
  ASSERT_EQ(sorted.set_workload_ref("jacobi:n=128,iters=2"), "");
  EXPECT_EQ(reordered.key(), sorted.key());
}

TEST(ResultSetTest, RunLookupAndEmitters) {
  const std::string dir = "test_grid_tmp";
  std::filesystem::remove_all(dir);
  RunOptions opts;
  opts.cache_dir = dir + "/cache";
  ResultSet rs = Grid()
                     .workload("histo")
                     .size(SizeClass::kTiny)
                     .modes({CohMode::kFullCoh, CohMode::kRaCCD})
                     .run(opts);
  ASSERT_EQ(rs.size(), 2u);
  const SimStats& full = rs.at("histo", CohMode::kFullCoh);
  const SimStats& raccd = rs.at("histo", CohMode::kRaCCD);
  EXPECT_GT(full.cycles, 0u);
  EXPECT_GT(raccd.cycles, 0u);
  EXPECT_EQ(&rs.at("histo", CohMode::kRaCCD), &rs[1]);
  EXPECT_EQ(rs.find([](const RunSpec& s) { return s.mode == CohMode::kPT; }), nullptr);
  ASSERT_NE(rs.find([](const RunSpec& s) { return s.mode == CohMode::kRaCCD; }),
            nullptr);

  // CSV: header + one row per spec, key first.
  ASSERT_TRUE(rs.write_csv(dir + "/out.csv"));
  const std::string csv = slurp(dir + "/out.csv");
  EXPECT_NE(csv.find("key,app,params"), std::string::npos);
  EXPECT_NE(csv.find(rs.spec(0).key()), std::string::npos);

  // JSON array with per-spec objects.
  ASSERT_TRUE(rs.write_json(dir + "/out.json"));
  const std::string json = slurp(dir + "/out.json");
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"mode\": \"RaCCD\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":"), std::string::npos);

  // BENCH log: cumulative merge preserves foreign keys, overwrites own.
  const std::string bench = dir + "/BENCH_grid.json";
  {
    std::ofstream seed_file(bench);
    seed_file << "{\n  \"preexisting-key\": {\"cycles\": 1}\n}\n";
  }
  ASSERT_TRUE(rs.append_bench_json(bench));
  ASSERT_TRUE(rs.append_bench_json(bench));  // idempotent re-merge
  const std::string merged = slurp(bench);
  EXPECT_NE(merged.find("\"preexisting-key\""), std::string::npos);
  EXPECT_NE(merged.find(rs.spec(0).key()), std::string::npos);
  EXPECT_NE(merged.find(rs.spec(1).key()), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ResultSetTest, BenchJsonMergeSemantics) {
  const std::string dir = "test_grid_merge_tmp";
  std::filesystem::remove_all(dir);
  RunOptions opts;
  opts.cache_dir = dir + "/cache";
  const ResultSet rs =
      Grid().workload("histo").size(SizeClass::kTiny).mode(CohMode::kRaCCD).run(opts);
  ASSERT_EQ(rs.size(), 1u);
  const std::string own_key = rs.spec(0).key();
  const std::string bench = dir + "/BENCH_grid.json";
  // Seed with a stale value under our own key plus two foreign keys that
  // sort on either side of it.
  {
    std::ofstream seed_file(bench);
    seed_file << "{\n"
              << "  \"zzz-last-key\": {\"cycles\": 2}\n"
              << "  \"" << own_key << "\": {\"cycles\": 1}\n"
              << "  \"aaa-first-key\": {\"cycles\": 3}\n"
              << "}\n";
  }
  ASSERT_TRUE(rs.append_bench_json(bench));
  const std::string merged = slurp(bench);
  // Existing key overwritten with the fresh metrics...
  EXPECT_EQ(merged.find("{\"cycles\": 1}"), std::string::npos);
  EXPECT_NE(merged.find(own_key), std::string::npos);
  // ...foreign keys preserved...
  EXPECT_NE(merged.find("\"aaa-first-key\": {\"cycles\": 3}"), std::string::npos);
  EXPECT_NE(merged.find("\"zzz-last-key\": {\"cycles\": 2}"), std::string::npos);
  // ...and keys emitted in sorted order.
  const std::size_t first = merged.find("aaa-first-key");
  const std::size_t own = merged.find(own_key);
  const std::size_t last = merged.find("zzz-last-key");
  EXPECT_LT(first, own);
  EXPECT_LT(own, last);
  // The payload carries the cross-socket traffic split.
  EXPECT_NE(merged.find("noc_cross_socket_flit_hops"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ResultSetTest, AppendConcatenates) {
  RunOptions opts;
  opts.cache_dir = "test_grid_append_tmp";
  std::filesystem::remove_all(opts.cache_dir);
  ResultSet a = Grid().workload("histo").size(SizeClass::kTiny).run(opts);
  ResultSet b =
      Grid().workload("histo").size(SizeClass::kTiny).mode(CohMode::kWbNC).run(opts);
  a.append(std::move(b));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.spec(1).mode, CohMode::kWbNC);
  EXPECT_GT(a.at("histo", CohMode::kWbNC).cycles, 0u);
  std::filesystem::remove_all(opts.cache_dir);
}

TEST(BenchOptionsSet, ParsesWorkloadParamOverrides) {
  const char* argv[] = {"bench", "--set", "width=8", "--set=depth=2,reuse=0.5"};
  const auto o = BenchOptions::parse(4, const_cast<char**>(argv));
  EXPECT_EQ(o.params.get_int("width", 0), 8);
  EXPECT_EQ(o.params.get_int("depth", 0), 2);
  EXPECT_DOUBLE_EQ(o.params.get_double("reuse", 0), 0.5);
}

}  // namespace
}  // namespace raccd
