// Writeback-non-coherent software coherence baseline, after task-parallel
// runtimes for non-coherent machines (BDDT-SCC, Labrineas et al.; the
// distributed-manager runtime of Bosch et al.).
//
// Every request takes the non-coherent variant — straight to the home LLC
// bank, never touching the directory — and correctness is recovered in
// software at task boundaries: the runtime flushes the finishing core's
// whole L1 (all lines carry the NC bit in this mode), writing dirty data
// back so dependent tasks observe it. No NCRT, no page classification, no
// directory state at all: the lower bound on directory pressure and the
// upper bound on task-boundary flush cost among the implemented modes.
#pragma once

#include "raccd/modes/coherence_backend.hpp"

namespace raccd {

class WbNcBackend final : public CoherenceBackend {
 public:
  explicit WbNcBackend(const BackendContext& ctx) : CoherenceBackend(ctx) {}

  [[nodiscard]] CohMode mode() const noexcept override { return CohMode::kWbNC; }
  [[nodiscard]] ClassifierView classifier() noexcept override {
    return {this, &WbNcBackend::classify_thunk};
  }
  TaskEndOutcome on_task_end(CoreId c, Cycle now) override;

 private:
  static AccessClass classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                    PAddr paddr, PageNum pframe, Cycle now);
};

}  // namespace raccd
