#include "raccd/metrics/emit.hpp"

#include <cmath>

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"

namespace raccd {

std::string csv_cell(std::string_view cell, bool force_quote) {
  const bool needs_quote =
      force_quote || cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (const char c : cell) {
    if (c == '"') out += '"';  // RFC 4180: double the inner quote
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(const MetricDesc& m, const SimStats& s) {
  const MetricValue v = m.value(s);
  if (!v.is_int && !std::isfinite(v.d)) return "null";
  return m.format(s);
}

std::string metrics_csv_header(std::span<const MetricDesc* const> sel) {
  std::string out;
  for (const MetricDesc* m : sel) {
    if (!out.empty()) out += ',';
    out += csv_cell(m->key);
  }
  return out;
}

std::string metrics_csv_cells(std::span<const MetricDesc* const> sel,
                              const SimStats& s) {
  std::string out;
  for (const MetricDesc* m : sel) {
    if (!out.empty()) out += ',';
    out += m->format(s);  // numeric: never needs quoting
  }
  return out;
}

std::string metrics_json_fields(std::span<const MetricDesc* const> sel,
                                const SimStats& s) {
  std::string out;
  for (const MetricDesc* m : sel) {
    if (!out.empty()) out += ", ";
    out += strprintf("\"%s\": %s", m->key, json_number(*m, s).c_str());
  }
  return out;
}

std::string bench_metrics_json(const SimStats& s) {
  static const std::vector<const MetricDesc*> sel = [] {
    const MetricSchema& schema = MetricSchema::instance();
    std::vector<const MetricDesc*> v;
    for (const char* key : bench_metric_keys()) v.push_back(&schema.get(key));
    return v;
  }();
  std::string out = metrics_json_fields(sel, s);
  // Sampled runs carry their extrapolation telemetry and per-metric CI
  // half-widths; detailed runs keep the historical payload byte-identical.
  if (s.sampling.active != 0) {
    static const std::vector<const MetricDesc*> smp = [] {
      const MetricSchema& schema = MetricSchema::instance();
      std::vector<const MetricDesc*> v;
      for (const char* key :
           {"sampling_scale", "sampling_windows", "sampling_measured_tasks",
            "sampling_ffwd_tasks", "sampling_measured_accesses",
            "sampling_ffwd_accesses", "cycles_ci95", "dir_accesses_ci95",
            "llc_hits_ci95", "noc_flits_ci95", "noc_flit_hops_ci95",
            "dram_row_hits_ci95", "dram_row_hit_rate_ci95",
            "avg_dir_occupancy_ci95"}) {
        v.push_back(&schema.get(key));
      }
      return v;
    }();
    out += ", ";
    out += metrics_json_fields(smp, s);
  }
  // Open-loop service runs append their per-request latency summaries the
  // same way: batch runs keep the historical payload byte-identical.
  if (s.service.requests != 0) {
    static const std::vector<const MetricDesc*> svc = [] {
      const MetricSchema& schema = MetricSchema::instance();
      std::vector<const MetricDesc*> v;
      for (const char* key :
           {"service_requests", "service_queue_mean", "service_queue_p50",
            "service_queue_p95", "service_queue_p99", "service_queue_max",
            "service_svc_mean", "service_svc_p50", "service_svc_p95",
            "service_svc_p99", "service_svc_max", "service_e2e_mean",
            "service_e2e_p50", "service_e2e_p95", "service_e2e_p99",
            "service_e2e_max"}) {
        v.push_back(&schema.get(key));
      }
      return v;
    }();
    out += ", ";
    out += metrics_json_fields(svc, s);
  }
  return out;
}

std::string metrics_markdown_table(std::span<const std::string> row_labels,
                                   std::span<const MetricDesc* const> sel,
                                   std::span<const SimStats* const> runs) {
  RACCD_ASSERT(row_labels.size() == runs.size(),
               "one label per run required for a markdown table");
  std::string out = "| run |";
  for (const MetricDesc* m : sel) out += strprintf(" %s |", m->name);
  out += "\n|---|";
  for (std::size_t i = 0; i < sel.size(); ++i) out += "---|";
  out += "\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    out += strprintf("| %s |", row_labels[r].c_str());
    for (const MetricDesc* m : sel) out += strprintf(" %s |", m->format(*runs[r]).c_str());
    out += "\n";
  }
  return out;
}

}  // namespace raccd
