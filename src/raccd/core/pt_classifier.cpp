#include "raccd/core/pt_classifier.hpp"

namespace raccd {

PtClassifier::Decision PtClassifier::on_access(CoreId c, PageNum vpage) {
  if (vpage >= pages_.size()) pages_.resize(vpage + 1);
  PageState& p = pages_[vpage];
  switch (p.cls) {
    case PageClass::kUntouched:
      p.cls = PageClass::kPrivate;
      p.owner = c;
      ++stats_.first_touches;
      return Decision{true, false, kNoCore};
    case PageClass::kPrivate:
      if (p.owner == c) return Decision{true, false, kNoCore};
      p.cls = PageClass::kShared;
      ++stats_.transitions;
      return Decision{false, true, p.owner};
    case PageClass::kShared:
      return Decision{false, false, kNoCore};
  }
  return Decision{};
}

PageClass PtClassifier::class_of(PageNum vpage) const noexcept {
  return vpage < pages_.size() ? pages_[vpage].cls : PageClass::kUntouched;
}

CoreId PtClassifier::owner_of(PageNum vpage) const noexcept {
  return vpage < pages_.size() ? pages_[vpage].owner : kNoCore;
}

}  // namespace raccd
