#include "raccd/metrics/series.hpp"

#include <algorithm>
#include <cmath>

#include "raccd/common/assert.hpp"
#include "raccd/common/format.hpp"
#include "raccd/metrics/emit.hpp"

namespace raccd {

int Series::column(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
    if (const MetricDesc* m = MetricSchema::instance().find(name);
        m != nullptr && names_[i] == m->name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<double> Series::values(std::string_view name) const {
  const int c = column(name);
  RACCD_ASSERT(c >= 0, "metric not present in this series");
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.v[static_cast<std::size_t>(c)]);
  return out;
}

void Series::push(Cycle t, std::vector<double> v, std::uint32_t max_samples) {
  RACCD_ASSERT(v.size() == names_.size(), "sample arity != metric count");
  RACCD_ASSERT(max_samples >= 2, "a ring bound below 2 cannot decimate");
  if (samples_.size() >= max_samples) {
    // Decimate: keep every second sample and double the stride — full-run
    // coverage at bounded memory, and still deterministic (the kept indices
    // depend only on the sample count).
    std::vector<Sample> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      kept.push_back(std::move(samples_[i]));
    }
    samples_ = std::move(kept);
    interval_ *= 2;
  }
  samples_.push_back(Sample{t, std::move(v)});
}

std::string Series::to_json() const {
  std::string out = strprintf("{\"interval\": %llu, \"metrics\": [",
                              static_cast<unsigned long long>(interval_));
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out += strprintf("%s\"%s\"", i == 0 ? "" : ", ", json_escape(names_[i]).c_str());
  }
  out += "], \"samples\": [\n";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    out += strprintf("  [%llu", static_cast<unsigned long long>(samples_[i].t));
    for (const double v : samples_[i].v) {
      out += std::isfinite(v) ? strprintf(", %.9g", v) : std::string(", null");
    }
    out += strprintf("]%s\n", i + 1 < samples_.size() ? "," : "");
  }
  out += "]}";
  return out;
}

std::string series_map_json(
    std::span<const std::pair<std::string, const Series*>> entries) {
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += strprintf("  \"%s\": %s%s\n", json_escape(entries[i].first).c_str(),
                     entries[i].second->to_json().c_str(),
                     i + 1 < entries.size() ? "," : "");
  }
  out += "}\n";
  return out;
}

StatSampler::StatSampler(const SeriesConfig& cfg,
                         std::function<void(Cycle, SimStats&)> snapshot)
    // Decimation halves the buffer, so the bound needs headroom for 2.
    : snapshot_(std::move(snapshot)), max_samples_(std::max(2u, cfg.max_samples)) {
  RACCD_ASSERT(cfg.interval > 0, "StatSampler requires a nonzero interval");
  const MetricSchema& schema = MetricSchema::instance();
  std::vector<std::string> names;
  if (cfg.metrics.empty()) {
    for (const char* n : default_series_metrics()) {
      selection_.push_back(&schema.get(n));
    }
  } else {
    const std::string err = schema.parse_selection(cfg.metrics, selection_);
    if (!err.empty()) {
      std::fprintf(stderr, "series metrics '%s': %s\n", cfg.metrics.c_str(),
                   err.c_str());
      RACCD_ASSERT(false, "unknown metric in series selection");
    }
  }
  names.reserve(selection_.size());
  for (const MetricDesc* m : selection_) names.emplace_back(m->name);
  series_ = Series(std::move(names), cfg.interval);
  next_ = cfg.interval;
}

void StatSampler::sample(Cycle at) {
  SimStats snap;
  snapshot_(at, snap);
  std::vector<double> v;
  v.reserve(selection_.size());
  for (const MetricDesc* m : selection_) v.push_back(m->value(snap).as_double());
  series_.push(at, std::move(v), max_samples_);
}

void StatSampler::observe(Cycle now) {
  if (now < next_) return;
  sample(now);
  const Cycle iv = series_.interval();  // may have doubled via decimation
  next_ = (now / iv + 1) * iv;
}

void StatSampler::finish(Cycle end) {
  if (!series_.samples().empty() && series_.samples().back().t == end) return;
  sample(end);
}

}  // namespace raccd
