// Arrival-process tests: determinism, Poisson empirical mean, burst duty
// cycle, trace round-trip, and independence from ambient execution state
// (the schedule is a pure function of the config — see arrivals.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "raccd/service/arrivals.hpp"

namespace raccd {
namespace {

ArrivalConfig poisson_cfg(std::uint64_t count, double mean_gap,
                          std::uint64_t seed = 1) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.count = count;
  cfg.mean_gap_cycles = mean_gap;
  cfg.seed = seed;
  return cfg;
}

TEST(Arrivals, SameConfigSameSchedule) {
  const ArrivalConfig cfg = poisson_cfg(500, 1000.0, 7);
  std::string err;
  const auto a = generate_arrivals(cfg, &err);
  const auto b = generate_arrivals(cfg, &err);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b);
  // A different seed must give a different schedule (else the "seeded"
  // part of the generator is dead).
  const auto c = generate_arrivals(poisson_cfg(500, 1000.0, 8), &err);
  EXPECT_NE(a, c);
}

TEST(Arrivals, ScheduleIsNonDecreasingAndPositive) {
  std::string err;
  const auto s = generate_arrivals(poisson_cfg(2000, 250.0, 3), &err);
  ASSERT_EQ(s.size(), 2000u);
  EXPECT_GE(s.front(), 1u);  // release 0 means "not gated" — never emitted
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GE(s[i], s[i - 1]);
}

TEST(Arrivals, PoissonEmpiricalMeanMatchesConfiguredGap) {
  // With n = 20000 exponential gaps the sample mean is within a few percent
  // of the configured mean (stderr = mean/sqrt(n) ≈ 0.7%); 5% is a safe
  // deterministic bound for the fixed seed.
  constexpr std::uint64_t kCount = 20000;
  constexpr double kGap = 1000.0;
  std::string err;
  const auto s = generate_arrivals(poisson_cfg(kCount, kGap, 42), &err);
  ASSERT_EQ(s.size(), kCount);
  const double mean = static_cast<double>(s.back()) / static_cast<double>(kCount);
  EXPECT_GT(mean, kGap * 0.95);
  EXPECT_LT(mean, kGap * 1.05);
}

TEST(Arrivals, BurstArrivalsLandInDutyWindowAtPreservedRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBurst;
  cfg.count = 8000;
  cfg.mean_gap_cycles = 1000.0;
  cfg.burst_duty = 0.25;
  cfg.burst_period_cycles = 16000;
  cfg.seed = 11;
  std::string err;
  const auto s = generate_arrivals(cfg, &err);
  ASSERT_EQ(s.size(), cfg.count);
  // Every arrival lands in the leading duty fraction of its period (+1 for
  // the integer rounding of the wall-time mapping).
  const auto on_len = static_cast<Cycle>(cfg.burst_period_cycles * cfg.burst_duty);
  for (const Cycle t : s) EXPECT_LE(t % cfg.burst_period_cycles, on_len + 1);
  // The on/off modulation preserves the wall-clock mean rate.
  const double mean = static_cast<double>(s.back()) / static_cast<double>(cfg.count);
  EXPECT_GT(mean, cfg.mean_gap_cycles * 0.95);
  EXPECT_LT(mean, cfg.mean_gap_cycles * 1.05);
}

TEST(Arrivals, ScheduleTextRoundTripsExactly) {
  std::string err;
  const auto s = generate_arrivals(poisson_cfg(300, 777.0, 5), &err);
  const std::string text = format_schedule(s);
  std::vector<Cycle> back;
  ASSERT_TRUE(parse_schedule(text, back, &err)) << err;
  EXPECT_EQ(s, back);
}

TEST(Arrivals, ScheduleFileRoundTripsThroughTraceKind) {
  std::string err;
  const auto s = generate_arrivals(poisson_cfg(64, 500.0, 9), &err);
  const std::string path = ::testing::TempDir() + "raccd_sched_roundtrip.txt";
  ASSERT_TRUE(write_schedule_file(path, s, &err)) << err;
  std::vector<Cycle> back;
  ASSERT_TRUE(read_schedule_file(path, back, &err)) << err;
  EXPECT_EQ(s, back);
  // And the trace arrival kind replays the file bit-identically.
  ArrivalConfig trace;
  trace.kind = ArrivalKind::kTrace;
  trace.trace_path = path;
  const auto replayed = generate_arrivals(trace, &err);
  EXPECT_EQ(s, replayed);
  std::remove(path.c_str());
}

TEST(Arrivals, ParseRejectsMalformedSchedules) {
  std::vector<Cycle> out;
  std::string err;
  EXPECT_FALSE(parse_schedule("not-a-sched v9\n1\n5\n", out, &err));
  EXPECT_FALSE(err.empty());
  // Decreasing releases violate the non-decreasing invariant.
  EXPECT_FALSE(parse_schedule("raccd-sched v1\n2\n50\n10\n", out, &err));
  // Count/body mismatch.
  EXPECT_FALSE(parse_schedule("raccd-sched v1\n3\n10\n20\n", out, &err));
}

TEST(Arrivals, GenerationIsIndependentOfExecutionContext) {
  // The schedule is a pure function of the config: generating it from many
  // threads concurrently (the worst ambient-state environment a sweep
  // executor provides) yields the identical schedule everywhere — release
  // order can never depend on the worker count that later serves it.
  const ArrivalConfig cfg = poisson_cfg(1000, 800.0, 21);
  std::string err;
  const auto reference = generate_arrivals(cfg, &err);
  ASSERT_EQ(reference.size(), 1000u);
  std::vector<std::vector<Cycle>> got(4);
  {
    std::vector<std::thread> workers;
    workers.reserve(got.size());
    for (auto& out : got) {
      workers.emplace_back([&out, &cfg] { out = generate_arrivals(cfg); });
    }
    for (auto& w : workers) w.join();
  }
  for (const auto& s : got) EXPECT_EQ(s, reference);
}

}  // namespace
}  // namespace raccd
