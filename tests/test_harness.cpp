#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "raccd/harness/experiment.hpp"
#include "raccd/harness/sweep_cache.hpp"
#include "raccd/harness/table.hpp"

namespace raccd {
namespace {

TEST(RunSpec, KeyIsStableAndDistinguishes) {
  RunSpec a;
  a.app = "jacobi";
  RunSpec b = a;
  EXPECT_EQ(a.key(), b.key());
  b.dir_ratio = 64;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.mode = CohMode::kRaCCD;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.adr = true;
  EXPECT_NE(a.key(), b.key());
}

TEST(RunSpec, ConfigReflectsSpec) {
  RunSpec spec;
  spec.mode = CohMode::kRaCCD;
  spec.dir_ratio = 16;
  spec.adr = true;
  spec.ncrt_latency = 5;
  const SimConfig cfg = config_for(spec);
  EXPECT_EQ(cfg.mode, CohMode::kRaCCD);
  EXPECT_EQ(cfg.dir_ratio(), 16u);
  EXPECT_TRUE(cfg.adr.enabled);
  EXPECT_EQ(cfg.timing.ncrt_lookup_cycles, 5u);
}

TEST(StatsIo, RoundTrip) {
  SimStats s;
  s.mode = CohMode::kPT;
  s.dir_ratio = 64;
  s.cycles = 123456789;
  s.fabric.dir_accesses = 42;
  s.fabric.e_dir_pj = 3.14159;
  s.noc.per_class[1].flit_hops = 77;
  s.avg_dir_occupancy = 0.123456789;
  s.tasks = 5;
  const std::string text = stats_to_text(s);
  const auto back = stats_from_text(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->mode, CohMode::kPT);
  EXPECT_EQ(back->dir_ratio, 64u);
  EXPECT_EQ(back->cycles, 123456789u);
  EXPECT_EQ(back->fabric.dir_accesses, 42u);
  EXPECT_DOUBLE_EQ(back->fabric.e_dir_pj, 3.14159);
  EXPECT_EQ(back->noc.per_class[1].flit_hops, 77u);
  EXPECT_DOUBLE_EQ(back->avg_dir_occupancy, 0.123456789);
}

TEST(StatsIo, RejectsWrongVersion) {
  EXPECT_FALSE(stats_from_text("format=0\ncycles=5\n").has_value());
  EXPECT_FALSE(stats_from_text("garbage").has_value());
}

TEST(SweepCache, StoreAndLoad) {
  const std::string dir = "test_cache_tmp";
  SimStats s;
  s.cycles = 999;
  cache_store(dir, "unit-key", s);
  const auto loaded = cache_load(dir, "unit-key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cycles, 999u);
  EXPECT_FALSE(cache_load(dir, "missing-key").has_value());
  std::filesystem::remove_all(dir);
}

TEST(RunAll, ParallelAndCached) {
  const std::string dir = "test_cache_runall";
  std::filesystem::remove_all(dir);
  std::vector<RunSpec> specs;
  for (const CohMode mode : kAllModes) {
    RunSpec s;
    s.app = "histo";
    s.size = SizeClass::kTiny;
    s.mode = mode;
    specs.push_back(s);
  }
  RunOptions opts;
  opts.jobs = 3;
  opts.cache_dir = dir;
  const auto first = run_all(specs, opts);
  ASSERT_EQ(first.size(), 3u);
  for (const auto& s : first) EXPECT_GT(s.cycles, 0u);
  // Second invocation must be served from the cache with identical numbers.
  const auto second = run_all(specs, opts);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(first[i].cycles, second[i].cycles);
    EXPECT_EQ(first[i].fabric.dir_accesses, second[i].fabric.dir_accesses);
  }
  std::filesystem::remove_all(dir);
}

TEST(TextTable, PrintsAlignedAndCsv) {
  TextTable t({"app", "value"});
  t.add_row({"jacobi", "1.00"});
  t.add_separator();
  t.add_row({"avg", "2.00"});
  // Render to a temp file and check content.
  const char* path = "test_table_tmp.txt";
  std::FILE* f = std::fopen(path, "w");
  t.print(f);
  std::fclose(f);
  std::string content;
  {
    std::FILE* in = std::fopen(path, "r");
    char buf[256];
    while (std::fgets(buf, sizeof buf, in) != nullptr) content += buf;
    std::fclose(in);
  }
  EXPECT_NE(content.find("jacobi"), std::string::npos);
  EXPECT_NE(content.find("| app"), std::string::npos);
  std::remove(path);

  EXPECT_TRUE(t.write_csv("test_csv_tmp/out.csv"));
  std::string csv;
  {
    std::FILE* in = std::fopen("test_csv_tmp/out.csv", "r");
    char buf[256];
    while (std::fgets(buf, sizeof buf, in) != nullptr) csv += buf;
    std::fclose(in);
  }
  EXPECT_EQ(csv, "app,value\njacobi,1.00\navg,2.00\n");
  std::filesystem::remove_all("test_csv_tmp");
}

TEST(BenchOptions, ParsesFlags) {
  const char* argv[] = {"bench", "--size=tiny", "--paper", "--no-cache", "--jobs=7"};
  const auto o = BenchOptions::parse(5, const_cast<char**>(argv));
  EXPECT_EQ(o.size, SizeClass::kTiny);
  EXPECT_TRUE(o.paper_machine);
  EXPECT_FALSE(o.run.use_cache);
  EXPECT_EQ(o.run.jobs, 7u);
}

TEST(BenchOptions, JobsSpellings) {
  {  // -jN short form
    const char* argv[] = {"bench", "-j4"};
    EXPECT_EQ(BenchOptions::parse(2, const_cast<char**>(argv)).run.jobs, 4u);
  }
  {  // --jobs N two-argument form
    const char* argv[] = {"bench", "--jobs", "9"};
    EXPECT_EQ(BenchOptions::parse(3, const_cast<char**>(argv)).run.jobs, 9u);
  }
  {  // legacy --threads=N alias still accepted
    const char* argv[] = {"bench", "--threads=7"};
    EXPECT_EQ(BenchOptions::parse(2, const_cast<char**>(argv)).run.jobs, 7u);
  }
}

}  // namespace
}  // namespace raccd
