// Private L1 data cache structure (paper Table I: 32 KB, 2-way, 64 B lines,
// 2-cycle hit, write-back, write-allocate) extended with the RaCCD
// Non-Coherent (NC) bit per line (paper Fig. 4).
//
// This class models tag state only; protocol decisions (what to do on a hit,
// miss, eviction, recall) live in coherence::Fabric. Functional data lives in
// SimMemory; lines carry a version stamp used by the optional coherence
// checker to verify that every load observes the last store.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/cache/replacement.hpp"
#include "raccd/common/flat_map.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

/// MESI stable states for coherent lines.
enum class Mesi : std::uint8_t { kInvalid = 0, kShared, kExclusive, kModified };

[[nodiscard]] constexpr const char* to_string(Mesi s) noexcept {
  switch (s) {
    case Mesi::kInvalid: return "I";
    case Mesi::kShared: return "S";
    case Mesi::kExclusive: return "E";
    case Mesi::kModified: return "M";
  }
  return "?";
}

struct L1Line {
  LineAddr line = 0;
  bool valid = false;
  bool nc = false;     ///< RaCCD NC bit: line fetched via a non-coherent request
  bool dirty = false;  ///< meaningful for NC lines and mirrors M for coherent ones
  Mesi coh = Mesi::kInvalid;  ///< coherent state; kInvalid when nc
  std::uint64_t version = 0;  ///< checker shadow value (see coherence/checker)
};

struct L1Geometry {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t ways = 2;
  ReplPolicy repl = ReplPolicy::kTreePlru;

  [[nodiscard]] std::uint32_t sets() const noexcept {
    return size_bytes / kLineBytes / ways;
  }
  [[nodiscard]] std::uint32_t lines() const noexcept { return size_bytes / kLineBytes; }
};

class L1Cache {
 public:
  explicit L1Cache(const L1Geometry& geo);

  [[nodiscard]] std::uint32_t set_of(LineAddr line) const noexcept {
    return static_cast<std::uint32_t>(line) & (sets_ - 1);
  }

  /// Find a valid line; nullptr on miss. Does not update replacement state.
  [[nodiscard]] L1Line* find(LineAddr line) noexcept;
  [[nodiscard]] const L1Line* find(LineAddr line) const noexcept;

  /// Update replacement state for an access to this (resident) line.
  void touch(const L1Line& l) noexcept;

  /// Install `line`; returns the displaced valid victim (valid=false if the
  /// set had a free way). The caller handles victim writeback/notification.
  L1Line fill(LineAddr line, bool nc, Mesi coh, bool dirty, std::uint64_t version);

  /// Invalidate one line if present; returns the old contents (valid=false
  /// if the line was not resident).
  L1Line invalidate(LineAddr line) noexcept;

  /// Visit every valid line (raccd_invalidate walk, PT page flush, checker).
  /// F: void(L1Line&). Iteration order is set-major, matching the paper's
  /// "sequentially traverses the blocks of its private cache".
  template <typename F>
  void for_each_valid(F&& f) {
    for (auto& l : lines_) {
      if (l.valid) f(l);
    }
  }
  template <typename F>
  void for_each_valid(F&& f) const {
    for (const auto& l : lines_) {
      if (l.valid) f(l);
    }
  }

  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint32_t line_capacity() const noexcept { return sets_ * ways_; }
  [[nodiscard]] std::uint32_t valid_lines() const noexcept { return valid_count_; }

 private:
  /// Sentinel in the SoA tag array marking an invalid way. Unreachable as a
  /// real tag: line numbers are physical addresses >> 6, far below 2^64-1.
  static constexpr LineAddr kNoTag = ~LineAddr{0};

  [[nodiscard]] L1Line& at(std::uint32_t set, std::uint32_t way) noexcept {
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
  }
  void set_tag(std::uint32_t set, std::uint32_t way, LineAddr tag) noexcept {
    tags_[static_cast<std::size_t>(set) * ways_ + way] = tag;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  bool legacy_;  ///< RACCD_LEGACY_STRUCTURES: probe the AoS structs instead
  std::vector<L1Line> lines_;
  /// SoA mirror of (valid, line): find() scans this contiguous vector — the
  /// whole set's tags share one host cache line — instead of striding the
  /// 32-byte L1Line structs. kNoTag encodes invalid, so one compare per way.
  std::vector<LineAddr> tags_;
  ReplacementState repl_;
  std::uint32_t valid_count_ = 0;
};

}  // namespace raccd
