// Aggregation helpers used by reports and the experiment harness.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

namespace raccd {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] inline double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Geometric mean; 0 for an empty span. Standard aggregator for normalized
/// performance numbers (speedups/slowdowns).
[[nodiscard]] inline double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Safe ratio: 0 when the denominator is 0.
[[nodiscard]] constexpr double ratio(double num, double den) noexcept {
  return den == 0.0 ? 0.0 : num / den;
}

[[nodiscard]] constexpr double percent(double num, double den) noexcept {
  return 100.0 * ratio(num, den);
}

}  // namespace raccd
