// DRAM memory-system model behind the memory controllers: channels -> banks
// with row-buffer state, bank-level timing (tRCD/tCAS/tRP/tRAS-style
// parameters in core cycles), open/closed page policies, and bounded
// read/write request queues with FCFS or FR-FCFS service — all in the same
// run-to-completion style as the fabric's per-bank busy windows (DESIGN.md
// substitution #9).
//
// Two models:
//  * kSimple (default) — the legacy flat latency: every off-chip access
//    costs FabricConfig::mem_cycles and one EnergyConfig::mem_access_pj.
//    The fabric never consults a DramController in this mode, so behavior
//    is byte-identical to the pre-DRAM simulator.
//  * kDdr — the closed-form bank/row-buffer model below. Row hits pay
//    tCAS+tBURST, closed rows add tRCD (activate), conflicts add tRP
//    (precharge, gated by tRAS) on top; each access serializes on the
//    channel data bus for tBURST, and writebacks occupy write-queue slots
//    that backpressure reads (full write queue => reads wait for a drain).
//
// One DramController instance serves one memory-controller tile, so NUMA
// topologies get independent per-socket controllers via
// Mesh::nearest_memory_controller.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "raccd/common/types.hpp"

namespace raccd {

enum class DramModel : std::uint8_t { kSimple = 0, kDdr };
enum class PagePolicy : std::uint8_t { kOpen = 0, kClosed };
enum class DramSched : std::uint8_t { kFrFcfs = 0, kFcfs };

[[nodiscard]] constexpr const char* to_string(DramModel m) noexcept {
  switch (m) {
    case DramModel::kSimple: return "simple";
    case DramModel::kDdr: return "ddr";
  }
  return "?";
}
[[nodiscard]] constexpr const char* to_string(PagePolicy p) noexcept {
  switch (p) {
    case PagePolicy::kOpen: return "open";
    case PagePolicy::kClosed: return "closed";
  }
  return "?";
}
[[nodiscard]] constexpr const char* to_string(DramSched s) noexcept {
  switch (s) {
    case DramSched::kFrFcfs: return "frfcfs";
    case DramSched::kFcfs: return "fcfs";
  }
  return "?";
}

struct DramConfig {
  DramModel model = DramModel::kSimple;
  /// Channels per controller; lines interleave across channels (power of 2).
  std::uint32_t channels = 1;
  /// Banks per channel; consecutive rows interleave across banks (power of 2).
  std::uint32_t banks = 8;
  /// Row-buffer size; rows are row_bytes / 64 consecutive lines (power of 2).
  std::uint32_t row_bytes = 2048;
  PagePolicy page = PagePolicy::kOpen;
  DramSched sched = DramSched::kFrFcfs;
  /// Per-channel queue capacities; a full write queue stalls reads too.
  std::uint32_t read_queue_slots = 16;
  std::uint32_t write_queue_slots = 8;
  // Bank timing in core cycles (~DDR4-2400 behind a 2.4 GHz core: 14-16 ns
  // tRCD/tCAS/tRP, 35 ns tRAS, 4-beat burst over the controller interface).
  Cycle t_rcd = 44;    ///< activate -> column command
  Cycle t_cas = 44;    ///< column command -> first data
  Cycle t_rp = 44;     ///< precharge
  Cycle t_ras = 104;   ///< activate -> earliest precharge
  Cycle t_burst = 16;  ///< data burst on the channel bus
};

/// One serviced request, as accounted by the fabric. Beyond the timing the
/// fabric charges, the outcome carries where the request landed and how deep
/// the queues were — observation-only fields the event tracer turns into
/// per-bank busy spans and queue-depth counters (never consulted by timing).
struct DramOutcome {
  enum class Row : std::uint8_t { kHit = 0, kEmpty, kConflict };
  Cycle wait = 0;     ///< arrive -> service start (queues, drains, bank, order)
  Cycle latency = 0;  ///< service start -> data done
  Row row = Row::kEmpty;
  bool activated = false;   ///< paid an ACT (row was not open)
  bool precharged = false;  ///< paid a PRE (conflict or closed-page auto-PRE)
  std::uint32_t channel = 0;     ///< channel index within the controller
  std::uint32_t bank = 0;        ///< bank index within the channel
  std::uint32_t read_depth = 0;  ///< read-queue depth after this request
  std::uint32_t write_depth = 0; ///< write-queue depth after this request

  [[nodiscard]] Cycle total() const noexcept { return wait + latency; }
};

class DramController {
 public:
  explicit DramController(const DramConfig& cfg);

  /// Service a line fetch arriving at the controller at `arrive`. The caller
  /// waits out()->total() before the response heads back onto the NoC.
  DramOutcome read(LineAddr line, Cycle arrive) { return service(line, arrive, false); }
  /// Enqueue a writeback arriving at `arrive`. Posted: the caller does not
  /// wait, but the write occupies a queue slot and a bank/bus window that
  /// later requests contend with; the outcome is for stats only.
  DramOutcome write(LineAddr line, Cycle arrive) { return service(line, arrive, true); }

  /// Functional fast-forward: keep the row-buffer state warm for `line`
  /// without timing, queue, or stats side effects — the bank's open row
  /// tracks the access stream (per page policy) so a detailed window that
  /// follows a fast-forward phase sees realistic row-hit behavior.
  void warm_touch(LineAddr line) noexcept;

  [[nodiscard]] const DramConfig& config() const noexcept { return cfg_; }

 private:
  struct Bank {
    bool open = false;
    std::uint64_t row = 0;
    Cycle busy_until = 0;
    Cycle ras_ready = 0;  ///< earliest cycle the open row may precharge
  };
  struct Channel {
    std::vector<Bank> banks;
    Cycle bus_busy_until = 0;  ///< data-bus serialization (t_burst per access)
    Cycle last_start = 0;      ///< FCFS in-order issue point
    std::vector<Cycle> read_q, write_q;  ///< completion times of queued requests
  };

  DramOutcome service(LineAddr line, Cycle arrive, bool is_write);
  /// Wait until `q` (entries = completion times) has a free slot at `t`.
  static Cycle wait_for_slot(std::vector<Cycle>& q, std::uint32_t slots, Cycle t);

  DramConfig cfg_;
  std::vector<Channel> channels_;
  std::uint32_t ch_bits_ = 0, bank_bits_ = 0, row_line_bits_ = 0;
};

/// Parse a DRAM-model token: "simple" (default), or "ddr" with optional
/// '-'-separated modifiers — "open"/"closed" (page policy),
/// "fcfs"/"frfcfs" (scheduler), "ch<N>" (channels), "bk<N>" (banks per
/// channel), e.g. "ddr-closed-fcfs-ch2". Returns "" on success or an error.
[[nodiscard]] std::string parse_dram(std::string_view token, DramConfig& cfg);

}  // namespace raccd
