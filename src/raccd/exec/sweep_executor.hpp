// SweepExecutor: drives a list of RunSpecs over the work-stealing pool.
//
// This is the harness-side half of the exec/ subsystem (it is compiled into
// the harness layer: it speaks RunSpec/SimStats/sweep-cache, which the
// generic pool below it deliberately does not). run_all() and Grid::run()
// are thin wrappers over it.
//
// Guarantees, in order of importance:
//
//  * Determinism — workers commit each result into results[spec_index], so
//    the returned vector (and everything derived from it: ResultSet CSV and
//    JSON, the merged results/BENCH_grid.json) is byte-identical between
//    -j1 and -jN regardless of completion order. The simulations themselves
//    are independent Machines with per-spec seeds and share no mutable
//    state.
//  * At-most-once simulation per key — specs are deduplicated by cache key
//    (sampling variants dedup separately; a series only exists if the run
//    executes) before any work is issued, so two workers never simulate the
//    same uncached spec; duplicates are copied from the first instance
//    after the sweep drains. Across *processes*, the sweep cache's unique
//    temp-name + rename store keeps concurrent writers of one key safe
//    (last writer wins with identical bytes — the model is deterministic).
//  * Failure containment — a spec that fails (unknown workload, functional
//    verification, an exception out of the app) records its RunSpec::key()
//    and error, cancels all queued specs, and lets in-flight specs drain;
//    it does not abort the process mid-sweep. Callers inspect failures()
//    (run_all reports them and then aborts, preserving its historical
//    contract). RACCD_ASSERT failures deep inside the simulator still
//    abort the process — those are simulator invariants, not run failures.
//
// jobs == 1 runs every spec inline on the calling thread (no pool, exactly
// the historical serial path) — required for RACCD_LEGACY_STRUCTURES /
// set_legacy_structures A/B toggling, which is per-process state.
#pragma once

#include <string>
#include <vector>

#include "raccd/harness/experiment.hpp"

namespace raccd {

/// One failed spec: its identity key and what went wrong.
struct SweepFailure {
  std::string key;
  std::string error;
};

class SweepExecutor {
 public:
  explicit SweepExecutor(const RunOptions& opts) : opts_(opts) {}

  /// Execute `specs`; results align with specs by index. Cached results are
  /// loaded up front, the remainder is deduplicated, sharded (--shard=i/N),
  /// and fanned over the pool. On failure the sweep stops issuing new work,
  /// drains, and the failed slots keep zeroed stats — check failures().
  [[nodiscard]] std::vector<SimStats> run(const std::vector<RunSpec>& specs,
                                          std::vector<Series>* series_out = nullptr);

  /// Failures from the last run(), in completion order (first entry is the
  /// failure that stopped the sweep).
  [[nodiscard]] const std::vector<SweepFailure>& failures() const noexcept {
    return failures_;
  }

  /// Effective worker count for `jobs` (0 = hardware concurrency) and a
  /// sweep of `todo` runs (never more workers than runs, never 0).
  [[nodiscard]] static unsigned effective_jobs(unsigned jobs, std::size_t todo);

 private:
  RunOptions opts_;
  std::vector<SweepFailure> failures_;
};

}  // namespace raccd
