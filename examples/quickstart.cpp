// Quickstart: build a tiny task-parallel program, run it on the simulated
// 16-core machine with RaCCD enabled, and print the run report.
//
// The program computes y = a*x + y over four chunks (a blocked AXPY): one
// producer task initializes each chunk, one consumer task updates it. The
// in/out annotations are all RaCCD needs to deactivate coherence for the
// vector data while tasks execute.
#include <cstdio>

#include "raccd/sim/machine.hpp"
#include "raccd/sim/report.hpp"

using namespace raccd;

int main() {
  SimConfig cfg = SimConfig::scaled(CohMode::kRaCCD);
  print_config(cfg);

  Machine machine(cfg);
  constexpr std::uint32_t kChunks = 16;
  constexpr std::uint32_t kElems = 4096;  // per chunk
  const VAddr x = machine.mem().alloc_array<float>(kChunks * kElems, "x");
  const VAddr y = machine.mem().alloc_array<float>(kChunks * kElems, "y");

  for (std::uint32_t c = 0; c < kChunks; ++c) {
    const VAddr xc = x + static_cast<VAddr>(c) * kElems * sizeof(float);
    const VAddr yc = y + static_cast<VAddr>(c) * kElems * sizeof(float);
    TaskDesc init;
    init.name = "init";
    init.deps = {DepSpec{xc, kElems * sizeof(float), DepKind::kOut},
                 DepSpec{yc, kElems * sizeof(float), DepKind::kOut}};
    init.body = [xc, yc](TaskContext& ctx) {
      for (std::uint32_t i = 0; i < kElems; ++i) {
        ctx.store<float>(xc + i * sizeof(float), static_cast<float>(i));
        ctx.store<float>(yc + i * sizeof(float), 1.0f);
      }
    };
    machine.spawn(std::move(init));

    TaskDesc axpy;
    axpy.name = "axpy";
    axpy.deps = {DepSpec{xc, kElems * sizeof(float), DepKind::kIn},
                 DepSpec{yc, kElems * sizeof(float), DepKind::kInout}};
    axpy.body = [xc, yc](TaskContext& ctx) {
      for (std::uint32_t i = 0; i < kElems; ++i) {
        const float xv = ctx.load<float>(xc + i * sizeof(float));
        const float yv = ctx.load<float>(yc + i * sizeof(float));
        ctx.compute(2);
        ctx.store<float>(yc + i * sizeof(float), 2.0f * xv + yv);
      }
    };
    machine.spawn(std::move(axpy));
  }
  machine.taskwait();

  // Functional check: y[i] = 2*i + 1.
  bool ok = true;
  for (std::uint32_t i = 0; i < kChunks * kElems; ++i) {
    const float got = machine.mem().read<float>(y + static_cast<VAddr>(i) * sizeof(float));
    ok &= (got == 2.0f * static_cast<float>(i % kElems) + 1.0f);
  }
  std::printf("\nfunctional check: %s\n\n", ok ? "PASS" : "FAIL");

  const SimStats stats = machine.collect();
  print_report(stats);
  return ok ? 0 : 1;
}
