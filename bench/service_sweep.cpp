// Service-workload load sweep: per-request tail latency vs offered load,
// across coherence modes, machine topologies and DRAM models.
//
// Open-loop arrivals (Poisson by default) mean latency is the observable:
// below the saturation knee the queue stays short and p99 tracks the service
// time; past it requests arrive faster than the machine retires them and the
// tail grows with every request. The knee sits below load = 1 because `load`
// is computed against a nominal L1-hit-cost request model (DESIGN.md #13) —
// and it moves with the coherence mode, which is the experiment: RaCCD's
// end-of-task invalidations lengthen service time, so its knee arrives at a
// lower offered load than FullCoh's.
//
// Gates (exit 1 on failure): finite sub-saturation p99 for every config,
// p99 monotone (with slack) in load, >= 2 modes separated at mid load, and a
// visible knee in p99-vs-load. Results merge into results/BENCH_service.json
// (the per-spec service_* latency metrics ride in the standard bench log)
// and the table lands in results/service_sweep.csv.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<double> loads{0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
  const std::vector<std::string> topologies{"flat", "numa2"};
  const std::vector<std::string> drams{"simple", "ddr"};

  std::vector<std::string> workloads;
  for (const double l : loads) workloads.push_back(strprintf("service:load=%g", l));

  Grid grid;
  grid.workloads(workloads);
  // Stable tail percentiles need more requests than the tiny default serves;
  // explicit --set requests=... still wins (set_params applies later).
  if (opts.size == SizeClass::kTiny) grid.set("requests", "192");
  const std::vector<RunSpec> specs = grid.set_params(opts.params)
                                         .size(opts.size)
                                         .modes(kAllModes)
                                         .topologies(topologies)
                                         .drams(drams)
                                         .paper_machine(opts.paper_machine)
                                         .specs();
  std::fprintf(stderr,
               "service sweep: %zu simulations (%zu loads x %zu systems x "
               "%zu topologies x %zu dram models), size=%s\n",
               specs.size(), loads.size(), kAllModes.size(), topologies.size(),
               drams.size(), to_string(opts.size));
  ResultSet rs = ResultSet::run(specs, opts.run);
  if (!rs.append_bench_json("results/BENCH_service.json")) {
    std::fprintf(stderr, "warning: could not update results/BENCH_service.json\n");
  }

  // Grid nesting (grid.hpp): workloads > modes > topologies > drams (innermost).
  const auto at = [&](std::size_t l, std::size_t m, std::size_t t,
                      std::size_t d) -> const SimStats& {
    return rs[((l * kAllModes.size() + m) * topologies.size() + t) * drams.size() + d];
  };

  std::printf("Service sweep — per-request end-to-end latency vs offered load\n");
  TextTable table({"topology", "dram", "system", "load", "requests", "p50", "p95",
                   "p99", "max", "queue p99"});
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    for (std::size_t d = 0; d < drams.size(); ++d) {
      if (t + d != 0) table.add_separator();
      for (std::size_t m = 0; m < kAllModes.size(); ++m) {
        for (std::size_t l = 0; l < loads.size(); ++l) {
          const SimStats& s = at(l, m, t, d);
          table.add_row({topologies[t], drams[d], to_string(s.mode),
                         strprintf("%.1f", loads[l]),
                         format_count(s.service.requests),
                         format_count(static_cast<std::uint64_t>(s.service.e2e.p50)),
                         format_count(static_cast<std::uint64_t>(s.service.e2e.p95)),
                         format_count(static_cast<std::uint64_t>(s.service.e2e.p99)),
                         format_count(static_cast<std::uint64_t>(s.service.e2e.max)),
                         format_count(
                             static_cast<std::uint64_t>(s.service.queueing.p99))});
        }
      }
    }
  }
  table.print();
  if (table.write_csv("results/service_sweep.csv")) {
    std::printf("(csv written to results/service_sweep.csv)\n");
  }

  // -- Gates -------------------------------------------------------------------
  bool ok = true;
  const auto fail = [&ok](const std::string& why) {
    std::printf("GATE FAILED: %s\n", why.c_str());
    ok = false;
  };

  // 1. Sub-saturation sanity: at the lowest load every config reports a
  //    finite, positive p99 for every request it admitted.
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    for (std::size_t d = 0; d < drams.size(); ++d) {
      for (std::size_t m = 0; m < kAllModes.size(); ++m) {
        const SimStats& s = at(0, m, t, d);
        if (s.service.requests == 0 || !(s.service.e2e.p99 > 0.0) ||
            !(s.service.e2e.p99 < 1e15)) {
          fail(strprintf("%s/%s/%s: no finite p99 at load %.1f", topologies[t].c_str(),
                         drams[d].c_str(), to_string(s.mode), loads[0]));
        }
      }
    }
  }

  // 2. Tail latency grows with load: per config, p99 never drops by more
  //    than 10% step to step (percentile noise slack) and the highest load
  //    strictly exceeds the lowest.
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    for (std::size_t d = 0; d < drams.size(); ++d) {
      for (std::size_t m = 0; m < kAllModes.size(); ++m) {
        for (std::size_t l = 1; l < loads.size(); ++l) {
          const double prev = at(l - 1, m, t, d).service.e2e.p99;
          const double cur = at(l, m, t, d).service.e2e.p99;
          if (cur < 0.9 * prev) {
            fail(strprintf("%s/%s/%s: p99 fell %0.f -> %0.f from load %.1f to %.1f",
                           topologies[t].c_str(), drams[d].c_str(),
                           to_string(at(l, m, t, d).mode), prev, cur, loads[l - 1],
                           loads[l]));
          }
        }
        const double lo = at(0, m, t, d).service.e2e.p99;
        const double hi = at(loads.size() - 1, m, t, d).service.e2e.p99;
        if (!(hi > lo)) {
          fail(strprintf("%s/%s/%s: p99 did not grow across the sweep (%0.f -> %0.f)",
                         topologies[t].c_str(), drams[d].c_str(),
                         to_string(at(0, m, t, d).mode), lo, hi));
        }
      }
    }
  }

  // 3. Coherence modes separate: at mid load on flat/simple, the spread of
  //    p99 across modes exceeds 2%.
  {
    const std::size_t mid = loads.size() / 2;
    double lo = 1e300, hi = 0.0;
    for (std::size_t m = 0; m < kAllModes.size(); ++m) {
      const double v = at(mid, m, 0, 0).service.e2e.p99;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(hi > 1.02 * lo)) {
      fail(strprintf("modes do not separate at load %.1f (p99 spread %0.f..%0.f)",
                     loads[mid], lo, hi));
    }
  }

  // 4. The saturation knee is visible: for at least one mode on flat/simple,
  //    p99 at the top load reaches 3x its lowest-load value.
  {
    std::printf("\nSaturation knee (flat/simple, p99 vs load):\n");
    bool any_knee = false;
    for (std::size_t m = 0; m < kAllModes.size(); ++m) {
      const double base = at(0, m, 0, 0).service.e2e.p99;
      double knee = 0.0;
      for (std::size_t l = 1; l < loads.size(); ++l) {
        if (at(l, m, 0, 0).service.e2e.p99 >= 3.0 * base) {
          knee = loads[l];
          break;
        }
      }
      any_knee = any_knee || knee > 0.0;
      std::printf("  %-8s base p99 %10.0f, knee %s\n", to_string(at(0, m, 0, 0).mode),
                  base,
                  knee > 0.0 ? strprintf("at load %.1f", knee).c_str()
                             : "not reached");
    }
    if (!any_knee) fail("no mode shows a saturation knee (p99 >= 3x base)");
  }

  std::printf("%s\n", ok ? "RESULT: service sweep gates passed."
                         : "RESULT: service sweep gates FAILED.");
  return ok ? 0 : 1;
}
