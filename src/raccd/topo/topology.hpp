// Machine-shape descriptions: how cores, LLC/directory banks, memory
// controllers and memory sockets are arranged, and what every message leg
// costs. Three instances:
//
//  * kFlatMesh — today's model and the default: one WxH mesh, one LLC/dir
//    bank per core, uniform 1-cycle links (paper Table I). Byte-identical to
//    the pre-topology simulator.
//  * kCMesh    — concentrated mesh: `cluster_size` cores share one router,
//    shrinking the router grid and the average hop count (the common
//    scale-out floorplan for 64+ core CMPs).
//  * kNuma     — multi-socket machine: each socket is its own small mesh;
//    sockets are joined by point-to-point links with much higher latency and
//    per-flit energy. Physical memory is divided into per-socket ranges, and
//    a line's home LLC/directory bank sits on the socket that owns its
//    frame — so allocation policy (mem/phys_memory.hpp) decides how much
//    coherence traffic crosses sockets.
//
// The topology owns three mappings the rest of the system routes through:
// socket-of (core / bank / physical frame), home-bank-of-line, and
// route(from, to) -> {on-chip hops, inter-socket hops, head-flit latency}.
#pragma once

#include <cstdint>
#include <string>

#include "raccd/common/types.hpp"

namespace raccd {

enum class TopologyKind : std::uint8_t { kFlatMesh = 0, kCMesh, kNuma };

[[nodiscard]] constexpr const char* to_string(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kFlatMesh: return "flat";
    case TopologyKind::kCMesh: return "cmesh";
    case TopologyKind::kNuma: return "numa";
  }
  return "?";
}

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kFlatMesh;
  std::uint32_t sockets = 1;       ///< >1 only for kNuma
  std::uint32_t width = 4;         ///< node grid (kFlatMesh only; others derive)
  std::uint32_t height = 4;
  std::uint32_t cluster_size = 4;  ///< kCMesh: cores per router
  Cycle link_cycles = 1;
  Cycle router_cycles = 1;
  /// Head-flit latency of one inter-socket link traversal (kNuma). Roughly
  /// a QPI/UPI-class hop vs the 2-cycle on-chip hop.
  Cycle socket_link_cycles = 40;
  /// Per-flit energy of an inter-socket hop, as a multiple of the on-chip
  /// per-flit-hop energy (off-package SerDes links burn far more).
  double socket_hop_energy_scale = 8.0;
  /// Total physical frames, for the per-socket memory ranges behind
  /// socket_of_frame(). 0 (direct fabric construction in tests) falls back
  /// to frame-modulo striping.
  std::uint64_t phys_frames = 0;
};

/// One message leg, as costed by the topology.
struct Route {
  std::uint32_t link_hops = 0;    ///< on-chip links traversed (flit-hop basis)
  std::uint32_t socket_hops = 0;  ///< inter-socket links traversed (0 or 1)
  Cycle latency = 0;              ///< head-flit latency of the whole route

  [[nodiscard]] constexpr std::uint32_t total_hops() const noexcept {
    return link_hops + socket_hops;
  }
};

class Topology {
 public:
  Topology(const TopologyConfig& cfg, std::uint32_t cores);

  [[nodiscard]] const TopologyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint32_t cores() const noexcept { return cores_; }
  [[nodiscard]] std::uint32_t sockets() const noexcept { return cfg_.sockets; }
  [[nodiscard]] std::uint32_t cores_per_socket() const noexcept {
    return cores_ / cfg_.sockets;
  }

  /// Socket of a node id (cores and LLC/directory banks share tile ids).
  [[nodiscard]] std::uint32_t socket_of(std::uint32_t node) const noexcept {
    return node / cores_per_socket();
  }
  [[nodiscard]] bool cross_socket(std::uint32_t a, std::uint32_t b) const noexcept {
    return socket_of(a) != socket_of(b);
  }
  /// Bitmask of the banks on `socket` (banks == cores <= 64).
  [[nodiscard]] std::uint64_t bank_mask(std::uint32_t socket) const noexcept;

  /// Memory socket owning a physical frame: per-socket contiguous ranges of
  /// cfg.phys_frames frames (frame-modulo striping when phys_frames == 0).
  [[nodiscard]] std::uint32_t socket_of_frame(PageNum frame) const noexcept;

  /// Home LLC/directory bank of a physical line: line-interleaved across the
  /// banks of the socket that owns the line's frame (across all banks on
  /// single-socket topologies — identical to the legacy `line & (cores-1)`).
  [[nodiscard]] BankId home_bank(LineAddr line) const noexcept;

  /// Cost one message leg between two nodes (XY routing per mesh; NUMA
  /// routes through the sockets' gateway tiles and one inter-socket link).
  [[nodiscard]] Route route(std::uint32_t from, std::uint32_t to) const noexcept;

  /// Node id of the memory controller serving `node` (nearest corner of the
  /// node's own socket/router grid — memory is attached per socket).
  [[nodiscard]] std::uint32_t mem_controller(std::uint32_t node) const noexcept;

  /// Human-readable shape, e.g. "2 sockets x 8 cores (4x2 mesh/socket)".
  [[nodiscard]] std::string describe() const;

 private:
  struct Coord {
    std::uint32_t x = 0, y = 0, socket = 0;
  };
  [[nodiscard]] Coord coord_of(std::uint32_t node) const noexcept;
  [[nodiscard]] std::uint32_t grid_hops(Coord a, Coord b) const noexcept;

  TopologyConfig cfg_;
  std::uint32_t cores_;
  std::uint32_t grid_w_ = 4;  ///< router-grid dims (per socket for kNuma)
  std::uint32_t grid_h_ = 4;
  std::uint32_t nodes_per_router_ = 1;  ///< >1 only for kCMesh
};

/// Parse a topology token: "flat", "cmesh" / "cmesh<K>" (K cores per
/// router), "numa<S>" (S sockets over the preset core count), or
/// "numa<S>x<C>" (S sockets of C cores each; total replaces the preset).
/// Fills `cfg` (kind, sockets, cluster_size) and `total_cores` (0 = keep the
/// machine preset). Returns "" on success or an error message.
[[nodiscard]] std::string parse_topology(std::string_view token, TopologyConfig& cfg,
                                         std::uint32_t& total_cores);

}  // namespace raccd
