#include "raccd/tlb/tlb.hpp"

#include "raccd/common/assert.hpp"

namespace raccd {

Tlb::Tlb(std::uint32_t capacity)
    : capacity_(capacity), legacy_(legacy_structures()), flat_(capacity) {
  RACCD_ASSERT(capacity_ > 0, "TLB needs at least one entry");
  entries_.resize(capacity_);
  free_.reserve(capacity_);
  for (std::uint32_t i = 0; i < capacity_; ++i) free_.push_back(capacity_ - 1 - i);
  if (legacy_) index_.reserve(capacity_ * 2);
}

std::uint32_t* Tlb::legacy_find(PageNum vpage) noexcept {
  const auto it = index_.find(vpage);
  return it == index_.end() ? nullptr : &it->second;
}

void Tlb::index_insert(PageNum vpage, std::uint32_t slot) {
  if (legacy_) {
    index_.emplace(vpage, slot);
  } else {
    flat_.insert(vpage, slot);
  }
}

void Tlb::index_erase(PageNum vpage) noexcept {
  if (legacy_) {
    index_.erase(vpage);
  } else {
    flat_.erase(vpage);
  }
}

void Tlb::unlink(std::uint32_t slot) noexcept {
  Entry& e = entries_[slot];
  if (e.prev != kNil) {
    entries_[e.prev].next = e.next;
  } else {
    head_ = e.next;
  }
  if (e.next != kNil) {
    entries_[e.next].prev = e.prev;
  } else {
    tail_ = e.prev;
  }
  e.prev = e.next = kNil;
}

void Tlb::push_front(std::uint32_t slot) noexcept {
  Entry& e = entries_[slot];
  e.prev = kNil;
  e.next = head_;
  if (head_ != kNil) entries_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

Tlb::Result Tlb::access(PageNum vpage, const PageTable& pt) {
  ++stats_.lookups;
  if (vpage == last_vpage_) {
    ++stats_.hits;
    return Result{true, last_pframe_};
  }
  if (const std::uint32_t* found = index_find(vpage)) {
    ++stats_.hits;
    const std::uint32_t slot = *found;
    if (slot != head_) {
      unlink(slot);
      push_front(slot);
    }
    last_vpage_ = vpage;
    last_pframe_ = entries_[slot].pframe;
    return Result{true, entries_[slot].pframe};
  }
  // Miss: walk the page table and install.
  ++stats_.misses;
  const PageNum pframe = pt.frame_of(vpage);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = tail_;
    ++stats_.evictions;
    index_erase(entries_[slot].vpage);
    unlink(slot);
  }
  entries_[slot].vpage = vpage;
  entries_[slot].pframe = pframe;
  push_front(slot);
  index_insert(vpage, slot);
  last_vpage_ = vpage;
  last_pframe_ = pframe;
  return Result{false, pframe};
}

bool Tlb::invalidate(PageNum vpage) {
  const std::uint32_t* found = index_find(vpage);
  if (found == nullptr) return false;
  ++stats_.shootdowns;
  const std::uint32_t slot = *found;
  unlink(slot);
  free_.push_back(slot);
  index_erase(vpage);
  if (last_vpage_ == vpage) last_vpage_ = ~PageNum{0};
  return true;
}

void Tlb::flush() {
  // Walk the LRU chain (valid entries exactly) so both index variants flush
  // the same way, then reset the index wholesale.
  for (std::uint32_t slot = head_; slot != kNil;) {
    const std::uint32_t next = entries_[slot].next;
    entries_[slot].prev = entries_[slot].next = kNil;
    free_.push_back(slot);
    slot = next;
  }
  if (legacy_) {
    index_.clear();
  } else {
    flat_.clear();
  }
  head_ = tail_ = kNil;
  last_vpage_ = ~PageNum{0};
}

}  // namespace raccd
