// Ablation (beyond the paper): scheduling policy vs classification accuracy.
// The paper's premise is that dynamic schedulers migrate temporarily-private
// data between cores, which page-table classification (PT) permanently
// punishes. A locality-preserving work-stealing scheduler keeps successor
// tasks on the producing core, so PT's private pages survive longer — while
// RaCCD is insensitive to placement. This sweep quantifies that interaction.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<std::string> apps{"jacobi", "gauss", "histo", "kmeans"};
  // These two lists drive both the grid and the index arithmetic below.
  const std::vector<CohMode> modes{CohMode::kPT, CohMode::kRaCCD};
  const std::vector<SchedPolicy> policies{SchedPolicy::kFifo, SchedPolicy::kLifo,
                                          SchedPolicy::kWorkSteal};
  const ResultSet rs = bench::run_logged(
      Grid()
          .workloads(apps)
          .set_params(opts.params)
          .size(opts.size)
          .modes(modes)
          .scheds(policies)
          .paper_machine(opts.paper_machine)
          .specs(),
      opts);

  std::printf("Ablation — scheduler policy vs classification accuracy\n");
  TextTable table({"app", "scheduler", "PT NC blocks %", "PT transitions",
                   "RaCCD NC blocks %", "PT cycles / RaCCD cycles"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const SchedPolicy pol = policies[p];
      // Expansion order: app (outer), mode, sched (inner).
      const SimStats& pt = rs[(a * modes.size() + 0) * policies.size() + p];
      const SimStats& rc = rs[(a * modes.size() + 1) * policies.size() + p];
      table.add_row({apps[a], to_string(pol),
                     strprintf("%.1f", 100.0 * metric_value(pt, "blocks.nc_fraction")),
                     format_count(pt.pt.transitions),
                     strprintf("%.1f", 100.0 * metric_value(rc, "blocks.nc_fraction")),
                     strprintf("%.3f", static_cast<double>(pt.cycles) /
                                           static_cast<double>(rc.cycles))});
    }
  }
  table.print();
  table.write_csv("results/ablation_scheduler.csv");
  std::printf("\nreading: RaCCD stays at its ceiling under every policy; PT's "
              "accuracy is placement-dependent — locality-preserving stealing "
              "helps it on reduction-style apps (kmeans) but not on wavefront "
              "stencils, whose dependences force migration regardless\n");
  return 0;
}
