// Run every paper benchmark once under all four coherence backends —
// FullCoh, PT, RaCCD, and the WbNC software-coherence baseline — at the 1:1
// directory and print a side-by-side comparison: a one-screen tour of what
// the library measures.
#include <cstdio>

#include "raccd/common/format.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/harness/table.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  std::vector<RunSpec> specs;
  for (const auto& app : paper_app_names()) {
    for (const CohMode mode : kAllBackends) {
      RunSpec s;
      s.app = app;
      s.size = SizeClass::kTiny;  // quick tour by default
      s.mode = mode;
      s.paper_machine = opts.paper_machine;
      specs.push_back(s);
    }
  }
  const auto results = run_all(specs, opts.run);

  TextTable table({"app", "system", "cycles", "NC blocks %", "dir accesses",
                   "dir occupancy %"});
  std::size_t i = 0;
  for (const auto& app : paper_app_names()) {
    if (i != 0) table.add_separator();
    for (std::size_t m = 0; m < kAllBackends.size(); ++m) {
      const SimStats& s = results[i++];
      table.add_row({app, to_string(s.mode), format_count(s.cycles),
                     strprintf("%.1f", 100.0 * s.noncoherent_block_fraction),
                     format_count(s.fabric.dir_accesses),
                     strprintf("%.1f", 100.0 * s.avg_dir_occupancy)});
    }
  }
  table.print();
  std::puts("\nAll runs functionally verified (run_one aborts on corruption).");
  return 0;
}
