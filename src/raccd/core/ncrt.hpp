// Non-Coherent Region Table (paper Fig. 4/5; Table I: 32 entries/core,
// 1-cycle access).
//
// Each entry holds the byte-precise start and end *physical* addresses of a
// non-coherent region of the currently executing task. The RTS fills the
// table via raccd_register before a task runs and clears it with
// raccd_invalidate when the task ends. Private-cache misses consult the NCRT
// to pick the coherent or non-coherent transaction variant. A full table
// silently rejects new regions: their accesses simply remain coherent
// (paper §III-C.2), which is a correctness-neutral fallback.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/flat_map.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

struct NcrtStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t overflows = 0;  ///< regions rejected because the table was full
  std::uint64_t clears = 0;
};

class Ncrt {
 public:
  explicit Ncrt(std::uint32_t capacity = 32);

  /// Insert a physical byte range [start, end). Returns false (and counts an
  /// overflow) when the table is full. Adjacent/contiguous with the last
  /// entry is the caller's concern (raccd_register collapses before insert).
  /// Entries are kept sorted by start address so lookups can stop at the
  /// first entry past `pa`.
  bool insert(PAddr start, PAddr end);

  /// True when `pa` falls inside any registered region.
  ///
  /// Host fast path (the modelled single-cycle CAM lookup is unchanged, as
  /// are the lookups/hits counters): the table is frozen between
  /// raccd_register and raccd_invalidate, so each resolved lookup memoizes
  /// the bracketing interval over which its answer is constant — the
  /// containing region on a hit, the gap to the neighbouring regions on a
  /// miss. Replayed accesses streaming through a region (the common case)
  /// answer from the memo without scanning.
  [[nodiscard]] bool lookup(PAddr pa) noexcept;

  /// Drop all entries (raccd_invalidate).
  void clear() noexcept;

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept { return size() >= capacity_; }
  [[nodiscard]] const NcrtStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<AddrRange>& entries() const noexcept { return entries_; }

 private:
  std::uint32_t capacity_;
  bool legacy_;  ///< RACCD_LEGACY_STRUCTURES: full scan, no memo (A/B bench)
  std::vector<AddrRange> entries_;  ///< sorted by begin
  AddrRange memo_{0, 0};  ///< interval with a constant answer; empty = none
  bool memo_hit_ = false;
  NcrtStats stats_;
};

}  // namespace raccd
