// Runtime-assisted coherence deactivation backend (paper §III) — the mode
// the paper contributes. Owns the RaccdEngine (one NCRT per core):
//
//  * on_task_start — one raccd_register per task dependence, translating the
//    region's pages through the core's TLB and inserting collapsed physical
//    ranges into the NCRT (paper Fig. 3/5).
//  * classify      — a 1-cycle NCRT lookup on every L1 miss selects the
//    coherent or non-coherent transaction variant.
//  * on_task_end   — raccd_invalidate: clear the NCRT and walk the L1
//    flushing NC lines (paper §III-C.4).
#pragma once

#include "raccd/core/raccd_engine.hpp"
#include "raccd/modes/coherence_backend.hpp"

namespace raccd {

class RaccdBackend final : public CoherenceBackend {
 public:
  explicit RaccdBackend(const BackendContext& ctx);

  [[nodiscard]] CohMode mode() const noexcept override { return CohMode::kRaCCD; }
  Cycle on_task_start(CoreId c, const TaskNode& node, Cycle now) override;
  [[nodiscard]] ClassifierView classifier() noexcept override {
    return {this, &RaccdBackend::classify_thunk};
  }
  TaskEndOutcome on_task_end(CoreId c, Cycle now) override;
  void accumulate(SimStats& s) const override;

  [[nodiscard]] RaccdEngine& engine() noexcept { return engine_; }

 private:
  static AccessClass classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                    PAddr paddr, PageNum pframe, Cycle now);
  void on_obs_trace() override;

  RaccdEngine engine_;
  /// Interned trace-event names (valid iff obs_trace_ != nullptr).
  struct ObsIds {
    std::uint16_t reg = 0, overflow = 0, pages = 0, ranges = 0;
  } obs_ids_{};
};

}  // namespace raccd
