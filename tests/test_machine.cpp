// Machine-level integration tests: task execution through the DES loop,
// per-mode request classification, RaCCD register/invalidate hooks, PT
// recovery, and end-to-end functional correctness with the checker on.
#include <gtest/gtest.h>

#include "raccd/coherence/checker.hpp"
#include "raccd/sim/machine.hpp"

namespace raccd {
namespace {

SimConfig test_config(CohMode mode) {
  SimConfig cfg = SimConfig::scaled(mode);
  cfg.enable_checker = true;
  return cfg;
}

/// Simple two-phase workload: every block is written by one task and read by
/// a chained successor, across enough data to exercise misses. Readers also
/// read a distant partner region so data provably crosses cores (the
/// temporally-private migration pattern the paper targets).
void run_chain_workload(Machine& m, std::uint32_t ntasks, std::uint32_t bytes_per_task) {
  const VAddr base = m.mem().alloc(static_cast<std::uint64_t>(ntasks) * bytes_per_task,
                                   kLineBytes, "chain");
  for (std::uint32_t t = 0; t < ntasks; ++t) {
    const VAddr region = base + static_cast<VAddr>(t) * bytes_per_task;
    TaskDesc wr;
    wr.name = "w";
    wr.deps = {DepSpec{region, bytes_per_task, DepKind::kOut}};
    wr.body = [region, bytes_per_task, t](TaskContext& ctx) {
      for (std::uint32_t i = 0; i < bytes_per_task; i += 4) {
        ctx.store<std::uint32_t>(region + i, t * 1000 + i);
      }
    };
    m.spawn(std::move(wr));
  }
  for (std::uint32_t t = 0; t < ntasks; ++t) {
    const VAddr region = base + static_cast<VAddr>(t) * bytes_per_task;
    const VAddr partner =
        base + static_cast<VAddr>((t + ntasks / 2) % ntasks) * bytes_per_task;
    TaskDesc rd;
    rd.name = "r";
    rd.deps = {DepSpec{region, bytes_per_task, DepKind::kIn},
               DepSpec{partner, bytes_per_task, DepKind::kIn}};
    rd.body = [region, partner, bytes_per_task, t](TaskContext& ctx) {
      for (std::uint32_t i = 0; i < bytes_per_task; i += 4) {
        const auto v = ctx.load<std::uint32_t>(region + i);
        RACCD_ASSERT(v == t * 1000 + i, "functional data corrupted");
        (void)ctx.load<std::uint32_t>(partner + i);
      }
    };
    m.spawn(std::move(rd));
  }
  m.taskwait();
}

TEST(Machine, ExecutesAllTasksAndAdvancesTime) {
  Machine m(test_config(CohMode::kFullCoh));
  run_chain_workload(m, 32, 4096);
  const SimStats s = m.collect();
  EXPECT_EQ(s.tasks, 64u);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.fabric.l1_accesses, 0u);
  EXPECT_EQ(s.fabric.nc_reads + s.fabric.nc_writes, 0u);  // FullCoh: nothing NC
}

TEST(Machine, RaccdClassifiesDependenceDataNonCoherent) {
  Machine m(test_config(CohMode::kRaCCD));
  run_chain_workload(m, 32, 4096);
  const SimStats s = m.collect();
  EXPECT_GT(s.fabric.nc_reads + s.fabric.nc_writes, 0u);
  EXPECT_GT(s.ncrt.inserts, 0u);
  EXPECT_EQ(s.ncrt.overflows, 0u);
  EXPECT_GT(s.register_cycles, 0u);
  EXPECT_GT(s.invalidate_cycles, 0u);
  EXPECT_GT(s.flushed_nc_lines, 0u);
  // All task data was dependence-declared: non-coherent fraction must be ~1.
  EXPECT_GT(s.noncoherent_block_fraction, 0.95);
  // And the directory saw far fewer accesses than FullCoh would generate.
  Machine full(test_config(CohMode::kFullCoh));
  run_chain_workload(full, 32, 4096);
  const SimStats fs = full.collect();
  EXPECT_LT(s.fabric.dir_accesses, fs.fabric.dir_accesses / 2);
}

TEST(Machine, PtClassifiesFirstTouchPrivate) {
  Machine m(test_config(CohMode::kPT));
  run_chain_workload(m, 32, 4096);
  const SimStats s = m.collect();
  EXPECT_GT(s.pt.first_touches, 0u);
  EXPECT_GT(s.fabric.nc_reads + s.fabric.nc_writes, 0u);
  // Writer and reader tasks of a region often run on different cores: PT
  // reclassifies those pages shared (the paper's temporal-privacy gap).
  EXPECT_GT(s.pt.transitions, 0u);
  EXPECT_GT(s.tlb.shootdowns, 0u);
}

TEST(Machine, InvariantScanCleanAfterRun) {
  for (const CohMode mode : kAllModes) {
    Machine m(test_config(mode));
    run_chain_workload(m, 16, 2048);
    const auto violations = CoherenceChecker::scan(m.fabric());
    for (const auto& v : violations) ADD_FAILURE() << to_string(mode) << ": " << v;
    (void)m.collect();
  }
}

TEST(Machine, DeterministicAcrossRuns) {
  SimStats a, b;
  {
    Machine m(test_config(CohMode::kRaCCD));
    run_chain_workload(m, 24, 4096);
    a = m.collect();
  }
  {
    Machine m(test_config(CohMode::kRaCCD));
    run_chain_workload(m, 24, 4096);
    b = m.collect();
  }
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.fabric.dir_accesses, b.fabric.dir_accesses);
  EXPECT_EQ(a.noc.total_flit_hops(), b.noc.total_flit_hops());
}

TEST(Machine, ParallelSpeedupOverSerialChain) {
  // 64 independent tasks must finish much faster than a serial chain of the
  // same 64 tasks (dependences force serialization).
  const auto build = [](Machine& m, bool serial) {
    const VAddr buf = m.mem().alloc(64 * 1024, kLineBytes, "buf");
    const VAddr serial_cell = m.mem().alloc(kLineBytes, kLineBytes, "cell");
    for (std::uint32_t t = 0; t < 64; ++t) {
      TaskDesc d;
      d.deps = {DepSpec{buf + t * 1024, 1024, DepKind::kInout}};
      if (serial) d.deps.push_back(DepSpec{serial_cell, kLineBytes, DepKind::kInout});
      d.body = [buf, t](TaskContext& ctx) {
        for (std::uint32_t i = 0; i < 1024; i += 4) {
          ctx.store<std::uint32_t>(buf + t * 1024 + i, i);
        }
        ctx.compute(20000);
      };
      m.spawn(std::move(d));
    }
    m.taskwait();
  };
  Machine par(test_config(CohMode::kFullCoh));
  build(par, false);
  Machine ser(test_config(CohMode::kFullCoh));
  build(ser, true);
  const Cycle par_c = par.collect().cycles;
  const Cycle ser_c = ser.collect().cycles;
  EXPECT_LT(par_c * 4, ser_c);  // at least 4x with 16 cores
}

TEST(Machine, NcrtOverflowFallsBackCoherently) {
  SimConfig cfg = test_config(CohMode::kRaCCD);
  cfg.raccd.ncrt_entries = 1;  // everything beyond one region overflows
  Machine m(cfg);
  const VAddr a = m.mem().alloc(4096, kLineBytes, "a");
  const VAddr b = m.mem().alloc(4096, kLineBytes, "b");
  const VAddr c = m.mem().alloc(4096, kLineBytes, "c");
  TaskDesc t;
  t.deps = {DepSpec{a, 4096, DepKind::kOut}, DepSpec{b, 4096, DepKind::kOut},
            DepSpec{c, 4096, DepKind::kOut}};
  t.body = [a, b, c](TaskContext& ctx) {
    for (std::uint32_t i = 0; i < 4096; i += 64) {
      ctx.store<std::uint32_t>(a + i, i);
      ctx.store<std::uint32_t>(b + i, i);
      ctx.store<std::uint32_t>(c + i, i);
    }
  };
  m.spawn(std::move(t));
  m.taskwait();
  const SimStats s = m.collect();
  EXPECT_GT(s.ncrt.overflows, 0u);
  EXPECT_GT(s.fabric.coh_writes, 0u);  // overflowed regions stay coherent
  EXPECT_GT(s.fabric.nc_writes, 0u);   // the registered region is NC
}

TEST(Machine, TaskwaitPhasesComposable) {
  Machine m(test_config(CohMode::kRaCCD));
  const VAddr buf = m.mem().alloc(kLineBytes, kLineBytes, "x");
  for (int phase = 0; phase < 3; ++phase) {
    TaskDesc t;
    t.deps = {DepSpec{buf, kLineBytes, DepKind::kInout}};
    t.body = [buf](TaskContext& ctx) {
      ctx.store<std::uint32_t>(buf, ctx.load<std::uint32_t>(buf) + 1);
    };
    m.spawn(std::move(t));
    m.taskwait();
  }
  EXPECT_EQ(m.mem().read<std::uint32_t>(buf), 3u);
  const SimStats s = m.collect();
  EXPECT_EQ(s.tasks, 3u);
}

TEST(Machine, WorkStealingSchedulerCorrectAndLocal) {
  SimConfig cfg = test_config(CohMode::kRaCCD);
  cfg.sched = SchedPolicy::kWorkSteal;
  Machine m(cfg);
  run_chain_workload(m, 32, 4096);
  const SimStats s = m.collect();
  EXPECT_EQ(s.tasks, 64u);
  // Work stealing must actually engage: both local pops and steals happen.
  EXPECT_GT(m.runtime().scheduler().stats().local_pops, 0u);
  EXPECT_GT(m.runtime().scheduler().stats().steals, 0u);
  const auto violations = CoherenceChecker::scan(m.fabric());
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(Machine, WorkStealingReducesPtTransitions) {
  // Locality-preserving scheduling keeps successor tasks on the producing
  // core, so fewer pages migrate and PT reclassifies less.
  SimConfig fifo_cfg = test_config(CohMode::kPT);
  Machine fifo_m(fifo_cfg);
  run_chain_workload(fifo_m, 32, 4096);
  SimConfig ws_cfg = test_config(CohMode::kPT);
  ws_cfg.sched = SchedPolicy::kWorkSteal;
  Machine ws_m(ws_cfg);
  run_chain_workload(ws_m, 32, 4096);
  const SimStats fifo_s = fifo_m.collect();
  const SimStats ws_s = ws_m.collect();
  EXPECT_LE(ws_s.pt.transitions, fifo_s.pt.transitions);
}

/// Spawn one single-task request gated at `release` writing `value` to `slot`.
void spawn_request(Machine& m, VAddr slot, Cycle release, std::uint64_t request,
                   std::uint32_t value) {
  TaskDesc t;
  t.name = "req";
  t.release = release;
  t.request = request;
  t.deps = {DepSpec{slot, sizeof(std::uint32_t), DepKind::kOut}};
  t.body = [slot, value](TaskContext& ctx) { ctx.store<std::uint32_t>(slot, value); };
  m.spawn(std::move(t));
}

TEST(Machine, ReleaseGateAdvancesClockAcrossIdleGap) {
  // All cores idle awaiting a future release: the event loop must jump the
  // clock to the release instant (an idle gap, not a deadlock) and the
  // released task must still execute.
  Machine m(test_config(CohMode::kFullCoh));
  const VAddr slot = m.mem().alloc(kLineBytes, kLineBytes, "slot");
  constexpr Cycle kRelease = 50000;
  spawn_request(m, slot, kRelease, /*request=*/0, 7);
  m.taskwait();
  const SimStats s = m.collect();
  EXPECT_GE(s.cycles, kRelease);
  // The gap is skipped exactly, not simulated: total time is the release
  // instant plus a handful of scheduling/execution cycles, nowhere near 2x.
  EXPECT_LT(s.cycles, kRelease + 5000);
  ASSERT_EQ(s.service.requests, 1u);
  // On an otherwise idle machine the only queueing delay is the scheduling
  // cost itself, charged before the task-start instant is recorded.
  const auto sched = static_cast<double>(m.config().timing.schedule_cycles);
  EXPECT_DOUBLE_EQ(s.service.queueing.max, sched);
  EXPECT_DOUBLE_EQ(s.service.queueing.mean, sched);
}

TEST(Machine, ReleasesFireAtExactInstantsAcrossRepeatedGaps) {
  // A sparse schedule forces the idle-gap path repeatedly; every request
  // must start exactly schedule_cycles after its own release instant.
  Machine m(test_config(CohMode::kRaCCD));
  constexpr std::uint64_t kRequests = 8;
  const VAddr base = m.mem().alloc(kRequests * kLineBytes, kLineBytes, "slots");
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    spawn_request(m, base + r * kLineBytes, 10000 * (r + 1), r,
                  static_cast<std::uint32_t>(100 + r));
  }
  m.taskwait();
  const SimStats s = m.collect();
  EXPECT_GE(s.cycles, 10000u * kRequests);
  ASSERT_EQ(s.service.requests, kRequests);
  const auto sched = static_cast<double>(m.config().timing.schedule_cycles);
  EXPECT_DOUBLE_EQ(s.service.queueing.max, sched);
  EXPECT_DOUBLE_EQ(s.service.queueing.mean, sched);
  EXPECT_GT(s.service.e2e.max, 0.0);
}

TEST(Machine, ReleaseDuringBusyBatchStartsOnAnIdleCore) {
  // The run-heap fast path must not step a busy core past a pending release:
  // with 15 of 16 cores idle, a request released mid-batch still starts at
  // exactly its release instant plus the scheduling cost.
  Machine m(test_config(CohMode::kFullCoh));
  constexpr std::uint32_t kWords = 4096;
  const VAddr work = m.mem().alloc(kWords * 4, kLineBytes, "work");
  TaskDesc batch;
  batch.name = "batch";
  batch.deps = {DepSpec{work, kWords * 4, DepKind::kOut}};
  batch.body = [work](TaskContext& ctx) {
    for (std::uint32_t i = 0; i < kWords; ++i) {
      ctx.store<std::uint32_t>(work + i * 4, i);
    }
  };
  m.spawn(std::move(batch));
  const VAddr slot = m.mem().alloc(kLineBytes, kLineBytes, "slot");
  spawn_request(m, slot, /*release=*/2000, /*request=*/0, 9);
  m.taskwait();
  const SimStats s = m.collect();
  ASSERT_EQ(s.service.requests, 1u);
  const auto sched = static_cast<double>(m.config().timing.schedule_cycles);
  EXPECT_DOUBLE_EQ(s.service.queueing.max, sched);
}

TEST(Machine, ReleasedWorkloadIsDeterministic) {
  // Same released schedule, two machines: identical cycle counts and
  // latency summaries (the open-loop path adds no nondeterminism).
  SimStats runs[2];
  for (SimStats& out : runs) {
    Machine m(test_config(CohMode::kRaCCD));
    const VAddr base = m.mem().alloc(16 * kLineBytes, kLineBytes, "slots");
    for (std::uint64_t r = 0; r < 16; ++r) {
      spawn_request(m, base + r * kLineBytes, 500 * (r + 1), r,
                    static_cast<std::uint32_t>(r));
    }
    m.taskwait();
    out = m.collect();
  }
  EXPECT_EQ(runs[0].cycles, runs[1].cycles);
  EXPECT_EQ(runs[0].service.requests, runs[1].service.requests);
  EXPECT_DOUBLE_EQ(runs[0].service.e2e.p99, runs[1].service.e2e.p99);
  EXPECT_DOUBLE_EQ(runs[0].service.queueing.mean, runs[1].service.queueing.mean);
}

TEST(Machine, FragmentedAllocationStillCorrect) {
  SimConfig cfg = test_config(CohMode::kRaCCD);
  cfg.alloc_policy = AllocPolicy::kFragmented;
  Machine m(cfg);
  run_chain_workload(m, 16, 8192);
  const SimStats s = m.collect();
  // Fragmented frames defeat range collapsing: more NCRT inserts than with
  // contiguous allocation (one per page run), possibly overflowing.
  EXPECT_GT(s.ncrt.inserts, 16u);
}

}  // namespace
}  // namespace raccd
