// General-purpose simulator driver: run any registered workload under any
// system configuration and print the full report — the tool a downstream
// user reaches for first.
//
// Usage:
//   simulate [workload[:k=v,...]] [--set key=value ...]
//            [--mode=fullcoh|pt|raccd|wbnc]
//            [--size=tiny|small|medium|paper|large]
//            [--topology=flat|cmesh[K]|numaS[xC]] [--alloc=POLICY]
//            [--dir-ratio=N] [--adr] [--paper] [--sched=fifo|lifo|worksteal]
//            [--ncrt-entries=N] [--ncrt-latency=N] [--fragmented] [--seed=N]
//            [--sample=period/window[/warmup]] [--dot=FILE]
//            [--record-trace=FILE] [--list]
//            [--trace=FILE] [--trace-filter=task,coh,dram,svc,noc]
//            [--trace-cap=N]
//            [--series=FILE] [--series-interval=N] [--series-metrics=a,b,c]
//            [--metrics=a,b,c]
//
// The workload list and per-workload parameter help are derived from the
// WorkloadRegistry (`simulate --list`), so a newly registered workload shows
// up here with zero CLI changes.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "raccd/apps/registry.hpp"
#include "raccd/apps/trace_capture.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/metrics/series.hpp"
#include "raccd/obs/trace_sink.hpp"
#include "raccd/sim/report.hpp"

using namespace raccd;

namespace {

/// Default sampling period: a few hundred points on the small problem sizes.
constexpr raccd::Cycle kDefaultSeriesInterval = 10000;

void usage() {
  std::string apps;
  for (const std::string& n : WorkloadRegistry::instance().names()) {
    if (!apps.empty()) apps += ' ';
    apps += n;
  }
  std::printf(
      "usage: simulate [workload[:k=v,...]] [options]\n"
      "  workloads: %s\n"
      "  --list                    describe every workload and its parameters\n"
      "  --set key=value           override one workload parameter (repeatable)\n"
      "  --mode=fullcoh|pt|raccd|wbnc   coherence system (default raccd)\n"
      "  --size=tiny|small|medium|paper|large   problem size (default small)\n"
      "  --topology=T              machine shape: flat (default), cmesh[K]\n"
      "                            (K cores/router), numaS (S sockets) or\n"
      "                            numaSxC (S sockets of C cores each)\n"
      "  --dram=D                  memory system: simple (default, flat\n"
      "                            latency) or ddr with '-' modifiers —\n"
      "                            open|closed (page policy), fcfs|frfcfs\n"
      "                            (scheduler), chN (channels), bkN (banks),\n"
      "                            e.g. ddr-closed-fcfs-ch2\n"
      "  --alloc=cont|frag|firsttouch|interleave   page placement policy\n"
      "  --dir-ratio=N             directory 1:N of LLC lines (default 1)\n"
      "  --adr                     enable Adaptive Directory Reduction\n"
      "  --paper                   paper Table I machine (32 MB LLC)\n"
      "  --sched=fifo|lifo|worksteal\n"
      "  --ncrt-entries=N --ncrt-latency=N\n"
      "  --fragmented              randomized physical frame allocation\n"
      "  --seed=N                  workload seed\n"
      "  --sample=P/W[/U]          sampled simulation: out of every P tasks,\n"
      "                            warm up U (default 1) and measure W in\n"
      "                            detail, fast-forward the rest functionally;\n"
      "                            totals are extrapolated with 95%% CIs\n"
      "  --dot=FILE                export the task dependence graph\n"
      "  --record-trace=FILE       save the run as a replayable raccd-trace\n"
      "  --trace=FILE              export a simulated-time event timeline as\n"
      "                            Chrome Trace Event JSON (open in Perfetto\n"
      "                            or chrome://tracing; 1 cycle = 1 us)\n"
      "  --trace-filter=c1,c2      trace categories: task, coh, dram, svc,\n"
      "                            noc, all (default), or none (sink armed\n"
      "                            with every category off — overhead A/B)\n"
      "  --trace-cap=N             event buffer capacity (default 1M); when\n"
      "                            full, newest events drop with per-category\n"
      "                            accounting in the JSON footer\n"
      "  --series=FILE             write a metric time-series (occupancy vs\n"
      "                            time etc.) as JSON; see --series-metrics\n"
      "  --series-interval=N       sampling period in cycles (default %llu)\n"
      "  --series-metrics=a,b,c    metrics to sample (default: directory\n"
      "                            occupancy and its drivers)\n"
      "  --metrics=a,b,c           print selected metrics after the report\n"
      "                            (names: `raccd-report metrics`)\n"
      "  --jobs=N / -jN            accepted for uniformity with the sweep\n"
      "                            binaries; one simulation is one job\n",
      apps.c_str(), static_cast<unsigned long long>(kDefaultSeriesInterval));
}

void list_workloads() {
  const WorkloadRegistry& reg = WorkloadRegistry::instance();
  for (const std::string& family : reg.families()) {
    std::printf("[%s]\n", family.c_str());
    for (const std::string& name : reg.names(family)) {
      const WorkloadInfo* w = reg.find(name);
      std::printf("  %-12s %s\n", w->name.c_str(), w->description.c_str());
      const std::string params = w->schema.describe("      ");
      if (!params.empty()) std::printf("%s", params.c_str());
    }
  }
  std::printf("\nrun one with: simulate <name> [--set key=value ...] "
              "or simulate '<name>:k=v,...'\n");
}

}  // namespace

int main(int argc, char** argv) {
  RunSpec spec;
  spec.app = "jacobi";
  spec.mode = CohMode::kRaCCD;
  WorkloadParams params;
  std::string dot_path;
  std::string trace_path;
  std::string series_path;
  std::string metrics_list;
  std::string obs_trace_path;
  obs::TraceConfig obs_cfg;
  const auto apply_set = [&params](const char* text) {
    WorkloadParams p;
    const std::string err = WorkloadParams::parse(text, p);
    if (!err.empty()) {
      std::fprintf(stderr, "--set %s: %s\n", text, err.c_str());
      return false;
    }
    for (const auto& e : p.entries()) params.set(e.key, e.value);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      return 0;
    } else if (std::strcmp(a, "--list") == 0) {
      list_workloads();
      return 0;
    } else if (std::strncmp(a, "--set=", 6) == 0) {
      if (!apply_set(a + 6)) return 1;
    } else if (std::strcmp(a, "--set") == 0 && i + 1 < argc) {
      if (!apply_set(argv[++i])) return 1;
    } else if (std::strncmp(a, "--mode=", 7) == 0) {
      const std::string m = a + 7;
      if (m == "fullcoh") spec.mode = CohMode::kFullCoh;
      else if (m == "pt") spec.mode = CohMode::kPT;
      else if (m == "raccd") spec.mode = CohMode::kRaCCD;
      else if (m == "wbnc") spec.mode = CohMode::kWbNC;
      else { usage(); return 1; }
    } else if (std::strncmp(a, "--size=", 7) == 0) {
      const std::string s = a + 7;
      if (s == "tiny") spec.size = SizeClass::kTiny;
      else if (s == "small") spec.size = SizeClass::kSmall;
      else if (s == "medium") spec.size = SizeClass::kMedium;
      else if (s == "paper") spec.size = SizeClass::kPaper;
      else if (s == "large") spec.size = SizeClass::kLarge;
      else { usage(); return 1; }
    } else if (std::strncmp(a, "--dir-ratio=", 12) == 0) {
      spec.dir_ratio = static_cast<std::uint32_t>(std::strtoul(a + 12, nullptr, 10));
    } else if (std::strcmp(a, "--adr") == 0) {
      spec.adr = true;
    } else if (std::strcmp(a, "--paper") == 0) {
      spec.paper_machine = true;
    } else if (std::strncmp(a, "--sched=", 8) == 0) {
      const std::string s = a + 8;
      if (s == "fifo") spec.sched = SchedPolicy::kFifo;
      else if (s == "lifo") spec.sched = SchedPolicy::kLifo;
      else if (s == "worksteal") spec.sched = SchedPolicy::kWorkSteal;
      else { usage(); return 1; }
    } else if (std::strncmp(a, "--ncrt-entries=", 15) == 0) {
      spec.ncrt_entries = static_cast<std::uint32_t>(std::strtoul(a + 15, nullptr, 10));
    } else if (std::strncmp(a, "--ncrt-latency=", 15) == 0) {
      spec.ncrt_latency = std::strtoul(a + 15, nullptr, 10);
    } else if (std::strcmp(a, "--fragmented") == 0) {
      spec.alloc = AllocPolicy::kFragmented;
    } else if (std::strncmp(a, "--topology=", 11) == 0) {
      spec.topo = a + 11;
    } else if (std::strncmp(a, "--dram=", 7) == 0) {
      spec.dram = a + 7;
    } else if (std::strncmp(a, "--alloc=", 8) == 0) {
      const std::string p = a + 8;
      if (p == "cont" || p == "contiguous") spec.alloc = AllocPolicy::kContiguous;
      else if (p == "frag" || p == "fragmented") spec.alloc = AllocPolicy::kFragmented;
      else if (p == "ft" || p == "firsttouch") spec.alloc = AllocPolicy::kFirstTouch;
      else if (p == "il" || p == "interleave") spec.alloc = AllocPolicy::kInterleave;
      else { usage(); return 1; }
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      spec.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--sample=", 9) == 0) {
      spec.sampling = a + 9;
    } else if (std::strncmp(a, "--dot=", 6) == 0) {
      dot_path = a + 6;
    } else if (std::strncmp(a, "--record-trace=", 15) == 0) {
      trace_path = a + 15;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      obs_trace_path = a + 8;
    } else if (std::strncmp(a, "--trace-filter=", 15) == 0) {
      std::string ferr;
      obs_cfg.categories = obs::parse_trace_filter(a + 15, &ferr);
      if (!ferr.empty()) {
        std::fprintf(stderr, "--trace-filter: %s\n", ferr.c_str());
        return 1;
      }
    } else if (std::strncmp(a, "--trace-cap=", 12) == 0) {
      char* end = nullptr;
      obs_cfg.max_events = std::strtoull(a + 12, &end, 10);
      if (a[12] == '-' || end == a + 12 || *end != '\0' ||
          obs_cfg.max_events == 0) {
        std::fprintf(stderr, "--trace-cap: '%s' is not a positive event count\n",
                     a + 12);
        return 1;
      }
    } else if (std::strncmp(a, "--series=", 9) == 0) {
      series_path = a + 9;
    } else if (std::strncmp(a, "--series-interval=", 18) == 0) {
      char* end = nullptr;
      spec.series_interval = std::strtoull(a + 18, &end, 10);
      // strtoull wraps negatives to huge values — reject the sign up front.
      if (a[18] == '-' || end == a + 18 || *end != '\0' || spec.series_interval == 0) {
        std::fprintf(stderr, "--series-interval: '%s' is not a positive cycle count\n",
                     a + 18);
        return 1;
      }
    } else if (std::strncmp(a, "--series-metrics=", 17) == 0) {
      spec.series_metrics = a + 17;
    } else if (std::strncmp(a, "--metrics=", 10) == 0) {
      metrics_list = a + 10;
    } else if (std::strncmp(a, "--jobs=", 7) == 0 ||
               (std::strncmp(a, "-j", 2) == 0 && a[2] >= '0' && a[2] <= '9')) {
      // One workload, one simulation: nothing to fan out. Accepted so
      // scripts can pass a uniform -jN to every raccd binary.
    } else if (a[0] != '-') {
      if (const std::string err = spec.set_workload_ref(a); !err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
      }
    } else {
      usage();
      return 1;
    }
  }
  // Merge --set overrides under any ref-inline params ("jacobi:n=256" wins).
  if (!params.empty()) {
    WorkloadParams own;
    (void)WorkloadParams::parse(spec.params, own);
    for (const auto& e : own.entries()) params.set(e.key, e.value);
    spec.params = params.canonical();
  }

  // Validate the topology/DRAM tokens before config_for() would abort on them.
  {
    SimConfig probe = SimConfig::scaled(spec.mode);
    if (const std::string terr = probe.apply_topology(spec.topo); !terr.empty()) {
      std::fprintf(stderr, "--topology=%s: %s\n", spec.topo.c_str(), terr.c_str());
      return 1;
    }
    if (const std::string derr = probe.apply_dram(spec.dram); !derr.empty()) {
      std::fprintf(stderr, "--dram=%s: %s\n", spec.dram.c_str(), derr.c_str());
      return 1;
    }
    if (!spec.sampling.empty()) {
      if (const std::string serr = probe.apply_sampling(spec.sampling);
          !serr.empty()) {
        std::fprintf(stderr, "--sample=%s: %s\n", spec.sampling.c_str(),
                     serr.c_str());
        return 1;
      }
    }
  }

  if (obs_trace_path.empty() &&
      (obs_cfg.categories != obs::kAllCats ||
       obs_cfg.max_events != obs::TraceConfig{}.max_events)) {
    std::fprintf(stderr,
                 "--trace-filter/--trace-cap have no effect without --trace=FILE\n");
    return 1;
  }

  // Validate metric selections up front (the sampler would abort later).
  if (series_path.empty() &&
      (spec.series_interval != 0 || !spec.series_metrics.empty())) {
    std::fprintf(stderr,
                 "--series-interval/--series-metrics have no effect without "
                 "--series=FILE\n");
    return 1;
  }
  if (!series_path.empty() && spec.series_interval == 0) {
    spec.series_interval = kDefaultSeriesInterval;
  }
  std::vector<const MetricDesc*> selection;
  if (!spec.series_metrics.empty()) {
    if (const std::string merr =
            MetricSchema::instance().parse_selection(spec.series_metrics, selection);
        !merr.empty()) {
      std::fprintf(stderr, "--series-metrics: %s\n", merr.c_str());
      return 1;
    }
  }
  if (!metrics_list.empty()) {
    if (const std::string merr =
            MetricSchema::instance().parse_selection(metrics_list, selection);
        !merr.empty()) {
      std::fprintf(stderr, "--metrics: %s\n", merr.c_str());
      return 1;
    }
  }

  AppConfig acfg;
  acfg.size = spec.size;
  acfg.seed = spec.seed;
  if (const std::string err = WorkloadParams::parse(spec.params, acfg.params);
      !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::string err;
  auto app = WorkloadRegistry::instance().create(spec.app, acfg, &err);
  if (app == nullptr) {
    std::fprintf(stderr, "%s\n(see `simulate --list` for workload parameters)\n",
                 err.c_str());
    return 1;
  }
  // Sampled simulation fast-forwards task timing, which would silently corrupt
  // the per-request latency distributions service workloads exist to measure.
  if (const WorkloadInfo* info = WorkloadRegistry::instance().find(spec.app);
      info != nullptr && info->family == "service" && !spec.sampling.empty()) {
    std::fprintf(stderr,
                 "--sample is incompatible with open-loop service workloads "
                 "(per-request latency needs detailed timing)\n");
    return 1;
  }

  const SimConfig cfg = config_for(spec);
  print_config(cfg);
  Machine machine(cfg);
  std::optional<TraceCapture> capture;
  if (!trace_path.empty()) capture.emplace(machine);
  // Event tracing attaches before the app runs so task creation and every
  // simulated event lands on the timeline. Pure observation: the same run
  // with no sink produces byte-identical stats.
  std::optional<obs::TraceSink> obs_sink;
  if (!obs_trace_path.empty()) {
    obs_sink.emplace(obs_cfg);
    machine.set_obs_trace(&*obs_sink);
  }
  std::printf("\napp: %s — %s (scheduler: %s)\n", std::string(app->name()).c_str(),
              app->problem().c_str(), to_string(spec.sched));
  app->run(machine);
  const std::string verr = app->verify(machine);
  std::printf("verification: %s\n", verr.empty() ? "PASS" : verr.c_str());
  std::printf("TDG: %zu tasks, %llu edges, critical path %zu (avg parallelism %.1f)\n\n",
              machine.runtime().task_count(),
              static_cast<unsigned long long>(machine.runtime().tdg().edge_count()),
              machine.runtime().tdg().critical_path_length(),
              static_cast<double>(machine.runtime().task_count()) /
                  static_cast<double>(machine.runtime().tdg().critical_path_length()));
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << machine.runtime().tdg().to_dot();
    std::printf("TDG exported to %s\n", dot_path.c_str());
  }
  if (capture.has_value()) {
    TraceFile tf;
    std::string terr = capture->finish(tf);
    if (terr.empty()) terr = tf.save(trace_path);
    if (terr.empty()) {
      std::printf("trace recorded to %s (%zu regions, %zu tasks) — replay with "
                  "`simulate tracereplay --set file=%s`\n",
                  trace_path.c_str(), tf.regions.size(), tf.tasks.size(),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace recording failed: %s\n", terr.c_str());
    }
  }
  const SimStats stats = machine.collect();
  print_report(stats);
  if (obs_sink.has_value()) {
    if (obs_sink->write_json(obs_trace_path)) {
      std::printf("trace: %zu events written to %s (open in ui.perfetto.dev "
                  "or chrome://tracing)\n",
                  obs_sink->events().size(), obs_trace_path.c_str());
      if (obs_sink->dropped_total() > 0) {
        std::printf("trace: %llu events dropped at the %zu-event cap "
                    "(raise with --trace-cap=N)\n",
                    static_cast<unsigned long long>(obs_sink->dropped_total()),
                    obs_sink->config().max_events);
      }
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   obs_trace_path.c_str());
    }
  }
  if (!metrics_list.empty()) {
    std::printf("\nmetrics:\n");
    print_metrics(stats, selection);
  }
  if (!series_path.empty() && machine.series() != nullptr) {
    std::ofstream out(series_path);
    const std::pair<std::string, const Series*> entry{spec.key(), machine.series()};
    out << series_map_json({&entry, 1});
    if (out) {
      std::printf("series: %zu samples every %llu cycles written to %s\n",
                  machine.series()->samples().size(),
                  static_cast<unsigned long long>(machine.series()->interval()),
                  series_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", series_path.c_str());
    }
  }
  return verr.empty() ? 0 : 1;
}
