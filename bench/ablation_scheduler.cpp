// Ablation (beyond the paper): scheduling policy vs classification accuracy.
// The paper's premise is that dynamic schedulers migrate temporarily-private
// data between cores, which page-table classification (PT) permanently
// punishes. A locality-preserving work-stealing scheduler keeps successor
// tasks on the producing core, so PT's private pages survive longer — while
// RaCCD is insensitive to placement. This sweep quantifies that interaction.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const char* apps[] = {"jacobi", "gauss", "histo", "kmeans"};
  const SchedPolicy policies[] = {SchedPolicy::kFifo, SchedPolicy::kLifo,
                                  SchedPolicy::kWorkSteal};
  std::vector<RunSpec> specs;
  for (const char* app : apps) {
    for (const SchedPolicy pol : policies) {
      for (const CohMode mode : {CohMode::kPT, CohMode::kRaCCD}) {
        RunSpec s;
        s.app = app;
        s.size = opts.size;
        s.mode = mode;
        s.sched = pol;
        s.paper_machine = opts.paper_machine;
        specs.push_back(s);
      }
    }
  }
  const auto results = run_all(specs, opts.run);

  std::printf("Ablation — scheduler policy vs classification accuracy\n");
  TextTable table({"app", "scheduler", "PT NC blocks %", "PT transitions",
                   "RaCCD NC blocks %", "PT cycles / RaCCD cycles"});
  std::size_t i = 0;
  for (const char* app : apps) {
    for (const SchedPolicy pol : policies) {
      const SimStats& pt = results[i++];
      const SimStats& rc = results[i++];
      table.add_row({app, to_string(pol),
                     strprintf("%.1f", 100.0 * pt.noncoherent_block_fraction),
                     format_count(pt.pt.transitions),
                     strprintf("%.1f", 100.0 * rc.noncoherent_block_fraction),
                     strprintf("%.3f", static_cast<double>(pt.cycles) /
                                           static_cast<double>(rc.cycles))});
    }
  }
  table.print();
  table.write_csv("results/ablation_scheduler.csv");
  std::printf("\nreading: RaCCD stays at its ceiling under every policy; PT's "
              "accuracy is placement-dependent — locality-preserving stealing "
              "helps it on reduction-style apps (kmeans) but not on wavefront "
              "stencils, whose dependences force migration regardless\n");
  return 0;
}
