#include <gtest/gtest.h>

#include "raccd/mem/page_table.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {
namespace {

class TlbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (PageNum v = 0; v < 1024; ++v) pt_.map(v, v + 100);
  }
  PageTable pt_;
};

TEST_F(TlbTest, MissThenHit) {
  Tlb tlb(4);
  auto r = tlb.access(5, pt_);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.pframe, 105u);
  r = tlb.access(5, pt_);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.pframe, 105u);
  EXPECT_EQ(tlb.stats().misses, 1u);
  EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST_F(TlbTest, LruEviction) {
  Tlb tlb(2);
  tlb.access(1, pt_);
  tlb.access(2, pt_);
  tlb.access(1, pt_);  // 1 is now MRU; victim is 2
  tlb.access(3, pt_);  // evicts 2
  EXPECT_TRUE(tlb.contains(1));
  EXPECT_FALSE(tlb.contains(2));
  EXPECT_TRUE(tlb.contains(3));
  EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST_F(TlbTest, FastPathDoesNotBreakLru) {
  Tlb tlb(2);
  tlb.access(1, pt_);
  tlb.access(1, pt_);  // same-page fast path
  tlb.access(1, pt_);
  tlb.access(2, pt_);
  tlb.access(3, pt_);  // evicts 1 (LRU among {1,2})
  EXPECT_FALSE(tlb.contains(1));
  EXPECT_TRUE(tlb.contains(2));
  EXPECT_TRUE(tlb.contains(3));
}

TEST_F(TlbTest, InvalidateShootdown) {
  Tlb tlb(4);
  tlb.access(7, pt_);
  EXPECT_TRUE(tlb.contains(7));
  EXPECT_TRUE(tlb.invalidate(7));
  EXPECT_FALSE(tlb.contains(7));
  EXPECT_FALSE(tlb.invalidate(7));  // second shootdown misses
  EXPECT_EQ(tlb.stats().shootdowns, 1u);
  // Invalidated entry must re-walk, and the slot must be reusable.
  auto r = tlb.access(7, pt_);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(tlb.size(), 1u);
}

TEST_F(TlbTest, InvalidateClearsFastPath) {
  Tlb tlb(4);
  tlb.access(9, pt_);
  tlb.invalidate(9);
  const auto r = tlb.access(9, pt_);  // must not be served by the stale filter
  EXPECT_FALSE(r.hit);
}

TEST_F(TlbTest, FlushEmptiesEverything) {
  Tlb tlb(8);
  for (PageNum v = 0; v < 8; ++v) tlb.access(v, pt_);
  EXPECT_EQ(tlb.size(), 8u);
  tlb.flush();
  EXPECT_EQ(tlb.size(), 0u);
  for (PageNum v = 0; v < 8; ++v) EXPECT_FALSE(tlb.contains(v));
  const auto r = tlb.access(0, pt_);
  EXPECT_FALSE(r.hit);
}

TEST_F(TlbTest, CapacityStress) {
  Tlb tlb(256);
  for (PageNum v = 0; v < 1024; ++v) tlb.access(v, pt_);
  EXPECT_EQ(tlb.size(), 256u);
  // The most recent 256 pages are resident.
  for (PageNum v = 1024 - 256; v < 1024; ++v) EXPECT_TRUE(tlb.contains(v));
  EXPECT_FALSE(tlb.contains(0));
}

}  // namespace
}  // namespace raccd
