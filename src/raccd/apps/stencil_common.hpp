// Shared helpers for the 2D stencil benchmarks (Gauss, Jacobi, RedBlack):
// row-major n x n float grids partitioned into contiguous row blocks, so each
// dependence annotation is a single contiguous byte range (as the paper's
// array-section annotations are for tiled layouts).
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/rng.hpp"
#include "raccd/runtime/task.hpp"

namespace raccd::apps {

struct RowBlocks {
  std::uint32_t n = 0;       ///< grid dimension
  std::uint32_t blocks = 0;  ///< number of row blocks
  [[nodiscard]] std::uint32_t row0(std::uint32_t b) const noexcept {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(b) * n) / blocks);
  }
  [[nodiscard]] std::uint32_t row1(std::uint32_t b) const noexcept {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(b + 1) * n) / blocks);
  }
};

/// Fill an n*n float grid: fixed hot boundary (1.0), pseudo-random interior.
inline void init_grid(SimMemory& mem, VAddr base, std::uint32_t n, Rng& rng) {
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const bool boundary = i == 0 || j == 0 || i == n - 1 || j == n - 1;
      const float v = boundary ? 1.0f : rng.next_float(0.0f, 1.0f);
      mem.write<float>(base + (static_cast<VAddr>(i) * n + j) * sizeof(float), v);
    }
  }
}

/// Copy an n*n float grid out of simulated memory (reference checking).
inline std::vector<float> read_grid(const SimMemory& mem, VAddr base, std::uint32_t n) {
  std::vector<float> out(static_cast<std::size_t>(n) * n);
  mem.copy_out(base, out.data(), out.size() * sizeof(float));
  return out;
}

}  // namespace raccd::apps
