// Simulated physical page frame allocator.
//
// The paper observes (§III-C.2) that an unmodified Linux kernel maps the
// benchmarks' contiguous virtual pages to contiguous physical pages, so NCRT
// range collapsing is highly effective. We model that as the default
// Contiguous policy and provide a Fragmented policy (random frame order) to
// stress NCRT capacity in tests and ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/rng.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

enum class AllocPolicy {
  kContiguous,  ///< frames handed out in increasing order (Linux-like for our workloads)
  kFragmented,  ///< frames handed out in pseudo-random order
};

class PhysMemory {
 public:
  /// @param frames total number of physical page frames available.
  PhysMemory(std::uint64_t frames, AllocPolicy policy, std::uint64_t seed = 0x9acc5eedULL);

  /// Allocate one physical frame. Asserts if physical memory is exhausted.
  [[nodiscard]] PageNum alloc_frame();

  [[nodiscard]] std::uint64_t frames_total() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t frames_allocated() const noexcept { return next_; }
  [[nodiscard]] AllocPolicy policy() const noexcept { return policy_; }

 private:
  std::uint64_t frames_;
  AllocPolicy policy_;
  std::uint64_t next_ = 0;         // frames handed out so far
  std::vector<PageNum> shuffled_;  // lazily built permutation (Fragmented only)
  Rng rng_;
};

}  // namespace raccd
