// The coherence-mode backend seam between the simulated machine and the
// mode-specific policy (paper §II-B/III: FullCoh vs PT vs RaCCD, plus the
// BDDT-SCC-style writeback-NC baseline).
//
// Machine owns the discrete-event loop and the mode-agnostic hardware (L1s,
// fabric, TLBs, ADR); a CoherenceBackend owns everything a mode adds on top:
//
//  * on_task_start — per-task setup before the body runs (RaCCD issues one
//    raccd_register per dependence here, paper Fig. 3).
//  * classifier()  — per-access non-coherence classification, consulted on
//    every L1 miss. The hot path is devirtualized: Machine resolves the
//    backend's classify function ONCE per task into a ClassifierView (a raw
//    function pointer + backend pointer) and calls through that, never
//    through the vtable. A backend with no per-access policy (FullCoh)
//    returns a null view and the miss path skips the call entirely.
//  * on_task_end   — per-task teardown (RaCCD: raccd_invalidate + NC-line
//    flush; WbNC: whole-L1 writeback flush).
//  * accumulate    — export mode-private statistics into SimStats.
//
// Backends are created by make_backend() from SimConfig::mode; adding a new
// coherence scenario means adding one backend under src/raccd/modes/ and one
// registry row in coherence_backend.cpp — no Machine changes.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "raccd/common/types.hpp"
#include "raccd/modes/coh_mode.hpp"

namespace raccd {

class Fabric;
class SimMemory;
class Tlb;
struct SimConfig;
struct SimStats;
struct TaskNode;

namespace obs {
class TraceSink;
}

/// Mode-agnostic machine state a backend may consult or drive. All references
/// outlive the backend (Machine constructs its backend last and destroys it
/// first).
struct BackendContext {
  const SimConfig& cfg;
  Fabric& fabric;
  SimMemory& mem;
  std::vector<Tlb>& tlbs;
};

/// Per-access classification result, produced on an L1 miss.
struct AccessClass {
  bool nc = false;        ///< issue the non-coherent transaction variant
  Cycle extra_cycles = 0; ///< classification cost (NCRT lookup, PT recovery)
};

class CoherenceBackend;

/// Devirtualized per-access classification hook: resolved once per task,
/// called once per L1 miss. A null `fn` means "always coherent, zero cost".
struct ClassifierView {
  using Fn = AccessClass (*)(CoherenceBackend* self, CoreId c, VAddr vaddr,
                             PAddr paddr, PageNum pframe, Cycle now);
  CoherenceBackend* self = nullptr;
  Fn fn = nullptr;

  [[nodiscard]] explicit operator bool() const noexcept { return fn != nullptr; }
  [[nodiscard]] AccessClass operator()(CoreId c, VAddr vaddr, PAddr paddr,
                                       PageNum pframe, Cycle now) const {
    return fn(self, c, vaddr, paddr, pframe, now);
  }
};

/// What a task-end hook did (cycles are charged to the finishing core).
struct TaskEndOutcome {
  Cycle cycles = 0;
  std::uint64_t flushed_lines = 0;
  std::uint64_t flushed_wbs = 0;
};

class CoherenceBackend {
 public:
  explicit CoherenceBackend(const BackendContext& ctx) : ctx_(ctx) {}
  virtual ~CoherenceBackend() = default;

  [[nodiscard]] virtual CohMode mode() const noexcept = 0;

  /// Pre-execution hook on the scheduled core at time `now`; returns cycles
  /// to charge.
  virtual Cycle on_task_start(CoreId c, const TaskNode& node, Cycle now);

  /// The per-access classification view (cached by Machine per task).
  [[nodiscard]] virtual ClassifierView classifier() noexcept { return {}; }

  /// Post-execution hook on the finishing core at time `now`.
  virtual TaskEndOutcome on_task_end(CoreId c, Cycle now);

  /// Export mode-private statistics (NCRT, PT classifier, ...) into `s`.
  virtual void accumulate(SimStats& s) const;

  /// Attach a simulated-time event trace (obs/trace_sink.hpp); nullptr
  /// detaches. Observation only: backends emit mode events on it (RaCCD
  /// register/NCRT overflow, PT classification flips) and never let the
  /// sink's presence alter policy, timing, or stats.
  void set_obs_trace(obs::TraceSink* sink) {
    obs_trace_ = sink;
    on_obs_trace();
  }

 protected:
  /// Called after a sink attaches/detaches so backends can (re)intern their
  /// event names; default does nothing (FullCoh/WbNC emit no mode events).
  virtual void on_obs_trace() {}

  BackendContext ctx_;
  obs::TraceSink* obs_trace_ = nullptr;
};

/// Construct the backend `cfg.mode` names. Asserts on unknown modes.
[[nodiscard]] std::unique_ptr<CoherenceBackend> make_backend(const BackendContext& ctx);

/// Static per-mode reporting hooks, so report/stats printers never switch on
/// CohMode themselves. Null members mean "nothing mode-specific to print".
struct ModeTraits {
  CohMode mode = CohMode::kFullCoh;
  /// One-line machine-config addendum (e.g. RaCCD's NCRT geometry).
  void (*print_config_extra)(const SimConfig& cfg, std::FILE* out) = nullptr;
  /// Run-report addendum (e.g. RaCCD's register/invalidate overheads).
  void (*print_report_extra)(const SimStats& s, std::FILE* out) = nullptr;
};

[[nodiscard]] const ModeTraits& mode_traits(CohMode m) noexcept;

}  // namespace raccd
