#include "raccd/interval/interval_set.hpp"

#include <algorithm>

#include "raccd/common/assert.hpp"

namespace raccd {

std::size_t IntervalSet::lower_index(std::uint64_t point) const noexcept {
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), point,
      [](std::uint64_t p, const AddrRange& r) { return p < r.end; });
  return static_cast<std::size_t>(it - ranges_.begin());
}

void IntervalSet::insert(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  // Find the insertion window: every range that overlaps or touches
  // [begin, end) gets merged into one.
  auto first = std::lower_bound(
      ranges_.begin(), ranges_.end(), begin,
      [](const AddrRange& r, std::uint64_t b) { return r.end < b; });
  auto last = first;
  std::uint64_t nb = begin;
  std::uint64_t ne = end;
  while (last != ranges_.end() && last->begin <= end) {
    nb = std::min(nb, last->begin);
    ne = std::max(ne, last->end);
    ++last;
  }
  if (first == last) {
    ranges_.insert(first, AddrRange{nb, ne});
  } else {
    first->begin = nb;
    first->end = ne;
    ranges_.erase(first + 1, last);
  }
}

void IntervalSet::erase(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end || ranges_.empty()) return;
  std::vector<AddrRange> out;
  out.reserve(ranges_.size() + 1);
  for (const AddrRange& r : ranges_) {
    if (r.end <= begin || r.begin >= end) {
      out.push_back(r);
      continue;
    }
    if (r.begin < begin) out.push_back(AddrRange{r.begin, begin});
    if (r.end > end) out.push_back(AddrRange{end, r.end});
  }
  ranges_ = std::move(out);
}

bool IntervalSet::contains(std::uint64_t point) const noexcept {
  const std::size_t i = lower_index(point);
  return i < ranges_.size() && ranges_[i].contains(point);
}

bool IntervalSet::overlaps(std::uint64_t begin, std::uint64_t end) const noexcept {
  if (begin >= end) return false;
  const std::size_t i = lower_index(begin);
  return i < ranges_.size() && ranges_[i].begin < end;
}

bool IntervalSet::covers(std::uint64_t begin, std::uint64_t end) const noexcept {
  if (begin >= end) return true;
  const std::size_t i = lower_index(begin);
  return i < ranges_.size() && ranges_[i].begin <= begin && ranges_[i].end >= end;
}

std::uint64_t IntervalSet::total_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const AddrRange& r : ranges_) sum += r.size();
  return sum;
}

}  // namespace raccd
