#include <gtest/gtest.h>

#include "raccd/common/rng.hpp"
#include "raccd/interval/interval_set.hpp"

namespace raccd {
namespace {

TEST(IntervalSet, InsertDisjoint) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.range_count(), 2u);
  EXPECT_EQ(s.total_bytes(), 20u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(20));
  EXPECT_TRUE(s.contains(39));
  EXPECT_FALSE(s.contains(25));
}

TEST(IntervalSet, InsertMergesOverlapAndAdjacency) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(20, 30);  // adjacent: merges
  EXPECT_EQ(s.range_count(), 1u);
  s.insert(5, 12);  // overlapping front
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_TRUE(s.covers(5, 30));
  s.insert(40, 50);
  s.insert(28, 45);  // bridges two ranges
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_TRUE(s.covers(5, 50));
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet s;
  s.insert(0, 100);
  s.erase(40, 60);
  EXPECT_EQ(s.range_count(), 2u);
  EXPECT_TRUE(s.covers(0, 40));
  EXPECT_TRUE(s.covers(60, 100));
  EXPECT_FALSE(s.overlaps(40, 60));
  s.erase(0, 100);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, QueriesOnEmptyAndDegenerate) {
  IntervalSet s;
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.overlaps(0, 10));
  EXPECT_TRUE(s.covers(5, 5));  // empty range trivially covered
  s.insert(7, 7);               // empty insert is a no-op
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, RandomizedAgainstBitmap) {
  Rng rng(1234);
  constexpr std::uint64_t kSpace = 512;
  IntervalSet s;
  std::vector<bool> ref(kSpace, false);
  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t a = rng.next_below(kSpace);
    const std::uint64_t b = a + 1 + rng.next_below(32);
    const std::uint64_t e = std::min(b, kSpace);
    if (rng.next_bool(0.7)) {
      s.insert(a, e);
      for (std::uint64_t i = a; i < e; ++i) ref[i] = true;
    } else {
      s.erase(a, e);
      for (std::uint64_t i = a; i < e; ++i) ref[i] = false;
    }
    if (op % 50 == 0) {
      for (std::uint64_t i = 0; i < kSpace; ++i) {
        ASSERT_EQ(s.contains(i), ref[i]) << "op " << op << " at " << i;
      }
      // Ranges must stay sorted, non-overlapping, non-adjacent.
      const auto& rs = s.ranges();
      for (std::size_t i = 1; i < rs.size(); ++i) {
        ASSERT_GT(rs[i].begin, rs[i - 1].end);
      }
    }
  }
}

}  // namespace
}  // namespace raccd
