#include "raccd/sim/report.hpp"

#include <algorithm>
#include <vector>

#include "raccd/common/format.hpp"
#include "raccd/energy/area_model.hpp"
#include "raccd/modes/coherence_backend.hpp"
#include "raccd/sim/config.hpp"

namespace raccd {

void print_config(const SimConfig& cfg, std::FILE* out) {
  const auto& f = cfg.fabric;
  // Mesh reconciles the topology with the mesh config exactly as the fabric
  // will, so the printed shape is the simulated one.
  const Mesh shape(f.mesh, f.topo, f.cores);
  std::fprintf(out, "machine: %u cores, %s, mode=%s\n", f.cores,
               shape.topology().describe().c_str(), to_string(cfg.mode));
  std::fprintf(out, "  L1D: %s, %u-way, %u-cycle | TLB: %u entries\n",
               format_bytes(f.l1.size_bytes).c_str(), f.l1.ways,
               static_cast<unsigned>(f.l1_hit_cycles), cfg.tlb_entries);
  std::fprintf(out, "  LLC: %s total (%s/bank), %u-way, %u-cycle\n",
               format_bytes(static_cast<std::uint64_t>(f.llc.lines_per_bank) * f.cores *
                            kLineBytes)
                   .c_str(),
               format_bytes(static_cast<std::uint64_t>(f.llc.lines_per_bank) * kLineBytes)
                   .c_str(),
               f.llc.ways, static_cast<unsigned>(f.llc_cycles));
  const std::uint64_t dir_total = cfg.total_dir_entries();
  const DirStorage ds = AreaModel::directory_storage(dir_total);
  std::fprintf(out,
               "  directory: 1:%u — %s entries (%u/bank), %u-way, %u-cycle, %.1f KB, "
               "%.2f mm2\n",
               cfg.dir_ratio(), format_count(dir_total).c_str(), f.dir.entries_per_bank,
               f.dir.ways, static_cast<unsigned>(cfg.fabric.dir_cycles), ds.kilobytes,
               ds.area_mm2);
  const ModeTraits& traits = mode_traits(cfg.mode);
  if (traits.print_config_extra != nullptr) traits.print_config_extra(cfg, out);
}

void print_report(const SimStats& s, std::FILE* out) {
  std::fputs(s.summary().c_str(), out);
  std::fprintf(out, "  runtime overhead: create=%s sched=%s wakeup=%s",
               format_count(s.create_cycles).c_str(),
               format_count(s.schedule_cycles).c_str(),
               format_count(s.wakeup_cycles).c_str());
  const ModeTraits& traits = mode_traits(s.mode);
  if (traits.print_report_extra != nullptr) traits.print_report_extra(s, out);
  std::fputc('\n', out);
  if (s.adr_enabled) {
    std::fprintf(out, "  ADR: %llu grows, %llu shrinks, %llu moved, blocked %s cycles\n",
                 static_cast<unsigned long long>(s.adr.grows),
                 static_cast<unsigned long long>(s.adr.shrinks),
                 static_cast<unsigned long long>(s.adr.entries_moved),
                 format_count(s.adr.blocked_cycles).c_str());
  }
  if (s.sampling.active != 0) {
    std::fprintf(out,
                 "  sampled: %llu windows (%llu measured / %llu warmup / %llu "
                 "ffwd tasks), scale %.2fx, cycles ±%s (95%% CI)\n",
                 static_cast<unsigned long long>(s.sampling.windows),
                 static_cast<unsigned long long>(s.sampling.measured_tasks),
                 static_cast<unsigned long long>(s.sampling.warmup_tasks),
                 static_cast<unsigned long long>(s.sampling.ffwd_tasks),
                 s.sampling.scale,
                 format_count(static_cast<std::uint64_t>(s.sampling.cycles_ci95))
                     .c_str());
  }
  if (s.service.requests != 0) {
    const auto line = [out](const char* what, const DistSummary& d) {
      std::fprintf(out,
                   "    %-8s mean=%s p50=%s p95=%s p99=%s max=%s\n", what,
                   format_count(static_cast<std::uint64_t>(d.mean)).c_str(),
                   format_count(static_cast<std::uint64_t>(d.p50)).c_str(),
                   format_count(static_cast<std::uint64_t>(d.p95)).c_str(),
                   format_count(static_cast<std::uint64_t>(d.p99)).c_str(),
                   format_count(static_cast<std::uint64_t>(d.max)).c_str());
    };
    std::fprintf(out, "  service: %llu requests, latency in cycles:\n",
                 static_cast<unsigned long long>(s.service.requests));
    line("queue", s.service.queueing);
    line("svc", s.service.service);
    line("e2e", s.service.e2e);
  }
}

void print_metrics(const SimStats& s, std::span<const MetricDesc* const> selection,
                   std::FILE* out) {
  std::size_t name_w = 0, val_w = 0;
  std::vector<std::string> values;
  values.reserve(selection.size());
  for (const MetricDesc* m : selection) {
    name_w = std::max(name_w, std::string(m->name).size());
    values.push_back(m->format(s));
    val_w = std::max(val_w, values.back().size());
  }
  for (std::size_t i = 0; i < selection.size(); ++i) {
    const MetricDesc* m = selection[i];
    std::fprintf(out, "  %-*s  %*s%s%s  # %s\n", static_cast<int>(name_w), m->name,
                 static_cast<int>(val_w), values[i].c_str(),
                 m->unit[0] != '\0' ? " " : "", m->unit, m->doc);
  }
}

}  // namespace raccd
