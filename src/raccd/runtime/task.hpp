// Task model of the data-flow runtime (paper §II-C).
//
// A task is a body plus dependence annotations over byte ranges of the
// simulated address space, mirroring OpenMP 4.0
// `#pragma omp task depend(in/out/inout: A[i][j][:][:])`.
// TaskContext is the recording API the body uses: typed loads/stores execute
// functionally against SimMemory and append to the task's access trace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "raccd/common/types.hpp"
#include "raccd/mem/sim_memory.hpp"
#include "raccd/trace/access_trace.hpp"

namespace raccd {

enum class DepKind : std::uint8_t { kIn, kOut, kInout };

[[nodiscard]] constexpr const char* to_string(DepKind k) noexcept {
  switch (k) {
    case DepKind::kIn: return "in";
    case DepKind::kOut: return "out";
    case DepKind::kInout: return "inout";
  }
  return "?";
}

struct DepSpec {
  VAddr addr = 0;
  std::uint64_t size = 0;
  DepKind kind = DepKind::kIn;
};

class TaskContext {
 public:
  TaskContext(SimMemory& mem, AccessTrace& trace) : mem_(mem), trace_(trace) {}

  template <typename T>
  [[nodiscard]] T load(VAddr a) {
    trace_.record(a, sizeof(T), /*is_write=*/false);
    return mem_.read<T>(a);
  }
  template <typename T>
  void store(VAddr a, const T& v) {
    trace_.record(a, sizeof(T), /*is_write=*/true);
    mem_.write<T>(a, v);
  }
  /// Annotate `cycles` of computation between memory accesses.
  void compute(std::uint64_t cycles) { trace_.add_compute(cycles); }

  [[nodiscard]] SimMemory& memory() noexcept { return mem_; }

 private:
  SimMemory& mem_;
  AccessTrace& trace_;
};

/// Typed element view over a simulated array; every element access records a
/// simulated load/store.
template <typename T>
class ArrayRef {
 public:
  ArrayRef(VAddr base, std::uint64_t count) : base_(base), count_(count) {}

  [[nodiscard]] T get(TaskContext& ctx, std::uint64_t i) const {
    RACCD_DEBUG_ASSERT(i < count_, "ArrayRef read out of bounds");
    return ctx.load<T>(base_ + i * sizeof(T));
  }
  void set(TaskContext& ctx, std::uint64_t i, const T& v) const {
    RACCD_DEBUG_ASSERT(i < count_, "ArrayRef write out of bounds");
    ctx.store<T>(base_ + i * sizeof(T), v);
  }

  [[nodiscard]] VAddr addr_of(std::uint64_t i) const noexcept {
    return base_ + i * sizeof(T);
  }
  [[nodiscard]] VAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return count_ * sizeof(T); }

  /// Dependence spec over elements [first, first+n).
  [[nodiscard]] DepSpec dep(DepKind kind, std::uint64_t first, std::uint64_t n) const {
    RACCD_DEBUG_ASSERT(first + n <= count_, "dep range out of bounds");
    return DepSpec{base_ + first * sizeof(T), n * sizeof(T), kind};
  }
  [[nodiscard]] DepSpec dep(DepKind kind) const { return dep(kind, 0, count_); }

 private:
  VAddr base_;
  std::uint64_t count_;
};

using TaskBody = std::function<void(TaskContext&)>;

/// Sentinel for tasks that belong to no service request.
inline constexpr std::uint64_t kNoRequest = ~0ULL;

struct TaskDesc {
  TaskBody body;
  std::vector<DepSpec> deps;
  std::string name;
  /// Open-loop release time, in cycles from the start of the taskwait phase
  /// that executes the task (0 = released immediately, the batch default).
  /// The scheduler refuses to start the task before this instant; the
  /// Machine's event loop advances the clock across idle gaps to it.
  Cycle release = 0;
  /// Service request this task belongs to (per-request latency tracking
  /// groups a request's task chain by this id). kNoRequest = batch task.
  std::uint64_t request = kNoRequest;
};

enum class TaskState : std::uint8_t { kCreated, kReady, kRunning, kFinished };

struct TaskNode {
  TaskId id = kNoTask;
  TaskState state = TaskState::kCreated;
  std::uint32_t unresolved_preds = 0;
  std::vector<TaskId> successors;
  std::vector<DepSpec> deps;
  TaskBody body;
  std::string name;
  Cycle release = 0;                     ///< see TaskDesc::release
  std::uint64_t request = kNoRequest;    ///< see TaskDesc::request
};

}  // namespace raccd
