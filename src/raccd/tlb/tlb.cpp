#include "raccd/tlb/tlb.hpp"

#include "raccd/common/assert.hpp"

namespace raccd {

Tlb::Tlb(std::uint32_t capacity) : capacity_(capacity) {
  RACCD_ASSERT(capacity_ > 0, "TLB needs at least one entry");
  entries_.resize(capacity_);
  free_.reserve(capacity_);
  for (std::uint32_t i = 0; i < capacity_; ++i) free_.push_back(capacity_ - 1 - i);
  index_.reserve(capacity_ * 2);
}

void Tlb::unlink(std::uint32_t slot) noexcept {
  Entry& e = entries_[slot];
  if (e.prev != kNil) {
    entries_[e.prev].next = e.next;
  } else {
    head_ = e.next;
  }
  if (e.next != kNil) {
    entries_[e.next].prev = e.prev;
  } else {
    tail_ = e.prev;
  }
  e.prev = e.next = kNil;
}

void Tlb::push_front(std::uint32_t slot) noexcept {
  Entry& e = entries_[slot];
  e.prev = kNil;
  e.next = head_;
  if (head_ != kNil) entries_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

Tlb::Result Tlb::access(PageNum vpage, const PageTable& pt) {
  ++stats_.lookups;
  if (vpage == last_vpage_) {
    ++stats_.hits;
    return Result{true, last_pframe_};
  }
  if (const auto it = index_.find(vpage); it != index_.end()) {
    ++stats_.hits;
    const std::uint32_t slot = it->second;
    if (slot != head_) {
      unlink(slot);
      push_front(slot);
    }
    last_vpage_ = vpage;
    last_pframe_ = entries_[slot].pframe;
    return Result{true, entries_[slot].pframe};
  }
  // Miss: walk the page table and install.
  ++stats_.misses;
  const PageNum pframe = pt.frame_of(vpage);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = tail_;
    ++stats_.evictions;
    index_.erase(entries_[slot].vpage);
    unlink(slot);
  }
  entries_[slot].vpage = vpage;
  entries_[slot].pframe = pframe;
  push_front(slot);
  index_.emplace(vpage, slot);
  last_vpage_ = vpage;
  last_pframe_ = pframe;
  return Result{false, pframe};
}

bool Tlb::invalidate(PageNum vpage) {
  const auto it = index_.find(vpage);
  if (it == index_.end()) return false;
  ++stats_.shootdowns;
  const std::uint32_t slot = it->second;
  unlink(slot);
  free_.push_back(slot);
  index_.erase(it);
  if (last_vpage_ == vpage) last_vpage_ = ~PageNum{0};
  return true;
}

void Tlb::flush() {
  for (auto& [vpage, slot] : index_) {
    (void)vpage;
    free_.push_back(slot);
    entries_[slot].prev = entries_[slot].next = kNil;
  }
  index_.clear();
  head_ = tail_ = kNil;
  last_vpage_ = ~PageNum{0};
}

}  // namespace raccd
