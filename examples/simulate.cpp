// General-purpose simulator driver: run any benchmark under any system
// configuration and print the full report — the tool a downstream user
// reaches for first.
//
// Usage:
//   simulate [app] [--mode=fullcoh|pt|raccd|wbnc] [--size=tiny|small|paper]
//            [--dir-ratio=N] [--adr] [--paper] [--sched=fifo|lifo|worksteal]
//            [--ncrt-entries=N] [--ncrt-latency=N] [--fragmented] [--seed=N]
//            [--dot=FILE]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "raccd/apps/app.hpp"
#include "raccd/harness/experiment.hpp"
#include "raccd/sim/report.hpp"

using namespace raccd;

namespace {

void usage() {
  std::puts(
      "usage: simulate [app] [options]\n"
      "  apps: cg gauss histo jacobi jpeg kmeans knn md5 redblack cholesky\n"
      "  --mode=fullcoh|pt|raccd|wbnc   coherence system (default raccd)\n"
      "  --size=tiny|small|paper   problem size (default small)\n"
      "  --dir-ratio=N             directory 1:N of LLC lines (default 1)\n"
      "  --adr                     enable Adaptive Directory Reduction\n"
      "  --paper                   paper Table I machine (32 MB LLC)\n"
      "  --sched=fifo|lifo|worksteal\n"
      "  --ncrt-entries=N --ncrt-latency=N\n"
      "  --fragmented              randomized physical frame allocation\n"
      "  --seed=N                  workload seed\n"
      "  --dot=FILE                export the task dependence graph");
}

}  // namespace

int main(int argc, char** argv) {
  RunSpec spec;
  spec.app = "jacobi";
  spec.mode = CohMode::kRaCCD;
  std::string dot_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      return 0;
    } else if (std::strncmp(a, "--mode=", 7) == 0) {
      const std::string m = a + 7;
      if (m == "fullcoh") spec.mode = CohMode::kFullCoh;
      else if (m == "pt") spec.mode = CohMode::kPT;
      else if (m == "raccd") spec.mode = CohMode::kRaCCD;
      else if (m == "wbnc") spec.mode = CohMode::kWbNC;
      else { usage(); return 1; }
    } else if (std::strncmp(a, "--size=", 7) == 0) {
      const std::string s = a + 7;
      if (s == "tiny") spec.size = SizeClass::kTiny;
      else if (s == "small") spec.size = SizeClass::kSmall;
      else if (s == "paper") spec.size = SizeClass::kPaper;
      else { usage(); return 1; }
    } else if (std::strncmp(a, "--dir-ratio=", 12) == 0) {
      spec.dir_ratio = static_cast<std::uint32_t>(std::strtoul(a + 12, nullptr, 10));
    } else if (std::strcmp(a, "--adr") == 0) {
      spec.adr = true;
    } else if (std::strcmp(a, "--paper") == 0) {
      spec.paper_machine = true;
    } else if (std::strncmp(a, "--sched=", 8) == 0) {
      const std::string s = a + 8;
      if (s == "fifo") spec.sched = SchedPolicy::kFifo;
      else if (s == "lifo") spec.sched = SchedPolicy::kLifo;
      else if (s == "worksteal") spec.sched = SchedPolicy::kWorkSteal;
      else { usage(); return 1; }
    } else if (std::strncmp(a, "--ncrt-entries=", 15) == 0) {
      spec.ncrt_entries = static_cast<std::uint32_t>(std::strtoul(a + 15, nullptr, 10));
    } else if (std::strncmp(a, "--ncrt-latency=", 15) == 0) {
      spec.ncrt_latency = std::strtoul(a + 15, nullptr, 10);
    } else if (std::strcmp(a, "--fragmented") == 0) {
      spec.alloc = AllocPolicy::kFragmented;
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      spec.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--dot=", 6) == 0) {
      dot_path = a + 6;
    } else if (a[0] != '-') {
      spec.app = a;
    } else {
      usage();
      return 1;
    }
  }

  const SimConfig cfg = config_for(spec);
  print_config(cfg);
  Machine machine(cfg);
  auto app = make_app(spec.app, AppConfig{spec.size, spec.seed});
  std::printf("\napp: %s — %s (scheduler: %s)\n", std::string(app->name()).c_str(),
              app->problem().c_str(), to_string(spec.sched));
  app->run(machine);
  const std::string err = app->verify(machine);
  std::printf("verification: %s\n", err.empty() ? "PASS" : err.c_str());
  std::printf("TDG: %zu tasks, %llu edges, critical path %zu (avg parallelism %.1f)\n\n",
              machine.runtime().task_count(),
              static_cast<unsigned long long>(machine.runtime().tdg().edge_count()),
              machine.runtime().tdg().critical_path_length(),
              static_cast<double>(machine.runtime().task_count()) /
                  static_cast<double>(machine.runtime().tdg().critical_path_length()));
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << machine.runtime().tdg().to_dot();
    std::printf("TDG exported to %s\n", dot_path.c_str());
  }
  const SimStats stats = machine.collect();
  print_report(stats);
  return err.empty() ? 0 : 1;
}
