#include <gtest/gtest.h>

#include <cmath>

#include "raccd/apps/jpeg_dct.hpp"
#include "raccd/common/rng.hpp"

namespace raccd::apps {
namespace {

TEST(Dct, RoundTripIsNearIdentity) {
  Rng rng(3);
  float in[64], freq[64], out[64];
  for (int trial = 0; trial < 20; ++trial) {
    for (float& v : in) v = rng.next_float(-128.0f, 128.0f);
    fdct8x8(in, freq);
    idct8x8(freq, out);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(out[i], in[i], 1e-2f) << "trial " << trial << " idx " << i;
    }
  }
}

TEST(Dct, DcCoefficientIsScaledMean) {
  float in[64], freq[64];
  for (float& v : in) v = 10.0f;
  fdct8x8(in, freq);
  // DC = 8 * mean for the orthonormal scaling used here.
  EXPECT_NEAR(freq[0], 80.0f, 1e-3f);
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(freq[i], 0.0f, 1e-3f);
}

TEST(Dct, ParsevalEnergyPreserved) {
  Rng rng(5);
  float in[64], freq[64];
  for (float& v : in) v = rng.next_float(-100.0f, 100.0f);
  fdct8x8(in, freq);
  double e_in = 0.0, e_freq = 0.0;
  for (int i = 0; i < 64; ++i) {
    e_in += static_cast<double>(in[i]) * static_cast<double>(in[i]);
    e_freq += static_cast<double>(freq[i]) * static_cast<double>(freq[i]);
  }
  EXPECT_NEAR(e_freq, e_in, e_in * 1e-4);
}

TEST(Color, ClampBehaviour) {
  EXPECT_EQ(clamp_u8(-5.0f), 0u);
  EXPECT_EQ(clamp_u8(0.4f), 0u);
  EXPECT_EQ(clamp_u8(0.6f), 1u);
  EXPECT_EQ(clamp_u8(254.6f), 255u);
  EXPECT_EQ(clamp_u8(300.0f), 255u);
}

TEST(Color, GrayRoundTrip) {
  // Neutral chroma (128) must reproduce the luma on all channels.
  std::uint8_t rgb[3];
  yuv_to_rgb(100.0f, 128.0f, 128.0f, rgb);
  EXPECT_EQ(rgb[0], 100u);
  EXPECT_EQ(rgb[1], 100u);
  EXPECT_EQ(rgb[2], 100u);
}

TEST(Color, PrimariesHaveExpectedOrdering) {
  std::uint8_t red[3], blue[3];
  yuv_to_rgb(81.0f, 90.0f, 240.0f, red);    // red-ish: Cr high
  yuv_to_rgb(41.0f, 240.0f, 110.0f, blue);  // blue-ish: Cb high
  EXPECT_GT(red[0], red[2]);
  EXPECT_GT(blue[2], blue[0]);
}

TEST(Quant, TablesAreJpegAnnexK) {
  EXPECT_EQ(kLumaQuant[0], 16u);
  EXPECT_EQ(kLumaQuant[63], 99u);
  EXPECT_EQ(kChromaQuant[0], 17u);
  // Quantization must be coarser at high frequencies for luma.
  EXPECT_GT(kLumaQuant[63], kLumaQuant[0]);
}

}  // namespace
}  // namespace raccd::apps
