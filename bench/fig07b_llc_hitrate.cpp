// Paper Fig. 7b: LLC hit ratio by directory size (absolute percentage, not
// normalized — the paper plots the ratio itself).
//
// Paper reference points: FullCoh average collapses 56% -> 27% moving from
// 1:1 to 1:4 and ends at 24% @1:256; RaCCD only drops 55% -> 51%; MD5 stays
// flat (16-20%) in every configuration because compulsory misses dominate.
#include "bench_common.hpp"

using namespace raccd;
using namespace raccd::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const PaperGrid g = run_grid(opts);
  print_figure(
      g, "Fig. 7b — LLC hit ratio (%) by directory size",
      "LLC hit ratio in percent",
      [](const SimStats& s, const SimStats&) {
        return 100.0 * metric_value(s, "fabric.llc_hit_rate");
      },
      "results/fig07b_llc_hitrate.csv");
  std::printf("paper: FullCoh avg 56%%@1:1 -> 24%%@1:256; RaCCD 55%% -> 51%%; "
              "MD5 flat at 16-20%%\n");
  return 0;
}
