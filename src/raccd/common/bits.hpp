// Small bit-manipulation helpers on top of <bit>.
#pragma once

#include <bit>
#include <cstdint>

#include "raccd/common/assert.hpp"

namespace raccd {

[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_exact(std::uint64_t v) noexcept {
  RACCD_DEBUG_ASSERT(is_pow2(v), "log2_exact requires a power of two");
  return static_cast<unsigned>(std::countr_zero(v));
}

[[nodiscard]] constexpr std::uint64_t ceil_pow2(std::uint64_t v) noexcept {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

[[nodiscard]] constexpr unsigned popcount64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

/// Mixes a 64-bit value (used for set-index hashing of line addresses so that
/// strided app footprints spread across directory sets the way physical
/// addresses do on real hardware).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace raccd
