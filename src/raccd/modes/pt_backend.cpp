#include "raccd/modes/pt_backend.hpp"

#include "raccd/coherence/fabric.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

AccessClass PtBackend::classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                      PAddr paddr, PageNum pframe, Cycle now) {
  (void)paddr;
  return static_cast<PtBackend*>(self)->classify(c, vaddr, pframe, now);
}

AccessClass PtBackend::classify(CoreId c, VAddr vaddr, PageNum pframe, Cycle now) {
  AccessClass out;
  const PageNum vpage = page_of(vaddr);
  const PtClassifier::Decision d = pt_.on_access(c, vpage);
  if (d.transition) {
    // private -> shared recovery: flush the previous owner's cached lines of
    // this page and shoot down its TLB entry; the accessor waits for the
    // recovery to complete.
    const auto fo = ctx_.fabric.flush_page_lines(d.prev_owner, pframe, now);
    ctx_.tlbs[d.prev_owner].invalidate(vpage);
    out.extra_cycles = fo.cycles + ctx_.cfg.timing.pt_shootdown_cycles;
  }
  out.nc = d.noncoherent;
  return out;
}

void PtBackend::accumulate(SimStats& s) const { s.pt = pt_.stats(); }

}  // namespace raccd
