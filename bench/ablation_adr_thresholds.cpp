// Ablation (beyond the paper): ADR hysteresis thresholds. The paper picks
// theta_inc/theta_dec = 80%/20% as a band with "good reaction time and a
// reduced number of reconfigurations"; this sweep quantifies the trade-off
// between reconfiguration count, powered size and energy. The band is a
// first-class RunSpec/Grid axis, so the sweep is cached and parallel like
// every other experiment.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<std::pair<double, double>> bands{
      {0.95, 0.05}, {0.90, 0.10}, {0.80, 0.20}, {0.70, 0.30}, {0.60, 0.40}};
  const std::vector<std::string> apps{"cg", "jacobi", "kmeans"};

  const ResultSet rs = bench::run_logged(Grid()
                                             .workloads(apps)
                                             .set_params(opts.params)
                                             .size(opts.size)
                                             .mode(CohMode::kRaCCD)
                                             .adr(true)
                                             .adr_bands(bands)
                                             .paper_machine(opts.paper_machine)
                                             .specs(),
                                         opts);

  std::printf("Ablation — ADR thresholds (RaCCD+ADR)\n");
  TextTable table({"app", "band", "reconfigs", "displaced", "powered %",
                   "dir energy (nJ)", "cycles"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (std::size_t b = 0; b < bands.size(); ++b) {
      const SimStats& s = rs[a * bands.size() + b];
      table.add_row(
          {apps[a],
           strprintf("%.0f/%.0f%s", 100 * bands[b].first, 100 * bands[b].second,
                     bands[b].first == 0.80 ? " (paper)" : ""),
           format_count(s.adr.grows + s.adr.shrinks),
           format_count(s.adr.entries_displaced),
           strprintf("%.1f", 100.0 * metric_value(s, "dir.avg_active_frac")),
           strprintf("%.1f", metric_value(s, "energy.dir_dyn_pj") / 1e3),
           format_count(s.cycles)});
    }
  }
  table.print();
  table.write_csv("results/ablation_adr_thresholds.csv");
  return 0;
}
