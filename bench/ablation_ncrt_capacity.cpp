// Ablation (beyond the paper): NCRT capacity. The paper fixes 32 entries per
// core; this sweep shows how many regions the workloads actually need and
// what a smaller table costs (overflowed regions silently stay coherent).
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  // One list drives both the grid and the table stride, so they cannot drift.
  const std::vector<std::uint32_t> capacities{2, 4, 8, 16, 32, 64};
  const auto results = bench::run_logged(Grid()
                                             .paper_apps()
                                             .set_params(opts.params)
                                             .size(opts.size)
                                             .mode(CohMode::kRaCCD)
                                             .ncrt_entry_counts(capacities)
                                             .paper_machine(opts.paper_machine)
                                             .specs(),
                                         opts);

  std::printf("Ablation — NCRT capacity: non-coherent block %% (and overflows) by "
              "table size\n");
  std::vector<std::string> headers{"app"};
  for (const std::uint32_t c : capacities) headers.push_back(strprintf("%u entries", c));
  TextTable table(headers);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::vector<std::string> row{apps[a]};
    for (std::size_t ci = 0; ci < capacities.size(); ++ci) {
      const SimStats& s = results[a * capacities.size() + ci];
      row.push_back(strprintf("%.1f%% (%llu ovf)",
                              100.0 * metric_value(s, "blocks.nc_fraction"),
                              static_cast<unsigned long long>(s.ncrt.overflows)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  table.write_csv("results/ablation_ncrt_capacity.csv");
  std::printf("\nexpectation: the paper's 32 entries are comfortably enough for "
              "every benchmark (0 overflows); tiny tables lose coverage\n");
  return 0;
}
