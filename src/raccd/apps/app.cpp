#include "raccd/apps/app.hpp"

#include <cstdio>

#include "raccd/apps/registry.hpp"

namespace raccd {

const std::vector<std::string>& paper_app_names() {
  static const std::vector<std::string> kNames{
      "cg", "gauss", "histo", "jacobi", "jpeg", "kmeans", "knn", "md5", "redblack"};
  return kNames;
}

std::unique_ptr<App> make_app(std::string_view name, const AppConfig& cfg) {
  std::string error;
  auto app = WorkloadRegistry::instance().create(name, cfg, &error);
  if (app == nullptr) std::fprintf(stderr, "%s\n", error.c_str());
  return app;
}

}  // namespace raccd
