// Simulated-time event tracing: a bounded in-memory sink the Machine, the
// coherence fabric, the DRAM model, and the mode backends feed while a run
// executes, exported post-hoc as Chrome Trace Event JSON (loadable in
// Perfetto / chrome://tracing). Timestamps are simulated cycles mapped 1:1
// to trace microseconds, so the timeline reads in machine time, not host
// time.
//
// Zero-overhead-when-off contract: every instrumentation site guards on a
// `TraceSink*` being non-null (and `wants(cat)` for its category) before
// touching the sink, and recording is pure observation — no simulated state
// is read *or* written differently because a sink is attached, so stats are
// byte-identical with tracing on, off, or compiled out of the run entirely.
//
// Events are compact fixed-size records (no strings: names are interned to
// 16-bit ids) in a capacity-bounded buffer. When the cap is reached new
// events are dropped — never silently: per-category drop counters are
// carried into the exported JSON and the validator relaxes its balance
// checks only when drops are declared.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace raccd::obs {

/// Event categories, also the `--trace-filter` vocabulary. Values are bit
/// positions in the category mask.
enum class TraceCat : std::uint8_t {
  kTask = 0,  ///< per-core task spans, taskwait phases, release/idle instants
  kCoh = 1,   ///< deactivation/reactivation, NCRT, PT flips, invalidations
  kDram = 2,  ///< per-bank busy spans, queue-depth counters
  kSvc = 3,   ///< request lifecycle spans (queueing -> service -> respond)
  kNoc = 4,   ///< cumulative flit counters
};
inline constexpr std::uint32_t kCatCount = 5;
inline constexpr std::uint32_t kAllCats = (1u << kCatCount) - 1u;

[[nodiscard]] const char* to_string(TraceCat c) noexcept;

/// Parse a `--trace-filter` list ("task,coh,dram,svc,noc", "all", or "none"
/// — an armed sink with every category off, for overhead A/B) into a
/// category mask. Returns 0 and fills *error on an unknown token.
[[nodiscard]] std::uint32_t parse_trace_filter(std::string_view filter,
                                               std::string* error);

using NameId = std::uint16_t;
inline constexpr NameId kNoName = 0xffff;

/// Track (Chrome `pid`) layout used by the simulator's instrumentation:
/// one "process" per subsystem, threads within it per core/bank/request.
inline constexpr std::uint8_t kPidCores = 1;      ///< tid = core id
inline constexpr std::uint8_t kPidRuntime = 2;    ///< tid = 0
inline constexpr std::uint8_t kPidCoherence = 3;  ///< tid = core or bank
inline constexpr std::uint8_t kPidDram = 4;       ///< tid = global bank index
inline constexpr std::uint8_t kPidService = 5;    ///< tid = request id
inline constexpr std::uint8_t kPidNoc = 6;        ///< tid = 0

/// One recorded event. `ph` is the Chrome phase letter: B/E (span begin and
/// end), X (complete span with `dur`), i (instant), C (counter).
struct TraceEvent {
  std::uint64_t ts = 0;   ///< simulated cycles (exported as trace us)
  std::uint64_t dur = 0;  ///< X only
  std::uint64_t a0 = 0, a1 = 0;
  std::uint32_t tid = 0;
  NameId name = kNoName;
  NameId k0 = kNoName, k1 = kNoName;  ///< arg key names (kNoName = absent)
  std::uint8_t pid = 0;
  char ph = 'i';
  std::uint8_t cat = 0;
};

struct TraceConfig {
  std::uint32_t categories = kAllCats;
  /// Hard cap on buffered events; further events are dropped (and counted).
  std::size_t max_events = 1u << 20;
};

class TraceSink {
 public:
  explicit TraceSink(TraceConfig cfg = {});

  /// The per-site fast check: false when the category is filtered out.
  [[nodiscard]] bool wants(TraceCat c) const noexcept {
    return ((cfg_.categories >> static_cast<unsigned>(c)) & 1u) != 0;
  }

  /// Intern a name, returning its stable id. The table is capped (16-bit
  /// ids); past the cap every new name maps to a shared "<interned>" id so
  /// recording never fails mid-run.
  NameId intern(std::string_view name);

  void begin(TraceCat cat, std::uint8_t pid, std::uint32_t tid, NameId name,
             std::uint64_t ts);
  void end(TraceCat cat, std::uint8_t pid, std::uint32_t tid, NameId name,
           std::uint64_t ts);
  void complete(TraceCat cat, std::uint8_t pid, std::uint32_t tid, NameId name,
                std::uint64_t ts, std::uint64_t dur, NameId k0 = kNoName,
                std::uint64_t a0 = 0, NameId k1 = kNoName, std::uint64_t a1 = 0);
  void instant(TraceCat cat, std::uint8_t pid, std::uint32_t tid, NameId name,
               std::uint64_t ts, NameId k0 = kNoName, std::uint64_t a0 = 0,
               NameId k1 = kNoName, std::uint64_t a1 = 0);
  void counter(TraceCat cat, std::uint8_t pid, std::uint32_t tid, NameId name,
               std::uint64_t ts, std::uint64_t value);

  /// Track naming, emitted as Chrome 'M' metadata records on export.
  void set_process_name(std::uint8_t pid, std::string_view name);
  void set_thread_name(std::uint8_t pid, std::uint32_t tid, std::string_view name);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::string& name_of(NameId id) const;
  [[nodiscard]] std::uint64_t dropped(TraceCat c) const noexcept {
    return drops_[static_cast<unsigned>(c)];
  }
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;
  [[nodiscard]] const TraceConfig& config() const noexcept { return cfg_; }

  /// Chrome Trace Event JSON: {"traceEvents":[...], "raccd":{drop counts}}.
  [[nodiscard]] std::string to_json() const;
  /// to_json() to a file (temp + rename). Returns false on I/O failure.
  [[nodiscard]] bool write_json(const std::string& path) const;

 private:
  [[nodiscard]] bool admit(TraceCat cat) noexcept;

  TraceConfig cfg_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_ids_;
  NameId overflow_name_ = kNoName;  ///< shared id once the table is full
  std::uint64_t drops_[kCatCount] = {0, 0, 0, 0, 0};
  std::vector<std::pair<std::uint8_t, std::string>> process_names_;
  std::vector<std::pair<std::pair<std::uint8_t, std::uint32_t>, std::string>>
      thread_names_;
};

}  // namespace raccd::obs
