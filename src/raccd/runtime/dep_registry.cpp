#include "raccd/runtime/dep_registry.hpp"

#include "raccd/common/assert.hpp"

namespace raccd {

void DepRegistry::split_at(VAddr addr) {
  auto it = segs_.upper_bound(addr);
  if (it == segs_.begin()) return;
  --it;
  if (it->first == addr || it->second.end <= addr) return;
  // Split [begin, end) into [begin, addr) + [addr, end).
  Segment right = it->second;
  it->second.end = addr;
  segs_.emplace(addr, std::move(right));
}

void DepRegistry::register_dep(TaskId t, const DepSpec& dep, std::vector<TaskId>& preds) {
  if (dep.size == 0) return;
  const VAddr begin = dep.addr;
  const VAddr end = dep.addr + dep.size;
  split_at(begin);
  split_at(end);

  const bool reads = dep.kind != DepKind::kOut;
  const bool writes = dep.kind != DepKind::kIn;

  auto it = segs_.lower_bound(begin);
  VAddr cursor = begin;
  while (cursor < end) {
    if (it == segs_.end() || it->first > cursor) {
      // Uncovered gap [cursor, gap_end): fresh memory with no history.
      const VAddr gap_end = (it == segs_.end()) ? end : std::min(end, it->first);
      Segment fresh;
      fresh.end = gap_end;
      if (writes) {
        fresh.last_writer = t;
      } else {
        fresh.readers.push_back(t);
      }
      it = segs_.emplace_hint(it, cursor, std::move(fresh));
      ++it;
      cursor = gap_end;
      continue;
    }
    RACCD_DEBUG_ASSERT(it->first == cursor, "segment map lost alignment");
    Segment& seg = it->second;
    RACCD_DEBUG_ASSERT(seg.end <= end || seg.end > cursor, "split_at failed");
    if (seg.last_writer != kNoTask && seg.last_writer != t) {
      preds.push_back(seg.last_writer);  // RAW or WAW
    }
    if (writes) {
      for (const TaskId r : seg.readers) {
        if (r != t) preds.push_back(r);  // WAR
      }
      seg.last_writer = t;
      seg.readers.clear();
    }
    if (reads) {
      seg.readers.push_back(t);
    }
    cursor = seg.end;
    ++it;
  }
}

TaskId DepRegistry::last_writer_at(VAddr addr) const noexcept {
  auto it = segs_.upper_bound(addr);
  if (it == segs_.begin()) return kNoTask;
  --it;
  if (it->second.end <= addr) return kNoTask;
  return it->second.last_writer;
}

}  // namespace raccd
