// Shared helpers for the figure/table reproduction binaries, built on the
// declarative Grid/ResultSet experiment API: the common 9-app x
// {FullCoh, PT, RaCCD, WbNC} x {1:1..1:256} grid (paper Fig. 6/7 systems
// plus the software-coherence baseline), lookup into its results, and the
// figure printer. Results are cached on disk (results/cache) so the five
// binaries that share the grid compute it once, and every bench run merges
// its measurements into the cumulative machine-readable perf log
// results/BENCH_grid.json (spec key -> headline metrics).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "raccd/common/format.hpp"
#include "raccd/common/math.hpp"
#include "raccd/harness/grid.hpp"
#include "raccd/harness/table.hpp"
#include "raccd/metrics/metric_schema.hpp"

namespace raccd::bench {

inline constexpr const char* kBenchJsonPath = "results/BENCH_grid.json";

/// Sampling period for occupancy-vs-time series, scaled to the problem size
/// (a few hundred points per run).
[[nodiscard]] inline Cycle series_interval_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return 2000;
    case SizeClass::kSmall: return 20000;
    case SizeClass::kMedium: return 100000;
    case SizeClass::kPaper: return 200000;
    case SizeClass::kLarge: return 1000000;
  }
  return 20000;
}

/// Execute specs (cache-aware, host-parallel) and merge the results into the
/// cumulative BENCH_grid.json perf log. Every bench binary runs through this.
inline ResultSet run_logged(std::vector<RunSpec> specs, const BenchOptions& opts) {
  ResultSet rs = ResultSet::run(std::move(specs), opts.run);
  // include_profile: the sweep's wall-time breakdown rides along as a
  // `__profile__` entry (informational — the perf differ skips it).
  if (!rs.append_bench_json(kBenchJsonPath, /*include_profile=*/true)) {
    std::fprintf(stderr, "warning: could not update %s\n", kBenchJsonPath);
  }
  return rs;
}

/// The Fig. 6/7 grid with axis-major lookup.
struct PaperGrid {
  std::vector<std::string> apps;
  ResultSet rs;

  [[nodiscard]] const SimStats& at(std::size_t app_idx, CohMode mode,
                                   std::uint32_t ratio) const {
    const std::size_t mode_idx = static_cast<std::size_t>(mode);
    std::size_t ratio_idx = 0;
    while (kDirRatios[ratio_idx] != ratio) ++ratio_idx;
    return rs[(app_idx * kAllBackends.size() + mode_idx) * kDirRatios.size() +
              ratio_idx];
  }
};

/// Run (or load from cache) the full Fig. 6/7 grid.
inline PaperGrid run_grid(const BenchOptions& opts) {
  PaperGrid g;
  g.apps = paper_app_names();
  const std::vector<RunSpec> specs = Grid()
                                         .paper_apps()
                                         .set_params(opts.params)
                                         .size(opts.size)
                                         .modes(kAllBackends)
                                         .topology(opts.topo)  // --topology=...
                                         .dram(opts.dram)      // --dram=...
                                         // Every mode sweeps every ratio — even
                                         // WbNC, whose *dynamic* stats are
                                         // ratio-invariant: the powered (leaking)
                                         // directory still scales with size.
                                         .dir_ratios(kDirRatios)
                                         .paper_machine(opts.paper_machine)
                                         .specs();
  std::fprintf(stderr,
               "grid: %zu simulations (9 apps x 4 systems x 7 directory sizes), "
               "size=%s%s — cached results reused\n",
               specs.size(), to_string(opts.size),
               opts.paper_machine ? ", paper machine" : "");
  g.rs = run_logged(specs, opts);
  return g;
}

/// Print one figure: rows = apps (+ average), columns = directory ratios,
/// row-groups per backend, where `metric(stats, baseline)` maps a run to the
/// plotted value. `baseline` is the same app's FullCoh 1:1 run.
template <typename MetricFn>
void print_figure(const PaperGrid& g, const char* title, const char* value_name,
                  MetricFn&& metric, const std::string& csv_path) {
  std::printf("%s\n", title);
  std::vector<std::string> headers{"app", "system"};
  for (const std::uint32_t r : kDirRatios) headers.push_back(strprintf("1:%u", r));
  TextTable table(headers);
  for (const CohMode mode : kAllBackends) {
    std::vector<std::vector<double>> per_ratio(kDirRatios.size());
    if (mode != CohMode::kFullCoh) table.add_separator();
    for (std::size_t a = 0; a < g.apps.size(); ++a) {
      const SimStats& base = g.at(a, CohMode::kFullCoh, 1);
      std::vector<std::string> row{g.apps[a], to_string(mode)};
      for (std::size_t ri = 0; ri < kDirRatios.size(); ++ri) {
        const double v = metric(g.at(a, mode, kDirRatios[ri]), base);
        per_ratio[ri].push_back(v);
        row.push_back(strprintf("%.3f", v));
      }
      table.add_row(std::move(row));
    }
    std::vector<std::string> avg_row{"AVG", to_string(mode)};
    for (std::size_t ri = 0; ri < kDirRatios.size(); ++ri) {
      avg_row.push_back(strprintf("%.3f", mean(per_ratio[ri])));
    }
    table.add_row(std::move(avg_row));
  }
  table.print();
  if (table.write_csv(csv_path)) {
    std::printf("(csv written to %s; %s)\n\n", csv_path.c_str(), value_name);
  }
}

}  // namespace raccd::bench
